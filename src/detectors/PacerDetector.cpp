//===- detectors/PacerDetector.cpp ----------------------------------------==//

#include "detectors/PacerDetector.h"

#include <algorithm>
#include <cassert>

using namespace pacer;

PacerDetector::ThreadState &PacerDetector::ensureThread(ThreadId Tid) {
  if (Tid >= Threads.size())
    Threads.resize(Tid + 1);
  ThreadState &State = Threads[Tid];
  if (!State.Started) {
    // Initial state (Equation 7): C_t = inc_t(bottom), ver_t = inc_t(bottom).
    // The increment applies regardless of the sampling flag: formally all
    // threads exist in sigma_0.
    State.Clock.mutableClock().increment(Tid);
    State.Ver.increment(Tid);
    State.Started = true;
  }
  return State;
}

PacerDetector::SyncObjState &PacerDetector::ensureLock(LockId Lock) {
  if (Lock >= Locks.size())
    Locks.resize(Lock + 1);
  return Locks[Lock];
}

PacerDetector::SyncObjState &PacerDetector::ensureVolatile(VolatileId Vol) {
  if (Vol >= Volatiles.size())
    Volatiles.resize(Vol + 1);
  return Volatiles[Vol];
}

ThreadId PacerDetector::slotOf(ThreadId External) {
  if (!Config.UseAccordionClocks)
    return External;
  SlotRecycler::Mapping M = Recycler.map(External);
  if (M.Fresh) {
    if (M.Slot >= Threads.size())
      Threads.resize(M.Slot + 1);
    // Initial state for the slot's occupant (Equation 7). Purging left
    // every component of a reused slot at zero, so the increment
    // re-creates a fresh thread at the same index.
    ThreadState &State = Threads[M.Slot];
    State.Clock.mutableClock().increment(M.Slot);
    State.Ver.increment(M.Slot);
    State.Started = true;
  }
  return M.Slot;
}

size_t PacerDetector::recycleDeadSlots() {
  if (!Config.UseAccordionClocks)
    return 0;
  Arena::Scope MetadataScope(&Metadata);
  // Sound to recycle once every live thread dominates the retired clock:
  // all of the dead thread's accesses happen before anything any live
  // thread will do, so none can be the first access of a future race.
  size_t Recycled = Recycler.recycle(
      [this](ThreadId Slot) -> const VectorClock & {
        return Threads[Slot].Clock.clock();
      },
      [this](ThreadId Slot) { purgeSlot(Slot); });
  if (Recycler.shouldCompact())
    compactSlots(Recycler.compact());
  return Recycled;
}

void PacerDetector::purgeSlot(ThreadId Slot) {
  // Zero the slot's component everywhere. Writing through shared payloads
  // is deliberate: every holder needs the same reset. (The recycler
  // scrubs its own retirement snapshots.)
  for (ThreadState &State : Threads) {
    if (!State.Started)
      continue;
    State.Clock.resetComponentForRecycle(Slot);
    State.Ver.set(Slot, 0);
  }
  auto ScrubSyncObj = [Slot](SyncObjState &State) {
    State.Clock.resetComponentForRecycle(Slot);
    // A version epoch naming the slot can no longer prove anything about
    // the *next* thread in the slot; force the slow path.
    if (!State.VEpoch.isTop() && State.VEpoch.version() > 0 &&
        State.VEpoch.tid() == Slot)
      State.VEpoch = VersionEpoch::top();
  };
  for (SyncObjState &State : Locks)
    ScrubSyncObj(State);
  for (SyncObjState &State : Volatiles)
    ScrubSyncObj(State);

  // The retired thread's recorded accesses are dominated by every live
  // thread: discard them, exactly as PACER's non-sampling rules discard
  // ordered accesses.
  Vars.eraseIf([Slot](VarId, VarState &State) {
    State.R.removeThread(Slot);
    if (!State.W.isNone() && State.W.tid() == Slot) {
      State.W = Epoch::none();
      State.WSite = InvalidId;
    }
    return State.R.isNull() && State.W.isNone();
  });

  // Reset the slot's own state so the next occupant starts from a fresh
  // clock (a shared payload stays alive in its other holders, with this
  // component zeroed above).
  Threads[Slot] = ThreadState();
}

void PacerDetector::compactSlots(const SlotRemap &Remap) {
  const uint32_t *NewToOld = Remap.NewToOld.data();
  const uint32_t *OldToNew = Remap.OldToNew.data();
  const uint32_t NewCount = Remap.newCount();

  // Pack thread states onto the dense prefix. NewToOld ascends, so every
  // move source is at or beyond its destination and no live state is
  // overwritten before it is moved.
  for (uint32_t New = 0; New != NewCount; ++New) {
    const uint32_t Old = NewToOld[New];
    if (Old != New)
      Threads[New] = std::move(Threads[Old]);
  }
  Threads.resize(NewCount);

  // Renumber every clock payload exactly once: threads, locks, and
  // volatiles may share payloads, and compacting one twice would corrupt
  // it.
  std::vector<const void *> Seen;
  auto CompactPayload = [&](SyncClock &Clock) {
    const void *Key = Clock.payloadKey();
    if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end())
      return;
    Seen.push_back(Key);
    Clock.compactSlotsOnce(NewToOld, NewCount);
  };
  for (ThreadState &State : Threads) {
    CompactPayload(State.Clock);
    State.Ver.compactSlots(NewToOld, NewCount);
  }
  auto CompactSyncObj = [&](SyncObjState &State) {
    CompactPayload(State.Clock);
    VersionEpoch V = State.VEpoch;
    if (!V.isTop() && V.version() > 0) {
      // Purging already forced epochs naming freed slots to top, so the
      // named slot survives compaction and has a new number.
      State.VEpoch = VersionEpoch::make(V.version(), OldToNew[V.tid()]);
    }
  };
  for (SyncObjState &State : Locks)
    CompactSyncObj(State);
  for (SyncObjState &State : Volatiles)
    CompactSyncObj(State);

  // Access metadata: purging removed every epoch and read entry naming a
  // freed slot, so a plain renumbering suffices and no entry dies here.
  Vars.eraseIf([OldToNew](VarId, VarState &State) {
    State.R.remapThreads(OldToNew);
    if (!State.W.isNone())
      State.W = Epoch::make(State.W.clockValue(), OldToNew[State.W.tid()]);
    return false;
  });
}

size_t PacerDetector::liveSlotCount() const {
  if (Config.UseAccordionClocks)
    return Recycler.liveSlotCount();
  size_t Count = 0;
  for (const ThreadState &State : Threads)
    Count += State.Started;
  return Count;
}

void PacerDetector::incrementThread(ThreadId Tid) {
  // Algorithm 10: no action outside sampling periods ("timeless").
  if (!Sampling)
    return;
  ThreadState &State = ensureThread(Tid);
  State.Clock.cloneIfShared(&Stats.ClockClones);
  State.Clock.mutableClock().increment(Tid);
  State.Ver.increment(Tid);
}

void PacerDetector::copyThreadClockTo(SyncObjState &Target, ThreadId Tid) {
  ThreadState &Source = ensureThread(Tid);
  if (!Sampling && Config.UseClockSharing) {
    // Shallow copy: mark the thread's payload shared, then share it. The
    // clock value is unlikely to change soon (no increments happen).
    Source.Clock.setShared();
    Target.Clock.shallowCopyFrom(Source.Clock);
    ++Stats.ShallowCopiesNonSampling;
  } else {
    Target.Clock.deepCopyFrom(Source.Clock, &Stats.ClockClones);
    if (Sampling)
      ++Stats.DeepCopiesSampling;
    else
      ++Stats.DeepCopiesNonSampling;
  }
  // Update the target's version epoch: its clock is now version ver_t[t]
  // of thread t's clock.
  Target.VEpoch = threadVersionEpoch(Source, Tid);
}

void PacerDetector::joinIntoThread(ThreadId Tid, const SyncClock &SourceClock,
                                   VersionEpoch SourceVersion) {
  ThreadState &Target = ensureThread(Tid);

  // Table 7 Rule 4: the version epoch precedes the thread's version
  // vector, so clock_o <= clock_t is guaranteed (Lemma 7); skip the O(n)
  // work entirely. This is the "fast join".
  if (Config.UseVersionFastJoins && SourceVersion.precedes(Target.Ver)) {
    if (Sampling)
      ++Stats.FastJoinsSampling;
    else
      ++Stats.FastJoinsNonSampling;
    return;
  }

  if (Sampling)
    ++Stats.SlowJoinsSampling;
  else
    ++Stats.SlowJoinsNonSampling;

  if (!SourceClock.clock().leq(Target.Clock.clock())) {
    // Table 7 Rule 6 (concurrent): perform the join. The clock changes, so
    // clone it if shared and bump this thread's own version.
    Target.Clock.cloneIfShared(&Stats.ClockClones);
    Target.Clock.mutableClock().joinWith(SourceClock.clock());
    Target.Ver.increment(Tid);
  }
  // Rules 5 and 6: record that version v of thread u's clock is now
  // incorporated (skipped for the maximal version epoch, which names no
  // thread).
  if (!SourceVersion.isTop()) {
    ThreadId U = SourceVersion.tid();
    Target.Ver.set(U, std::max(Target.Ver.get(U), SourceVersion.version()));
  }
}

void PacerDetector::joinIntoVolatile(SyncObjState &Vol, ThreadId Tid) {
  ThreadState &Source = ensureThread(Tid);

  // Table 7 Rules 7-8: if the volatile's clock is subsumed by the thread's
  // (shown either by versions or by the O(n) comparison), the join result
  // equals C_t, so it degenerates to a copy -- shallow when not sampling.
  bool Subsumed = false;
  if (Config.UseVersionFastJoins && Vol.VEpoch.precedes(Source.Ver)) {
    Subsumed = true;
    if (Sampling)
      ++Stats.FastJoinsSampling;
    else
      ++Stats.FastJoinsNonSampling;
  } else {
    if (Sampling)
      ++Stats.SlowJoinsSampling;
    else
      ++Stats.SlowJoinsNonSampling;
    Subsumed = Vol.Clock.clock().leq(Source.Clock.clock());
  }

  if (Subsumed) {
    copyThreadClockTo(Vol, Tid);
    return;
  }

  // Table 7 Rule 9 (concurrent): the volatile's clock becomes a join of
  // several threads' clocks, so no single version epoch describes it.
  Vol.Clock.cloneIfShared(&Stats.ClockClones);
  Vol.Clock.mutableClock().joinWith(Source.Clock.clock());
  Vol.VEpoch = VersionEpoch::top();
}

void PacerDetector::fork(ThreadId Parent, ThreadId Child) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  Parent = slotOf(Parent);
  Child = slotOf(Child);
  // Ensure both entries first: ensureThread may reallocate the vector,
  // invalidating a previously taken reference.
  ensureThread(Parent);
  ensureThread(Child);
  ThreadState &ParentState = Threads[Parent];
  // Table 6 Rule 3: C_u <- C_u join C_t; C_t <- inc_t(C_t, s).
  joinIntoThread(Child, ParentState.Clock,
                 threadVersionEpoch(ParentState, Parent));
  incrementThread(Parent);
}

void PacerDetector::join(ThreadId Parent, ThreadId Child) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  if (Config.UseAccordionClocks && Recycler.lookup(Child) == InvalidId) {
    // The child's slot was already recycled (it exited, and every live
    // thread -- the parent included -- came to dominate its final clock).
    // The join is then a semantic no-op: the parent's clock already
    // subsumes everything the child did. Mapping the child here would
    // wrongly allocate a fresh slot for a dead thread.
    ensureThread(slotOf(Parent));
    return;
  }
  Parent = slotOf(Parent);
  Child = slotOf(Child);
  ensureThread(Parent);
  ensureThread(Child);
  ThreadState &ChildState = Threads[Child];
  // Table 6 Rule 4: C_t <- C_t join C_u; C_u <- inc_u(C_u, s).
  joinIntoThread(Parent, ChildState.Clock,
                 threadVersionEpoch(ChildState, Child));
  if (Config.UseAccordionClocks) {
    // The child performs no actions after being joined; snapshot its
    // final clock (pre-increment: the increment below creates a virtual
    // epoch no access ever uses) for the recycling domination check.
    // No-op if the slot was already retired at the child's ThreadExit.
    Recycler.retire(Child, ChildState.Clock.clock());
  }
  incrementThread(Child);
}

void PacerDetector::threadExit(ThreadId Tid) {
  if (!Config.UseAccordionClocks)
    return;
  Arena::Scope MetadataScope(&Metadata);
  ThreadId Slot = slotOf(Tid);
  ensureThread(Slot);
  // The thread acts no more: its clock now equals the snapshot a later
  // join would take, so retiring here lets the slot be reclaimed as soon
  // as domination holds rather than only after the join.
  Recycler.retire(Slot, Threads[Slot].Clock.clock());
}

void PacerDetector::acquire(ThreadId Tid, LockId Lock) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  Tid = slotOf(Tid);
  SyncObjState &LockState = ensureLock(Lock);
  // Table 6 Rule 1: C_t <- C_t join L_m.
  joinIntoThread(Tid, LockState.Clock, LockState.VEpoch);
}

void PacerDetector::release(ThreadId Tid, LockId Lock) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  Tid = slotOf(Tid);
  // Table 6 Rule 2: L_m <- copy(C_t); C_t <- inc_t(C_t, s).
  copyThreadClockTo(ensureLock(Lock), Tid);
  incrementThread(Tid);
}

void PacerDetector::syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) {
  if (Pairs == 0)
    return;
  // The first pair runs at full fidelity: it performs whatever join the
  // lock's prior history requires and (re)establishes the invariant the
  // collapse below relies on -- after one acquire/release, L_m is exactly
  // this thread's frontier (a copy of C_t one self-increment behind, with
  // a version epoch naming this thread).
  acquire(Tid, Lock);
  release(Tid, Lock);
  const uint64_t Rest = Pairs - 1;
  if (Rest == 0)
    return;
  Arena::Scope MetadataScope(&Metadata);
  Stats.SyncOps += 2 * Rest;
  if (!Sampling) {
    // Timeless phase: clocks do not move, so every middle acquire is a
    // guaranteed fast join (Rule 4; or a no-op slow join under the
    // ablation) and every middle release re-copies an unchanged clock
    // onto a lock that already holds it. Net effect: counters only.
    if (Config.UseVersionFastJoins)
      Stats.FastJoinsNonSampling += Rest;
    else
      Stats.SlowJoinsNonSampling += Rest;
    if (Config.UseClockSharing)
      Stats.ShallowCopiesNonSampling += Rest;
    else
      Stats.DeepCopiesNonSampling += Rest;
    return;
  }
  // Sampling: each middle pair fast-joins (L_m's version epoch names this
  // thread one version back, so Rule 4 applies; the slow-join ablation
  // compares leq-true and also does nothing), deep-copies C_t into L_m,
  // and increments the thread's clock and version. Only the thread's own
  // components move, so the run collapses to closed-form updates plus one
  // final deep copy.
  if (Config.UseVersionFastJoins)
    Stats.FastJoinsSampling += Rest;
  else
    Stats.SlowJoinsSampling += Rest;
  Stats.DeepCopiesSampling += Rest;
  const ThreadId Slot = slotOf(Tid);
  ThreadState &Thread = ensureThread(Slot);
  // The first pair's sampling increment already privatized any shared
  // payload, so this is a provable no-op kept as a guard.
  Thread.Clock.cloneIfShared(&Stats.ClockClones);
  const uint32_t C = Thread.Clock.clock().get(Slot);
  const uint32_t V = Thread.Ver.get(Slot);
  const auto Inc = static_cast<uint32_t>(Rest);
  // State as of the last middle release, pre-increment ...
  Thread.Clock.mutableClock().set(Slot, C + Inc - 1);
  Thread.Ver.set(Slot, V + Inc - 1);
  SyncObjState &LockState = ensureLock(Lock);
  LockState.Clock.deepCopyFrom(Thread.Clock, &Stats.ClockClones);
  LockState.VEpoch = VersionEpoch::make(V + Inc - 1, Slot);
  // ... and the final self-increment.
  Thread.Clock.mutableClock().set(Slot, C + Inc);
  Thread.Ver.set(Slot, V + Inc);
}

void PacerDetector::volatileRead(ThreadId Tid, VolatileId Vol) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  Tid = slotOf(Tid);
  SyncObjState &VolState = ensureVolatile(Vol);
  // Table 6 Rule 5: C_t <- C_t join V_vx (like a lock acquire).
  joinIntoThread(Tid, VolState.Clock, VolState.VEpoch);
}

void PacerDetector::volatileWrite(ThreadId Tid, VolatileId Vol) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  Tid = slotOf(Tid);
  // Table 6 Rule 6: V_vx <- V_vx join C_t; C_t <- inc_t(C_t, s).
  joinIntoVolatile(ensureVolatile(Vol), Tid);
  incrementThread(Tid);
}

void PacerDetector::beginSamplingPeriod() {
  Arena::Scope MetadataScope(&Metadata);
  assert(!Sampling && "nested sampling period");
  // Period boundaries are the paper's GC moments: the natural point to
  // recycle retired thread slots.
  recycleDeadSlots();
  Sampling = true;
  // Table 5 Rule 1: increment every thread's clock (and version). This
  // restores strict well-formedness so that epochs recorded from here on
  // are distinguishable (Lemma 5). It also ensures a race whose first
  // access precedes any synchronization in the period is detected.
  for (ThreadId Tid = 0; Tid < Threads.size(); ++Tid)
    if (Threads[Tid].Started)
      incrementThread(Tid);
}

void PacerDetector::endSamplingPeriod() {
  assert(Sampling && "not in a sampling period");
  // Table 5 Rule 2: logical time halts.
  Sampling = false;
}

void PacerDetector::reportPriorWriteRace(const VarState &State, VarId Var,
                                         ThreadId Tid, AccessKind Kind,
                                         SiteId Site) {
  RaceReport Report;
  Report.Var = Var;
  Report.FirstKind = AccessKind::Write;
  Report.SecondKind = Kind;
  Report.FirstThread = externalOf(State.W.tid());
  Report.SecondThread = externalOf(Tid);
  Report.FirstSite = State.WSite;
  Report.SecondSite = Site;
  reportRace(Report);
}

void PacerDetector::reportPriorReadRaces(const VarState &State,
                                         const VectorClock &Clock, VarId Var,
                                         ThreadId Tid, SiteId Site) {
  State.R.forEachViolation(Clock, [&](const ReadEntry &Entry) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Read;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = externalOf(Entry.Tid);
    Report.SecondThread = externalOf(Tid);
    Report.FirstSite = Entry.Site;
    Report.SecondSite = Site;
    reportRace(Report);
  });
}

void PacerDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  if (!Config.InstrumentReadsWrites)
    return;
  Tid = slotOf(Tid);
  readImpl(Tid, Var, Site, Vars.find(Var));
}

void PacerDetector::readImpl(ThreadId Tid, VarId Var, SiteId Site,
                             VarState *Found) {
  // Inlined fast path (Section 4): outside sampling periods a variable
  // with no metadata needs no analysis at all.
  if (!Sampling && !Found) {
    ++Stats.ReadFastNonSampling;
    return;
  }
  if (Sampling)
    ++Stats.ReadSlowSampling;
  else
    ++Stats.ReadSlowNonSampling;

  ThreadState &Thread = ensureThread(Tid);
  const VectorClock &Clock = Thread.Clock.clock();
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);

  if (Sampling) {
    readSampling(Tid, Clock, Current, Var, Site, Found);
    return;
  }

  VarState &State = Found ? *Found : Vars.getOrInsert(Var);

  // Table 4 Rule 1 (same epoch): no checks, no updates, in either period
  // kind. Checking first matters under report-and-continue: a racing
  // write already reported at the read that installed this epoch must not
  // be re-reported on every subsequent same-epoch read (FastTrack's
  // Algorithm 7 has the same structure).
  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  // check W_f <= clock_t (Algorithm 12; Table 4's race-free condition for
  // Rules 2-4). On a race we report and continue as race free.
  if (!State.W.precedes(Clock))
    reportPriorWriteRace(State, Var, Tid, AccessKind::Read, Site);

  // Non-sampling: record nothing; discard whatever FastTrack would have
  // replaced or discarded.
  if (!Config.DiscardMetadata)
    return; // Ablation: keep everything (still sound, no space win).
  switch (State.R.kind()) {
  case ReadMap::Kind::Null:
    break; // Rule 2: stays null.
  case ReadMap::Kind::Epoch:
    // Rule 2: an ordered prior read cannot be the last access to race with
    // a later access, so discard it. Rule 4 (concurrent prior read): keep.
    if (State.R.leqClock(Clock))
      State.R.clear();
    break;
  case ReadMap::Kind::Map:
    // Rule 3: discard only this thread's entry (Algorithm 12's
    // "Discard R_f[t] only"); collapse an empty map to null.
    if (State.R.removeEntry(Tid))
      State.R.clear();
    break;
  }
  if (State.R.isNull() && State.W.isNone())
    Vars.erase(Var);
}

void PacerDetector::readSampling(ThreadId Tid, const VectorClock &Clock,
                                 Epoch Current, VarId Var, SiteId Site,
                                 VarState *Found) {
  VarState &State = Found ? *Found : Vars.getOrInsert(Var);

  // Table 4 Rule 1 (same epoch): no checks, no updates (see readImpl).
  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  // check W_f <= clock_t (Algorithm 12); report and continue on a race.
  if (!State.W.precedes(Clock))
    reportPriorWriteRace(State, Var, Tid, AccessKind::Read, Site);

  switch (State.R.kind()) {
  case ReadMap::Kind::Null:
    // Rule 2 with R = bottom: record the read as an epoch.
    State.R.setEpoch(Current, Site);
    break;
  case ReadMap::Kind::Epoch:
    if (State.R.leqClock(Clock)) {
      // Rule 2 (exclusive): overwrite the ordered read epoch.
      State.R.setEpoch(Current, Site);
    } else {
      // Rule 4 (share): inflate to a map holding both concurrent reads.
      State.R.inflateToMap();
      State.R.setEntry(Tid, Clock.get(Tid), Site);
    }
    break;
  case ReadMap::Kind::Map:
    // Rule 3 (shared): update this thread's component.
    State.R.setEntry(Tid, Clock.get(Tid), Site);
    break;
  }
}

void PacerDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  if (!Config.InstrumentReadsWrites)
    return;
  Tid = slotOf(Tid);
  writeImpl(Tid, Var, Site, Vars.find(Var));
}

void PacerDetector::writeImpl(ThreadId Tid, VarId Var, SiteId Site,
                              VarState *Found) {
  if (!Sampling && !Found) {
    ++Stats.WriteFastNonSampling;
    return;
  }
  if (Sampling)
    ++Stats.WriteSlowSampling;
  else
    ++Stats.WriteSlowNonSampling;

  ThreadState &Thread = ensureThread(Tid);
  const VectorClock &Clock = Thread.Clock.clock();
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);

  if (Sampling) {
    writeSampling(Tid, Clock, Current, Var, Site, Found);
    return;
  }

  VarState &State = Found ? *Found : Vars.getOrInsert(Var);

  // Table 4 Rule 5 (same epoch): no action. The race checks cannot fire
  // here (see the write-rule discussion in DESIGN.md), so skipping them
  // matches Algorithm 13's check-first ordering.
  if (State.W == Current)
    return;

  // check W_f <= clock_t and R_f <= clock_t (Algorithm 13; ordered as in
  // FastTrack's Algorithm 8 so the two report identical sequences at a
  // 100% sampling rate).
  if (!State.W.precedes(Clock))
    reportPriorWriteRace(State, Var, Tid, AccessKind::Write, Site);
  reportPriorReadRaces(State, Clock, Var, Tid, Site);

  // Rules 6-7 non-sampling: this unsampled write supersedes everything;
  // discard the variable's metadata entirely.
  if (!Config.DiscardMetadata)
    return; // Ablation: keep the stale (ordered) metadata.
  Vars.erase(Var);
}

void PacerDetector::writeSampling(ThreadId Tid, const VectorClock &Clock,
                                  Epoch Current, VarId Var, SiteId Site,
                                  VarState *Found) {
  VarState &State = Found ? *Found : Vars.getOrInsert(Var);

  // Table 4 Rule 5 (same epoch): no action (see writeImpl).
  if (State.W == Current)
    return;

  // check W_f <= clock_t and R_f <= clock_t (Algorithm 13).
  if (!State.W.precedes(Clock))
    reportPriorWriteRace(State, Var, Tid, AccessKind::Write, Site);
  reportPriorReadRaces(State, Clock, Var, Tid, Site);

  // Rules 6-7 sampling: record the write, discard the read map.
  State.W = Current;
  State.WSite = Site;
  State.R.clear();
}

void PacerDetector::threadBegin(ThreadId Tid) {
  Arena::Scope MetadataScope(&Metadata);
  ensureThread(slotOf(Tid));
}

void PacerDetector::accessBatch(std::span<const Action> Batch,
                                const AccessShard &Shard) {
  Arena::Scope MetadataScope(&Metadata);
  if (!Config.InstrumentReadsWrites)
    return;
  // Phase routing: the replay layer never lets a period boundary fall
  // inside a batch, so the sampling flag is epoch-invariant and one test
  // here selects the kernel for the whole run. (Accordion clocks need the
  // per-access path for slot bookkeeping.)
  if (Config.UseColdBatchKernel && !Sampling && !Config.UseAccordionClocks) {
    coldAccessBatch(Batch, Shard);
    return;
  }
  if (Config.UseHotBatchKernel && Sampling && !Config.UseAccordionClocks) {
    hotAccessBatch(Batch, Shard);
    return;
  }
  for (const Action &A : Batch) {
    if (!Shard.owns(A.Target))
      continue;
    if (A.Kind == ActionKind::Read)
      read(A.Tid, A.Target, A.Site);
    else
      write(A.Tid, A.Target, A.Site);
  }
}

void PacerDetector::coldAccessBatch(std::span<const Action> Batch,
                                    const AccessShard &Shard) {
  // Bulk fast path: every access in the epoch is the inlined
  // "flag test + lookup miss" (Section 4). Non-sampling accesses never
  // insert metadata and nothing else runs inside an epoch, so Vars stays
  // empty for the whole batch; count the owned accesses and return.
  if (Vars.empty()) {
    // Owned reads are the owned remainder after counting owned writes, so
    // the unsharded loop touches one byte per action and nothing else.
    uint64_t Writes = 0;
    if (Shard.ownsAll()) {
      for (const Action &A : Batch)
        Writes += A.Kind != ActionKind::Read;
      Stats.ReadFastNonSampling += Batch.size() - Writes;
    } else {
      uint64_t Owned = 0;
      for (const Action &A : Batch) {
        const uint64_t Own = A.Target % Shard.count() == Shard.index();
        Owned += Own;
        Writes += Own & static_cast<uint64_t>(A.Kind != ActionKind::Read);
      }
      Stats.ReadFastNonSampling += Owned - Writes;
    }
    Stats.WriteFastNonSampling += Writes;
    return;
  }

  // Some variables still hold metadata (a sampling period ended recently
  // and its records have not all been discarded). Stage owned accesses
  // block-wise into struct-of-arrays, issuing the probe-line prefetch for
  // each key as it is staged; by the time the probe loop reaches a key,
  // the staging of the rest of the block (tens of probes) has covered the
  // prefetch latency. Decisions are never staged -- each probe runs
  // against the live table, because a hit's read()/write() may erase
  // entries (hit decisions can go stale in the hit -> miss direction).
  constexpr size_t BlockSize = 64;
  VarId Keys[BlockSize];
  ThreadId Tids[BlockSize];
  SiteId Sites[BlockSize];
  uint8_t IsWrite[BlockSize];

  uint64_t FastReads = 0, FastWrites = 0;
  const size_t N = Batch.size();
  for (size_t Begin = 0; Begin < N; Begin += BlockSize) {
    const size_t End = Begin + BlockSize < N ? Begin + BlockSize : N;
    size_t Staged = 0;
    for (size_t I = Begin; I < End; ++I) {
      const Action &A = Batch[I];
      if (!Shard.owns(A.Target))
        continue;
      Keys[Staged] = A.Target;
      Tids[Staged] = A.Tid;
      Sites[Staged] = A.Site;
      IsWrite[Staged] = A.Kind != ActionKind::Read;
      ++Staged;
      Vars.prefetch(A.Target);
    }
    for (size_t J = 0; J < Staged; ++J) {
      if (Vars.find(Keys[J])) {
        // Rare: tracked metadata. The full slow path re-probes a line the
        // block prefetch already pulled in and keeps the discard rules in
        // exactly one place.
        if (IsWrite[J])
          write(Tids[J], Keys[J], Sites[J]);
        else
          read(Tids[J], Keys[J], Sites[J]);
        continue;
      }
      // Miss: the inlined fast path, folded into branchless counters.
      const uint64_t W = IsWrite[J];
      FastWrites += W;
      FastReads += W ^ 1;
    }
  }
  Stats.ReadFastNonSampling += FastReads;
  Stats.WriteFastNonSampling += FastWrites;
}

void PacerDetector::hotAccessBatch(std::span<const Action> Batch,
                                   const AccessShard &Shard) {
  // Sampling-phase kernel: resolve each block's table entries with one
  // gather probe (FlatVarTable::findBlock), then run the unchanged
  // sampling analysis against the pre-resolved pointers. Staleness is
  // contained by construction: sampling analysis never erases entries, a
  // stale null re-resolves through getOrInsert (which returns the
  // existing entry), and a rehash inside a block -- the only operation
  // that moves entries -- is detected through rehashEpoch() and the rest
  // of the block re-probed live.
  // Matches the kernel's 64-lane cap: wider blocks amortize the per-block
  // fixed costs (probe call, rehash-epoch check, stats update) and measure
  // faster end-to-end than narrower ones, even though some prefetches of a
  // 64-lane stage exceed the core's outstanding-miss buffers.
  constexpr size_t BlockSize = 64;
  struct StagedBlock {
    VarId Keys[BlockSize];
    ThreadId Tids[BlockSize];
    SiteId Sites[BlockSize];
    uint8_t IsWrite[BlockSize];
    size_t Count = 0;
    size_t Writes = 0;
  };
  // Double-buffered so block B+1 stages -- and issues its table
  // prefetches -- before block B's analysis runs: the prefetched lines
  // then have a whole analysis phase to arrive instead of the handful of
  // cycles between a combined stage-and-probe. Random reads over a
  // DRAM-resident table are the difference between stalling the gather on
  // every line and finding them resident. (A rehash during B's analysis
  // orphans the early prefetches; findBlock recomputes its offsets from
  // the live array, so that costs only the lost warmth.)
  StagedBlock Blocks[2];
  VarState *Found[BlockSize];

  // Slot/clock/epoch resolution hoisted to thread switches: accesses
  // never mutate thread clocks, and no synchronization action or first
  // sight occurs inside a batch, so the references stay valid across the
  // whole run (accordion is routed away, so tids are already slots).
  ThreadId CurTid = InvalidId;
  const VectorClock *Clock = nullptr;
  Epoch Current = Epoch::none();

  const size_t N = Batch.size();
  auto Stage = [&](size_t Begin, StagedBlock &B) {
    const size_t End = Begin + BlockSize < N ? Begin + BlockSize : N;
    B.Count = 0;
    B.Writes = 0;
    for (size_t I = Begin; I < End; ++I) {
      const Action &A = Batch[I];
      if (!Shard.owns(A.Target))
        continue;
      B.Keys[B.Count] = A.Target;
      B.Tids[B.Count] = A.Tid;
      B.Sites[B.Count] = A.Site;
      const uint8_t W = A.Kind != ActionKind::Read;
      B.IsWrite[B.Count] = W;
      B.Writes += W;
      ++B.Count;
      Vars.prefetch(A.Target);
    }
  };

  unsigned Cur = 0;
  if (N != 0)
    Stage(0, Blocks[0]);
  for (size_t Begin = 0; Begin < N; Begin += BlockSize, Cur ^= 1) {
    const StagedBlock &B = Blocks[Cur];
    size_t Resolved = 0;
    if (B.Count != 0) {
      Resolved = Vars.findBlock(B.Keys, B.Count, Found);
      Probe.VectorResolved += Resolved;
      Probe.ScalarFallback += B.Count - Resolved;
    }
    const size_t ProbeEpoch = Vars.rehashEpoch();
    if (Begin + BlockSize < N)
      Stage(Begin + BlockSize, Blocks[Cur ^ 1]);
    // Slow-path instrumentation tallies batched per block (the screens
    // below are part of the slow path, so every staged access counts).
    Stats.WriteSlowSampling += B.Writes;
    Stats.ReadSlowSampling += B.Count - B.Writes;
    for (size_t J = 0; J < B.Count; ++J) {
      if (B.Tids[J] != CurTid) {
        CurTid = B.Tids[J];
        Clock = &ensureThread(CurTid).Clock.clock();
        Current = Epoch::make(Clock->get(CurTid), CurTid);
      }
      // An insertion earlier in the block may have grown the table; the
      // staged pointers die with it, so re-probe live from then on.
      VarState *F = Vars.rehashEpoch() == ProbeEpoch ? Found[J]
                                                     : Vars.find(B.Keys[J]);
      if (B.IsWrite[J]) {
        // Rule 5 same-epoch screen inline: the overwhelmingly common
        // repeated-write shape never leaves this loop. A stale-null F
        // falls through and re-resolves inside writeSampling.
        if (F && F->W == Current)
          continue;
        writeSampling(CurTid, *Clock, Current, B.Keys[J], B.Sites[J], F);
      } else {
        // Rule 1 same-epoch screen inline, mirroring the write screen.
        if (F && F->R.isEpoch() && F->R.epoch() == Current)
          continue;
        readSampling(CurTid, *Clock, Current, B.Keys[J], B.Sites[J], F);
      }
    }
  }
}

size_t PacerDetector::accessMetadataBytes() const {
  // Live entries (not table capacity): capacity depends on insertion and
  // shrink history, which differs across shard replicas; the live-entry
  // count partitions exactly.
  size_t Bytes = Vars.entryBytes();
  Vars.forEach(
      [&](VarId, const VarState &State) { Bytes += State.R.heapBytes(); });
  return Bytes;
}

size_t PacerDetector::liveMetadataBytes() const {
  size_t Bytes = 0;
  // Count each clock payload once: sharing is precisely what makes
  // synchronization metadata cheap in non-sampling periods.
  std::vector<const void *> Seen;
  auto AddPayload = [&](const SyncClock &Clock) {
    const void *Key = Clock.payloadKey();
    if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end())
      return;
    Seen.push_back(Key);
    Bytes += Clock.payloadBytes();
  };
  for (const ThreadState &State : Threads) {
    if (!State.Started)
      continue;
    AddPayload(State.Clock);
    Bytes += sizeof(State) + State.Ver.heapBytes();
  }
  if (Config.UseAccordionClocks)
    Bytes += Recycler.liveMetadataBytes();
  for (const SyncObjState &State : Locks) {
    AddPayload(State.Clock);
    Bytes += sizeof(State);
  }
  for (const SyncObjState &State : Volatiles) {
    AddPayload(State.Clock);
    Bytes += sizeof(State);
  }
  // Per-variable storage is charged per live entry (plus read-map
  // payloads) so the measurement is additive across shard partitions.
  Bytes += accessMetadataBytes();
  return Bytes;
}

const VectorClock &PacerDetector::threadClockForTest(ThreadId Tid) const {
  return Threads.at(Tid).Clock.clock();
}

const VersionVector &
PacerDetector::threadVersionsForTest(ThreadId Tid) const {
  return Threads.at(Tid).Ver;
}

const VectorClock *PacerDetector::lockClockForTest(LockId Lock) const {
  if (Lock >= Locks.size())
    return nullptr;
  return &Locks[Lock].Clock.clock();
}

const VectorClock *
PacerDetector::volatileClockForTest(VolatileId Vol) const {
  if (Vol >= Volatiles.size())
    return nullptr;
  return &Volatiles[Vol].Clock.clock();
}

VersionEpoch PacerDetector::lockVersionEpochForTest(LockId Lock) const {
  if (Lock >= Locks.size())
    return VersionEpoch::bottom();
  return Locks[Lock].VEpoch;
}

VersionEpoch
PacerDetector::volatileVersionEpochForTest(VolatileId Vol) const {
  if (Vol >= Volatiles.size())
    return VersionEpoch::bottom();
  return Volatiles[Vol].VEpoch;
}

const void *PacerDetector::threadClockKeyForTest(ThreadId Tid) const {
  return Threads.at(Tid).Clock.payloadKey();
}

const void *PacerDetector::lockClockKeyForTest(LockId Lock) const {
  return Locks.at(Lock).Clock.payloadKey();
}

const ReadMap *PacerDetector::readMapForTest(VarId Var) const {
  const VarState *State = Vars.find(Var);
  return State ? &State->R : nullptr;
}

Epoch PacerDetector::writeEpochForTest(VarId Var) const {
  const VarState *State = Vars.find(Var);
  return State ? State->W : Epoch::none();
}
