//===- detectors/LiteRaceDetector.h - Online LiteRace baseline -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *online* implementation of LiteRace (Marino et al., PLDI 2009) as the
/// paper's Section 5.3 describes building it for comparison: full
/// instrumentation of all synchronization operations (so no false
/// happens-before is ever missed), with data reads and writes sampled per
/// *code* region using adaptive bursty sampling. Each (method, thread) pair
/// starts at a 100% sampling rate and decays toward a 0.1% floor as the
/// method grows hot -- the cold-region hypothesis. Analysis on sampled
/// accesses is FastTrack's.
///
/// Matching the paper's variant, randomness is added when resetting the
/// sampling counter so different trials catch different races; the default
/// burst length is 1000 (the paper switched from 10 to 1000 to reach ~1%
/// effective rates).
///
/// Because LiteRace samples code rather than data, it never discards
/// metadata, so its space overhead is proportional to the data touched, not
/// the sampling rate -- the behaviour Figure 10 shows. And because a race
/// is found only when *both* accesses are sampled, a race between two hot
/// accesses is detected at roughly (0.1%)^2: Figure 6's missed races.
///
/// The bursty samplers are *code*-indexed, not data-indexed, so by default
/// a shard replica must observe the full access stream to keep its
/// decisions replica-identical (accessAnalysisIsShardLocal() == false).
/// computeSamplerPlan() removes that O(trace) cost: it precomputes the
/// whole decision stream -- a pure function of (trace, seed, config) --
/// into one bit per trace position, shared read-only by every replica.
/// A detector given the plan (setSamplerPlan) never consults its own
/// samplers, becomes shard-local, and replays from owned-access runs in
/// O(sync + owned accesses) with bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_LITERACEDETECTOR_H
#define PACER_DETECTORS_LITERACEDETECTOR_H

#include "core/Epoch.h"
#include "core/FlatVarTable.h"
#include "core/ReadMap.h"
#include "detectors/Detector.h"
#include "detectors/SyncState.h"
#include "support/Arena.h"
#include "support/Rng.h"

#include <vector>

namespace pacer {

/// Method identifier: the code region whose execution frequency drives the
/// adaptive sampler.
using MethodId = uint32_t;

/// Adaptive bursty sampling parameters.
struct LiteRaceConfig {
  /// Accesses analysed per burst.
  uint32_t BurstLength = 1000;
  /// Starting per-method-thread sampling rate.
  double InitialRate = 1.0;
  /// Floor rate; the original LiteRace bottoms out at 0.1%.
  double MinRate = 0.001;
  /// Multiplier applied to the rate after each completed burst.
  double DecayFactor = 0.5;
  /// Randomize the skip counter on reset (the paper's modification to the
  /// otherwise deterministic original).
  bool RandomizeSkip = true;

  /// Accordion clocks: recycle dead threads' clock slots (see
  /// core/SlotRecycler.h). The bursty samplers are keyed by *program*
  /// thread id and are untouched by recycling, so sampling decisions are
  /// identical with recycling on or off.
  bool UseAccordionClocks = false;

  /// Under planned replay, route runs the sampler-plan bitmap marks fully
  /// unsampled to a counting-only kernel (one word-masked bitmap test per
  /// batch, branchless counter folds, no per-access decision lookups).
  /// Observationally identical to the per-access planned loop; disabling
  /// it forces that loop (the micro_coldpath baseline).
  bool UseColdBatchKernel = true;
};

/// Precomputed LiteRace sampler decisions for one (trace, seed, config):
/// one bit per trace position, set iff the access at that position is
/// analysed. Built once per trial in O(trace) and shared read-only by
/// every shard replica. SamplerCount carries the end-of-trace sampler
/// table size so replica space accounting matches sequential replay.
struct LiteRaceSamplerPlan {
  std::vector<uint64_t> Bits;
  size_t SamplerCount = 0;
  const Action *Base = nullptr; ///< The trace the bit positions index.

  bool sampled(size_t Pos) const {
    return (Bits[Pos >> 6] >> (Pos & 63)) & 1;
  }

  /// True iff no position in [\p From, \p To) is sampled: a word-masked
  /// range scan, so testing a whole batch costs O(batch / 64). Decayed-hot
  /// methods skip runs of ~BurstLength / MinRate accesses, so at steady
  /// state most epochs answer true and replay them on the counting-only
  /// kernel.
  bool noneSampled(size_t From, size_t To) const {
    if (From >= To)
      return true;
    const size_t FirstWord = From >> 6;
    const size_t LastWord = (To - 1) >> 6;
    const uint64_t FirstMask = ~uint64_t{0} << (From & 63);
    const uint64_t LastMask = ~uint64_t{0} >> (63 - ((To - 1) & 63));
    if (FirstWord == LastWord)
      return (Bits[FirstWord] & FirstMask & LastMask) == 0;
    if (Bits[FirstWord] & FirstMask)
      return false;
    for (size_t W = FirstWord + 1; W < LastWord; ++W)
      if (Bits[W])
        return false;
    return (Bits[LastWord] & LastMask) == 0;
  }
};

/// Online LiteRace: adaptive per-(method, thread) bursty sampling over
/// FastTrack analysis.
class LiteRaceDetector : public Detector {
public:
  /// \p SiteToMethod maps every site to its containing method; sites beyond
  /// the vector fall into a synthetic method of their own.
  LiteRaceDetector(RaceSink &Sink, std::vector<MethodId> SiteToMethod,
                   uint64_t Seed, LiteRaceConfig Config = {})
      : Detector(Sink), Config(Config), SiteToMethod(std::move(SiteToMethod)),
        Random(Seed) {
    if (Config.UseAccordionClocks)
      Sync.enableRecycling();
  }

  const char *name() const override { return "literace"; }

  void fork(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.fork(Parent, Child, Stats);
  }
  void join(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.join(Parent, Child, Stats);
  }
  void acquire(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquire(Tid, Lock, Stats);
  }
  void release(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.release(Tid, Lock, Stats);
  }
  void syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquireReleasePairs(Tid, Lock, Pairs, Stats);
  }
  void volatileRead(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileRead(Tid, Vol, Stats);
  }
  void volatileWrite(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileWrite(Tid, Vol, Stats);
  }

  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;

  /// Batched dispatch. Without a plan, the bursty samplers and their RNG
  /// advance for *every* access -- owned or not -- so the decision stream
  /// is replica-identical at O(trace) cost; foreign accesses advance the
  /// sampler only, touching no stats and no variable metadata. With a
  /// plan, decisions are bit lookups by trace position and foreign
  /// accesses are skipped outright.
  using Detector::accessBatch;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override;

  /// Shard-local iff a sampler plan is attached: the plan replaces the
  /// full-stream sampler simulation, so replicas can be fed owned runs
  /// alone.
  bool accessAnalysisIsShardLocal() const override { return Plan != nullptr; }

  /// Attaches a precomputed decision plan (null detaches). The plan must
  /// outlive the detector and must have been computed over the exact
  /// trace this detector replays (same seed and config).
  void setSamplerPlan(const LiteRaceSamplerPlan *P) { Plan = P; }

  /// Computes the full sampler decision stream for \p T in one pass:
  /// exactly the decisions a planless detector constructed with \p Seed
  /// and \p Config would make while replaying \p T.
  static LiteRaceSamplerPlan
  computeSamplerPlan(TraceSpan T, const std::vector<MethodId> &SiteToMethod,
                     uint64_t Seed, LiteRaceConfig Config = {});

  void threadBegin(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.ensureThread(Sync.slotOf(Tid));
  }

  void threadExit(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.threadExit(Tid);
  }

  /// Accordion clocks: reclaim dominated dead slots and compact (no-op
  /// unless LiteRaceConfig::UseAccordionClocks is set).
  size_t recycleDeadSlots() override;

  size_t slotCount() const override { return Sync.slotCount(); }
  size_t peakSlotCount() const override { return Sync.peakSlotCount(); }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Fraction of data accesses actually analysed so far (LiteRace's
  /// effective sampling rate; the paper reports ~1.1% for eclipse with
  /// burst length 1000).
  double effectiveRate() const { return effectiveRateFromStats(Stats); }

  /// The same rate computed from (possibly merged) counters: sampled
  /// accesses take the slow-sampling counters, skipped ones the
  /// fast-non-sampling counters, so the rate is a pure function of stats.
  static double effectiveRateFromStats(const DetectorStats &Stats);

private:
  /// Bursty sampler state for one (method, thread) pair. Value-initialized
  /// by the flat table; Initialized distinguishes a fresh slot.
  struct Sampler {
    double Rate = 0.0;
    uint32_t BurstRemaining = 0;
    bool Initialized = false;
    uint64_t SkipRemaining = 0;
  };

  struct VarState {
    ReadMap R;
    Epoch W;
    SiteId WSite = InvalidId;
  };

  /// The shared sampler-advance step: returns true if the access is
  /// analysed, updating burst/skip state and drawing from \p Random on
  /// burst completion. Used identically by live detectors and
  /// computeSamplerPlan so their decision streams cannot diverge.
  static bool advanceSampler(Sampler &State, Rng &Random,
                             const LiteRaceConfig &Config);

  /// Returns true if this access should be analysed, advancing the
  /// sampler's burst/skip state.
  bool shouldSample(ThreadId Tid, SiteId Site);

  static MethodId methodFor(SiteId Site,
                            const std::vector<MethodId> &SiteToMethod) {
    return Site < SiteToMethod.size() ? SiteToMethod[Site]
                                      : SiteToMethod.size() + Site;
  }

  MethodId methodOf(SiteId Site) const {
    return methodFor(Site, SiteToMethod);
  }

  VarState &ensureVar(VarId Var) {
    if (Var >= Vars.size())
      Vars.resize(Var + 1);
    return Vars[Var];
  }

  void analyzeRead(ThreadId Tid, VarId Var, SiteId Site);
  void analyzeWrite(ThreadId Tid, VarId Var, SiteId Site);

  /// Backs the per-variable table, the sampler table, and their blocks.
  /// MUST stay the first data member: the later members free their blocks
  /// back into this arena while being destroyed.
  Arena Metadata;

  LiteRaceConfig Config;
  std::vector<MethodId> SiteToMethod;
  Rng Random;
  SyncState Sync;
  std::vector<VarState, ArenaAllocator<VarState>> Vars;
  /// (method << 32 | thread) -> sampler, in the flat open-addressing
  /// table (one probe on the per-access hot path, arena-backed growth).
  FlatVarTable<Sampler, uint64_t> Samplers;
  const LiteRaceSamplerPlan *Plan = nullptr;
};

} // namespace pacer

#endif // PACER_DETECTORS_LITERACEDETECTOR_H
