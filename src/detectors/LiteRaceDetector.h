//===- detectors/LiteRaceDetector.h - Online LiteRace baseline -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *online* implementation of LiteRace (Marino et al., PLDI 2009) as the
/// paper's Section 5.3 describes building it for comparison: full
/// instrumentation of all synchronization operations (so no false
/// happens-before is ever missed), with data reads and writes sampled per
/// *code* region using adaptive bursty sampling. Each (method, thread) pair
/// starts at a 100% sampling rate and decays toward a 0.1% floor as the
/// method grows hot -- the cold-region hypothesis. Analysis on sampled
/// accesses is FastTrack's.
///
/// Matching the paper's variant, randomness is added when resetting the
/// sampling counter so different trials catch different races; the default
/// burst length is 1000 (the paper switched from 10 to 1000 to reach ~1%
/// effective rates).
///
/// Because LiteRace samples code rather than data, it never discards
/// metadata, so its space overhead is proportional to the data touched, not
/// the sampling rate -- the behaviour Figure 10 shows. And because a race
/// is found only when *both* accesses are sampled, a race between two hot
/// accesses is detected at roughly (0.1%)^2: Figure 6's missed races.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_LITERACEDETECTOR_H
#define PACER_DETECTORS_LITERACEDETECTOR_H

#include "core/Epoch.h"
#include "core/ReadMap.h"
#include "detectors/Detector.h"
#include "detectors/SyncState.h"
#include "support/Rng.h"

#include <unordered_map>
#include <vector>

namespace pacer {

/// Method identifier: the code region whose execution frequency drives the
/// adaptive sampler.
using MethodId = uint32_t;

/// Adaptive bursty sampling parameters.
struct LiteRaceConfig {
  /// Accesses analysed per burst.
  uint32_t BurstLength = 1000;
  /// Starting per-method-thread sampling rate.
  double InitialRate = 1.0;
  /// Floor rate; the original LiteRace bottoms out at 0.1%.
  double MinRate = 0.001;
  /// Multiplier applied to the rate after each completed burst.
  double DecayFactor = 0.5;
  /// Randomize the skip counter on reset (the paper's modification to the
  /// otherwise deterministic original).
  bool RandomizeSkip = true;
};

/// Online LiteRace: adaptive per-(method, thread) bursty sampling over
/// FastTrack analysis.
class LiteRaceDetector : public Detector {
public:
  /// \p SiteToMethod maps every site to its containing method; sites beyond
  /// the vector fall into a synthetic method of their own.
  LiteRaceDetector(RaceSink &Sink, std::vector<MethodId> SiteToMethod,
                   uint64_t Seed, LiteRaceConfig Config = {})
      : Detector(Sink), Config(Config), SiteToMethod(std::move(SiteToMethod)),
        Random(Seed) {}

  const char *name() const override { return "literace"; }

  void fork(ThreadId Parent, ThreadId Child) override {
    Sync.fork(Parent, Child, Stats);
  }
  void join(ThreadId Parent, ThreadId Child) override {
    Sync.join(Parent, Child, Stats);
  }
  void acquire(ThreadId Tid, LockId Lock) override {
    Sync.acquire(Tid, Lock, Stats);
  }
  void release(ThreadId Tid, LockId Lock) override {
    Sync.release(Tid, Lock, Stats);
  }
  void volatileRead(ThreadId Tid, VolatileId Vol) override {
    Sync.volatileRead(Tid, Vol, Stats);
  }
  void volatileWrite(ThreadId Tid, VolatileId Vol) override {
    Sync.volatileWrite(Tid, Vol, Stats);
  }

  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;

  /// Batched dispatch that keeps the bursty samplers replica-identical:
  /// the samplers and their RNG are *code*-indexed, not data-indexed, so
  /// every shard replica advances them for every access -- owned or not
  /// -- and the sampling decisions (hence the analysed subsequence) match
  /// sequential replay exactly. Foreign accesses advance the sampler
  /// only; they touch no stats and no variable metadata.
  using Detector::accessBatch;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override;

  /// The bursty samplers must advance on *every* access (owned or not),
  /// so replicas cannot be fed owned runs alone.
  bool accessAnalysisIsShardLocal() const override { return false; }

  void threadBegin(ThreadId Tid) override { Sync.ensureThread(Tid); }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Fraction of data accesses actually analysed so far (LiteRace's
  /// effective sampling rate; the paper reports ~1.1% for eclipse with
  /// burst length 1000).
  double effectiveRate() const { return effectiveRateFromStats(Stats); }

  /// The same rate computed from (possibly merged) counters: sampled
  /// accesses take the slow-sampling counters, skipped ones the
  /// fast-non-sampling counters, so the rate is a pure function of stats.
  static double effectiveRateFromStats(const DetectorStats &Stats);

private:
  /// Bursty sampler state for one (method, thread) pair.
  struct Sampler {
    double Rate;
    uint32_t BurstRemaining;
    uint64_t SkipRemaining = 0;
  };

  struct VarState {
    ReadMap R;
    Epoch W;
    SiteId WSite = InvalidId;
  };

  /// Returns true if this access should be analysed, advancing the
  /// sampler's burst/skip state.
  bool shouldSample(ThreadId Tid, SiteId Site);

  MethodId methodOf(SiteId Site) const {
    return Site < SiteToMethod.size() ? SiteToMethod[Site]
                                      : SiteToMethod.size() + Site;
  }

  VarState &ensureVar(VarId Var) {
    if (Var >= Vars.size())
      Vars.resize(Var + 1);
    return Vars[Var];
  }

  void analyzeRead(ThreadId Tid, VarId Var, SiteId Site);
  void analyzeWrite(ThreadId Tid, VarId Var, SiteId Site);

  LiteRaceConfig Config;
  std::vector<MethodId> SiteToMethod;
  Rng Random;
  SyncState Sync;
  std::vector<VarState> Vars;
  std::unordered_map<uint64_t, Sampler> Samplers;
};

} // namespace pacer

#endif // PACER_DETECTORS_LITERACEDETECTOR_H
