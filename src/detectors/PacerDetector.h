//===- detectors/PacerDetector.h - PACER sampling race detector -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PACER algorithm (the paper's Section 3 and Appendix A): FastTrack
/// during global sampling periods; during non-sampling periods the analysis
///
///  * stops incrementing vector clocks ("timeless" periods; Table 7
///    Rule 2), so redundant synchronization makes clock values converge;
///  * detects redundant communication with per-thread *version vectors*
///    and per-lock/volatile *version epochs*, turning redundant O(n) joins
///    into O(1) "fast joins" (Algorithm 11, Table 7 Rules 4-6);
///  * performs *shallow* clock copies at releases by sharing the thread's
///    clock payload, cloning lazily before any mutation (Algorithm 9);
///  * records no read/write accesses and discards recorded accesses that
///    can no longer be the first access of a reportable race, erasing a
///    variable's metadata entirely when both its read map and write epoch
///    become null (Algorithms 12-13, Table 4).
///
/// PACER reports every *sampled shortest race*: if the first access of a
/// shortest race falls in a sampling period, the race is reported no matter
/// when the second access occurs (Theorem 2). Hence each dynamic race is
/// detected with probability equal to the sampling rate.
///
/// Read/write instrumentation follows the paper's inlined fast path: when
/// not sampling and the variable has no metadata, the hook returns after a
/// single flag-and-lookup check.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_PACERDETECTOR_H
#define PACER_DETECTORS_PACERDETECTOR_H

#include "core/Epoch.h"
#include "core/FlatVarTable.h"
#include "core/ReadMap.h"
#include "core/SlotRecycler.h"
#include "core/SyncClock.h"
#include "core/VersionEpoch.h"
#include "detectors/Detector.h"
#include "support/Arena.h"

#include <vector>

namespace pacer {

/// Configuration knobs; defaults reproduce the paper's system. The
/// alternates exist for the ablation benchmarks in bench/.
struct PacerConfig {
  /// Instrument data reads and writes. Disabling yields the paper's
  /// "OM + sync ops" overhead configuration (Figure 7), which tracks
  /// synchronization only.
  bool InstrumentReadsWrites = true;

  /// Use version epochs/vectors to skip redundant joins (Algorithm 11's
  /// fast path). Disabling forces the O(n) comparison on every join.
  bool UseVersionFastJoins = true;

  /// Share clock payloads via shallow copies during non-sampling periods
  /// (Algorithm 9). Disabling forces deep copies everywhere.
  bool UseClockSharing = true;

  /// Discard read/write metadata during non-sampling periods (Table 4's
  /// non-sampling column). Disabling keeps whatever FastTrack would have
  /// kept -- still sound, but space stops scaling with the sampling rate;
  /// the ablation bench shows this is where PACER's space win comes from.
  bool DiscardMetadata = true;

  /// Accordion clocks (Christiaens & De Bosschere), the production
  /// improvement the paper's Section 5.1 points to: reuse thread-clock
  /// slots soundly so vector clocks grow with the number of *live*
  /// threads, not the number ever started. A dead (exited or joined)
  /// thread's slot is recycled once its final clock is dominated by every
  /// live thread's -- then none of its accesses can be the first access
  /// of a future race, so its read/write metadata is discarded, its
  /// version epochs are invalidated, and its clock components reset. When
  /// enough slots are free, clocks are *compacted*: live slots renumber
  /// onto a dense prefix and every clock trims its tail. The runtime
  /// sweeps via recycleDeadSlots() after every join and thread exit, and
  /// the detector additionally sweeps at sampling-period boundaries (the
  /// paper's GC moments). Implemented on the core SlotRecycler.
  bool UseAccordionClocks = false;

  /// Route non-sampling epochs through the phase-specialized cold batch
  /// kernel (coldAccessBatch): block-staged probes with software prefetch
  /// and batched fast-path counters instead of per-access dispatch.
  /// Observationally identical to the per-access loop; disabling it forces
  /// the generic loop, which is the baseline the micro_coldpath benchmark
  /// measures the kernel against. (Accordion clocks always take the
  /// per-access path for slot bookkeeping.)
  bool UseColdBatchKernel = true;

  /// Route sampling epochs through the hot batch kernel (hotAccessBatch):
  /// stage each 64-access block's keys into struct-of-arrays and resolve
  /// them with one FlatVarTable::findBlock -- a kernel-dispatched gather
  /// probe (vpgatherdd tag compare on AVX2/AVX-512) that only falls back
  /// to the scalar chain walk on collisions -- then run the full sampling
  /// analysis against the pre-resolved entries. Observationally identical
  /// to the per-access loop: sampling never erases entries, stale-null
  /// results re-resolve through getOrInsert, and a table rehash inside a
  /// block is detected via rehashEpoch() and re-probed. (Accordion clocks
  /// take the per-access path, as with the cold kernel.)
  bool UseHotBatchKernel = true;
};

/// PACER: proportional sampling race detection on top of FastTrack.
class PacerDetector : public Detector {
public:
  explicit PacerDetector(RaceSink &Sink, PacerConfig Config = {})
      : Detector(Sink), Config(Config) {
    if (Config.UseAccordionClocks)
      Recycler.enable();
  }

  const char *name() const override { return "pacer"; }

  void fork(ThreadId Parent, ThreadId Child) override;
  void join(ThreadId Parent, ThreadId Child) override;
  void acquire(ThreadId Tid, LockId Lock) override;
  void release(ThreadId Tid, LockId Lock) override;

  /// Coalesced same-lock acquire/release pairs (Detector::syncBatch),
  /// collapsed to O(1) per run. After the first pair the lock's clock and
  /// version epoch describe exactly this thread's frontier, so each
  /// further acquire is a guaranteed fast join (or a no-op slow join) and
  /// each further release re-copies a clock that changed in at most its
  /// own component. Outside sampling periods the middle pairs are pure
  /// counter arithmetic -- timeless clocks do not move at all.
  void syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) override;
  void volatileRead(ThreadId Tid, VolatileId Vol) override;
  void volatileWrite(ThreadId Tid, VolatileId Vol) override;
  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;

  /// Batched epoch dispatch, phase-routed: the replay layer guarantees no
  /// sampling-period boundary falls inside a batch, so the sampling flag
  /// is loop-invariant and one test picks the whole epoch's kernel --
  /// coldAccessBatch() outside sampling periods, the per-access loop
  /// inside them (sampling accesses mutate metadata on every access, so
  /// there is nothing to batch away).
  using Detector::accessBatch;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override;

  /// Materializes the thread's clock slot at first sight in the trace,
  /// pinning slot allocation and Started timing to a pure function of the
  /// trace so shard replicas stay identical.
  void threadBegin(ThreadId Tid) override;

  /// With accordion clocks, retires the thread's slot with a snapshot of
  /// its final clock; the slot is reclaimed once every live thread
  /// dominates the snapshot. No-op otherwise (the paper's prototype keeps
  /// dead threads' clock entries forever).
  void threadExit(ThreadId Tid) override;

  /// The sbegin() action: sets the sampling flag and increments every
  /// thread's vector clock and version (Table 5 Rule 1), which restores
  /// strict well-formedness (Lemma 5).
  void beginSamplingPeriod() override;

  /// The send() action: clears the sampling flag (Table 5 Rule 2).
  void endSamplingPeriod() override;

  bool isSampling() const override { return Sampling; }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Number of variables currently holding metadata (not yet discarded).
  size_t trackedVariableCount() const { return Vars.size(); }

  /// Accordion clocks: recycles every dead thread slot whose final clock
  /// is dominated by all live threads, then compacts clocks onto a dense
  /// slot prefix when at least half the slots are free. Returns the
  /// number of slots recycled. Invoked by the runtime after every join
  /// and thread exit, and by beginSamplingPeriod(); no-op unless
  /// PacerConfig::UseAccordionClocks is set.
  size_t recycleDeadSlots() override;

  /// Number of thread-clock slots backing clocks and metadata vectors.
  size_t slotCount() const override { return Threads.size(); }

  /// High-water slotCount() over the run.
  size_t peakSlotCount() const override {
    return Config.UseAccordionClocks ? Recycler.peakSlotCount()
                                     : Threads.size();
  }

  /// Number of thread-clock slots currently backing live threads.
  size_t liveSlotCount() const;

  // --- Test hooks for the well-formedness property tests (Appendix B) ---

  /// Thread \p Tid's current vector clock.
  const VectorClock &threadClockForTest(ThreadId Tid) const;
  /// Thread \p Tid's current version vector.
  const VersionVector &threadVersionsForTest(ThreadId Tid) const;
  /// Lock \p Lock's clock payload (null if the lock was never released).
  const VectorClock *lockClockForTest(LockId Lock) const;
  /// Volatile \p Vol's clock payload.
  const VectorClock *volatileClockForTest(VolatileId Vol) const;
  /// Lock \p Lock's version epoch.
  VersionEpoch lockVersionEpochForTest(LockId Lock) const;
  /// Volatile \p Vol's version epoch.
  VersionEpoch volatileVersionEpochForTest(VolatileId Vol) const;
  /// Payload identity of a thread/lock clock, for the sharing tests.
  const void *threadClockKeyForTest(ThreadId Tid) const;
  const void *lockClockKeyForTest(LockId Lock) const;
  /// Read/write metadata of \p Var, or null if discarded.
  const ReadMap *readMapForTest(VarId Var) const;
  /// Write epoch of \p Var (none() if discarded or absent).
  Epoch writeEpochForTest(VarId Var) const;

private:
  struct ThreadState {
    SyncClock Clock;
    VersionVector Ver;
    bool Started = false;
  };

  /// State for locks and volatiles: a (possibly shared) clock plus a
  /// version epoch (Appendix A.3).
  struct SyncObjState {
    SyncClock Clock;
    VersionEpoch VEpoch; // Initially bottom (0@0).
  };

  /// Per-variable metadata; the entry is erased outright once both parts
  /// are null, which is how space stays proportional to the sampling rate.
  struct VarState {
    ReadMap R;
    Epoch W;
    SiteId WSite = InvalidId;
  };

  ThreadState &ensureThread(ThreadId Tid);
  SyncObjState &ensureLock(LockId Lock);
  SyncObjState &ensureVolatile(VolatileId Vol);

  /// Maps a program thread id to its clock slot. Identity when accordion
  /// clocks are disabled; otherwise allocates (or reuses) a slot on first
  /// sight.
  ThreadId slotOf(ThreadId External);

  /// Maps a slot back to the program thread id it currently backs (for
  /// race reports). Identity when accordion clocks are disabled.
  ThreadId externalOf(ThreadId Slot) const {
    if (!Config.UseAccordionClocks)
      return Slot;
    ThreadId External = Recycler.externalOf(Slot);
    return External == InvalidId ? Slot : External;
  }

  /// Purges every trace of slot \p Slot from the analysis state (the
  /// recycler's purge callback; the recycler itself frees the slot).
  void purgeSlot(ThreadId Slot);

  /// Applies a compaction remap from the recycler to every clock, version
  /// vector, version epoch, write epoch, and read map the detector owns.
  void compactSlots(const SlotRemap &Remap);

  /// vepoch(t): the current version of thread \p Tid's clock (v@t with
  /// v = ver_t[t], Appendix A.3).
  VersionEpoch threadVersionEpoch(const ThreadState &State, ThreadId Tid) {
    return VersionEpoch::make(State.Ver.get(Tid), Tid);
  }

  /// Algorithm 10 / Table 7 Rules 2-3: increments \p Tid's clock and
  /// version when sampling; no-op otherwise.
  void incrementThread(ThreadId Tid);

  /// Algorithm 9 / Table 7 Rule 1: copies \p Tid's clock into \p Target
  /// (shallow share when not sampling) and sets Target's version epoch to
  /// vepoch(t).
  void copyThreadClockTo(SyncObjState &Target, ThreadId Tid);

  /// Algorithm 11 / Table 7 Rules 4-6: C_t <- C_t join S_o, using the
  /// source's version epoch to skip redundant joins.
  void joinIntoThread(ThreadId Tid, const SyncClock &SourceClock,
                      VersionEpoch SourceVersion);

  /// Algorithm 16 / Table 7 Rules 7-9: V_x <- V_x join C_t.
  void joinIntoVolatile(SyncObjState &Vol, ThreadId Tid);

  /// The non-sampling cold kernel: analyses one phase-pure epoch with no
  /// per-access dispatch. With no tracked variables the epoch reduces to
  /// two counter additions (non-sampling accesses never insert metadata,
  /// so emptiness is loop-invariant downward). Otherwise accesses are
  /// staged block-wise into (var, tid, isWrite) struct-of-arrays, the
  /// FlatVarTable probe line of each staged key is prefetched a block
  /// ahead of its probe, misses fold into branchless fast-path counters,
  /// and only hits -- rare at low rates -- fall through to the full
  /// read()/write() discard logic. Bit-identical to the per-access loop.
  void coldAccessBatch(std::span<const Action> Batch,
                       const AccessShard &Shard);

  /// The sampling-phase hot kernel: stages 64-wide blocks and resolves
  /// their var-table entries with one gather-probe findBlock per block
  /// before running the unchanged sampling analysis on each access.
  void hotAccessBatch(std::span<const Action> Batch,
                      const AccessShard &Shard);

  /// read()/write() bodies after the arena scope, slot mapping, and table
  /// probe: \p Found is the live result of Vars.find(Var) (or a
  /// findBlock-resolved pointer that is still valid or provably
  /// re-resolvable). Shared by the per-access path and the hot kernel.
  void readImpl(ThreadId Tid, VarId Var, SiteId Site, VarState *Found);
  void writeImpl(ThreadId Tid, VarId Var, SiteId Site, VarState *Found);

  /// Sampling-period analysis bodies with the thread resolution hoisted
  /// out: \p Clock and \p Current are the accessing thread's clock and
  /// epoch (invariant across a batch run), \p Found the pre-probed table
  /// entry (null re-resolves through getOrInsert). Shared by the
  /// per-access path and the hot batch kernel.
  void readSampling(ThreadId Tid, const VectorClock &Clock, Epoch Current,
                    VarId Var, SiteId Site, VarState *Found);
  void writeSampling(ThreadId Tid, const VectorClock &Clock, Epoch Current,
                     VarId Var, SiteId Site, VarState *Found);

  void reportPriorWriteRace(const VarState &State, VarId Var, ThreadId Tid,
                            AccessKind Kind, SiteId Site);
  void reportPriorReadRaces(const VarState &State, const VectorClock &Clock,
                            VarId Var, ThreadId Tid, SiteId Site);

  /// Backs every access-path block this detector owns (spilled clocks,
  /// read-map entries, flat-table slots). MUST stay the first data member:
  /// members are destroyed in reverse declaration order, and the others
  /// free their blocks back into this arena while being destroyed.
  Arena Metadata;

  PacerConfig Config;
  bool Sampling = false;
  std::vector<ThreadState> Threads;
  std::vector<SyncObjState> Locks;
  std::vector<SyncObjState> Volatiles;
  /// Open-addressing flat table: the read/write fast path is one probe
  /// (usually one cache line) instead of a chained unordered_map lookup.
  FlatVarTable<VarState> Vars;

  /// Accordion-clock slot allocation and retirement (idle unless
  /// enabled); Threads is indexed by the slots it hands out.
  SlotRecycler Recycler;
};

} // namespace pacer

#endif // PACER_DETECTORS_PACERDETECTOR_H
