//===- detectors/Detector.h - Dynamic race-detector interface --*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation interface every detector implements. These are
/// exactly the analysis hooks a compiler pass (the paper uses Jikes RVM's
/// baseline and optimizing compilers) inserts: synchronization actions
/// (acquire, release, fork, join, volatile read/write) and data-variable
/// reads and writes, each carrying its static program site. The sampling
/// controller additionally delivers sbegin/send actions to detectors that
/// sample (PACER).
///
/// Detector statistics mirror the operation classification of the paper's
/// Table 3: slow (O(n)) vs fast (O(1)) vector-clock joins, deep vs shallow
/// copies, and slow-path vs fast-path read/write instrumentation, each
/// split by sampling vs non-sampling period.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_DETECTOR_H
#define PACER_DETECTORS_DETECTOR_H

#include "core/Ids.h"
#include "core/RaceReport.h"
#include "sim/Action.h"

#include <cstdint>
#include <span>

namespace pacer {

/// Ownership filter for sharded replay. Shard \p Index of \p Count owns
/// variable v iff v % Count == Index; a default-constructed shard (Count
/// <= 1) owns every variable, which is the sequential-replay case. The
/// partition is by VarId only, so per-variable metadata for a given
/// variable lives on exactly one shard.
class AccessShard {
public:
  constexpr AccessShard() = default;
  constexpr AccessShard(uint32_t Index, uint32_t Count)
      : Index(Index), Count(Count) {}

  /// The shard that owns everything (sequential replay).
  static constexpr AccessShard all() { return {}; }

  constexpr bool ownsAll() const { return Count <= 1; }
  constexpr bool owns(VarId Var) const {
    return Count <= 1 || Var % Count == Index;
  }

  constexpr uint32_t index() const { return Index; }
  constexpr uint32_t count() const { return Count; }

private:
  uint32_t Index = 0;
  uint32_t Count = 1;
};

/// Operation counters in the layout of the paper's Table 3.
struct DetectorStats {
  // Vector-clock joins (lock acquire, thread join, volatile read, fork).
  uint64_t SlowJoinsSampling = 0;
  uint64_t FastJoinsSampling = 0;
  uint64_t SlowJoinsNonSampling = 0;
  uint64_t FastJoinsNonSampling = 0;

  // Vector-clock copies (lock release, volatile write).
  uint64_t DeepCopiesSampling = 0;
  uint64_t ShallowCopiesSampling = 0;
  uint64_t DeepCopiesNonSampling = 0;
  uint64_t ShallowCopiesNonSampling = 0;

  // Read instrumentation. During sampling every read takes the slow path.
  uint64_t ReadSlowSampling = 0;
  uint64_t ReadSlowNonSampling = 0;
  uint64_t ReadFastNonSampling = 0;

  // Write instrumentation.
  uint64_t WriteSlowSampling = 0;
  uint64_t WriteSlowNonSampling = 0;
  uint64_t WriteFastNonSampling = 0;

  /// Dynamic races reported.
  uint64_t RacesReported = 0;

  /// Synchronization operations analysed (all kinds).
  uint64_t SyncOps = 0;

  /// Copy-on-write clones of shared clock payloads.
  uint64_t ClockClones = 0;

  uint64_t totalJoins() const {
    return SlowJoinsSampling + FastJoinsSampling + SlowJoinsNonSampling +
           FastJoinsNonSampling;
  }
  uint64_t totalCopies() const {
    return DeepCopiesSampling + ShallowCopiesSampling +
           DeepCopiesNonSampling + ShallowCopiesNonSampling;
  }
  uint64_t totalReads() const {
    return ReadSlowSampling + ReadSlowNonSampling + ReadFastNonSampling;
  }
  uint64_t totalWrites() const {
    return WriteSlowSampling + WriteSlowNonSampling + WriteFastNonSampling;
  }

  /// Accesses analysed on the hot (sampling / full-analysis) path. For a
  /// sampling detector this is the r-proportional slice of the trace; for
  /// FastTrack and GENERIC it is every access.
  uint64_t hotAccesses() const { return ReadSlowSampling + WriteSlowSampling; }

  /// Accesses handled on the cold (non-sampling) path: the inlined
  /// fast-path returns plus the non-sampling slow path that discards
  /// metadata. At PACER's operating rates this is >97% of the trace, so
  /// its per-event cost *is* the overhead curve (Figures 8-9).
  uint64_t coldAccesses() const {
    return ReadSlowNonSampling + ReadFastNonSampling + WriteSlowNonSampling +
           WriteFastNonSampling;
  }
};

/// Abstract dynamic race detector.
class Detector {
public:
  explicit Detector(RaceSink &Sink) : Sink(Sink) {}
  virtual ~Detector();

  Detector(const Detector &) = delete;
  Detector &operator=(const Detector &) = delete;

  /// Short human-readable algorithm name.
  virtual const char *name() const = 0;

  // --- Synchronization actions (always analysed in full) ---

  /// Thread \p Parent forks thread \p Child.
  virtual void fork(ThreadId Parent, ThreadId Child) = 0;

  /// Thread \p Parent joins (blocks on termination of) thread \p Child.
  virtual void join(ThreadId Parent, ThreadId Child) = 0;

  /// Thread \p Tid acquires lock \p Lock.
  virtual void acquire(ThreadId Tid, LockId Lock) = 0;

  /// Thread \p Tid releases lock \p Lock.
  virtual void release(ThreadId Tid, LockId Lock) = 0;

  /// Analyses \p Pairs consecutive acquire(Tid, Lock); release(Tid, Lock)
  /// pairs with no other action of any thread in between -- the shape a
  /// tight lock-protected loop leaves in the trace, and what the runtime's
  /// sync-run coalescer extracts. The default replays the per-event loop;
  /// overrides must be observationally identical to it (same stats, same
  /// metadata, same clock values), which is possible in O(1) because after
  /// the first pair each further join finds the lock clock already at the
  /// thread's frontier. Every sharded replica replays the full sync
  /// skeleton, so this is the per-shard fixed cost that compounds with
  /// --shards.
  virtual void syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs);

  /// Thread \p Tid reads volatile \p Vol.
  virtual void volatileRead(ThreadId Tid, VolatileId Vol) = 0;

  /// Thread \p Tid writes volatile \p Vol.
  virtual void volatileWrite(ThreadId Tid, VolatileId Vol) = 0;

  // --- Data accesses ---

  /// Thread \p Tid reads variable \p Var at program site \p Site.
  virtual void read(ThreadId Tid, VarId Var, SiteId Site) = 0;

  /// Thread \p Tid writes variable \p Var at program site \p Site.
  virtual void write(ThreadId Tid, VarId Var, SiteId Site) = 0;

  /// Analyses one *epoch* of the trace: a maximal run of data accesses
  /// with no synchronization action or sampling-period boundary inside
  /// it, so per-access analysis state is loop-invariant across the batch.
  /// Only accesses whose variable \p Shard owns are analysed; the default
  /// dispatches each owned access to read()/write(). Overrides must be
  /// observationally identical to that loop (same reports, same stats,
  /// same metadata) for every shard value.
  virtual void accessBatch(std::span<const Action> Batch,
                           const AccessShard &Shard);

  /// Sequential convenience: analyse the whole batch.
  void accessBatch(std::span<const Action> Batch) {
    accessBatch(Batch, AccessShard::all());
  }

  /// True iff analysing an owned access depends only on previously
  /// analysed *owned* accesses and synchronization actions -- never on
  /// accesses some other shard owns. When true, a sharded replica may be
  /// driven from just its owned-access runs (TraceIndex::replayShard's
  /// fast path); when false (LiteRace, whose code-indexed sampler
  /// advances for every access in the trace), the replica must observe
  /// the full access stream through a filtering accessBatch.
  virtual bool accessAnalysisIsShardLocal() const { return true; }

  // --- Thread lifecycle ---

  /// Thread \p Tid is about to perform its first action of the trace.
  /// Delivered by the runtime before that action (and before any fork by
  /// the thread itself); detectors use it to materialize per-thread state
  /// at a point that is a pure function of the trace, so every shard
  /// replica sees thread slots appear at identical times regardless of
  /// which accesses it owns.
  virtual void threadBegin(ThreadId Tid) { (void)Tid; }

  /// Thread \p Tid terminates (the scheduler's ThreadExit marker).
  virtual void threadExit(ThreadId Tid) { (void)Tid; }

  // --- Thread-slot recycling (accordion clocks; see core/SlotRecycler.h)

  /// Reclaims any dead thread slots whose final clocks every live thread
  /// dominates, and compacts clocks when enough slots have been freed.
  /// The runtime invokes this after every join and thread exit (the only
  /// points where a slot can die), so recycling behaviour is a pure
  /// function of the trace's synchronization prefix and is identical
  /// across replay engines and shard counts. Returns the number of slots
  /// reclaimed; detectors without recycling return 0.
  virtual size_t recycleDeadSlots() { return 0; }

  /// Number of thread slots currently backing clocks and metadata
  /// vectors. Without recycling this equals the number of threads ever
  /// seen; with recycling it is bounded by the live-thread high-water
  /// mark between compactions.
  virtual size_t slotCount() const { return 0; }

  /// High-water slotCount() over the run (compaction never lowers it).
  virtual size_t peakSlotCount() const { return slotCount(); }

  // --- Sampling actions (no-ops for non-sampling detectors) ---

  /// The sbegin() action: the analysis enters a sampling period.
  virtual void beginSamplingPeriod() {}

  /// The send() action: the analysis leaves a sampling period.
  virtual void endSamplingPeriod() {}

  /// True while in a sampling period. Non-sampling detectors analyse
  /// everything and report true.
  virtual bool isSampling() const { return true; }

  // --- Introspection ---

  /// Live analysis metadata in bytes: per-variable entries plus
  /// deduplicated synchronization clock payloads. Used by the Figure 10
  /// space experiment.
  virtual size_t liveMetadataBytes() const = 0;

  /// The per-variable slice of liveMetadataBytes(): bytes attributable to
  /// access metadata alone, independent of container capacity, so the
  /// value is additive across a variable partition. Invariant for
  /// detectors that track accesses: liveMetadataBytes() == sync-side
  /// bytes + accessMetadataBytes(). Sharded replay merges space
  /// measurements as replica 0's live bytes plus the other replicas'
  /// access bytes.
  virtual size_t accessMetadataBytes() const { return 0; }

  /// Operation counters.
  const DetectorStats &stats() const { return Stats; }

  /// Diagnostic tallies for the vectorized multi-key var-table probe.
  /// Deliberately *not* part of DetectorStats: the equivalence harnesses
  /// memcmp DetectorStats across engine variants, and a variant with hot
  /// kernels off never probes at all -- these counters describe how the
  /// answer was computed, not what it was.
  struct ProbeCounters {
    uint64_t VectorResolved = 0; ///< Keys the gather probe resolved.
    uint64_t ScalarFallback = 0; ///< Keys that walked the scalar chain.
  };
  const ProbeCounters &probeCounters() const { return Probe; }
  void addProbeCounters(const ProbeCounters &Other) {
    Probe.VectorResolved += Other.VectorResolved;
    Probe.ScalarFallback += Other.ScalarFallback;
  }

protected:
  /// Reports a race and bumps the counter; detectors then continue,
  /// updating metadata as if the execution were race free.
  void reportRace(const RaceReport &Report) {
    ++Stats.RacesReported;
    Sink.onRace(Report);
  }

  RaceSink &Sink;
  DetectorStats Stats;
  ProbeCounters Probe;
};

/// Detector that analyses nothing; the baseline for overhead experiments.
class NullDetector final : public Detector {
public:
  explicit NullDetector(RaceSink &Sink) : Detector(Sink) {}

  const char *name() const override { return "null"; }
  void fork(ThreadId, ThreadId) override {}
  void join(ThreadId, ThreadId) override {}
  void acquire(ThreadId, LockId) override {}
  void release(ThreadId, LockId) override {}
  void volatileRead(ThreadId, VolatileId) override {}
  void volatileWrite(ThreadId, VolatileId) override {}
  void read(ThreadId, VarId, SiteId) override {}
  void write(ThreadId, VarId, SiteId) override {}
  size_t liveMetadataBytes() const override { return 0; }
};

} // namespace pacer

#endif // PACER_DETECTORS_DETECTOR_H
