//===- detectors/SyncState.h - Shared synchronization tracking -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FastTrack "does not introduce new analysis for synchronization
/// operations; it uses the same algorithms as GENERIC" (Appendix C), and
/// LiteRace "fully instruments all synchronization operations"
/// (Section 2.3). This helper implements that shared GENERIC
/// synchronization-clock tracking (Algorithms 1-4, 14-15) so FastTrack and
/// LiteRace reuse one definition. PACER does not use it: PACER redefines
/// the low-level copy/increment/join operations.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_SYNCSTATE_H
#define PACER_DETECTORS_SYNCSTATE_H

#include "core/Epoch.h"
#include "core/VectorClock.h"
#include "detectors/Detector.h"

#include <vector>

namespace pacer {

/// GENERIC-style vector clocks for threads, locks, and volatiles.
class SyncState {
public:
  /// Returns thread \p Tid's clock, initializing fresh threads to
  /// inc_t(bottom) per the initial analysis state (Equation 7).
  VectorClock &ensureThread(ThreadId Tid) {
    if (Tid >= Threads.size())
      Threads.resize(Tid + 1);
    ThreadState &State = Threads[Tid];
    if (!State.Started) {
      State.Clock.increment(Tid);
      State.Started = true;
    }
    return State.Clock;
  }

  /// Thread \p Tid's current epoch c@t with c = C_t(t).
  Epoch threadEpoch(ThreadId Tid) {
    const VectorClock &Clock = ensureThread(Tid);
    return Epoch::make(Clock.get(Tid), Tid);
  }

  /// Algorithm 3. Updates \p Stats counters as O(n) operations.
  void fork(ThreadId Parent, ThreadId Child, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    // Ensure both entries first: ensureThread may reallocate the vector,
    // invalidating a previously taken reference.
    ensureThread(Parent);
    ensureThread(Child);
    VectorClock &ParentClock = Threads[Parent].Clock;
    VectorClock &ChildClock = Threads[Child].Clock;
    ChildClock.copyFrom(ParentClock);
    ChildClock.increment(Child);
    ParentClock.increment(Parent);
  }

  /// Algorithm 4.
  void join(ThreadId Parent, ThreadId Child, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    ensureThread(Parent);
    ensureThread(Child);
    VectorClock &ParentClock = Threads[Parent].Clock;
    VectorClock &ChildClock = Threads[Child].Clock;
    ParentClock.joinWith(ChildClock);
    ChildClock.increment(Child);
  }

  /// Algorithm 1.
  void acquire(ThreadId Tid, LockId Lock, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    ensureThread(Tid).joinWith(ensureLock(Lock));
  }

  /// Algorithm 2.
  void release(ThreadId Tid, LockId Lock, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.DeepCopiesSampling;
    VectorClock &Clock = ensureThread(Tid);
    ensureLock(Lock).copyFrom(Clock);
    Clock.increment(Tid);
  }

  /// Algorithm 14.
  void volatileRead(ThreadId Tid, VolatileId Vol, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    ensureThread(Tid).joinWith(ensureVolatile(Vol));
  }

  /// Algorithm 15.
  void volatileWrite(ThreadId Tid, VolatileId Vol, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    VectorClock &Clock = ensureThread(Tid);
    ensureVolatile(Vol).joinWith(Clock);
    Clock.increment(Tid);
  }

  /// Heap bytes of all synchronization clocks.
  size_t liveMetadataBytes() const {
    size_t Bytes = 0;
    for (const ThreadState &State : Threads)
      Bytes += sizeof(State) + State.Clock.heapBytes();
    for (const VectorClock &Clock : Locks)
      Bytes += sizeof(Clock) + Clock.heapBytes();
    for (const VectorClock &Clock : Volatiles)
      Bytes += sizeof(Clock) + Clock.heapBytes();
    return Bytes;
  }

private:
  struct ThreadState {
    VectorClock Clock;
    bool Started = false;
  };

  VectorClock &ensureLock(LockId Lock) {
    if (Lock >= Locks.size())
      Locks.resize(Lock + 1);
    return Locks[Lock];
  }
  VectorClock &ensureVolatile(VolatileId Vol) {
    if (Vol >= Volatiles.size())
      Volatiles.resize(Vol + 1);
    return Volatiles[Vol];
  }

  std::vector<ThreadState> Threads;
  std::vector<VectorClock> Locks;
  std::vector<VectorClock> Volatiles;
};

} // namespace pacer

#endif // PACER_DETECTORS_SYNCSTATE_H
