//===- detectors/SyncState.h - Shared synchronization tracking -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FastTrack "does not introduce new analysis for synchronization
/// operations; it uses the same algorithms as GENERIC" (Appendix C), and
/// LiteRace "fully instruments all synchronization operations"
/// (Section 2.3). This helper implements that shared GENERIC
/// synchronization-clock tracking (Algorithms 1-4, 14-15) so FastTrack and
/// LiteRace reuse one definition. PACER does not use it: PACER redefines
/// the low-level copy/increment/join operations.
///
/// The helper optionally hosts a core SlotRecycler (accordion clocks).
/// When enabled, every thread index stored in a clock is a recyclable
/// *slot*; the owning detector maps program thread ids through slotOf()
/// before analysis, maps slots back through externalOf() in race reports,
/// and forwards Detector::recycleDeadSlots() to recycleDeadSlots() here
/// with callbacks that purge and renumber its per-variable metadata.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_SYNCSTATE_H
#define PACER_DETECTORS_SYNCSTATE_H

#include "core/Epoch.h"
#include "core/SlotRecycler.h"
#include "core/VectorClock.h"
#include "detectors/Detector.h"

#include <vector>

namespace pacer {

/// GENERIC-style vector clocks for threads, locks, and volatiles.
class SyncState {
public:
  /// Accordion clocks: map program thread ids to recyclable slots. Must
  /// be called before any event is processed.
  void enableRecycling() { Recycler.enable(); }
  bool recyclingEnabled() const { return Recycler.enabled(); }

  /// Maps a program thread id to its clock slot (identity when recycling
  /// is disabled), materializing the slot's initial clock on first sight.
  ThreadId slotOf(ThreadId External) {
    if (!Recycler.enabled())
      return External;
    SlotRecycler::Mapping M = Recycler.map(External);
    if (M.Fresh)
      ensureThread(M.Slot);
    return M.Slot;
  }

  /// Maps a slot back to the program thread id it currently backs (for
  /// race reports). Identity when recycling is disabled.
  ThreadId externalOf(ThreadId Slot) const {
    if (!Recycler.enabled())
      return Slot;
    ThreadId External = Recycler.externalOf(Slot);
    return External == InvalidId ? Slot : External;
  }

  /// True while program thread \p External still holds a slot (always
  /// true with recycling off). Once an external's slot is reclaimed the
  /// thread can never act again, so detectors use this to garbage-collect
  /// side tables keyed by program thread id (e.g. LiteRace's samplers).
  bool externalHasSlot(ThreadId External) const {
    return !Recycler.enabled() || Recycler.lookup(External) != InvalidId;
  }

  /// Returns thread slot \p Tid's clock, initializing fresh slots to
  /// inc_t(bottom) per the initial analysis state (Equation 7). With
  /// recycling enabled the index must already be a slot (see slotOf).
  VectorClock &ensureThread(ThreadId Tid) {
    if (Tid >= Threads.size())
      Threads.resize(Tid + 1);
    ThreadState &State = Threads[Tid];
    if (!State.Started) {
      State.Clock.increment(Tid);
      State.Started = true;
    }
    return State.Clock;
  }

  /// Thread slot \p Tid's current epoch c@t with c = C_t(t).
  Epoch threadEpoch(ThreadId Tid) {
    const VectorClock &Clock = ensureThread(Tid);
    return Epoch::make(Clock.get(Tid), Tid);
  }

  /// Algorithm 3. Updates \p Stats counters as O(n) operations.
  void fork(ThreadId Parent, ThreadId Child, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    Parent = slotOf(Parent);
    Child = slotOf(Child);
    // Ensure both entries first: ensureThread may reallocate the vector,
    // invalidating a previously taken reference.
    ensureThread(Parent);
    ensureThread(Child);
    VectorClock &ParentClock = Threads[Parent].Clock;
    VectorClock &ChildClock = Threads[Child].Clock;
    ChildClock.copyFrom(ParentClock);
    ChildClock.increment(Child);
    ParentClock.increment(Parent);
  }

  /// Algorithm 4. With recycling, the child's slot is retired here with
  /// its pre-increment clock: the thread acts no more, and the increment
  /// below creates a virtual epoch no live thread ever joins.
  void join(ThreadId Parent, ThreadId Child, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    if (Recycler.enabled() && Recycler.lookup(Child) == InvalidId) {
      // The child's slot was already recycled: every live thread -- the
      // parent included -- dominates its final clock, so the join is a
      // semantic no-op. Mapping the child here would wrongly allocate a
      // fresh slot for a dead thread.
      ensureThread(slotOf(Parent));
      return;
    }
    Parent = slotOf(Parent);
    Child = slotOf(Child);
    ensureThread(Parent);
    ensureThread(Child);
    VectorClock &ParentClock = Threads[Parent].Clock;
    VectorClock &ChildClock = Threads[Child].Clock;
    ParentClock.joinWith(ChildClock);
    Recycler.retire(Child, ChildClock);
    ChildClock.increment(Child);
  }

  /// Algorithm 1.
  void acquire(ThreadId Tid, LockId Lock, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    Tid = slotOf(Tid);
    ensureThread(Tid).joinWith(ensureLock(Lock));
  }

  /// Algorithm 2.
  void release(ThreadId Tid, LockId Lock, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.DeepCopiesSampling;
    Tid = slotOf(Tid);
    VectorClock &Clock = ensureThread(Tid);
    ensureLock(Lock).copyFrom(Clock);
    Clock.increment(Tid);
  }

  /// \p Pairs consecutive acquire/release pairs of \p Lock by \p Tid
  /// (Detector::syncBatch), collapsed to O(1): after the first pair the
  /// lock clock is the thread's own snapshot, so each further acquire's
  /// join is a no-op and each further release only re-copies the clock
  /// with one more self-increment. Bit-identical to the per-event loop --
  /// same final clocks, stored lengths (the lock copy is never longer
  /// than the thread clock it came from), and stat counters.
  void acquireReleasePairs(ThreadId Tid, LockId Lock, uint64_t Pairs,
                           DetectorStats &Stats) {
    if (Pairs == 0)
      return;
    acquire(Tid, Lock, Stats);
    release(Tid, Lock, Stats);
    const uint64_t Rest = Pairs - 1;
    if (Rest == 0)
      return;
    Stats.SyncOps += 2 * Rest;
    Stats.SlowJoinsSampling += Rest;
    Stats.DeepCopiesSampling += Rest;
    const ThreadId Slot = slotOf(Tid);
    VectorClock &Clock = ensureThread(Slot);
    const uint32_t C = Clock.get(Slot);
    const auto Inc = static_cast<uint32_t>(Rest);
    Clock.set(Slot, C + Inc - 1);
    ensureLock(Lock).copyFrom(Clock);
    Clock.set(Slot, C + Inc);
  }

  /// Algorithm 14.
  void volatileRead(ThreadId Tid, VolatileId Vol, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    Tid = slotOf(Tid);
    ensureThread(Tid).joinWith(ensureVolatile(Vol));
  }

  /// Algorithm 15.
  void volatileWrite(ThreadId Tid, VolatileId Vol, DetectorStats &Stats) {
    ++Stats.SyncOps;
    ++Stats.SlowJoinsSampling;
    Tid = slotOf(Tid);
    VectorClock &Clock = ensureThread(Tid);
    ensureVolatile(Vol).joinWith(Clock);
    Clock.increment(Tid);
  }

  /// With recycling, retires the exiting thread's slot with its current
  /// clock (the thread acts no more, so this equals the snapshot a later
  /// join would take, letting the slot reclaim as soon as domination
  /// holds). No-op when recycling is disabled.
  void threadExit(ThreadId External) {
    if (!Recycler.enabled())
      return;
    ThreadId Slot = slotOf(External);
    ensureThread(Slot);
    Recycler.retire(Slot, Threads[Slot].Clock);
  }

  /// Reclaims dead slots dominated by every live thread's clock, then
  /// compacts when at least half the slots are free. \p PurgeVars scrubs
  /// the detector's per-variable metadata for one reclaimed slot (remove
  /// its read entries, null its write epochs); \p CompactVars applies a
  /// compaction remap to that metadata. This helper scrubs and renumbers
  /// its own thread/lock/volatile clocks. Returns slots reclaimed.
  template <typename PurgeVarsFn, typename CompactVarsFn>
  size_t recycleDeadSlots(PurgeVarsFn PurgeVars, CompactVarsFn CompactVars) {
    size_t Reclaimed = Recycler.recycle(
        [this](ThreadId T) -> const VectorClock & { return Threads[T].Clock; },
        [&](ThreadId Slot) {
          for (ThreadState &State : Threads)
            if (State.Started)
              State.Clock.set(Slot, 0);
          for (VectorClock &Clock : Locks)
            Clock.set(Slot, 0);
          for (VectorClock &Clock : Volatiles)
            Clock.set(Slot, 0);
          PurgeVars(Slot);
          // Reset the slot's own state so the next occupant starts from
          // a fresh clock.
          Threads[Slot] = ThreadState();
        });
    if (Recycler.shouldCompact()) {
      SlotRemap Remap = Recycler.compact();
      const uint32_t *NewToOld = Remap.NewToOld.data();
      const uint32_t NewCount = Remap.newCount();
      // NewToOld ascends, so every move source is at or beyond its
      // destination and no live state is overwritten before it moves.
      for (uint32_t New = 0; New != NewCount; ++New) {
        const uint32_t Old = NewToOld[New];
        if (Old != New)
          Threads[New] = std::move(Threads[Old]);
      }
      Threads.resize(NewCount);
      for (ThreadState &State : Threads)
        State.Clock.compactSlots(NewToOld, NewCount);
      for (VectorClock &Clock : Locks)
        Clock.compactSlots(NewToOld, NewCount);
      for (VectorClock &Clock : Volatiles)
        Clock.compactSlots(NewToOld, NewCount);
      CompactVars(Remap);
    }
    return Reclaimed;
  }

  /// Number of thread slots backing the clocks.
  size_t slotCount() const { return Threads.size(); }

  /// High-water slotCount() over the run.
  size_t peakSlotCount() const {
    return Recycler.enabled() ? Recycler.peakSlotCount() : Threads.size();
  }

  /// Heap bytes of all synchronization clocks (plus recycler bookkeeping
  /// when recycling is enabled).
  size_t liveMetadataBytes() const {
    size_t Bytes = 0;
    for (const ThreadState &State : Threads)
      Bytes += sizeof(State) + State.Clock.heapBytes();
    for (const VectorClock &Clock : Locks)
      Bytes += sizeof(Clock) + Clock.heapBytes();
    for (const VectorClock &Clock : Volatiles)
      Bytes += sizeof(Clock) + Clock.heapBytes();
    if (Recycler.enabled())
      Bytes += Recycler.liveMetadataBytes();
    return Bytes;
  }

private:
  struct ThreadState {
    VectorClock Clock;
    bool Started = false;
  };

  VectorClock &ensureLock(LockId Lock) {
    if (Lock >= Locks.size())
      Locks.resize(Lock + 1);
    return Locks[Lock];
  }
  VectorClock &ensureVolatile(VolatileId Vol) {
    if (Vol >= Volatiles.size())
      Volatiles.resize(Vol + 1);
    return Volatiles[Vol];
  }

  std::vector<ThreadState> Threads;
  std::vector<VectorClock> Locks;
  std::vector<VectorClock> Volatiles;
  SlotRecycler Recycler;
};

} // namespace pacer

#endif // PACER_DETECTORS_SYNCSTATE_H
