//===- detectors/FastTrackDetector.cpp ------------------------------------==//

#include "detectors/FastTrackDetector.h"

#include "core/ClockKernels.h"

#include <bit>
#include <cstring>

using namespace pacer;

void FastTrackDetector::reportWriteRace(const VarState &State, VarId Var,
                                        ThreadId Tid, AccessKind Kind,
                                        SiteId Site) {
  RaceReport Report;
  Report.Var = Var;
  Report.FirstKind = AccessKind::Write;
  Report.SecondKind = Kind;
  Report.FirstThread = Sync.externalOf(State.W.tid());
  Report.SecondThread = Sync.externalOf(Tid);
  Report.FirstSite = State.WSite;
  Report.SecondSite = Site;
  reportRace(Report);
}

void FastTrackDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  readWith(Clock, Epoch::make(Clock.get(Tid), Tid), Tid, Var, Site);
}

void FastTrackDetector::readWith(const VectorClock &Clock, Epoch Current,
                                 ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.ReadSlowSampling;
  VarState &State = ensureVar(Var);

  // Algorithm 7: same-epoch fast path.
  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Read, Site);

  if (!State.R.isMap()) {
    // |R_f| <= 1: overwrite with an epoch if ordered, else inflate to a
    // read map holding both concurrent reads.
    if (State.R.leqClock(Clock)) {
      State.R.setEpoch(Current, Site);
    } else {
      State.R.inflateToMap();
      State.R.setEntry(Tid, Clock.get(Tid), Site);
    }
    return;
  }
  // Shared reads: update this thread's component.
  State.R.setEntry(Tid, Clock.get(Tid), Site);
}

void FastTrackDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  writeWith(Clock, Epoch::make(Clock.get(Tid), Tid), Tid, Var, Site);
}

void FastTrackDetector::writeWith(const VectorClock &Clock, Epoch Current,
                                  ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.WriteSlowSampling;
  VarState &State = ensureVar(Var);

  // Algorithm 8: same-epoch fast path.
  if (State.W == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Write, Site);

  // check R_f <= C_t, reporting every concurrent prior read.
  State.R.forEachViolation(Clock, [&](const ReadEntry &Entry) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Read;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = Sync.externalOf(Entry.Tid);
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = Entry.Site;
    Report.SecondSite = Site;
    reportRace(Report);
  });

  // Clear the read map: always in the shared case; in the epoch case only
  // with the paper's modification enabled.
  if (State.R.isMap() || Config.ClearReadMapAtWrite)
    State.R.clear();

  State.W = Current;
  State.WSite = Site;
}

void FastTrackDetector::hotAccessBatch(std::span<const Action> Batch,
                                       const AccessShard &Shard) {
  Arena::Scope MetadataScope(&Metadata);
  constexpr size_t PrefetchDistance = 8;
  constexpr size_t BlockWidth = 64;
  const size_t N = Batch.size();
  uint64_t SameEpochReads = 0, SameEpochWrites = 0;

  ThreadId CurrentTid = InvalidId;
  ThreadId Slot = InvalidId;
  const VectorClock *Clock = nullptr;
  Epoch Current;

  // Staged run of consecutive owned writes by the current thread,
  // recorded as bare action pointers; every derived gather input is
  // computed at flush time, so a short run (cut by a read or a thread
  // switch) costs one pointer store per write and resolves through the
  // same inline compare as the cold kernel -- the gather's fixed cost
  // only ever buys back a run wide enough to amortize it. A wide flush
  // first dedups the run's lanes: a staged write whose var already
  // occurred earlier in the run is on-epoch by construction once the
  // earlier lane applies (every write leaves W at the current epoch), so
  // the repeated-write shape tight loops leave resolves with no memory
  // probe at all -- the gather would otherwise miss every such lane,
  // because it snapshots W before the run's own writes land. The
  // surviving first-occurrence lanes gather their write-epoch words
  // straight out of the dense Vars array (tid word, then clock word at
  // +4; Epoch packs (clock << 32) | tid, so on little-endian the tid is
  // the low word) and skip every write the compare proves on-epoch.
  // Nothing mutates Vars between staging and flush, so the offsets
  // computed at flush are the offsets the gather reads.
  constexpr size_t MinGatherLanes = 8;
  // Residency gate, sized to a typical last-level cache: the dense
  // direct-indexed table makes the scalar screen one indexed load plus a
  // compare, which the core overlaps across iterations on its own, so
  // staging + dedup + gather is pure per-lane overhead while the table
  // fits in cache. Only a DRAM-resident table -- where the batched probe
  // buys memory-level parallelism a serial screen cannot -- repays the
  // machinery. Evaluated once per batch; a table that grows past the
  // threshold mid-batch flips the engine on next batch.
  constexpr size_t GatherMinTableBytes = size_t(16) << 20;
  const bool GatherPays = Vars.size() * sizeof(VarState) > GatherMinTableBytes;
  const Action *Staged[BlockWidth];
  size_t Pending = 0;

  auto Flush = [&] {
    if (Pending == 0)
      return;
    if (Pending < MinGatherLanes) {
      // Narrow run (cut by a read or thread switch): resolve inline
      // (same decision, same counters -- only the probe tally moves to
      // the scalar column). The sequential screen subsumes the dedup.
      Probe.ScalarFallback += Pending;
      for (size_t I = 0; I != Pending; ++I) {
        const Action &A = *Staged[I];
        if (A.Target < Vars.size() && Vars[A.Target].W == Current) {
          ++SameEpochWrites;
          continue;
        }
        writeWith(*Clock, Current, Slot, A.Target, A.Site);
      }
      Pending = 0;
      return;
    }
    // Lane dedup through a 128-slot scratch set (<= 64 distinct vars, so
    // load stays under one half). Duplicate lanes are engine-resolved:
    // they count as vector-resolved in the probe tally because no scalar
    // chain walk (indeed no probe) happens for them.
    const Action *Unique[BlockWidth];
    size_t UniqueCount = 0;
    {
      uint32_t Scratch[128];
      std::memset(Scratch, 0, sizeof(Scratch));
      for (size_t I = 0; I != Pending; ++I) {
        const uint32_t Tagged = Staged[I]->Target + 1; // 0 means empty.
        uint32_t H = (Staged[I]->Target * 2654435761u) >> 25;
        while (Scratch[H] != 0 && Scratch[H] != Tagged)
          H = (H + 1) & 127;
        if (Scratch[H] == Tagged)
          continue;
        Scratch[H] = Tagged;
        Unique[UniqueCount++] = Staged[I];
      }
    }
    const size_t Dups = Pending - UniqueCount;
    SameEpochWrites += Dups;
    Probe.VectorResolved += Dups;
    if (UniqueCount < MinGatherLanes || Vars.empty() ||
        Vars.size() * sizeof(VarState) > static_cast<size_t>(INT32_MAX)) {
      // Few distinct vars, empty table, or a table too big for signed-32
      // gather lanes: resolve the survivors inline.
      Probe.ScalarFallback += UniqueCount;
      for (size_t I = 0; I != UniqueCount; ++I) {
        const Action &A = *Unique[I];
        if (A.Target < Vars.size() && Vars[A.Target].W == Current) {
          ++SameEpochWrites;
          continue;
        }
        writeWith(*Clock, Current, Slot, A.Target, A.Site);
      }
      Pending = 0;
      return;
    }
    const char *Base = reinterpret_cast<const char *>(Vars.data());
    uint32_t ByteOff[BlockWidth];
    uint32_t Expect[BlockWidth];
    uint64_t ForcedMiss = 0; // Vars the table does not yet reach.
    for (size_t I = 0; I != UniqueCount; ++I) {
      const VarId Var = Unique[I]->Target;
      if (Var < Vars.size()) {
        ByteOff[I] = static_cast<uint32_t>(
            reinterpret_cast<const char *>(&Vars[Var].W) - Base);
      } else {
        // Untracked var: a fresh entry cannot be on-epoch.
        ByteOff[I] = 0;
        ForcedMiss |= static_cast<uint64_t>(1) << I;
      }
      Expect[I] = Slot;
    }
    uint64_t Same = kernels::gatherEq(Base, ByteOff, Expect, UniqueCount);
    if (Same & ~ForcedMiss) {
      for (size_t I = 0; I != UniqueCount; ++I)
        Expect[I] = Current.clockValue();
      Same &= kernels::gatherEq(Base + sizeof(uint32_t), ByteOff, Expect,
                                UniqueCount);
    }
    Same &= ~ForcedMiss;
    const auto Skipped = static_cast<uint64_t>(std::popcount(Same));
    Probe.VectorResolved += Skipped;
    Probe.ScalarFallback += UniqueCount - Skipped;
    SameEpochWrites += Skipped;
    for (size_t I = 0; I != UniqueCount; ++I) {
      if (Same >> I & 1)
        continue;
      const Action &A = *Unique[I];
      writeWith(*Clock, Current, Slot, A.Target, A.Site);
    }
    Pending = 0;
  };

  for (size_t I = 0; I < N; ++I) {
    if (I + PrefetchDistance < N) {
      const VarId Ahead = Batch[I + PrefetchDistance].Target;
      if (Ahead < Vars.size())
        __builtin_prefetch(&Vars[Ahead]);
    }
    const Action &A = Batch[I];
    if (!Shard.owns(A.Target))
      continue;
    if (A.Tid != CurrentTid) {
      Flush();
      CurrentTid = A.Tid;
      Slot = Sync.slotOf(A.Tid);
      Clock = &Sync.ensureThread(Slot);
      Current = Epoch::make(Clock->get(Slot), Slot);
    }
    if (A.Kind == ActionKind::Read) {
      // A read between writes ends the write run: the staged writes
      // precede it in program order and must apply first.
      Flush();
      if (A.Target < Vars.size()) {
        const VarState &State = Vars[A.Target];
        if (State.R.isEpoch() && State.R.epoch() == Current) {
          ++SameEpochReads;
          continue;
        }
      }
      readWith(*Clock, Current, Slot, A.Target, A.Site);
      continue;
    }
    if (!GatherPays) {
      // Cache-resident table: the inline screen is already optimal.
      ++Probe.ScalarFallback;
      if (A.Target < Vars.size() && Vars[A.Target].W == Current) {
        ++SameEpochWrites;
        continue;
      }
      writeWith(*Clock, Current, Slot, A.Target, A.Site);
      continue;
    }
    if (Pending == BlockWidth)
      Flush();
    Staged[Pending++] = &A;
  }
  Flush();
  Stats.ReadSlowSampling += SameEpochReads;
  Stats.WriteSlowSampling += SameEpochWrites;
}

void FastTrackDetector::accessBatch(std::span<const Action> Batch,
                                    const AccessShard &Shard) {
  if (Config.UseColdBatchKernel && Config.UseHotBatchKernel)
    return hotAccessBatch(Batch, Shard);
  Arena::Scope MetadataScope(&Metadata);
  // Accesses never mutate thread clocks, so the clock reference and epoch
  // computed at a thread switch stay valid for the thread's whole run.
  // Re-fetch on every switch: ensureThread may resize the thread table.
  ThreadId CurrentTid = InvalidId;
  ThreadId Slot = InvalidId;
  const VectorClock *Clock = nullptr;
  Epoch Current;

  if (!Config.UseColdBatchKernel) {
    for (const Action &A : Batch) {
      if (!Shard.owns(A.Target))
        continue;
      if (A.Tid != CurrentTid) {
        CurrentTid = A.Tid;
        Slot = Sync.slotOf(A.Tid);
        Clock = &Sync.ensureThread(Slot);
        Current = Epoch::make(Clock->get(Slot), Slot);
      }
      if (A.Kind == ActionKind::Read)
        readWith(*Clock, Current, Slot, A.Target, A.Site);
      else
        writeWith(*Clock, Current, Slot, A.Target, A.Site);
    }
    return;
  }

  // Same-epoch pre-scan: Algorithm 7/8's O(1) path is a pure predicate of
  // (VarState, Current) with no side effect beyond one stat increment --
  // readWith()/writeWith() bump their counter *before* the check and the
  // check-passing path does nothing else. Testing it inline against the
  // dense Vars vector (prefetched a few accesses ahead) and deferring the
  // counters keeps repeated same-variable runs -- the overwhelmingly
  // common shape -- free of call and table-resize overhead. The predicate
  // requires Var < Vars.size(): a fresh entry has a null read map and no
  // write epoch, so ensureVar's resize cannot change its outcome.
  constexpr size_t PrefetchDistance = 8;
  const size_t N = Batch.size();
  uint64_t SameEpochReads = 0, SameEpochWrites = 0;
  for (size_t I = 0; I < N; ++I) {
    if (I + PrefetchDistance < N) {
      const VarId Ahead = Batch[I + PrefetchDistance].Target;
      if (Ahead < Vars.size())
        __builtin_prefetch(&Vars[Ahead]);
    }
    const Action &A = Batch[I];
    if (!Shard.owns(A.Target))
      continue;
    if (A.Tid != CurrentTid) {
      CurrentTid = A.Tid;
      Slot = Sync.slotOf(A.Tid);
      Clock = &Sync.ensureThread(Slot);
      Current = Epoch::make(Clock->get(Slot), Slot);
    }
    if (A.Kind == ActionKind::Read) {
      if (A.Target < Vars.size()) {
        const VarState &State = Vars[A.Target];
        if (State.R.isEpoch() && State.R.epoch() == Current) {
          ++SameEpochReads;
          continue;
        }
      }
      readWith(*Clock, Current, Slot, A.Target, A.Site);
    } else {
      if (A.Target < Vars.size() && Vars[A.Target].W == Current) {
        ++SameEpochWrites;
        continue;
      }
      writeWith(*Clock, Current, Slot, A.Target, A.Site);
    }
  }
  Stats.ReadSlowSampling += SameEpochReads;
  Stats.WriteSlowSampling += SameEpochWrites;
}

size_t FastTrackDetector::recycleDeadSlots() {
  if (!Config.UseAccordionClocks)
    return 0;
  Arena::Scope MetadataScope(&Metadata);
  return Sync.recycleDeadSlots(
      [this](ThreadId Slot) {
        // The reclaimed thread's accesses are dominated by every live
        // thread: none can be the first access of a future race, so its
        // read entries and write epochs are dead weight.
        for (VarState &State : Vars) {
          if (State.R.isNull() && State.W.isNone())
            continue;
          State.R.removeThread(Slot);
          if (!State.W.isNone() && State.W.tid() == Slot) {
            State.W = Epoch::none();
            State.WSite = InvalidId;
          }
        }
      },
      [this](const SlotRemap &Remap) {
        const uint32_t *OldToNew = Remap.OldToNew.data();
        // Purging removed every epoch and read entry naming a freed slot,
        // so a plain renumbering suffices.
        for (VarState &State : Vars) {
          State.R.remapThreads(OldToNew);
          if (!State.W.isNone())
            State.W =
                Epoch::make(State.W.clockValue(), OldToNew[State.W.tid()]);
        }
      });
}

size_t FastTrackDetector::accessMetadataBytes() const {
  size_t Bytes = 0;
  for (const VarState &State : Vars) {
    // Skip untracked slots (dense-vector holes below the max accessed
    // id): a touched variable always has a read map or a write epoch
    // since clock components start at 1, so the live set -- and therefore
    // this sum -- partitions exactly across shards.
    if (State.R.isNull() && State.W.isNone())
      continue;
    Bytes += sizeof(State) + State.R.heapBytes();
  }
  return Bytes;
}

size_t FastTrackDetector::liveMetadataBytes() const {
  return Sync.liveMetadataBytes() + accessMetadataBytes();
}
