//===- detectors/FastTrackDetector.cpp ------------------------------------==//

#include "detectors/FastTrackDetector.h"

using namespace pacer;

void FastTrackDetector::reportWriteRace(const VarState &State, VarId Var,
                                        ThreadId Tid, AccessKind Kind,
                                        SiteId Site) {
  RaceReport Report;
  Report.Var = Var;
  Report.FirstKind = AccessKind::Write;
  Report.SecondKind = Kind;
  Report.FirstThread = State.W.tid();
  Report.SecondThread = Tid;
  Report.FirstSite = State.WSite;
  Report.SecondSite = Site;
  reportRace(Report);
}

void FastTrackDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.ReadSlowSampling;
  const VectorClock &Clock = Sync.ensureThread(Tid);
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);
  VarState &State = ensureVar(Var);

  // Algorithm 7: same-epoch fast path.
  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Read, Site);

  if (!State.R.isMap()) {
    // |R_f| <= 1: overwrite with an epoch if ordered, else inflate to a
    // read map holding both concurrent reads.
    if (State.R.leqClock(Clock)) {
      State.R.setEpoch(Current, Site);
    } else {
      State.R.inflateToMap();
      State.R.setEntry(Tid, Clock.get(Tid), Site);
    }
    return;
  }
  // Shared reads: update this thread's component.
  State.R.setEntry(Tid, Clock.get(Tid), Site);
}

void FastTrackDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.WriteSlowSampling;
  const VectorClock &Clock = Sync.ensureThread(Tid);
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);
  VarState &State = ensureVar(Var);

  // Algorithm 8: same-epoch fast path.
  if (State.W == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Write, Site);

  // check R_f <= C_t, reporting every concurrent prior read.
  State.R.forEachViolation(Clock, [&](const ReadEntry &Entry) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Read;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = Entry.Tid;
    Report.SecondThread = Tid;
    Report.FirstSite = Entry.Site;
    Report.SecondSite = Site;
    reportRace(Report);
  });

  // Clear the read map: always in the shared case; in the epoch case only
  // with the paper's modification enabled.
  if (State.R.isMap() || Config.ClearReadMapAtWrite)
    State.R.clear();

  State.W = Current;
  State.WSite = Site;
}

size_t FastTrackDetector::liveMetadataBytes() const {
  size_t Bytes = Sync.liveMetadataBytes();
  for (const VarState &State : Vars)
    Bytes += sizeof(State) + State.R.heapBytes();
  return Bytes;
}
