//===- detectors/FastTrackDetector.cpp ------------------------------------==//

#include "detectors/FastTrackDetector.h"

using namespace pacer;

void FastTrackDetector::reportWriteRace(const VarState &State, VarId Var,
                                        ThreadId Tid, AccessKind Kind,
                                        SiteId Site) {
  RaceReport Report;
  Report.Var = Var;
  Report.FirstKind = AccessKind::Write;
  Report.SecondKind = Kind;
  Report.FirstThread = Sync.externalOf(State.W.tid());
  Report.SecondThread = Sync.externalOf(Tid);
  Report.FirstSite = State.WSite;
  Report.SecondSite = Site;
  reportRace(Report);
}

void FastTrackDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  readWith(Clock, Epoch::make(Clock.get(Tid), Tid), Tid, Var, Site);
}

void FastTrackDetector::readWith(const VectorClock &Clock, Epoch Current,
                                 ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.ReadSlowSampling;
  VarState &State = ensureVar(Var);

  // Algorithm 7: same-epoch fast path.
  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Read, Site);

  if (!State.R.isMap()) {
    // |R_f| <= 1: overwrite with an epoch if ordered, else inflate to a
    // read map holding both concurrent reads.
    if (State.R.leqClock(Clock)) {
      State.R.setEpoch(Current, Site);
    } else {
      State.R.inflateToMap();
      State.R.setEntry(Tid, Clock.get(Tid), Site);
    }
    return;
  }
  // Shared reads: update this thread's component.
  State.R.setEntry(Tid, Clock.get(Tid), Site);
}

void FastTrackDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  writeWith(Clock, Epoch::make(Clock.get(Tid), Tid), Tid, Var, Site);
}

void FastTrackDetector::writeWith(const VectorClock &Clock, Epoch Current,
                                  ThreadId Tid, VarId Var, SiteId Site) {
  ++Stats.WriteSlowSampling;
  VarState &State = ensureVar(Var);

  // Algorithm 8: same-epoch fast path.
  if (State.W == Current)
    return;

  // check W_f <= C_t.
  if (!State.W.precedes(Clock))
    reportWriteRace(State, Var, Tid, AccessKind::Write, Site);

  // check R_f <= C_t, reporting every concurrent prior read.
  State.R.forEachViolation(Clock, [&](const ReadEntry &Entry) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Read;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = Sync.externalOf(Entry.Tid);
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = Entry.Site;
    Report.SecondSite = Site;
    reportRace(Report);
  });

  // Clear the read map: always in the shared case; in the epoch case only
  // with the paper's modification enabled.
  if (State.R.isMap() || Config.ClearReadMapAtWrite)
    State.R.clear();

  State.W = Current;
  State.WSite = Site;
}

void FastTrackDetector::accessBatch(std::span<const Action> Batch,
                                    const AccessShard &Shard) {
  Arena::Scope MetadataScope(&Metadata);
  // Accesses never mutate thread clocks, so the clock reference and epoch
  // computed at a thread switch stay valid for the thread's whole run.
  // Re-fetch on every switch: ensureThread may resize the thread table.
  ThreadId CurrentTid = InvalidId;
  ThreadId Slot = InvalidId;
  const VectorClock *Clock = nullptr;
  Epoch Current;

  if (!Config.UseColdBatchKernel) {
    for (const Action &A : Batch) {
      if (!Shard.owns(A.Target))
        continue;
      if (A.Tid != CurrentTid) {
        CurrentTid = A.Tid;
        Slot = Sync.slotOf(A.Tid);
        Clock = &Sync.ensureThread(Slot);
        Current = Epoch::make(Clock->get(Slot), Slot);
      }
      if (A.Kind == ActionKind::Read)
        readWith(*Clock, Current, Slot, A.Target, A.Site);
      else
        writeWith(*Clock, Current, Slot, A.Target, A.Site);
    }
    return;
  }

  // Same-epoch pre-scan: Algorithm 7/8's O(1) path is a pure predicate of
  // (VarState, Current) with no side effect beyond one stat increment --
  // readWith()/writeWith() bump their counter *before* the check and the
  // check-passing path does nothing else. Testing it inline against the
  // dense Vars vector (prefetched a few accesses ahead) and deferring the
  // counters keeps repeated same-variable runs -- the overwhelmingly
  // common shape -- free of call and table-resize overhead. The predicate
  // requires Var < Vars.size(): a fresh entry has a null read map and no
  // write epoch, so ensureVar's resize cannot change its outcome.
  constexpr size_t PrefetchDistance = 8;
  const size_t N = Batch.size();
  uint64_t SameEpochReads = 0, SameEpochWrites = 0;
  for (size_t I = 0; I < N; ++I) {
    if (I + PrefetchDistance < N) {
      const VarId Ahead = Batch[I + PrefetchDistance].Target;
      if (Ahead < Vars.size())
        __builtin_prefetch(&Vars[Ahead]);
    }
    const Action &A = Batch[I];
    if (!Shard.owns(A.Target))
      continue;
    if (A.Tid != CurrentTid) {
      CurrentTid = A.Tid;
      Slot = Sync.slotOf(A.Tid);
      Clock = &Sync.ensureThread(Slot);
      Current = Epoch::make(Clock->get(Slot), Slot);
    }
    if (A.Kind == ActionKind::Read) {
      if (A.Target < Vars.size()) {
        const VarState &State = Vars[A.Target];
        if (State.R.isEpoch() && State.R.epoch() == Current) {
          ++SameEpochReads;
          continue;
        }
      }
      readWith(*Clock, Current, Slot, A.Target, A.Site);
    } else {
      if (A.Target < Vars.size() && Vars[A.Target].W == Current) {
        ++SameEpochWrites;
        continue;
      }
      writeWith(*Clock, Current, Slot, A.Target, A.Site);
    }
  }
  Stats.ReadSlowSampling += SameEpochReads;
  Stats.WriteSlowSampling += SameEpochWrites;
}

size_t FastTrackDetector::recycleDeadSlots() {
  if (!Config.UseAccordionClocks)
    return 0;
  Arena::Scope MetadataScope(&Metadata);
  return Sync.recycleDeadSlots(
      [this](ThreadId Slot) {
        // The reclaimed thread's accesses are dominated by every live
        // thread: none can be the first access of a future race, so its
        // read entries and write epochs are dead weight.
        for (VarState &State : Vars) {
          if (State.R.isNull() && State.W.isNone())
            continue;
          State.R.removeThread(Slot);
          if (!State.W.isNone() && State.W.tid() == Slot) {
            State.W = Epoch::none();
            State.WSite = InvalidId;
          }
        }
      },
      [this](const SlotRemap &Remap) {
        const uint32_t *OldToNew = Remap.OldToNew.data();
        // Purging removed every epoch and read entry naming a freed slot,
        // so a plain renumbering suffices.
        for (VarState &State : Vars) {
          State.R.remapThreads(OldToNew);
          if (!State.W.isNone())
            State.W =
                Epoch::make(State.W.clockValue(), OldToNew[State.W.tid()]);
        }
      });
}

size_t FastTrackDetector::accessMetadataBytes() const {
  size_t Bytes = 0;
  for (const VarState &State : Vars) {
    // Skip untracked slots (dense-vector holes below the max accessed
    // id): a touched variable always has a read map or a write epoch
    // since clock components start at 1, so the live set -- and therefore
    // this sum -- partitions exactly across shards.
    if (State.R.isNull() && State.W.isNone())
      continue;
    Bytes += sizeof(State) + State.R.heapBytes();
  }
  return Bytes;
}

size_t FastTrackDetector::liveMetadataBytes() const {
  return Sync.liveMetadataBytes() + accessMetadataBytes();
}
