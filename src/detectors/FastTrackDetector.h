//===- detectors/FastTrackDetector.h - FastTrack detector ------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FastTrack algorithm (the paper's Section 2.2, Algorithms 7-8):
/// precise vector-clock race detection with O(1) analysis for nearly all
/// reads and writes, using write *epochs* and adaptive read maps. This
/// implementation includes the paper's stated modification: the read map is
/// cleared at every write ("New: clear read map", Algorithm 8), which is
/// sound because the write races with any future access that would have
/// raced with the discarded reads, and makes FastTrack correspond exactly
/// to PACER at a 100% sampling rate.
///
/// The unmodified behaviour (original FastTrack keeps a read *epoch* across
/// a write) is available via FastTrackConfig for the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_FASTTRACKDETECTOR_H
#define PACER_DETECTORS_FASTTRACKDETECTOR_H

#include "core/Epoch.h"
#include "core/ReadMap.h"
#include "detectors/Detector.h"
#include "detectors/SyncState.h"
#include "support/Arena.h"

#include <vector>

namespace pacer {

/// Configuration knobs for FastTrack ablations.
struct FastTrackConfig {
  /// Clear the read map at writes even in the epoch case (the paper's
  /// modification to FastTrack). When false, a read epoch survives a write
  /// untouched, as in original FastTrack; the shared (map) case is cleared
  /// either way, as in Algorithm 8.
  bool ClearReadMapAtWrite = true;

  /// Accordion clocks: recycle dead threads' clock slots once every live
  /// thread dominates their final clocks, and compact clocks when enough
  /// slots free up (see core/SlotRecycler.h). Sound for a precise
  /// detector: a dominated dead thread's accesses can never again be the
  /// first access of a race, so purging them changes no report.
  bool UseAccordionClocks = false;

  /// Filter same-epoch (O(1)-path) accesses in accessBatch with an inline
  /// pre-scan -- prefetched table reads and deferred counters -- before
  /// falling into the clock-comparing slow path. Observationally identical
  /// to dispatching every access through readWith()/writeWith();
  /// disabling it forces that generic loop (the micro_coldpath baseline).
  bool UseColdBatchKernel = true;

  /// Hot-path gather engine: stage maximal same-thread write runs and
  /// test Algorithm 8's same-epoch fast path for up to 64 writes at once
  /// through the dispatched kernels::gatherEq (two vpgatherdd compares
  /// over the dense Vars array: tid word, then clock word). Only writes
  /// the gather proves off-epoch fall back to writeWith(), which re-runs
  /// the scalar check. Single-thread staging makes the skip sound: within
  /// a run, only this thread's own same-epoch writes can touch W, and
  /// they leave it equal to the staged expectation. Requires
  /// UseColdBatchKernel (it extends that pre-scan); bit-identical either
  /// way.
  bool UseHotBatchKernel = true;
};

/// FastTrack: epochs for writes, adaptive epoch/map for reads.
class FastTrackDetector : public Detector {
public:
  explicit FastTrackDetector(RaceSink &Sink, FastTrackConfig Config = {})
      : Detector(Sink), Config(Config) {
    if (Config.UseAccordionClocks)
      Sync.enableRecycling();
  }

  const char *name() const override { return "fasttrack"; }

  void fork(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.fork(Parent, Child, Stats);
  }
  void join(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.join(Parent, Child, Stats);
  }
  void acquire(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquire(Tid, Lock, Stats);
  }
  void release(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.release(Tid, Lock, Stats);
  }
  void syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquireReleasePairs(Tid, Lock, Pairs, Stats);
  }
  void volatileRead(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileRead(Tid, Vol, Stats);
  }
  void volatileWrite(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileWrite(Tid, Vol, Stats);
  }

  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;

  /// Batched epoch dispatch that hoists the per-access thread-clock
  /// lookup: no synchronization runs inside an epoch, so a thread's clock
  /// and epoch are loop invariants across consecutive accesses by the
  /// same thread. With UseColdBatchKernel the loop additionally performs
  /// the same-epoch check inline -- Algorithm 7/8's O(1) path becomes a
  /// prefetched table read plus a deferred counter, and only accesses that
  /// fail it pay the readWith()/writeWith() call.
  using Detector::accessBatch;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override;

  void threadBegin(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.ensureThread(Sync.slotOf(Tid));
  }

  void threadExit(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.threadExit(Tid);
  }

  /// Accordion clocks: reclaim dominated dead slots and compact (no-op
  /// unless FastTrackConfig::UseAccordionClocks is set).
  size_t recycleDeadSlots() override;

  size_t slotCount() const override { return Sync.slotCount(); }
  size_t peakSlotCount() const override { return Sync.peakSlotCount(); }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Test hook: thread \p Tid's clock.
  const VectorClock &threadClock(ThreadId Tid) {
    return Sync.ensureThread(Sync.slotOf(Tid));
  }

private:
  /// Per-variable metadata: read map R, write epoch W, and the write site.
  struct VarState {
    ReadMap R;
    Epoch W;
    SiteId WSite = InvalidId;
  };

  VarState &ensureVar(VarId Var) {
    if (Var >= Vars.size())
      Vars.resize(Var + 1);
    return Vars[Var];
  }

  void reportWriteRace(const VarState &State, VarId Var, ThreadId Tid,
                       AccessKind Kind, SiteId Site);

  /// Algorithm 7/8 bodies with the thread clock and epoch precomputed;
  /// read()/write() and accessBatch() share them.
  void readWith(const VectorClock &Clock, Epoch Current, ThreadId Tid,
                VarId Var, SiteId Site);
  void writeWith(const VectorClock &Clock, Epoch Current, ThreadId Tid,
                 VarId Var, SiteId Site);

  /// The UseHotBatchKernel arm of accessBatch: the cold pre-scan plus
  /// gather-staged write runs.
  void hotAccessBatch(std::span<const Action> Batch,
                      const AccessShard &Shard);

  /// Backs the per-variable table and its read-map/clock blocks. MUST
  /// stay the first data member: the later members free their blocks back
  /// into this arena while being destroyed.
  Arena Metadata;

  FastTrackConfig Config;
  SyncState Sync;
  std::vector<VarState, ArenaAllocator<VarState>> Vars;
};

} // namespace pacer

#endif // PACER_DETECTORS_FASTTRACKDETECTOR_H
