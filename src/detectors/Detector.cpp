//===- detectors/Detector.cpp ---------------------------------------------==//

#include "detectors/Detector.h"

using namespace pacer;

Detector::~Detector() = default;
