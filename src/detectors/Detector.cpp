//===- detectors/Detector.cpp ---------------------------------------------==//

#include "detectors/Detector.h"

using namespace pacer;

Detector::~Detector() = default;

void Detector::syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) {
  for (uint64_t I = 0; I != Pairs; ++I) {
    acquire(Tid, Lock);
    release(Tid, Lock);
  }
}

void Detector::accessBatch(std::span<const Action> Batch,
                           const AccessShard &Shard) {
  for (const Action &A : Batch) {
    if (!Shard.owns(A.Target))
      continue;
    if (A.Kind == ActionKind::Read)
      read(A.Tid, A.Target, A.Site);
    else
      write(A.Tid, A.Target, A.Site);
  }
}
