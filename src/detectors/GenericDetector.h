//===- detectors/GenericDetector.h - O(n) vector-clock detector -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GENERIC vector-clock race detection algorithm of the paper's
/// Section 2.1 (Algorithms 1-6 plus Appendix C's Algorithms 14-15 for
/// volatiles). Every synchronization object carries a vector clock, and
/// every variable carries full read and write vectors R[1..n] and W[1..n];
/// essentially all analysis is O(n) in the number of threads. GENERIC is
/// sound and precise; it serves as the exact happens-before oracle the
/// tests compare FastTrack and PACER against, and as the
/// precision-baseline for the benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_GENERICDETECTOR_H
#define PACER_DETECTORS_GENERICDETECTOR_H

#include "core/VectorClock.h"
#include "detectors/Detector.h"
#include "support/Arena.h"

#include <vector>

namespace pacer {

/// Sound and precise O(n)-per-operation vector-clock race detector.
class GenericDetector final : public Detector {
public:
  explicit GenericDetector(RaceSink &Sink) : Detector(Sink) {}

  const char *name() const override { return "generic"; }

  void fork(ThreadId Parent, ThreadId Child) override;
  void join(ThreadId Parent, ThreadId Child) override;
  void acquire(ThreadId Tid, LockId Lock) override;
  void release(ThreadId Tid, LockId Lock) override;
  void volatileRead(ThreadId Tid, VolatileId Vol) override;
  void volatileWrite(ThreadId Tid, VolatileId Vol) override;
  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;

  void threadBegin(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    ensureThread(Tid);
  }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Test hook: the current clock of \p Tid.
  const VectorClock &threadClock(ThreadId Tid) const {
    return Threads.at(Tid).Clock;
  }

private:
  /// Recorded-access sites, stored in the detector's arena like every
  /// other per-variable block.
  using SiteVector = std::vector<SiteId, ArenaAllocator<SiteId>>;

  /// Per-variable access history: last-read and last-write clock values and
  /// the program site of each recorded access.
  struct VarState {
    VectorClock R;
    VectorClock W;
    SiteVector RSites;
    SiteVector WSites;
  };

  struct ThreadState {
    VectorClock Clock;
    bool Started = false;
  };

  ThreadState &ensureThread(ThreadId Tid);
  VectorClock &ensureLock(LockId Lock);
  VectorClock &ensureVolatile(VolatileId Vol);
  VarState &ensureVar(VarId Var);

  /// Reports one race per component of \p Prior exceeding \p Current.
  void checkClockOrdered(const VectorClock &Prior,
                         const SiteVector &PriorSites,
                         AccessKind PriorKind, const VectorClock &Current,
                         VarId Var, ThreadId Tid, AccessKind Kind,
                         SiteId Site);

  /// Backs the per-variable table, its site vectors, and spilled clocks.
  /// MUST stay the first data member: the later members free their blocks
  /// back into this arena while being destroyed.
  Arena Metadata;

  std::vector<ThreadState> Threads;
  std::vector<VectorClock> Locks;
  std::vector<VectorClock> Volatiles;
  std::vector<VarState, ArenaAllocator<VarState>> Vars;
};

} // namespace pacer

#endif // PACER_DETECTORS_GENERICDETECTOR_H
