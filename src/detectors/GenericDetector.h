//===- detectors/GenericDetector.h - O(n) vector-clock detector -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GENERIC vector-clock race detection algorithm of the paper's
/// Section 2.1 (Algorithms 1-6 plus Appendix C's Algorithms 14-15 for
/// volatiles). Every synchronization object carries a vector clock, and
/// every variable carries full read and write vectors R[1..n] and W[1..n];
/// essentially all analysis is O(n) in the number of threads. GENERIC is
/// sound and precise; it serves as the exact happens-before oracle the
/// tests compare FastTrack and PACER against, and as the
/// precision-baseline for the benchmarks.
///
/// Synchronization tracking is the shared SyncState (its algorithms *are*
/// GENERIC's), which also provides optional accordion slot recycling.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_DETECTORS_GENERICDETECTOR_H
#define PACER_DETECTORS_GENERICDETECTOR_H

#include "core/VectorClock.h"
#include "detectors/Detector.h"
#include "detectors/SyncState.h"
#include "support/Arena.h"

#include <vector>

namespace pacer {

/// Configuration knobs for GENERIC.
struct GenericConfig {
  /// Accordion clocks: recycle dead threads' clock slots once every live
  /// thread dominates their final clocks (see core/SlotRecycler.h).
  bool UseAccordionClocks = false;

  /// Hot-path batch engine: analyse access epochs through a batch loop
  /// that hoists the arena scope and per-thread clock resolution out of
  /// the per-access path, and screens the O(n) race check with one
  /// kernel-dispatched allLeq before walking components. Results are
  /// bit-identical either way (a clock that is <= the current clock
  /// reports nothing component by component).
  bool UseHotBatchKernel = true;
};

/// Sound and precise O(n)-per-operation vector-clock race detector.
class GenericDetector final : public Detector {
public:
  explicit GenericDetector(RaceSink &Sink, GenericConfig Config = {})
      : Detector(Sink), Config(Config) {
    if (Config.UseAccordionClocks)
      Sync.enableRecycling();
  }

  const char *name() const override { return "generic"; }

  void fork(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.fork(Parent, Child, Stats);
  }
  void join(ThreadId Parent, ThreadId Child) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.join(Parent, Child, Stats);
  }
  void acquire(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquire(Tid, Lock, Stats);
  }
  void release(ThreadId Tid, LockId Lock) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.release(Tid, Lock, Stats);
  }
  void syncBatch(ThreadId Tid, LockId Lock, uint64_t Pairs) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.acquireReleasePairs(Tid, Lock, Pairs, Stats);
  }
  void volatileRead(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileRead(Tid, Vol, Stats);
  }
  void volatileWrite(ThreadId Tid, VolatileId Vol) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.volatileWrite(Tid, Vol, Stats);
  }

  void read(ThreadId Tid, VarId Var, SiteId Site) override;
  void write(ThreadId Tid, VarId Var, SiteId Site) override;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override;

  void threadBegin(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.ensureThread(Sync.slotOf(Tid));
  }

  void threadExit(ThreadId Tid) override {
    Arena::Scope MetadataScope(&Metadata);
    Sync.threadExit(Tid);
  }

  /// Accordion clocks: reclaim dominated dead slots and compact (no-op
  /// unless GenericConfig::UseAccordionClocks is set).
  size_t recycleDeadSlots() override;

  size_t slotCount() const override { return Sync.slotCount(); }
  size_t peakSlotCount() const override { return Sync.peakSlotCount(); }

  size_t liveMetadataBytes() const override;
  size_t accessMetadataBytes() const override;

  /// Test hook: the current clock of \p Tid.
  const VectorClock &threadClock(ThreadId Tid) {
    return Sync.ensureThread(Sync.slotOf(Tid));
  }

private:
  /// Recorded-access sites, stored in the detector's arena like every
  /// other per-variable block.
  using SiteVector = std::vector<SiteId, ArenaAllocator<SiteId>>;

  /// Per-variable access history: last-read and last-write clock values and
  /// the program site of each recorded access, all indexed by thread slot.
  struct VarState {
    VectorClock R;
    VectorClock W;
    SiteVector RSites;
    SiteVector WSites;
  };

  VarState &ensureVar(VarId Var);

  /// Algorithm bodies with the arena scope open and \p Tid already
  /// resolved to a slot with its clock -- the batch loop hoists that
  /// resolution out of per-access work.
  void readWith(ThreadId Tid, const VectorClock &Clock, VarId Var,
                SiteId Site);
  void writeWith(ThreadId Tid, const VectorClock &Clock, VarId Var,
                 SiteId Site);

  /// Reports one race per component of \p Prior exceeding \p Current.
  void checkClockOrdered(const VectorClock &Prior,
                         const SiteVector &PriorSites,
                         AccessKind PriorKind, const VectorClock &Current,
                         VarId Var, ThreadId Tid, AccessKind Kind,
                         SiteId Site);

  /// Backs the per-variable table, its site vectors, and spilled clocks.
  /// MUST stay the first data member: the later members free their blocks
  /// back into this arena while being destroyed.
  Arena Metadata;

  GenericConfig Config;
  SyncState Sync;
  std::vector<VarState, ArenaAllocator<VarState>> Vars;
};

} // namespace pacer

#endif // PACER_DETECTORS_GENERICDETECTOR_H
