//===- detectors/LiteRaceDetector.cpp -------------------------------------==//

#include "detectors/LiteRaceDetector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pacer;

bool LiteRaceDetector::advanceSampler(Sampler &State, Rng &Random,
                                      const LiteRaceConfig &Config) {
  if (!State.Initialized) {
    State.Initialized = true;
    State.Rate = Config.InitialRate;
    State.BurstRemaining = Config.BurstLength;
  }

  if (State.BurstRemaining > 0) {
    // Inside a burst: analyse. When the burst completes, decay the rate
    // (the method has proven hot) and schedule the skip run.
    --State.BurstRemaining;
    if (State.BurstRemaining == 0) {
      State.Rate = std::max(State.Rate * Config.DecayFactor, Config.MinRate);
      double Skip = static_cast<double>(Config.BurstLength) *
                    (1.0 - State.Rate) / State.Rate;
      if (Config.RandomizeSkip)
        Skip *= 0.5 + Random.nextDouble(); // Uniform in [0.5, 1.5).
      State.SkipRemaining = static_cast<uint64_t>(Skip);
    }
    return true;
  }

  if (State.SkipRemaining > 0) {
    --State.SkipRemaining;
    return false;
  }

  // Skip run over: start the next burst; this access is part of it.
  State.BurstRemaining = Config.BurstLength - 1;
  return true;
}

bool LiteRaceDetector::shouldSample(ThreadId Tid, SiteId Site) {
  uint64_t Key =
      (static_cast<uint64_t>(methodOf(Site)) << 32) | static_cast<uint64_t>(Tid);
  return advanceSampler(Samplers.getOrInsert(Key), Random, Config);
}

LiteRaceSamplerPlan
LiteRaceDetector::computeSamplerPlan(TraceSpan T,
                                     const std::vector<MethodId> &SiteToMethod,
                                     uint64_t Seed, LiteRaceConfig Config) {
  LiteRaceSamplerPlan Plan;
  Plan.Base = T.data();
  Plan.Bits.assign((T.size() + 63) / 64, 0);
  // The plan's sampler table and RNG mirror a planless detector built with
  // the same seed: advanceSampler is the single shared decision step, and
  // only accesses reach it (read()/write()/accessBatch() are the only
  // callers of shouldSample during replay).
  FlatVarTable<Sampler, uint64_t> Samplers;
  Rng Random(Seed);
  for (size_t Pos = 0; Pos != T.size(); ++Pos) {
    const Action &A = T[Pos];
    if (!isAccessAction(A.Kind))
      continue;
    uint64_t Key = (static_cast<uint64_t>(methodFor(A.Site, SiteToMethod))
                    << 32) |
                   static_cast<uint64_t>(A.Tid);
    if (advanceSampler(Samplers.getOrInsert(Key), Random, Config))
      Plan.Bits[Pos >> 6] |= uint64_t{1} << (Pos & 63);
  }
  Plan.SamplerCount = Samplers.size();
  return Plan;
}

void LiteRaceDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  assert(!Plan && "planned replay must go through accessBatch");
  Arena::Scope MetadataScope(&Metadata);
  if (!shouldSample(Tid, Site)) {
    ++Stats.ReadFastNonSampling;
    return;
  }
  ++Stats.ReadSlowSampling;
  analyzeRead(Tid, Var, Site);
}

void LiteRaceDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  assert(!Plan && "planned replay must go through accessBatch");
  Arena::Scope MetadataScope(&Metadata);
  if (!shouldSample(Tid, Site)) {
    ++Stats.WriteFastNonSampling;
    return;
  }
  ++Stats.WriteSlowSampling;
  analyzeWrite(Tid, Var, Site);
}

void LiteRaceDetector::analyzeRead(ThreadId Tid, VarId Var, SiteId Site) {
  // FastTrack Algorithm 7. Clock indices are slots; reports map back to
  // program thread ids.
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);
  VarState &State = ensureVar(Var);

  if (State.R.isEpoch() && State.R.epoch() == Current)
    return;

  if (!State.W.precedes(Clock)) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Write;
    Report.SecondKind = AccessKind::Read;
    Report.FirstThread = Sync.externalOf(State.W.tid());
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = State.WSite;
    Report.SecondSite = Site;
    reportRace(Report);
  }

  if (!State.R.isMap()) {
    if (State.R.leqClock(Clock)) {
      State.R.setEpoch(Current, Site);
    } else {
      State.R.inflateToMap();
      State.R.setEntry(Tid, Clock.get(Tid), Site);
    }
    return;
  }
  State.R.setEntry(Tid, Clock.get(Tid), Site);
}

void LiteRaceDetector::analyzeWrite(ThreadId Tid, VarId Var, SiteId Site) {
  // FastTrack Algorithm 8 (with the read-map clear). Clock indices are
  // slots; reports map back to program thread ids.
  Tid = Sync.slotOf(Tid);
  const VectorClock &Clock = Sync.ensureThread(Tid);
  Epoch Current = Epoch::make(Clock.get(Tid), Tid);
  VarState &State = ensureVar(Var);

  if (State.W == Current)
    return;

  if (!State.W.precedes(Clock)) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Write;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = Sync.externalOf(State.W.tid());
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = State.WSite;
    Report.SecondSite = Site;
    reportRace(Report);
  }

  State.R.forEachViolation(Clock, [&](const ReadEntry &Entry) {
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = AccessKind::Read;
    Report.SecondKind = AccessKind::Write;
    Report.FirstThread = Sync.externalOf(Entry.Tid);
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = Entry.Site;
    Report.SecondSite = Site;
    reportRace(Report);
  });

  State.R.clear();
  State.W = Current;
  State.WSite = Site;
}

void LiteRaceDetector::accessBatch(std::span<const Action> Batch,
                                   const AccessShard &Shard) {
  Arena::Scope MetadataScope(&Metadata);
  if (Plan) {
    // Cold kernel: one bitmap range test proves the whole batch unsampled
    // (the common case once hot methods decay), after which every owned
    // access is a fast-path counter bump and nothing else -- fold them
    // branchlessly and return. Valid only for contiguous trace runs: a
    // batch from the trace index or the segmenter is one [From, To) slice
    // of the position space.
    if (Config.UseColdBatchKernel && !Batch.empty()) {
      const size_t From = static_cast<size_t>(Batch.data() - Plan->Base);
      if (Plan->noneSampled(From, From + Batch.size())) {
        // Owned reads are the owned remainder after counting owned
        // writes: one byte per action when the shard owns everything.
        uint64_t Writes = 0;
        if (Shard.ownsAll()) {
          for (const Action &A : Batch)
            Writes += A.Kind != ActionKind::Read;
          Stats.ReadFastNonSampling += Batch.size() - Writes;
        } else {
          uint64_t Owned = 0;
          for (const Action &A : Batch) {
            const uint64_t Own = A.Target % Shard.count() == Shard.index();
            Owned += Own;
            Writes +=
                Own & static_cast<uint64_t>(A.Kind != ActionKind::Read);
          }
          Stats.ReadFastNonSampling += Owned - Writes;
        }
        Stats.WriteFastNonSampling += Writes;
        return;
      }
    }
    // Planned replay: decisions are precomputed per trace position, so
    // foreign accesses cost nothing and the batch may be a filtered
    // owned-only run from the trace index.
    for (const Action &A : Batch) {
      if (!Shard.owns(A.Target))
        continue;
      bool Sampled = Plan->sampled(static_cast<size_t>(&A - Plan->Base));
      if (A.Kind == ActionKind::Read) {
        if (!Sampled) {
          ++Stats.ReadFastNonSampling;
          continue;
        }
        ++Stats.ReadSlowSampling;
        analyzeRead(A.Tid, A.Target, A.Site);
      } else {
        if (!Sampled) {
          ++Stats.WriteFastNonSampling;
          continue;
        }
        ++Stats.WriteSlowSampling;
        analyzeWrite(A.Tid, A.Target, A.Site);
      }
    }
    return;
  }
  for (const Action &A : Batch) {
    // Advance the sampler for every access (see the header comment): the
    // decision stream must be identical on every replica.
    bool Sampled = shouldSample(A.Tid, A.Site);
    if (!Shard.owns(A.Target))
      continue;
    if (A.Kind == ActionKind::Read) {
      if (!Sampled) {
        ++Stats.ReadFastNonSampling;
        continue;
      }
      ++Stats.ReadSlowSampling;
      analyzeRead(A.Tid, A.Target, A.Site);
    } else {
      if (!Sampled) {
        ++Stats.WriteFastNonSampling;
        continue;
      }
      ++Stats.WriteSlowSampling;
      analyzeWrite(A.Tid, A.Target, A.Site);
    }
  }
}

size_t LiteRaceDetector::recycleDeadSlots() {
  if (!Config.UseAccordionClocks)
    return 0;
  Arena::Scope MetadataScope(&Metadata);
  return Sync.recycleDeadSlots(
      [this](ThreadId Slot) {
        for (VarState &State : Vars) {
          if (State.R.isNull() && State.W.isNone())
            continue;
          State.R.removeThread(Slot);
          if (!State.W.isNone() && State.W.tid() == Slot) {
            State.W = Epoch::none();
            State.WSite = InvalidId;
          }
        }
      },
      [this](const SlotRemap &Remap) {
        const uint32_t *OldToNew = Remap.OldToNew.data();
        for (VarState &State : Vars) {
          State.R.remapThreads(OldToNew);
          if (!State.W.isNone())
            State.W =
                Epoch::make(State.W.clockValue(), OldToNew[State.W.tid()]);
        }
        // The sampler table is keyed by (method, program tid), so it
        // grows with total threads ever started; counters of reclaimed
        // tids are dead weight (those threads never act again, and
        // sampling decisions for live tids do not read them). Sweep them
        // at compaction, keeping the table O(methods x live threads).
        Samplers.eraseIf([this](uint64_t Key, Sampler &) {
          return !Sync.externalHasSlot(
              static_cast<ThreadId>(Key & 0xffffffff));
        });
      });
}

size_t LiteRaceDetector::accessMetadataBytes() const {
  size_t Bytes = 0;
  for (const VarState &State : Vars) {
    // Skip untracked slots (dense-vector holes): a sampled variable
    // always holds a read map or write epoch, so the live set partitions
    // exactly across shards. The sampler table is *not* counted here: it
    // is code-indexed and replica-identical, i.e. sync-side space.
    if (State.R.isNull() && State.W.isNone())
      continue;
    Bytes += sizeof(State) + State.R.heapBytes();
  }
  return Bytes;
}

size_t LiteRaceDetector::liveMetadataBytes() const {
  size_t Bytes = Sync.liveMetadataBytes() + accessMetadataBytes();
  // Sampler table: LiteRace's per-method-thread counters. A planned
  // replica carries the plan's end-of-trace sampler count so its space
  // accounting matches a planless (full-stream) replica exactly when
  // recycling is off; with recycling on, planless replicas sweep dead
  // tids' counters at compaction and report the (smaller) swept size.
  size_t SamplerCount = Plan ? Plan->SamplerCount : Samplers.size();
  Bytes += SamplerCount * (sizeof(uint64_t) + sizeof(Sampler) +
                           2 * sizeof(void *));
  return Bytes;
}

double LiteRaceDetector::effectiveRateFromStats(const DetectorStats &Stats) {
  uint64_t Sampled = Stats.ReadSlowSampling + Stats.WriteSlowSampling;
  uint64_t Skipped = Stats.ReadFastNonSampling + Stats.WriteFastNonSampling;
  uint64_t Total = Sampled + Skipped;
  return Total == 0 ? 0.0 : static_cast<double>(Sampled) /
                                static_cast<double>(Total);
}
