//===- detectors/GenericDetector.cpp --------------------------------------==//

#include "detectors/GenericDetector.h"

using namespace pacer;

GenericDetector::VarState &GenericDetector::ensureVar(VarId Var) {
  if (Var >= Vars.size())
    Vars.resize(Var + 1);
  return Vars[Var];
}

void GenericDetector::checkClockOrdered(const VectorClock &Prior,
                                        const SiteVector &PriorSites,
                                        AccessKind PriorKind,
                                        const VectorClock &Current, VarId Var,
                                        ThreadId Tid, AccessKind Kind,
                                        SiteId Site) {
  // Hot-path screen: one kernel-dispatched allLeq over the stored
  // components. Prior <= Current means no component can trigger the
  // report below, so skipping the walk is observationally identical.
  // Narrow clocks skip the screen: leq costs two indirect kernel calls
  // plus SIMD setup, which is more than the handful of scalar compares
  // the walk needs below one vector's width.
  constexpr size_t MinScreenWidth = 16;
  if (Config.UseHotBatchKernel && Prior.size() >= MinScreenWidth &&
      Prior.leq(Current))
    return;
  for (size_t U = 0, E = Prior.size(); U != E; ++U) {
    auto PriorTid = static_cast<ThreadId>(U);
    if (Prior.get(PriorTid) <= Current.get(PriorTid))
      continue;
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = PriorKind;
    Report.SecondKind = Kind;
    Report.FirstThread = Sync.externalOf(PriorTid);
    Report.SecondThread = Sync.externalOf(Tid);
    Report.FirstSite = U < PriorSites.size() ? PriorSites[U] : InvalidId;
    Report.SecondSite = Site;
    reportRace(Report);
  }
}

void GenericDetector::readWith(ThreadId Tid, const VectorClock &Clock,
                               VarId Var, SiteId Site) {
  ++Stats.ReadSlowSampling;
  VarState &State = ensureVar(Var);
  // Algorithm 5: check W_f <= C_t, then R_f[t] <- C_t[t].
  checkClockOrdered(State.W, State.WSites, AccessKind::Write, Clock, Var, Tid,
                    AccessKind::Read, Site);
  State.R.set(Tid, Clock.get(Tid));
  if (Tid >= State.RSites.size())
    State.RSites.resize(Tid + 1, InvalidId);
  State.RSites[Tid] = Site;
}

void GenericDetector::writeWith(ThreadId Tid, const VectorClock &Clock,
                                VarId Var, SiteId Site) {
  ++Stats.WriteSlowSampling;
  VarState &State = ensureVar(Var);
  // Algorithm 6: check W_f <= C_t and R_f <= C_t, then W_f[t] <- C_t[t].
  checkClockOrdered(State.W, State.WSites, AccessKind::Write, Clock, Var, Tid,
                    AccessKind::Write, Site);
  checkClockOrdered(State.R, State.RSites, AccessKind::Read, Clock, Var, Tid,
                    AccessKind::Write, Site);
  State.W.set(Tid, Clock.get(Tid));
  if (Tid >= State.WSites.size())
    State.WSites.resize(Tid + 1, InvalidId);
  State.WSites[Tid] = Site;
}

void GenericDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  readWith(Tid, Sync.ensureThread(Tid), Var, Site);
}

void GenericDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  Tid = Sync.slotOf(Tid);
  writeWith(Tid, Sync.ensureThread(Tid), Var, Site);
}

void GenericDetector::accessBatch(std::span<const Action> Batch,
                                  const AccessShard &Shard) {
  if (!Config.UseHotBatchKernel) {
    Detector::accessBatch(Batch, Shard);
    return;
  }
  // One arena scope for the whole epoch, and the slot/clock resolution
  // hoisted to thread switches. No synchronization action or first sight
  // occurs inside a batch, so the thread vector never reallocates and the
  // hoisted clock reference stays valid across the run.
  Arena::Scope MetadataScope(&Metadata);
  ThreadId CurTid = InvalidId;
  ThreadId Slot = 0;
  const VectorClock *Clock = nullptr;
  for (const Action &A : Batch) {
    if (!Shard.owns(A.Target))
      continue;
    if (A.Tid != CurTid) {
      CurTid = A.Tid;
      Slot = Sync.slotOf(CurTid);
      Clock = &Sync.ensureThread(Slot);
    }
    if (A.Kind == ActionKind::Read)
      readWith(Slot, *Clock, A.Target, A.Site);
    else
      writeWith(Slot, *Clock, A.Target, A.Site);
  }
}

size_t GenericDetector::recycleDeadSlots() {
  if (!Config.UseAccordionClocks)
    return 0;
  Arena::Scope MetadataScope(&Metadata);
  return Sync.recycleDeadSlots(
      [this](ThreadId Slot) {
        // Zero the reclaimed slot in every access vector: its components
        // are dominated by all live threads and can never race again.
        for (VarState &State : Vars) {
          // Sites are recorded only alongside a nonzero clock component,
          // so variables the slot never touched need no scrubbing.
          if (State.R.get(Slot) == 0 && State.W.get(Slot) == 0)
            continue;
          State.R.set(Slot, 0);
          State.W.set(Slot, 0);
          if (Slot < State.RSites.size())
            State.RSites[Slot] = InvalidId;
          if (Slot < State.WSites.size())
            State.WSites[Slot] = InvalidId;
        }
      },
      [this](const SlotRemap &Remap) {
        const uint32_t NewCount = Remap.newCount();
        const uint32_t *NewToOld = Remap.NewToOld.data();
        auto CompactSites = [&](SiteVector &Sites) {
          // Same ascending in-place pack as the clocks; entries past the
          // vector's recorded length stay implicit InvalidId. Like the
          // clocks, release over-grown capacity so the space charge
          // tracks the packed width, not the widest width ever seen.
          uint32_t M = 0;
          while (M < NewCount &&
                 NewToOld[M] < static_cast<uint32_t>(Sites.size()))
            ++M;
          for (uint32_t I = 0; I != M; ++I)
            Sites[I] = Sites[NewToOld[I]];
          Sites.resize(M);
          if (Sites.capacity() > 2 * Sites.size())
            Sites.shrink_to_fit();
        };
        for (VarState &State : Vars) {
          State.R.compactSlots(NewToOld, NewCount);
          State.W.compactSlots(NewToOld, NewCount);
          CompactSites(State.RSites);
          CompactSites(State.WSites);
        }
      });
}

size_t GenericDetector::accessMetadataBytes() const {
  size_t Bytes = 0;
  for (const VarState &State : Vars) {
    // Skip untracked slots (dense-vector holes): an accessed variable
    // always records a nonzero read or write component, so the live set
    // partitions exactly across shards.
    if (State.R.size() == 0 && State.W.size() == 0)
      continue;
    Bytes += sizeof(State) + State.R.heapBytes() + State.W.heapBytes() +
             State.RSites.capacity() * sizeof(SiteId) +
             State.WSites.capacity() * sizeof(SiteId);
  }
  return Bytes;
}

size_t GenericDetector::liveMetadataBytes() const {
  return Sync.liveMetadataBytes() + accessMetadataBytes();
}
