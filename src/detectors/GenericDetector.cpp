//===- detectors/GenericDetector.cpp --------------------------------------==//

#include "detectors/GenericDetector.h"

using namespace pacer;

GenericDetector::ThreadState &GenericDetector::ensureThread(ThreadId Tid) {
  if (Tid >= Threads.size())
    Threads.resize(Tid + 1);
  ThreadState &State = Threads[Tid];
  if (!State.Started) {
    // Initial analysis state: C_t = inc_t(bottom), Equation 7.
    State.Clock.increment(Tid);
    State.Started = true;
  }
  return State;
}

VectorClock &GenericDetector::ensureLock(LockId Lock) {
  if (Lock >= Locks.size())
    Locks.resize(Lock + 1);
  return Locks[Lock];
}

VectorClock &GenericDetector::ensureVolatile(VolatileId Vol) {
  if (Vol >= Volatiles.size())
    Volatiles.resize(Vol + 1);
  return Volatiles[Vol];
}

GenericDetector::VarState &GenericDetector::ensureVar(VarId Var) {
  if (Var >= Vars.size())
    Vars.resize(Var + 1);
  return Vars[Var];
}

void GenericDetector::fork(ThreadId Parent, ThreadId Child) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.SlowJoinsSampling;
  // Ensure both entries before taking references: ensureThread may grow
  // the vector and would invalidate an earlier reference.
  ensureThread(Parent);
  ensureThread(Child);
  VectorClock &ParentClock = Threads[Parent].Clock;
  VectorClock &ChildClock = Threads[Child].Clock;
  // Algorithm 3: C_u <- C_t; C_u[u]++; C_t[t]++.
  ChildClock.copyFrom(ParentClock);
  ChildClock.increment(Child);
  ParentClock.increment(Parent);
}

void GenericDetector::join(ThreadId Parent, ThreadId Child) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.SlowJoinsSampling;
  ensureThread(Parent);
  ensureThread(Child);
  VectorClock &ParentClock = Threads[Parent].Clock;
  VectorClock &ChildClock = Threads[Child].Clock;
  // Algorithm 4: C_t <- C_u |_| C_t; C_u[u]++.
  ParentClock.joinWith(ChildClock);
  ChildClock.increment(Child);
}

void GenericDetector::acquire(ThreadId Tid, LockId Lock) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.SlowJoinsSampling;
  // Algorithm 1: C_t <- C_t |_| C_m.
  ensureThread(Tid).Clock.joinWith(ensureLock(Lock));
}

void GenericDetector::release(ThreadId Tid, LockId Lock) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.DeepCopiesSampling;
  VectorClock &Clock = ensureThread(Tid).Clock;
  // Algorithm 2: C_m <- C_t; C_t[t]++.
  ensureLock(Lock).copyFrom(Clock);
  Clock.increment(Tid);
}

void GenericDetector::volatileRead(ThreadId Tid, VolatileId Vol) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.SlowJoinsSampling;
  // Algorithm 14: C_t <- C_t |_| C_x.
  ensureThread(Tid).Clock.joinWith(ensureVolatile(Vol));
}

void GenericDetector::volatileWrite(ThreadId Tid, VolatileId Vol) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.SyncOps;
  ++Stats.SlowJoinsSampling;
  VectorClock &Clock = ensureThread(Tid).Clock;
  // Algorithm 15: C_x <- C_x |_| C_t; C_t[t]++.
  ensureVolatile(Vol).joinWith(Clock);
  Clock.increment(Tid);
}

void GenericDetector::checkClockOrdered(const VectorClock &Prior,
                                        const SiteVector &PriorSites,
                                        AccessKind PriorKind,
                                        const VectorClock &Current, VarId Var,
                                        ThreadId Tid, AccessKind Kind,
                                        SiteId Site) {
  for (size_t U = 0, E = Prior.size(); U != E; ++U) {
    auto PriorTid = static_cast<ThreadId>(U);
    if (Prior.get(PriorTid) <= Current.get(PriorTid))
      continue;
    RaceReport Report;
    Report.Var = Var;
    Report.FirstKind = PriorKind;
    Report.SecondKind = Kind;
    Report.FirstThread = PriorTid;
    Report.SecondThread = Tid;
    Report.FirstSite = U < PriorSites.size() ? PriorSites[U] : InvalidId;
    Report.SecondSite = Site;
    reportRace(Report);
  }
}

void GenericDetector::read(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.ReadSlowSampling;
  const VectorClock &Clock = ensureThread(Tid).Clock;
  VarState &State = ensureVar(Var);
  // Algorithm 5: check W_f <= C_t, then R_f[t] <- C_t[t].
  checkClockOrdered(State.W, State.WSites, AccessKind::Write, Clock, Var, Tid,
                    AccessKind::Read, Site);
  State.R.set(Tid, Clock.get(Tid));
  if (Tid >= State.RSites.size())
    State.RSites.resize(Tid + 1, InvalidId);
  State.RSites[Tid] = Site;
}

void GenericDetector::write(ThreadId Tid, VarId Var, SiteId Site) {
  Arena::Scope MetadataScope(&Metadata);
  ++Stats.WriteSlowSampling;
  const VectorClock &Clock = ensureThread(Tid).Clock;
  VarState &State = ensureVar(Var);
  // Algorithm 6: check W_f <= C_t and R_f <= C_t, then W_f[t] <- C_t[t].
  checkClockOrdered(State.W, State.WSites, AccessKind::Write, Clock, Var, Tid,
                    AccessKind::Write, Site);
  checkClockOrdered(State.R, State.RSites, AccessKind::Read, Clock, Var, Tid,
                    AccessKind::Write, Site);
  State.W.set(Tid, Clock.get(Tid));
  if (Tid >= State.WSites.size())
    State.WSites.resize(Tid + 1, InvalidId);
  State.WSites[Tid] = Site;
}

size_t GenericDetector::accessMetadataBytes() const {
  size_t Bytes = 0;
  for (const VarState &State : Vars) {
    // Skip untracked slots (dense-vector holes): an accessed variable
    // always records a nonzero read or write component, so the live set
    // partitions exactly across shards.
    if (State.R.size() == 0 && State.W.size() == 0)
      continue;
    Bytes += sizeof(State) + State.R.heapBytes() + State.W.heapBytes() +
             State.RSites.capacity() * sizeof(SiteId) +
             State.WSites.capacity() * sizeof(SiteId);
  }
  return Bytes;
}

size_t GenericDetector::liveMetadataBytes() const {
  size_t Bytes = 0;
  for (const ThreadState &State : Threads)
    Bytes += sizeof(State) + State.Clock.heapBytes();
  for (const VectorClock &Clock : Locks)
    Bytes += sizeof(Clock) + Clock.heapBytes();
  for (const VectorClock &Clock : Volatiles)
    Bytes += sizeof(Clock) + Clock.heapBytes();
  return Bytes + accessMetadataBytes();
}
