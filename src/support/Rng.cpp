//===- support/Rng.cpp ----------------------------------------------------==//

#include "support/Rng.h"

#include <cmath>

using namespace pacer;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0)");
  // Lemire-style rejection to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    // __uint128_t multiply-shift maps R uniformly onto [0, Bound) except
    // for a small biased region that we reject.
    __uint128_t Product = static_cast<__uint128_t>(R) * Bound;
    auto Low = static_cast<uint64_t>(Product);
    if (Low >= Threshold)
      return static_cast<uint64_t>(Product >> 64);
  }
}

uint64_t pacer::deriveTrialSeed(uint64_t BaseSeed, uint64_t Trial,
                                uint64_t Salt) {
  // Chain-hash the triple: avalanche each input through SplitMix64's
  // *output* before folding in the next. Folding into the raw sequence
  // state instead would leave nearby base seeds differing in a few low
  // bits, and the XOR fold of the trial index could cancel that
  // difference (family(B) and family(B+1) sharing seeds) -- the very
  // overlap this function exists to rule out. Every step is bijective in
  // the newest input, so within one (BaseSeed, Salt) family all trial
  // seeds are distinct by construction.
  uint64_t S = BaseSeed;
  S = splitMix64(S) ^ Trial;
  S = splitMix64(S) ^ Salt;
  return splitMix64(S);
}

uint64_t Rng::nextGeometric(double P) {
  if (P >= 1.0)
    return 0;
  if (P <= 0.0)
    return UINT64_MAX;
  double U = nextDouble();
  // Inverse-CDF; clamp the degenerate U == 0 draw.
  if (U <= 0.0)
    U = 0x1.0p-53;
  return static_cast<uint64_t>(std::log(U) / std::log1p(-P));
}
