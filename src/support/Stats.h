//===- support/Stats.h - Streaming statistics helpers ----------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming mean/variance accumulation (Welford), medians, and binomial
/// confidence intervals. The evaluation harness reports detection rates
/// "plus or minus one standard deviation" exactly as the paper's Table 1
/// does, and the property tests use Wilson intervals to decide whether an
/// observed detection frequency is consistent with the sampling rate.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_STATS_H
#define PACER_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacer {

/// Welford streaming accumulator for mean and (sample) standard deviation.
class RunningStat {
public:
  /// Adds one observation.
  void add(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
  }

  /// Number of observations added so far.
  size_t count() const { return N; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return Mean; }

  /// Sample variance (N-1 denominator); 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean.
  double stderrOfMean() const;

  /// Raw sum of squared deviations (Welford's M2). Together with count()
  /// and mean() this is the accumulator's complete state, exposed so it
  /// can be persisted and restored bit-exactly.
  double m2() const { return M2; }

  /// Rebuilds an accumulator from state previously captured via count()
  /// / mean() / m2(); the round trip is bit-exact.
  static RunningStat fromState(size_t N, double Mean, double M2) {
    RunningStat S;
    S.N = N;
    S.Mean = Mean;
    S.M2 = M2;
    return S;
  }

  /// Folds \p Other into this accumulator (Chan et al.'s pairwise
  /// update). The formulas are symmetric in the two operands -- the
  /// combined mean is (Na*Ma + Nb*Mb)/N and the M2 correction squares
  /// the mean difference -- so a.merge(b) and b.merge(a) produce
  /// bit-identical state; associativity holds only approximately, like
  /// any floating-point summation.
  void merge(const RunningStat &Other) {
    if (Other.N == 0)
      return;
    if (N == 0) {
      *this = Other;
      return;
    }
    const double Na = static_cast<double>(N);
    const double Nb = static_cast<double>(Other.N);
    const double Nab = Na + Nb;
    const double Delta = Other.Mean - Mean;
    Mean = (Na * Mean + Nb * Other.Mean) / Nab;
    M2 = M2 + Other.M2 + Delta * Delta * (Na * Nb / Nab);
    N += Other.N;
  }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Returns the median of \p Values (copies and partially sorts). Returns 0
/// for an empty input.
double median(std::vector<double> Values);

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Values using linear
/// interpolation. Returns 0 for an empty input.
double quantile(std::vector<double> Values, double Q);

/// Wilson score interval for a binomial proportion.
struct BinomialInterval {
  double Low;
  double High;
};

/// Returns the Wilson score interval for \p Successes out of \p Trials at
/// \p Z standard deviations (Z = 1.96 gives a 95% interval; the property
/// tests use wider intervals to keep flake rates negligible).
BinomialInterval wilsonInterval(uint64_t Successes, uint64_t Trials,
                                double Z);

/// Returns true if probability \p P is inside the Wilson interval for the
/// observed \p Successes / \p Trials at \p Z standard deviations.
bool proportionConsistent(uint64_t Successes, uint64_t Trials, double P,
                          double Z);

} // namespace pacer

#endif // PACER_SUPPORT_STATS_H
