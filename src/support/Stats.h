//===- support/Stats.h - Streaming statistics helpers ----------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming mean/variance accumulation (Welford), medians, and binomial
/// confidence intervals. The evaluation harness reports detection rates
/// "plus or minus one standard deviation" exactly as the paper's Table 1
/// does, and the property tests use Wilson intervals to decide whether an
/// observed detection frequency is consistent with the sampling rate.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_STATS_H
#define PACER_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacer {

/// Welford streaming accumulator for mean and (sample) standard deviation.
class RunningStat {
public:
  /// Adds one observation.
  void add(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
  }

  /// Number of observations added so far.
  size_t count() const { return N; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return Mean; }

  /// Sample variance (N-1 denominator); 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean.
  double stderrOfMean() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Returns the median of \p Values (copies and partially sorts). Returns 0
/// for an empty input.
double median(std::vector<double> Values);

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Values using linear
/// interpolation. Returns 0 for an empty input.
double quantile(std::vector<double> Values, double Q);

/// Wilson score interval for a binomial proportion.
struct BinomialInterval {
  double Low;
  double High;
};

/// Returns the Wilson score interval for \p Successes out of \p Trials at
/// \p Z standard deviations (Z = 1.96 gives a 95% interval; the property
/// tests use wider intervals to keep flake rates negligible).
BinomialInterval wilsonInterval(uint64_t Successes, uint64_t Trials,
                                double Z);

/// Returns true if probability \p P is inside the Wilson interval for the
/// observed \p Successes / \p Trials at \p Z standard deviations.
bool proportionConsistent(uint64_t Successes, uint64_t Trials, double P,
                          double Z);

} // namespace pacer

#endif // PACER_SUPPORT_STATS_H
