//===- support/CommandLine.cpp --------------------------------------------==//

#include "support/CommandLine.h"

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace pacer;

FlagSet::FlagSet(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--", 2) != 0) {
      Positional.emplace_back(Arg);
      continue;
    }
    const char *Body = Arg + 2;
    const char *Eq = std::strchr(Body, '=');
    if (Eq)
      Flags.emplace_back(std::string(Body, Eq), std::string(Eq + 1));
    else
      Flags.emplace_back(std::string(Body), std::string("1"));
  }
}

const std::string *FlagSet::find(const std::string &Name) const {
  // Last occurrence wins so callers can override defaults appended earlier.
  const std::string *Result = nullptr;
  for (const auto &[Key, Value] : Flags)
    if (Key == Name)
      Result = &Value;
  return Result;
}

bool FlagSet::has(const std::string &Name) const {
  return find(Name) != nullptr;
}

int64_t FlagSet::getInt(const std::string &Name, int64_t Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value->c_str(), &End, 10);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed integer flag value");
  return Parsed;
}

double FlagSet::getDouble(const std::string &Name, double Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(Value->c_str(), &End);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed double flag value");
  return Parsed;
}

std::string FlagSet::getString(const std::string &Name,
                               const std::string &Default) const {
  const std::string *Value = find(Name);
  return Value ? *Value : Default;
}

bool FlagSet::getBool(const std::string &Name, bool Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  return *Value != "0" && *Value != "false";
}

OptionRegistry &OptionRegistry::addInt(const std::string &Name,
                                       int64_t Default,
                                       const std::string &Help) {
  Options.push_back({Name, Kind::Int, Help, Default, 0.0, {}});
  return *this;
}

OptionRegistry &OptionRegistry::addDouble(const std::string &Name,
                                          double Default,
                                          const std::string &Help) {
  Options.push_back({Name, Kind::Double, Help, 0, Default, {}});
  return *this;
}

OptionRegistry &OptionRegistry::addString(const std::string &Name,
                                          const std::string &Default,
                                          const std::string &Help) {
  Options.push_back({Name, Kind::String, Help, 0, 0.0, Default});
  return *this;
}

OptionRegistry &OptionRegistry::addFlag(const std::string &Name,
                                        const std::string &Help) {
  Options.push_back({Name, Kind::Flag, Help, 0, 0.0, {}});
  return *this;
}

const OptionRegistry::Option *
OptionRegistry::findOption(const std::string &Name) const {
  for (const Option &O : Options)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

const std::string *
OptionRegistry::findValue(const std::string &Name) const {
  // Last occurrence wins, matching FlagSet.
  const std::string *Result = nullptr;
  for (const auto &[Key, Value] : Values)
    if (Key == Name)
      Result = &Value;
  return Result;
}

bool OptionRegistry::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--", 2) != 0) {
      Positional.emplace_back(Arg);
      continue;
    }
    const char *Body = Arg + 2;
    const char *Eq = std::strchr(Body, '=');
    std::string Name = Eq ? std::string(Body, Eq) : std::string(Body);
    if (Name == "help") {
      HelpRequested = true;
      printHelp(stdout);
      return false;
    }
    if (!findOption(Name)) {
      std::fprintf(stderr, "unknown flag --%s\n\n", Name.c_str());
      printHelp(stderr);
      return false;
    }
    Values.emplace_back(std::move(Name),
                        Eq ? std::string(Eq + 1) : std::string("1"));
  }
  return true;
}

int64_t OptionRegistry::getInt(const std::string &Name) const {
  const Option *O = findOption(Name);
  if (!O)
    fatalError("getInt on undeclared option");
  const std::string *Value = findValue(Name);
  if (!Value)
    return O->IntDefault;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value->c_str(), &End, 10);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed integer flag value");
  return Parsed;
}

double OptionRegistry::getDouble(const std::string &Name) const {
  const Option *O = findOption(Name);
  if (!O)
    fatalError("getDouble on undeclared option");
  const std::string *Value = findValue(Name);
  if (!Value)
    return O->DoubleDefault;
  char *End = nullptr;
  double Parsed = std::strtod(Value->c_str(), &End);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed double flag value");
  return Parsed;
}

std::string OptionRegistry::getString(const std::string &Name) const {
  const Option *O = findOption(Name);
  if (!O)
    fatalError("getString on undeclared option");
  const std::string *Value = findValue(Name);
  return Value ? *Value : O->StringDefault;
}

bool OptionRegistry::getBool(const std::string &Name) const {
  if (!findOption(Name))
    fatalError("getBool on undeclared option");
  const std::string *Value = findValue(Name);
  if (!Value)
    return false;
  return *Value != "0" && *Value != "false";
}

bool OptionRegistry::has(const std::string &Name) const {
  return findValue(Name) != nullptr;
}

void OptionRegistry::printHelp(std::FILE *Out) const {
  std::fprintf(Out, "usage: %s\n\noptions:\n", Usage.c_str());
  for (const Option &O : Options) {
    std::string Left = "--" + O.Name;
    switch (O.Type) {
    case Kind::Int:
      Left += "=N";
      break;
    case Kind::Double:
      Left += "=X";
      break;
    case Kind::String:
      Left += "=S";
      break;
    case Kind::Flag:
      break;
    }
    std::fprintf(Out, "  %-22s %s", Left.c_str(), O.Help.c_str());
    switch (O.Type) {
    case Kind::Int:
      std::fprintf(Out, " (default %lld)",
                   static_cast<long long>(O.IntDefault));
      break;
    case Kind::Double:
      std::fprintf(Out, " (default %g)", O.DoubleDefault);
      break;
    case Kind::String:
      if (!O.StringDefault.empty())
        std::fprintf(Out, " (default %s)", O.StringDefault.c_str());
      break;
    case Kind::Flag:
      break;
    }
    std::fprintf(Out, "\n");
  }
  std::fprintf(Out, "  %-22s %s\n", "--help", "show this help");
}
