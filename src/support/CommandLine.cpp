//===- support/CommandLine.cpp --------------------------------------------==//

#include "support/CommandLine.h"

#include "support/Error.h"

#include <cstdlib>
#include <cstring>

using namespace pacer;

FlagSet::FlagSet(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--", 2) != 0) {
      Positional.emplace_back(Arg);
      continue;
    }
    const char *Body = Arg + 2;
    const char *Eq = std::strchr(Body, '=');
    if (Eq)
      Flags.emplace_back(std::string(Body, Eq), std::string(Eq + 1));
    else
      Flags.emplace_back(std::string(Body), std::string("1"));
  }
}

const std::string *FlagSet::find(const std::string &Name) const {
  // Last occurrence wins so callers can override defaults appended earlier.
  const std::string *Result = nullptr;
  for (const auto &[Key, Value] : Flags)
    if (Key == Name)
      Result = &Value;
  return Result;
}

bool FlagSet::has(const std::string &Name) const {
  return find(Name) != nullptr;
}

int64_t FlagSet::getInt(const std::string &Name, int64_t Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value->c_str(), &End, 10);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed integer flag value");
  return Parsed;
}

double FlagSet::getDouble(const std::string &Name, double Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(Value->c_str(), &End);
  if (End == Value->c_str() || *End != '\0')
    fatalError("malformed double flag value");
  return Parsed;
}

std::string FlagSet::getString(const std::string &Name,
                               const std::string &Default) const {
  const std::string *Value = find(Name);
  return Value ? *Value : Default;
}

bool FlagSet::getBool(const std::string &Name, bool Default) const {
  const std::string *Value = find(Name);
  if (!Value)
    return Default;
  return *Value != "0" && *Value != "false";
}
