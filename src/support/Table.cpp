//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include <cstdio>

using namespace pacer;

void TextTable::setHeader(std::vector<std::string> Columns) {
  Header = std::move(Columns);
}

void TextTable::addRow(std::vector<std::string> Columns) {
  Rows.push_back({std::move(Columns), false});
}

void TextTable::addSeparator() { Rows.push_back({{}, true}); }

std::string TextTable::render() const {
  // Compute column widths over the header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  if (TotalWidth >= 2)
    TotalWidth -= 2;

  std::string Out;
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (I == 0) {
        Out += Cell;
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Cell;
      }
      if (I + 1 != Widths.size())
        Out += "  ";
    }
    // Trim trailing spaces from left-aligned final cells.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    EmitRow(Header);
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      Out.append(TotalWidth, '-');
      Out += '\n';
    } else {
      EmitRow(R.Cells);
    }
  }
  return Out;
}

std::string pacer::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string pacer::formatPlusMinus(double Mean, double Stddev, int Decimals) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%.*f±%.*f", Decimals, Mean, Decimals,
                Stddev);
  return Buf;
}

std::string pacer::formatThousands(uint64_t Count) {
  if (Count == 0)
    return "0";
  if (Count < 1000)
    return "<1K";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lluK",
                static_cast<unsigned long long>(Count / 1000));
  return Buf;
}

std::string pacer::formatPercent(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Value * 100.0);
  return Buf;
}
