//===- support/Arena.cpp --------------------------------------------------==//

#include "support/Arena.h"

#include "support/Topology.h"

#include <cassert>
#include <new>

using namespace pacer;

namespace {

thread_local Arena *CurrentArena = nullptr;

size_t roundUp16(size_t Bytes) { return (Bytes + 15) & ~size_t(15); }

} // namespace

Arena *Arena::current() { return CurrentArena; }

Arena::Scope::Scope(Arena *A) : Prev(CurrentArena) { CurrentArena = A; }
Arena::Scope::~Scope() { CurrentArena = Prev; }

Arena::~Arena() {
  for (const Slab &S : Slabs)
    ::operator delete(S.Base);
}

size_t Arena::classOf(size_t Bytes) {
  if (Bytes < MinBlockBytes)
    Bytes = MinBlockBytes;
  size_t Class = 4; // 2^4 == MinBlockBytes.
  while ((size_t(1) << Class) < Bytes)
    ++Class;
  assert(Class < NumClasses && "block beyond arena size classes");
  return Class;
}

void *Arena::carve(size_t TotalBytes) {
  while (CurSlab < Slabs.size()) {
    const Slab &S = Slabs[CurSlab];
    if (CurOffset + TotalBytes <= S.Bytes) {
      void *Out = S.Base + CurOffset;
      CurOffset += TotalBytes;
      return Out;
    }
    ++CurSlab;
    CurOffset = 0;
  }
  size_t SlabSize = TotalBytes > DefaultSlabBytes ? TotalBytes
                                                  : DefaultSlabBytes;
  char *Base = static_cast<char *>(::operator new(SlabSize));
  // Node-local placement for sharded replay: replicas are constructed and
  // run inside their (pinned) worker's task, so the thread carving this
  // slab is the thread whose node the detector metadata should live on.
  // mbind sets the policy (and migrates any recycled resident pages);
  // touching every page here makes first-touch place the rest correctly
  // even where mbind is unavailable. Unpinned threads (Node < 0) skip all
  // of this -- the pre-NUMA behavior.
  if (int Node = topo::currentAllocationNode(); Node >= 0) {
    (void)topo::bindMemoryToNode(Base, SlabSize,
                                 static_cast<unsigned>(Node));
    const size_t Page = topo::pageSize();
    for (size_t Off = 0; Off < SlabSize; Off += Page)
      static_cast<volatile char *>(Base)[Off] = 0;
    ++NodePlacedSlabs;
  }
  Slabs.push_back({Base, SlabSize});
  SlabBytesTotal += SlabSize;
  ++SlabAllocs;
  CurSlab = Slabs.size() - 1;
  CurOffset = TotalBytes;
  return Base;
}

void *Arena::allocate(size_t Bytes) {
  const size_t Class = classOf(Bytes);
  ++BlockAllocs;
  if (void *Block = FreeLists[Class]) {
    FreeLists[Class] = *static_cast<void **>(Block);
    // The header survives from the block's first allocation.
    return Block;
  }
  const size_t Payload = size_t(1) << Class;
  void *Raw = carve(sizeof(BlockHeader) + Payload);
  auto *H = static_cast<BlockHeader *>(Raw);
  H->Owner = this;
  H->Class = Class;
  return H + 1;
}

void Arena::reset() {
  for (void *&List : FreeLists)
    List = nullptr;
  CurSlab = 0;
  CurOffset = 0;
}

void *Arena::allocBlock(size_t Bytes) {
  if (Arena *A = CurrentArena)
    return A->allocate(Bytes);
  const size_t Payload = roundUp16(Bytes < MinBlockBytes ? MinBlockBytes
                                                         : Bytes);
  auto *H = static_cast<BlockHeader *>(
      ::operator new(sizeof(BlockHeader) + Payload));
  H->Owner = nullptr;
  H->Class = 0;
  return H + 1;
}

void Arena::freeBlock(void *Ptr) {
  if (!Ptr)
    return;
  auto *H = static_cast<BlockHeader *>(Ptr) - 1;
  Arena *Owner = H->Owner;
  if (!Owner) {
    ::operator delete(H);
    return;
  }
  *static_cast<void **>(Ptr) = Owner->FreeLists[H->Class];
  Owner->FreeLists[H->Class] = Ptr;
}
