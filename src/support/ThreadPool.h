//===- support/ThreadPool.h - Deterministic trial parallelism --*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool and parallelFor/parallelMap helpers for the
/// experiment harness. Every trial of a detection, overhead, or space
/// experiment is a pure function of (workload, setup, seed), so trials can
/// run concurrently; results are written into an index-addressed slot and
/// aggregated in index (seed) order afterwards, which makes parallel
/// output bit-identical to the serial loop it replaces. There is no work
/// stealing and no reduction tree: determinism comes entirely from the
/// ordered aggregation, and scheduling is a plain atomic cursor.
///
/// With Jobs <= 1 (the default everywhere) the helpers degenerate to an
/// inline serial loop on the calling thread -- no threads are created, so
/// single-job behaviour is exactly the pre-parallel harness.
///
/// The pool is built for coarse tasks (a trial is milliseconds to seconds
/// of replay); per-batch dispatch costs a couple of mutex acquisitions and
/// one atomic add per task, which is noise at that granularity.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_THREADPOOL_H
#define PACER_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pacer {

/// Fixed set of worker threads executing indexed task batches.
class ThreadPool {
public:
  /// Starts \p Workers threads. Zero workers is valid: run() then executes
  /// inline on the calling thread.
  explicit ThreadPool(unsigned Workers);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Joins all workers.
  ~ThreadPool();

  /// Number of worker threads (0 means inline execution).
  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Fn(Index) for every Index in [0, Count) and blocks until all
  /// complete. Indices are claimed from an atomic cursor, so tasks run in
  /// roughly ascending order but on arbitrary workers; the calling thread
  /// works the cursor too. Reusable: run() may be called any number of
  /// times, from one controlling thread at a time. When exceptions are
  /// enabled, the lowest failing index's exception is rethrown on the
  /// caller after the batch drains -- the same exception the serial loop
  /// would have surfaced first.
  void run(size_t Count, const std::function<void(size_t)> &Fn);

private:
  /// All state of one run() call. Workers hold a shared_ptr snapshot, so a
  /// worker that wakes late (or is still draining its claim loop when the
  /// batch completes) can only ever touch its own batch's cursor, never a
  /// subsequently started batch's.
  struct Batch {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t Count = 0;
    std::atomic<size_t> NextIndex{0};
    std::atomic<size_t> Remaining{0};
#if defined(__cpp_exceptions)
    std::mutex ErrorMutex;
    size_t FirstErrorIndex = 0;
    std::exception_ptr FirstError;
#endif
  };

  /// Claims and executes tasks from \p B until the cursor is exhausted.
  void processBatch(Batch &B);

  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable BatchDone;
  std::shared_ptr<Batch> Current;
  uint64_t Generation = 0;
  bool Stopping = false;
};

/// Number of jobs requested via the PACER_JOBS environment variable;
/// 1 (serial) when unset, empty, or unparsable. Clamped to [1, 256].
unsigned defaultJobs();

/// std::thread::hardware_concurrency with a floor of 1.
unsigned hardwareJobs();

/// Whether pool workers pin themselves to CPUs at startup (the first NUMA
/// step on the roadmap: stop replicas migrating across cores mid-trial so
/// their arena slabs stay cache- and node-local). Resolution order: an
/// explicit setThreadPinning() call (the --pin-threads flag), else the
/// PACER_PIN_THREADS environment variable (set and not "0"), else off.
/// Pinning is best-effort: on platforms without an affinity API it is a
/// no-op, and a failed pin is ignored.
bool threadPinningEnabled();

/// Programmatic override of PACER_PIN_THREADS (from --pin-threads).
void setThreadPinning(bool Enabled);

/// Best-effort: pins the calling thread to slot `Index` of the system pin
/// plan (support/Topology.h) -- each NUMA node's CPUs are exhausted before
/// the next node's, and on single-node hosts the plan degenerates to the
/// old `Index % hardwareJobs()` assignment. A successful pin records the
/// slot's node in the thread-local consulted by Arena slab placement.
/// No-op where unsupported or when pinning is disabled.
void pinCurrentThread(unsigned Index);

/// Runs Fn(I) for I in [0, Count) on \p Jobs-way concurrency (a transient
/// pool of Jobs - 1 workers plus the calling thread's share of the
/// cursor). Jobs <= 1 runs the loop inline.
void parallelFor(unsigned Jobs, size_t Count,
                 const std::function<void(size_t)> &Fn);

/// Maps [0, Count) through \p Fn into an index-ordered result vector.
/// Aggregating the returned vector front to back reproduces the serial
/// loop's result exactly, whatever the interleaving was.
template <typename FnT>
auto parallelMap(unsigned Jobs, size_t Count, FnT Fn)
    -> std::vector<decltype(Fn(size_t(0)))> {
  std::vector<decltype(Fn(size_t(0)))> Results(Count);
  parallelFor(Jobs, Count, [&](size_t I) { Results[I] = Fn(I); });
  return Results;
}

} // namespace pacer

#endif // PACER_SUPPORT_THREADPOOL_H
