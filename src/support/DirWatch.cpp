//===- support/DirWatch.cpp -----------------------------------------------==//

#include "support/DirWatch.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

using namespace pacer;
namespace fs = std::filesystem;

static bool hasSuffix(const std::string &Name, const char *Suffix) {
  const size_t Len = std::char_traits<char>::length(Suffix);
  return Name.size() >= Len &&
         Name.compare(Name.size() - Len, Len, Suffix) == 0;
}

std::vector<std::string> pacer::scanDropDir(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec), End;
  if (Ec)
    return Files;
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    const fs::directory_entry &Entry = *It;
    std::error_code TypeEc;
    if (!Entry.is_regular_file(TypeEc) || TypeEc)
      continue;
    std::string Name = Entry.path().filename().string();
    if (Name.empty() || Name[0] == '.' || hasSuffix(Name, ".tmp") ||
        hasSuffix(Name, ".part"))
      continue;
    Files.push_back(Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

bool pacer::claimFile(const std::string &Src, const std::string &Dst) {
  std::error_code Ec;
  fs::rename(Src, Dst, Ec);
  return !Ec;
}

bool pacer::ensureDir(const std::string &Dir) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  std::error_code ExistsEc;
  return fs::is_directory(Dir, ExistsEc) && !ExistsEc;
}

bool pacer::writeFileAtomic(const std::string &Path, const void *Data,
                            size_t Size, std::string &Error) {
  Error.clear();
  const std::string TmpPath = Path + ".tmp";

  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot create " + TmpPath;
    return false;
  }
  const char *P = static_cast<const char *>(Data);
  size_t Written = 0;
  while (Written < Size) {
    ssize_t N = ::write(Fd, P + Written, Size - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      Error = "write failed for " + TmpPath;
      return false;
    }
    Written += static_cast<size_t>(N);
  }
  // fsync before rename: the atomic rename must publish a fully durable
  // file, or a crash could leave the final name pointing at lost bytes.
  if (::fsync(Fd) != 0 || ::close(Fd) != 0) {
    ::unlink(TmpPath.c_str());
    Error = "fsync failed for " + TmpPath;
    return false;
  }
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    Error = "rename failed for " + Path;
    return false;
  }
  // Best-effort directory fsync so the rename itself is durable.
  std::string Dir = Path;
  size_t Slash = Dir.find_last_of('/');
  Dir = Slash == std::string::npos ? std::string(".") : Dir.substr(0, Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

bool pacer::readFileBytes(const std::string &Path, std::vector<uint8_t> &Out,
                          std::string &Error) {
  Error.clear();
  Out.clear();
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  uint8_t Buf[1 << 16];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), File)) > 0;)
    Out.insert(Out.end(), Buf, Buf + N);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk) {
    Error = "read failed for " + Path;
    return false;
  }
  return true;
}
