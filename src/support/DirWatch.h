//===- support/DirWatch.h - Polling drop-directory scanner -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The filesystem half of the daemon's ingest surface: producers that
/// cannot (or do not want to) hold a socket open drop finished trace
/// files into a directory, and the daemon claims them by atomic rename.
/// Polling (not inotify) keeps it portable and is plenty for trace-sized
/// files; the convention that producers write under a dot-prefix or
/// ".tmp"/".part" suffix and rename into place when complete means a
/// scan never observes a half-written file with its final name.
///
/// All filesystem calls use the std::error_code overloads -- this
/// codebase builds with -fno-exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_DIRWATCH_H
#define PACER_SUPPORT_DIRWATCH_H

#include <cstdint>
#include <string>
#include <vector>

namespace pacer {

/// Lists the regular files in \p Dir that are ready for pickup: skips
/// dotfiles and the in-progress suffixes ".tmp" and ".part". Returns
/// full paths sorted by name (deterministic claim order). A missing or
/// unreadable directory yields an empty list -- a watcher just sees
/// nothing to do.
std::vector<std::string> scanDropDir(const std::string &Dir);

/// Claims \p Src by renaming it to \p Dst (atomic within a filesystem).
/// Returns false if the file vanished or was claimed by someone else
/// first -- the caller simply moves on.
bool claimFile(const std::string &Src, const std::string &Dst);

/// Creates \p Dir (and parents) if needed; true if it exists afterwards.
bool ensureDir(const std::string &Dir);

/// Writes \p Size bytes to \p Path crash-safely: write "<Path>.tmp",
/// fsync it, atomically rename over \p Path, then best-effort fsync the
/// containing directory. After a crash \p Path holds either the old
/// contents or the complete new contents, never a mix.
bool writeFileAtomic(const std::string &Path, const void *Data, size_t Size,
                     std::string &Error);

/// Reads the whole file at \p Path into \p Out; false with \p Error on
/// open or read failure.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Error);

} // namespace pacer

#endif // PACER_SUPPORT_DIRWATCH_H
