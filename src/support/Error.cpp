//===- support/Error.cpp --------------------------------------------------==//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void pacer::fatalError(const char *Msg) {
  std::fprintf(stderr, "pacer fatal error: %s\n", Msg);
  std::fflush(stderr);
  std::abort();
}

void pacer::fatalErrorAt(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "pacer fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
