//===- support/Binary.h - Little-endian buffer (de)serialization *- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds-checked little-endian encoding into / out of byte buffers, plus
/// the FNV-1a 64-bit checksum the persistent formats append. Shared by
/// the FleetAggregator snapshot format, the daemon's snapshot wrapper,
/// and the submission framing -- everything that writes structured bytes
/// to disk or a socket and must reject corruption on the way back in
/// (this codebase builds with -fno-exceptions, so every read path returns
/// explicit success/failure instead of throwing).
///
/// BinReader never aborts on malformed input: reads past the end flip a
/// sticky failed() flag and return zeros, so a decoder can run straight
/// through and check once at the end (the pattern the trace readers use).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_BINARY_H
#define PACER_SUPPORT_BINARY_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace pacer {

/// FNV-1a 64-bit over \p Size bytes, seedable for incremental use.
inline uint64_t fnv1a64(const void *Data, size_t Size,
                        uint64_t Seed = 0xcbf29ce484222325ULL) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Appends little-endian scalars to a growable byte buffer.
class BinWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }

  void u16(uint16_t V) {
    for (int I = 0; I < 2; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Doubles travel as their IEEE-754 bit pattern, so a round trip is
  /// bit-exact (including -0.0 and NaN payloads).
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

  /// Appends fnv1a64 over everything written so far (the conventional
  /// trailer of the persistent formats).
  void appendChecksum() { u64(fnv1a64(Buf.data(), Buf.size())); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reads with a sticky failure flag.
class BinReader {
public:
  BinReader(const void *Data, size_t Size)
      : Data(static_cast<const uint8_t *>(Data)), Size(Size) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }

  uint16_t u16() {
    if (!need(2))
      return 0;
    uint16_t V = 0;
    for (int I = 0; I < 2; ++I)
      V |= static_cast<uint16_t>(Data[Pos + I]) << (8 * I);
    Pos += 2;
    return V;
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }

  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  bool bytes(void *Out, size_t Count) {
    if (!need(Count))
      return false;
    std::memcpy(Out, Data + Pos, Count);
    Pos += Count;
    return true;
  }

  /// Reads and verifies the fnv1a64 trailer over the bytes before it;
  /// fails the reader on mismatch or short input.
  bool checkChecksum() {
    if (!need(8))
      return false;
    uint64_t Expected = fnv1a64(Data, Pos);
    return u64() == Expected && !Failed;
  }

  size_t position() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }
  bool failed() const { return Failed; }
  /// True when every byte was consumed and nothing ran short.
  bool exhausted() const { return !Failed && Pos == Size; }

private:
  bool need(size_t Count) {
    if (Failed || Size - Pos < Count) {
      Failed = true;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace pacer

#endif // PACER_SUPPORT_BINARY_H
