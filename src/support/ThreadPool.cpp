//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include "support/Topology.h"

#include <algorithm>
#include <cstdlib>

using namespace pacer;

namespace {
/// -1 = no programmatic override (consult the environment).
int PinOverride = -1;
} // namespace

bool pacer::threadPinningEnabled() {
  if (PinOverride >= 0)
    return PinOverride != 0;
  const char *Env = std::getenv("PACER_PIN_THREADS");
  return Env && *Env && !(Env[0] == '0' && Env[1] == '\0');
}

void pacer::setThreadPinning(bool Enabled) { PinOverride = Enabled ? 1 : 0; }

void pacer::pinCurrentThread(unsigned Index) {
  if (!threadPinningEnabled())
    return;
  // Topology-ordered assignment: slot I is the I-th CPU of the pin plan,
  // which exhausts one NUMA node before crossing to the next, so
  // co-scheduled workers share a node whenever one has capacity. On a
  // single node the plan is ascending CPU order -- the same CPUs the old
  // Index % hardwareJobs() round-robin picked. A failed pin (restricted
  // cpuset, no affinity API) leaves the thread unpinned and its node
  // unset, exactly as before.
  topo::pinCurrentThreadToPlanSlot(topo::systemPinPlan(), Index);
}

ThreadPool::ThreadPool(unsigned WorkerCount) {
  Workers.reserve(WorkerCount);
  // The pool's N workers plus the controlling thread work one batch
  // cursor, so the plan is sized for N + 1 concurrent threads: when that
  // set exceeds every node's CPUs the worker-count-aware plan balances
  // slots across nodes instead of overflowing fill-first from node 0.
  std::shared_ptr<const topo::PinPlan> Plan;
  if (threadPinningEnabled())
    Plan = std::make_shared<const topo::PinPlan>(
        topo::buildPinPlan(topo::systemTopology(), WorkerCount + 1));
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this, I, Plan] {
      // Worker I takes slot I+1, leaving slot 0 for the controlling
      // thread, which works the same cursor (see run()).
      if (Plan)
        topo::pinCurrentThreadToPlanSlot(*Plan, I + 1);
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::processBatch(Batch &B) {
  for (size_t I = B.NextIndex.fetch_add(1, std::memory_order_relaxed);
       I < B.Count;
       I = B.NextIndex.fetch_add(1, std::memory_order_relaxed)) {
#if defined(__cpp_exceptions)
    try {
      (*B.Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(B.ErrorMutex);
      if (!B.FirstError || I < B.FirstErrorIndex) {
        B.FirstError = std::current_exception();
        B.FirstErrorIndex = I;
      }
    }
#else
    (*B.Fn)(I);
#endif
    if (B.Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the batch: wake the controlling thread. Taking the
      // pool mutex orders the notify against the controller's wait.
      std::lock_guard<std::mutex> Lock(Mutex);
      BatchDone.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  while (true) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      B = Current;
    }
    if (B)
      processBatch(*B);
  }
}

void ThreadPool::run(size_t Count, const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
  auto B = std::make_shared<Batch>();
  B->Fn = &Fn;
  B->Count = Count;
  B->Remaining.store(Count, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = B;
    ++Generation;
  }
  WorkReady.notify_all();
  // The controlling thread works the same cursor: a pool of N workers
  // plus the caller gives N+1-way concurrency, and the caller never sits
  // idle while tasks are queued.
  processBatch(*B);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    BatchDone.wait(Lock, [&] {
      return B->Remaining.load(std::memory_order_acquire) == 0;
    });
    Current.reset();
  }
#if defined(__cpp_exceptions)
  if (B->FirstError)
    std::rethrow_exception(B->FirstError);
#endif
}

unsigned pacer::defaultJobs() {
  const char *Env = std::getenv("PACER_JOBS");
  if (!Env || !*Env)
    return 1;
  char *End = nullptr;
  long Jobs = std::strtol(Env, &End, 10);
  if (End == Env || Jobs < 1)
    return 1;
  return Jobs > 256 ? 256u : static_cast<unsigned>(Jobs);
}

unsigned pacer::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void pacer::parallelFor(unsigned Jobs, size_t Count,
                        const std::function<void(size_t)> &Fn) {
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
  size_t Extra = std::min<size_t>(Jobs, Count) - 1; // Caller is job #0.
  ThreadPool Pool(static_cast<unsigned>(Extra));
  Pool.run(Count, Fn);
}
