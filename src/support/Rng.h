//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**, seeded via SplitMix64).
/// Every stochastic component of the system (trace generation, scheduling,
/// sampling-period selection, LiteRace counter resets) draws from an Rng so
/// that whole experiments replay bit-identically from a single seed.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_RNG_H
#define PACER_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacer {

/// Deterministic xoshiro256** generator.
class Rng {
public:
  /// Constructs a generator whose entire stream is a function of \p Seed.
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses unbiased rejection sampling.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    // 53 high-quality mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Returns a geometrically distributed count with success probability
  /// \p P, i.e. the number of failures before the first success. Returns 0
  /// for P >= 1.
  uint64_t nextGeometric(double P);

  /// Returns a reference to a uniformly chosen element of \p Items, which
  /// must be nonempty.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = nextBelow(I);
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Derives an independent child generator; used to give each subsystem
  /// (scheduler, script builder, controller) its own stream so that adding
  /// draws in one subsystem does not perturb the others.
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

private:
  uint64_t State[4];
};

/// Derives the seed for trial \p Trial of an experiment keyed by
/// \p BaseSeed, mixing both through SplitMix64. Unlike the old
/// BaseSeed + f(Trial) scheme, nearby trial indices (and nearby base
/// seeds) land in unrelated regions of the seed space, so the per-trial
/// xoshiro streams cannot overlap by construction of consecutive seeds.
/// \p Salt separates seed families that share a base seed (e.g. ground
/// truth vs detection trials of the same experiment).
uint64_t deriveTrialSeed(uint64_t BaseSeed, uint64_t Trial,
                         uint64_t Salt = 0);

} // namespace pacer

#endif // PACER_SUPPORT_RNG_H
