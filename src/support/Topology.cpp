//===- support/Topology.cpp -----------------------------------------------==//

#include "support/Topology.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace pacer;

namespace {

thread_local int ThreadNode = -1;

// Process-wide, flipped only from single-threaded setup (tests/benches).
int AllocNodeOverride = -1;

#if defined(__linux__)
bool readSmallFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Buf[4096];
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  Buf[N] = '\0';
  Out.assign(Buf, N);
  return true;
}
#endif

} // namespace

bool topo::parseCpuList(const std::string &Text, std::vector<unsigned> &Out) {
  Out.clear();
  const char *P = Text.c_str();
  while (*P) {
    while (*P == ' ' || *P == '\t' || *P == '\n' || *P == ',')
      ++P;
    if (!*P)
      break;
    if (!std::isdigit(static_cast<unsigned char>(*P)))
      return false;
    char *End = nullptr;
    unsigned long Lo = std::strtoul(P, &End, 10);
    unsigned long Hi = Lo;
    P = End;
    if (*P == '-') {
      ++P;
      if (!std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      Hi = std::strtoul(P, &End, 10);
      P = End;
    }
    if (Hi < Lo || Hi > 1u << 20)
      return false;
    for (unsigned long Cpu = Lo; Cpu <= Hi; ++Cpu)
      Out.push_back(static_cast<unsigned>(Cpu));
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return true;
}

topo::Topology
topo::topologyFromCpuLists(const std::vector<std::string> &NodeCpuLists,
                           unsigned FallbackCpus) {
  Topology T;
  for (size_t Id = 0; Id != NodeCpuLists.size(); ++Id) {
    NodeInfo Node;
    Node.Id = static_cast<unsigned>(Id);
    if (!parseCpuList(NodeCpuLists[Id], Node.Cpus) || Node.Cpus.empty())
      continue; // Memoryless/CPU-less or unreadable node: not a pin target.
    T.Nodes.push_back(std::move(Node));
  }
  if (T.Nodes.empty()) {
    NodeInfo Node;
    Node.Id = 0;
    if (FallbackCpus == 0)
      FallbackCpus = 1;
    for (unsigned Cpu = 0; Cpu != FallbackCpus; ++Cpu)
      Node.Cpus.push_back(Cpu);
    T.Nodes.push_back(std::move(Node));
  }
  return T;
}

topo::Topology topo::discoverTopology() {
  std::vector<std::string> CpuLists;
#if defined(__linux__)
  if (DIR *Dir = opendir("/sys/devices/system/node")) {
    // Collect node ids first: readdir order is arbitrary.
    std::vector<unsigned> Ids;
    while (const dirent *Entry = readdir(Dir)) {
      unsigned Id = 0;
      if (std::sscanf(Entry->d_name, "node%u", &Id) == 1)
        Ids.push_back(Id);
    }
    closedir(Dir);
    std::sort(Ids.begin(), Ids.end());
    if (!Ids.empty()) {
      // Index cpulists by node id; gaps stay empty and are dropped.
      CpuLists.resize(Ids.back() + 1);
      for (unsigned Id : Ids) {
        std::string Text;
        if (readSmallFile("/sys/devices/system/node/node" +
                              std::to_string(Id) + "/cpulist",
                          Text))
          CpuLists[Id] = Text;
      }
    }
  }
#endif
  return topologyFromCpuLists(CpuLists, hardwareJobs());
}

const topo::Topology &topo::systemTopology() {
  static const Topology T = discoverTopology();
  return T;
}

topo::PinPlan topo::buildPinPlan(const Topology &T) {
  PinPlan Plan;
  for (const NodeInfo &Node : T.Nodes)
    for (unsigned Cpu : Node.Cpus)
      Plan.push_back({Cpu, Node.Id});
  return Plan;
}

topo::PinPlan topo::buildPinPlan(const Topology &T, unsigned Workers) {
  if (Workers == 0 || T.Nodes.size() <= 1)
    return buildPinPlan(T);
  // Co-location first: when some node can host the whole worker set,
  // start the fill-first walk there (node 0 whenever it is big enough,
  // which reproduces the worker-count-oblivious plan exactly).
  for (size_t Start = 0; Start != T.Nodes.size(); ++Start) {
    if (T.Nodes[Start].Cpus.size() < Workers)
      continue;
    PinPlan Plan;
    for (size_t I = 0; I != T.Nodes.size(); ++I) {
      const NodeInfo &Node = T.Nodes[(Start + I) % T.Nodes.size()];
      for (unsigned Cpu : Node.Cpus)
        Plan.push_back({Cpu, Node.Id});
    }
    return Plan;
  }
  // The workers cannot share a node, so balance instead of overflowing:
  // one CPU per node per round keeps every prefix of the plan evenly
  // spread across memory controllers.
  PinPlan Plan;
  std::vector<size_t> Cursor(T.Nodes.size(), 0);
  bool Any = true;
  while (Any) {
    Any = false;
    for (size_t I = 0; I != T.Nodes.size(); ++I) {
      if (Cursor[I] >= T.Nodes[I].Cpus.size())
        continue;
      Plan.push_back({T.Nodes[I].Cpus[Cursor[I]++], T.Nodes[I].Id});
      Any = true;
    }
  }
  return Plan;
}

const topo::PinPlan &topo::systemPinPlan() {
  static const PinPlan Plan = buildPinPlan(systemTopology());
  return Plan;
}

bool topo::pinCurrentThreadToPlanSlot(const PinPlan &Plan, unsigned Index) {
  if (Plan.empty())
    return false;
  const PinSlot &Slot = Plan[Index % Plan.size()];
  if (!pinCurrentThreadToCpu(Slot.Cpu))
    return false;
  setCurrentThreadNode(static_cast<int>(Slot.Node));
  return true;
}

int topo::currentThreadNode() { return ThreadNode; }
void topo::setCurrentThreadNode(int Node) { ThreadNode = Node; }

int topo::allocationNodeOverride() { return AllocNodeOverride; }
void topo::setAllocationNodeOverride(int Node) { AllocNodeOverride = Node; }

int topo::currentAllocationNode() {
  if (AllocNodeOverride >= 0)
    return AllocNodeOverride;
  return ThreadNode;
}

size_t topo::pageSize() {
#if defined(__linux__)
  static const size_t Page = [] {
    long N = sysconf(_SC_PAGESIZE);
    return N > 0 ? static_cast<size_t>(N) : size_t(4096);
  }();
  return Page;
#else
  return 4096;
#endif
}

bool topo::bindMemoryToNode(void *Ptr, size_t Bytes, unsigned Node) {
#if defined(__linux__) && defined(SYS_mbind)
  // Constants from <numaif.h>, declared locally so no libnuma headers or
  // library are required.
  constexpr int MpolPreferred = 1;
  constexpr unsigned MpolMfMove = 1u << 1;
  const size_t Page = pageSize();
  uintptr_t Begin =
      (reinterpret_cast<uintptr_t>(Ptr) + Page - 1) & ~(Page - 1);
  uintptr_t End = (reinterpret_cast<uintptr_t>(Ptr) + Bytes) & ~(Page - 1);
  if (End <= Begin)
    return false; // Range smaller than one whole page: first-touch only.
  constexpr size_t MaskWords = 16; // Up to 1024 nodes.
  constexpr size_t BitsPerWord = sizeof(unsigned long) * 8;
  if (Node >= MaskWords * BitsPerWord)
    return false;
  unsigned long Mask[MaskWords] = {};
  Mask[Node / BitsPerWord] = 1ul << (Node % BitsPerWord);
  // MPOL_MF_MOVE migrates any already-resident pages (the slab may reuse
  // heap memory first touched elsewhere); if the kernel refuses, the call
  // still sets the policy for untouched pages.
  long Rc = syscall(SYS_mbind, Begin, End - Begin, MpolPreferred, Mask,
                    MaskWords * BitsPerWord, MpolMfMove);
  return Rc == 0;
#else
  (void)Ptr;
  (void)Bytes;
  (void)Node;
  return false;
#endif
}

bool topo::pinCurrentThreadToCpu(unsigned Cpu) {
#if defined(__linux__)
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(Cpu, &Set);
  return pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set) == 0;
#else
  (void)Cpu;
  return false;
#endif
}

std::string topo::summary() {
  const Topology &T = systemTopology();
  std::string Out = std::to_string(T.cpuCount()) + " cpus, " +
                    std::to_string(T.Nodes.size()) + " numa node" +
                    (T.Nodes.size() == 1 ? "" : "s") + " (";
  for (size_t I = 0; I != T.Nodes.size(); ++I) {
    const NodeInfo &Node = T.Nodes[I];
    if (I)
      Out += ", ";
    Out += "node" + std::to_string(Node.Id) + ": ";
    // Render runs compactly ("0-3,8") the way sysfs does.
    for (size_t J = 0; J != Node.Cpus.size();) {
      size_t K = J;
      while (K + 1 < Node.Cpus.size() &&
             Node.Cpus[K + 1] == Node.Cpus[K] + 1)
        ++K;
      if (J)
        Out += ",";
      Out += std::to_string(Node.Cpus[J]);
      if (K > J)
        Out += "-" + std::to_string(Node.Cpus[K]);
      J = K + 1;
    }
  }
  Out += ")";
  return Out;
}

std::string topo::planSummary(size_t MaxSlots) {
  const PinPlan &Plan = systemPinPlan();
  std::string Out;
  size_t N = std::min(MaxSlots, Plan.size());
  for (size_t I = 0; I != N; ++I) {
    if (I)
      Out += " ";
    Out += "cpu" + std::to_string(Plan[I].Cpu) + "/node" +
           std::to_string(Plan[I].Node);
  }
  if (Plan.size() > N)
    Out += " ... (" + std::to_string(Plan.size()) + " slots)";
  return Out;
}
