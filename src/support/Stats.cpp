//===- support/Stats.cpp --------------------------------------------------==//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pacer;

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderrOfMean() const {
  if (N == 0)
    return 0.0;
  return stddev() / std::sqrt(static_cast<double>(N));
}

double pacer::median(std::vector<double> Values) {
  return quantile(std::move(Values), 0.5);
}

double pacer::quantile(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  std::sort(Values.begin(), Values.end());
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

BinomialInterval pacer::wilsonInterval(uint64_t Successes, uint64_t Trials,
                                       double Z) {
  if (Trials == 0)
    return {0.0, 1.0};
  double N = static_cast<double>(Trials);
  double PHat = static_cast<double>(Successes) / N;
  double Z2 = Z * Z;
  double Denom = 1.0 + Z2 / N;
  double Center = (PHat + Z2 / (2.0 * N)) / Denom;
  double Margin =
      (Z / Denom) * std::sqrt(PHat * (1.0 - PHat) / N + Z2 / (4.0 * N * N));
  return {std::max(0.0, Center - Margin), std::min(1.0, Center + Margin)};
}

bool pacer::proportionConsistent(uint64_t Successes, uint64_t Trials, double P,
                                 double Z) {
  BinomialInterval CI = wilsonInterval(Successes, Trials, Z);
  return P >= CI.Low && P <= CI.High;
}
