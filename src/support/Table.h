//===- support/Table.h - Aligned text-table formatting ---------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats the evaluation tables and figure series as aligned plain text so
/// every bench binary prints rows in the same style the paper reports them.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_TABLE_H
#define PACER_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pacer {

/// Builds an aligned text table row by row. Column widths are computed when
/// the table is rendered.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row. Rows may be ragged; missing cells render empty.
  void addRow(std::vector<std::string> Columns);

  /// Appends a horizontal separator at the current position.
  void addSeparator();

  /// Renders the table with two-space column gaps. The first column is
  /// left-aligned and the rest are right-aligned, matching the paper's
  /// program-name-then-numbers layout.
  std::string render() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

/// Formats \p Value with \p Decimals fractional digits.
std::string formatDouble(double Value, int Decimals);

/// Formats a "mean ± stddev" cell as the paper's Table 1 does.
std::string formatPlusMinus(double Mean, double Stddev, int Decimals);

/// Formats a count with a K suffix (e.g. 149376K) as the paper's Table 3
/// does; values below 1000 render as "<1K" when nonzero, "0" when zero.
std::string formatThousands(uint64_t Count);

/// Formats \p Value as a percentage string with \p Decimals digits.
std::string formatPercent(double Value, int Decimals);

} // namespace pacer

#endif // PACER_SUPPORT_TABLE_H
