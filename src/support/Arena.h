//===- support/Arena.h - Detector metadata arena ---------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-detector-replica slab allocator for access-path metadata: spilled
/// wide vector clocks, ReadMap entry arrays, FlatVarTable slot arrays, and
/// the dense per-variable tables. Each detector owns one Arena and binds
/// it to the current thread (Arena::Scope) for the duration of every
/// entry point; allocations inside the scope carve from the arena's slabs
/// instead of the general-purpose heap, so the access hot path performs
/// zero malloc/free once the slabs and size-class free lists are warm.
///
/// Blocks are headered: each carries the owning arena (null for the
/// global-heap fallback used when no arena is bound) and its size class,
/// so a block may be freed from *any* context -- including detector
/// member destruction, where the members' blocks dispatch back into the
/// arena via their headers. For that to be safe the Arena must be
/// declared as the detector's FIRST data member, so it is destroyed LAST.
///
/// Size-class free lists (powers of two, >= 16 bytes) recycle freed
/// blocks; a pure bump pointer would leak under FlatVarTable's grow/shrink
/// oscillation across sampling periods. reset() recycles every block at
/// once while keeping the slabs -- legal only when no live block from
/// this arena remains (see DESIGN.md section 6f for the lifetime rules).
///
/// An Arena is single-threaded: exactly one thread may allocate from or
/// free into it at a time. Sharded replay satisfies this trivially (one
/// replica = one detector = one worker at a time).
///
/// Fresh slabs are NUMA-placed on the carving thread's pinned node (mbind
/// + first-touch, see support/Topology.h) so each replica's metadata is
/// node-local to the worker replaying it; with pinning off, placement is
/// skipped entirely.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_ARENA_H
#define PACER_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacer {

/// Slab-backed block allocator with power-of-two free lists.
class Arena {
public:
  Arena() = default;
  ~Arena();
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates a block of at least \p Bytes from this arena.
  void *allocate(size_t Bytes);

  /// Recycles every block at once, keeping the slabs for reuse. Legal
  /// only when no live block from this arena remains.
  void reset();

  /// Total bytes of slab memory owned (the arena's heap footprint).
  size_t slabBytes() const { return SlabBytesTotal; }

  /// Blocks handed out over the arena's lifetime (test/diagnostic hook).
  uint64_t blockAllocations() const { return BlockAllocs; }

  /// Slab allocations over the lifetime: how often the arena itself had
  /// to touch the general-purpose heap (test/diagnostic hook).
  uint64_t slabAllocations() const { return SlabAllocs; }

  /// Slabs that received NUMA placement (mbind + first-touch) because the
  /// carving thread was pinned to a node or a placement override was
  /// active (support/Topology.h). 0 unless pinning/override is on.
  uint64_t nodePlacedSlabs() const { return NodePlacedSlabs; }

  /// The arena bound to the current thread (null if none).
  static Arena *current();

  /// Allocates a block of at least \p Bytes from the current thread's
  /// bound arena, falling back to the global heap when none is bound
  /// (e.g. detector objects used directly in tests). The block is
  /// headered: freeBlock() routes it back to wherever it came from.
  static void *allocBlock(size_t Bytes);

  /// Frees a block from allocBlock()/allocate(), from any context.
  /// Null is ignored.
  static void freeBlock(void *Ptr);

  /// RAII binding of an arena to the current thread; nests (restores the
  /// previous binding on destruction). Pass null to run unbound.
  class Scope {
  public:
    explicit Scope(Arena *A);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Arena *Prev;
  };

private:
  /// Precedes every block payload; 16 bytes keeps payloads 16-aligned.
  struct BlockHeader {
    Arena *Owner;   // Null: global-heap fallback block.
    uint64_t Class; // log2 of the payload size.
  };

  static constexpr size_t MinBlockBytes = 16; // Holds a free-list link.
  static constexpr size_t NumClasses = 48;
  static constexpr size_t DefaultSlabBytes = size_t(64) << 10;

  static size_t classOf(size_t Bytes);

  /// Bump-allocates \p TotalBytes (header included) of 16-aligned slab
  /// space, appending a new slab when the current ones are exhausted.
  void *carve(size_t TotalBytes);

  struct Slab {
    char *Base = nullptr;
    size_t Bytes = 0;
  };

  std::vector<Slab> Slabs;
  size_t CurSlab = 0;   // Slab currently bumping.
  size_t CurOffset = 0; // Bump offset within it.
  void *FreeLists[NumClasses] = {};
  size_t SlabBytesTotal = 0;
  uint64_t BlockAllocs = 0;
  uint64_t SlabAllocs = 0;
  uint64_t NodePlacedSlabs = 0;
};

/// Stateless std-compatible allocator that routes through the current
/// thread's bound arena (Arena::allocBlock/freeBlock). Lets the detectors'
/// dense per-variable vectors live in the arena with no allocator
/// plumbing: the binding is ambient, so default-constructed containers and
/// nested vectors all land in the right arena automatically.
template <typename T> struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() = default;
  template <typename U> ArenaAllocator(const ArenaAllocator<U> &) noexcept {}

  T *allocate(size_t N) {
    return static_cast<T *>(Arena::allocBlock(N * sizeof(T)));
  }
  void deallocate(T *P, size_t) noexcept { Arena::freeBlock(P); }

  friend bool operator==(const ArenaAllocator &, const ArenaAllocator &) {
    return true;
  }
};

} // namespace pacer

#endif // PACER_SUPPORT_ARENA_H
