//===- support/Socket.cpp -------------------------------------------------==//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pacer;

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

static std::string errnoText(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

Socket::Socket(Socket &&Other) noexcept : Fd(std::exchange(Other.Fd, -1)) {}

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = std::exchange(Other.Fd, -1);
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Socket Socket::connectUnix(const std::string &Path, std::string &Error) {
  Error.clear();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "unix socket path too long: " + Path;
    return Socket();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoText("socket");
    return Socket();
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoText(("connect " + Path).c_str());
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

Socket Socket::connectTcp(int Port, std::string &Error) {
  Error.clear();
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoText("socket");
    return Socket();
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoText("connect localhost");
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

bool Socket::sendAll(const void *Data, size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool Socket::recvAll(void *Data, size_t Size) {
  char *P = static_cast<char *>(Data);
  while (Size > 0) {
    ssize_t N = ::recv(Fd, P, Size, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // Peer closed mid-message.
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool Socket::setRecvTimeout(int Milliseconds) {
  timeval Tv{};
  Tv.tv_sec = Milliseconds / 1000;
  Tv.tv_usec = (Milliseconds % 1000) * 1000;
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0;
}

ListenSocket::ListenSocket(ListenSocket &&Other) noexcept
    : Fd(std::exchange(Other.Fd, -1)),
      UnixPath(std::move(Other.UnixPath)) {
  Other.UnixPath.clear();
}

ListenSocket &ListenSocket::operator=(ListenSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = std::exchange(Other.Fd, -1);
    UnixPath = std::move(Other.UnixPath);
    Other.UnixPath.clear();
  }
  return *this;
}

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}

ListenSocket ListenSocket::listenUnix(const std::string &Path, int Backlog,
                                      std::string &Error) {
  Error.clear();
  ListenSocket L;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "unix socket path too long: " + Path;
    return L;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  // The daemon owns its socket path: a stale file from a crashed run
  // must not block restart.
  ::unlink(Path.c_str());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoText("socket");
    return L;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    Error = errnoText(("listen " + Path).c_str());
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.UnixPath = Path;
  return L;
}

ListenSocket ListenSocket::listenTcp(int Port, int Backlog,
                                     std::string &Error, int *BoundPort) {
  Error.clear();
  ListenSocket L;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoText("socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    Error = errnoText("listen tcp");
    ::close(Fd);
    return L;
  }
  if (BoundPort) {
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
      *BoundPort = ntohs(Bound.sin_port);
  }
  L.Fd = Fd;
  return L;
}

Socket ListenSocket::accept(int TimeoutMs, bool &TimedOut,
                            std::string &Error) {
  TimedOut = false;
  Error.clear();
  pollfd P{};
  P.fd = Fd;
  P.events = POLLIN;
  int Ready = ::poll(&P, 1, TimeoutMs);
  if (Ready == 0) {
    TimedOut = true;
    return Socket();
  }
  if (Ready < 0) {
    if (errno == EINTR) {
      TimedOut = true; // Treat like a timeout; the loop re-polls.
      return Socket();
    }
    Error = errnoText("poll");
    return Socket();
  }
  int Client = ::accept(Fd, nullptr, nullptr);
  if (Client < 0) {
    if (errno == EINTR || errno == ECONNABORTED) {
      TimedOut = true;
      return Socket();
    }
    Error = errnoText("accept");
    return Socket();
  }
  return Socket(Client);
}
