//===- support/Error.h - Fatal errors and checked assertions ---*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting for unrecoverable conditions. Library code is built
/// without exceptions; invariant violations abort via fatalError() or
/// assert(), and unreachable control flow is marked with pacerUnreachable().
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_ERROR_H
#define PACER_SUPPORT_ERROR_H

namespace pacer {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// that must be reported even in release builds (assertions may be
/// compiled out).
[[noreturn]] void fatalError(const char *Msg);

/// Like fatalError() but also reports the source location of the failure.
[[noreturn]] void fatalErrorAt(const char *Msg, const char *File, int Line);

} // namespace pacer

/// Marks a point in the code that must be unreachable if the program's
/// invariants hold. Unlike assert(0), this is active in all build modes.
#define pacerUnreachable(Msg) ::pacer::fatalErrorAt(Msg, __FILE__, __LINE__)

/// Checks \p Cond in all build modes, unlike assert(). Use for invariants
/// whose violation would silently corrupt analysis results.
#define PACER_CHECK(Cond, Msg)                                                 \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::pacer::fatalErrorAt(Msg, __FILE__, __LINE__);                          \
  } while (false)

#endif // PACER_SUPPORT_ERROR_H
