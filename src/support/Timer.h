//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch for the overhead experiments.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_TIMER_H
#define PACER_SUPPORT_TIMER_H

#include <chrono>

namespace pacer {

/// Starts timing at construction.
class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace pacer

#endif // PACER_SUPPORT_TIMER_H
