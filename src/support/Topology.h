//===- support/Topology.h - CPU/NUMA topology discovery --------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CPU and NUMA-node topology for topology-aware execution: worker pinning
/// that fills a node before crossing sockets, and node-local Arena slab
/// placement so each sharded-replay replica's detector metadata lives on
/// the node of the worker that replays it.
///
/// Discovery reads /sys/devices/system/node/node*/cpulist on Linux and
/// degrades to a single synthetic node covering all hardware CPUs
/// anywhere that fails (non-Linux, containers hiding sysfs, genuinely
/// single-node hosts) -- in which case every plan and placement decision
/// collapses to exactly the pre-NUMA behavior. The parsing and
/// plan-building steps are pure functions so multi-node shapes are
/// testable on single-node build hosts.
///
/// Placement model: ThreadPool workers record their pinned node in a
/// thread-local at pin time; Arena consults currentAllocationNode() when
/// it carves a fresh slab and (a) asks the kernel to place the slab's
/// pages on that node via mbind(MPOL_PREFERRED) -- issued with a raw
/// syscall so there is no libnuma dependency -- then (b) touches every
/// page from the calling (pinned) thread, so first-touch places the pages
/// correctly even where mbind is unavailable (seccomp, old kernels).
/// Unpinned threads report node -1 and slab placement is skipped
/// entirely: zero behavior change unless pinning is on.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_TOPOLOGY_H
#define PACER_SUPPORT_TOPOLOGY_H

#include <cstddef>
#include <string>
#include <vector>

namespace pacer::topo {

/// One NUMA node and the CPUs it owns (memoryless nodes with an empty
/// cpulist are dropped at discovery).
struct NodeInfo {
  unsigned Id = 0;
  std::vector<unsigned> Cpus;
};

/// The machine: every node with at least one CPU, in node-id order.
struct Topology {
  std::vector<NodeInfo> Nodes;

  unsigned cpuCount() const {
    size_t N = 0;
    for (const NodeInfo &Node : Nodes)
      N += Node.Cpus.size();
    return static_cast<unsigned>(N);
  }
  bool multiNode() const { return Nodes.size() > 1; }
};

/// Parses a sysfs cpulist ("0-3,8,10-11", trailing newline tolerated)
/// into ascending CPU ids. Returns false on malformed text (Out is then
/// unspecified). An empty/whitespace-only list parses to no CPUs.
bool parseCpuList(const std::string &Text, std::vector<unsigned> &Out);

/// Builds a topology from per-node cpulist strings (node ids are the
/// vector positions); nodes whose list is empty or malformed are dropped.
/// When nothing usable remains, falls back to one node with CPUs
/// [0, FallbackCpus). Pure function -- the test seam for multi-node
/// shapes.
Topology topologyFromCpuLists(const std::vector<std::string> &NodeCpuLists,
                              unsigned FallbackCpus);

/// Reads /sys/devices/system/node; single-node fallback everywhere else.
Topology discoverTopology();

/// discoverTopology(), computed once per process.
const Topology &systemTopology();

/// One worker slot of the pinning plan: which CPU, and that CPU's node.
struct PinSlot {
  unsigned Cpu = 0;
  unsigned Node = 0;
};

/// Slot I of the plan is the CPU the I-th pinned thread binds to. The
/// plan lists each node's CPUs exhaustively before moving to the next
/// node ("fill a node before crossing sockets"), so co-scheduled workers
/// share a node as long as one has capacity. On a single node this is
/// ascending CPU order -- identical to the old Index % hardwareJobs()
/// assignment. Threads beyond the plan wrap around.
using PinPlan = std::vector<PinSlot>;

/// Pure plan construction from any topology (the test seam).
PinPlan buildPinPlan(const Topology &T);

/// Worker-count-aware plan construction: \p Workers is the number of
/// threads about to be pinned through the plan's leading slots. When the
/// whole set fits on one node the plan stays fill-first, starting at the
/// first node with capacity for all of them (node 0 whenever it is big
/// enough -- the legacy shape). When \p Workers exceeds every node's CPU
/// count, co-location is impossible anyway, so the plan interleaves nodes
/// round-robin: the first K slots land within one CPU of evenly spread
/// across memory controllers for every K, instead of saturating node 0
/// and spilling only the remainder. Workers == 0 (unknown) and
/// single-node topologies reduce to buildPinPlan(T). Pure function.
PinPlan buildPinPlan(const Topology &T, unsigned Workers);

/// buildPinPlan(systemTopology()), computed once per process.
const PinPlan &systemPinPlan();

/// Pins the calling thread to slot \p Index of \p Plan (wrapping past the
/// end) and records the slot's node in the thread-local on success. False
/// on an empty plan or a failed pin (restricted cpuset, no affinity API),
/// in which case the thread stays unpinned and its node unset.
bool pinCurrentThreadToPlanSlot(const PinPlan &Plan, unsigned Index);

/// The NUMA node the calling thread was pinned to, or -1 when the thread
/// is unpinned. Set by ThreadPool::pinCurrentThread on successful pins.
int currentThreadNode();
void setCurrentThreadNode(int Node);

/// Process-wide test/bench override for slab placement: when >= 0, Arena
/// places fresh slabs on this node regardless of thread pinning. -1 (the
/// default) defers to the calling thread's pinned node. Not thread-safe;
/// set from single-threaded setup only.
int allocationNodeOverride();
void setAllocationNodeOverride(int Node);

/// The node fresh Arena slabs should be placed on right now: the
/// override if set, else the calling thread's pinned node, else -1
/// (no placement).
int currentAllocationNode();

/// Best-effort: asks the kernel to place [Ptr, Ptr+Bytes) on \p Node
/// (MPOL_PREFERRED via raw mbind syscall; the range is shrunk to whole
/// pages). Returns true when the kernel accepted. False anywhere mbind
/// is unavailable -- callers must pair this with first-touch.
bool bindMemoryToNode(void *Ptr, size_t Bytes, unsigned Node);

/// Best-effort: pins the calling thread to \p Cpu (no node bookkeeping).
/// Returns true on success; false where unsupported.
bool pinCurrentThreadToCpu(unsigned Cpu);

/// System page size (4096 fallback where sysconf is unavailable).
size_t pageSize();

/// One-line human summary: "8 cpus, 2 numa nodes (node0: 0-3, node1:
/// 4-7)" -- used by racedetect --cpu-info and the racedetectd startup
/// banner.
std::string summary();

/// Human rendering of the first \p MaxSlots slots of the system pin plan:
/// "cpu0/node0 cpu1/node0 ...".
std::string planSummary(size_t MaxSlots);

} // namespace pacer::topo

#endif // PACER_SUPPORT_TOPOLOGY_H
