//===- support/CommandLine.h - Minimal flag parsing ------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny --name=value flag parser shared by the bench and example binaries
/// so every experiment can scale trial counts and workload sizes from the
/// command line without pulling in a heavyweight dependency.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_COMMANDLINE_H
#define PACER_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace pacer {

/// Parses "--name=value" and bare "--name" (boolean true) arguments.
/// Unknown positional arguments are collected and retrievable.
class FlagSet {
public:
  /// Parses \p Argv. Aborts with a usage message on malformed flags.
  FlagSet(int Argc, const char *const *Argv);

  /// Returns the integer value of flag \p Name, or \p Default if absent.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the double value of flag \p Name, or \p Default if absent.
  double getDouble(const std::string &Name, double Default) const;

  /// Returns the string value of flag \p Name, or \p Default if absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns true if flag \p Name is present (with any value) and not "0"
  /// or "false"; \p Default if absent.
  bool getBool(const std::string &Name, bool Default) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Returns true if the flag was explicitly provided.
  bool has(const std::string &Name) const;

private:
  const std::string *find(const std::string &Name) const;

  std::vector<std::pair<std::string, std::string>> Flags;
  std::vector<std::string> Positional;
};

} // namespace pacer

#endif // PACER_SUPPORT_COMMANDLINE_H
