//===- support/CommandLine.h - Minimal flag parsing ------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny --name=value flag parser shared by the bench and example binaries
/// so every experiment can scale trial counts and workload sizes from the
/// command line without pulling in a heavyweight dependency. On top of the
/// raw FlagSet sits OptionRegistry: binaries declare their flags once
/// (name, default, help line), and the registry parses argv against the
/// declarations, rejects unknown flags, and generates --help output --
/// so the bench drivers and tools/racedetect no longer hand-roll usage
/// text that drifts from the flags they actually read.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_COMMANDLINE_H
#define PACER_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pacer {

/// Parses "--name=value" and bare "--name" (boolean true) arguments.
/// Unknown positional arguments are collected and retrievable.
class FlagSet {
public:
  /// Parses \p Argv. Aborts with a usage message on malformed flags.
  FlagSet(int Argc, const char *const *Argv);

  /// Returns the integer value of flag \p Name, or \p Default if absent.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the double value of flag \p Name, or \p Default if absent.
  double getDouble(const std::string &Name, double Default) const;

  /// Returns the string value of flag \p Name, or \p Default if absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns true if flag \p Name is present (with any value) and not "0"
  /// or "false"; \p Default if absent.
  bool getBool(const std::string &Name, bool Default) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Returns true if the flag was explicitly provided.
  bool has(const std::string &Name) const;

private:
  const std::string *find(const std::string &Name) const;

  std::vector<std::pair<std::string, std::string>> Flags;
  std::vector<std::string> Positional;
};

/// Declarative flag registry: declare options once, parse argv against
/// them, and get --help generated from the declarations. Unknown --flags
/// are an error (typos no longer silently fall back to defaults).
class OptionRegistry {
public:
  /// \p Usage is the one-line synopsis printed at the top of --help,
  /// e.g. "racedetect [options] TRACE...".
  explicit OptionRegistry(std::string Usage) : Usage(std::move(Usage)) {}

  OptionRegistry &addInt(const std::string &Name, int64_t Default,
                         const std::string &Help);
  OptionRegistry &addDouble(const std::string &Name, double Default,
                            const std::string &Help);
  OptionRegistry &addString(const std::string &Name,
                            const std::string &Default,
                            const std::string &Help);
  /// Boolean flag, false unless given (bare "--name" or "--name=1").
  OptionRegistry &addFlag(const std::string &Name, const std::string &Help);

  /// Parses \p Argv. Returns false if --help was requested (printed to
  /// stdout) or an undeclared flag was present (error printed to stderr);
  /// callers should exit with helpRequested() ? 0 : 2.
  bool parse(int Argc, const char *const *Argv);

  bool helpRequested() const { return HelpRequested; }

  int64_t getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  std::string getString(const std::string &Name) const;
  bool getBool(const std::string &Name) const;

  /// True if the flag was explicitly provided on the command line.
  bool has(const std::string &Name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Writes the generated help text.
  void printHelp(std::FILE *Out) const;

private:
  enum class Kind : uint8_t { Int, Double, String, Flag };

  struct Option {
    std::string Name;
    Kind Type;
    std::string Help;
    int64_t IntDefault = 0;
    double DoubleDefault = 0.0;
    std::string StringDefault;
  };

  const Option *findOption(const std::string &Name) const;
  const std::string *findValue(const std::string &Name) const;

  std::string Usage;
  std::vector<Option> Options;
  std::vector<std::pair<std::string, std::string>> Values;
  std::vector<std::string> Positional;
  bool HelpRequested = false;
};

} // namespace pacer

#endif // PACER_SUPPORT_COMMANDLINE_H
