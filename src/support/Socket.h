//===- support/Socket.h - Minimal stream-socket wrappers -------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough RAII over POSIX stream sockets for the fleet ingest
/// daemon: Unix-domain and loopback-TCP listeners, blocking clients, and
/// exact-length send/receive (the framing layer above always knows how
/// many bytes it wants). Everything reports failure through return
/// values and out-parameters -- this codebase builds with
/// -fno-exceptions -- and all I/O retries EINTR and sends with
/// MSG_NOSIGNAL so a disconnecting peer surfaces as an error, not
/// SIGPIPE.
///
/// TCP is deliberately loopback-only: racedetectd is a host-local
/// collection point (deployed instances on other machines would relay
/// through their own forwarder), so nothing here ever binds a routable
/// address.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SUPPORT_SOCKET_H
#define PACER_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>

namespace pacer {

/// A connected stream socket (client side or accepted connection).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept;
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Connects to a Unix-domain listener; invalid socket + \p Error set on
  /// failure.
  static Socket connectUnix(const std::string &Path, std::string &Error);

  /// Connects to a loopback TCP listener on \p Port.
  static Socket connectTcp(int Port, std::string &Error);

  /// Writes exactly \p Size bytes; false on any error or peer close.
  bool sendAll(const void *Data, size_t Size);

  /// Reads exactly \p Size bytes; false on error or premature EOF.
  bool recvAll(void *Data, size_t Size);

  /// Bounds how long recvAll may block per read; a stalled peer then
  /// fails the receive instead of pinning a connection thread forever.
  bool setRecvTimeout(int Milliseconds);

private:
  int Fd = -1;
};

/// A listening socket (Unix-domain or loopback TCP).
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(ListenSocket &&Other) noexcept;
  ListenSocket &operator=(ListenSocket &&Other) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the listener; a Unix-domain listener also unlinks its path.
  void close();

  /// Binds and listens on a Unix-domain path (unlinking any stale socket
  /// file first -- the daemon owns its socket path).
  static ListenSocket listenUnix(const std::string &Path, int Backlog,
                                 std::string &Error);

  /// Binds and listens on loopback TCP. \p Port 0 picks an ephemeral
  /// port; \p BoundPort (when non-null) receives the actual port.
  static ListenSocket listenTcp(int Port, int Backlog, std::string &Error,
                                int *BoundPort = nullptr);

  /// Waits up to \p TimeoutMs for a connection. Returns an invalid
  /// Socket on timeout (\p TimedOut = true) or error (\p Error set), so
  /// an acceptor loop can poll a stop flag between waits.
  Socket accept(int TimeoutMs, bool &TimedOut, std::string &Error);

private:
  int Fd = -1;
  std::string UnixPath; ///< Unlinked on close; empty for TCP.
};

} // namespace pacer

#endif // PACER_SUPPORT_SOCKET_H
