//===- runtime/Runtime.cpp ------------------------------------------------==//

#include "runtime/Runtime.h"

// Header-only for inlining into the replay loop; this file anchors the
// library target.
