//===- runtime/IngestServer.h - Fleet trace-ingest daemon core -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server side of the paper's fleet deployment, as an embeddable
/// component (tools/racedetectd is a thin CLI around it): accept binary
/// or text trace submissions over a Unix-domain socket, loopback TCP,
/// and a watched drop-directory; replay each through an AnalysisSession
/// (bounded-memory streaming by default); and fold every result into a
/// persistent FleetAggregator.
///
/// Ingest pipeline, designed so a kill -9 at ANY point loses no
/// committed submission and double-counts nothing:
///
///   receive -> spool -> analyze -> commit -> ack
///
///  - *Spool*: submissions are streamed to disk in small chunks (a
///    connection never buffers a whole trace), written under a ".part"
///    name and renamed into the spool when complete. Per-connection
///    memory is O(chunk); per-analysis memory is O(streaming window).
///  - *Queue*: spooled submissions enter a bounded queue; when it is
///    full, connection and watcher threads block -- backpressure
///    propagates to producers instead of growing memory.
///  - *Commit*: under one lock, the analysis result is folded into the
///    aggregator, the submission's idempotency id is recorded, and the
///    snapshot (aggregator + ids + counters, one atomically-renamed
///    file) is written. A spool file is deleted only after a snapshot
///    covering it is durable.
///  - *Recovery*: on start, load the snapshot, delete ".part" leftovers
///    and spool files whose id is already committed, and re-ingest the
///    rest. Submissions carrying a client id are therefore exactly-once
///    across crashes (retries of committed work answer "duplicate");
///    id-less submissions degrade to at-least-once. Drop-directory files
///    are claimed by atomic rename and use their filename as the id.
///
/// Aggregation uses the fleet-wide specified rate for every instance
/// (FleetAggregator's order-independent fixed point), so estimates are
/// bit-identical to an in-process pass over the same logs no matter the
/// order in which concurrent submissions commit.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_INGESTSERVER_H
#define PACER_RUNTIME_INGESTSERVER_H

#include "runtime/AnalysisSession.h"
#include "runtime/FleetAggregator.h"
#include "support/Socket.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace pacer {

/// Wire protocol shared by the daemon and its clients. Frames are
/// length-prefixed on both directions:
///
///   request:  u32 magic | u8 type | u8 idLen | u16 reserved(0) |
///             u64 payloadLen | id bytes | payload bytes
///   response: u32 magic | u8 status | u8 zero | u16 reserved(0) |
///             u64 messageLen | message bytes
///
/// A Submit payload is a trace file image (binary v2 or text v1); the id
/// is an opaque client-chosen idempotency token (<= MaxClientIdBytes).
/// A Stats request has no id and no payload; its response message is a
/// JSON object of ingest counters.
namespace ingest {

inline constexpr uint32_t FrameMagic = 0x31444352; // "RCD1", little-endian.
inline constexpr size_t FrameHeaderBytes = 16;
inline constexpr size_t MaxClientIdBytes = 100;

enum class FrameType : uint8_t {
  Submit = 1,
  Stats = 2,
};

enum class Status : uint8_t {
  Committed = 0,   ///< Folded into the fleet state (and snapshot).
  Duplicate = 1,   ///< This id was already committed; not re-counted.
  Malformed = 2,   ///< The trace failed validation; rejected.
  TooLarge = 3,    ///< Payload exceeds the submission size limit.
  Unavailable = 4, ///< Shutting down / refusing work; retry later.
  Error = 5,       ///< Internal failure; message says what.
};

/// Returns "committed", "duplicate", ...
const char *statusName(Status S);

/// Outcome of one client call.
struct SubmitResult {
  bool Ok = false;    ///< Transport-level success (a response arrived).
  Status Code = Status::Error;
  std::string Message; ///< Response message or transport error.
};

/// Submits the trace file at \p TracePath over \p S (streamed from disk
/// in bounded chunks) under idempotency id \p ClientId (may be empty)
/// and waits for the verdict.
SubmitResult submitFile(Socket &S, const std::string &TracePath,
                        const std::string &ClientId);

/// Requests the daemon's ingest counters; \p StatsJson receives the JSON
/// message on success.
bool requestStats(Socket &S, std::string &StatsJson, std::string &Error);

} // namespace ingest

/// The embeddable fleet-ingest daemon.
class IngestServer {
public:
  struct Config {
    /// Unix-domain listener path; empty disables.
    std::string UnixSocketPath;
    /// Loopback TCP port; -1 disables, 0 picks an ephemeral port
    /// (readable via tcpPort() after start).
    int TcpPort = -1;
    /// Watched drop directory; empty disables.
    std::string DropDir;
    /// Snapshot file; empty disables persistence (state is then lost on
    /// stop, and crash recovery degrades to re-ingesting the spool).
    std::string SnapshotPath;
    /// Spool directory for in-flight submissions (required).
    std::string SpoolDir;

    /// Detector configuration for every submission's replay. Default:
    /// PACER at rate 1.0, sequential. Setup.SamplingRate doubles as the
    /// fleet-wide rate handed to the aggregator.
    DetectorSetup Setup;
    /// Seed for sampling decisions, shared by every submission (a fleet
    /// rate is a deployment constant; per-submission seeds would change
    /// estimates with arrival order).
    uint64_t Seed = 1;
    /// Streaming window for per-submission replay.
    size_t StreamWindow = StreamingTraceReader::DefaultWindowActions;

    /// Hard per-submission size limit, bytes.
    uint64_t MaxSubmissionBytes = 256ull << 20;
    /// Bounded submission queue; producers block when full.
    size_t QueueCapacity = 64;
    /// Analysis worker threads; 0 = hardware concurrency.
    unsigned AnalysisWorkers = 0;
    /// Maximum simultaneously-open connections; excess connects are
    /// answered Unavailable and closed.
    unsigned MaxConnections = 256;
    /// Snapshot after every Nth commit (1 = every commit). Spool files
    /// are retained until a snapshot covers them, so raising this trades
    /// snapshot I/O for re-analysis after a crash -- never for data loss.
    unsigned SnapshotEveryN = 1;
    /// Drop-directory poll interval.
    int DropPollMs = 50;
    /// Per-read receive timeout on connections.
    int RecvTimeoutMs = 10000;
    /// Committed-id memory (for duplicate detection), persisted in the
    /// snapshot; oldest ids are evicted beyond this.
    size_t MaxCommittedIds = 4096;
  };

  /// One pipeline stage's latency tally.
  struct StageStats {
    uint64_t Count = 0;
    double TotalMs = 0;
    double MaxMs = 0;
  };

  /// Everything the stats request reports.
  struct Counters {
    uint64_t Received = 0;  ///< Submissions fully spooled.
    uint64_t Committed = 0; ///< Folded into the aggregator.
    uint64_t Duplicates = 0;
    uint64_t MalformedRejected = 0;
    uint64_t OversizeRejected = 0;
    uint64_t BytesIngested = 0; ///< Payload bytes of committed submissions.
    uint64_t RacesDynamic = 0;  ///< Dynamic races across commits.
    StageStats Spool, Analyze, Commit;
  };

  explicit IngestServer(Config C);
  ~IngestServer();

  IngestServer(const IngestServer &) = delete;
  IngestServer &operator=(const IngestServer &) = delete;

  /// Loads the snapshot (if any), recovers the spool, and starts
  /// listeners, watcher, and workers. False with \p Error on any
  /// unrecoverable setup failure.
  bool start(std::string &Error);

  /// Graceful shutdown: stop accepting, drain the queue, write a final
  /// snapshot. Idempotent.
  void stop();

  bool running() const { return Running.load(); }

  /// The bound TCP port (after start, when TCP is enabled), else -1.
  int tcpPort() const { return BoundTcpPort; }

  /// Snapshot of the ingest counters.
  Counters counters() const;

  /// The counters as the JSON object the stats request returns.
  std::string statsText() const;

  /// A copy of the current fleet state (for in-process verification).
  FleetAggregator aggregatorCopy() const;

  /// Reads the fleet aggregator out of a daemon snapshot file (the
  /// daemon's format wraps FleetAggregator's); for offline inspection
  /// and tests.
  static bool loadSnapshotFile(const std::string &Path,
                               FleetAggregator &Agg, std::string &Error);

private:
  struct ResponseSlot;
  struct Task;
  struct Connection;

  void acceptLoop(ListenSocket *Listener);
  void connectionLoop(Connection *Conn);
  void dropWatchLoop();
  void workerLoop();
  void reapConnections(bool Final);

  bool enqueue(Task T);
  void processTask(Task &T);
  ingest::Status commitResult(const AnalysisResult &Result,
                              const std::string &ClientId,
                              uint64_t PayloadBytes,
                              const std::string &SpoolPath);
  bool writeSnapshotLocked(std::string &Error);
  bool recoverSpool(std::string &Error);
  std::string spoolPathFor(uint64_t Seq, const std::string &ClientId) const;

  Config C;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  int BoundTcpPort = -1;

  ListenSocket UnixListener, TcpListener;
  std::thread UnixAcceptor, TcpAcceptor, DropWatcher;
  std::vector<std::thread> Workers;

  std::mutex ConnMutex;
  std::list<std::unique_ptr<Connection>> Connections;
  unsigned LiveConnections = 0;

  mutable std::mutex QueueMutex;        ///< Mutable: stats peek depth.
  std::condition_variable QueueSpaceCv; ///< Producers wait for space.
  std::condition_variable QueueWorkCv;  ///< Workers wait for tasks.
  std::deque<Task> Queue;

  /// Guards the aggregator, committed-id memory, counters, snapshot
  /// writing, and deferred spool unlinks: one commit at a time.
  mutable std::mutex StateMutex;
  FleetAggregator Aggregator;
  std::deque<std::string> CommittedOrder; ///< Eviction order.
  std::unordered_set<std::string> CommittedIds;
  Counters Stats;
  uint64_t CommitsSinceSnapshot = 0;
  std::vector<std::string> PendingUnlinks; ///< Spool files awaiting snapshot.

  std::atomic<uint64_t> SpoolSeq{0};
};

} // namespace pacer

#endif // PACER_RUNTIME_INGESTSERVER_H
