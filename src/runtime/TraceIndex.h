//===- runtime/TraceIndex.h - Pre-partitioned replay index -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-pass preprocessing index that lets a sharded-replay replica walk a
/// trace in O(sync + owned accesses) instead of re-scanning and filtering
/// the entire trace (the pre-index engine's O(trace) per replica).
///
/// The index decomposes a trace into two structures:
///
///  - The *sync skeleton*: every synchronization action, thread-exit
///    marker, and thread first-sight point, in trace order with its
///    original position. Between consecutive skeleton events lies an
///    *epoch*: a maximal run of data accesses. The skeleton plus the
///    per-epoch access counts (implicit in the epoch spans, since an epoch
///    contains only accesses) are exactly what the SamplingController
///    needs to advance bit-identically: its allocation clock charges a
///    constant number of bytes per access while the sampling state is
///    unchanged, so a whole epoch advances in O(#boundaries) via
///    SamplingController::advanceAccessRun instead of O(#accesses).
///
///  - K per-shard *owned-access runs*: maximal contiguous trace spans
///    [Begin, End) whose actions are all accesses owned by one shard
///    (Var % K == shard), tagged with the epoch they lie in. The runs of
///    one shard are disjoint, sorted, and nested in epoch spans; across
///    shards they partition the trace's accesses exactly.
///
/// The index is a pure function of (trace, K): it holds no detector or
/// controller state, so one index is built per trace and shared read-only
/// by every replica, every trial, and every detector configuration.
///
/// replayShard() then replays one replica's view: skeleton events dispatch
/// in order (threadBegin at first-sight points, the detector hook plus
/// controller accounting for sync actions), and each epoch's accesses are
/// delivered from the shard's owned runs as accessBatch spans, split only
/// at sampling-period boundaries the bulk controller advance reports. For
/// detectors whose access analysis depends on the *full* access stream
/// (LiteRace's code sampler advances per access regardless of ownership --
/// see Detector::accessAnalysisIsShardLocal), the replica falls back to
/// delivering whole epoch spans with an ownership filter, preserving
/// bit-identical results at O(trace) cost.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_TRACEINDEX_H
#define PACER_RUNTIME_TRACEINDEX_H

#include "detectors/Detector.h"
#include "sim/Action.h"

#include <cstdint>
#include <vector>

namespace pacer {

class SamplingController;

/// Immutable replay index for one (trace, shard count) pair.
class TraceIndex {
public:
  /// One sync-skeleton event. BeginTid != InvalidId marks a thread
  /// first-sight point: the runtime delivers Detector::threadBegin(BeginTid)
  /// *before* the action at Pos (which may be an access belonging to the
  /// following epoch). Otherwise the (non-access) action at Pos dispatches
  /// to its detector hook.
  struct Event {
    uint32_t Pos = 0;
    ThreadId BeginTid = InvalidId;
  };

  /// One maximal run of data accesses between skeleton events; every
  /// action in [Begin, End) is an access, so End - Begin is the epoch's
  /// access count.
  struct EpochSpan {
    uint32_t Begin = 0;
    uint32_t End = 0;
  };

  /// One maximal contiguous span of accesses owned by a single shard,
  /// inside epoch \p Epoch.
  struct Run {
    uint32_t Begin = 0;
    uint32_t End = 0;
    uint32_t Epoch = 0;
  };

  /// Builds the index in one pass over \p T. \p Shards < 1 is treated
  /// as 1 (the single shard owns every access).
  static TraceIndex build(TraceSpan T, unsigned Shards);

  /// Single-pass streaming construction: feed the trace in arbitrary
  /// contiguous chunks (e.g. from a StreamingTraceReader's bounded
  /// window) and take() the finished index. build(T, K) is exactly
  /// Builder(K).addChunk(T).take(); the result is identical for every
  /// chunking, so --shards=auto resolution and sharded replay can share
  /// one bounded-memory pass over a trace file.
  class Builder; // Defined after the class (it holds a TraceIndex).

  unsigned shardCount() const { return Shards; }

  /// Total data accesses in the trace (= sum of owned counts).
  uint64_t accessCount() const { return AccessTotal; }

  /// Accesses owned by \p Shard (= sum of its run lengths).
  uint64_t ownedAccessCount(uint32_t Shard) const {
    return OwnedCounts[Shard];
  }

  /// Skeleton events in trace order. Epoch i precedes event i; the last
  /// epoch follows the last event (epochs().size() == events().size() + 1).
  const std::vector<Event> &events() const { return Events; }
  const std::vector<EpochSpan> &epochs() const { return Epochs; }
  const std::vector<Run> &runs(uint32_t Shard) const { return Runs[Shard]; }

  /// Replays shard \p Shard's replica view of \p T (the trace this index
  /// was built from) through \p D, optionally under \p Controller.
  /// Observationally identical to Runtime::replay(T, AccessShard(Shard,
  /// shardCount())) on a fresh Runtime, but costs O(sync + owned accesses)
  /// for shard-local detectors (plus O(#boundaries) controller work)
  /// instead of O(trace). \p T may be a memory-mapped TraceView span.
  /// \p SyncBatching coalesces skeleton runs of same-thread
  /// acquire/release pairs on one lock into Detector::syncBatch() calls
  /// (Runtime::deliverSyncPairRun, shared with the sequential engine) --
  /// the skeleton is replayed by *every* replica, so the collapse
  /// compounds with the shard count.
  void replayShard(TraceSpan T, uint32_t Shard, Detector &D,
                   SamplingController *Controller,
                   bool SyncBatching = true) const;

private:
  unsigned Shards = 1;
  uint64_t AccessTotal = 0;
  std::vector<Event> Events;
  std::vector<EpochSpan> Epochs;
  std::vector<std::vector<Run>> Runs;
  std::vector<uint64_t> OwnedCounts;
};

/// Single-pass streaming construction: feed the trace in arbitrary
/// contiguous chunks (e.g. from a StreamingTraceReader's bounded window)
/// and take() the finished index. build(T, K) is exactly
/// Builder(K).addChunk(T).take(); the result is identical for every
/// chunking, so --shards=auto resolution and sharded replay can share one
/// bounded-memory pass over a trace file.
class TraceIndex::Builder {
public:
  explicit Builder(unsigned Shards);

  /// Appends \p Chunk (the actions at positions [pos, pos + size)).
  void addChunk(TraceSpan Chunk);

  /// Accesses indexed so far (available before take(), for --shards=auto
  /// resolution mid-stream).
  uint64_t accessCount() const { return Index.AccessTotal; }

  /// Closes the final epoch and yields the index. The builder is spent
  /// afterwards.
  TraceIndex take();

private:
  TraceIndex Index;
  std::vector<bool> Seen;
  uint32_t Pos = 0;
  uint32_t EpochBegin = 0;
};

/// Picks a shard count for a trace with \p AccessCount data accesses:
/// one shard per ~32k accesses so replica setup and skeleton replay
/// amortize, capped at \p HardwareJobs (never less than 1).
unsigned autoShardCount(uint64_t AccessCount, unsigned HardwareJobs);

/// Resolves a shard request where 0 means "auto" (pick from the trace's
/// access count and hardwareJobs()); nonzero values pass through.
unsigned resolveShardCount(unsigned Requested, uint64_t AccessCount);

/// Parses a --shards flag value: "auto" yields 0 (the auto sentinel);
/// a positive number yields that count (capped at 4096); anything else
/// yields 1.
unsigned parseShardCount(const std::string &Text);

/// Counts the data accesses in \p T (the input to auto shard tuning).
uint64_t countTraceAccesses(TraceSpan T);

} // namespace pacer

#endif // PACER_RUNTIME_TRACEINDEX_H
