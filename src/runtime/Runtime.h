//===- runtime/Runtime.h - Trace replay through a detector -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays an execution trace through a detector, standing in for the
/// compiler-inserted instrumentation of the paper's Jikes RVM
/// implementation: each action dispatches to the matching analysis hook,
/// and an optional sampling controller delivers sbegin/send transitions at
/// simulated GC boundaries. Experiments that need to interleave their own
/// probing (the Figure 10 space experiment) drive step() directly.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_RUNTIME_H
#define PACER_RUNTIME_RUNTIME_H

#include "detectors/Detector.h"
#include "runtime/SamplingController.h"
#include "sim/Action.h"

namespace pacer {

/// Instrumentation dispatcher.
class Runtime {
public:
  /// \p Controller may be null for detectors that do not sample (Generic,
  /// FastTrack, LiteRace, Null).
  Runtime(Detector &D, SamplingController *Controller = nullptr)
      : D(D), Controller(Controller) {}

  /// Makes the controller's initial sampling decision. Idempotent; called
  /// automatically by replay().
  void start() {
    if (Controller && !Started)
      Controller->start(D);
    Started = true;
  }

  /// Processes one action: sampling control first, then dispatch. Returns
  /// true if a simulated GC boundary fired at this action.
  bool step(const Action &A) {
    bool Boundary =
        Controller ? Controller->beforeAction(A.Kind, D) : false;
    dispatch(A);
    return Boundary;
  }

  /// Replays a whole trace.
  void replay(const Trace &T) {
    start();
    for (const Action &A : T)
      step(A);
  }

  /// Routes \p A to the detector hook it instruments.
  void dispatch(const Action &A) {
    switch (A.Kind) {
    case ActionKind::Read:
      D.read(A.Tid, A.Target, A.Site);
      break;
    case ActionKind::Write:
      D.write(A.Tid, A.Target, A.Site);
      break;
    case ActionKind::Acquire:
      D.acquire(A.Tid, A.Target);
      break;
    case ActionKind::Release:
      D.release(A.Tid, A.Target);
      break;
    case ActionKind::Fork:
      D.fork(A.Tid, A.Target);
      break;
    case ActionKind::Join:
      D.join(A.Tid, A.Target);
      break;
    case ActionKind::VolatileRead:
      D.volatileRead(A.Tid, A.Target);
      break;
    case ActionKind::AwaitVolatile:
      // The read that finally observes the awaited write.
      D.volatileRead(A.Tid, A.Target);
      break;
    case ActionKind::VolatileWrite:
      D.volatileWrite(A.Tid, A.Target);
      break;
    case ActionKind::ThreadExit:
      break; // Not an analysed action.
    }
  }

private:
  Detector &D;
  SamplingController *Controller;
  bool Started = false;
};

} // namespace pacer

#endif // PACER_RUNTIME_RUNTIME_H
