//===- runtime/Runtime.h - Trace replay through a detector -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays an execution trace through a detector, standing in for the
/// compiler-inserted instrumentation of the paper's Jikes RVM
/// implementation. The replay path is two-level: the trace is segmented
/// into *epochs* -- maximal runs of data accesses with no synchronization
/// action, thread-lifecycle event, or sampling-period boundary inside --
/// and each epoch is delivered to the detector as one
/// Detector::accessBatch() call. Synchronization actions dispatch to the
/// matching per-action hook as before, and an optional sampling controller
/// delivers sbegin/send transitions at simulated GC boundaries; the
/// segmenter flushes the pending batch before any action whose accounting
/// would fire a boundary, so the detector observes exactly the per-action
/// event order. Experiments that need to interleave their own probing (the
/// Figure 10 space experiment) drive step() directly.
///
/// The runtime also tracks first sight of each thread and delivers
/// Detector::threadBegin() before a thread's first action, so per-thread
/// detector state materializes at a point that is a pure function of the
/// trace -- the anchor that keeps sharded replicas (replay with a
/// non-trivial AccessShard) bit-identical to sequential replay.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_RUNTIME_H
#define PACER_RUNTIME_RUNTIME_H

#include "detectors/Detector.h"
#include "runtime/SamplingController.h"
#include "sim/Action.h"

#include <vector>

namespace pacer {

/// Instrumentation dispatcher.
class Runtime {
public:
  /// \p Controller may be null for detectors that do not sample (Generic,
  /// FastTrack, LiteRace, Null). \p SyncBatching coalesces maximal runs of
  /// same-thread acquire/release pairs on one lock into
  /// Detector::syncBatch() calls (observationally identical to per-event
  /// delivery; period boundaries still toggle at exact event positions).
  Runtime(Detector &D, SamplingController *Controller = nullptr,
          bool SyncBatching = true)
      : D(D), Controller(Controller), SyncBatching(SyncBatching) {}

  /// Makes the controller's initial sampling decision. Idempotent; called
  /// automatically by replay().
  void start() {
    if (Controller && !Started)
      Controller->start(D);
    Started = true;
  }

  /// Processes one action: thread first-sight, sampling control, then
  /// dispatch. Returns true if a simulated GC boundary fired at this
  /// action.
  bool step(const Action &A) {
    if (firstSight(A.Tid))
      D.threadBegin(A.Tid);
    bool Boundary =
        Controller ? Controller->beforeAction(A.Kind, D) : false;
    dispatch(A);
    return Boundary;
  }

  /// Replays a whole trace through batched epoch dispatch. The detector
  /// observes the same hook sequence as a step() loop, with runs of
  /// consecutive data accesses folded into accessBatch() calls.
  void replay(TraceSpan T) { replay(T, AccessShard::all()); }

  /// Shard-filtered replay: every synchronization and lifecycle action is
  /// processed, but only data accesses owned by \p Shard are analysed.
  void replay(TraceSpan T, const AccessShard &Shard) {
    start();
    replayChunk(T, Shard);
  }

  /// Incremental replay: processes one contiguous chunk of the trace,
  /// leaving the runtime ready for the next chunk. Feeding a trace in any
  /// chunking is observationally identical to one replay() call: access
  /// batches never carry detector-visible state across their edges (every
  /// accessBatch override is equivalent to its per-access loop) and the
  /// controller's bulk advance is splittable at any point, so a chunk
  /// edge merely splits a batch. This is what lets a StreamingTraceReader
  /// drive replay from a bounded window.
  ///
  /// Access runs are processed at run granularity, not per access: the
  /// scan locates each maximal run of data accesses (recording thread
  /// first sights on the way), and deliverRun() segments it with the
  /// controller's closed-form boundary arithmetic. Every accessBatch the
  /// detector sees is phase-pure -- period toggles happen only between
  /// sub-spans -- and controller cost is O(boundaries + first sights) per
  /// run instead of two calls per access. The detector observes exactly
  /// the per-action hook order: batch flushes before a threadBegin or
  /// toggle at the same position, threadBegin before the toggle, and the
  /// boundary-firing access delivered after the toggle.
  void replayChunk(TraceSpan T, const AccessShard &Shard) {
    const size_t N = T.size();
    size_t I = 0;
    while (I < N) {
      const Action &A = T[I];
      if (!isAccessAction(A.Kind)) {
        if (firstSight(A.Tid))
          D.threadBegin(A.Tid);
        if (SyncBatching && A.Kind == ActionKind::Acquire) {
          // Maximal run of same-thread acquire/release pairs on one lock:
          // the sync skeleton's dominant shape (tight critical-section
          // loops), collapsed by Detector::syncBatch to O(1) per run.
          size_t J = I;
          while (J + 1 < N && T[J].Kind == ActionKind::Acquire &&
                 T[J + 1].Kind == ActionKind::Release && T[J].Tid == A.Tid &&
                 T[J + 1].Tid == A.Tid && T[J].Target == A.Target &&
                 T[J + 1].Target == A.Target)
            J += 2;
          const size_t Pairs = (J - I) / 2;
          if (Pairs >= 2) {
            deliverSyncPairRun(A.Tid, A.Target, 2 * Pairs);
            I += 2 * Pairs;
            continue;
          }
        }
        if (Controller)
          Controller->beforeAction(A.Kind, D);
        dispatch(A);
        ++I;
        continue;
      }
      // Maximal access run [I, RunEnd); mark first sights while scanning
      // (positions are split points inside the run).
      FirstSights.clear();
      size_t RunEnd = I;
      for (; RunEnd < N && isAccessAction(T[RunEnd].Kind); ++RunEnd)
        if (firstSight(T[RunEnd].Tid))
          FirstSights.push_back(RunEnd);
      deliverRun(T, I, RunEnd, Shard);
      I = RunEnd;
    }
  }

  /// Routes \p A to the detector hook it instruments.
  void dispatch(const Action &A) { dispatchTo(D, A); }

  /// Delivers a run of \p TotalEvents (= 2 * pairs) alternating
  /// acquire/release events by \p Tid on \p Lock, coalesced into
  /// Detector::syncBatch() calls. Controller accounting and boundary
  /// toggles are bit-identical to a per-event beforeAction()/dispatch()
  /// loop: segments strictly before a boundary are delivered (batched)
  /// under the old sampling state, advanceSyncRun() toggles at the firing
  /// event, and the firing event re-joins the next segment post-toggle --
  /// a segment cut mid-pair delivers its dangling acquire (and the
  /// following segment its leading release) per-event. Shared with the
  /// indexed replay engine (TraceIndex::replayShard), so both engines
  /// collapse the skeleton identically.
  static void deliverSyncPairRun(Detector &Target,
                                 SamplingController *Controller, ThreadId Tid,
                                 LockId Lock, uint64_t TotalEvents) {
    uint64_t SegBegin = 0;
    uint64_t Accounted = 0;
    auto Deliver = [&](uint64_t To) {
      while (SegBegin < To) {
        if ((SegBegin & 1) == 0 && To - SegBegin >= 2) {
          const uint64_t Pairs = (To - SegBegin) / 2;
          Target.syncBatch(Tid, Lock, Pairs);
          SegBegin += 2 * Pairs;
        } else if ((SegBegin & 1) == 0) {
          Target.acquire(Tid, Lock);
          ++SegBegin;
        } else {
          Target.release(Tid, Lock);
          ++SegBegin;
        }
      }
    };
    while (true) {
      const uint64_t Left = TotalEvents - Accounted;
      const uint64_t Fire =
          Controller && Left ? Controller->syncRunBoundaryIndex(Left) : 0;
      if (!Fire) {
        Deliver(TotalEvents);
        if (Controller && Left)
          Controller->advanceSyncRun(Left, Target); // Accounting only.
        return;
      }
      const uint64_t StopPos = Accounted + Fire - 1;
      Deliver(StopPos);
      Controller->advanceSyncRun(Left, Target); // Toggles; the firing event
                                                // (StopPos) is delivered
                                                // post-toggle.
      Accounted = StopPos + 1;
    }
  }

  /// Stateless dispatch: routes \p A to \p Target's matching hook. The
  /// indexed replay path (TraceIndex::replayShard) shares this switch so
  /// skeleton events hit exactly the hooks a step() loop would.
  static void dispatchTo(Detector &Target, const Action &A) {
    switch (A.Kind) {
    case ActionKind::Read:
      Target.read(A.Tid, A.Target, A.Site);
      break;
    case ActionKind::Write:
      Target.write(A.Tid, A.Target, A.Site);
      break;
    case ActionKind::Acquire:
      Target.acquire(A.Tid, A.Target);
      break;
    case ActionKind::Release:
      Target.release(A.Tid, A.Target);
      break;
    case ActionKind::Fork:
      Target.fork(A.Tid, A.Target);
      break;
    case ActionKind::Join:
      Target.join(A.Tid, A.Target);
      // A join is one of the two points where a thread slot can die
      // (threadExit below is the other), so it is the natural sweep
      // point for accordion slot recycling. Sweeping here -- inside the
      // shared dispatch switch -- makes recycling a pure function of the
      // synchronization prefix: sequential replay, shard-filtered
      // replay, and the indexed engine all recycle at identical trace
      // positions. No-op for detectors without recycling enabled.
      Target.recycleDeadSlots();
      break;
    case ActionKind::VolatileRead:
    case ActionKind::AwaitVolatile:
      // AwaitVolatile is the read that finally observes the awaited
      // write; detectors see an ordinary volatile read.
      Target.volatileRead(A.Tid, A.Target);
      break;
    case ActionKind::VolatileWrite:
      Target.volatileWrite(A.Tid, A.Target);
      break;
    case ActionKind::ThreadExit:
      Target.threadExit(A.Tid);
      Target.recycleDeadSlots();
      break;
    }
  }

private:
  /// Delivers one access run [\p Begin, \p End) of \p T as phase-pure
  /// sub-spans. Split points are thread first sights (FirstSights, filled
  /// by the run scan; threadBegin precedes a boundary toggle at the same
  /// position, as in the per-action loop) and controller period
  /// boundaries located by accessRunBoundaryIndex(). Following
  /// advanceAccessRun()'s contract, the segment strictly before a
  /// boundary is delivered under the old sampling state and the firing
  /// access re-joins the next segment under the new one; the controller's
  /// counter and RNG streams are bit-identical to a per-access
  /// beforeAction() loop.
  void deliverRun(TraceSpan T, size_t Begin, size_t End,
                  const AccessShard &Shard) {
    size_t SegBegin = Begin;
    size_t FsIdx = 0;
    auto Deliver = [&](size_t To) {
      if (SegBegin < To)
        D.accessBatch(
            std::span<const Action>(T.data() + SegBegin, To - SegBegin),
            Shard);
      SegBegin = To;
    };
    size_t Accounted = Begin;
    while (true) {
      const uint64_t Left = End - Accounted;
      const uint64_t Fire =
          Controller && Left ? Controller->accessRunBoundaryIndex(Left) : 0;
      const size_t StopPos =
          Fire ? Accounted + static_cast<size_t>(Fire) - 1 : End;
      while (FsIdx < FirstSights.size() && FirstSights[FsIdx] <= StopPos) {
        Deliver(FirstSights[FsIdx]);
        D.threadBegin(T[FirstSights[FsIdx]].Tid);
        ++FsIdx;
      }
      if (!Fire) {
        Deliver(End);
        if (Controller && Left)
          Controller->advanceAccessRun(Left, D); // No boundary: accounting
                                                 // only, no toggle.
        return;
      }
      Deliver(StopPos);
      Controller->advanceAccessRun(Left, D); // Toggles the detector; the
                                             // firing access (StopPos) is
                                             // delivered post-toggle.
      Accounted = StopPos + 1;
    }
  }

  /// Member shorthand for the static pair-run delivery above.
  void deliverSyncPairRun(ThreadId Tid, LockId Lock, uint64_t TotalEvents) {
    deliverSyncPairRun(D, Controller, Tid, Lock, TotalEvents);
  }

  /// True exactly once per thread, at its first action.
  bool firstSight(ThreadId Tid) {
    if (Tid >= Seen.size())
      Seen.resize(Tid + 1, false);
    if (Seen[Tid])
      return false;
    Seen[Tid] = true;
    return true;
  }

  Detector &D;
  SamplingController *Controller;
  bool SyncBatching;
  bool Started = false;
  std::vector<bool> Seen;
  /// Scratch: first-sight positions within the access run being
  /// delivered (reused across runs to stay allocation-free).
  std::vector<size_t> FirstSights;
};

} // namespace pacer

#endif // PACER_RUNTIME_RUNTIME_H
