//===- runtime/FleetAggregator.h - Distributed-debugging rollup -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deployment model (Sections 1 and 3): "we envision
/// developers deploying PACER on many deployed instances, as in
/// distributed debugging frameworks [17; 18]... with enough deployed
/// instances, the odds of finding every race become high." This component
/// is the server side of that story: it aggregates race reports from many
/// sampled instances and, using the proportionality guarantee
/// P(detect | occur) = r, turns detection counts back into estimates of
/// how often each race actually *occurs* -- something a single full
/// tracking run cannot tell you about rare races.
///
/// For a race with per-run occurrence probability o observed by a fleet of
/// k instances sampling at rate r:
///
///   P(instance reports it) = o * r
///   E[detections]          = k * o * r          =>  o ≈ detections/(k*r)
///   P(fleet finds it)      = 1 - (1 - o*r)^k
///
/// fleetSizeFor() inverts the last formula: how many instances are needed
/// to find a race of a given rarity with a given confidence.
///
/// The aggregator is a CRDT-style state machine so the fleet itself can
/// be distributed: state round-trips through a versioned binary snapshot
/// (saveSnapshot / loadSnapshot, magic + header + checksum like trace
/// v2), and two aggregators over disjoint instance sets merge() into the
/// aggregate of the union. Ingestion is deliberately order-independent --
/// integer tallies commute, the example report per race is the
/// canonically smallest ever seen, and the effective-rate accumulator is
/// exact when all instances report one rate (the deployment model's
/// single global rate) -- so a daemon committing submissions in
/// completion order produces bit-identical estimates to a sequential
/// in-process pass over the same logs.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_FLEETAGGREGATOR_H
#define PACER_RUNTIME_FLEETAGGREGATOR_H

#include "core/RaceReport.h"
#include "runtime/RaceLog.h"
#include "support/Stats.h"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pacer {

/// Aggregated knowledge about one distinct race across the fleet.
struct FleetRaceInfo {
  RaceKey Key;
  uint32_t InstancesReporting = 0; ///< Instances that saw it at least once.
  uint64_t DynamicReports = 0;     ///< Total dynamic reports fleet-wide.
  RaceReport Example;              ///< One full report for the developer.

  /// Estimated per-run occurrence probability, from the proportionality
  /// guarantee (clamped to [0, 1]).
  double EstimatedOccurrence = 0.0;
  /// Wilson interval on the per-instance detection probability o*r.
  BinomialInterval DetectionCI{0.0, 1.0};
};

/// Collects per-instance race logs and produces fleet-level estimates.
class FleetAggregator {
public:
  /// Rate 1.0 (full tracking) until constructed properly, loaded from a
  /// snapshot, or merged into.
  FleetAggregator() : FleetAggregator(1.0) {}

  /// \p SamplingRate is the rate every instance runs at (the paper's
  /// deployment uses one global rate).
  explicit FleetAggregator(double SamplingRate);

  /// The fleet-wide specified sampling rate (clamped to [0, 1]).
  double samplingRate() const { return SamplingRate; }

  /// Ingests one deployed instance's run. \p EffectiveRate may refine the
  /// specified rate with the instance's measured effective rate; pass a
  /// negative value to use the fleet-wide specified rate.
  void addInstance(const RaceLog &Log, double EffectiveRate = -1.0);

  /// Same ingestion from pre-extracted log state (per-distinct-race
  /// dynamic counts plus sample reports), for callers holding an
  /// AnalysisResult or deserialized submission rather than a live
  /// RaceLog.
  void addInstance(const std::unordered_map<RaceKey, uint64_t> &Counts,
                   std::span<const RaceReport> Samples,
                   double EffectiveRate = -1.0);

  /// Folds \p Other (an aggregate over a disjoint set of instance runs at
  /// the same sampling rate) into this one. Exactly commutative: for any
  /// two aggregates, a.merge(b) and b.merge(a) leave bit-identical state.
  /// Associativity is exact for every field except the effective-rate
  /// moments, which re-associate floating-point sums (exact too in the
  /// single-global-rate deployment, where the accumulator sits at a
  /// Welford fixed point).
  void merge(const FleetAggregator &Other);

  /// Number of instance runs ingested.
  uint32_t instanceCount() const { return Instances; }

  /// Number of distinct races seen fleet-wide.
  size_t distinctRaceCount() const { return Races.size(); }

  /// Per-race fleet estimates, sorted by estimated occurrence
  /// (most frequent first).
  std::vector<FleetRaceInfo> summarize(double Z = 1.96) const;

  /// Expected probability that a fleet of \p Instances finds a race whose
  /// per-run occurrence probability is \p Occurrence, at this sampling
  /// rate: 1 - (1 - o*r)^k.
  double coverageProbability(double Occurrence, uint32_t Instances) const;

  /// Smallest fleet size whose coverageProbability for \p Occurrence
  /// reaches \p Confidence. Returns 0 if the inputs make it unreachable.
  uint32_t fleetSizeFor(double Occurrence, double Confidence) const;

  /// Mean measured effective sampling rate across ingested instances
  /// (equals the specified rate if none were provided).
  double meanEffectiveRate() const;

  // --- Persistence (snapshot format v1) ----------------------------------
  //
  // magic[8] = 0xB8 'P' 'A' 'C' 'F' 'L' 'T' '1', then u32 version, u32
  // flags (reserved, 0), the scalar state, races sorted by key (so equal
  // aggregates serialize to equal bytes), and a trailing fnv1a64
  // checksum. Doubles travel as IEEE-754 bit patterns: a save/load round
  // trip restores bit-identical state.

  /// Serializes the full state into a byte buffer.
  std::vector<uint8_t> serialize() const;

  /// Replaces this aggregator's state with the buffer's. Rejects bad
  /// magic, version or flags, truncation, trailing bytes, and checksum
  /// mismatch with \p Error set and the aggregator left empty.
  bool deserialize(const uint8_t *Data, size_t Size, std::string &Error);

  /// Writes the state to \p Path crash-safely: serialize to
  /// "Path.tmp", fsync, atomically rename over \p Path, fsync the
  /// directory. A reader (or a restart) sees either the old complete
  /// snapshot or the new complete snapshot, never a torn one.
  bool saveSnapshot(const std::string &Path, std::string &Error) const;

  /// Loads a snapshot written by saveSnapshot into \p Out (replacing its
  /// state). Fails cleanly on missing files and every corruption
  /// deserialize rejects.
  static bool loadSnapshot(const std::string &Path, FleetAggregator &Out,
                           std::string &Error);

private:
  struct PerRace {
    uint32_t InstancesReporting = 0;
    uint64_t DynamicReports = 0;
    RaceReport Example;
    bool HasExample = false;

    /// Keeps the canonically smallest example (field-lexicographic), so
    /// the surviving report is independent of ingestion and merge order.
    void offerExample(const RaceReport &Report);
  };

  double SamplingRate;
  uint32_t Instances = 0;
  RunningStat EffectiveRates;
  std::unordered_map<RaceKey, PerRace> Races;
};

} // namespace pacer

#endif // PACER_RUNTIME_FLEETAGGREGATOR_H
