//===- runtime/FleetAggregator.h - Distributed-debugging rollup -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deployment model (Sections 1 and 3): "we envision
/// developers deploying PACER on many deployed instances, as in
/// distributed debugging frameworks [17; 18]... with enough deployed
/// instances, the odds of finding every race become high." This component
/// is the server side of that story: it aggregates race reports from many
/// sampled instances and, using the proportionality guarantee
/// P(detect | occur) = r, turns detection counts back into estimates of
/// how often each race actually *occurs* -- something a single full
/// tracking run cannot tell you about rare races.
///
/// For a race with per-run occurrence probability o observed by a fleet of
/// k instances sampling at rate r:
///
///   P(instance reports it) = o * r
///   E[detections]          = k * o * r          =>  o ≈ detections/(k*r)
///   P(fleet finds it)      = 1 - (1 - o*r)^k
///
/// fleetSizeFor() inverts the last formula: how many instances are needed
/// to find a race of a given rarity with a given confidence.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_FLEETAGGREGATOR_H
#define PACER_RUNTIME_FLEETAGGREGATOR_H

#include "core/RaceReport.h"
#include "runtime/RaceLog.h"
#include "support/Stats.h"

#include <unordered_map>
#include <vector>

namespace pacer {

/// Aggregated knowledge about one distinct race across the fleet.
struct FleetRaceInfo {
  RaceKey Key;
  uint32_t InstancesReporting = 0; ///< Instances that saw it at least once.
  uint64_t DynamicReports = 0;     ///< Total dynamic reports fleet-wide.
  RaceReport Example;              ///< One full report for the developer.

  /// Estimated per-run occurrence probability, from the proportionality
  /// guarantee (clamped to [0, 1]).
  double EstimatedOccurrence = 0.0;
  /// Wilson interval on the per-instance detection probability o*r.
  BinomialInterval DetectionCI{0.0, 1.0};
};

/// Collects per-instance race logs and produces fleet-level estimates.
class FleetAggregator {
public:
  /// \p SamplingRate is the rate every instance runs at (the paper's
  /// deployment uses one global rate).
  explicit FleetAggregator(double SamplingRate);

  /// Ingests one deployed instance's run. \p EffectiveRate may refine the
  /// specified rate with the instance's measured effective rate; pass a
  /// negative value to use the fleet-wide specified rate.
  void addInstance(const RaceLog &Log, double EffectiveRate = -1.0);

  /// Number of instance runs ingested.
  uint32_t instanceCount() const { return Instances; }

  /// Number of distinct races seen fleet-wide.
  size_t distinctRaceCount() const { return Races.size(); }

  /// Per-race fleet estimates, sorted by estimated occurrence
  /// (most frequent first).
  std::vector<FleetRaceInfo> summarize(double Z = 1.96) const;

  /// Expected probability that a fleet of \p Instances finds a race whose
  /// per-run occurrence probability is \p Occurrence, at this sampling
  /// rate: 1 - (1 - o*r)^k.
  double coverageProbability(double Occurrence, uint32_t Instances) const;

  /// Smallest fleet size whose coverageProbability for \p Occurrence
  /// reaches \p Confidence. Returns 0 if the inputs make it unreachable.
  uint32_t fleetSizeFor(double Occurrence, double Confidence) const;

  /// Mean measured effective sampling rate across ingested instances
  /// (equals the specified rate if none were provided).
  double meanEffectiveRate() const;

private:
  struct PerRace {
    uint32_t InstancesReporting = 0;
    uint64_t DynamicReports = 0;
    RaceReport Example;
    bool HasExample = false;
  };

  double SamplingRate;
  uint32_t Instances = 0;
  RunningStat EffectiveRates;
  std::unordered_map<RaceKey, PerRace> Races;
};

} // namespace pacer

#endif // PACER_RUNTIME_FLEETAGGREGATOR_H
