//===- runtime/AnalysisSession.h - Unified replay facade -------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One front door for every way this repository replays a trace through a
/// detector. The replay machinery grew four organically separate entry
/// points -- runTrial (generate + replay), runTrialOnTrace (in-memory or
/// mmap span, optionally sharded), runTrialOnStream (bounded-window
/// sequential), and shardedReplay (the raw engine) -- each with its own
/// parameter spelling and result shape. AnalysisSession consolidates them:
///
///   AnalysisRequest  -- detector config (DetectorSetup, which already
///                       carries the shard policy), trial seed, streaming
///                       window, and report-collection switches, in one
///                       struct;
///   AnalysisSession  -- binds a request to the workload context (site ->
///                       method map, local-variable set) and exposes
///                       analyzeGenerated / analyzeTrace / analyzeStream /
///                       analyzeFile, which all produce
///   AnalysisResult   -- the union of every consumer's needs: per-distinct
///                       race counts, sample reports, detector stats,
///                       controller rates, timing split (load / index /
///                       analysis), resolved shard count, and an Ok/Error
///                       pair for untrusted inputs.
///
/// The legacy free functions in harness/TrialRunner.h remain as thin
/// compatibility wrappers over a session; results are bit-identical (the
/// session *is* the moved implementation). analyzeFile subsumes the read-
/// path policy that previously lived in tools/racedetect: binary traces
/// analyse from an mmap view, Stream mode keeps peak trace-resident
/// memory at O(window) and auto-shard resolution runs as an extra bounded
/// pass, text traces parse or stream line by line -- results are
/// bit-identical across every path for a given (Setup, Seed).
///
/// This header also hosts DetectorKind / DetectorSetup / makeDetector and
/// TrialResult (moved from harness/TrialRunner.h so the runtime layer can
/// own the facade without depending on the harness; TrialRunner.h
/// re-exports them, so existing includes keep working).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_ANALYSISSESSION_H
#define PACER_RUNTIME_ANALYSISSESSION_H

#include "detectors/Detector.h"
#include "detectors/FastTrackDetector.h"
#include "detectors/LiteRaceDetector.h"
#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "runtime/SamplingController.h"
#include "sim/StreamingTraceReader.h"
#include "sim/WorkloadSpec.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pacer {

class TraceIndex;

/// Which algorithm a trial runs.
enum class DetectorKind : uint8_t {
  Null,      ///< No analysis (timing baseline).
  Generic,   ///< O(n) vector clocks (Section 2.1).
  FastTrack, ///< Epoch-optimized (Section 2.2).
  Pacer,     ///< Sampling (Section 3); rate from SamplingRate.
  LiteRace,  ///< Code-sampling baseline (Section 5.3).
};

/// Returns "null", "generic", etc.
const char *detectorKindName(DetectorKind Kind);

/// Full configuration of a trial's detector.
struct DetectorSetup {
  DetectorKind Kind = DetectorKind::Pacer;
  /// PACER's specified sampling rate r (0..1); copied into Sampling.
  double SamplingRate = 1.0;
  /// Model the compiler pass's static escape analysis (Section 4): do not
  /// instrument accesses to provably thread-local variables at all. Off
  /// by default so detectors see every access; enabling is sound (locals
  /// never race) and removes their instrumentation cost.
  bool ElideLocalAccesses = false;
  /// Accordion thread-slot recycling (core/SlotRecycler.h) for whichever
  /// detector runs: OR'd into the per-detector config in makeDetector.
  /// Race reports are identical with it on or off; clocks and metadata
  /// stay O(live threads) instead of O(threads ever started).
  bool AccordionClocks = false;
  /// Phase-specialized cold batch kernels (PACER's non-sampling batch,
  /// FastTrack's same-epoch pre-scan, LiteRace's unsampled-run counting):
  /// AND'd into the per-detector UseColdBatchKernel flags in makeDetector.
  /// Results are bit-identical with the kernels on or off; off forces the
  /// generic per-access batch loops (the micro_coldpath baseline).
  bool ColdKernels = true;
  /// Vectorized hot-path kernels (PACER's gather-probe sampling batch,
  /// FastTrack's gather-staged same-epoch write filter, Generic's hoisted
  /// batch loop with the allLeq screen): AND'd into the per-detector
  /// UseHotBatchKernel flags in makeDetector. Results are bit-identical
  /// with the kernels on or off; off forces the per-access loops (the
  /// micro_hotpath baseline).
  bool HotKernels = true;
  /// Coalesce same-thread acquire/release pair runs into
  /// Detector::syncBatch() calls in both replay engines (see
  /// Runtime::deliverSyncPairRun). Bit-identical on or off; the win
  /// compounds with Shards, since every replica replays the skeleton.
  bool SyncBatching = true;
  PacerConfig Pacer;
  FastTrackConfig FastTrack;
  LiteRaceConfig LiteRace;
  SamplingConfig Sampling;
  /// Intra-trial sharded replay: partition data accesses across this many
  /// detector replicas by VarId modulo (see runtime/ShardedReplay.h). 1 is
  /// plain sequential replay; 0 picks a count automatically from the
  /// trace's access count and the hardware (runtime/TraceIndex.h's
  /// autoShardCount). Results are bit-identical for every value.
  unsigned Shards = 1;
  /// Worker concurrency for sharded replay; 0 = one job per shard.
  unsigned ShardJobs = 0;
  /// Drive sharded replicas through a TraceIndex (the O(sync + owned
  /// accesses) engine) instead of full-trace re-scans; results are
  /// identical either way.
  bool ShardUseIndex = true;
};

/// Convenience constructors for common configurations.
DetectorSetup pacerSetup(double Rate);
DetectorSetup fastTrackSetup();
DetectorSetup genericSetup();
DetectorSetup literaceSetup(uint32_t BurstLength = 1000);
DetectorSetup nullSetup();

/// Instantiates the configured detector. \p Seed feeds stochastic
/// detectors (LiteRace's randomized counter resets).
std::unique_ptr<Detector> makeDetector(const DetectorSetup &Setup,
                                       RaceSink &Sink,
                                       const CompiledWorkload &Workload,
                                       uint64_t Seed);

/// Everything measured in one trial (the legacy result shape; see
/// AnalysisResult for the superset the session returns).
struct TrialResult {
  std::unordered_map<RaceKey, uint64_t> Races; ///< Distinct -> dynamic.
  uint64_t DynamicRaces = 0;
  DetectorStats Stats;
  double EffectiveAccessRate = 0.0; ///< PACER only.
  double EffectiveSyncRate = 0.0;   ///< PACER only.
  double LiteRaceEffectiveRate = 0.0;
  uint64_t Boundaries = 0;
  uint64_t TraceEvents = 0;
  double ReplaySeconds = 0.0;
  size_t FinalMetadataBytes = 0;
  /// High-water thread-slot count (replica 0 under sharded replay).
  /// Without recycling this is the number of threads ever started; with
  /// it, the live-thread high-water mark between compactions.
  size_t PeakSlotCount = 0;

  bool sawRace(RaceKey Key) const { return Races.count(Key) != 0; }
  uint64_t dynamicCount(RaceKey Key) const {
    auto It = Races.find(Key);
    return It == Races.end() ? 0 : It->second;
  }
};

/// One replay request: everything that parameterizes an analysis except
/// the input bytes themselves (which pick the analyze* entry point).
struct AnalysisRequest {
  /// Detector configuration, including the shard policy (Setup.Shards,
  /// Setup.ShardJobs, Setup.ShardUseIndex).
  DetectorSetup Setup;
  /// Trial seed: trace generation (analyzeGenerated), sampling-controller
  /// and LiteRace seeding everywhere.
  uint64_t Seed = 1;
  /// analyzeFile only: replay from a bounded window (O(window) peak
  /// trace-resident memory) instead of loading / mapping the whole trace.
  /// Sharded replay of binary traces still engages through an mmap view
  /// (the kernel pages records in and out; no trace-sized allocation);
  /// text traces and mmap-less hosts degrade to sequential streaming.
  bool Stream = false;
  /// Streaming window in actions (analyzeFile Stream mode and
  /// analyzeStream readers opened by analyzeFile).
  size_t StreamWindow = StreamingTraceReader::DefaultWindowActions;
  /// Collect up to RaceLog's cap of full race reports in
  /// AnalysisResult::SampleReports.
  bool CollectReports = true;
};

/// Union result of every analyze* entry point. Fields a path does not
/// produce are value-initialized (e.g. LoadSeconds on analyzeStream).
struct AnalysisResult {
  /// False when the input could not be read / parsed; Error says why and
  /// every other field is best-effort (counts cover the prefix analysed).
  bool Ok = true;
  std::string Error;

  std::unordered_map<RaceKey, uint64_t> Races; ///< Distinct -> dynamic.
  uint64_t DynamicRaces = 0;
  DetectorStats Stats;
  double EffectiveAccessRate = 0.0; ///< PACER only.
  double EffectiveSyncRate = 0.0;   ///< PACER only.
  double LiteRaceEffectiveRate = 0.0;
  uint64_t Boundaries = 0;
  uint64_t TraceEvents = 0;
  double ReplaySeconds = 0.0;
  size_t FinalMetadataBytes = 0;
  size_t PeakSlotCount = 0;
  /// Accesses analysed on the hot (sampling / full-analysis) path vs.
  /// handled on the cold (non-sampling fast or discard) path -- the
  /// DetectorStats split, surfaced so Figure 7's overhead breakdown and
  /// racedetect --times can attribute time per phase. Hot + Cold equals
  /// the analysed access count.
  uint64_t HotAccesses = 0;
  uint64_t ColdAccesses = 0;
  /// Hot-kernel gather-probe split (Detector::probeCounters, summed
  /// across shard replicas): staged keys the vector probe resolved vs.
  /// keys that fell back to the scalar chain walk. Diagnostics only --
  /// deliberately outside DetectorStats, which equivalence harnesses
  /// compare bit-for-bit against hot-kernels-off runs that never probe.
  uint64_t ProbeVectorResolved = 0;
  uint64_t ProbeScalarFallback = 0;
  /// Up to 32 full reports (RaceLog's cap). Under sharded replay the set
  /// matches sequential replay but the cross-shard order does not; sort
  /// before printing for order-independent output.
  std::vector<RaceReport> SampleReports;
  /// The shard count the replay actually ran with (auto requests
  /// resolved).
  unsigned ResolvedShards = 1;
  /// The clock-kernel ISA the dispatcher resolved for this analysis
  /// (kernels::activeIsa() at replay time): "avx2", "sse2", "neon", or
  /// "scalar". Surfaced by racedetect --times and the bench JSON.
  const char *Isa = "scalar";

  /// analyzeFile timing split: trace load / view map, index build +
  /// auto-shard counting, and replay. ReplaySeconds == AnalysisSeconds
  /// for file analyses.
  double LoadSeconds = 0.0;
  double IndexSeconds = 0.0;
  /// Human-readable decisions taken on the way (auto-shard choice,
  /// streaming fallbacks); one '\n'-terminated line each.
  std::string Notes;

  /// The legacy TrialResult view of this result (exact field mapping; the
  /// compatibility wrappers in harness/TrialRunner.h return this).
  TrialResult trial() const;
};

/// Facade binding one AnalysisRequest to a workload context. The workload
/// supplies LiteRace's site-to-method map and the ElideLocalAccesses
/// variable classification; callers analysing bare trace files (no code
/// structure) can use flatSiteWorkload(). The session is stateless across
/// calls -- every analyze* runs an independent replay -- so one session
/// may analyse any number of traces, and const sessions are safe to share
/// across threads.
class AnalysisSession {
public:
  /// \p Workload must outlive the session.
  AnalysisSession(const CompiledWorkload &Workload, AnalysisRequest Request)
      : Workload(Workload), Request(std::move(Request)) {}

  const AnalysisRequest &request() const { return Request; }
  const CompiledWorkload &workload() const { return Workload; }

  /// Generates the workload's trace for Request.Seed and analyses it
  /// (the legacy runTrial).
  AnalysisResult analyzeGenerated() const;

  /// Analyses an in-memory or memory-mapped trace span (the legacy
  /// runTrialOnTrace). \p Index, when non-null, must describe \p T; it is
  /// reused when its shard count matches the resolved Setup.Shards and
  /// ignored otherwise (and always ignored under ElideLocalAccesses,
  /// which replays a filtered trace).
  AnalysisResult analyzeTrace(TraceSpan T,
                              const TraceIndex *Index = nullptr) const;

  /// Analyses a trace from \p Reader's bounded window (the legacy
  /// runTrialOnStream): sequential, O(window) trace-resident memory,
  /// Setup.Shards ignored. Reader errors surface as Ok = false.
  AnalysisResult analyzeStream(StreamingTraceReader &Reader) const;

  /// Analyses a trace file, auto-detecting text vs binary. The default
  /// path loads text / maps binary; Request.Stream bounds trace-resident
  /// memory at O(window) (see AnalysisRequest::Stream). Malformed or
  /// truncated files -- including every corruption the binary-v2
  /// validators reject -- surface as Ok = false with a diagnostic, never
  /// as a crash, so callers may feed untrusted bytes.
  AnalysisResult analyzeFile(const std::string &Path) const;

private:
  AnalysisResult analyzeFileInMemory(const std::string &Path) const;
  AnalysisResult analyzeFileStreaming(const std::string &Path) const;

  const CompiledWorkload &Workload;
  AnalysisRequest Request;
};

/// A workload context for traces with no code structure (trace files from
/// disk, daemon submissions): no local variables, no planted races, and a
/// flat site-to-method map (every site its own method) for LiteRace.
/// Shared instance; thread-safe to use concurrently.
const CompiledWorkload &flatSiteWorkload();

} // namespace pacer

#endif // PACER_RUNTIME_ANALYSISSESSION_H
