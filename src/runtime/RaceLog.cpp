//===- runtime/RaceLog.cpp ------------------------------------------------==//

#include "runtime/RaceLog.h"

#include <algorithm>

using namespace pacer;

void RaceLog::onRace(const RaceReport &Report) {
  ++Dynamic;
  ++Counts[normalizedKey(Report)];
  if (Sample.size() < KeepFirst)
    Sample.push_back(Report);
}

uint64_t RaceLog::dynamicCount(RaceKey Key) const {
  auto It = Counts.find(Key);
  return It == Counts.end() ? 0 : It->second;
}

std::vector<RaceKey> RaceLog::distinctKeys() const {
  std::vector<RaceKey> Keys;
  Keys.reserve(Counts.size());
  for (const auto &[Key, Count] : Counts)
    Keys.push_back(Key);
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

void RaceLog::clear() {
  Dynamic = 0;
  Counts.clear();
  Sample.clear();
}
