//===- runtime/FleetAggregator.cpp ----------------------------------------==//

#include "runtime/FleetAggregator.h"

#include "support/Binary.h"
#include "support/DirWatch.h"

#include <algorithm>
#include <cmath>
#include <tuple>

using namespace pacer;

namespace {

constexpr unsigned char SnapshotMagic[8] = {0xB8, 'P', 'A', 'C',
                                            'F',  'L', 'T', '1'};
constexpr uint32_t SnapshotVersion = 1;

/// Field-lexicographic total order on reports; ties the canonical-example
/// choice to the report's content, not its arrival order.
bool reportLess(const RaceReport &A, const RaceReport &B) {
  return std::tie(A.FirstSite, A.SecondSite, A.Var, A.FirstThread,
                  A.SecondThread, A.FirstKind, A.SecondKind) <
         std::tie(B.FirstSite, B.SecondSite, B.Var, B.FirstThread,
                  B.SecondThread, B.FirstKind, B.SecondKind);
}

} // namespace

void FleetAggregator::PerRace::offerExample(const RaceReport &Report) {
  if (!HasExample || reportLess(Report, Example)) {
    Example = Report;
    HasExample = true;
  }
}

FleetAggregator::FleetAggregator(double SamplingRate)
    : SamplingRate(std::clamp(SamplingRate, 0.0, 1.0)) {}

void FleetAggregator::addInstance(const RaceLog &Log, double EffectiveRate) {
  addInstance(Log.counts(), Log.sampleReports(), EffectiveRate);
}

void FleetAggregator::addInstance(
    const std::unordered_map<RaceKey, uint64_t> &Counts,
    std::span<const RaceReport> Samples, double EffectiveRate) {
  ++Instances;
  EffectiveRates.add(EffectiveRate >= 0.0 ? EffectiveRate : SamplingRate);
  for (const auto &[Key, Count] : Counts) {
    PerRace &Race = Races[Key];
    ++Race.InstancesReporting;
    Race.DynamicReports += Count;
  }
  for (const RaceReport &Report : Samples)
    Races[normalizedKey(Report)].offerExample(Report);
}

void FleetAggregator::merge(const FleetAggregator &Other) {
  Instances += Other.Instances;
  EffectiveRates.merge(Other.EffectiveRates);
  for (const auto &[Key, Race] : Other.Races) {
    PerRace &Mine = Races[Key];
    Mine.InstancesReporting += Race.InstancesReporting;
    Mine.DynamicReports += Race.DynamicReports;
    if (Race.HasExample)
      Mine.offerExample(Race.Example);
  }
}

double FleetAggregator::meanEffectiveRate() const {
  return EffectiveRates.count() == 0 ? SamplingRate : EffectiveRates.mean();
}

std::vector<FleetRaceInfo> FleetAggregator::summarize(double Z) const {
  std::vector<FleetRaceInfo> Result;
  Result.reserve(Races.size());
  double Rate = meanEffectiveRate();
  for (const auto &[Key, Race] : Races) {
    FleetRaceInfo Info;
    Info.Key = Key;
    Info.InstancesReporting = Race.InstancesReporting;
    Info.DynamicReports = Race.DynamicReports;
    Info.Example = Race.Example;
    if (Instances > 0 && Rate > 0.0) {
      double DetectionRate = static_cast<double>(Race.InstancesReporting) /
                             static_cast<double>(Instances);
      Info.EstimatedOccurrence = std::min(1.0, DetectionRate / Rate);
      Info.DetectionCI = wilsonInterval(Race.InstancesReporting, Instances, Z);
    }
    Result.push_back(Info);
  }
  std::sort(Result.begin(), Result.end(),
            [](const FleetRaceInfo &A, const FleetRaceInfo &B) {
              if (A.EstimatedOccurrence != B.EstimatedOccurrence)
                return A.EstimatedOccurrence > B.EstimatedOccurrence;
              return A.Key < B.Key;
            });
  return Result;
}

double FleetAggregator::coverageProbability(double Occurrence,
                                            uint32_t InstanceCount) const {
  double PerInstance =
      std::clamp(Occurrence, 0.0, 1.0) * meanEffectiveRate();
  if (PerInstance <= 0.0)
    return 0.0;
  return 1.0 - std::pow(1.0 - PerInstance, static_cast<double>(InstanceCount));
}

uint32_t FleetAggregator::fleetSizeFor(double Occurrence,
                                       double Confidence) const {
  double PerInstance =
      std::clamp(Occurrence, 0.0, 1.0) * meanEffectiveRate();
  if (PerInstance <= 0.0 || Confidence >= 1.0)
    return 0;
  if (Confidence <= 0.0)
    return 1;
  if (PerInstance >= 1.0)
    return 1;
  // Solve 1 - (1-p)^k >= c  =>  k >= log(1-c) / log(1-p).
  double K = std::log1p(-Confidence) / std::log1p(-PerInstance);
  if (K > 4e9)
    return 0;
  return static_cast<uint32_t>(std::ceil(K));
}

// --- Persistence ---------------------------------------------------------

std::vector<uint8_t> FleetAggregator::serialize() const {
  BinWriter W;
  W.bytes(SnapshotMagic, sizeof(SnapshotMagic));
  W.u32(SnapshotVersion);
  W.u32(0); // flags, reserved
  W.f64(SamplingRate);
  W.u32(Instances);
  W.u64(EffectiveRates.count());
  W.f64(EffectiveRates.mean());
  W.f64(EffectiveRates.m2());
  W.u64(Races.size());

  // Sorted key order: equal aggregates serialize to equal bytes, so
  // snapshot files can be compared directly in tests and tooling.
  std::vector<RaceKey> Keys;
  Keys.reserve(Races.size());
  for (const auto &[Key, Race] : Races)
    Keys.push_back(Key);
  std::sort(Keys.begin(), Keys.end());

  for (RaceKey Key : Keys) {
    const PerRace &Race = Races.at(Key);
    W.u32(Key.FirstSite);
    W.u32(Key.SecondSite);
    W.u32(Race.InstancesReporting);
    W.u64(Race.DynamicReports);
    W.u8(Race.HasExample ? 1 : 0);
    W.u32(Race.Example.Var);
    W.u8(static_cast<uint8_t>(Race.Example.FirstKind));
    W.u8(static_cast<uint8_t>(Race.Example.SecondKind));
    W.u32(Race.Example.FirstThread);
    W.u32(Race.Example.SecondThread);
    W.u32(Race.Example.FirstSite);
    W.u32(Race.Example.SecondSite);
  }
  W.appendChecksum();
  return W.take();
}

bool FleetAggregator::deserialize(const uint8_t *Data, size_t Size,
                                  std::string &Error) {
  *this = FleetAggregator();
  Error.clear();

  BinReader R(Data, Size);
  unsigned char Magic[8] = {};
  if (!R.bytes(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, SnapshotMagic, sizeof(Magic)) != 0) {
    Error = "fleet snapshot: bad magic";
    return false;
  }
  uint32_t Version = R.u32();
  if (Version != SnapshotVersion) {
    Error = "fleet snapshot: unsupported version " + std::to_string(Version);
    return false;
  }
  if (R.u32() != 0) {
    Error = "fleet snapshot: nonzero reserved flags";
    return false;
  }

  // Verify the trailer before trusting any variable-length field: a
  // truncated or bit-flipped body must not drive the decode loop.
  if (Size < 8 ||
      fnv1a64(Data, Size - 8) != BinReader(Data + Size - 8, 8).u64()) {
    Error = "fleet snapshot: checksum mismatch (truncated or corrupt)";
    return false;
  }

  double Rate = R.f64();
  uint32_t LoadedInstances = R.u32();
  uint64_t RatesN = R.u64();
  double RatesMean = R.f64();
  double RatesM2 = R.f64();
  uint64_t RaceCount = R.u64();

  // Each race entry is 35 bytes; an absurd count means corruption the
  // checksum somehow missed. Bound it by the bytes actually present.
  if (RaceCount > (Size - R.position()) / 35) {
    Error = "fleet snapshot: race count exceeds payload";
    return false;
  }

  FleetAggregator Loaded(Rate);
  Loaded.Instances = LoadedInstances;
  Loaded.EffectiveRates = RunningStat::fromState(
      static_cast<size_t>(RatesN), RatesMean, RatesM2);
  Loaded.Races.reserve(static_cast<size_t>(RaceCount));
  for (uint64_t I = 0; I < RaceCount; ++I) {
    RaceKey Key;
    Key.FirstSite = R.u32();
    Key.SecondSite = R.u32();
    PerRace Race;
    Race.InstancesReporting = R.u32();
    Race.DynamicReports = R.u64();
    Race.HasExample = R.u8() != 0;
    Race.Example.Var = R.u32();
    Race.Example.FirstKind = static_cast<AccessKind>(R.u8());
    Race.Example.SecondKind = static_cast<AccessKind>(R.u8());
    Race.Example.FirstThread = R.u32();
    Race.Example.SecondThread = R.u32();
    Race.Example.FirstSite = R.u32();
    Race.Example.SecondSite = R.u32();
    if (R.failed())
      break;
    Loaded.Races.emplace(Key, Race);
  }
  R.u64(); // checksum, already verified
  if (R.failed() || !R.exhausted()) {
    Error = R.failed() ? "fleet snapshot: truncated body"
                       : "fleet snapshot: trailing bytes after checksum";
    return false;
  }

  *this = std::move(Loaded);
  return true;
}

bool FleetAggregator::saveSnapshot(const std::string &Path,
                                   std::string &Error) const {
  std::vector<uint8_t> Bytes = serialize();
  return writeFileAtomic(Path, Bytes.data(), Bytes.size(), Error);
}

bool FleetAggregator::loadSnapshot(const std::string &Path,
                                   FleetAggregator &Out,
                                   std::string &Error) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes, Error))
    return false;
  return Out.deserialize(Bytes.data(), Bytes.size(), Error);
}
