//===- runtime/FleetAggregator.cpp ----------------------------------------==//

#include "runtime/FleetAggregator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pacer;

FleetAggregator::FleetAggregator(double SamplingRate)
    : SamplingRate(std::clamp(SamplingRate, 0.0, 1.0)) {}

void FleetAggregator::addInstance(const RaceLog &Log, double EffectiveRate) {
  ++Instances;
  EffectiveRates.add(EffectiveRate >= 0.0 ? EffectiveRate : SamplingRate);
  for (const auto &[Key, Count] : Log.counts()) {
    PerRace &Race = Races[Key];
    ++Race.InstancesReporting;
    Race.DynamicReports += Count;
  }
  for (const RaceReport &Report : Log.sampleReports()) {
    PerRace &Race = Races[normalizedKey(Report)];
    if (!Race.HasExample) {
      Race.Example = Report;
      Race.HasExample = true;
    }
  }
}

double FleetAggregator::meanEffectiveRate() const {
  return EffectiveRates.count() == 0 ? SamplingRate : EffectiveRates.mean();
}

std::vector<FleetRaceInfo> FleetAggregator::summarize(double Z) const {
  std::vector<FleetRaceInfo> Result;
  Result.reserve(Races.size());
  double Rate = meanEffectiveRate();
  for (const auto &[Key, Race] : Races) {
    FleetRaceInfo Info;
    Info.Key = Key;
    Info.InstancesReporting = Race.InstancesReporting;
    Info.DynamicReports = Race.DynamicReports;
    Info.Example = Race.Example;
    if (Instances > 0 && Rate > 0.0) {
      double DetectionRate = static_cast<double>(Race.InstancesReporting) /
                             static_cast<double>(Instances);
      Info.EstimatedOccurrence = std::min(1.0, DetectionRate / Rate);
      Info.DetectionCI = wilsonInterval(Race.InstancesReporting, Instances, Z);
    }
    Result.push_back(Info);
  }
  std::sort(Result.begin(), Result.end(),
            [](const FleetRaceInfo &A, const FleetRaceInfo &B) {
              if (A.EstimatedOccurrence != B.EstimatedOccurrence)
                return A.EstimatedOccurrence > B.EstimatedOccurrence;
              return A.Key < B.Key;
            });
  return Result;
}

double FleetAggregator::coverageProbability(double Occurrence,
                                            uint32_t InstanceCount) const {
  double PerInstance =
      std::clamp(Occurrence, 0.0, 1.0) * meanEffectiveRate();
  if (PerInstance <= 0.0)
    return 0.0;
  return 1.0 - std::pow(1.0 - PerInstance, static_cast<double>(InstanceCount));
}

uint32_t FleetAggregator::fleetSizeFor(double Occurrence,
                                       double Confidence) const {
  double PerInstance =
      std::clamp(Occurrence, 0.0, 1.0) * meanEffectiveRate();
  if (PerInstance <= 0.0 || Confidence >= 1.0)
    return 0;
  if (Confidence <= 0.0)
    return 1;
  if (PerInstance >= 1.0)
    return 1;
  // Solve 1 - (1-p)^k >= c  =>  k >= log(1-c) / log(1-p).
  double K = std::log1p(-Confidence) / std::log1p(-PerInstance);
  if (K > 4e9)
    return 0;
  return static_cast<uint32_t>(std::ceil(K));
}
