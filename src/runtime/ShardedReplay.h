//===- runtime/ShardedReplay.h - Intra-trial parallel replay ---*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shards one trace replay across concurrent detector replicas, cutting
/// single-trial latency (the ROADMAP item PR 1's trial-level parallelism
/// left open) while keeping the result bit-identical to sequential replay.
///
/// Design: variables are partitioned by VarId % Shards. Each shard runs a
/// full detector replica that processes every synchronization action,
/// thread-lifecycle event, and sampling-period boundary, but analyses
/// only the data accesses it owns. Two engines produce that view:
///
///  - the *indexed* engine (default): a TraceIndex partitions the trace
///    once into the shared sync skeleton and per-shard owned-access runs,
///    and each replica walks only the skeleton plus its runs -- O(sync +
///    owned accesses) per replica (see runtime/TraceIndex.h). Detectors
///    whose analysis is not shard-local (LiteRace) transparently fall
///    back to the filtered full stream inside replayShard.
///
///  - the *full-scan* engine (UseIndex = false): each replica re-scans
///    the whole trace through Runtime::replay with an AccessShard filter,
///    O(trace) per replica. Kept as the reference implementation; the
///    two engines are bit-identical for every detector and shard count.
///
/// Replica 0 holds the canonical synchronization-side state: because the sampling
/// controller's boundary schedule is a pure function of the action-kind
/// stream (never of detector state), and threadBegin pins per-thread
/// state creation to first sight in the trace, every replica observes
/// identical synchronization clocks, identical sbegin/send schedules, and
/// identical sampling decisions. Per-variable metadata for any given
/// variable lives on exactly one replica, so replicas share nothing and
/// run with no synchronization at all.
///
/// Merge (deterministic, in shard order):
///  - access-side stats (read/write path counters, races reported) sum
///    across replicas; sync-side stats come from replica 0 alone;
///  - race counts sum per distinct key; dynamic totals sum;
///  - metadata bytes = replica 0's liveMetadataBytes() (sync side plus
///    its own variables) + other replicas' accessMetadataBytes().
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_SHARDEDREPLAY_H
#define PACER_RUNTIME_SHARDEDREPLAY_H

#include "detectors/Detector.h"
#include "runtime/SamplingController.h"
#include "runtime/TraceIndex.h"
#include "sim/Action.h"

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace pacer {

/// Builds one detector replica reporting into \p Sink. Must be a pure
/// function: every invocation returns an identically configured and
/// identically seeded detector.
using DetectorFactory =
    std::function<std::unique_ptr<Detector>(RaceSink &Sink)>;

/// Configuration for one sharded replay.
struct ShardedReplayConfig {
  /// Number of variable shards (detector replicas). 1 degenerates to a
  /// plain sequential replay.
  unsigned Shards = 1;
  /// Worker concurrency for the replicas; 0 = one job per shard (capped
  /// at the hardware).
  unsigned Jobs = 0;
  /// When true, each replica drives an identically seeded
  /// SamplingController built from \p Sampling and \p ControllerSeed.
  bool UseController = false;
  SamplingConfig Sampling;
  uint64_t ControllerSeed = 0;
  /// Replay through a TraceIndex (O(sync + owned accesses) per replica)
  /// instead of full-trace re-scans. Only engages when Shards > 1 or an
  /// \p Index is supplied, so the single-shard default path is untouched.
  bool UseIndex = true;
  /// Optional caller-built index for \p T with shardCount() == Shards;
  /// reusing one index across trials and detector configs amortizes the
  /// build. Ignored (a private index is built) on a shard-count mismatch.
  const TraceIndex *Index = nullptr;
  /// Coalesce same-thread acquire/release pair runs in the sync skeleton
  /// into Detector::syncBatch() calls (both engines). Every replica
  /// replays the full skeleton, so the collapse compounds with Shards;
  /// results are bit-identical either way.
  bool SyncBatching = true;
};

/// Merged outcome of a sharded replay; field for field comparable with a
/// sequential replay of the same trace.
struct ShardedReplayResult {
  /// Dynamic count per distinct (site-pair) race.
  std::unordered_map<RaceKey, uint64_t> Races;
  /// Total dynamic races.
  uint64_t DynamicRaces = 0;
  /// Merged operation counters (see file comment for the merge rule).
  DetectorStats Stats;
  /// Merged end-of-trace metadata bytes.
  size_t FinalMetadataBytes = 0;
  /// High-water thread-slot count, from replica 0 (slot allocation and
  /// recycling are sync-side and replica-identical).
  size_t PeakSlotCount = 0;
  /// Controller measurements from replica 0 (zero without a controller).
  double EffectiveAccessRate = 0.0;
  double EffectiveSyncRate = 0.0;
  uint64_t Boundaries = 0;
  /// Up to 32 full reports for diagnostics, concatenated in shard order
  /// (the per-report set matches sequential replay; the order of reports
  /// from different shards does not).
  std::vector<RaceReport> SampleReports;
  /// Gather-probe diagnostics summed across every replica (probing is
  /// access-side work; each replica probes only its owned accesses).
  Detector::ProbeCounters Probe;
};

/// Replays \p T through Config.Shards concurrent detector replicas built
/// by \p Factory and merges their results deterministically. For every
/// detector whose accessBatch overrides honour the AccessShard contract,
/// the merged result is bit-identical to sequential replay for any shard
/// count. \p T may be a memory-mapped TraceView span: analysis never
/// materializes a Trace.
ShardedReplayResult shardedReplay(TraceSpan T,
                                  const DetectorFactory &Factory,
                                  const ShardedReplayConfig &Config);

} // namespace pacer

#endif // PACER_RUNTIME_SHARDEDREPLAY_H
