//===- runtime/ShardedReplay.cpp ------------------------------------------==//

#include "runtime/ShardedReplay.h"

#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "runtime/TraceIndex.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <optional>

using namespace pacer;

namespace {

/// Everything one replica produces; heap-allocated so parallelMap can
/// move results through its slot vector cheaply.
struct ReplicaOutcome {
  RaceLog Log;
  DetectorStats Stats;
  size_t LiveBytes = 0;
  size_t AccessBytes = 0;
  size_t PeakSlots = 0;
  double EffectiveAccessRate = 0.0;
  double EffectiveSyncRate = 0.0;
  uint64_t Boundaries = 0;
  Detector::ProbeCounters Probe;
};

/// Adds the counters owned by the access path -- the only counters a
/// non-zero shard contributes. Everything else (joins, copies, sync ops,
/// clock clones) is driven solely by synchronization and sampling
/// actions, which every replica processes identically; those come from
/// replica 0 alone or the merge would double-count them.
void addAccessSideStats(DetectorStats &Into, const DetectorStats &From) {
  Into.ReadSlowSampling += From.ReadSlowSampling;
  Into.ReadSlowNonSampling += From.ReadSlowNonSampling;
  Into.ReadFastNonSampling += From.ReadFastNonSampling;
  Into.WriteSlowSampling += From.WriteSlowSampling;
  Into.WriteSlowNonSampling += From.WriteSlowNonSampling;
  Into.WriteFastNonSampling += From.WriteFastNonSampling;
  Into.RacesReported += From.RacesReported;
}

} // namespace

ShardedReplayResult pacer::shardedReplay(TraceSpan T,
                                         const DetectorFactory &Factory,
                                         const ShardedReplayConfig &Config) {
  const unsigned Shards = std::max(1u, Config.Shards);
  const unsigned Jobs =
      Config.Jobs != 0 ? Config.Jobs : std::min(Shards, hardwareJobs());

  // Engage the indexed engine for genuinely sharded replays, or whenever
  // the caller went to the trouble of supplying an index (K = 1 included,
  // so tests can exercise the indexed path degenerately).
  const bool UseIndex =
      Config.UseIndex && (Shards > 1 || Config.Index != nullptr);
  const TraceIndex *Index = nullptr;
  std::optional<TraceIndex> OwnedIndex;
  if (UseIndex) {
    if (Config.Index && Config.Index->shardCount() == Shards)
      Index = Config.Index;
    else
      Index = &OwnedIndex.emplace(TraceIndex::build(T, Shards));
  }

  // Each replica is constructed *inside* its worker task: with pinning on,
  // the worker's pinned NUMA node is ambient when the detector's Arena
  // carves slabs, so every replica's metadata lands node-local to the
  // thread that replays it (see support/Topology.h).
  std::vector<std::unique_ptr<ReplicaOutcome>> Replicas =
      parallelMap(Jobs, Shards, [&](size_t Shard) {
        auto Out = std::make_unique<ReplicaOutcome>();
        std::unique_ptr<Detector> D = Factory(Out->Log);
        std::unique_ptr<SamplingController> Controller;
        if (Config.UseController)
          Controller = std::make_unique<SamplingController>(
              Config.Sampling, Config.ControllerSeed);
        if (Index) {
          Index->replayShard(T, static_cast<uint32_t>(Shard), *D,
                             Controller.get(), Config.SyncBatching);
        } else {
          Runtime RT(*D, Controller.get(), Config.SyncBatching);
          RT.replay(T, AccessShard(static_cast<uint32_t>(Shard), Shards));
        }
        Out->Stats = D->stats();
        Out->Probe = D->probeCounters();
        Out->LiveBytes = D->liveMetadataBytes();
        Out->AccessBytes = D->accessMetadataBytes();
        Out->PeakSlots = D->peakSlotCount();
        if (Controller) {
          Out->EffectiveAccessRate = Controller->effectiveAccessRate();
          Out->EffectiveSyncRate = Controller->effectiveSyncRate();
          Out->Boundaries = Controller->boundaryCount();
        }
        return Out;
      });

  ShardedReplayResult Result;
  const ReplicaOutcome &First = *Replicas.front();
  Result.Stats = First.Stats;
  Result.FinalMetadataBytes = First.LiveBytes;
  Result.PeakSlotCount = First.PeakSlots;
  Result.EffectiveAccessRate = First.EffectiveAccessRate;
  Result.EffectiveSyncRate = First.EffectiveSyncRate;
  Result.Boundaries = First.Boundaries;

  for (size_t Shard = 0; Shard < Replicas.size(); ++Shard) {
    const ReplicaOutcome &Out = *Replicas[Shard];
    if (Shard != 0) {
      addAccessSideStats(Result.Stats, Out.Stats);
      Result.FinalMetadataBytes += Out.AccessBytes;
    }
    Result.Probe.VectorResolved += Out.Probe.VectorResolved;
    Result.Probe.ScalarFallback += Out.Probe.ScalarFallback;
    Result.DynamicRaces += Out.Log.dynamicCount();
    for (const auto &[Key, Count] : Out.Log.counts())
      Result.Races[Key] += Count;
    for (const RaceReport &Report : Out.Log.sampleReports()) {
      if (Result.SampleReports.size() >= 32)
        break;
      Result.SampleReports.push_back(Report);
    }
  }
  return Result;
}
