//===- runtime/TraceIndex.cpp ---------------------------------------------==//

#include "runtime/TraceIndex.h"

#include "runtime/Runtime.h"
#include "runtime/SamplingController.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace pacer;

TraceIndex::Builder::Builder(unsigned Shards) {
  Index.Shards = std::max(1u, Shards);
  Index.Runs.resize(Index.Shards);
  Index.OwnedCounts.assign(Index.Shards, 0);
}

void TraceIndex::Builder::addChunk(TraceSpan Chunk) {
  assert(Chunk.size() < UINT32_MAX - Pos &&
         "trace positions must fit in 32 bits");
  auto CloseEpoch = [&](uint32_t End) {
    Index.Epochs.push_back({EpochBegin, End});
  };

  for (const Action &A : Chunk) {
    const uint32_t I = Pos++;
    if (A.Tid >= Seen.size())
      Seen.resize(A.Tid + 1, false);
    if (!Seen[A.Tid]) {
      // First sight: the runtime delivers threadBegin before this action,
      // closing the pending epoch. The action itself may be an access, so
      // the next epoch starts *at* I, not after it.
      Seen[A.Tid] = true;
      CloseEpoch(I);
      Index.Events.push_back({I, A.Tid});
      EpochBegin = I;
    }
    if (isAccessAction(A.Kind)) {
      const uint32_t S =
          Index.Shards <= 1 ? 0u : A.Target % Index.Shards;
      std::vector<Run> &Rs = Index.Runs[S];
      const auto Epoch = static_cast<uint32_t>(Index.Epochs.size());
      if (!Rs.empty() && Rs.back().End == I && Rs.back().Epoch == Epoch)
        Rs.back().End = I + 1;
      else
        Rs.push_back({I, I + 1, Epoch});
      ++Index.OwnedCounts[S];
      ++Index.AccessTotal;
      continue;
    }
    // Synchronization action or thread exit: a skeleton dispatch event.
    CloseEpoch(I);
    Index.Events.push_back({I, InvalidId});
    EpochBegin = I + 1;
  }
}

TraceIndex TraceIndex::Builder::take() {
  Index.Epochs.push_back({EpochBegin, Pos});
  return std::move(Index);
}

TraceIndex TraceIndex::build(TraceSpan T, unsigned Shards) {
  Builder B(Shards);
  B.addChunk(T);
  return B.take();
}

void TraceIndex::replayShard(TraceSpan T, uint32_t Shard, Detector &D,
                             SamplingController *Controller,
                             bool SyncBatching) const {
  assert(Shard < Shards && "shard out of range");
  assert(T.size() >= (Epochs.empty() ? 0 : Epochs.back().End) &&
         "index built from a different trace");

  // LiteRace-style detectors advance per-access sampler state for every
  // access in the trace, owned or not, so their replicas must observe the
  // full access stream; deliver whole epoch segments with an ownership
  // filter (bit-identical, O(trace)). Shard-local detectors see only the
  // owned runs, unfiltered.
  const bool ShardLocal = Shards <= 1 || D.accessAnalysisIsShardLocal();
  const AccessShard Filter(Shard, Shards);
  const std::vector<Run> &Rs = Runs[Shard];

  size_t RunIdx = 0;
  // Next undelivered position within Rs[RunIdx] (valid while RunIdx is).
  uint32_t Cursor = Rs.empty() ? 0 : Rs.front().Begin;
  uint64_t Delivered = 0;

  // Delivers the shard's owned accesses inside [From, To) as unfiltered
  // accessBatch spans, clipping runs at segment edges. Segments arrive in
  // ascending, non-overlapping order, so a single cursor suffices.
  auto DeliverOwned = [&](uint32_t From, uint32_t To) {
    while (RunIdx < Rs.size()) {
      const Run &R = Rs[RunIdx];
      const uint32_t Begin = std::max(Cursor, From);
      if (Begin >= To)
        return; // Next owned access lies beyond this segment.
      const uint32_t End = std::min(R.End, To);
      if (Begin < End) {
        D.accessBatch(
            std::span<const Action>(T.data() + Begin, End - Begin));
        Delivered += End - Begin;
        Cursor = End;
      }
      if (Cursor < R.End)
        return; // Segment ended mid-run; resume here next segment.
      if (++RunIdx < Rs.size())
        Cursor = Rs[RunIdx].Begin;
    }
  };

  auto Deliver = [&](uint32_t From, uint32_t To) {
    if (ShardLocal) {
      DeliverOwned(From, To);
    } else if (From < To) {
      D.accessBatch(std::span<const Action>(T.data() + From, To - From),
                    Filter);
    }
  };

  if (Controller)
    Controller->start(D);

  for (size_t E = 0; E < Epochs.size(); ++E) {
    const EpochSpan &Ep = Epochs[E];
    if (Ep.Begin < Ep.End) {
      if (!Controller) {
        Deliver(Ep.Begin, Ep.End);
      } else {
        // Advance the controller over the epoch's access count in bulk;
        // a sampling-period boundary splits the epoch exactly where the
        // sequential replay loop flushes: accesses strictly before the
        // boundary are analysed under the old sampling state (delivered
        // BEFORE advanceAccessRun toggles the detector), the firing
        // access joins the next segment under the new state.
        uint32_t SegBegin = Ep.Begin;
        uint64_t Accounted = Ep.Begin;
        while (Accounted < Ep.End) {
          const uint64_t Left = Ep.End - Accounted;
          const uint64_t Fire = Controller->accessRunBoundaryIndex(Left);
          if (Fire == 0) {
            Deliver(SegBegin, Ep.End);
            SegBegin = Ep.End;
            Controller->advanceAccessRun(Left, D);
            break;
          }
          const auto PreEnd = static_cast<uint32_t>(Accounted + Fire - 1);
          Deliver(SegBegin, PreEnd);
          Controller->advanceAccessRun(Left, D);
          Accounted += Fire;
          SegBegin = PreEnd;
        }
        if (SegBegin < Ep.End)
          Deliver(SegBegin, Ep.End);
      }
    }
    if (E < Events.size()) {
      const Event &Ev = Events[E];
      if (Ev.BeginTid != InvalidId) {
        D.threadBegin(Ev.BeginTid);
      } else {
        const Action &A = T[Ev.Pos];
        if (SyncBatching && A.Kind == ActionKind::Acquire) {
          // Maximal skeleton run of same-thread acquire/release pairs on
          // one lock at adjacent trace positions (adjacency implies the
          // interleaved epochs are empty, and no first-sight marker can
          // land inside: the thread is already seen).
          size_t J = E;
          uint32_t NextPos = Ev.Pos;
          while (J + 1 < Events.size() && Events[J].BeginTid == InvalidId &&
                 Events[J + 1].BeginTid == InvalidId &&
                 Events[J].Pos == NextPos && Events[J + 1].Pos == NextPos + 1 &&
                 T[NextPos].Kind == ActionKind::Acquire &&
                 T[NextPos + 1].Kind == ActionKind::Release &&
                 T[NextPos].Tid == A.Tid && T[NextPos + 1].Tid == A.Tid &&
                 T[NextPos].Target == A.Target &&
                 T[NextPos + 1].Target == A.Target) {
            J += 2;
            NextPos += 2;
          }
          const size_t RunPairs = (J - E) / 2;
          if (RunPairs >= 2) {
            Runtime::deliverSyncPairRun(D, Controller, A.Tid, A.Target,
                                        2 * RunPairs);
            // Resume at epoch J: the skipped interleaved epochs are empty.
            E = J - 1;
            continue;
          }
        }
        if (Controller)
          Controller->beforeAction(A.Kind, D);
        Runtime::dispatchTo(D, A);
      }
    }
  }

  // Partition guard: the owned-run walk must hand the detector each owned
  // access exactly once -- replica work is exactly O(sync + owned).
  (void)Delivered;
  assert(!ShardLocal || Delivered == OwnedCounts[Shard]);
}

unsigned pacer::autoShardCount(uint64_t AccessCount, unsigned HardwareJobs) {
  // Each replica pays for the full sync skeleton plus its own setup, so
  // demand a meaningful slab of owned accesses per shard before splitting.
  constexpr uint64_t MinOwnedAccessesPerShard = 32 * 1024;
  const uint64_t ByWork = AccessCount / MinOwnedAccessesPerShard;
  const uint64_t Cap = std::max(1u, HardwareJobs);
  return static_cast<unsigned>(std::clamp<uint64_t>(ByWork, 1, Cap));
}

unsigned pacer::resolveShardCount(unsigned Requested, uint64_t AccessCount) {
  if (Requested != 0)
    return Requested;
  return autoShardCount(AccessCount, hardwareJobs());
}

unsigned pacer::parseShardCount(const std::string &Text) {
  if (Text == "auto")
    return 0;
  char *End = nullptr;
  const unsigned long Value = std::strtoul(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || Value == 0)
    return 1;
  return Value > 4096 ? 4096u : static_cast<unsigned>(Value);
}

uint64_t pacer::countTraceAccesses(TraceSpan T) {
  uint64_t Count = 0;
  for (const Action &A : T)
    Count += isAccessAction(A.Kind) ? 1 : 0;
  return Count;
}
