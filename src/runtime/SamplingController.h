//===- runtime/SamplingController.h - GC-boundary sampling -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PACER's global sampling-period controller (Section 4, "Sampling"). The
/// paper toggles sampling at the end of nursery collections, which occur
/// every 32 MB of allocation, turning sampling on with probability r.
/// Because race-detection metadata is itself allocated during sampling,
/// collections come faster while sampling and naively less program work
/// lands in sampling periods -- a bias the paper corrects by measuring
/// program work in synchronization operations (which are analysed
/// regardless of sampling) and adjusting the entry probability.
///
/// This controller reproduces the mechanism over a simulated allocation
/// clock: every analysed action allocates base bytes; analysed accesses in
/// sampling periods additionally allocate metadata bytes. Boundaries fire
/// when the simulated nursery fills. The bias correction keeps running
/// estimates of sync-ops-per-period for each period kind and solves
///
///   p * Ws / (p * Ws + (1 - p) * Wn) = r
///
/// for the entry probability p. Table 1's effective-vs-specified rates are
/// measured from the resulting behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_SAMPLINGCONTROLLER_H
#define PACER_RUNTIME_SAMPLINGCONTROLLER_H

#include "detectors/Detector.h"
#include "sim/Action.h"
#include "support/Rng.h"

namespace pacer {

/// Sampling-period parameters.
struct SamplingConfig {
  /// Specified (target) sampling rate r in [0, 1].
  double TargetRate = 0.01;
  /// Simulated nursery size; a period ends when this many bytes have been
  /// allocated (the paper's 32 MB, scaled to simulator event counts).
  uint64_t PeriodBytes = 256 * 1024;
  /// Bytes of application allocation charged per analysed action.
  uint32_t BaseBytesPerEvent = 40;
  /// Extra metadata bytes charged per access analysed while sampling; this
  /// is what shortens sampling periods and creates the bias.
  uint32_t MetadataBytesPerSampledAccess = 64;
  /// Enable the paper's sync-op-based bias correction.
  bool BiasCorrection = true;
};

/// Drives a detector's sbegin/send actions from a simulated allocation
/// clock and measures the effective sampling rate.
class SamplingController {
public:
  SamplingController(SamplingConfig Config, uint64_t Seed);

  /// Makes the initial sampling decision; call once before the first
  /// action.
  void start(Detector &D);

  /// Accounts for \p Kind and fires a period boundary when the simulated
  /// nursery fills, possibly toggling \p D's sampling state. Returns true
  /// if a boundary (simulated GC) fired at this action.
  bool beforeAction(ActionKind Kind, Detector &D);

  /// Outcome of one advanceAccessRun() call.
  struct AccessRunAdvance {
    /// Accesses accounted by the call (<= the requested count).
    uint64_t Consumed = 0;
    /// True if a period boundary fired. The boundary fired at the *last*
    /// consumed access: that access was charged in the old period, the
    /// boundary toggled \p D, and the access was then accounted in the
    /// new period -- exactly beforeAction()'s order. Accesses
    /// [0, Consumed - 1) belong to the pre-call sampling state and the
    /// boundary-firing access (offset Consumed - 1) to the post-call
    /// state; callers that analyse accesses must deliver the pre-boundary
    /// segment *before* calling advanceAccessRun (the toggle happens
    /// inside) -- use accessRunBoundaryIndex() to locate the split.
    bool Boundary = false;
  };

  /// 1-based index, within a run of \p N pending accesses, of the access
  /// whose charge would fire the next period boundary; 0 if no boundary
  /// fires within the run. Pure query, the bulk analogue of
  /// boundaryImminent(): advanceAccessRun(N, D) will report Boundary
  /// exactly when this returns nonzero, with Consumed equal to it.
  uint64_t accessRunBoundaryIndex(uint64_t N) const {
    if (N == 0)
      return 0;
    const uint64_t Charge =
        Config.BaseBytesPerEvent +
        (Sampling ? Config.MetadataBytesPerSampledAccess : 0);
    if (NurseryBytes >= Config.PeriodBytes)
      return 1;
    const uint64_t Need = Config.PeriodBytes - NurseryBytes;
    if (Charge == 0)
      return 0;
    const uint64_t FiringIndex = (Need + Charge - 1) / Charge;
    return FiringIndex <= N ? FiringIndex : 0;
  }

  /// Bulk equivalent of up to \p N consecutive beforeAction(Read/Write)
  /// calls, in O(1) per period boundary instead of O(N): while the
  /// sampling state is unchanged every access charges the same number of
  /// bytes, so the position of the next boundary inside a pure access run
  /// is a closed-form function of the nursery fill. Stops after the first
  /// boundary (the sampling state may have toggled, changing the charge);
  /// call repeatedly until the run's accesses are all consumed. The
  /// counter, boundary, and RNG streams are bit-identical to the
  /// per-action loop for every (N, state) -- TraceIndexTest locks this in.
  AccessRunAdvance advanceAccessRun(uint64_t N, Detector &D);

  /// 1-based index, within a run of \p N pending synchronization
  /// operations, of the op whose charge would fire the next period
  /// boundary; 0 if none does. The sync analogue of
  /// accessRunBoundaryIndex(): sync ops charge base bytes only (they are
  /// analysed in both period kinds and allocate no access metadata), so
  /// the charge is phase-independent.
  uint64_t syncRunBoundaryIndex(uint64_t N) const {
    if (N == 0)
      return 0;
    if (NurseryBytes >= Config.PeriodBytes)
      return 1;
    const uint64_t Charge = Config.BaseBytesPerEvent;
    if (Charge == 0)
      return 0;
    const uint64_t Need = Config.PeriodBytes - NurseryBytes;
    const uint64_t FiringIndex = (Need + Charge - 1) / Charge;
    return FiringIndex <= N ? FiringIndex : 0;
  }

  /// Bulk equivalent of up to \p N consecutive beforeAction(Acquire/
  /// Release) calls: the sync-run analogue of advanceAccessRun(), with the
  /// same stop-at-first-boundary contract and the same accounting order
  /// (ops before the boundary land in the old period, the firing op in the
  /// new one, after the toggle). Counter, boundary, and RNG streams are
  /// bit-identical to the per-action loop.
  AccessRunAdvance advanceSyncRun(uint64_t N, Detector &D);

  /// True iff the next beforeAction(\p Kind, ...) call would fire a period
  /// boundary. Pure query, mirrors beforeAction's charge computation.
  /// Per-action callers (Runtime::step loops) use it to flush pending
  /// work before the boundary toggles the detector's sampling state; the
  /// batch engines use accessRunBoundaryIndex(), its closed-form run
  /// analogue, instead.
  bool boundaryImminent(ActionKind Kind) const {
    if (Kind == ActionKind::ThreadExit)
      return false;
    uint64_t Charge = Config.BaseBytesPerEvent;
    if (Sampling && isAccessAction(Kind))
      Charge += Config.MetadataBytesPerSampledAccess;
    return NurseryBytes + Charge >= Config.PeriodBytes;
  }

  /// Fraction of data accesses that fell inside sampling periods: the
  /// effective sampling rate the paper's Table 1 reports.
  double effectiveAccessRate() const;

  /// Fraction of synchronization operations inside sampling periods.
  double effectiveSyncRate() const;

  /// Number of period boundaries (simulated GCs) so far.
  uint64_t boundaryCount() const { return Boundaries; }

  /// Number of sampling periods entered.
  uint64_t samplingPeriods() const { return SamplingPeriods; }

  bool isSampling() const { return Sampling; }

private:
  /// Probability of entering a sampling period at the next boundary.
  double entryProbability() const;

  void finishPeriod();

  SamplingConfig Config;
  Rng Random;
  bool Sampling = false;
  bool Started = false;

  uint64_t NurseryBytes = 0;
  uint64_t Boundaries = 0;
  uint64_t SamplingPeriods = 0;

  // Effective-rate accounting.
  uint64_t AccessesSampling = 0;
  uint64_t AccessesTotal = 0;
  uint64_t SyncSampling = 0;
  uint64_t SyncTotal = 0;

  // Bias correction: exponentially weighted work (in sync ops) per period
  // of each kind.
  uint64_t PeriodSyncOps = 0;
  double AvgSamplingWork = -1.0;    // Negative = no estimate yet.
  double AvgNonSamplingWork = -1.0;
};

} // namespace pacer

#endif // PACER_RUNTIME_SAMPLINGCONTROLLER_H
