//===- runtime/RaceLog.h - Race aggregation and dedup ----------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects race reports from a detector and aggregates them the way the
/// paper's evaluation counts them: *dynamic* races (every report) and
/// *distinct* (static) races, identified by the unordered pair of program
/// sites ("it reports each pair of program references once even if the race
/// occurs multiple times in a single execution", Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_RUNTIME_RACELOG_H
#define PACER_RUNTIME_RACELOG_H

#include "core/RaceReport.h"

#include <unordered_map>
#include <vector>

namespace pacer {

/// Normalizes a report to its unordered site-pair key; either access can be
/// the "first" depending on the schedule.
inline RaceKey normalizedKey(const RaceReport &Report) {
  SiteId A = Report.FirstSite;
  SiteId B = Report.SecondSite;
  return A <= B ? RaceKey{A, B} : RaceKey{B, A};
}

/// Race sink that aggregates dynamic and distinct counts.
class RaceLog final : public RaceSink {
public:
  void onRace(const RaceReport &Report) override;

  /// Total dynamic races reported.
  uint64_t dynamicCount() const { return Dynamic; }

  /// Dynamic races reported for the distinct race \p Key.
  uint64_t dynamicCount(RaceKey Key) const;

  /// True if \p Key was reported at least once.
  bool saw(RaceKey Key) const { return Counts.count(Key) != 0; }

  /// Number of distinct races.
  size_t distinctCount() const { return Counts.size(); }

  /// All distinct race keys, sorted for deterministic iteration.
  std::vector<RaceKey> distinctKeys() const;

  /// Per-key dynamic counts.
  const std::unordered_map<RaceKey, uint64_t> &counts() const {
    return Counts;
  }

  /// The first \p KeepFirst full reports, for diagnostics.
  const std::vector<RaceReport> &sampleReports() const { return Sample; }

  void clear();

private:
  static constexpr size_t KeepFirst = 32;
  uint64_t Dynamic = 0;
  std::unordered_map<RaceKey, uint64_t> Counts;
  std::vector<RaceReport> Sample;
};

} // namespace pacer

#endif // PACER_RUNTIME_RACELOG_H
