//===- runtime/SamplingController.cpp -------------------------------------==//

#include "runtime/SamplingController.h"

#include <algorithm>

using namespace pacer;

SamplingController::SamplingController(SamplingConfig ConfigIn, uint64_t Seed)
    : Config(ConfigIn), Random(Seed ^ 0x53414d50u /*"SAMP"*/) {
  Config.TargetRate = std::clamp(Config.TargetRate, 0.0, 1.0);
}

double SamplingController::entryProbability() const {
  double R = Config.TargetRate;
  if (R <= 0.0)
    return 0.0;
  if (R >= 1.0)
    return 1.0;
  if (!Config.BiasCorrection || AvgSamplingWork <= 0.0 ||
      AvgNonSamplingWork <= 0.0)
    return R;
  // Solve p*Ws / (p*Ws + (1-p)*Wn) = r for p: the fraction of program work
  // (measured in sync ops) inside sampling periods should be r even though
  // sampling periods hold less work each.
  double Ws = AvgSamplingWork;
  double Wn = AvgNonSamplingWork;
  double P = R * Wn / (Ws * (1.0 - R) + R * Wn);
  return std::clamp(P, 0.0, 1.0);
}

void SamplingController::finishPeriod() {
  // Record the completed period's work into the matching running average.
  constexpr double Alpha = 0.2; // EWMA weight for the newest period.
  double Work = static_cast<double>(PeriodSyncOps);
  double &Avg = Sampling ? AvgSamplingWork : AvgNonSamplingWork;
  if (Avg < 0.0)
    Avg = std::max(Work, 1.0);
  else
    Avg = (1.0 - Alpha) * Avg + Alpha * std::max(Work, 1.0);
  PeriodSyncOps = 0;
}

void SamplingController::start(Detector &D) {
  Started = true;
  Sampling = Random.nextBool(entryProbability());
  if (Sampling) {
    ++SamplingPeriods;
    D.beginSamplingPeriod();
  }
}

bool SamplingController::beforeAction(ActionKind Kind, Detector &D) {
  if (Kind == ActionKind::ThreadExit)
    return false;

  // Simulated allocation: base application bytes per analysed action, plus
  // metadata bytes for accesses analysed while sampling.
  NurseryBytes += Config.BaseBytesPerEvent;
  if (Sampling && isAccessAction(Kind))
    NurseryBytes += Config.MetadataBytesPerSampledAccess;

  bool Boundary = false;
  if (NurseryBytes >= Config.PeriodBytes) {
    NurseryBytes -= Config.PeriodBytes;
    ++Boundaries;
    Boundary = true;

    finishPeriod();
    bool Next = Random.nextBool(entryProbability());
    if (Sampling)
      D.endSamplingPeriod();
    Sampling = Next;
    if (Sampling) {
      ++SamplingPeriods;
      D.beginSamplingPeriod();
    }
  }

  // Effective-rate accounting covers the action about to execute.
  if (isAccessAction(Kind)) {
    ++AccessesTotal;
    if (Sampling)
      ++AccessesSampling;
  } else if (isSyncAction(Kind)) {
    ++SyncTotal;
    ++PeriodSyncOps;
    if (Sampling)
      ++SyncSampling;
  }
  return Boundary;
}

SamplingController::AccessRunAdvance
SamplingController::advanceAccessRun(uint64_t N, Detector &D) {
  AccessRunAdvance Out;
  if (N == 0)
    return Out;

  // Constant per-access charge while the sampling state is unchanged.
  const uint64_t Charge =
      Config.BaseBytesPerEvent +
      (Sampling ? Config.MetadataBytesPerSampledAccess : 0);

  // 1-based index of the access whose charge fills the nursery.
  const uint64_t Need = NurseryBytes >= Config.PeriodBytes
                            ? 0
                            : Config.PeriodBytes - NurseryBytes;
  uint64_t FiringIndex;
  bool Fires;
  if (Need == 0) {
    FiringIndex = 1;
    Fires = true;
  } else if (Charge == 0) {
    FiringIndex = N;
    Fires = false;
  } else {
    FiringIndex = (Need + Charge - 1) / Charge;
    Fires = FiringIndex <= N;
    if (!Fires)
      FiringIndex = N;
  }

  // Accesses strictly before the boundary (or the whole run) land in the
  // current period.
  const uint64_t Before = Fires ? FiringIndex - 1 : FiringIndex;
  NurseryBytes += Charge * FiringIndex;
  AccessesTotal += Before;
  if (Sampling)
    AccessesSampling += Before;
  Out.Consumed = FiringIndex;
  if (!Fires)
    return Out;

  // The firing access: replicate beforeAction's boundary block, then
  // account the access itself in the *new* period.
  NurseryBytes -= Config.PeriodBytes;
  ++Boundaries;
  finishPeriod();
  bool Next = Random.nextBool(entryProbability());
  if (Sampling)
    D.endSamplingPeriod();
  Sampling = Next;
  if (Sampling) {
    ++SamplingPeriods;
    D.beginSamplingPeriod();
  }
  ++AccessesTotal;
  if (Sampling)
    ++AccessesSampling;
  Out.Boundary = true;
  return Out;
}

SamplingController::AccessRunAdvance
SamplingController::advanceSyncRun(uint64_t N, Detector &D) {
  AccessRunAdvance Out;
  if (N == 0)
    return Out;

  // Sync ops charge base bytes in both period kinds; no metadata charge.
  const uint64_t Charge = Config.BaseBytesPerEvent;

  const uint64_t Need = NurseryBytes >= Config.PeriodBytes
                            ? 0
                            : Config.PeriodBytes - NurseryBytes;
  uint64_t FiringIndex;
  bool Fires;
  if (Need == 0) {
    FiringIndex = 1;
    Fires = true;
  } else if (Charge == 0) {
    FiringIndex = N;
    Fires = false;
  } else {
    FiringIndex = (Need + Charge - 1) / Charge;
    Fires = FiringIndex <= N;
    if (!Fires)
      FiringIndex = N;
  }

  // Ops strictly before the boundary land in the current period; their
  // work counts toward the period average finishPeriod() snapshots.
  const uint64_t Before = Fires ? FiringIndex - 1 : FiringIndex;
  NurseryBytes += Charge * FiringIndex;
  SyncTotal += Before;
  PeriodSyncOps += Before;
  if (Sampling)
    SyncSampling += Before;
  Out.Consumed = FiringIndex;
  if (!Fires)
    return Out;

  // The firing op: replicate beforeAction's boundary block, then account
  // the op itself in the *new* period.
  NurseryBytes -= Config.PeriodBytes;
  ++Boundaries;
  finishPeriod();
  bool Next = Random.nextBool(entryProbability());
  if (Sampling)
    D.endSamplingPeriod();
  Sampling = Next;
  if (Sampling) {
    ++SamplingPeriods;
    D.beginSamplingPeriod();
  }
  ++SyncTotal;
  ++PeriodSyncOps;
  if (Sampling)
    ++SyncSampling;
  Out.Boundary = true;
  return Out;
}

double SamplingController::effectiveAccessRate() const {
  if (AccessesTotal == 0)
    return 0.0;
  return static_cast<double>(AccessesSampling) /
         static_cast<double>(AccessesTotal);
}

double SamplingController::effectiveSyncRate() const {
  if (SyncTotal == 0)
    return 0.0;
  return static_cast<double>(SyncSampling) / static_cast<double>(SyncTotal);
}
