//===- runtime/AnalysisSession.cpp ----------------------------------------==//

#include "runtime/AnalysisSession.h"

#include "core/ClockKernels.h"
#include "detectors/GenericDetector.h"
#include "runtime/Runtime.h"
#include "runtime/ShardedReplay.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/TraceView.h"
#include "sim/Workloads.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <optional>

using namespace pacer;

const char *pacer::detectorKindName(DetectorKind Kind) {
  switch (Kind) {
  case DetectorKind::Null:
    return "null";
  case DetectorKind::Generic:
    return "generic";
  case DetectorKind::FastTrack:
    return "fasttrack";
  case DetectorKind::Pacer:
    return "pacer";
  case DetectorKind::LiteRace:
    return "literace";
  }
  return "?";
}

DetectorSetup pacer::pacerSetup(double Rate) {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Pacer;
  Setup.SamplingRate = Rate;
  return Setup;
}

DetectorSetup pacer::fastTrackSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::FastTrack;
  return Setup;
}

DetectorSetup pacer::genericSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Generic;
  return Setup;
}

DetectorSetup pacer::literaceSetup(uint32_t BurstLength) {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::LiteRace;
  Setup.LiteRace.BurstLength = BurstLength;
  return Setup;
}

DetectorSetup pacer::nullSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Null;
  return Setup;
}

std::unique_ptr<Detector> pacer::makeDetector(const DetectorSetup &Setup,
                                              RaceSink &Sink,
                                              const CompiledWorkload &Workload,
                                              uint64_t Seed) {
  switch (Setup.Kind) {
  case DetectorKind::Null:
    return std::make_unique<NullDetector>(Sink);
  case DetectorKind::Generic: {
    GenericConfig Config;
    Config.UseAccordionClocks = Setup.AccordionClocks;
    Config.UseHotBatchKernel = Setup.HotKernels;
    return std::make_unique<GenericDetector>(Sink, Config);
  }
  case DetectorKind::FastTrack: {
    FastTrackConfig Config = Setup.FastTrack;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    Config.UseColdBatchKernel &= Setup.ColdKernels;
    Config.UseHotBatchKernel &= Setup.HotKernels;
    return std::make_unique<FastTrackDetector>(Sink, Config);
  }
  case DetectorKind::Pacer: {
    PacerConfig Config = Setup.Pacer;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    Config.UseColdBatchKernel &= Setup.ColdKernels;
    Config.UseHotBatchKernel &= Setup.HotKernels;
    return std::make_unique<PacerDetector>(Sink, Config);
  }
  case DetectorKind::LiteRace: {
    LiteRaceConfig Config = Setup.LiteRace;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    Config.UseColdBatchKernel &= Setup.ColdKernels;
    return std::make_unique<LiteRaceDetector>(Sink, Workload.siteToMethod(),
                                              Seed ^ 0x4c495445u /*"LITE"*/,
                                              Config);
  }
  }
  pacerUnreachable("unknown detector kind");
}

const CompiledWorkload &pacer::flatSiteWorkload() {
  // Leaked singleton: destruction order vs. static session objects is not
  // worth reasoning about for an immutable table.
  static const CompiledWorkload *Flat = [] {
    WorkloadSpec Spec = tinyTestWorkload();
    Spec.Races.clear();
    return new CompiledWorkload(Spec);
  }();
  return *Flat;
}

TrialResult AnalysisResult::trial() const {
  TrialResult R;
  R.Races = Races;
  R.DynamicRaces = DynamicRaces;
  R.Stats = Stats;
  R.EffectiveAccessRate = EffectiveAccessRate;
  R.EffectiveSyncRate = EffectiveSyncRate;
  R.LiteRaceEffectiveRate = LiteRaceEffectiveRate;
  R.Boundaries = Boundaries;
  R.TraceEvents = TraceEvents;
  R.ReplaySeconds = ReplaySeconds;
  R.FinalMetadataBytes = FinalMetadataBytes;
  R.PeakSlotCount = PeakSlotCount;
  return R;
}

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// The one replay core every entry point funnels into: \p Replay is the
/// (already elide-filtered) action stream, \p Shards the resolved count.
/// Fills the detection and timing fields of \p Out.
void replaySpan(const CompiledWorkload &Workload,
                const AnalysisRequest &Request, TraceSpan Replay,
                unsigned Shards, const TraceIndex *Index,
                AnalysisResult &Out) {
  const DetectorSetup &Setup = Request.Setup;
  Out.ResolvedShards = Shards;
  Out.Isa = kernels::activeIsa();

  if (Shards > 1) {
    ShardedReplayConfig Config;
    Config.Shards = Shards;
    Config.Jobs = Setup.ShardJobs;
    Config.UseIndex = Setup.ShardUseIndex;
    Config.Index = Index;
    Config.SyncBatching = Setup.SyncBatching;
    if (Setup.Kind == DetectorKind::Pacer) {
      Config.UseController = true;
      Config.Sampling = Setup.Sampling;
      Config.Sampling.TargetRate = Setup.SamplingRate;
      Config.ControllerSeed = Request.Seed ^ 0x47432121u /*"GC!!"*/;
    }
    // LiteRace's bursty samplers are code-indexed, so a replica would
    // otherwise need the full access stream just to keep its sampling
    // decisions replica-identical. Precompute the decision stream once
    // (it is a pure function of the filtered trace, the seed and the
    // config) and share it read-only: every replica becomes shard-local
    // and the index can feed it owned-access runs only.
    std::optional<LiteRaceSamplerPlan> LiteRacePlan;
    if (Setup.Kind == DetectorKind::LiteRace)
      LiteRacePlan = LiteRaceDetector::computeSamplerPlan(
          Replay, Workload.siteToMethod(),
          Request.Seed ^ 0x4c495445u /*"LITE"*/, Setup.LiteRace);
    DetectorFactory Factory = [&](RaceSink &Sink) {
      std::unique_ptr<Detector> D =
          makeDetector(Setup, Sink, Workload, Request.Seed);
      if (LiteRacePlan)
        static_cast<LiteRaceDetector &>(*D).setSamplerPlan(&*LiteRacePlan);
      return D;
    };
    auto Start = Clock::now();
    ShardedReplayResult Sharded = shardedReplay(Replay, Factory, Config);
    Out.ReplaySeconds = secondsSince(Start);
    Out.Races = std::move(Sharded.Races);
    Out.DynamicRaces = Sharded.DynamicRaces;
    Out.Stats = Sharded.Stats;
    Out.HotAccesses = Sharded.Stats.hotAccesses();
    Out.ColdAccesses = Sharded.Stats.coldAccesses();
    Out.ProbeVectorResolved = Sharded.Probe.VectorResolved;
    Out.ProbeScalarFallback = Sharded.Probe.ScalarFallback;
    Out.EffectiveAccessRate = Sharded.EffectiveAccessRate;
    Out.EffectiveSyncRate = Sharded.EffectiveSyncRate;
    Out.Boundaries = Sharded.Boundaries;
    if (Setup.Kind == DetectorKind::LiteRace)
      Out.LiteRaceEffectiveRate =
          LiteRaceDetector::effectiveRateFromStats(Out.Stats);
    Out.FinalMetadataBytes = Sharded.FinalMetadataBytes;
    Out.PeakSlotCount = Sharded.PeakSlotCount;
    if (Request.CollectReports)
      Out.SampleReports = std::move(Sharded.SampleReports);
    return;
  }

  RaceLog Log;
  std::unique_ptr<Detector> D =
      makeDetector(Setup, Log, Workload, Request.Seed);

  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(
        Sampling, Request.Seed ^ 0x47432121u /*"GC!!"*/);
  }

  Runtime RT(*D, Controller.get(), Setup.SyncBatching);
  auto Start = Clock::now();
  RT.replay(Replay);
  Out.ReplaySeconds = secondsSince(Start);

  Out.Races = Log.counts();
  Out.DynamicRaces = Log.dynamicCount();
  Out.Stats = D->stats();
  Out.HotAccesses = Out.Stats.hotAccesses();
  Out.ColdAccesses = Out.Stats.coldAccesses();
  Out.ProbeVectorResolved = D->probeCounters().VectorResolved;
  Out.ProbeScalarFallback = D->probeCounters().ScalarFallback;
  if (Controller) {
    Out.EffectiveAccessRate = Controller->effectiveAccessRate();
    Out.EffectiveSyncRate = Controller->effectiveSyncRate();
    Out.Boundaries = Controller->boundaryCount();
  }
  if (Setup.Kind == DetectorKind::LiteRace)
    Out.LiteRaceEffectiveRate =
        static_cast<LiteRaceDetector *>(D.get())->effectiveRate();
  Out.FinalMetadataBytes = D->liveMetadataBytes();
  Out.PeakSlotCount = D->peakSlotCount();
  if (Request.CollectReports)
    Out.SampleReports = Log.sampleReports();
}

void noteAutoShards(AnalysisResult &Out, unsigned Resolved,
                    uint64_t Accesses) {
  char Note[128];
  std::snprintf(Note, sizeof(Note),
                "auto-sharding: K=%u (%llu accesses, %u hardware jobs)\n",
                Resolved, static_cast<unsigned long long>(Accesses),
                hardwareJobs());
  Out.Notes += Note;
}

} // namespace

AnalysisResult AnalysisSession::analyzeGenerated() const {
  Trace T = generateTrace(Workload, Request.Seed);
  return analyzeTrace(T);
}

AnalysisResult AnalysisSession::analyzeTrace(TraceSpan T,
                                             const TraceIndex *Index) const {
  const DetectorSetup &Setup = Request.Setup;

  // The escape-analysis pass removed instrumentation from thread-local
  // accesses: they execute (cost nothing here) but are never analysed.
  // Filtering up front keeps the replay path -- sequential or sharded --
  // identical to a trace that never contained them.
  TraceSpan Replay = T;
  Trace Filtered;
  if (Setup.ElideLocalAccesses) {
    Filtered.reserve(T.size());
    for (const Action &A : T)
      if (!(isAccessAction(A.Kind) && Workload.isLocalVar(A.Target)))
        Filtered.push_back(A);
    Replay = Filtered;
    Index = nullptr; // A caller index describes T, not the filtered trace.
  }

  AnalysisResult Result;
  Result.TraceEvents = T.size();

  const unsigned Shards =
      Setup.Shards != 0
          ? Setup.Shards
          : resolveShardCount(0, Index ? Index->accessCount()
                                       : countTraceAccesses(Replay));

  replaySpan(Workload, Request, Replay, Shards, Index, Result);
  return Result;
}

AnalysisResult
AnalysisSession::analyzeStream(StreamingTraceReader &Reader) const {
  const DetectorSetup &Setup = Request.Setup;

  AnalysisResult Result;
  Result.ResolvedShards = 1;
  Result.Isa = kernels::activeIsa();

  RaceLog Log;
  std::unique_ptr<Detector> D =
      makeDetector(Setup, Log, Workload, Request.Seed);

  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(
        Sampling, Request.Seed ^ 0x47432121u /*"GC!!"*/);
  }

  Runtime RT(*D, Controller.get(), Setup.SyncBatching);
  Trace Filtered; // Reused per-chunk scratch under ElideLocalAccesses.
  auto Start = Clock::now();
  RT.start();
  for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
       Chunk = Reader.next()) {
    Result.TraceEvents += Chunk.size();
    TraceSpan Replay = Chunk;
    if (Setup.ElideLocalAccesses) {
      Filtered.clear();
      for (const Action &A : Chunk)
        if (!(isAccessAction(A.Kind) && Workload.isLocalVar(A.Target)))
          Filtered.push_back(A);
      Replay = Filtered;
    }
    RT.replayChunk(Replay, AccessShard::all());
  }
  Result.ReplaySeconds = secondsSince(Start);

  if (!Reader.ok()) {
    Result.Ok = false;
    Result.Error = Reader.error();
    return Result;
  }

  Result.Races = Log.counts();
  Result.DynamicRaces = Log.dynamicCount();
  Result.Stats = D->stats();
  Result.HotAccesses = Result.Stats.hotAccesses();
  Result.ColdAccesses = Result.Stats.coldAccesses();
  Result.ProbeVectorResolved = D->probeCounters().VectorResolved;
  Result.ProbeScalarFallback = D->probeCounters().ScalarFallback;
  if (Controller) {
    Result.EffectiveAccessRate = Controller->effectiveAccessRate();
    Result.EffectiveSyncRate = Controller->effectiveSyncRate();
    Result.Boundaries = Controller->boundaryCount();
  }
  if (Setup.Kind == DetectorKind::LiteRace)
    Result.LiteRaceEffectiveRate =
        static_cast<LiteRaceDetector *>(D.get())->effectiveRate();
  Result.FinalMetadataBytes = D->liveMetadataBytes();
  Result.PeakSlotCount = D->peakSlotCount();
  if (Request.CollectReports)
    Result.SampleReports = Log.sampleReports();
  return Result;
}

AnalysisResult AnalysisSession::analyzeFile(const std::string &Path) const {
  return Request.Stream ? analyzeFileStreaming(Path)
                        : analyzeFileInMemory(Path);
}

AnalysisResult
AnalysisSession::analyzeFileInMemory(const std::string &Path) const {
  // In-memory mode: binary traces analyse from an mmap view (zero-copy
  // where the platform allows); text traces parse into a Trace.
  AnalysisResult Result;
  auto Fail = [&](const std::string &Why) {
    Result.Ok = false;
    Result.Error = Why;
    return Result;
  };

  TraceFormat Format;
  std::string DetectError;
  if (!detectTraceFileFormat(Path, Format, DetectError))
    return Fail(DetectError);

  TraceView View;
  TraceParseResult Parsed;
  TraceSpan T;
  auto LoadStart = Clock::now();
  if (Format == TraceFormat::Binary) {
    View = TraceView::open(Path);
    if (!View.ok())
      return Fail(View.error());
    T = View.actions();
  } else {
    Parsed = readTraceFile(Path);
    if (!Parsed.Ok)
      return Fail(Parsed.Error);
    T = Parsed.T;
  }
  double LoadSeconds = secondsSince(LoadStart);

  unsigned ResolvedShards = Request.Setup.Shards;
  TraceIndex Index;
  const TraceIndex *IndexPtr = nullptr;
  auto IndexStart = Clock::now();
  if (ResolvedShards == 0) {
    TraceIndex::Builder Builder(1);
    Builder.addChunk(T);
    const uint64_t Accesses = Builder.accessCount();
    ResolvedShards = resolveShardCount(0, Accesses);
    noteAutoShards(Result, ResolvedShards, Accesses);
  }
  if (ResolvedShards > 1 && !Request.Setup.ElideLocalAccesses) {
    Index = TraceIndex::build(T, ResolvedShards);
    IndexPtr = &Index;
  }
  double IndexSeconds = secondsSince(IndexStart);

  AnalysisRequest Resolved = Request;
  Resolved.Setup.Shards = ResolvedShards;
  AnalysisResult Replayed =
      AnalysisSession(Workload, Resolved).analyzeTrace(T, IndexPtr);
  Replayed.Notes = Result.Notes + Replayed.Notes;
  Replayed.LoadSeconds = LoadSeconds;
  Replayed.IndexSeconds = IndexSeconds;
  return Replayed;
}

AnalysisResult
AnalysisSession::analyzeFileStreaming(const std::string &Path) const {
  // Bounded-window mode: the trace is never materialized. Auto-shard
  // resolution and the replay index come from extra bounded passes over
  // the same reader; sharded replicas then need random access, which an
  // mmap view provides for binary traces at zero copy. Text traces (no
  // random access without parsing) stream sequentially.
  AnalysisResult Result;
  auto Fail = [&](const std::string &Why) {
    Result.Ok = false;
    Result.Error = Why;
    return Result;
  };

  TraceFormat Format;
  std::string DetectError;
  if (!detectTraceFileFormat(Path, Format, DetectError))
    return Fail(DetectError);

  const size_t StreamWindow = Request.StreamWindow < 1 ? 1
                                                       : Request.StreamWindow;
  unsigned ResolvedShards = Request.Setup.Shards;
  double LoadSeconds = 0, IndexSeconds = 0;

  if (ResolvedShards == 0) {
    // Counting pass for auto-sharding, O(window) resident.
    auto Start = Clock::now();
    StreamingTraceReader Counter(Path, StreamWindow);
    uint64_t Accesses = 0;
    for (TraceSpan Chunk = Counter.next(); !Chunk.empty();
         Chunk = Counter.next())
      Accesses += countTraceAccesses(Chunk);
    if (!Counter.ok())
      return Fail(Counter.error());
    IndexSeconds += secondsSince(Start);
    ResolvedShards = resolveShardCount(0, Accesses);
    noteAutoShards(Result, ResolvedShards, Accesses);
  }

  TraceView View; // Must outlive the replayed span.
  bool Sequential = ResolvedShards <= 1 || Request.Setup.ElideLocalAccesses;
  if (!Sequential) {
    if (Format == TraceFormat::Binary) {
      auto Start = Clock::now();
      View = TraceView::open(Path);
      if (!View.ok())
        return Fail(View.error());
      LoadSeconds = secondsSince(Start);
      if (!View.mapped()) {
        // Buffered fallback materializes the trace; stay sequential to
        // honour the bounded-memory request.
        View = TraceView();
        Sequential = true;
        Result.Notes +=
            "streaming: mmap unavailable, replaying sequentially\n";
      }
    } else {
      Sequential = true;
      Result.Notes += "streaming: text trace has no random access, "
                      "replaying sequentially\n";
    }
  }

  if (!Sequential) {
    // Streamed index build: one bounded pass feeds the sharded engine.
    auto Start = Clock::now();
    StreamingTraceReader Reader(Path, StreamWindow);
    TraceIndex::Builder Builder(ResolvedShards);
    for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
         Chunk = Reader.next())
      Builder.addChunk(Chunk);
    if (!Reader.ok())
      return Fail(Reader.error());
    TraceIndex Index = Builder.take();
    IndexSeconds += secondsSince(Start);

    AnalysisResult Replayed;
    Replayed.Notes = std::move(Result.Notes);
    Replayed.TraceEvents = View.actions().size();
    replaySpan(Workload, Request, View.actions(), ResolvedShards, &Index,
               Replayed);
    Replayed.LoadSeconds = LoadSeconds;
    Replayed.IndexSeconds = IndexSeconds;
    return Replayed;
  }

  auto Start = Clock::now();
  StreamingTraceReader Reader(Path, StreamWindow);
  if (!Reader.ok())
    return Fail(Reader.error());
  AnalysisResult Replayed = analyzeStream(Reader);
  // Load is interleaved with analysis on the sequential streaming path.
  Replayed.ReplaySeconds = secondsSince(Start);
  Replayed.Notes = Result.Notes + Replayed.Notes;
  Replayed.IndexSeconds = IndexSeconds;
  return Replayed;
}
