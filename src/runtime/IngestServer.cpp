//===- runtime/IngestServer.cpp -------------------------------------------==//

#include "runtime/IngestServer.h"

#include "support/Binary.h"
#include "support/DirWatch.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

using namespace pacer;
namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

static double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

//===----------------------------------------------------------------------===//
// Wire protocol helpers (shared by server and client sides).
//===----------------------------------------------------------------------===//

namespace {

/// Cap on response messages a client will accept; stats JSON and error
/// strings are tiny, so anything bigger is a corrupt stream.
constexpr uint64_t MaxResponseBytes = 1ull << 20;

/// Spool / submission I/O chunk. Bounds per-connection memory.
constexpr size_t IoChunkBytes = 64 * 1024;

bool sendFrameHeader(Socket &S, uint8_t Type, uint8_t IdLen,
                     uint64_t PayloadLen) {
  BinWriter W;
  W.u32(ingest::FrameMagic);
  W.u8(Type);
  W.u8(IdLen);
  W.u16(0);
  W.u64(PayloadLen);
  return S.sendAll(W.buffer().data(), W.buffer().size());
}

bool sendResponse(Socket &S, ingest::Status Code, const std::string &Msg) {
  BinWriter W;
  W.u32(ingest::FrameMagic);
  W.u8(static_cast<uint8_t>(Code));
  W.u8(0);
  W.u16(0);
  W.u64(Msg.size());
  W.bytes(Msg.data(), Msg.size());
  return S.sendAll(W.buffer().data(), W.buffer().size());
}

/// Reads one response frame; false on transport error or a nonsense
/// length.
bool recvResponse(Socket &S, ingest::Status &Code, std::string &Msg) {
  uint8_t Header[ingest::FrameHeaderBytes];
  if (!S.recvAll(Header, sizeof(Header)))
    return false;
  BinReader R(Header, sizeof(Header));
  uint32_t Magic = R.u32();
  uint8_t RawCode = R.u8();
  R.u8();
  R.u16();
  uint64_t Len = R.u64();
  if (Magic != ingest::FrameMagic || Len > MaxResponseBytes)
    return false;
  Msg.assign(static_cast<size_t>(Len), '\0');
  if (Len && !S.recvAll(Msg.data(), static_cast<size_t>(Len)))
    return false;
  Code = static_cast<ingest::Status>(RawCode);
  return true;
}

std::string hexEncode(const std::string &Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (unsigned char C : Bytes) {
    Out.push_back(Digits[C >> 4]);
    Out.push_back(Digits[C & 0xF]);
  }
  return Out;
}

int hexNibble(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  return -1;
}

bool hexDecode(const std::string &Hex, std::string &Out) {
  if (Hex.size() % 2)
    return false;
  Out.clear();
  Out.reserve(Hex.size() / 2);
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = hexNibble(Hex[I]), Lo = hexNibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<char>(Hi << 4 | Lo));
  }
  return true;
}

std::string hexU64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool hasSuffix(const std::string &Name, const char *Suffix) {
  const size_t Len = std::char_traits<char>::length(Suffix);
  return Name.size() >= Len &&
         Name.compare(Name.size() - Len, Len, Suffix) == 0;
}

/// Spool names are "sub-<16-hex seq>-<hex id>.trace". The sequence
/// number keeps names unique; the hex-encoded idempotency id rides along
/// so recovery can tell committed work from lost work without any side
/// index.
bool parseSpoolName(const std::string &Name, uint64_t &Seq,
                    std::string &Id) {
  constexpr const char Prefix[] = "sub-";
  constexpr const char Suffix[] = ".trace";
  if (Name.rfind(Prefix, 0) != 0 || !hasSuffix(Name, Suffix))
    return false;
  const size_t SeqBegin = sizeof(Prefix) - 1;
  std::string Body =
      Name.substr(SeqBegin, Name.size() - SeqBegin - (sizeof(Suffix) - 1));
  const size_t Dash = Body.find('-');
  if (Dash != 16)
    return false;
  Seq = 0;
  for (size_t I = 0; I < 16; ++I) {
    int N = hexNibble(Body[I]);
    if (N < 0)
      return false;
    Seq = Seq << 4 | static_cast<uint64_t>(N);
  }
  return hexDecode(Body.substr(Dash + 1), Id);
}

void recordStage(IngestServer::StageStats &Stage, double Ms) {
  ++Stage.Count;
  Stage.TotalMs += Ms;
  Stage.MaxMs = std::max(Stage.MaxMs, Ms);
}

void unlinkQuiet(const std::string &Path) {
  std::error_code Ec;
  fs::remove(Path, Ec);
}

//===----------------------------------------------------------------------===//
// Daemon snapshot format: wraps the FleetAggregator blob with the
// committed-id memory and ingest counters, so a restart resumes both the
// fleet estimates and the exactly-once bookkeeping.
//
//   magic "\xBA PACDMN1" | u32 version=1 | u32 flags=0 |
//   u64 aggLen | agg blob (FleetAggregator::serialize, self-checked) |
//   u32 idCount | idCount x (u8 len | bytes)  -- eviction order |
//   u64 received | committed | duplicates | malformed | oversize |
//   u64 bytesIngested | racesDynamic | fnv1a64 checksum
//===----------------------------------------------------------------------===//

constexpr unsigned char DaemonMagic[8] = {0xBA, 'P', 'A', 'C',
                                          'D',  'M', 'N', '1'};
constexpr uint32_t DaemonSnapshotVersion = 1;

std::vector<uint8_t>
encodeDaemonSnapshot(const FleetAggregator &Agg,
                     const std::deque<std::string> &IdOrder,
                     const IngestServer::Counters &Stats) {
  BinWriter W;
  W.bytes(DaemonMagic, sizeof(DaemonMagic));
  W.u32(DaemonSnapshotVersion);
  W.u32(0);
  std::vector<uint8_t> AggBytes = Agg.serialize();
  W.u64(AggBytes.size());
  W.bytes(AggBytes.data(), AggBytes.size());
  W.u32(static_cast<uint32_t>(IdOrder.size()));
  for (const std::string &Id : IdOrder) {
    W.u8(static_cast<uint8_t>(Id.size()));
    W.bytes(Id.data(), Id.size());
  }
  W.u64(Stats.Received);
  W.u64(Stats.Committed);
  W.u64(Stats.Duplicates);
  W.u64(Stats.MalformedRejected);
  W.u64(Stats.OversizeRejected);
  W.u64(Stats.BytesIngested);
  W.u64(Stats.RacesDynamic);
  W.appendChecksum();
  return W.take();
}

bool decodeDaemonSnapshot(const std::vector<uint8_t> &Bytes,
                          FleetAggregator &Agg,
                          std::deque<std::string> &IdOrder,
                          IngestServer::Counters &Stats,
                          std::string &Error) {
  Error.clear();
  // Verify the trailer before trusting any length field.
  if (Bytes.size() < sizeof(DaemonMagic) + 8 ||
      fnv1a64(Bytes.data(), Bytes.size() - 8) !=
          BinReader(Bytes.data() + Bytes.size() - 8, 8).u64()) {
    Error = "daemon snapshot: checksum mismatch";
    return false;
  }
  BinReader R(Bytes.data(), Bytes.size() - 8);
  unsigned char Magic[sizeof(DaemonMagic)];
  if (!R.bytes(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, DaemonMagic, sizeof(Magic)) != 0) {
    Error = "daemon snapshot: bad magic";
    return false;
  }
  if (R.u32() != DaemonSnapshotVersion || R.u32() != 0) {
    Error = "daemon snapshot: unsupported version or flags";
    return false;
  }
  uint64_t AggLen = R.u64();
  if (AggLen > R.remaining()) {
    Error = "daemon snapshot: truncated aggregator blob";
    return false;
  }
  std::vector<uint8_t> AggBytes(static_cast<size_t>(AggLen));
  if (AggLen && !R.bytes(AggBytes.data(), AggBytes.size())) {
    Error = "daemon snapshot: truncated aggregator blob";
    return false;
  }
  if (!Agg.deserialize(AggBytes.data(), AggBytes.size(), Error))
    return false;

  IdOrder.clear();
  uint32_t IdCount = R.u32();
  for (uint32_t I = 0; I < IdCount && !R.failed(); ++I) {
    uint8_t Len = R.u8();
    std::string Id(Len, '\0');
    if (Len && !R.bytes(Id.data(), Len))
      break;
    IdOrder.push_back(std::move(Id));
  }
  Stats = IngestServer::Counters();
  Stats.Received = R.u64();
  Stats.Committed = R.u64();
  Stats.Duplicates = R.u64();
  Stats.MalformedRejected = R.u64();
  Stats.OversizeRejected = R.u64();
  Stats.BytesIngested = R.u64();
  Stats.RacesDynamic = R.u64();
  if (!R.exhausted()) {
    Error = "daemon snapshot: truncated or trailing bytes";
    return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Client side.
//===----------------------------------------------------------------------===//

const char *ingest::statusName(Status S) {
  switch (S) {
  case Status::Committed:
    return "committed";
  case Status::Duplicate:
    return "duplicate";
  case Status::Malformed:
    return "malformed";
  case Status::TooLarge:
    return "too-large";
  case Status::Unavailable:
    return "unavailable";
  case Status::Error:
    return "error";
  }
  return "unknown";
}

ingest::SubmitResult ingest::submitFile(Socket &S,
                                        const std::string &TracePath,
                                        const std::string &ClientId) {
  SubmitResult Out;
  if (ClientId.size() > MaxClientIdBytes) {
    Out.Message = "client id too long";
    return Out;
  }
  std::FILE *File = std::fopen(TracePath.c_str(), "rb");
  if (!File) {
    Out.Message = "cannot open " + TracePath;
    return Out;
  }
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size < 0) {
    std::fclose(File);
    Out.Message = "cannot size " + TracePath;
    return Out;
  }

  bool SentOk = sendFrameHeader(S, static_cast<uint8_t>(FrameType::Submit),
                                static_cast<uint8_t>(ClientId.size()),
                                static_cast<uint64_t>(Size)) &&
                (ClientId.empty() ||
                 S.sendAll(ClientId.data(), ClientId.size()));
  char Buf[IoChunkBytes];
  uint64_t Left = static_cast<uint64_t>(Size);
  while (SentOk && Left > 0) {
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(Left, sizeof(Buf)));
    if (std::fread(Buf, 1, Chunk, File) != Chunk || !S.sendAll(Buf, Chunk)) {
      SentOk = false;
      break;
    }
    Left -= Chunk;
  }
  std::fclose(File);
  // A send can fail mid-payload because the daemon already rejected the
  // submission (e.g. oversize) and closed its read side; the verdict may
  // still be waiting in the socket, so always try to read it.
  if (recvResponse(S, Out.Code, Out.Message)) {
    Out.Ok = true;
    return Out;
  }
  Out.Message = SentOk ? "no response from daemon"
                       : "send failed for " + TracePath;
  return Out;
}

bool ingest::requestStats(Socket &S, std::string &StatsJson,
                          std::string &Error) {
  Error.clear();
  if (!sendFrameHeader(S, static_cast<uint8_t>(FrameType::Stats), 0, 0)) {
    Error = "send failed";
    return false;
  }
  Status Code = Status::Error;
  if (!recvResponse(S, Code, StatsJson)) {
    Error = "no response from daemon";
    return false;
  }
  if (Code != Status::Committed) {
    Error = StatsJson.empty() ? std::string(statusName(Code)) : StatsJson;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Server internals.
//===----------------------------------------------------------------------===//

struct IngestServer::ResponseSlot {
  std::mutex M;
  std::condition_variable Cv;
  bool Done = false;
  ingest::Status Code = ingest::Status::Error;
  std::string Message;

  void deliver(ingest::Status S, std::string Msg) {
    std::lock_guard<std::mutex> G(M);
    Code = S;
    Message = std::move(Msg);
    Done = true;
    Cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Done; });
  }
};

struct IngestServer::Task {
  std::string SpoolPath;
  std::string ClientId;
  ResponseSlot *Slot = nullptr; ///< Null for drop-dir / recovered work.
};

struct IngestServer::Connection {
  Socket Sock;
  std::thread Thread;
  std::atomic<bool> Done{false};
};

IngestServer::IngestServer(Config Cfg) : C(std::move(Cfg)) {}

IngestServer::~IngestServer() { stop(); }

std::string IngestServer::spoolPathFor(uint64_t Seq,
                                       const std::string &ClientId) const {
  return C.SpoolDir + "/sub-" + hexU64(Seq) + "-" + hexEncode(ClientId) +
         ".trace";
}

bool IngestServer::start(std::string &Error) {
  Error.clear();
  if (Running.load()) {
    Error = "already running";
    return false;
  }
  Stopping.store(false);
  if (C.SpoolDir.empty()) {
    Error = "spool directory required";
    return false;
  }
  if (!ensureDir(C.SpoolDir)) {
    Error = "cannot create spool directory " + C.SpoolDir;
    return false;
  }
  if (!C.DropDir.empty() && !ensureDir(C.DropDir)) {
    Error = "cannot create drop directory " + C.DropDir;
    return false;
  }
  if (C.QueueCapacity == 0)
    C.QueueCapacity = 1;

  // Resume from the snapshot when one exists; a missing file is a fresh
  // deployment, but a corrupt one is an operator problem, not something
  // to silently zero out.
  Aggregator = FleetAggregator(C.Setup.SamplingRate);
  CommittedOrder.clear();
  CommittedIds.clear();
  Stats = Counters();
  if (!C.SnapshotPath.empty()) {
    std::vector<uint8_t> Bytes;
    std::string ReadError;
    if (readFileBytes(C.SnapshotPath, Bytes, ReadError)) {
      if (!decodeDaemonSnapshot(Bytes, Aggregator, CommittedOrder, Stats,
                                Error))
        return false;
      for (const std::string &Id : CommittedOrder)
        CommittedIds.insert(Id);
    }
  }

  unsigned NWorkers =
      C.AnalysisWorkers ? C.AnalysisWorkers : std::thread::hardware_concurrency();
  if (NWorkers == 0)
    NWorkers = 2;
  Running.store(true);
  for (unsigned I = 0; I < NWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });

  // Re-ingest anything a previous run spooled but did not get into a
  // durable snapshot. Workers are already running, so the bounded queue
  // drains even when the backlog exceeds its capacity.
  if (!recoverSpool(Error)) {
    stop();
    return false;
  }

  if (!C.UnixSocketPath.empty()) {
    UnixListener = ListenSocket::listenUnix(C.UnixSocketPath, 64, Error);
    if (!UnixListener.valid()) {
      stop();
      return false;
    }
    UnixAcceptor = std::thread([this] { acceptLoop(&UnixListener); });
  }
  if (C.TcpPort >= 0) {
    TcpListener = ListenSocket::listenTcp(C.TcpPort, 64, Error, &BoundTcpPort);
    if (!TcpListener.valid()) {
      stop();
      return false;
    }
    TcpAcceptor = std::thread([this] { acceptLoop(&TcpListener); });
  }
  if (!C.DropDir.empty())
    DropWatcher = std::thread([this] { dropWatchLoop(); });
  return true;
}

bool IngestServer::recoverSpool(std::string &Error) {
  Error.clear();
  std::vector<Task> ToIngest;
  uint64_t NextSeq = 0;
  std::error_code Ec;
  fs::directory_iterator It(C.SpoolDir, Ec), End;
  for (; !Ec && It != End; It.increment(Ec)) {
    std::error_code TypeEc;
    if (!It->is_regular_file(TypeEc) || TypeEc)
      continue;
    const std::string Name = It->path().filename().string();
    const std::string Full = It->path().string();
    // Incomplete receives never got their final name; they are lost work
    // the client never got acked for (it will retry).
    if (!Name.empty() && Name[0] == '.') {
      unlinkQuiet(Full);
      continue;
    }
    uint64_t Seq = 0;
    std::string Id;
    if (!parseSpoolName(Name, Seq, Id))
      continue; // Not ours (e.g. a snapshot living in the spool dir).
    NextSeq = std::max(NextSeq, Seq + 1);
    if (!Id.empty() && CommittedIds.count(Id)) {
      // Committed and durable before the crash; only the unlink was lost.
      unlinkQuiet(Full);
      continue;
    }
    ToIngest.push_back(Task{Full, Id, nullptr});
  }
  SpoolSeq.store(NextSeq);
  std::sort(ToIngest.begin(), ToIngest.end(),
            [](const Task &A, const Task &B) {
              return A.SpoolPath < B.SpoolPath;
            });
  for (Task &T : ToIngest)
    if (!enqueue(std::move(T)))
      break; // Stopping mid-start; files stay for the next run.
  return true;
}

void IngestServer::stop() {
  bool WasStopping = Stopping.exchange(true);
  if (WasStopping && !Running.load())
    return;

  // Unblock producers stuck in backpressure so they can bail out.
  QueueSpaceCv.notify_all();

  if (UnixAcceptor.joinable())
    UnixAcceptor.join();
  if (TcpAcceptor.joinable())
    TcpAcceptor.join();
  UnixListener.close();
  TcpListener.close();
  if (DropWatcher.joinable())
    DropWatcher.join();

  // Connections: shut their sockets so blocked receives fail, then wait
  // for every connection thread to finish (workers are still draining
  // the queue, so threads waiting on a response slot get their answer).
  reapConnections(/*Final=*/true);

  QueueWorkCv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();

  // Final snapshot: capture any commits since the last periodic one and
  // release their spool files.
  {
    std::lock_guard<std::mutex> G(StateMutex);
    if (!C.SnapshotPath.empty() && Stats.Committed > 0) {
      std::string SnapError;
      if (writeSnapshotLocked(SnapError)) {
        for (const std::string &Path : PendingUnlinks)
          unlinkQuiet(Path);
        PendingUnlinks.clear();
        CommitsSinceSnapshot = 0;
      }
    }
  }
  Running.store(false);
}

void IngestServer::acceptLoop(ListenSocket *Listener) {
  while (!Stopping.load()) {
    bool TimedOut = false;
    std::string Error;
    Socket S = Listener->accept(200, TimedOut, Error);
    reapConnections(/*Final=*/false);
    if (!S.valid()) {
      if (!TimedOut && !Error.empty()) {
        if (Stopping.load())
          break;
        // Persistent accept failure (fd exhaustion, listener torn down):
        // back off instead of spinning the poll loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      continue;
    }
    std::lock_guard<std::mutex> G(ConnMutex);
    if (LiveConnections >= C.MaxConnections) {
      sendResponse(S, ingest::Status::Unavailable, "connection limit reached");
      continue; // S closes on scope exit.
    }
    auto Conn = std::make_unique<Connection>();
    Conn->Sock = std::move(S);
    Connection *Ptr = Conn.get();
    ++LiveConnections;
    Connections.push_back(std::move(Conn));
    Ptr->Thread = std::thread([this, Ptr] { connectionLoop(Ptr); });
  }
}

void IngestServer::reapConnections(bool Final) {
  std::unique_lock<std::mutex> L(ConnMutex);
  if (Final)
    for (auto &Conn : Connections)
      if (!Conn->Done.load() && Conn->Sock.valid())
        ::shutdown(Conn->Sock.fd(), SHUT_RDWR);
  auto Sweep = [&] {
    for (auto It = Connections.begin(); It != Connections.end();) {
      if ((*It)->Done.load()) {
        (*It)->Thread.join();
        It = Connections.erase(It);
      } else {
        ++It;
      }
    }
  };
  Sweep();
  while (Final && !Connections.empty()) {
    L.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    L.lock();
    Sweep();
  }
}

void IngestServer::connectionLoop(Connection *Conn) {
  Socket &S = Conn->Sock;
  S.setRecvTimeout(C.RecvTimeoutMs);

  while (!Stopping.load()) {
    uint8_t Header[ingest::FrameHeaderBytes];
    if (!S.recvAll(Header, sizeof(Header)))
      break; // Idle close, timeout, or peer gone.
    BinReader R(Header, sizeof(Header));
    const uint32_t Magic = R.u32();
    const uint8_t Type = R.u8();
    const uint8_t IdLen = R.u8();
    const uint16_t Reserved = R.u16();
    const uint64_t PayloadLen = R.u64();
    if (Magic != ingest::FrameMagic || Reserved != 0) {
      sendResponse(S, ingest::Status::Error, "bad frame header");
      break;
    }

    if (Type == static_cast<uint8_t>(ingest::FrameType::Stats)) {
      if (IdLen != 0 || PayloadLen != 0) {
        sendResponse(S, ingest::Status::Error, "malformed stats request");
        break;
      }
      if (!sendResponse(S, ingest::Status::Committed, statsText()))
        break;
      continue;
    }
    if (Type != static_cast<uint8_t>(ingest::FrameType::Submit)) {
      sendResponse(S, ingest::Status::Error, "unknown frame type");
      break;
    }
    if (IdLen > ingest::MaxClientIdBytes) {
      sendResponse(S, ingest::Status::Error, "client id too long");
      break;
    }
    std::string Id(IdLen, '\0');
    if (IdLen && !S.recvAll(Id.data(), IdLen))
      break;
    if (PayloadLen > C.MaxSubmissionBytes) {
      // Refusing without reading leaves the stream unsynchronized; the
      // response still goes out, then the connection closes.
      {
        std::lock_guard<std::mutex> G(StateMutex);
        ++Stats.OversizeRejected;
      }
      sendResponse(S, ingest::Status::TooLarge,
                   "submission exceeds size limit");
      break;
    }

    // Spool to disk in bounded chunks under a dot-name; rename into the
    // spool only once every byte arrived.
    const auto SpoolStart = Clock::now();
    const uint64_t Seq = SpoolSeq.fetch_add(1);
    const std::string PartPath =
        C.SpoolDir + "/.in-" + hexU64(Seq) + ".part";
    const std::string FinalPath = spoolPathFor(Seq, Id);
    std::FILE *File = std::fopen(PartPath.c_str(), "wb");
    if (!File) {
      sendResponse(S, ingest::Status::Error, "cannot open spool file");
      break;
    }
    char Buf[IoChunkBytes];
    uint64_t Left = PayloadLen;
    bool RecvOk = true, DiskOk = true;
    while (Left > 0 && RecvOk && DiskOk) {
      size_t Chunk =
          static_cast<size_t>(std::min<uint64_t>(Left, sizeof(Buf)));
      if (!S.recvAll(Buf, Chunk))
        RecvOk = false;
      else if (std::fwrite(Buf, 1, Chunk, File) != Chunk)
        DiskOk = false;
      else
        Left -= Chunk;
    }
    if (DiskOk)
      DiskOk = std::fflush(File) == 0 && ::fsync(fileno(File)) == 0;
    std::fclose(File);
    if (!RecvOk || !DiskOk) {
      unlinkQuiet(PartPath);
      if (!RecvOk)
        break; // Peer vanished mid-payload; nothing to answer.
      sendResponse(S, ingest::Status::Error, "spool write failed");
      break;
    }
    std::error_code RenameEc;
    fs::rename(PartPath, FinalPath, RenameEc);
    if (RenameEc) {
      unlinkQuiet(PartPath);
      sendResponse(S, ingest::Status::Error, "spool rename failed");
      break;
    }
    {
      std::lock_guard<std::mutex> G(StateMutex);
      ++Stats.Received;
      recordStage(Stats.Spool, msSince(SpoolStart));
    }

    ResponseSlot Slot;
    if (!enqueue(Task{FinalPath, Id, &Slot})) {
      // Shutting down: the spool file survives and the next start
      // re-ingests it; the client learns to retry (same id = no double
      // count).
      sendResponse(S, ingest::Status::Unavailable, "shutting down");
      break;
    }
    Slot.wait();
    if (!sendResponse(S, Slot.Code, Slot.Message))
      break;
  }

  {
    std::lock_guard<std::mutex> G(ConnMutex);
    --LiveConnections;
  }
  Conn->Sock.close();
  Conn->Done.store(true);
}

void IngestServer::dropWatchLoop() {
  while (!Stopping.load()) {
    for (const std::string &Path : scanDropDir(C.DropDir)) {
      if (Stopping.load())
        break;
      const size_t Slash = Path.find_last_of('/');
      const std::string Base =
          Slash == std::string::npos ? Path : Path.substr(Slash + 1);
      // The filename is the idempotency id, so re-dropping a committed
      // name answers duplicate instead of double counting. Long names
      // get a fingerprint to stay within the id bound.
      std::string Id = "drop:" + Base;
      if (Id.size() > ingest::MaxClientIdBytes)
        Id = "drop#" + hexU64(fnv1a64(Base.data(), Base.size()));
      const uint64_t Seq = SpoolSeq.fetch_add(1);
      const std::string Dst = spoolPathFor(Seq, Id);
      if (!claimFile(Path, Dst))
        continue; // Claimed by someone else or vanished; move on.
      {
        std::lock_guard<std::mutex> G(StateMutex);
        ++Stats.Received;
      }
      if (!enqueue(Task{Dst, Id, nullptr}))
        return; // Stopping; the spool file is recovered next start.
    }
    for (int Slept = 0; Slept < C.DropPollMs && !Stopping.load();
         Slept += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool IngestServer::enqueue(Task T) {
  std::unique_lock<std::mutex> L(QueueMutex);
  QueueSpaceCv.wait(L, [&] {
    return Stopping.load() || Queue.size() < C.QueueCapacity;
  });
  if (Stopping.load())
    return false;
  Queue.push_back(std::move(T));
  QueueWorkCv.notify_one();
  return true;
}

void IngestServer::workerLoop() {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> L(QueueMutex);
      QueueWorkCv.wait(L, [&] { return Stopping.load() || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping.load())
          return; // Drained; shutdown may proceed.
        continue;
      }
      T = std::move(Queue.front());
      Queue.pop_front();
      QueueSpaceCv.notify_one();
    }
    processTask(T);
  }
}

void IngestServer::processTask(Task &T) {
  auto Respond = [&](ingest::Status Code, std::string Msg) {
    if (T.Slot)
      T.Slot->deliver(Code, std::move(Msg));
  };

  // Cheap duplicate check before burning an analysis on it.
  if (!T.ClientId.empty()) {
    std::lock_guard<std::mutex> G(StateMutex);
    if (CommittedIds.count(T.ClientId)) {
      ++Stats.Duplicates;
      unlinkQuiet(T.SpoolPath);
      Respond(ingest::Status::Duplicate, "already committed");
      return;
    }
  }

  std::error_code SizeEc;
  const uint64_t PayloadBytes = fs::file_size(T.SpoolPath, SizeEc);
  if (SizeEc) {
    Respond(ingest::Status::Error, "spool file unreadable");
    return;
  }
  if (PayloadBytes > C.MaxSubmissionBytes) {
    // Drop-dir files skip frame validation, so the limit lands here.
    {
      std::lock_guard<std::mutex> G(StateMutex);
      ++Stats.OversizeRejected;
    }
    unlinkQuiet(T.SpoolPath);
    Respond(ingest::Status::TooLarge, "submission exceeds size limit");
    return;
  }

  AnalysisRequest Request;
  Request.Setup = C.Setup;
  Request.Seed = C.Seed;
  Request.Stream = true;
  Request.StreamWindow = C.StreamWindow;
  Request.CollectReports = true;
  const auto AnalyzeStart = Clock::now();
  AnalysisResult Result =
      AnalysisSession(flatSiteWorkload(), Request).analyzeFile(T.SpoolPath);
  const double AnalyzeMs = msSince(AnalyzeStart);

  if (!Result.Ok) {
    std::lock_guard<std::mutex> G(StateMutex);
    ++Stats.MalformedRejected;
    recordStage(Stats.Analyze, AnalyzeMs);
    unlinkQuiet(T.SpoolPath);
    Respond(ingest::Status::Malformed, Result.Error);
    return;
  }

  const auto CommitStart = Clock::now();
  ingest::Status Code =
      commitResult(Result, T.ClientId, PayloadBytes, T.SpoolPath);
  const double CommitMs = msSince(CommitStart);
  {
    std::lock_guard<std::mutex> G(StateMutex);
    recordStage(Stats.Analyze, AnalyzeMs);
    recordStage(Stats.Commit, CommitMs);
  }

  if (Code == ingest::Status::Committed) {
    std::string Msg = "committed: " + std::to_string(Result.Races.size()) +
                      " distinct race(s), " +
                      std::to_string(Result.DynamicRaces) + " dynamic";
    Respond(Code, std::move(Msg));
  } else {
    Respond(Code, "already committed");
  }
}

ingest::Status IngestServer::commitResult(const AnalysisResult &Result,
                                          const std::string &ClientId,
                                          uint64_t PayloadBytes,
                                          const std::string &SpoolPath) {
  std::lock_guard<std::mutex> G(StateMutex);
  if (!ClientId.empty() && CommittedIds.count(ClientId)) {
    // Lost the race against a concurrent retry of the same id.
    ++Stats.Duplicates;
    unlinkQuiet(SpoolPath);
    return ingest::Status::Duplicate;
  }

  // Fold at the fleet-wide configured rate (EffectiveRate = -1): the
  // rate mean's exact fixed point keeps the aggregate independent of the
  // order concurrent submissions happen to commit in.
  Aggregator.addInstance(Result.Races, Result.SampleReports, -1.0);
  ++Stats.Committed;
  Stats.BytesIngested += PayloadBytes;
  Stats.RacesDynamic += Result.DynamicRaces;
  if (!ClientId.empty()) {
    CommittedIds.insert(ClientId);
    CommittedOrder.push_back(ClientId);
    while (CommittedOrder.size() > C.MaxCommittedIds) {
      CommittedIds.erase(CommittedOrder.front());
      CommittedOrder.pop_front();
    }
  }

  // The spool file may only disappear once a snapshot covering this
  // commit is durable; until then it is the crash-recovery source.
  PendingUnlinks.push_back(SpoolPath);
  ++CommitsSinceSnapshot;
  if (C.SnapshotPath.empty() || CommitsSinceSnapshot >= C.SnapshotEveryN) {
    std::string SnapError;
    if (C.SnapshotPath.empty() || writeSnapshotLocked(SnapError)) {
      for (const std::string &Path : PendingUnlinks)
        unlinkQuiet(Path);
      PendingUnlinks.clear();
      CommitsSinceSnapshot = 0;
    }
    // On snapshot failure the spool files stay: commits are held in
    // memory and re-ingested from spool if this process dies.
  }
  return ingest::Status::Committed;
}

bool IngestServer::writeSnapshotLocked(std::string &Error) {
  std::vector<uint8_t> Bytes =
      encodeDaemonSnapshot(Aggregator, CommittedOrder, Stats);
  return writeFileAtomic(C.SnapshotPath, Bytes.data(), Bytes.size(), Error);
}

IngestServer::Counters IngestServer::counters() const {
  std::lock_guard<std::mutex> G(StateMutex);
  return Stats;
}

FleetAggregator IngestServer::aggregatorCopy() const {
  std::lock_guard<std::mutex> G(StateMutex);
  return Aggregator;
}

std::string IngestServer::statsText() const {
  Counters S = counters();
  size_t QueueDepth;
  {
    std::lock_guard<std::mutex> G(QueueMutex);
    QueueDepth = Queue.size();
  }
  auto Stage = [](const char *Name, const StageStats &St) {
    std::string Out = "\"";
    Out += Name;
    Out += "\":{\"count\":" + std::to_string(St.Count);
    Out += ",\"total_ms\":" + std::to_string(St.TotalMs);
    Out += ",\"max_ms\":" + std::to_string(St.MaxMs) + "}";
    return Out;
  };
  std::string Json = "{";
  Json += "\"received\":" + std::to_string(S.Received);
  Json += ",\"committed\":" + std::to_string(S.Committed);
  Json += ",\"duplicates\":" + std::to_string(S.Duplicates);
  Json += ",\"rejected_malformed\":" + std::to_string(S.MalformedRejected);
  Json += ",\"rejected_oversize\":" + std::to_string(S.OversizeRejected);
  Json += ",\"bytes_ingested\":" + std::to_string(S.BytesIngested);
  Json += ",\"dynamic_races\":" + std::to_string(S.RacesDynamic);
  Json += ",\"queue_depth\":" + std::to_string(QueueDepth);
  Json += ",\"stages\":{" + Stage("spool", S.Spool) + "," +
          Stage("analyze", S.Analyze) + "," + Stage("commit", S.Commit) + "}";
  Json += "}";
  return Json;
}

bool IngestServer::loadSnapshotFile(const std::string &Path,
                                    FleetAggregator &Agg,
                                    std::string &Error) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes, Error))
    return false;
  std::deque<std::string> IdOrder;
  Counters Stats;
  return decodeDaemonSnapshot(Bytes, Agg, IdOrder, Stats, Error);
}
