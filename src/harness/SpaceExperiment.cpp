//===- harness/SpaceExperiment.cpp ----------------------------------------==//

#include "harness/SpaceExperiment.h"

#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"

#include <algorithm>
#include <numeric>

using namespace pacer;

size_t SpaceSeries::peakBytes() const {
  if (Bytes.empty())
    return 0;
  return *std::max_element(Bytes.begin(), Bytes.end());
}

double SpaceSeries::meanBytes() const {
  if (Bytes.empty())
    return 0.0;
  return std::accumulate(Bytes.begin(), Bytes.end(), 0.0) /
         static_cast<double>(Bytes.size());
}

SpaceSeries pacer::measureSpace(const CompiledWorkload &Workload,
                                const DetectorSetup &Setup,
                                const std::string &Label, uint32_t Probes,
                                uint64_t Seed, bool IncludeHeaderWords,
                                const SpaceModel &Model) {
  Trace T = generateTrace(Workload, Seed);

  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Workload, Seed);
  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller =
        std::make_unique<SamplingController>(Sampling, Seed ^ 0x47432121u);
  }
  Runtime RT(*D, Controller.get());
  RT.start();

  SpaceSeries Series;
  Series.Label = Label;

  size_t ObjectBytes =
      static_cast<size_t>(Workload.objectCount()) * Model.AppBytesPerObject;
  size_t HeaderBytes =
      IncludeHeaderWords ? static_cast<size_t>(Workload.objectCount()) *
                               Model.HeaderWordsPerObject * sizeof(void *)
                         : 0;

  uint32_t ProbeCount = std::max<uint32_t>(1, Probes);
  size_t Interval = std::max<size_t>(1, T.size() / ProbeCount);
  for (size_t I = 0; I != T.size(); ++I) {
    RT.step(T[I]);
    if (I % Interval == 0 || I + 1 == T.size()) {
      size_t AppGrowth = static_cast<size_t>(
          Model.AppGrowthBytesPerEvent * static_cast<double>(I));
      Series.NormalizedTime.push_back(
          static_cast<double>(I) / static_cast<double>(T.size()));
      Series.Bytes.push_back(ObjectBytes + AppGrowth + HeaderBytes +
                             D->liveMetadataBytes());
    }
  }
  return Series;
}
