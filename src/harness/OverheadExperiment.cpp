//===- harness/OverheadExperiment.cpp -------------------------------------==//

#include "harness/OverheadExperiment.h"

#include "runtime/AnalysisSession.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <optional>

using namespace pacer;

std::vector<OverheadResult>
pacer::measureOverheads(const CompiledWorkload &Workload,
                        const std::vector<OverheadConfig> &Configs,
                        uint32_t Trials, uint64_t BaseSeed, unsigned Jobs) {
  // Auto shard requests (Shards == 0) resolve once from a probe trace so
  // every trial and every configuration times the identical shard count;
  // resolving per trial would let trace-size jitter flip K mid-experiment.
  std::vector<OverheadConfig> Resolved;
  const std::vector<OverheadConfig> *Active = &Configs;
  if (std::any_of(Configs.begin(), Configs.end(),
                  [](const OverheadConfig &C) { return C.Setup.Shards == 0; })) {
    Trace Probe = generateTrace(Workload, deriveTrialSeed(BaseSeed, 0));
    const unsigned K = resolveShardCount(0, countTraceAccesses(Probe));
    std::fprintf(stderr, "[shards] auto: K=%u (%llu accesses)\n", K,
                 static_cast<unsigned long long>(countTraceAccesses(Probe)));
    Resolved = Configs;
    for (OverheadConfig &C : Resolved)
      if (C.Setup.Shards == 0)
        C.Setup.Shards = K;
    Active = &Resolved;
  }

  // One shared index per trial when every configuration replays the raw
  // trace at the same shard count: the build then happens once, outside
  // every timed region, matching how a long-lived analysis would amortize
  // it. Mixed shard counts or local-access elision fall back to per-call
  // handling inside runTrialOnTrace.
  unsigned SharedIndexShards = 0;
  {
    bool Uniform = !Active->empty();
    for (const OverheadConfig &C : *Active) {
      const DetectorSetup &S = C.Setup;
      if (S.Shards <= 1 || !S.ShardUseIndex || S.ElideLocalAccesses ||
          (SharedIndexShards != 0 && S.Shards != SharedIndexShards)) {
        Uniform = false;
        break;
      }
      SharedIndexShards = S.Shards;
    }
    if (!Uniform)
      SharedIndexShards = 0;
  }

  // One repetition = generate the trial's trace, then time every
  // configuration on that identical trace. Repetitions are independent,
  // so they parallelize; per-trial seconds land in trial-indexed slots
  // and the median aggregation below is order-insensitive anyway.
  struct TrialSeconds {
    std::vector<double> PerConfig;
    std::vector<uint64_t> Hot, Cold;
    uint64_t Events = 0;
  };
  std::vector<TrialSeconds> PerTrial =
      parallelMap(Jobs, Trials, [&](size_t Trial) {
        uint64_t Seed = deriveTrialSeed(BaseSeed, Trial);
        Trace T = generateTrace(Workload, Seed);
        std::optional<TraceIndex> Index;
        if (SharedIndexShards != 0)
          Index.emplace(TraceIndex::build(T, SharedIndexShards));
        TrialSeconds Out;
        Out.Events = T.size();
        Out.PerConfig.reserve(Active->size());
        for (const OverheadConfig &Config : *Active) {
          AnalysisRequest Request;
          Request.Setup = Config.Setup;
          Request.Seed = Seed;
          Request.CollectReports = false; // Timing only; skip report copies.
          AnalysisResult Result =
              AnalysisSession(Workload, Request)
                  .analyzeTrace(T, Index ? &*Index : nullptr);
          Out.PerConfig.push_back(Result.ReplaySeconds);
          Out.Hot.push_back(Result.HotAccesses);
          Out.Cold.push_back(Result.ColdAccesses);
        }
        return Out;
      });

  std::vector<std::vector<double>> Seconds(Configs.size());
  std::vector<uint64_t> Hot(Configs.size(), 0), Cold(Configs.size(), 0);
  uint64_t TotalEvents = 0;
  for (const TrialSeconds &Trial : PerTrial) {
    TotalEvents += Trial.Events;
    for (size_t I = 0; I != Configs.size(); ++I) {
      Seconds[I].push_back(Trial.PerConfig[I]);
      Hot[I] += Trial.Hot[I];
      Cold[I] += Trial.Cold[I];
    }
  }

  double AvgEvents = Trials == 0 ? 0.0
                                 : static_cast<double>(TotalEvents) /
                                       static_cast<double>(Trials);
  std::vector<OverheadResult> Results;
  double Baseline = 0.0;
  for (size_t I = 0; I != Configs.size(); ++I) {
    OverheadResult Result;
    Result.Label = Configs[I].Label;
    Result.MedianSeconds = median(Seconds[I]);
    if (I == 0)
      Baseline = Result.MedianSeconds;
    Result.Slowdown =
        Baseline > 0.0 ? Result.MedianSeconds / Baseline : 1.0;
    Result.EventsPerSecond = Result.MedianSeconds > 0.0
                                 ? AvgEvents / Result.MedianSeconds
                                 : 0.0;
    Result.HotAccesses = Hot[I];
    Result.ColdAccesses = Cold[I];
    Results.push_back(Result);
  }
  return Results;
}

std::vector<OverheadConfig>
pacer::figure7Configs(const std::vector<double> &Rates) {
  std::vector<OverheadConfig> Configs;
  Configs.push_back({"base", nullSetup()});

  // "OM + sync ops, r=0%": synchronization instrumentation only; all
  // vector-clock operations use fast joins and shallow copies.
  DetectorSetup SyncOnly = pacerSetup(0.0);
  SyncOnly.Pacer.InstrumentReadsWrites = false;
  Configs.push_back({"OM + sync ops, r=0%", SyncOnly});

  // "Pacer, r=0%": read/write instrumentation inserted but never sampled;
  // measures the inlined fast-path check.
  Configs.push_back({"Pacer, r=0%", pacerSetup(0.0)});

  for (double Rate : Rates) {
    char Label[48];
    std::snprintf(Label, sizeof(Label), "Pacer, r=%g%%", Rate * 100.0);
    Configs.push_back({Label, pacerSetup(Rate)});
  }
  return Configs;
}
