//===- harness/OverheadExperiment.cpp -------------------------------------==//

#include "harness/OverheadExperiment.h"

#include "sim/TraceGenerator.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <cstdio>

using namespace pacer;

std::vector<OverheadResult>
pacer::measureOverheads(const CompiledWorkload &Workload,
                        const std::vector<OverheadConfig> &Configs,
                        uint32_t Trials, uint64_t BaseSeed, unsigned Jobs) {
  // One repetition = generate the trial's trace, then time every
  // configuration on that identical trace. Repetitions are independent,
  // so they parallelize; per-trial seconds land in trial-indexed slots
  // and the median aggregation below is order-insensitive anyway.
  struct TrialSeconds {
    std::vector<double> PerConfig;
    uint64_t Events = 0;
  };
  std::vector<TrialSeconds> PerTrial =
      parallelMap(Jobs, Trials, [&](size_t Trial) {
        uint64_t Seed = deriveTrialSeed(BaseSeed, Trial);
        Trace T = generateTrace(Workload, Seed);
        TrialSeconds Out;
        Out.Events = T.size();
        Out.PerConfig.reserve(Configs.size());
        for (const OverheadConfig &Config : Configs)
          Out.PerConfig.push_back(
              runTrialOnTrace(T, Workload, Config.Setup, Seed)
                  .ReplaySeconds);
        return Out;
      });

  std::vector<std::vector<double>> Seconds(Configs.size());
  uint64_t TotalEvents = 0;
  for (const TrialSeconds &Trial : PerTrial) {
    TotalEvents += Trial.Events;
    for (size_t I = 0; I != Configs.size(); ++I)
      Seconds[I].push_back(Trial.PerConfig[I]);
  }

  double AvgEvents = Trials == 0 ? 0.0
                                 : static_cast<double>(TotalEvents) /
                                       static_cast<double>(Trials);
  std::vector<OverheadResult> Results;
  double Baseline = 0.0;
  for (size_t I = 0; I != Configs.size(); ++I) {
    OverheadResult Result;
    Result.Label = Configs[I].Label;
    Result.MedianSeconds = median(Seconds[I]);
    if (I == 0)
      Baseline = Result.MedianSeconds;
    Result.Slowdown =
        Baseline > 0.0 ? Result.MedianSeconds / Baseline : 1.0;
    Result.EventsPerSecond = Result.MedianSeconds > 0.0
                                 ? AvgEvents / Result.MedianSeconds
                                 : 0.0;
    Results.push_back(Result);
  }
  return Results;
}

std::vector<OverheadConfig>
pacer::figure7Configs(const std::vector<double> &Rates) {
  std::vector<OverheadConfig> Configs;
  Configs.push_back({"base", nullSetup()});

  // "OM + sync ops, r=0%": synchronization instrumentation only; all
  // vector-clock operations use fast joins and shallow copies.
  DetectorSetup SyncOnly = pacerSetup(0.0);
  SyncOnly.Pacer.InstrumentReadsWrites = false;
  Configs.push_back({"OM + sync ops, r=0%", SyncOnly});

  // "Pacer, r=0%": read/write instrumentation inserted but never sampled;
  // measures the inlined fast-path check.
  Configs.push_back({"Pacer, r=0%", pacerSetup(0.0)});

  for (double Rate : Rates) {
    char Label[48];
    std::snprintf(Label, sizeof(Label), "Pacer, r=%g%%", Rate * 100.0);
    Configs.push_back({Label, pacerSetup(Rate)});
  }
  return Configs;
}
