//===- harness/TrialRunner.h - One workload/detector trial -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility wrappers over runtime/AnalysisSession.h, which now owns
/// the replay facade (DetectorSetup, TrialResult, and the unified
/// AnalysisRequest -> AnalysisResult entry points). The free functions
/// below are the original harness API -- generate-and-replay, replay a
/// pre-generated trace, replay from a bounded-window reader -- and each
/// simply builds a session and converts its AnalysisResult back to the
/// legacy TrialResult. Results are bit-identical to pre-facade builds;
/// new code should construct an AnalysisSession directly.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_HARNESS_TRIALRUNNER_H
#define PACER_HARNESS_TRIALRUNNER_H

#include "runtime/AnalysisSession.h"

namespace pacer {

/// Generates trial \p TrialSeed's trace and replays it
/// (AnalysisSession::analyzeGenerated).
TrialResult runTrial(const CompiledWorkload &Workload,
                     const DetectorSetup &Setup, uint64_t TrialSeed);

/// Replays a pre-generated trace (AnalysisSession::analyzeTrace; see its
/// doc comment for the TraceSpan / index-reuse / ElideLocalAccesses
/// contract).
TrialResult runTrialOnTrace(TraceSpan T, const CompiledWorkload &Workload,
                            const DetectorSetup &Setup, uint64_t TrialSeed,
                            const TraceIndex *Index = nullptr);

/// Replays a trace from \p Reader's bounded window
/// (AnalysisSession::analyzeStream): peak trace-resident memory is
/// O(window), the result is bit-identical to runTrialOnTrace on the same
/// trace, and Setup.Shards is ignored (sharded replicas need random
/// access; see DESIGN.md §6e). Reader failure surfaces through \p Error
/// (cleared on success), with the returned TrialResult covering the
/// prefix replayed.
TrialResult runTrialOnStream(StreamingTraceReader &Reader,
                             const CompiledWorkload &Workload,
                             const DetectorSetup &Setup, uint64_t TrialSeed,
                             std::string *Error = nullptr);

} // namespace pacer

#endif // PACER_HARNESS_TRIALRUNNER_H
