//===- harness/TrialRunner.h - One workload/detector trial -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one trial: generate the trace for a seed, replay it through a
/// configured detector (optionally under a sampling controller), and
/// collect every measurement the evaluation needs: per-distinct-race
/// dynamic counts, operation statistics (Table 3), effective sampling
/// rates (Table 1), replay time (Figures 7-9), and final metadata bytes.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_HARNESS_TRIALRUNNER_H
#define PACER_HARNESS_TRIALRUNNER_H

#include "detectors/Detector.h"
#include "detectors/FastTrackDetector.h"
#include "detectors/LiteRaceDetector.h"
#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "runtime/SamplingController.h"
#include "sim/WorkloadSpec.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace pacer {

class TraceIndex;

/// Which algorithm a trial runs.
enum class DetectorKind : uint8_t {
  Null,      ///< No analysis (timing baseline).
  Generic,   ///< O(n) vector clocks (Section 2.1).
  FastTrack, ///< Epoch-optimized (Section 2.2).
  Pacer,     ///< Sampling (Section 3); rate from SamplingRate.
  LiteRace,  ///< Code-sampling baseline (Section 5.3).
};

/// Returns "null", "generic", etc.
const char *detectorKindName(DetectorKind Kind);

/// Full configuration of a trial's detector.
struct DetectorSetup {
  DetectorKind Kind = DetectorKind::Pacer;
  /// PACER's specified sampling rate r (0..1); copied into Sampling.
  double SamplingRate = 1.0;
  /// Model the compiler pass's static escape analysis (Section 4): do not
  /// instrument accesses to provably thread-local variables at all. Off
  /// by default so detectors see every access; enabling is sound (locals
  /// never race) and removes their instrumentation cost.
  bool ElideLocalAccesses = false;
  /// Accordion thread-slot recycling (core/SlotRecycler.h) for whichever
  /// detector runs: OR'd into the per-detector config in makeDetector.
  /// Race reports are identical with it on or off; clocks and metadata
  /// stay O(live threads) instead of O(threads ever started).
  bool AccordionClocks = false;
  PacerConfig Pacer;
  FastTrackConfig FastTrack;
  LiteRaceConfig LiteRace;
  SamplingConfig Sampling;
  /// Intra-trial sharded replay: partition data accesses across this many
  /// detector replicas by VarId modulo (see runtime/ShardedReplay.h). 1 is
  /// plain sequential replay; 0 picks a count automatically from the
  /// trace's access count and the hardware (runtime/TraceIndex.h's
  /// autoShardCount). Results are bit-identical for every value.
  unsigned Shards = 1;
  /// Worker concurrency for sharded replay; 0 = one job per shard.
  unsigned ShardJobs = 0;
  /// Drive sharded replicas through a TraceIndex (the O(sync + owned
  /// accesses) engine) instead of full-trace re-scans; results are
  /// identical either way.
  bool ShardUseIndex = true;
};

/// Convenience constructors for common configurations.
DetectorSetup pacerSetup(double Rate);
DetectorSetup fastTrackSetup();
DetectorSetup genericSetup();
DetectorSetup literaceSetup(uint32_t BurstLength = 1000);
DetectorSetup nullSetup();

/// Instantiates the configured detector. \p Seed feeds stochastic
/// detectors (LiteRace's randomized counter resets).
std::unique_ptr<Detector> makeDetector(const DetectorSetup &Setup,
                                       RaceSink &Sink,
                                       const CompiledWorkload &Workload,
                                       uint64_t Seed);

/// Everything measured in one trial.
struct TrialResult {
  std::unordered_map<RaceKey, uint64_t> Races; ///< Distinct -> dynamic.
  uint64_t DynamicRaces = 0;
  DetectorStats Stats;
  double EffectiveAccessRate = 0.0; ///< PACER only.
  double EffectiveSyncRate = 0.0;   ///< PACER only.
  double LiteRaceEffectiveRate = 0.0;
  uint64_t Boundaries = 0;
  uint64_t TraceEvents = 0;
  double ReplaySeconds = 0.0;
  size_t FinalMetadataBytes = 0;
  /// High-water thread-slot count (replica 0 under sharded replay).
  /// Without recycling this is the number of threads ever started; with
  /// it, the live-thread high-water mark between compactions.
  size_t PeakSlotCount = 0;

  bool sawRace(RaceKey Key) const { return Races.count(Key) != 0; }
  uint64_t dynamicCount(RaceKey Key) const {
    auto It = Races.find(Key);
    return It == Races.end() ? 0 : It->second;
  }
};

/// Generates trial \p TrialSeed's trace and replays it.
TrialResult runTrial(const CompiledWorkload &Workload,
                     const DetectorSetup &Setup, uint64_t TrialSeed);

/// Replays a pre-generated trace (for timing comparisons where every
/// configuration must see the identical execution). \p T may be an
/// in-memory Trace or a memory-mapped TraceView span -- analysis never
/// copies it. \p Index, when non-null, must have been built from \p T; it
/// is reused if its shard count matches the resolved Setup.Shards
/// (amortizing one build across trials and detector configurations) and
/// ignored otherwise. With Setup.ElideLocalAccesses the replayed trace
/// differs from \p T, so a caller index is never applicable and is
/// dropped.
TrialResult runTrialOnTrace(TraceSpan T, const CompiledWorkload &Workload,
                            const DetectorSetup &Setup, uint64_t TrialSeed,
                            const TraceIndex *Index = nullptr);

class StreamingTraceReader;

/// Replays a trace from \p Reader's bounded window: peak trace-resident
/// memory is O(window), not O(trace), and the TrialResult is bit-identical
/// to runTrialOnTrace on the same trace (chunk edges only split access
/// batches). The streaming path is sequential -- Setup.Shards is ignored
/// (sharded replicas need random access; see DESIGN.md §6e). Returns a
/// default TrialResult with Ok=false semantics via \p Error when the
/// reader fails mid-stream (Error is cleared on success).
TrialResult runTrialOnStream(StreamingTraceReader &Reader,
                             const CompiledWorkload &Workload,
                             const DetectorSetup &Setup, uint64_t TrialSeed,
                             std::string *Error = nullptr);

} // namespace pacer

#endif // PACER_HARNESS_TRIALRUNNER_H
