//===- harness/DetectionExperiment.cpp ------------------------------------==//

#include "harness/DetectionExperiment.h"

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace pacer;

uint32_t GroundTruth::racesSeenAtLeast(uint32_t MinTrials) const {
  uint32_t Count = 0;
  for (const RaceOccurrence &Race : AllRaces)
    if (Race.TrialsSeen >= MinTrials)
      ++Count;
  return Count;
}

GroundTruth pacer::computeGroundTruth(const CompiledWorkload &Workload,
                                      uint32_t FullTrials,
                                      uint64_t BaseSeed, unsigned Jobs) {
  GroundTruth Truth;
  Truth.FullTrials = FullTrials;

  // Each trial is an independent pure function of its seed; run them
  // concurrently, then aggregate the index-ordered results exactly as the
  // serial loop would have.
  std::vector<TrialResult> Results =
      parallelMap(Jobs, FullTrials, [&](size_t Trial) {
        return runTrial(Workload, fastTrackSetup(),
                        deriveTrialSeed(BaseSeed, Trial));
      });

  std::map<RaceKey, std::pair<uint32_t, uint64_t>> Seen; // trials, dynamic
  for (const TrialResult &Result : Results) {
    for (const auto &[Key, Count] : Result.Races) {
      auto &[Trials, Dynamic] = Seen[Key];
      ++Trials;
      Dynamic += Count;
    }
  }

  for (const auto &[Key, Data] : Seen) {
    RaceOccurrence Race;
    Race.Key = Key;
    Race.TrialsSeen = Data.first;
    Race.AvgDynamicPerTrial =
        static_cast<double>(Data.second) / static_cast<double>(FullTrials);
    Truth.AllRaces.push_back(Race);
    if (Race.TrialsSeen * 2 >= FullTrials)
      Truth.EvaluationRaces.push_back(Race);
  }
  return Truth;
}

DetectionPoint pacer::measureDetection(const CompiledWorkload &Workload,
                                       const GroundTruth &Truth,
                                       const DetectorSetup &Setup,
                                       uint32_t Trials, uint64_t BaseSeed,
                                       unsigned Jobs) {
  DetectionPoint Point;
  Point.SpecifiedRate = Setup.SamplingRate;
  Point.Trials = Trials;

  size_t NumEval = Truth.EvaluationRaces.size();
  std::vector<uint64_t> DynamicTotals(NumEval, 0);
  std::vector<uint32_t> TrialsDetected(NumEval, 0);
  RunningStat EffectiveRate;

  std::vector<TrialResult> Results =
      parallelMap(Jobs, Trials, [&](size_t Trial) {
        // Salted so detection trials draw from a seed family disjoint
        // from the ground-truth trials of the same base seed.
        uint64_t Seed =
            deriveTrialSeed(BaseSeed, Trial, 0x44455443ull /*"DETC"*/);
        return runTrial(Workload, Setup, Seed);
      });

  // Aggregate in seed order: the Welford accumulator's result depends on
  // insertion order, so walking the ordered results keeps every Jobs
  // value bit-identical to the serial loop.
  for (const TrialResult &Result : Results) {
    for (size_t I = 0; I != NumEval; ++I) {
      RaceKey Key = Truth.EvaluationRaces[I].Key;
      uint64_t Count = Result.dynamicCount(Key);
      DynamicTotals[I] += Count;
      if (Count > 0)
        ++TrialsDetected[I];
    }
    if (Setup.Kind == DetectorKind::Pacer)
      EffectiveRate.add(Result.EffectiveAccessRate);
    else if (Setup.Kind == DetectorKind::LiteRace)
      EffectiveRate.add(Result.LiteRaceEffectiveRate);
  }

  double DynamicSum = 0.0;
  double DistinctSum = 0.0;
  Point.PerRaceDistinctRate.resize(NumEval, 0.0);
  for (size_t I = 0; I != NumEval; ++I) {
    const RaceOccurrence &Race = Truth.EvaluationRaces[I];
    double AvgDynamicAtRate =
        static_cast<double>(DynamicTotals[I]) / std::max(1u, Trials);
    double DynamicRate = Race.AvgDynamicPerTrial > 0.0
                             ? AvgDynamicAtRate / Race.AvgDynamicPerTrial
                             : 0.0;
    double FracAt100 = static_cast<double>(Race.TrialsSeen) /
                       static_cast<double>(Truth.FullTrials);
    double FracAtRate =
        static_cast<double>(TrialsDetected[I]) / std::max(1u, Trials);
    double DistinctRate = FracAt100 > 0.0 ? FracAtRate / FracAt100 : 0.0;

    DynamicSum += DynamicRate;
    DistinctSum += DistinctRate;
    Point.PerRaceDistinctRate[I] = DistinctRate;
    if (TrialsDetected[I] == 0)
      ++Point.EvaluationRacesMissed;
  }
  if (NumEval > 0) {
    Point.DynamicDetectionRate = DynamicSum / static_cast<double>(NumEval);
    Point.DistinctDetectionRate = DistinctSum / static_cast<double>(NumEval);
  }
  Point.EffectiveRateMean = EffectiveRate.mean();
  Point.EffectiveRateStddev = EffectiveRate.stddev();
  return Point;
}

uint32_t pacer::numTrialsForRate(double Rate, double Scale,
                                 uint32_t MinTrials, uint32_t MaxTrials) {
  if (Rate <= 0.0)
    return MinTrials;
  auto Wanted = static_cast<uint32_t>(std::ceil(Scale / Rate));
  return std::min(std::max(Wanted, MinTrials), MaxTrials);
}
