//===- harness/TrialRunner.cpp --------------------------------------------==//

#include "harness/TrialRunner.h"

using namespace pacer;

static AnalysisRequest legacyRequest(const DetectorSetup &Setup,
                                     uint64_t TrialSeed) {
  AnalysisRequest Request;
  Request.Setup = Setup;
  Request.Seed = TrialSeed;
  // The legacy TrialResult carries no sample reports; skip collecting.
  Request.CollectReports = false;
  return Request;
}

TrialResult pacer::runTrial(const CompiledWorkload &Workload,
                            const DetectorSetup &Setup, uint64_t TrialSeed) {
  return AnalysisSession(Workload, legacyRequest(Setup, TrialSeed))
      .analyzeGenerated()
      .trial();
}

TrialResult pacer::runTrialOnTrace(TraceSpan T,
                                   const CompiledWorkload &Workload,
                                   const DetectorSetup &Setup,
                                   uint64_t TrialSeed,
                                   const TraceIndex *Index) {
  return AnalysisSession(Workload, legacyRequest(Setup, TrialSeed))
      .analyzeTrace(T, Index)
      .trial();
}

TrialResult pacer::runTrialOnStream(StreamingTraceReader &Reader,
                                    const CompiledWorkload &Workload,
                                    const DetectorSetup &Setup,
                                    uint64_t TrialSeed, std::string *Error) {
  AnalysisResult Result =
      AnalysisSession(Workload, legacyRequest(Setup, TrialSeed))
          .analyzeStream(Reader);
  if (Error)
    *Error = Result.Ok ? std::string() : Result.Error;
  return Result.trial();
}
