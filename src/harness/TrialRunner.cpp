//===- harness/TrialRunner.cpp --------------------------------------------==//

#include "harness/TrialRunner.h"

#include "detectors/GenericDetector.h"
#include "runtime/Runtime.h"
#include "runtime/ShardedReplay.h"
#include "runtime/TraceIndex.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "support/Error.h"

#include <chrono>
#include <optional>

using namespace pacer;

const char *pacer::detectorKindName(DetectorKind Kind) {
  switch (Kind) {
  case DetectorKind::Null:
    return "null";
  case DetectorKind::Generic:
    return "generic";
  case DetectorKind::FastTrack:
    return "fasttrack";
  case DetectorKind::Pacer:
    return "pacer";
  case DetectorKind::LiteRace:
    return "literace";
  }
  return "?";
}

DetectorSetup pacer::pacerSetup(double Rate) {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Pacer;
  Setup.SamplingRate = Rate;
  return Setup;
}

DetectorSetup pacer::fastTrackSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::FastTrack;
  return Setup;
}

DetectorSetup pacer::genericSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Generic;
  return Setup;
}

DetectorSetup pacer::literaceSetup(uint32_t BurstLength) {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::LiteRace;
  Setup.LiteRace.BurstLength = BurstLength;
  return Setup;
}

DetectorSetup pacer::nullSetup() {
  DetectorSetup Setup;
  Setup.Kind = DetectorKind::Null;
  return Setup;
}

std::unique_ptr<Detector> pacer::makeDetector(const DetectorSetup &Setup,
                                              RaceSink &Sink,
                                              const CompiledWorkload &Workload,
                                              uint64_t Seed) {
  switch (Setup.Kind) {
  case DetectorKind::Null:
    return std::make_unique<NullDetector>(Sink);
  case DetectorKind::Generic: {
    GenericConfig Config;
    Config.UseAccordionClocks = Setup.AccordionClocks;
    return std::make_unique<GenericDetector>(Sink, Config);
  }
  case DetectorKind::FastTrack: {
    FastTrackConfig Config = Setup.FastTrack;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    return std::make_unique<FastTrackDetector>(Sink, Config);
  }
  case DetectorKind::Pacer: {
    PacerConfig Config = Setup.Pacer;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    return std::make_unique<PacerDetector>(Sink, Config);
  }
  case DetectorKind::LiteRace: {
    LiteRaceConfig Config = Setup.LiteRace;
    Config.UseAccordionClocks |= Setup.AccordionClocks;
    return std::make_unique<LiteRaceDetector>(Sink, Workload.siteToMethod(),
                                              Seed ^ 0x4c495445u /*"LITE"*/,
                                              Config);
  }
  }
  pacerUnreachable("unknown detector kind");
}

TrialResult pacer::runTrial(const CompiledWorkload &Workload,
                            const DetectorSetup &Setup, uint64_t TrialSeed) {
  Trace T = generateTrace(Workload, TrialSeed);
  return runTrialOnTrace(T, Workload, Setup, TrialSeed);
}

TrialResult pacer::runTrialOnTrace(TraceSpan T,
                                   const CompiledWorkload &Workload,
                                   const DetectorSetup &Setup,
                                   uint64_t TrialSeed,
                                   const TraceIndex *Index) {
  // The escape-analysis pass removed instrumentation from thread-local
  // accesses: they execute (cost nothing here) but are never analysed.
  // Filtering up front keeps the replay path -- sequential or sharded --
  // identical to a trace that never contained them.
  TraceSpan Replay = T;
  Trace Filtered;
  if (Setup.ElideLocalAccesses) {
    Filtered.reserve(T.size());
    for (const Action &A : T)
      if (!(isAccessAction(A.Kind) && Workload.isLocalVar(A.Target)))
        Filtered.push_back(A);
    Replay = Filtered;
    Index = nullptr; // A caller index describes T, not the filtered trace.
  }

  TrialResult Result;
  Result.TraceEvents = T.size();

  const unsigned Shards =
      Setup.Shards != 0
          ? Setup.Shards
          : resolveShardCount(0, Index ? Index->accessCount()
                                       : countTraceAccesses(Replay));

  if (Shards > 1) {
    ShardedReplayConfig Config;
    Config.Shards = Shards;
    Config.Jobs = Setup.ShardJobs;
    Config.UseIndex = Setup.ShardUseIndex;
    Config.Index = Index;
    if (Setup.Kind == DetectorKind::Pacer) {
      Config.UseController = true;
      Config.Sampling = Setup.Sampling;
      Config.Sampling.TargetRate = Setup.SamplingRate;
      Config.ControllerSeed = TrialSeed ^ 0x47432121u /*"GC!!"*/;
    }
    // LiteRace's bursty samplers are code-indexed, so a replica would
    // otherwise need the full access stream just to keep its sampling
    // decisions replica-identical. Precompute the decision stream once
    // (it is a pure function of the filtered trace, the seed and the
    // config) and share it read-only: every replica becomes shard-local
    // and the index can feed it owned-access runs only.
    std::optional<LiteRaceSamplerPlan> LiteRacePlan;
    if (Setup.Kind == DetectorKind::LiteRace)
      LiteRacePlan = LiteRaceDetector::computeSamplerPlan(
          Replay, Workload.siteToMethod(), TrialSeed ^ 0x4c495445u /*"LITE"*/,
          Setup.LiteRace);
    DetectorFactory Factory = [&](RaceSink &Sink) {
      std::unique_ptr<Detector> D =
          makeDetector(Setup, Sink, Workload, TrialSeed);
      if (LiteRacePlan)
        static_cast<LiteRaceDetector &>(*D).setSamplerPlan(&*LiteRacePlan);
      return D;
    };
    auto Start = std::chrono::steady_clock::now();
    ShardedReplayResult Sharded = shardedReplay(Replay, Factory, Config);
    auto End = std::chrono::steady_clock::now();
    Result.Races = std::move(Sharded.Races);
    Result.DynamicRaces = Sharded.DynamicRaces;
    Result.Stats = Sharded.Stats;
    Result.EffectiveAccessRate = Sharded.EffectiveAccessRate;
    Result.EffectiveSyncRate = Sharded.EffectiveSyncRate;
    Result.Boundaries = Sharded.Boundaries;
    if (Setup.Kind == DetectorKind::LiteRace)
      Result.LiteRaceEffectiveRate =
          LiteRaceDetector::effectiveRateFromStats(Result.Stats);
    Result.ReplaySeconds =
        std::chrono::duration<double>(End - Start).count();
    Result.FinalMetadataBytes = Sharded.FinalMetadataBytes;
    Result.PeakSlotCount = Sharded.PeakSlotCount;
    return Result;
  }

  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Workload, TrialSeed);

  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(
        Sampling, TrialSeed ^ 0x47432121u /*"GC!!"*/);
  }

  Runtime RT(*D, Controller.get());
  auto Start = std::chrono::steady_clock::now();
  RT.replay(Replay);
  auto End = std::chrono::steady_clock::now();

  Result.Races = Log.counts();
  Result.DynamicRaces = Log.dynamicCount();
  Result.Stats = D->stats();
  if (Controller) {
    Result.EffectiveAccessRate = Controller->effectiveAccessRate();
    Result.EffectiveSyncRate = Controller->effectiveSyncRate();
    Result.Boundaries = Controller->boundaryCount();
  }
  if (Setup.Kind == DetectorKind::LiteRace)
    Result.LiteRaceEffectiveRate =
        static_cast<LiteRaceDetector *>(D.get())->effectiveRate();
  Result.ReplaySeconds =
      std::chrono::duration<double>(End - Start).count();
  Result.FinalMetadataBytes = D->liveMetadataBytes();
  Result.PeakSlotCount = D->peakSlotCount();
  return Result;
}

TrialResult pacer::runTrialOnStream(StreamingTraceReader &Reader,
                                    const CompiledWorkload &Workload,
                                    const DetectorSetup &Setup,
                                    uint64_t TrialSeed, std::string *Error) {
  if (Error)
    Error->clear();

  TrialResult Result;

  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Workload, TrialSeed);

  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(
        Sampling, TrialSeed ^ 0x47432121u /*"GC!!"*/);
  }

  Runtime RT(*D, Controller.get());
  Trace Filtered; // Reused per-chunk scratch under ElideLocalAccesses.
  auto Start = std::chrono::steady_clock::now();
  RT.start();
  for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
       Chunk = Reader.next()) {
    Result.TraceEvents += Chunk.size();
    TraceSpan Replay = Chunk;
    if (Setup.ElideLocalAccesses) {
      Filtered.clear();
      for (const Action &A : Chunk)
        if (!(isAccessAction(A.Kind) && Workload.isLocalVar(A.Target)))
          Filtered.push_back(A);
      Replay = Filtered;
    }
    RT.replayChunk(Replay, AccessShard::all());
  }
  auto End = std::chrono::steady_clock::now();

  if (!Reader.ok()) {
    if (Error)
      *Error = Reader.error();
    return Result;
  }

  Result.Races = Log.counts();
  Result.DynamicRaces = Log.dynamicCount();
  Result.Stats = D->stats();
  if (Controller) {
    Result.EffectiveAccessRate = Controller->effectiveAccessRate();
    Result.EffectiveSyncRate = Controller->effectiveSyncRate();
    Result.Boundaries = Controller->boundaryCount();
  }
  if (Setup.Kind == DetectorKind::LiteRace)
    Result.LiteRaceEffectiveRate =
        static_cast<LiteRaceDetector *>(D.get())->effectiveRate();
  Result.ReplaySeconds =
      std::chrono::duration<double>(End - Start).count();
  Result.FinalMetadataBytes = D->liveMetadataBytes();
  Result.PeakSlotCount = D->peakSlotCount();
  return Result;
}
