//===- harness/DetectionExperiment.h - Detection-rate studies --*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accuracy methodology of the paper's Section 5.1-5.3:
///
///  1. Ground truth: run the fully accurate detector (FastTrack; PACER at
///     r = 100% is provably identical) on N full trials; record, per
///     distinct race, how many trials it occurred in and its average
///     dynamic count. *Evaluation races* are those occurring in at least
///     half of the full trials.
///  2. For each sampling rate r, run numTrials(r) sampled trials and
///     measure, per evaluation race, the dynamic detection rate (average
///     dynamic reports at r over average at 100%) and the distinct
///     detection rate (fraction of trials reporting the race at r over the
///     fraction at 100%). Figure 3 averages the former, Figure 4 the
///     latter, and Figure 5 plots the per-race curves sorted by rate.
///
/// The same machinery runs LiteRace for Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_HARNESS_DETECTIONEXPERIMENT_H
#define PACER_HARNESS_DETECTIONEXPERIMENT_H

#include "harness/TrialRunner.h"

#include <vector>

namespace pacer {

/// Ground-truth occurrence data for one distinct race.
struct RaceOccurrence {
  RaceKey Key;
  uint32_t TrialsSeen = 0;         ///< Of the full trials.
  double AvgDynamicPerTrial = 0.0; ///< Mean over all full trials.
};

/// Output of the fully sampled calibration runs.
struct GroundTruth {
  uint32_t FullTrials = 0;
  std::vector<RaceOccurrence> AllRaces;      ///< Seen at least once.
  std::vector<RaceOccurrence> EvaluationRaces; ///< Seen in >= half.

  /// Races seen in at least \p MinTrials of the full trials (Table 2's
  /// ">= 1 / >= 5 / >= 25" columns).
  uint32_t racesSeenAtLeast(uint32_t MinTrials) const;
};

/// Runs \p FullTrials fully sampled trials (seeds BaseSeed..+FullTrials-1)
/// with FastTrack and aggregates occurrence statistics. Trials run on
/// \p Jobs-way concurrency (each trial owns its detector, RNG seed, and
/// result) and are aggregated in seed order, so the output is bit-identical
/// for every Jobs value; Jobs <= 1 is the serial loop.
GroundTruth computeGroundTruth(const CompiledWorkload &Workload,
                               uint32_t FullTrials, uint64_t BaseSeed,
                               unsigned Jobs = 1);

/// One rate's measured accuracy.
struct DetectionPoint {
  double SpecifiedRate = 0.0;
  uint32_t Trials = 0;
  /// Unweighted mean over evaluation races of dynamic detection rates
  /// (Figure 3's y-axis).
  double DynamicDetectionRate = 0.0;
  /// Unweighted mean over evaluation races of distinct detection rates
  /// (Figure 4's y-axis).
  double DistinctDetectionRate = 0.0;
  /// Per-evaluation-race distinct detection rates (Figure 5's curves),
  /// aligned with GroundTruth::EvaluationRaces.
  std::vector<double> PerRaceDistinctRate;
  /// Effective sampling rate across trials (Table 1): mean and stddev.
  double EffectiveRateMean = 0.0;
  double EffectiveRateStddev = 0.0;
  /// Races never reported in any trial at this rate.
  uint32_t EvaluationRacesMissed = 0;
};

/// Runs \p Trials sampled trials of \p Setup (seeds disjoint from the
/// ground-truth seeds) and measures detection rates against \p Truth.
/// Trials run on \p Jobs-way concurrency with seed-order aggregation;
/// results are bit-identical for every Jobs value.
DetectionPoint measureDetection(const CompiledWorkload &Workload,
                                const GroundTruth &Truth,
                                const DetectorSetup &Setup, uint32_t Trials,
                                uint64_t BaseSeed, unsigned Jobs = 1);

/// The paper's trial-count formula numTrials(r) = min(max(ceil(S/r), Lo),
/// Hi) with S defaulting to a simulator-friendly 1.0 (the paper uses 10).
uint32_t numTrialsForRate(double Rate, double Scale = 1.0,
                          uint32_t MinTrials = 20, uint32_t MaxTrials = 120);

} // namespace pacer

#endif // PACER_HARNESS_DETECTIONEXPERIMENT_H
