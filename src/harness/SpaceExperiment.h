//===- harness/SpaceExperiment.h - Live-space-over-time probes -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 10 methodology: run one trial per configuration and record
/// the live (reachable) memory after each simulated full-heap collection,
/// over execution time normalized to run length. The measurement models
/// the paper's components: application live bytes, the two header words
/// PACER adds to every object ("OM only"), and the detector's own
/// metadata -- per-variable entries, read maps, and clock payloads with
/// shared payloads counted once.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_HARNESS_SPACEEXPERIMENT_H
#define PACER_HARNESS_SPACEEXPERIMENT_H

#include "harness/TrialRunner.h"

#include <string>
#include <vector>

namespace pacer {

/// One configuration's space-over-time series.
struct SpaceSeries {
  std::string Label;
  /// Normalized execution time of each probe in [0, 1].
  std::vector<double> NormalizedTime;
  /// Modelled total live bytes at each probe.
  std::vector<size_t> Bytes;

  size_t peakBytes() const;
  double meanBytes() const;
};

/// Space-model parameters.
struct SpaceModel {
  /// Live application bytes per object (the workload's variables grouped
  /// eight fields to an object).
  uint32_t AppBytesPerObject = 48;
  /// Header words a detector-enabled VM adds per object (Section 4 adds
  /// two words to every object header).
  uint32_t HeaderWordsPerObject = 2;
  /// Simulated application growth: extra live bytes accumulated per event,
  /// reproducing eclipse's "memory usage increases somewhat over time".
  double AppGrowthBytesPerEvent = 0.02;
};

/// Replays one trial of \p Setup, probing modelled live bytes \p Probes
/// times. \p IncludeHeaderWords is false only for the unmodified-VM
/// baseline.
SpaceSeries measureSpace(const CompiledWorkload &Workload,
                         const DetectorSetup &Setup, const std::string &Label,
                         uint32_t Probes, uint64_t Seed,
                         bool IncludeHeaderWords,
                         const SpaceModel &Model = {});

} // namespace pacer

#endif // PACER_HARNESS_SPACEEXPERIMENT_H
