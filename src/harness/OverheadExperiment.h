//===- harness/OverheadExperiment.h - Timing comparisons -------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures detector analysis cost (Figures 7-9): every configuration
/// replays the *identical* traces (the same trial seeds), and each trial's
/// replay is wall-clock timed; the per-configuration cost is the median
/// over trials, as in the paper ("each sub-bar is the median of 10
/// trials"). Slowdowns are normalized to the no-analysis baseline, which
/// plays the role of unmodified Jikes RVM.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_HARNESS_OVERHEADEXPERIMENT_H
#define PACER_HARNESS_OVERHEADEXPERIMENT_H

#include "harness/TrialRunner.h"

#include <string>
#include <vector>

namespace pacer {

/// A labelled configuration to time.
struct OverheadConfig {
  std::string Label;
  DetectorSetup Setup;
};

/// Timing result for one configuration.
struct OverheadResult {
  std::string Label;
  double MedianSeconds = 0.0;
  /// MedianSeconds over the first (baseline) configuration's.
  double Slowdown = 1.0;
  /// Events per second of replay, for absolute context.
  double EventsPerSecond = 0.0;
  /// Accesses analysed within a sampling period (full detection cost) vs
  /// outside one (non-sampling fast path), summed across trials. The split
  /// attributes fig7 overhead growth to sampled work: proportional
  /// detectors keep HotAccesses near rate * total while cold accesses
  /// dominate at low rates.
  uint64_t HotAccesses = 0;
  uint64_t ColdAccesses = 0;
};

/// Times every configuration on the same \p Trials traces. The first
/// configuration is the normalization baseline. \p Jobs parallelizes
/// across trials (each trial generates its trace once and times every
/// configuration on it); keep Jobs = 1 when absolute wall-clock numbers
/// matter, since concurrent trials contend for cores and inflate every
/// configuration's time together. Configurations with Setup.Shards == 0
/// ("auto") are resolved once, from a probe trace, so every trial times
/// the same shard count; when all configurations shard identically over
/// the raw trace, one TraceIndex per trial is built outside the timed
/// regions and shared.
std::vector<OverheadResult>
measureOverheads(const CompiledWorkload &Workload,
                 const std::vector<OverheadConfig> &Configs, uint32_t Trials,
                 uint64_t BaseSeed, unsigned Jobs = 1);

/// The paper's Figure 7 configuration ladder: baseline, "OM + sync ops"
/// (synchronization-only PACER at r=0), PACER r=0 (full instrumentation,
/// never samples), and PACER at each rate in \p Rates.
std::vector<OverheadConfig>
figure7Configs(const std::vector<double> &Rates);

} // namespace pacer

#endif // PACER_HARNESS_OVERHEADEXPERIMENT_H
