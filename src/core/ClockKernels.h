//===- core/ClockKernels.h - Word-parallel clock kernels -------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word-parallel kernels for the three vector-clock inner loops that
/// dominate detector time (pointwise-max join, pointwise <=, copy), plus
/// the tail-trimming scan joinWith needs. VectorClock and SyncClock route
/// every component loop through this layer, so the SIMD width is chosen in
/// exactly one place.
///
/// The implementation selects an ISA at compile time (AVX2, then SSE2,
/// then NEON on aarch64, else scalar); configuring with
/// -DPACER_DISABLE_SIMD=ON forces the scalar path for the whole build.
/// All kernels are exact integer operations -- max, compare, copy -- so
/// every path produces bit-identical results; the differential tests and
/// the setForceScalarForTest hook verify that in-process.
///
/// Alias rules: joinMax requires A and B to not partially overlap (A == B
/// is harmless but pointless); copyWords requires disjoint ranges;
/// remapGather permits Dst == Src only for an ascending in-place pack
/// (Idx[I] >= I for all I), which is exactly the accordion-compaction
/// shape. No kernel requires alignment -- clocks may live at arbitrary
/// offsets inside detector metadata (SSO buffers, arena blocks).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_CLOCKKERNELS_H
#define PACER_CORE_CLOCKKERNELS_H

#include <cstddef>
#include <cstdint>

namespace pacer::kernels {

/// Pointwise maximum of \p B into \p A over \p N components. Returns true
/// iff any component of A increased (the joinWith change-detection bit,
/// Algorithm 11).
bool joinMax(uint32_t *A, const uint32_t *B, size_t N);

/// True iff A[i] <= B[i] for all i in [0, N).
bool allLeq(const uint32_t *A, const uint32_t *B, size_t N);

/// True iff A[i] == 0 for all i in [0, N).
bool allZero(const uint32_t *A, size_t N);

/// Copies \p N components from \p Src to \p Dst (disjoint ranges).
void copyWords(uint32_t *Dst, const uint32_t *Src, size_t N);

/// Returns the smallest M <= N such that A[i] == 0 for all i in [M, N):
/// the stored length of \p A after trimming trailing explicit zeros.
size_t trimTrailingZeros(const uint32_t *A, size_t N);

/// Gathers Dst[i] = Src[Idx[i]] for i in [0, N): the accordion-compaction
/// remap that packs live clock components into a dense prefix. Idx must be
/// strictly ascending when Dst == Src (then Idx[i] >= i, so the in-place
/// pack never reads a component it already overwrote); disjoint Dst/Src
/// have no index constraints.
void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N);

/// Name of the compiled-in kernel ISA ("avx2", "sse2", "neon", "scalar").
/// Reports "scalar" while setForceScalarForTest(true) is in effect.
const char *activeIsa();

/// Test hook: routes every kernel through the scalar reference path so a
/// single binary can compare SIMD and scalar results. Not thread-safe;
/// flip it only from single-threaded test setup/teardown.
void setForceScalarForTest(bool Force);

/// Scalar reference implementations, always compiled, used as the
/// fallback path and by differential tests / benchmark baselines.
bool scalarJoinMax(uint32_t *A, const uint32_t *B, size_t N);
bool scalarAllLeq(const uint32_t *A, const uint32_t *B, size_t N);
bool scalarAllZero(const uint32_t *A, size_t N);
size_t scalarTrimTrailingZeros(const uint32_t *A, size_t N);
void scalarRemapGather(uint32_t *Dst, const uint32_t *Src,
                       const uint32_t *Idx, size_t N);

} // namespace pacer::kernels

#endif // PACER_CORE_CLOCKKERNELS_H
