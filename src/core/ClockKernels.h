//===- core/ClockKernels.h - Word-parallel clock kernels -------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word-parallel kernels for the three vector-clock inner loops that
/// dominate detector time (pointwise-max join, pointwise <=, copy), plus
/// the tail-trimming scan joinWith needs and the accordion remap gather.
/// VectorClock and SyncClock route every component loop through this
/// layer, so the SIMD width is chosen in exactly one place.
///
/// The ISA is selected at **runtime**: every per-ISA implementation that
/// the target can express is compiled into the binary (the AVX2 and
/// AVX-512 kernels get their own -mavx2 / -mavx512f translation units,
/// independent of the base -march), and a one-time CPUID/xgetbv probe
/// picks the best path the executing host and OS actually support. A
/// binary built with baseline -march runs AVX-512 on AVX-512 hosts and
/// degrades to AVX2/SSE2/scalar elsewhere. Configuring
/// with -DPACER_DISABLE_SIMD=ON compiles only the scalar entry, so the
/// dispatcher resolves to scalar no matter what the host offers.
///
/// All kernels are exact integer operations -- max, compare, copy -- so
/// every path produces bit-identical results; the differential tests and
/// the force-ISA hooks verify that in-process. The resolution order is:
/// programmatic force (setForceIsa) > PACER_FORCE_ISA environment variable
/// > best compiled-in path the hardware supports.
///
/// Alias rules: joinMax requires A and B to not partially overlap (A == B
/// is harmless but pointless); copyWords requires disjoint ranges;
/// remapGather permits Dst == Src only for an ascending in-place pack
/// (Idx[I] >= I for all I), which is exactly the accordion-compaction
/// shape. No kernel requires alignment -- clocks may live at arbitrary
/// offsets inside detector metadata (SSO buffers, arena blocks).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_CLOCKKERNELS_H
#define PACER_CORE_CLOCKKERNELS_H

#include <cstddef>
#include <cstdint>

namespace pacer::kernels {

/// The ISA families a kernel implementation can target. Sse2/Avx2/Avx512
/// exist only on x86-64 builds, Neon only on aarch64; Scalar always
/// exists.
enum class Isa : uint8_t { Scalar = 0, Sse2, Neon, Avx2, Avx512 };

/// One dispatch table entry: the kernel function pointers for a single
/// ISA, plus identification. copyWords is not in the table -- it is always
/// memcpy, which libc already dispatches per-ISA on its own.
struct KernelOps {
  Isa Kind;
  const char *Name;
  bool (*JoinMax)(uint32_t *A, const uint32_t *B, size_t N);
  bool (*AllLeq)(const uint32_t *A, const uint32_t *B, size_t N);
  bool (*AllZero)(const uint32_t *A, size_t N);
  size_t (*TrimTrailingZeros)(const uint32_t *A, size_t N);
  void (*RemapGather)(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                      size_t N);
  uint64_t (*GatherEq)(const void *Base, const uint32_t *ByteOff,
                       const uint32_t *Expect, size_t N);
  void (*ProbeTags)(const void *Base, const uint32_t *ByteOff,
                    const uint32_t *Keys, size_t N, uint32_t Empty,
                    uint64_t *HitMask, uint64_t *EmptyMask);
};

/// Pointwise maximum of \p B into \p A over \p N components. Returns true
/// iff any component of A increased (the joinWith change-detection bit,
/// Algorithm 11).
bool joinMax(uint32_t *A, const uint32_t *B, size_t N);

/// True iff A[i] <= B[i] for all i in [0, N).
bool allLeq(const uint32_t *A, const uint32_t *B, size_t N);

/// True iff A[i] == 0 for all i in [0, N).
bool allZero(const uint32_t *A, size_t N);

/// Copies \p N components from \p Src to \p Dst (disjoint ranges).
void copyWords(uint32_t *Dst, const uint32_t *Src, size_t N);

/// Returns the smallest M <= N such that A[i] == 0 for all i in [M, N):
/// the stored length of \p A after trimming trailing explicit zeros.
size_t trimTrailingZeros(const uint32_t *A, size_t N);

/// Gathers Dst[i] = Src[Idx[i]] for i in [0, N): the accordion-compaction
/// remap that packs live clock components into a dense prefix. Idx must be
/// strictly ascending when Dst == Src (then Idx[i] >= i, so the in-place
/// pack never reads a component it already overwrote); disjoint Dst/Src
/// have no index constraints.
void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N);

/// Multi-key equality gather: bit I of the result is set iff the 32-bit
/// word at Base + ByteOff[I] equals Expect[I]. N <= 64; offsets are byte
/// offsets (arbitrary strides, so hash-table slots and struct fields both
/// work) and each Base + ByteOff[I] must be readable and < 2 GiB from
/// Base (the gather index is a signed 32-bit lane). Pure loads + compares,
/// so every ISA path is bit-identical.
uint64_t gatherEq(const void *Base, const uint32_t *ByteOff,
                  const uint32_t *Expect, size_t N);

/// Multi-key hash-slot tag probe: gathers the 32-bit tag at each
/// Base + ByteOff[I] once and reports two masks over the N <= 64 keys --
/// HitMask bit I set iff the tag equals Keys[I] (slot holds the key),
/// EmptyMask bit I set iff the tag equals \p Empty (open-addressing probe
/// terminates: key absent). A key with neither bit set landed on a
/// collision or tombstone and needs the scalar chain walk. Same addressing
/// constraints as gatherEq.
void probeTags(const void *Base, const uint32_t *ByteOff,
               const uint32_t *Keys, size_t N, uint32_t Empty,
               uint64_t *HitMask, uint64_t *EmptyMask);

/// Lowercase name of an ISA ("avx512", "avx2", "sse2", "neon",
/// "scalar").
const char *isaName(Isa Kind);

/// Parses an ISA name (as accepted by PACER_FORCE_ISA, case-sensitive
/// lowercase). Returns false and leaves \p Out untouched on unknown text.
bool parseIsaName(const char *Text, Isa &Out);

/// The best ISA the executing hardware and OS support, independent of what
/// this binary compiled in. One-time probe (CPUID + xgetbv on x86-64 so an
/// OS that never enabled YMM state does not get AVX2), cached thereafter.
Isa detectedIsa();

/// The dispatch table compiled in for \p Kind, or nullptr when this build
/// does not carry that ISA (wrong target, or PACER_DISABLE_SIMD). Scalar
/// is always present. The pointer is valid for the process lifetime; note
/// that calling a compiled-in table on hardware where isaSupported(Kind)
/// is false may execute illegal instructions.
const KernelOps *opsFor(Isa Kind);

/// True iff \p Kind is both compiled into this binary and supported by the
/// executing hardware/OS -- i.e. setForceIsa(Kind) would succeed.
bool isaAvailable(Isa Kind);

/// The ISA the dispatcher currently routes kernels through, after any
/// force override. activeIsa() is its name -- this is the "resolved" path
/// surfaced by micro_ops, racedetect --times, and --cpu-info.
Isa activeIsaKind();
const char *activeIsa();

/// Forces every kernel through \p Kind's path. Returns false (and changes
/// nothing) when the ISA is not available on this build/host. Not
/// thread-safe; flip it only from single-threaded setup/teardown, same
/// contract as setForceScalarForTest always had.
bool setForceIsa(Isa Kind);

/// Drops any programmatic force and re-resolves: PACER_FORCE_ISA if set
/// and available, else the best available path.
void clearForceIsa();

/// Test hook retained from the compile-time-dispatch era: Force=true is
/// setForceIsa(Isa::Scalar), Force=false is clearForceIsa().
void setForceScalarForTest(bool Force);

/// Scalar reference implementations, always compiled, used as the
/// fallback path and by differential tests / benchmark baselines.
bool scalarJoinMax(uint32_t *A, const uint32_t *B, size_t N);
bool scalarAllLeq(const uint32_t *A, const uint32_t *B, size_t N);
bool scalarAllZero(const uint32_t *A, size_t N);
size_t scalarTrimTrailingZeros(const uint32_t *A, size_t N);
void scalarRemapGather(uint32_t *Dst, const uint32_t *Src,
                       const uint32_t *Idx, size_t N);
uint64_t scalarGatherEq(const void *Base, const uint32_t *ByteOff,
                        const uint32_t *Expect, size_t N);
void scalarProbeTags(const void *Base, const uint32_t *ByteOff,
                     const uint32_t *Keys, size_t N, uint32_t Empty,
                     uint64_t *HitMask, uint64_t *EmptyMask);

} // namespace pacer::kernels

#endif // PACER_CORE_CLOCKKERNELS_H
