//===- core/VersionEpoch.h - Version epochs v@t ----------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *version epoch* v@t records that a lock's (or volatile's) clock equals
/// version v of thread t's vector clock (Appendix A.2). The relation
/// v@t <= V holds iff v <= V(t). Two special values exist: the minimal
/// version epoch 0@0 (<= always true; the initial state of every lock and
/// volatile) and the maximal version epoch Top (<= never true; a volatile
/// whose clock is a join of several threads' clocks, Table 7 Rule 9).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_VERSIONEPOCH_H
#define PACER_CORE_VERSIONEPOCH_H

#include "core/Ids.h"
#include "core/VectorClock.h"

namespace pacer {

/// Version epoch with bottom (0@0) and top sentinels.
class VersionEpoch {
public:
  /// Constructs the minimal version epoch 0@0.
  constexpr VersionEpoch() = default;

  /// Constructs v@t.
  static constexpr VersionEpoch make(uint32_t Version, ThreadId Tid) {
    VersionEpoch E;
    E.Version = Version;
    E.Tid = Tid;
    return E;
  }

  /// The maximal version epoch: never precedes any version vector. PACER
  /// represents it with a null pointer; we use a sentinel encoding.
  static constexpr VersionEpoch top() { return make(UINT32_MAX, InvalidId); }

  /// The minimal version epoch 0@0.
  static constexpr VersionEpoch bottom() { return VersionEpoch(); }

  constexpr bool isTop() const { return Tid == InvalidId; }

  constexpr uint32_t version() const { return Version; }
  constexpr ThreadId tid() const { return Tid; }

  /// v@t <= V iff v <= V(t) (Equation 6); Top precedes nothing.
  bool precedes(const VersionVector &V) const {
    if (isTop())
      return false;
    return Version <= V.get(Tid);
  }

  friend constexpr bool operator==(VersionEpoch A, VersionEpoch B) {
    return A.Version == B.Version && A.Tid == B.Tid;
  }

private:
  uint32_t Version = 0;
  ThreadId Tid = 0;
};

} // namespace pacer

#endif // PACER_CORE_VERSIONEPOCH_H
