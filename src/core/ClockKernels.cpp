//===- core/ClockKernels.cpp ----------------------------------------------==//

#include "core/ClockKernels.h"

#include <cstring>

#if !defined(PACER_DISABLE_SIMD)
#if defined(__AVX2__)
#define PACER_KERNELS_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define PACER_KERNELS_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define PACER_KERNELS_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace pacer::kernels {

namespace {

// Single flag, read on every kernel entry: always-taken branch in
// production, flipped only from single-threaded test setup.
bool ForceScalar = false;

} // namespace

void setForceScalarForTest(bool Force) { ForceScalar = Force; }

bool scalarJoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  bool Changed = false;
  for (size_t I = 0; I != N; ++I) {
    if (B[I] > A[I]) {
      A[I] = B[I];
      Changed = true;
    }
  }
  return Changed;
}

bool scalarAllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  for (size_t I = 0; I != N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

bool scalarAllZero(const uint32_t *A, size_t N) {
  for (size_t I = 0; I != N; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

size_t scalarTrimTrailingZeros(const uint32_t *A, size_t N) {
  while (N != 0 && A[N - 1] == 0)
    --N;
  return N;
}

void scalarRemapGather(uint32_t *Dst, const uint32_t *Src,
                       const uint32_t *Idx, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = Src[Idx[I]];
}

#if defined(PACER_KERNELS_AVX2)

const char *activeIsa() { return ForceScalar ? "scalar" : "avx2"; }

bool joinMax(uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarJoinMax(A, B, N);
  size_t I = 0;
  __m256i Diff = _mm256_setzero_si256();
  for (; I + 8 <= N; I += 8) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    __m256i Vm = _mm256_max_epu32(Va, Vb);
    // Vm != Va in a lane iff B > A there, i.e. the join changed A.
    Diff = _mm256_or_si256(Diff, _mm256_xor_si256(Vm, Va));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(A + I), Vm);
  }
  bool Changed = !_mm256_testz_si256(Diff, Diff);
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool allLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarAllLeq(A, B, N);
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    // A <= B per lane iff max(A, B) == B.
    __m256i Le = _mm256_cmpeq_epi32(_mm256_max_epu32(Va, Vb), Vb);
    if (static_cast<uint32_t>(_mm256_movemask_epi8(Le)) != 0xffffffffu)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool allZero(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarAllZero(A, N);
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 8 <= N; I += 8)
    Acc = _mm256_or_si256(
        Acc, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)));
  if (!_mm256_testz_si256(Acc, Acc))
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t trimTrailingZeros(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarTrimTrailingZeros(A, N);
  // Scan backwards a vector at a time; the first non-zero block hands off
  // to the scalar scan for the exact boundary.
  while (N >= 8) {
    __m256i V =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + N - 8));
    if (!_mm256_testz_si256(V, V))
      break;
    N -= 8;
  }
  return scalarTrimTrailingZeros(A, N);
}

void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N) {
  if (ForceScalar)
    return scalarRemapGather(Dst, Src, Idx, N);
  size_t I = 0;
  // In-place packs are safe: Idx ascends with Idx[i] >= i, so each 8-lane
  // gather reads components at or beyond the store cursor.
  for (; I + 8 <= N; I += 8) {
    __m256i Vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Idx + I));
    __m256i Vg = _mm256_i32gather_epi32(reinterpret_cast<const int *>(Src),
                                        Vi, /*Scale=*/4);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), Vg);
  }
  scalarRemapGather(Dst + I, Src, Idx + I, N - I);
}

#elif defined(PACER_KERNELS_SSE2)

const char *activeIsa() { return ForceScalar ? "scalar" : "sse2"; }

namespace {

// SSE2 lacks an unsigned 32-bit max/compare; flipping the sign bit maps
// unsigned order onto the signed compare.
inline __m128i unsignedGt(__m128i A, __m128i B) {
  const __m128i Sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  return _mm_cmpgt_epi32(_mm_xor_si128(A, Sign), _mm_xor_si128(B, Sign));
}

} // namespace

bool joinMax(uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarJoinMax(A, B, N);
  size_t I = 0;
  __m128i AnyGt = _mm_setzero_si128();
  for (; I + 4 <= N; I += 4) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    __m128i Gt = unsignedGt(Vb, Va); // Lanes where B > A: the join changes A.
    __m128i Vm = _mm_or_si128(_mm_and_si128(Gt, Vb), _mm_andnot_si128(Gt, Va));
    AnyGt = _mm_or_si128(AnyGt, Gt);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(A + I), Vm);
  }
  bool Changed = _mm_movemask_epi8(AnyGt) != 0;
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool allLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarAllLeq(A, B, N);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    if (_mm_movemask_epi8(unsignedGt(Va, Vb)) != 0)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool allZero(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarAllZero(A, N);
  size_t I = 0;
  __m128i Acc = _mm_setzero_si128();
  for (; I + 4 <= N; I += 4)
    Acc = _mm_or_si128(
        Acc, _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)));
  if (_mm_movemask_epi8(_mm_cmpeq_epi32(Acc, _mm_setzero_si128())) != 0xffff)
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t trimTrailingZeros(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarTrimTrailingZeros(A, N);
  while (N >= 4) {
    __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + N - 4));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(V, _mm_setzero_si128())) != 0xffff)
      break;
    N -= 4;
  }
  return scalarTrimTrailingZeros(A, N);
}

void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N) {
  // SSE2 has no gather instruction; the scalar loop is the fast path.
  scalarRemapGather(Dst, Src, Idx, N);
}

#elif defined(PACER_KERNELS_NEON)

const char *activeIsa() { return ForceScalar ? "scalar" : "neon"; }

bool joinMax(uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarJoinMax(A, B, N);
  size_t I = 0;
  uint32x4_t Diff = vdupq_n_u32(0);
  for (; I + 4 <= N; I += 4) {
    uint32x4_t Va = vld1q_u32(A + I);
    uint32x4_t Vb = vld1q_u32(B + I);
    uint32x4_t Vm = vmaxq_u32(Va, Vb);
    Diff = vorrq_u32(Diff, veorq_u32(Vm, Va));
    vst1q_u32(A + I, Vm);
  }
  bool Changed = vmaxvq_u32(Diff) != 0;
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool allLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  if (ForceScalar)
    return scalarAllLeq(A, B, N);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    if (vmaxvq_u32(vcgtq_u32(vld1q_u32(A + I), vld1q_u32(B + I))) != 0)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool allZero(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarAllZero(A, N);
  size_t I = 0;
  uint32x4_t Acc = vdupq_n_u32(0);
  for (; I + 4 <= N; I += 4)
    Acc = vorrq_u32(Acc, vld1q_u32(A + I));
  if (vmaxvq_u32(Acc) != 0)
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t trimTrailingZeros(const uint32_t *A, size_t N) {
  if (ForceScalar)
    return scalarTrimTrailingZeros(A, N);
  while (N >= 4) {
    if (vmaxvq_u32(vld1q_u32(A + N - 4)) != 0)
      break;
    N -= 4;
  }
  return scalarTrimTrailingZeros(A, N);
}

void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N) {
  // NEON has no gather instruction; the scalar loop is the fast path.
  scalarRemapGather(Dst, Src, Idx, N);
}

#else // Scalar-only build (PACER_DISABLE_SIMD or unknown ISA).

const char *activeIsa() { return "scalar"; }

bool joinMax(uint32_t *A, const uint32_t *B, size_t N) {
  return scalarJoinMax(A, B, N);
}

bool allLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  return scalarAllLeq(A, B, N);
}

bool allZero(const uint32_t *A, size_t N) { return scalarAllZero(A, N); }

size_t trimTrailingZeros(const uint32_t *A, size_t N) {
  return scalarTrimTrailingZeros(A, N);
}

void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N) {
  scalarRemapGather(Dst, Src, Idx, N);
}

#endif

void copyWords(uint32_t *Dst, const uint32_t *Src, size_t N) {
  std::memcpy(Dst, Src, N * sizeof(uint32_t));
}

} // namespace pacer::kernels
