//===- core/ClockKernels.cpp - Runtime ISA dispatch -----------------------==//
//
// The scalar reference kernels plus the runtime dispatcher. Per-ISA SIMD
// bodies live in core/kernels/ClockKernels{Sse2,Avx2,Avx512,Neon}.cpp;
// this TU
// probes the hardware once (CPUID + xgetbv on x86-64), applies the
// PACER_FORCE_ISA override, and installs a single function-pointer table
// that every public kernel routes through.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "core/kernels/IsaOps.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace pacer::kernels {

bool scalarJoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  bool Changed = false;
  for (size_t I = 0; I != N; ++I) {
    if (B[I] > A[I]) {
      A[I] = B[I];
      Changed = true;
    }
  }
  return Changed;
}

bool scalarAllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  for (size_t I = 0; I != N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

bool scalarAllZero(const uint32_t *A, size_t N) {
  for (size_t I = 0; I != N; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

size_t scalarTrimTrailingZeros(const uint32_t *A, size_t N) {
  while (N != 0 && A[N - 1] == 0)
    --N;
  return N;
}

void scalarRemapGather(uint32_t *Dst, const uint32_t *Src,
                       const uint32_t *Idx, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Dst[I] = Src[Idx[I]];
}

uint64_t scalarGatherEq(const void *Base, const uint32_t *ByteOff,
                        const uint32_t *Expect, size_t N) {
  const char *P = static_cast<const char *>(Base);
  uint64_t Mask = 0;
  for (size_t I = 0; I != N; ++I) {
    uint32_t Word;
    std::memcpy(&Word, P + ByteOff[I], sizeof(Word));
    Mask |= static_cast<uint64_t>(Word == Expect[I]) << I;
  }
  return Mask;
}

void scalarProbeTags(const void *Base, const uint32_t *ByteOff,
                     const uint32_t *Keys, size_t N, uint32_t Empty,
                     uint64_t *HitMask, uint64_t *EmptyMask) {
  const char *P = static_cast<const char *>(Base);
  uint64_t Hits = 0, Empties = 0;
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tag;
    std::memcpy(&Tag, P + ByteOff[I], sizeof(Tag));
    Hits |= static_cast<uint64_t>(Tag == Keys[I]) << I;
    Empties |= static_cast<uint64_t>(Tag == Empty) << I;
  }
  *HitMask = Hits;
  *EmptyMask = Empties;
}

namespace {

constexpr KernelOps ScalarOps = {Isa::Scalar,
                                 "scalar",
                                 scalarJoinMax,
                                 scalarAllLeq,
                                 scalarAllZero,
                                 scalarTrimTrailingZeros,
                                 scalarRemapGather,
                                 scalarGatherEq,
                                 scalarProbeTags};

#if defined(__x86_64__) || defined(_M_X64)
uint64_t xgetbv0() {
  uint32_t Lo = 0, Hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(Lo), "=d"(Hi) : "c"(0));
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
}
#endif

Isa probeIsa() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (!__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx))
    return Isa::Scalar;
  const bool HasSse2 = (Edx & bit_SSE2) != 0;
  // AVX needs CPU support *and* OS-managed YMM state: OSXSAVE set and
  // XCR0 enabling both XMM (bit 1) and YMM (bit 2) saves. AVX-512
  // additionally needs opmask (bit 5) and ZMM/Hi16-ZMM (bits 6-7) state.
  const bool HasOsxsave = (Ecx & bit_OSXSAVE) != 0 && (Ecx & bit_AVX) != 0;
  const uint64_t Xcr0 = HasOsxsave ? xgetbv0() : 0;
  const bool OsAvx = HasOsxsave && (Xcr0 & 0x6) == 0x6;
  if (OsAvx && __get_cpuid_count(7, 0, &Eax, &Ebx, &Ecx, &Edx)) {
    if ((Xcr0 & 0xe6) == 0xe6 && (Ebx & bit_AVX512F) != 0 &&
        (Ebx & bit_AVX512BW) != 0)
      return Isa::Avx512;
    if ((Ebx & bit_AVX2) != 0)
      return Isa::Avx2;
  }
  return HasSse2 ? Isa::Sse2 : Isa::Scalar;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  return Isa::Neon;
#else
  return Isa::Scalar;
#endif
}

// The installed table. Constant-initialized to scalar so a kernel call
// from another TU's static initializer (before our dynamic init below
// runs) is safe, just slow. Swapped as a single pointer store; the same
// single-threaded-flips-only contract the old ForceScalar bool had.
const KernelOps *Active = &ScalarOps;

// What clearForceIsa restores: the env-or-best resolution computed at
// static init.
Isa DefaultKind = Isa::Scalar;

bool isaSupported(Isa Kind) {
  switch (Kind) {
  case Isa::Scalar:
    return true;
  case Isa::Sse2:
    return detectedIsa() == Isa::Sse2 || detectedIsa() == Isa::Avx2 ||
           detectedIsa() == Isa::Avx512;
  case Isa::Avx2:
    return detectedIsa() == Isa::Avx2 || detectedIsa() == Isa::Avx512;
  case Isa::Avx512:
    return detectedIsa() == Isa::Avx512;
  case Isa::Neon:
    return detectedIsa() == Isa::Neon;
  }
  return false;
}

Isa bestAvailableIsa() {
  for (Isa Kind : {Isa::Avx512, Isa::Avx2, Isa::Neon, Isa::Sse2})
    if (isaAvailable(Kind))
      return Kind;
  return Isa::Scalar;
}

// Resolves the default (un-forced) path: PACER_FORCE_ISA when set and
// available, else the best compiled-in path the host supports. Called
// from the dynamic initializer and again on every clearForceIsa
// re-resolution, so the bad-override diagnostics sit behind a
// once-per-process latch -- a long-lived daemon flipping force overrides
// per request must not spam one warning per resolution.
Isa resolveDefaultIsa() {
  static bool WarnedBadForce = false;
  Isa Pick = bestAvailableIsa();
  if (const char *Env = std::getenv("PACER_FORCE_ISA"); Env && *Env) {
    Isa Forced = Isa::Scalar;
    if (!parseIsaName(Env, Forced)) {
      if (!WarnedBadForce)
        std::fprintf(stderr,
                     "pacer: PACER_FORCE_ISA=%s not recognized; using %s\n",
                     Env, isaName(Pick));
      WarnedBadForce = true;
    } else if (!isaAvailable(Forced)) {
      if (!WarnedBadForce)
        std::fprintf(
            stderr,
            "pacer: PACER_FORCE_ISA=%s unavailable on this build/host; "
            "degrading to %s\n",
            Env, isaName(Pick));
      WarnedBadForce = true;
    } else {
      Pick = Forced;
    }
  }
  return Pick;
}

// Dynamic initializer: probe, read PACER_FORCE_ISA, install the table.
struct DispatchInit {
  DispatchInit() {
    DefaultKind = resolveDefaultIsa();
    Active = opsFor(DefaultKind);
  }
};
DispatchInit InitDispatch;

} // namespace

const char *isaName(Isa Kind) {
  switch (Kind) {
  case Isa::Scalar:
    return "scalar";
  case Isa::Sse2:
    return "sse2";
  case Isa::Neon:
    return "neon";
  case Isa::Avx2:
    return "avx2";
  case Isa::Avx512:
    return "avx512";
  }
  return "unknown";
}

bool parseIsaName(const char *Text, Isa &Out) {
  for (Isa Kind :
       {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (std::strcmp(Text, isaName(Kind)) == 0) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

Isa detectedIsa() {
  static const Isa Detected = probeIsa();
  return Detected;
}

const KernelOps *opsFor(Isa Kind) {
  switch (Kind) {
  case Isa::Scalar:
    return &ScalarOps;
  case Isa::Sse2:
    return detail::sse2KernelOps();
  case Isa::Avx2:
    return detail::avx2KernelOps();
  case Isa::Avx512:
    return detail::avx512KernelOps();
  case Isa::Neon:
    return detail::neonKernelOps();
  }
  return nullptr;
}

bool isaAvailable(Isa Kind) {
  return opsFor(Kind) != nullptr && isaSupported(Kind);
}

Isa activeIsaKind() { return Active->Kind; }

const char *activeIsa() { return Active->Name; }

bool setForceIsa(Isa Kind) {
  if (!isaAvailable(Kind))
    return false;
  Active = opsFor(Kind);
  return true;
}

void clearForceIsa() {
  DefaultKind = resolveDefaultIsa();
  Active = opsFor(DefaultKind);
}

void setForceScalarForTest(bool Force) {
  if (Force)
    setForceIsa(Isa::Scalar);
  else
    clearForceIsa();
}

bool joinMax(uint32_t *A, const uint32_t *B, size_t N) {
  return Active->JoinMax(A, B, N);
}

bool allLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  return Active->AllLeq(A, B, N);
}

bool allZero(const uint32_t *A, size_t N) { return Active->AllZero(A, N); }

size_t trimTrailingZeros(const uint32_t *A, size_t N) {
  return Active->TrimTrailingZeros(A, N);
}

void remapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                 size_t N) {
  Active->RemapGather(Dst, Src, Idx, N);
}

uint64_t gatherEq(const void *Base, const uint32_t *ByteOff,
                  const uint32_t *Expect, size_t N) {
  return Active->GatherEq(Base, ByteOff, Expect, N);
}

void probeTags(const void *Base, const uint32_t *ByteOff,
               const uint32_t *Keys, size_t N, uint32_t Empty,
               uint64_t *HitMask, uint64_t *EmptyMask) {
  Active->ProbeTags(Base, ByteOff, Keys, N, Empty, HitMask, EmptyMask);
}

void copyWords(uint32_t *Dst, const uint32_t *Src, size_t N) {
  std::memcpy(Dst, Src, N * sizeof(uint32_t));
}

} // namespace pacer::kernels
