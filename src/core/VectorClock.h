//===- core/VectorClock.h - Vector clocks over thread ids ------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector clock maps thread identifiers to logical clock values
/// (VC : Tid -> Nat, Appendix A.1). Entries beyond the stored size are
/// implicitly zero, so clocks grow lazily as threads start. The same
/// structure doubles as a *version vector* (Appendix A.2), which maps each
/// thread to the latest version of that thread's clock received via joins.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_VECTORCLOCK_H
#define PACER_CORE_VECTORCLOCK_H

#include "core/Ids.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pacer {

/// Growable dense vector clock; absent entries read as zero.
class VectorClock {
public:
  /// Constructs the minimal clock (all zeros).
  VectorClock() = default;

  /// Returns the clock value for \p Tid (zero if never set).
  uint32_t get(ThreadId Tid) const {
    return Tid < Values.size() ? Values[Tid] : 0;
  }

  /// Sets the clock value for \p Tid, growing as needed.
  void set(ThreadId Tid, uint32_t Value);

  /// Increments the component for \p Tid (the inc_t operation, Equation 2).
  void increment(ThreadId Tid);

  /// Pointwise-maximum join (Equation 3). Returns true iff this clock
  /// changed, which PACER uses to avoid unnecessary version increments
  /// (Algorithm 11).
  bool joinWith(const VectorClock &Other);

  /// Element-by-element copy (the copy operation, Equation 1).
  void copyFrom(const VectorClock &Other) { Values = Other.Values; }

  /// The pointwise partial order C1 <= C2 (all components, Appendix A.1).
  bool leq(const VectorClock &Other) const;

  /// Resets to the minimal clock.
  void clear() { Values.clear(); }

  /// Number of stored (possibly zero) components.
  size_t size() const { return Values.size(); }

  /// Heap bytes used; the space model charges each unique clock payload
  /// once, which is how clock sharing saves space.
  size_t heapBytes() const { return Values.capacity() * sizeof(uint32_t); }

  /// Renders as "[c0, c1, ...]" for diagnostics.
  std::string str() const;

  friend bool operator==(const VectorClock &A, const VectorClock &B);

private:
  std::vector<uint32_t> Values;
};

/// Version vectors have the same representation and operations as vector
/// clocks but count clock *versions*, not logical time (Appendix A.2).
using VersionVector = VectorClock;

} // namespace pacer

#endif // PACER_CORE_VECTORCLOCK_H
