//===- core/VectorClock.h - Vector clocks over thread ids ------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector clock maps thread identifiers to logical clock values
/// (VC : Tid -> Nat, Appendix A.1). Entries beyond the stored size are
/// implicitly zero, so clocks grow lazily as threads start. The same
/// structure doubles as a *version vector* (Appendix A.2), which maps each
/// thread to the latest version of that thread's clock received via joins.
///
/// Storage is small-size optimized: clocks of up to InlineCapacity (8)
/// components live entirely inside the object, with no heap allocation.
/// The evaluation workloads keep most clocks at or below 8 live threads
/// (eclipse 8, xalan 9, pseudojbb 9 max live), so the common case of a
/// join, copy, or comparison never touches the allocator and stays within
/// one cache line. Wider clocks (hsqldb's 403 threads) spill to a block
/// from the current thread's bound Arena (the owning detector's metadata
/// arena on the access hot path; the global heap otherwise).
///
/// All component loops -- join, leq, copy -- route through the
/// word-parallel kernels in core/ClockKernels.h, which pick a SIMD width
/// at compile time; results are bit-identical across every kernel ISA.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_VECTORCLOCK_H
#define PACER_CORE_VECTORCLOCK_H

#include "core/Ids.h"
#include "support/Arena.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace pacer {

/// Growable dense vector clock; absent entries read as zero.
class VectorClock {
public:
  /// Components stored inline before spilling to the heap.
  static constexpr uint32_t InlineCapacity = 8;

  /// Constructs the minimal clock (all zeros).
  VectorClock() = default;

  VectorClock(const VectorClock &Other) { assign(Other); }
  VectorClock(VectorClock &&Other) noexcept { moveFrom(Other); }
  VectorClock &operator=(const VectorClock &Other) {
    if (this != &Other)
      assign(Other);
    return *this;
  }
  VectorClock &operator=(VectorClock &&Other) noexcept {
    if (this != &Other) {
      deallocate();
      moveFrom(Other);
    }
    return *this;
  }
  ~VectorClock() { deallocate(); }

  /// Returns the clock value for \p Tid (zero if never set).
  uint32_t get(ThreadId Tid) const { return Tid < Count ? Data[Tid] : 0; }

  /// Sets the clock value for \p Tid, growing as needed.
  void set(ThreadId Tid, uint32_t Value);

  /// Increments the component for \p Tid (the inc_t operation, Equation 2).
  void increment(ThreadId Tid);

  /// Pointwise-maximum join (Equation 3). Returns true iff this clock
  /// changed, which PACER uses to avoid unnecessary version increments
  /// (Algorithm 11). Iterates only the shorter shared prefix plus
  /// whatever non-zero tail \p Other actually stores: components of
  /// \p Other that are trailing explicit zeros neither grow this clock
  /// nor get touched.
  bool joinWith(const VectorClock &Other);

  /// Element-by-element copy (the copy operation, Equation 1).
  void copyFrom(const VectorClock &Other) { assign(Other); }

  /// The pointwise partial order C1 <= C2 (all components, Appendix A.1).
  /// Compares the shared prefix directly, then requires this clock's
  /// excess tail (implicitly zero in \p Other) to be zero.
  bool leq(const VectorClock &Other) const;

  /// Resets to the minimal clock (keeps any heap allocation, matching the
  /// previous std::vector::clear behaviour).
  void clear() { Count = 0; }

  /// Accordion compaction: renumbers components so that new slot \p I
  /// holds the value of old slot NewToOld[I], then trims trailing zeros.
  /// \p NewToOld must be strictly ascending (an order-preserving pack of
  /// the surviving slots), which makes the in-place gather safe. Old
  /// components not named by \p NewToOld are discarded; they belong to
  /// recycled slots and were already reset to zero.
  void compactSlots(const uint32_t *NewToOld, uint32_t NewCount);

  /// Number of stored (possibly zero) components.
  size_t size() const { return Count; }

  /// Heap bytes used; the space model charges each unique clock payload
  /// once, which is how clock sharing saves space. Inline-stored clocks
  /// own no heap memory and report zero.
  size_t heapBytes() const {
    return isInline() ? 0 : Capacity * sizeof(uint32_t);
  }

  /// Renders as "[c0, c1, ...]" for diagnostics.
  std::string str() const;

  friend bool operator==(const VectorClock &A, const VectorClock &B);

private:
  bool isInline() const { return Data == Inline; }

  /// Grows storage to hold at least \p MinCapacity components, preserving
  /// the stored prefix.
  void grow(uint32_t MinCapacity);

  /// Extends the stored size to \p NewCount, zero-filling new components.
  void extendTo(uint32_t NewCount);

  void assign(const VectorClock &Other);
  void moveFrom(VectorClock &Other) noexcept;
  void deallocate() {
    if (!isInline())
      Arena::freeBlock(Data);
  }

  uint32_t *Data = Inline;
  uint32_t Count = 0;
  uint32_t Capacity = InlineCapacity;
  uint32_t Inline[InlineCapacity];
};

/// Version vectors have the same representation and operations as vector
/// clocks but count clock *versions*, not logical time (Appendix A.2).
using VersionVector = VectorClock;

} // namespace pacer

#endif // PACER_CORE_VECTORCLOCK_H
