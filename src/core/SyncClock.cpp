//===- core/SyncClock.cpp -------------------------------------------------==//

#include "core/SyncClock.h"

#include <cassert>

using namespace pacer;

void SyncClock::deepCopyFrom(const SyncClock &Source,
                             uint64_t *CloneCounter) {
  if (Payload->Shared) {
    // Never write through a shared payload; give this handle a private one.
    Payload = std::make_shared<ClockPayload>();
    if (CloneCounter)
      ++*CloneCounter;
  }
  Payload->Clock.copyFrom(Source.clock());
}

void SyncClock::cloneIfShared(uint64_t *CloneCounter) {
  if (!Payload->Shared)
    return;
  auto Fresh = std::make_shared<ClockPayload>();
  Fresh->Clock.copyFrom(Payload->Clock);
  Payload = std::move(Fresh);
  if (CloneCounter)
    ++*CloneCounter;
}

VectorClock &SyncClock::mutableClock() {
  assert(!Payload->Shared && "mutating a shared clock payload");
  return Payload->Clock;
}
