//===- core/Ids.h - Identifier types for analysis entities -----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types for the entities the analysis tracks. Following the
/// paper's Appendix A: threads, locks, and volatile variables are
/// *synchronization objects*; all other (data) variables may race. A *site*
/// is a static program location; the paper's implementation records the site
/// for every write epoch and read-map entry so that race reports name the
/// two program references involved.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_IDS_H
#define PACER_CORE_IDS_H

#include <cstdint>

namespace pacer {

/// Dense thread identifier; also the index into vector clocks. The paper's
/// prototype does not reuse thread identifiers, so clocks grow with the
/// total number of threads ever started; that remains the default, but
/// detectors may enable the core SlotRecycler (accordion clocks,
/// Section 5.1), in which case ThreadId doubles as a recyclable clock
/// *slot* index and program thread ids are mapped through the recycler.
using ThreadId = uint32_t;

/// Identifier of a data variable (an object field, static field, or array
/// element in the paper's Java setting).
using VarId = uint32_t;

/// Identifier of a lock.
using LockId = uint32_t;

/// Identifier of a volatile variable.
using VolatileId = uint32_t;

/// Identifier of a static program location ("site").
using SiteId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t InvalidId = UINT32_MAX;

} // namespace pacer

#endif // PACER_CORE_IDS_H
