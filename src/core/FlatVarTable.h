//===- core/FlatVarTable.h - Open-addressing variable table ----*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An open-addressing hash table mapping dense VarIds to per-variable
/// detector metadata. This is the PACER detector's hot-path structure: the
/// inlined read/write fast path is "flag test plus table lookup miss"
/// (Section 4), so lookup cost is per-event cost. Compared to
/// std::unordered_map (chained nodes, one heap allocation and one pointer
/// chase per entry), a flat table probes a contiguous power-of-two slot
/// array with linear probing and a Fibonacci-multiplicative hash: misses
/// usually resolve in a single cache line, and erasure (PACER discards
/// metadata continuously during non-sampling periods) writes a tombstone
/// instead of touching the allocator.
///
/// Capacity is allocated lazily: an empty table owns no heap memory,
/// matching PACER's space story where an idle detector charges nothing.
/// The slot array is a raw block from the current thread's bound Arena
/// (slots are placement-constructed and destroyed explicitly), so the
/// grow/shrink oscillation PACER's sampling churn induces recycles blocks
/// through the arena's size-class free lists instead of malloc.
///
/// The key type defaults to VarId but may be any unsigned integer (the
/// LiteRace sampler table keys by a 64-bit method/thread pair). Keys must
/// not be the top two values of the key type (the empty and tombstone
/// sentinels); variable ids are dense from zero, so those are never
/// legitimate.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_FLATVARTABLE_H
#define PACER_CORE_FLATVARTABLE_H

#include "core/ClockKernels.h"
#include "core/Ids.h"
#include "support/Arena.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace pacer {

/// Open-addressing KeyT -> ValueT map with tombstone deletion.
/// ValueT must be default-constructible and movable; KeyT must be an
/// unsigned integer type.
template <typename ValueT, typename KeyT = VarId> class FlatVarTable {
  static_assert(std::is_unsigned_v<KeyT>, "keys must be unsigned integers");
  static constexpr KeyT EmptyKey = static_cast<KeyT>(-1);
  static constexpr KeyT TombstoneKey = EmptyKey - 1;
  static constexpr size_t MinCapacity = 16;

  struct Slot {
    KeyT Key = EmptyKey;
    ValueT Value{};
  };

public:
  FlatVarTable() = default;
  FlatVarTable(const FlatVarTable &) = delete;
  FlatVarTable &operator=(const FlatVarTable &) = delete;
  ~FlatVarTable() { destroySlots(Slots, Capacity); }

  /// Number of live entries.
  size_t size() const { return Live; }
  bool empty() const { return Live == 0; }

  /// Returns the value stored under \p Key, or null. The pointer is
  /// invalidated by the next insertion.
  ValueT *find(KeyT Key) {
    Slot *S = findSlot(Key);
    return S ? &S->Value : nullptr;
  }

  /// Hints the cache to pull in the first probe line for \p Key. A
  /// find(Key) issued a few probes later then usually resolves without a
  /// memory stall; the PACER cold batch kernel issues these while staging
  /// the next block of accesses. Probe chains longer than one line still
  /// pay for their tail -- the hint covers the common single-line case.
  void prefetch(KeyT Key) const {
    if (!Slots)
      return;
    const char *P = reinterpret_cast<const char *>(&Slots[slotFor(Key)]);
    __builtin_prefetch(P);
    // Pull the slot's tail line too when the entry straddles a cache-line
    // boundary; otherwise the analysis that follows the probe still
    // stalls on the second half of the value.
    if ((reinterpret_cast<uintptr_t>(P) & 63) + sizeof(Slot) > 64)
      __builtin_prefetch(P + sizeof(Slot) - 1);
  }
  const ValueT *find(KeyT Key) const {
    return const_cast<FlatVarTable *>(this)->find(Key);
  }

  /// Multi-key lookup: fills Out[I] with the value stored under Keys[I]
  /// or null, for N <= 64 keys in one call. With 32-bit keys the first
  /// probe slot of every key is examined through the dispatched
  /// kernels::probeTags gather (one vpgatherdd per 8-16 keys on AVX2 /
  /// AVX-512) -- a first-slot key match or empty sentinel resolves that
  /// key without touching memory again, and only keys landing on a
  /// collision or tombstone chain walk the scalar probe. Returns how many
  /// keys the vector probe resolved (the probe-hit tally; N minus it is
  /// the scalar-fallback tally). Duplicate keys are fine (lookups do not
  /// mutate); the returned pointers obey the same rule as find(): the
  /// next insertion or erase may invalidate them, observable via
  /// rehashEpoch().
  size_t findBlock(const KeyT *Keys, size_t N, ValueT **Out) {
    assert(N <= 64 && "probe block wider than the kernel masks");
    if (Live == 0) {
      for (size_t I = 0; I != N; ++I)
        Out[I] = nullptr;
      return N;
    }
    if constexpr (sizeof(KeyT) == sizeof(uint32_t)) {
      // The gather lanes are signed-32 byte offsets, so very large tables
      // (and non-32-bit keys below) take the plain scalar path.
      if (heapBytes() <= static_cast<size_t>(INT32_MAX)) {
        uint32_t ByteOff[64];
        uint32_t Tags[64];
        for (size_t I = 0; I != N; ++I) {
          ByteOff[I] = static_cast<uint32_t>(slotFor(Keys[I]) * sizeof(Slot));
          Tags[I] = static_cast<uint32_t>(Keys[I]);
        }
        uint64_t HitMask = 0, EmptyMask = 0;
        kernels::probeTags(Slots, ByteOff, Tags, N,
                           static_cast<uint32_t>(EmptyKey), &HitMask,
                           &EmptyMask);
        size_t Resolved = 0;
        for (size_t I = 0; I != N; ++I) {
          const uint64_t Bit = static_cast<uint64_t>(1) << I;
          if (HitMask & Bit) {
            auto *S = reinterpret_cast<Slot *>(
                reinterpret_cast<char *>(Slots) + ByteOff[I]);
            Out[I] = &S->Value;
            ++Resolved;
          } else if (EmptyMask & Bit) {
            Out[I] = nullptr;
            ++Resolved;
          } else {
            Slot *S = findSlot(Keys[I]);
            Out[I] = S ? &S->Value : nullptr;
          }
        }
        return Resolved;
      }
    }
    for (size_t I = 0; I != N; ++I)
      Out[I] = find(Keys[I]);
    return 0;
  }

  /// Monotone counter bumped every time the slot array is reallocated
  /// (grow or shrink). Pointers handed out by find()/findBlock() stay
  /// valid exactly while this is unchanged, so batched callers can
  /// capture it once and revalidate per entry instead of re-probing.
  size_t rehashEpoch() const { return RehashCount; }

  /// Returns the value under \p Key, default-constructing it if absent.
  /// May rehash; any previously returned pointer is invalidated.
  ValueT &getOrInsert(KeyT Key) {
    assert(Key < TombstoneKey && "key collides with a sentinel");
    if ((Used + 1) * 4 >= Capacity * 3)
      rehash();
    size_t Mask = Capacity - 1;
    size_t I = slotFor(Key);
    size_t FirstTombstone = Capacity; // Sentinel: none seen.
    while (true) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return S.Value;
      if (S.Key == EmptyKey) {
        // Reuse the first tombstone on the probe path, keeping chains
        // short under PACER's continuous discard/re-insert churn.
        Slot &Target =
            FirstTombstone != Capacity ? Slots[FirstTombstone] : S;
        if (Target.Key != EmptyKey)
          --Tombstones;
        else
          ++Used;
        Target.Key = Key;
        Target.Value = ValueT{};
        ++Live;
        return Target.Value;
      }
      if (S.Key == TombstoneKey && FirstTombstone == Capacity)
        FirstTombstone = I;
      I = (I + 1) & Mask;
    }
  }

  /// Removes \p Key if present. Returns true if an entry was removed.
  /// May shrink the slot array (invalidating pointers) once occupancy
  /// falls far enough; PACER discards metadata wholesale during
  /// non-sampling periods and the space must actually come back.
  bool erase(KeyT Key) {
    Slot *S = findSlot(Key);
    if (!S)
      return false;
    S->Key = TombstoneKey;
    S->Value = ValueT{};
    --Live;
    ++Tombstones;
    maybeShrink();
    return true;
  }

  /// Drops every entry, keeping the slot array.
  void clear() {
    for (size_t I = 0; I < Capacity; ++I) {
      Slots[I].Key = EmptyKey;
      Slots[I].Value = ValueT{};
    }
    Live = 0;
    Used = 0;
    Tombstones = 0;
  }

  /// Invokes Fn(KeyT, const ValueT &) for every live entry, in slot
  /// (not key) order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t I = 0; I < Capacity; ++I)
      if (isLiveSlot(Slots[I]))
        Fn(Slots[I].Key, Slots[I].Value);
  }

  /// Invokes Fn(KeyT, ValueT &) for every live entry; entries for which
  /// Fn returns true are erased. Safe against mutation of the visited
  /// value; must not insert during iteration.
  template <typename FnT> void eraseIf(FnT Fn) {
    for (size_t I = 0; I < Capacity; ++I) {
      Slot &S = Slots[I];
      if (isLiveSlot(S) && Fn(S.Key, S.Value)) {
        S.Key = TombstoneKey;
        S.Value = ValueT{};
        --Live;
        ++Tombstones;
      }
    }
    maybeShrink();
  }

  /// Heap bytes owned by the slot array (the space model adds per-entry
  /// payload bytes separately).
  size_t heapBytes() const { return Capacity * sizeof(Slot); }

  /// Bytes attributable to the live entries alone, independent of table
  /// capacity. Unlike heapBytes() this is additive across any partition
  /// of the keys, which the sharded-replay space merge relies on.
  size_t entryBytes() const { return Live * sizeof(Slot); }

private:
  /// First probe slot for \p Key at the current capacity. Fibonacci
  /// multiplicative hashing is only well-behaved when the slot index is
  /// taken from the TOP bits of the product: shifting by
  /// 64 - log2(Capacity) makes dense sequential ids walk the table as a
  /// golden-ratio Weyl sequence, whose points are spread as evenly as the
  /// occupancy allows (nearly every key sits in its home slot, which the
  /// findBlock first-slot gather screen depends on). Masking low bits of
  /// the product instead yields a Weyl step with poor continued-fraction
  /// structure at larger capacities -- home slots caravan into multi-slot
  /// clusters and most probes chain. (For 64-bit keys the multiply wraps;
  /// the top bits are still well mixed.)
  size_t slotFor(KeyT Key) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL) >> Shift);
  }

  bool isLiveSlot(const Slot &S) const {
    return S.Key != EmptyKey && S.Key != TombstoneKey;
  }

  /// Allocates and default-constructs a slot array from the bound arena.
  static Slot *allocSlots(size_t N) {
    auto *Out = static_cast<Slot *>(Arena::allocBlock(N * sizeof(Slot)));
    for (size_t I = 0; I < N; ++I)
      new (&Out[I]) Slot();
    return Out;
  }

  /// Destroys the slots and returns the block to its arena.
  static void destroySlots(Slot *S, size_t N) {
    for (size_t I = 0; I < N; ++I)
      S[I].~Slot();
    Arena::freeBlock(S);
  }

  /// Shrinks the slot array when occupancy drops to <= 1/8, releasing the
  /// space a mass discard freed. Never shrinks below MinCapacity: the
  /// non-sampling discard path oscillates between empty and a few entries,
  /// and a floor keeps that oscillation allocation-free.
  void maybeShrink() {
    if (Capacity > MinCapacity && Live * 8 <= Capacity)
      rehash();
  }

  Slot *findSlot(KeyT Key) const {
    if (Live == 0)
      return nullptr;
    size_t Mask = Capacity - 1;
    size_t I = slotFor(Key);
    while (true) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return &S;
      if (S.Key == EmptyKey)
        return nullptr;
      I = (I + 1) & Mask;
    }
  }

  /// Reallocates to a capacity sized for the live count (shedding
  /// tombstones) and reinserts every live entry.
  void rehash() {
    ++RehashCount;
    size_t NewCapacity = MinCapacity;
    while (NewCapacity * 3 < (Live + 1) * 8) // Target load <= 3/8.
      NewCapacity *= 2;
    Slot *OldSlots = Slots;
    size_t OldCapacity = Capacity;
    Slots = allocSlots(NewCapacity);
    Capacity = NewCapacity;
    Shift = 64 - static_cast<unsigned>(__builtin_ctzll(NewCapacity));
    Used = Live;
    Tombstones = 0;
    size_t Mask = NewCapacity - 1;
    for (size_t I = 0; I < OldCapacity; ++I) {
      Slot &S = OldSlots[I];
      if (!isLiveSlot(S))
        continue;
      size_t J = slotFor(S.Key);
      while (Slots[J].Key != EmptyKey)
        J = (J + 1) & Mask;
      Slots[J].Key = S.Key;
      Slots[J].Value = std::move(S.Value);
    }
    destroySlots(OldSlots, OldCapacity);
  }

  Slot *Slots = nullptr;
  size_t Capacity = 0;
  /// 64 - log2(Capacity): slotFor() keeps this many top product bits.
  /// Meaningless while Capacity == 0 (every probe path checks Live or
  /// Slots first, and the first insert rehashes before probing).
  unsigned Shift = 64;
  size_t Live = 0;       ///< Entries holding a value.
  size_t Used = 0;       ///< Live + tombstones (probe-chain occupancy).
  size_t Tombstones = 0;
  size_t RehashCount = 0; ///< Slot-array reallocations (pointer epochs).
};

} // namespace pacer

#endif // PACER_CORE_FLATVARTABLE_H
