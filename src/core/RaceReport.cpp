//===- core/RaceReport.cpp ------------------------------------------------==//

#include "core/RaceReport.h"

#include <cstdio>

using namespace pacer;

const char *pacer::accessKindName(AccessKind Kind) {
  return Kind == AccessKind::Read ? "read" : "write";
}

std::string RaceReport::str() const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "race on var %u: %s by thread %u at site %u vs %s by "
                "thread %u at site %u",
                Var, accessKindName(FirstKind), FirstThread, FirstSite,
                accessKindName(SecondKind), SecondThread, SecondSite);
  return Buf;
}

RaceSink::~RaceSink() = default;
