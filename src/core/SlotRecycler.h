//===- core/SlotRecycler.h - Accordion thread-slot recycling ---*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-slot recycling ("accordion clocks", the production improvement
/// PACER Section 5.1 cites). Without it, every clock and metadata vector
/// is indexed by program thread id and grows with the total number of
/// threads ever started; task-graph workloads that spawn thousands of
/// short-lived threads blow up join cost and metadata even when only a
/// handful are ever live.
///
/// The recycler maps program thread ids ("externals") to dense clock
/// *slots*. A slot is retired when its thread exits (or, for hand traces
/// without exit events, when it is joined) together with a snapshot of the
/// thread's final clock, and is reclaimed once every live thread's clock
/// dominates that snapshot:
///
///   reclaim(u)  iff  retired(u) <= C_t  for every live t
///
/// Soundness: every access of the retired thread happens-before its final
/// clock, so once every live thread dominates it, none of its accesses can
/// be the *first* access of a future race; its metadata may be purged and
/// its slot renamed without changing any race verdict. This is the same
/// argument as the Accordion Clocks paper (Christiaens & De Bosschere) and
/// composes with PACER's metadata discarding: recycling deletes what
/// domination proves redundant, sampling deletes what the period boundary
/// makes unreportable.
///
/// When enough slots are free the recycler *compacts*: live slots are
/// renumbered onto a dense prefix (an order-preserving pack described by a
/// SlotRemap) and every clock trims its tail, restoring O(live) rather
/// than O(peak) component counts. Compaction decisions are pure functions
/// of the slot occupancy, which is itself a pure function of the trace's
/// synchronization prefix -- so sharded-replay replicas, both replay
/// engines, and any shard count make bit-identical recycling and
/// compaction decisions.
///
/// The recycler is detector-agnostic: domination checks and metadata
/// purges go through callables supplied by the owning detector, keeping
/// this in the core layer (which cannot see detector types).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_SLOTRECYCLER_H
#define PACER_CORE_SLOTRECYCLER_H

#include "core/FlatVarTable.h"
#include "core/Ids.h"
#include "core/VectorClock.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacer {

/// An order-preserving renumbering of slots produced by compaction: new
/// slot I holds what old slot NewToOld[I] held, and NewToOld ascends.
/// OldToNew is the inverse, with InvalidId for dropped (free) slots.
struct SlotRemap {
  std::vector<uint32_t> NewToOld;
  std::vector<uint32_t> OldToNew;

  uint32_t newCount() const { return static_cast<uint32_t>(NewToOld.size()); }
  uint32_t oldCount() const { return static_cast<uint32_t>(OldToNew.size()); }
};

/// Free-list allocator of clock slots with domination-gated reclamation.
class SlotRecycler {
public:
  enum class SlotLife : uint8_t { Free, Live, Dead };

  /// Disabled by default: detectors that never enable the recycler pay
  /// nothing and use program thread ids as slots directly.
  bool enabled() const { return Enabled; }
  void enable() { Enabled = true; }

  struct Mapping {
    ThreadId Slot;
    bool Fresh; ///< True when the slot was just bound to this external.
  };

  /// Returns the slot bound to \p External, binding a recycled (or brand
  /// new) slot on first sight. When Fresh, the caller must materialize
  /// detector state for the slot (the recycler guarantees every clock
  /// component for it is already zero). Must only be called when enabled.
  Mapping map(ThreadId External) {
    if (ThreadId *Slot = ExternalToSlot.find(External))
      return {*Slot, false};
    ThreadId Slot;
    if (!FreeSlots.empty()) {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
    } else {
      Slot = static_cast<ThreadId>(Slots.size());
      Slots.emplace_back();
    }
    SlotState &S = Slots[Slot];
    S.Life = SlotLife::Live;
    S.External = External;
    ExternalToSlot.getOrInsert(External) = Slot;
    if (Slots.size() > Peak)
      Peak = Slots.size();
    return {Slot, true};
  }

  /// The slot currently bound to \p External, or InvalidId if the external
  /// was never seen or its slot has been recycled.
  ThreadId lookup(ThreadId External) const {
    const ThreadId *Slot = ExternalToSlot.find(External);
    return Slot ? *Slot : InvalidId;
  }

  /// Program thread id occupying \p Slot (InvalidId for free slots). Race
  /// reports must name program ids, never slots.
  ThreadId externalOf(ThreadId Slot) const {
    return Slot < Slots.size() ? Slots[Slot].External : InvalidId;
  }

  SlotLife lifeOf(ThreadId Slot) const {
    return Slot < Slots.size() ? Slots[Slot].Life : SlotLife::Free;
  }
  bool isLive(ThreadId Slot) const { return lifeOf(Slot) == SlotLife::Live; }

  /// Marks \p Slot dead with \p FinalClock as its retirement snapshot.
  /// The snapshot must be taken before any post-retirement bump of the
  /// thread's clock (e.g. the join rule's child increment): those virtual
  /// epochs are never published to a live thread, so including them would
  /// make domination unachievable. No-op for already-dead slots, so
  /// exit-time and join-time retirement compose. No-op when disabled, so
  /// callers on the hot join path need no enabled() check of their own.
  void retire(ThreadId Slot, const VectorClock &FinalClock) {
    if (!Enabled || Slot >= Slots.size())
      return;
    SlotState &S = Slots[Slot];
    if (S.Life != SlotLife::Live)
      return;
    S.Life = SlotLife::Dead;
    S.Retired.copyFrom(FinalClock);
    DeadSlots.push_back(Slot);
  }

  /// Reclaims every dead slot whose retirement snapshot is dominated by
  /// all live slots' clocks. \p LiveClock maps a live slot to its current
  /// VectorClock; \p Purge scrubs detector metadata for a reclaimed slot
  /// (zero its component in every clock, drop its epochs and read-map
  /// entries) before the recycler unbinds it. Returns the number of slots
  /// reclaimed. Deterministic: the scan order depends only on the
  /// retirement sequence.
  template <typename LiveClockFn, typename PurgeFn>
  size_t recycle(LiveClockFn LiveClock, PurgeFn Purge) {
    if (!Enabled || DeadSlots.empty())
      return 0;
    size_t Reclaimed = 0;
    for (size_t I = 0; I < DeadSlots.size();) {
      const ThreadId Slot = DeadSlots[I];
      bool Dominated = true;
      for (ThreadId T = 0; T != Slots.size(); ++T) {
        if (Slots[T].Life != SlotLife::Live)
          continue;
        if (!Slots[Slot].Retired.leq(LiveClock(T))) {
          Dominated = false;
          break;
        }
      }
      if (!Dominated) {
        ++I;
        continue;
      }
      Purge(Slot);
      ExternalToSlot.erase(Slots[Slot].External);
      Slots[Slot] = SlotState{};
      FreeSlots.push_back(Slot);
      DeadSlots[I] = DeadSlots.back();
      DeadSlots.pop_back();
      ++Reclaimed;
      // Other retirement snapshots may still name the reclaimed slot's
      // previous occupant. That occupant was dominated by every live
      // thread when reclaimed, so dropping the component does not weaken
      // their domination checks -- and keeping it would spuriously compare
      // against the slot's *next* occupant forever.
      for (SlotState &S : Slots)
        if (S.Life == SlotLife::Dead)
          S.Retired.set(Slot, 0);
    }
    return Reclaimed;
  }

  /// True when compaction would pay off: at least MinCompactSlots slots
  /// exist and at least half of them are free. A pure function of slot
  /// occupancy, hence replica-deterministic.
  bool shouldCompact() const {
    return Enabled && Slots.size() >= MinCompactSlots &&
           FreeSlots.size() * 2 >= Slots.size();
  }

  /// Packs occupied slots onto a dense prefix, renumbers the recycler's
  /// own state, and returns the remap the detector must apply to every
  /// clock, epoch, and site vector it owns. Free slots are dropped (the
  /// free list empties); dead-but-unreclaimed slots survive with new
  /// numbers.
  SlotRemap compact() {
    SlotRemap Remap;
    Remap.OldToNew.assign(Slots.size(), InvalidId);
    for (uint32_t Old = 0; Old != Slots.size(); ++Old) {
      if (Slots[Old].Life == SlotLife::Free)
        continue;
      Remap.OldToNew[Old] = static_cast<uint32_t>(Remap.NewToOld.size());
      Remap.NewToOld.push_back(Old);
    }
    for (uint32_t New = 0; New != Remap.newCount(); ++New) {
      const uint32_t Old = Remap.NewToOld[New];
      if (Old != New)
        Slots[New] = std::move(Slots[Old]);
      Slots[New].Retired.compactSlots(Remap.NewToOld.data(),
                                      Remap.newCount());
    }
    Slots.resize(Remap.newCount());
    FreeSlots.clear();
    for (ThreadId &Slot : DeadSlots)
      Slot = Remap.OldToNew[Slot];
    ExternalToSlot.eraseIf([&Remap](ThreadId, ThreadId &Slot) {
      Slot = Remap.OldToNew[Slot];
      return false;
    });
    return Remap;
  }

  /// Current number of slots (the width metadata vectors are sized to).
  size_t slotCount() const { return Slots.size(); }

  /// High-water slot count over the run; compaction does not lower it.
  size_t peakSlotCount() const { return Peak; }

  size_t liveSlotCount() const {
    size_t Live = 0;
    for (const SlotState &S : Slots)
      Live += S.Life == SlotLife::Live;
    return Live;
  }
  size_t deadSlotCount() const { return DeadSlots.size(); }

  /// Bytes of recycler-owned bookkeeping, for the live-metadata model:
  /// per-slot state (including retirement snapshots) plus the live
  /// external map entries. O(slots), which recycling keeps O(live).
  size_t liveMetadataBytes() const {
    size_t Bytes = Slots.size() * sizeof(SlotState) +
                   (FreeSlots.size() + DeadSlots.size()) * sizeof(ThreadId) +
                   ExternalToSlot.entryBytes();
    for (const SlotState &S : Slots)
      Bytes += S.Retired.heapBytes();
    return Bytes;
  }

private:
  /// Below this many slots the dense representation is already small;
  /// compacting would churn metadata for no measurable gain.
  static constexpr size_t MinCompactSlots = 16;

  struct SlotState {
    SlotLife Life = SlotLife::Free;
    ThreadId External = InvalidId;
    VectorClock Retired;
  };

  bool Enabled = false;
  std::vector<SlotState> Slots;
  std::vector<ThreadId> FreeSlots;
  std::vector<ThreadId> DeadSlots;
  /// Live externals only -- entries are erased at reclaim, so this stays
  /// O(live) instead of O(total spawned).
  FlatVarTable<ThreadId, ThreadId> ExternalToSlot;
  size_t Peak = 0;
};

} // namespace pacer

#endif // PACER_CORE_SLOTRECYCLER_H
