//===- core/VectorClock.cpp -----------------------------------------------==//

#include "core/VectorClock.h"

#include <algorithm>
#include <cstring>

using namespace pacer;

void VectorClock::grow(uint32_t MinCapacity) {
  uint32_t NewCapacity = std::max(MinCapacity, Capacity * 2);
  auto *NewData = new uint32_t[NewCapacity];
  std::memcpy(NewData, Data, Count * sizeof(uint32_t));
  deallocate();
  Data = NewData;
  Capacity = NewCapacity;
}

void VectorClock::extendTo(uint32_t NewCount) {
  if (NewCount > Capacity)
    grow(NewCount);
  std::memset(Data + Count, 0, (NewCount - Count) * sizeof(uint32_t));
  Count = NewCount;
}

void VectorClock::assign(const VectorClock &Other) {
  if (Other.Count > Capacity)
    grow(Other.Count);
  std::memcpy(Data, Other.Data, Other.Count * sizeof(uint32_t));
  Count = Other.Count;
}

void VectorClock::moveFrom(VectorClock &Other) noexcept {
  if (Other.isInline()) {
    Data = Inline;
    Capacity = InlineCapacity;
    std::memcpy(Inline, Other.Inline, Other.Count * sizeof(uint32_t));
  } else {
    // Steal the heap buffer; leave Other valid and minimal.
    Data = Other.Data;
    Capacity = Other.Capacity;
    Other.Data = Other.Inline;
    Other.Capacity = InlineCapacity;
  }
  Count = Other.Count;
  Other.Count = 0;
}

void VectorClock::set(ThreadId Tid, uint32_t Value) {
  if (Tid >= Count) {
    if (Value == 0)
      return; // Absent entries already read as zero.
    extendTo(Tid + 1);
  }
  Data[Tid] = Value;
}

void VectorClock::increment(ThreadId Tid) {
  if (Tid >= Count)
    extendTo(Tid + 1);
  ++Data[Tid];
}

bool VectorClock::joinWith(const VectorClock &Other) {
  bool Changed = false;
  const uint32_t Shared = std::min(Count, Other.Count);
  for (uint32_t I = 0; I != Shared; ++I) {
    if (Other.Data[I] > Data[I]) {
      Data[I] = Other.Data[I];
      Changed = true;
    }
  }
  // Components of Other beyond our stored prefix: join against implicit
  // zeros. Grow only as far as Other's last non-zero component -- a
  // shorter (or zero-padded) Other must not inflate this clock.
  uint32_t Last = Other.Count;
  while (Last > Shared && Other.Data[Last - 1] == 0)
    --Last;
  if (Last > Shared) {
    extendTo(Last);
    for (uint32_t I = Shared; I != Last; ++I) {
      if (Other.Data[I] != 0) {
        Data[I] = Other.Data[I];
        Changed = true;
      }
    }
  }
  return Changed;
}

bool VectorClock::leq(const VectorClock &Other) const {
  const uint32_t Shared = std::min(Count, Other.Count);
  for (uint32_t I = 0; I != Shared; ++I)
    if (Data[I] > Other.Data[I])
      return false;
  // Our excess tail compares against implicit zeros in Other.
  for (uint32_t I = Shared; I < Count; ++I)
    if (Data[I] != 0)
      return false;
  return true;
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (uint32_t I = 0; I != Count; ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Data[I]);
  }
  Out += "]";
  return Out;
}

namespace pacer {
// Defined in-namespace so the friend declaration matches.
bool operator==(const VectorClock &A, const VectorClock &B) {
  uint32_t Max = std::max(A.Count, B.Count);
  for (uint32_t I = 0; I != Max; ++I)
    if (A.get(I) != B.get(I))
      return false;
  return true;
}
} // namespace pacer
