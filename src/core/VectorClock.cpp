//===- core/VectorClock.cpp -----------------------------------------------==//

#include "core/VectorClock.h"

#include "core/ClockKernels.h"

#include <algorithm>
#include <cstring>

using namespace pacer;

void VectorClock::grow(uint32_t MinCapacity) {
  uint32_t NewCapacity = std::max(MinCapacity, Capacity * 2);
  auto *NewData =
      static_cast<uint32_t *>(Arena::allocBlock(NewCapacity * sizeof(uint32_t)));
  kernels::copyWords(NewData, Data, Count);
  deallocate();
  Data = NewData;
  Capacity = NewCapacity;
}

void VectorClock::extendTo(uint32_t NewCount) {
  if (NewCount > Capacity)
    grow(NewCount);
  std::memset(Data + Count, 0, (NewCount - Count) * sizeof(uint32_t));
  Count = NewCount;
}

void VectorClock::assign(const VectorClock &Other) {
  if (Other.Count > Capacity)
    grow(Other.Count);
  kernels::copyWords(Data, Other.Data, Other.Count);
  Count = Other.Count;
}

void VectorClock::moveFrom(VectorClock &Other) noexcept {
  if (Other.isInline()) {
    Data = Inline;
    Capacity = InlineCapacity;
    kernels::copyWords(Inline, Other.Inline, Other.Count);
  } else {
    // Steal the heap buffer; leave Other valid and minimal. The block's
    // header keeps its owning arena, so the eventual free dispatches
    // correctly no matter where the clock object moves.
    Data = Other.Data;
    Capacity = Other.Capacity;
    Other.Data = Other.Inline;
    Other.Capacity = InlineCapacity;
  }
  Count = Other.Count;
  Other.Count = 0;
}

void VectorClock::set(ThreadId Tid, uint32_t Value) {
  if (Tid >= Count) {
    if (Value == 0)
      return; // Absent entries already read as zero.
    extendTo(Tid + 1);
  }
  Data[Tid] = Value;
}

void VectorClock::increment(ThreadId Tid) {
  if (Tid >= Count)
    extendTo(Tid + 1);
  ++Data[Tid];
}

bool VectorClock::joinWith(const VectorClock &Other) {
  const uint32_t Shared = std::min(Count, Other.Count);
  bool Changed = kernels::joinMax(Data, Other.Data, Shared);
  // Components of Other beyond our stored prefix join against implicit
  // zeros. Grow only as far as Other's last non-zero component -- a
  // shorter (or zero-padded) Other must not inflate this clock. When the
  // tail has any non-zero component the join changes this clock by
  // definition, and extendTo's zero-fill makes a straight copy of the
  // whole tail equivalent to copying only its non-zero components.
  const uint32_t Last =
      Shared + static_cast<uint32_t>(kernels::trimTrailingZeros(
                   Other.Data + Shared, Other.Count - Shared));
  if (Last > Shared) {
    extendTo(Last);
    kernels::copyWords(Data + Shared, Other.Data + Shared, Last - Shared);
    Changed = true;
  }
  return Changed;
}

void VectorClock::compactSlots(const uint32_t *NewToOld, uint32_t NewCount) {
  // Components at old indices >= Count are implicit zeros; since NewToOld
  // ascends, everything past the first out-of-range source is zero too.
  uint32_t M = 0;
  while (M < NewCount && NewToOld[M] < Count)
    ++M;
  kernels::remapGather(Data, Data, NewToOld, M);
  Count = static_cast<uint32_t>(kernels::trimTrailingZeros(Data, M));
  // Accordion release: once the packed clock fits inline again, return the
  // spill block. Compaction must shrink allocations, not just logical
  // widths -- otherwise every clock's space charge ratchets at the widest
  // slot count it ever saw and the live-metadata high-water grows with
  // total threads started instead of staying O(live).
  if (!isInline() && Count <= InlineCapacity) {
    kernels::copyWords(Inline, Data, Count);
    Arena::freeBlock(Data);
    Data = Inline;
    Capacity = InlineCapacity;
  }
}

bool VectorClock::leq(const VectorClock &Other) const {
  const uint32_t Shared = std::min(Count, Other.Count);
  if (!kernels::allLeq(Data, Other.Data, Shared))
    return false;
  // Our excess tail compares against implicit zeros in Other.
  return kernels::allZero(Data + Shared, Count - Shared);
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (uint32_t I = 0; I != Count; ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Data[I]);
  }
  Out += "]";
  return Out;
}

namespace pacer {
// Defined in-namespace so the friend declaration matches.
bool operator==(const VectorClock &A, const VectorClock &B) {
  uint32_t Max = std::max(A.Count, B.Count);
  for (uint32_t I = 0; I != Max; ++I)
    if (A.get(I) != B.get(I))
      return false;
  return true;
}
} // namespace pacer
