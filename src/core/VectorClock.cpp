//===- core/VectorClock.cpp -----------------------------------------------==//

#include "core/VectorClock.h"

#include <algorithm>

using namespace pacer;

void VectorClock::set(ThreadId Tid, uint32_t Value) {
  if (Tid >= Values.size()) {
    if (Value == 0)
      return; // Absent entries already read as zero.
    Values.resize(Tid + 1, 0);
  }
  Values[Tid] = Value;
}

void VectorClock::increment(ThreadId Tid) {
  if (Tid >= Values.size())
    Values.resize(Tid + 1, 0);
  ++Values[Tid];
}

bool VectorClock::joinWith(const VectorClock &Other) {
  bool Changed = false;
  if (Other.Values.size() > Values.size())
    Values.resize(Other.Values.size(), 0);
  for (size_t I = 0, E = Other.Values.size(); I != E; ++I) {
    if (Other.Values[I] > Values[I]) {
      Values[I] = Other.Values[I];
      Changed = true;
    }
  }
  return Changed;
}

bool VectorClock::leq(const VectorClock &Other) const {
  for (size_t I = 0, E = Values.size(); I != E; ++I)
    if (Values[I] > Other.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Values[I]);
  }
  Out += "]";
  return Out;
}

namespace pacer {
// Defined in-namespace so the friend declaration matches.
bool operator==(const VectorClock &A, const VectorClock &B) {
  size_t Max = std::max(A.Values.size(), B.Values.size());
  for (size_t I = 0; I != Max; ++I)
    if (A.get(static_cast<ThreadId>(I)) != B.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}
} // namespace pacer
