//===- core/ReadMap.cpp ---------------------------------------------------==//

#include "core/ReadMap.h"

#include <cassert>
#include <cstring>

using namespace pacer;

size_t ReadMap::size() const {
  if (Entries)
    return Num;
  return E.isNone() ? 0 : 1;
}

Epoch ReadMap::epoch() const {
  assert(isEpoch() && "not in epoch state");
  return E;
}

SiteId ReadMap::epochSite() const {
  assert(isEpoch() && "not in epoch state");
  return ESite;
}

void ReadMap::clear() {
  E = Epoch::none();
  ESite = InvalidId;
  Arena::freeBlock(Entries);
  release();
}

void ReadMap::setEpoch(Epoch NewEpoch, SiteId Site) {
  assert(!NewEpoch.isNone() && "setting a null epoch; use clear()");
  E = NewEpoch;
  ESite = Site;
  Arena::freeBlock(Entries);
  release();
}

void ReadMap::growEntries() {
  const uint32_t NewCap = Cap ? Cap * 2 : 2;
  auto *NewEntries =
      static_cast<ReadEntry *>(Arena::allocBlock(NewCap * sizeof(ReadEntry)));
  if (Num)
    std::memcpy(NewEntries, Entries, Num * sizeof(ReadEntry));
  Arena::freeBlock(Entries);
  Entries = NewEntries;
  Cap = NewCap;
}

void ReadMap::inflateToMap() {
  assert(isEpoch() && "can only inflate from epoch state");
  growEntries();
  Entries[0] = ReadEntry{E.tid(), E.clockValue(), ESite};
  Num = 1;
  E = Epoch::none();
  ESite = InvalidId;
}

ReadEntry *ReadMap::findEntry(ThreadId Tid) {
  assert(Entries && "not in map state");
  for (uint32_t I = 0; I != Num; ++I)
    if (Entries[I].Tid == Tid)
      return &Entries[I];
  return nullptr;
}

void ReadMap::setEntry(ThreadId Tid, uint32_t Clock, SiteId Site) {
  assert(Entries && "not in map state");
  if (ReadEntry *Entry = findEntry(Tid)) {
    Entry->Clock = Clock;
    Entry->Site = Site;
    return;
  }
  if (Num == Cap)
    growEntries();
  Entries[Num++] = ReadEntry{Tid, Clock, Site};
}

bool ReadMap::removeEntry(ThreadId Tid) {
  assert(Entries && "not in map state");
  for (uint32_t I = 0; I != Num; ++I) {
    if (Entries[I].Tid == Tid) {
      Entries[I] = Entries[Num - 1];
      --Num;
      break;
    }
  }
  return Num == 0;
}

void ReadMap::removeThread(ThreadId Tid) {
  switch (kind()) {
  case Kind::Null:
    return;
  case Kind::Epoch:
    if (E.tid() == Tid)
      clear();
    return;
  case Kind::Map:
    if (removeEntry(Tid))
      clear();
    return;
  }
}

void ReadMap::remapThreads(const uint32_t *OldToNew) {
  if (Entries) {
    for (uint32_t I = 0; I != Num; ++I)
      Entries[I].Tid = OldToNew[Entries[I].Tid];
    return;
  }
  if (!E.isNone())
    E = Epoch::make(E.clockValue(), OldToNew[E.tid()]);
}

bool ReadMap::leqClock(const VectorClock &C) const {
  if (Entries) {
    for (uint32_t I = 0; I != Num; ++I)
      if (Entries[I].Clock > C.get(Entries[I].Tid))
        return false;
    return true;
  }
  return E.precedes(C); // Null epoch (0@0) precedes everything.
}

size_t ReadMap::heapBytes() const {
  return Entries ? Cap * sizeof(ReadEntry) : 0;
}
