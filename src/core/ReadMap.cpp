//===- core/ReadMap.cpp ---------------------------------------------------==//

#include "core/ReadMap.h"

#include <cassert>

using namespace pacer;

size_t ReadMap::size() const {
  if (Entries)
    return Entries->size();
  return E.isNone() ? 0 : 1;
}

Epoch ReadMap::epoch() const {
  assert(isEpoch() && "not in epoch state");
  return E;
}

SiteId ReadMap::epochSite() const {
  assert(isEpoch() && "not in epoch state");
  return ESite;
}

void ReadMap::clear() {
  E = Epoch::none();
  ESite = InvalidId;
  Entries.reset();
}

void ReadMap::setEpoch(Epoch NewEpoch, SiteId Site) {
  assert(!NewEpoch.isNone() && "setting a null epoch; use clear()");
  E = NewEpoch;
  ESite = Site;
  Entries.reset();
}

void ReadMap::inflateToMap() {
  assert(isEpoch() && "can only inflate from epoch state");
  Entries = std::make_unique<std::vector<ReadEntry>>();
  Entries->push_back(ReadEntry{E.tid(), E.clockValue(), ESite});
  E = Epoch::none();
  ESite = InvalidId;
}

ReadEntry *ReadMap::findEntry(ThreadId Tid) {
  assert(Entries && "not in map state");
  for (ReadEntry &Entry : *Entries)
    if (Entry.Tid == Tid)
      return &Entry;
  return nullptr;
}

void ReadMap::setEntry(ThreadId Tid, uint32_t Clock, SiteId Site) {
  assert(Entries && "not in map state");
  if (ReadEntry *Entry = findEntry(Tid)) {
    Entry->Clock = Clock;
    Entry->Site = Site;
    return;
  }
  Entries->push_back(ReadEntry{Tid, Clock, Site});
}

bool ReadMap::removeEntry(ThreadId Tid) {
  assert(Entries && "not in map state");
  for (size_t I = 0, N = Entries->size(); I != N; ++I) {
    if ((*Entries)[I].Tid == Tid) {
      (*Entries)[I] = Entries->back();
      Entries->pop_back();
      break;
    }
  }
  return Entries->empty();
}

void ReadMap::removeThread(ThreadId Tid) {
  switch (kind()) {
  case Kind::Null:
    return;
  case Kind::Epoch:
    if (E.tid() == Tid)
      clear();
    return;
  case Kind::Map:
    if (removeEntry(Tid))
      clear();
    return;
  }
}

bool ReadMap::leqClock(const VectorClock &C) const {
  if (Entries) {
    for (const ReadEntry &Entry : *Entries)
      if (Entry.Clock > C.get(Entry.Tid))
        return false;
    return true;
  }
  return E.precedes(C); // Null epoch (0@0) precedes everything.
}

size_t ReadMap::heapBytes() const {
  if (!Entries)
    return 0;
  return sizeof(*Entries) + Entries->capacity() * sizeof(ReadEntry);
}
