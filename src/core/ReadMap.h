//===- core/ReadMap.h - FastTrack/PACER read metadata ----------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-variable read metadata. FastTrack stores either an epoch (when reads
/// are totally ordered) or a full read map/vector (when reads are
/// concurrent); the paper folds both into a *read map* mapping zero or more
/// threads to clock values (Section 2.2). PACER additionally allows the
/// null state (zero entries, equivalent to 0@0) and removes individual
/// entries during non-sampling periods (Table 4 Rule 3).
///
/// The representation matters semantically: a map that has shrunk to one
/// entry is still "in VC state" for the purposes of Table 4's rule
/// dispatch, so this class never silently deflates a map into an epoch;
/// only the explicit FastTrack read rule does that.
///
/// Each entry carries the site of the recorded access so race reports can
/// name the first access (Section 4, "Reporting Races").
///
/// Map-state entry arrays are raw blocks from the current thread's bound
/// Arena (the owning detector's metadata arena on the access hot path),
/// so inflating, growing, and discarding read maps never touches the
/// general-purpose heap during replay. ReadMap is move-only; the block
/// header routes the eventual free back to the allocating arena no
/// matter where the map moves.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_READMAP_H
#define PACER_CORE_READMAP_H

#include "core/Epoch.h"
#include "core/Ids.h"
#include "core/VectorClock.h"
#include "support/Arena.h"

#include <cstdint>

namespace pacer {

/// One recorded read: the reader's clock value and the program site.
struct ReadEntry {
  ThreadId Tid;
  uint32_t Clock;
  SiteId Site;
};

/// Read metadata in one of three states: Null (no information), Epoch
/// (totally ordered reads), or Map (concurrent reads).
class ReadMap {
public:
  enum class Kind : uint8_t { Null, Epoch, Map };

  ReadMap() = default;
  ReadMap(ReadMap &&Other) noexcept
      : E(Other.E), ESite(Other.ESite), Entries(Other.Entries),
        Num(Other.Num), Cap(Other.Cap) {
    Other.release();
  }
  ReadMap &operator=(ReadMap &&Other) noexcept {
    if (this != &Other) {
      Arena::freeBlock(Entries);
      E = Other.E;
      ESite = Other.ESite;
      Entries = Other.Entries;
      Num = Other.Num;
      Cap = Other.Cap;
      Other.release();
    }
    return *this;
  }
  ReadMap(const ReadMap &) = delete;
  ReadMap &operator=(const ReadMap &) = delete;
  ~ReadMap() { Arena::freeBlock(Entries); }

  Kind kind() const {
    if (Entries)
      return Kind::Map;
    return E.isNone() ? Kind::Null : Kind::Epoch;
  }
  bool isNull() const { return kind() == Kind::Null; }
  bool isEpoch() const { return kind() == Kind::Epoch; }
  bool isMap() const { return kind() == Kind::Map; }

  /// Number of recorded reads (0, 1, or the map size). Note a map may
  /// legitimately have size 0 or 1 after PACER discards entries.
  size_t size() const;

  /// The epoch; only valid in the Epoch state.
  Epoch epoch() const;

  /// The site recorded with the epoch; only valid in the Epoch state.
  SiteId epochSite() const;

  /// Discards all information (PACER's null assignment).
  void clear();

  /// Replaces the metadata with the single epoch \p NewEpoch (FastTrack's
  /// "overwrite read map" arm). Drops any map storage.
  void setEpoch(Epoch NewEpoch, SiteId Site);

  /// Converts the current epoch into map state ("Share", Table 4 Rule 4)
  /// and then records \p Tid's read. Must currently be in Epoch state.
  void inflateToMap();

  /// Records a read in map state: R[t] <- clock (Table 4 Rule 3 sampling
  /// arm). Must be in Map state.
  void setEntry(ThreadId Tid, uint32_t Clock, SiteId Site);

  /// Removes \p Tid's entry if present (Table 4 Rule 3 non-sampling arm).
  /// Must be in Map state. Returns true if the map is now empty.
  bool removeEntry(ThreadId Tid);

  /// Removes any information recorded for \p Tid regardless of state,
  /// collapsing to Null when nothing remains. Used when a thread slot is
  /// recycled (accordion clocks): the retired thread's accesses are
  /// dominated by every live thread, so they can no longer be the first
  /// access of a race.
  void removeThread(ThreadId Tid);

  /// Accordion compaction: rewrites every recorded thread id through
  /// \p OldToNew (indexed by old slot). Recorded ids always survive
  /// compaction -- recycled slots were scrubbed with removeThread first --
  /// so every lookup is in range and maps to a dense slot.
  void remapThreads(const uint32_t *OldToNew);

  /// True iff every recorded read precedes \p C (R <= C). Null is vacuously
  /// true. O(|R|).
  bool leqClock(const VectorClock &C) const;

  /// Invokes \p Fn(const ReadEntry &) for every recorded read that does
  /// NOT precede \p C, i.e. every read that races with a write at \p C.
  template <typename FnT>
  void forEachViolation(const VectorClock &C, FnT Fn) const {
    if (Entries) {
      for (uint32_t I = 0; I != Num; ++I)
        if (Entries[I].Clock > C.get(Entries[I].Tid))
          Fn(Entries[I]);
      return;
    }
    if (!E.isNone() && !E.precedes(C))
      Fn(ReadEntry{E.tid(), E.clockValue(), ESite});
  }

  /// Invokes \p Fn(const ReadEntry &) for every recorded read.
  template <typename FnT> void forEach(FnT Fn) const {
    if (Entries) {
      for (uint32_t I = 0; I != Num; ++I)
        Fn(Entries[I]);
      return;
    }
    if (!E.isNone())
      Fn(ReadEntry{E.tid(), E.clockValue(), ESite});
  }

  /// Heap bytes owned beyond sizeof(ReadMap), for the space model.
  size_t heapBytes() const;

private:
  ReadEntry *findEntry(ThreadId Tid);

  /// Doubles the entry array's capacity (arena block swap).
  void growEntries();

  /// Forgets the entry storage without freeing it (move support).
  void release() {
    Entries = nullptr;
    Num = 0;
    Cap = 0;
  }

  Epoch E;                  // Valid iff Entries is null and E is not none.
  SiteId ESite = InvalidId;
  ReadEntry *Entries = nullptr; // Arena block; Map state iff non-null.
  uint32_t Num = 0;
  uint32_t Cap = 0;
};

} // namespace pacer

#endif // PACER_CORE_READMAP_H
