//===- core/Epoch.h - FastTrack/PACER epochs (c@t) -------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *epoch* c@t is FastTrack's scalar stand-in for a vector clock when
/// accesses to a variable are totally ordered: the clock value c of thread t
/// at its last access. The relation c@t <= C ("precedes") holds iff
/// c <= C(t) and is evaluated in constant time (paper Equation 4). The
/// minimal epoch 0@0 represents "no access information"; PACER additionally
/// uses a null write epoch, which is equivalent to 0@0 (Section 3.3), so we
/// canonicalize both to the all-zero encoding.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_EPOCH_H
#define PACER_CORE_EPOCH_H

#include "core/Ids.h"
#include "core/VectorClock.h"

namespace pacer {

/// A packed clock-at-thread pair. The all-zero value is the minimal epoch
/// (equivalently PACER's null).
class Epoch {
public:
  /// Constructs the minimal epoch 0@0 (no information / null).
  constexpr Epoch() = default;

  /// Constructs the epoch \p Clock @ \p Tid.
  static constexpr Epoch make(uint32_t Clock, ThreadId Tid) {
    return Epoch((static_cast<uint64_t>(Clock) << 32) | Tid);
  }

  /// The minimal epoch (paper's bottom-e, PACER's null).
  static constexpr Epoch none() { return Epoch(); }

  /// Clock component c of c@t.
  constexpr uint32_t clockValue() const {
    return static_cast<uint32_t>(Bits >> 32);
  }

  /// Thread component t of c@t.
  constexpr ThreadId tid() const { return static_cast<ThreadId>(Bits); }

  /// True for the canonical minimal epoch. Note any 0@t is semantically
  /// minimal; the analysis only ever constructs 0@0.
  constexpr bool isNone() const { return Bits == 0; }

  /// The constant-time happens-before test c@t <= C, i.e. c <= C(t)
  /// (Equation 4 of the paper).
  bool precedes(const VectorClock &C) const {
    return clockValue() <= C.get(tid());
  }

  friend constexpr bool operator==(Epoch A, Epoch B) {
    return A.Bits == B.Bits;
  }
  friend constexpr bool operator!=(Epoch A, Epoch B) {
    return A.Bits != B.Bits;
  }

private:
  explicit constexpr Epoch(uint64_t Bits) : Bits(Bits) {}
  uint64_t Bits = 0;
};

} // namespace pacer

#endif // PACER_CORE_EPOCH_H
