//===- core/SyncClock.h - Shareable copy-on-write vector clocks -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PACER's shareable vector clock. During non-sampling periods threads stop
/// incrementing their clocks, so redundant synchronization produces
/// identical clock values; PACER then performs *shallow* copies (the lock or
/// volatile shares the thread's clock payload) instead of O(n) deep copies
/// (Section 3.2, Algorithm 9). A payload, once marked shared, stays shared
/// for its lifetime; any writer first clones it (Algorithms 10, 11, 16 and
/// the Appendix A note on shallow/deep copies).
///
/// The space model counts each payload once no matter how many
/// synchronization objects reference it, which is exactly how sharing
/// reduces PACER's space overhead in Figure 10.
///
/// Deep copies and clones go element-by-element through
/// VectorClock::copyFrom, i.e. through the word-parallel kernels in
/// core/ClockKernels.h; a payload's spilled clock storage comes from the
/// thread's bound Arena like any other VectorClock.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_SYNCCLOCK_H
#define PACER_CORE_SYNCCLOCK_H

#include "core/VectorClock.h"

#include <memory>

namespace pacer {

/// Reference-counted clock payload with the paper's explicit shared bit.
struct ClockPayload {
  VectorClock Clock;
  bool Shared = false;
};

/// A handle to a possibly shared clock payload.
class SyncClock {
public:
  /// Constructs an unshared minimal clock.
  SyncClock() : Payload(std::make_shared<ClockPayload>()) {}

  /// Read access to the clock value.
  const VectorClock &clock() const { return Payload->Clock; }

  /// True if the payload has been marked shared (isShared() in the paper).
  bool isShared() const { return Payload->Shared; }

  /// Marks the payload shared (setShared(clock, true)).
  void setShared() { Payload->Shared = true; }

  /// Shallow copy: this handle now references \p Source's payload, which
  /// the caller must have marked shared (Algorithm 9's non-sampling arm).
  void shallowCopyFrom(const SyncClock &Source) { Payload = Source.Payload; }

  /// Deep element-by-element copy of \p Source's clock value into a private
  /// payload (Algorithm 9's sampling arm). Allocates a fresh payload if the
  /// current one is shared.
  void deepCopyFrom(const SyncClock &Source, uint64_t *CloneCounter);

  /// Ensures the payload is private before mutation: clones it if shared
  /// (the clone() step of Algorithms 10, 11, and 16).
  void cloneIfShared(uint64_t *CloneCounter);

  /// Mutable access to the clock; the payload must not be shared.
  VectorClock &mutableClock();

  /// Recycle-only escape hatch: zeroes \p Tid's component, writing
  /// through a shared payload deliberately -- when a thread slot is
  /// recycled (accordion clocks), every holder of the payload requires
  /// the identical reset, so in-place mutation is sound.
  void resetComponentForRecycle(ThreadId Tid) { Payload->Clock.set(Tid, 0); }

  /// Accordion compaction of the payload's clock, in place through
  /// sharing for the same reason as resetComponentForRecycle: every
  /// holder needs the identical renumbering. The caller must apply this
  /// exactly once per distinct payloadKey() -- compacting a shared
  /// payload through two handles would renumber it twice.
  void compactSlotsOnce(const uint32_t *NewToOld, uint32_t NewCount) {
    Payload->Clock.compactSlots(NewToOld, NewCount);
  }

  /// Identity of the payload, for space accounting (count unique payloads)
  /// and for the tests that verify sharing behaviour.
  const void *payloadKey() const { return Payload.get(); }

  /// Heap bytes owned by the payload. Callers deduplicate by payloadKey().
  size_t payloadBytes() const {
    return sizeof(ClockPayload) + Payload->Clock.heapBytes();
  }

private:
  std::shared_ptr<ClockPayload> Payload;
};

} // namespace pacer

#endif // PACER_CORE_SYNCCLOCK_H
