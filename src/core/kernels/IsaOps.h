//===- core/kernels/IsaOps.h - Per-ISA kernel table accessors --*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal seam between the runtime dispatcher (ClockKernels.cpp) and the
/// per-ISA translation units. Each accessor returns the ISA's dispatch
/// table when that TU was compiled with the matching instruction set, and
/// nullptr otherwise -- the TUs themselves are always part of the build,
/// preprocessor-gated inside, so the dispatcher never needs #ifdefs.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_KERNELS_ISAOPS_H
#define PACER_CORE_KERNELS_ISAOPS_H

#include "core/ClockKernels.h"

namespace pacer::kernels::detail {

/// nullptr unless built for x86-64 without PACER_DISABLE_SIMD.
const KernelOps *sse2KernelOps();

/// nullptr unless the AVX2 TU was compiled with -mavx2 (x86-64 only; the
/// flag is applied per-file by CMake so the base -march stays baseline).
const KernelOps *avx2KernelOps();

/// nullptr unless the AVX-512 TU was compiled with -mavx512f -mavx512bw
/// (x86-64 only; per-file flags, same scheme as AVX2).
const KernelOps *avx512KernelOps();

/// nullptr unless built for aarch64 NEON without PACER_DISABLE_SIMD.
const KernelOps *neonKernelOps();

} // namespace pacer::kernels::detail

#endif // PACER_CORE_KERNELS_ISAOPS_H
