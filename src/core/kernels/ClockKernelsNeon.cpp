//===- core/kernels/ClockKernelsNeon.cpp ----------------------------------==//
//
// NEON kernel bodies. NEON is part of the aarch64 baseline, so this TU
// needs no extra compile flags; it is empty (accessor returns nullptr) on
// other targets and under PACER_DISABLE_SIMD.
//
//===----------------------------------------------------------------------===//

#include "core/kernels/IsaOps.h"

#if !defined(PACER_DISABLE_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)

#include <arm_neon.h>

namespace pacer::kernels::detail {
namespace {

bool neonJoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  uint32x4_t Diff = vdupq_n_u32(0);
  for (; I + 4 <= N; I += 4) {
    uint32x4_t Va = vld1q_u32(A + I);
    uint32x4_t Vb = vld1q_u32(B + I);
    uint32x4_t Vm = vmaxq_u32(Va, Vb);
    Diff = vorrq_u32(Diff, veorq_u32(Vm, Va));
    vst1q_u32(A + I, Vm);
  }
  bool Changed = vmaxvq_u32(Diff) != 0;
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool neonAllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    if (vmaxvq_u32(vcgtq_u32(vld1q_u32(A + I), vld1q_u32(B + I))) != 0)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool neonAllZero(const uint32_t *A, size_t N) {
  size_t I = 0;
  uint32x4_t Acc = vdupq_n_u32(0);
  for (; I + 4 <= N; I += 4)
    Acc = vorrq_u32(Acc, vld1q_u32(A + I));
  if (vmaxvq_u32(Acc) != 0)
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t neonTrimTrailingZeros(const uint32_t *A, size_t N) {
  while (N >= 4) {
    if (vmaxvq_u32(vld1q_u32(A + N - 4)) != 0)
      break;
    N -= 4;
  }
  return scalarTrimTrailingZeros(A, N);
}

// NEON has no gather instruction; the scalar gather-family bodies are the
// fast path for RemapGather, GatherEq, and ProbeTags alike.
constexpr KernelOps NeonOps = {Isa::Neon,
                               "neon",
                               neonJoinMax,
                               neonAllLeq,
                               neonAllZero,
                               neonTrimTrailingZeros,
                               scalarRemapGather,
                               scalarGatherEq,
                               scalarProbeTags};

} // namespace

const KernelOps *neonKernelOps() { return &NeonOps; }

} // namespace pacer::kernels::detail

#else

namespace pacer::kernels::detail {
const KernelOps *neonKernelOps() { return nullptr; }
} // namespace pacer::kernels::detail

#endif
