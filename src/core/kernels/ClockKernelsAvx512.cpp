//===- core/kernels/ClockKernelsAvx512.cpp --------------------------------==//
//
// AVX-512 kernel bodies. CMake compiles this one file with
// -mavx512f -mavx512bw on x86-64 (the base -march stays baseline, so the
// rest of the binary remains portable); the dispatcher only installs this
// table after the CPUID + xgetbv probe confirmed the executing host and OS
// support AVX-512 (opmask/ZMM/Hi16-ZMM state enabled in XCR0), so no
// AVX-512 instruction ever runs on a host without it. Under
// PACER_DISABLE_SIMD, or when the file is built without AVX-512 enabled,
// the accessor returns nullptr.
//
//===----------------------------------------------------------------------===//

#include "core/kernels/IsaOps.h"

#if !defined(PACER_DISABLE_SIMD) && defined(__AVX512F__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

// GCC's avx512fintrin.h seeds merge-form intrinsics with
// _mm512_undefined_epi32(), which GCC 12 flags as maybe-uninitialized even
// though the merge mask is all-ones. Header-internal false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pacer::kernels::detail {
namespace {

bool avx512JoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  __mmask16 Changed = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i Va = _mm512_loadu_si512(A + I);
    __m512i Vb = _mm512_loadu_si512(B + I);
    __m512i Vm = _mm512_max_epu32(Va, Vb);
    // Vm != Va in a lane iff B > A there, i.e. the join changed A.
    Changed |= _mm512_cmpneq_epu32_mask(Vm, Va);
    _mm512_storeu_si512(A + I, Vm);
  }
  return scalarJoinMax(A + I, B + I, N - I) || Changed != 0;
}

bool avx512AllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i Va = _mm512_loadu_si512(A + I);
    __m512i Vb = _mm512_loadu_si512(B + I);
    if (_mm512_cmpgt_epu32_mask(Va, Vb) != 0)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool avx512AllZero(const uint32_t *A, size_t N) {
  size_t I = 0;
  __m512i Acc = _mm512_setzero_si512();
  for (; I + 16 <= N; I += 16)
    Acc = _mm512_or_si512(Acc, _mm512_loadu_si512(A + I));
  if (_mm512_test_epi32_mask(Acc, Acc) != 0)
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t avx512TrimTrailingZeros(const uint32_t *A, size_t N) {
  // Scan backwards a vector at a time; the first non-zero block hands off
  // to the scalar scan for the exact boundary.
  while (N >= 16) {
    __m512i V = _mm512_loadu_si512(A + N - 16);
    if (_mm512_test_epi32_mask(V, V) != 0)
      break;
    N -= 16;
  }
  return scalarTrimTrailingZeros(A, N);
}

void avx512RemapGather(uint32_t *Dst, const uint32_t *Src,
                       const uint32_t *Idx, size_t N) {
  size_t I = 0;
  // In-place packs are safe: Idx ascends with Idx[i] >= i, so each 16-lane
  // gather reads components at or beyond the store cursor.
  for (; I + 16 <= N; I += 16) {
    __m512i Vi = _mm512_loadu_si512(Idx + I);
    __m512i Vg = _mm512_i32gather_epi32(Vi, Src, /*Scale=*/4);
    _mm512_storeu_si512(Dst + I, Vg);
  }
  scalarRemapGather(Dst + I, Src, Idx + I, N - I);
}

// Byte-offset gathers for the multi-key hot-path probes: scale 1 with the
// caller's precomputed byte offsets, 16 slots per vpgatherdd, hit masks
// straight out of the opmask compares.
uint64_t avx512GatherEq(const void *Base, const uint32_t *ByteOff,
                        const uint32_t *Expect, size_t N) {
  size_t I = 0;
  uint64_t Mask = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i Off = _mm512_loadu_si512(ByteOff + I);
    __m512i V = _mm512_i32gather_epi32(Off, Base, /*Scale=*/1);
    __m512i E = _mm512_loadu_si512(Expect + I);
    Mask |= static_cast<uint64_t>(_mm512_cmpeq_epu32_mask(V, E)) << I;
  }
  if (I != N) // A shift by a full 64 would be UB, so gate the tail merge.
    Mask |= scalarGatherEq(Base, ByteOff + I, Expect + I, N - I) << I;
  return Mask;
}

void avx512ProbeTags(const void *Base, const uint32_t *ByteOff,
                     const uint32_t *Keys, size_t N, uint32_t Empty,
                     uint64_t *HitMask, uint64_t *EmptyMask) {
  size_t I = 0;
  uint64_t Hits = 0, Empties = 0;
  const __m512i VEmpty = _mm512_set1_epi32(static_cast<int>(Empty));
  for (; I + 16 <= N; I += 16) {
    __m512i Off = _mm512_loadu_si512(ByteOff + I);
    __m512i Tags = _mm512_i32gather_epi32(Off, Base, /*Scale=*/1);
    __m512i K = _mm512_loadu_si512(Keys + I);
    Hits |= static_cast<uint64_t>(_mm512_cmpeq_epu32_mask(Tags, K)) << I;
    Empties |= static_cast<uint64_t>(_mm512_cmpeq_epu32_mask(Tags, VEmpty))
               << I;
  }
  if (I != N) { // A shift by a full 64 would be UB, so gate the tail merge.
    uint64_t TailHits = 0, TailEmpties = 0;
    scalarProbeTags(Base, ByteOff + I, Keys + I, N - I, Empty, &TailHits,
                    &TailEmpties);
    Hits |= TailHits << I;
    Empties |= TailEmpties << I;
  }
  *HitMask = Hits;
  *EmptyMask = Empties;
}

constexpr KernelOps Avx512Ops = {Isa::Avx512,
                                 "avx512",
                                 avx512JoinMax,
                                 avx512AllLeq,
                                 avx512AllZero,
                                 avx512TrimTrailingZeros,
                                 avx512RemapGather,
                                 avx512GatherEq,
                                 avx512ProbeTags};

} // namespace

const KernelOps *avx512KernelOps() { return &Avx512Ops; }

} // namespace pacer::kernels::detail

#else

namespace pacer::kernels::detail {
const KernelOps *avx512KernelOps() { return nullptr; }
} // namespace pacer::kernels::detail

#endif
