//===- core/kernels/ClockKernelsAvx2.cpp ----------------------------------==//
//
// AVX2 kernel bodies. CMake compiles this one file with -mavx2 on x86-64
// (the base -march stays baseline, so the rest of the binary remains
// portable); the dispatcher only installs this table after the CPUID +
// xgetbv probe confirmed the executing host and OS support AVX2, so no
// AVX instruction ever runs on a host without it. Under
// PACER_DISABLE_SIMD, or when the file is built without AVX2 enabled, the
// accessor returns nullptr.
//
//===----------------------------------------------------------------------===//

#include "core/kernels/IsaOps.h"

#if !defined(PACER_DISABLE_SIMD) && defined(__AVX2__)

#include <immintrin.h>

namespace pacer::kernels::detail {
namespace {

bool avx2JoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  __m256i Diff = _mm256_setzero_si256();
  for (; I + 8 <= N; I += 8) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    __m256i Vm = _mm256_max_epu32(Va, Vb);
    // Vm != Va in a lane iff B > A there, i.e. the join changed A.
    Diff = _mm256_or_si256(Diff, _mm256_xor_si256(Vm, Va));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(A + I), Vm);
  }
  bool Changed = !_mm256_testz_si256(Diff, Diff);
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool avx2AllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    // A <= B per lane iff max(A, B) == B.
    __m256i Le = _mm256_cmpeq_epi32(_mm256_max_epu32(Va, Vb), Vb);
    if (static_cast<uint32_t>(_mm256_movemask_epi8(Le)) != 0xffffffffu)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool avx2AllZero(const uint32_t *A, size_t N) {
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 8 <= N; I += 8)
    Acc = _mm256_or_si256(
        Acc, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)));
  if (!_mm256_testz_si256(Acc, Acc))
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t avx2TrimTrailingZeros(const uint32_t *A, size_t N) {
  // Scan backwards a vector at a time; the first non-zero block hands off
  // to the scalar scan for the exact boundary.
  while (N >= 8) {
    __m256i V =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + N - 8));
    if (!_mm256_testz_si256(V, V))
      break;
    N -= 8;
  }
  return scalarTrimTrailingZeros(A, N);
}

void avx2RemapGather(uint32_t *Dst, const uint32_t *Src, const uint32_t *Idx,
                     size_t N) {
  size_t I = 0;
  // In-place packs are safe: Idx ascends with Idx[i] >= i, so each 8-lane
  // gather reads components at or beyond the store cursor.
  for (; I + 8 <= N; I += 8) {
    __m256i Vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Idx + I));
    __m256i Vg = _mm256_i32gather_epi32(reinterpret_cast<const int *>(Src),
                                        Vi, /*Scale=*/4);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), Vg);
  }
  scalarRemapGather(Dst + I, Src, Idx + I, N - I);
}

// Byte-offset gathers for the multi-key hot-path probes: scale 1 with the
// caller's precomputed byte offsets, so slots at any stride (hash-table
// Slot structs, detector VarState fields) gather in one vpgatherdd.
inline __m256i gather32(const void *Base, const uint32_t *ByteOff) {
  __m256i Off =
      _mm256_loadu_si256(reinterpret_cast<const __m256i *>(ByteOff));
  return _mm256_i32gather_epi32(static_cast<const int *>(Base), Off,
                                /*Scale=*/1);
}

inline uint64_t laneMask8(__m256i Eq) {
  return static_cast<uint64_t>(static_cast<uint8_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(Eq))));
}

uint64_t avx2GatherEq(const void *Base, const uint32_t *ByteOff,
                      const uint32_t *Expect, size_t N) {
  size_t I = 0;
  uint64_t Mask = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i V = gather32(Base, ByteOff + I);
    __m256i E =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Expect + I));
    Mask |= laneMask8(_mm256_cmpeq_epi32(V, E)) << I;
  }
  if (I != N) // A shift by a full 64 would be UB, so gate the tail merge.
    Mask |= scalarGatherEq(Base, ByteOff + I, Expect + I, N - I) << I;
  return Mask;
}

void avx2ProbeTags(const void *Base, const uint32_t *ByteOff,
                   const uint32_t *Keys, size_t N, uint32_t Empty,
                   uint64_t *HitMask, uint64_t *EmptyMask) {
  size_t I = 0;
  uint64_t Hits = 0, Empties = 0;
  const __m256i VEmpty = _mm256_set1_epi32(static_cast<int>(Empty));
  for (; I + 8 <= N; I += 8) {
    __m256i Tags = gather32(Base, ByteOff + I);
    __m256i K =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Keys + I));
    Hits |= laneMask8(_mm256_cmpeq_epi32(Tags, K)) << I;
    Empties |= laneMask8(_mm256_cmpeq_epi32(Tags, VEmpty)) << I;
  }
  if (I != N) { // A shift by a full 64 would be UB, so gate the tail merge.
    uint64_t TailHits = 0, TailEmpties = 0;
    scalarProbeTags(Base, ByteOff + I, Keys + I, N - I, Empty, &TailHits,
                    &TailEmpties);
    Hits |= TailHits << I;
    Empties |= TailEmpties << I;
  }
  *HitMask = Hits;
  *EmptyMask = Empties;
}

constexpr KernelOps Avx2Ops = {Isa::Avx2,
                               "avx2",
                               avx2JoinMax,
                               avx2AllLeq,
                               avx2AllZero,
                               avx2TrimTrailingZeros,
                               avx2RemapGather,
                               avx2GatherEq,
                               avx2ProbeTags};

} // namespace

const KernelOps *avx2KernelOps() { return &Avx2Ops; }

} // namespace pacer::kernels::detail

#else

namespace pacer::kernels::detail {
const KernelOps *avx2KernelOps() { return nullptr; }
} // namespace pacer::kernels::detail

#endif
