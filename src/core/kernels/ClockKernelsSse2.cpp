//===- core/kernels/ClockKernelsSse2.cpp ----------------------------------==//
//
// SSE2 kernel bodies. SSE2 is part of the x86-64 baseline, so this TU
// needs no extra compile flags; it is empty (accessor returns nullptr) on
// other targets and under PACER_DISABLE_SIMD.
//
//===----------------------------------------------------------------------===//

#include "core/kernels/IsaOps.h"

#if !defined(PACER_DISABLE_SIMD) && (defined(__SSE2__) || defined(_M_X64))

#include <emmintrin.h>

namespace pacer::kernels::detail {
namespace {

// SSE2 lacks an unsigned 32-bit max/compare; flipping the sign bit maps
// unsigned order onto the signed compare.
inline __m128i unsignedGt(__m128i A, __m128i B) {
  const __m128i Sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  return _mm_cmpgt_epi32(_mm_xor_si128(A, Sign), _mm_xor_si128(B, Sign));
}

bool sse2JoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  __m128i AnyGt = _mm_setzero_si128();
  for (; I + 4 <= N; I += 4) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    __m128i Gt = unsignedGt(Vb, Va); // Lanes where B > A: the join changes A.
    __m128i Vm = _mm_or_si128(_mm_and_si128(Gt, Vb), _mm_andnot_si128(Gt, Va));
    AnyGt = _mm_or_si128(AnyGt, Gt);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(A + I), Vm);
  }
  bool Changed = _mm_movemask_epi8(AnyGt) != 0;
  return scalarJoinMax(A + I, B + I, N - I) || Changed;
}

bool sse2AllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    if (_mm_movemask_epi8(unsignedGt(Va, Vb)) != 0)
      return false;
  }
  return scalarAllLeq(A + I, B + I, N - I);
}

bool sse2AllZero(const uint32_t *A, size_t N) {
  size_t I = 0;
  __m128i Acc = _mm_setzero_si128();
  for (; I + 4 <= N; I += 4)
    Acc = _mm_or_si128(
        Acc, _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)));
  if (_mm_movemask_epi8(_mm_cmpeq_epi32(Acc, _mm_setzero_si128())) != 0xffff)
    return false;
  return scalarAllZero(A + I, N - I);
}

size_t sse2TrimTrailingZeros(const uint32_t *A, size_t N) {
  while (N >= 4) {
    __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + N - 4));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(V, _mm_setzero_si128())) != 0xffff)
      break;
    N -= 4;
  }
  return scalarTrimTrailingZeros(A, N);
}

// SSE2 has no gather instruction; the scalar gather-family bodies are the
// fast path for RemapGather, GatherEq, and ProbeTags alike.
constexpr KernelOps Sse2Ops = {Isa::Sse2,
                               "sse2",
                               sse2JoinMax,
                               sse2AllLeq,
                               sse2AllZero,
                               sse2TrimTrailingZeros,
                               scalarRemapGather,
                               scalarGatherEq,
                               scalarProbeTags};

} // namespace

const KernelOps *sse2KernelOps() { return &Sse2Ops; }

} // namespace pacer::kernels::detail

#else

namespace pacer::kernels::detail {
const KernelOps *sse2KernelOps() { return nullptr; }
} // namespace pacer::kernels::detail

#endif
