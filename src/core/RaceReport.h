//===- core/RaceReport.h - Race reports and sinks --------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A race report names the two conflicting accesses: the *first* access is
/// the one recorded in the variable's write epoch or read map (whose site
/// PACER stores with the metadata), and the *second* access is the current
/// operation (Section 4, "Reporting Races"). A *distinct* (static) race is
/// the pair of program sites, which is how the paper's Table 2 counts races
/// "even if the race occurs multiple times in a single execution".
///
//===----------------------------------------------------------------------===//

#ifndef PACER_CORE_RACEREPORT_H
#define PACER_CORE_RACEREPORT_H

#include "core/Ids.h"

#include <cstdint>
#include <functional>
#include <string>

namespace pacer {

/// Whether an access reads or writes.
enum class AccessKind : uint8_t { Read, Write };

/// Returns "read" or "write".
const char *accessKindName(AccessKind Kind);

/// One dynamic data race.
struct RaceReport {
  VarId Var = InvalidId;
  AccessKind FirstKind = AccessKind::Read;
  AccessKind SecondKind = AccessKind::Read;
  ThreadId FirstThread = InvalidId;
  ThreadId SecondThread = InvalidId;
  SiteId FirstSite = InvalidId;
  SiteId SecondSite = InvalidId;

  /// Renders a human-readable one-line description.
  std::string str() const;
};

/// A statically distinct race: the ordered pair of program sites
/// (first access site, second access site).
struct RaceKey {
  SiteId FirstSite = InvalidId;
  SiteId SecondSite = InvalidId;

  friend bool operator==(RaceKey A, RaceKey B) {
    return A.FirstSite == B.FirstSite && A.SecondSite == B.SecondSite;
  }
  friend bool operator<(RaceKey A, RaceKey B) {
    if (A.FirstSite != B.FirstSite)
      return A.FirstSite < B.FirstSite;
    return A.SecondSite < B.SecondSite;
  }
};

/// Extracts the distinct-race key from a dynamic report.
inline RaceKey raceKey(const RaceReport &Report) {
  return {Report.FirstSite, Report.SecondSite};
}

/// Receiver of race reports. Detectors report and continue (they update
/// metadata as if the execution were race free), matching the practical
/// FastTrack/PACER implementations rather than the formal semantics'
/// "stuck" state.
class RaceSink {
public:
  virtual ~RaceSink();
  virtual void onRace(const RaceReport &Report) = 0;
};

/// Sink that drops all reports (for overhead measurement).
class NullRaceSink final : public RaceSink {
public:
  void onRace(const RaceReport &Report) override {}
};

} // namespace pacer

template <> struct std::hash<pacer::RaceKey> {
  size_t operator()(pacer::RaceKey Key) const {
    uint64_t Bits =
        (static_cast<uint64_t>(Key.FirstSite) << 32) | Key.SecondSite;
    // SplitMix64 finalizer.
    Bits = (Bits ^ (Bits >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Bits = (Bits ^ (Bits >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(Bits ^ (Bits >> 31));
  }
};

#endif // PACER_CORE_RACEREPORT_H
