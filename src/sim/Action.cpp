//===- sim/Action.cpp -----------------------------------------------------==//

#include "sim/Action.h"

#include <cstdio>

using namespace pacer;

const char *pacer::actionKindName(ActionKind Kind) {
  switch (Kind) {
  case ActionKind::Read:
    return "rd";
  case ActionKind::Write:
    return "wr";
  case ActionKind::Acquire:
    return "acq";
  case ActionKind::Release:
    return "rel";
  case ActionKind::Fork:
    return "fork";
  case ActionKind::Join:
    return "join";
  case ActionKind::VolatileRead:
    return "vol_rd";
  case ActionKind::VolatileWrite:
    return "vol_wr";
  case ActionKind::AwaitVolatile:
    return "await";
  case ActionKind::ThreadExit:
    return "exit";
  }
  return "?";
}

std::string Action::str() const {
  char Buf[64];
  if (isAccessAction(Kind))
    std::snprintf(Buf, sizeof(Buf), "%s(t%u, x%u)@s%u", actionKindName(Kind),
                  Tid, Target, Site);
  else
    std::snprintf(Buf, sizeof(Buf), "%s(t%u, %u)", actionKindName(Kind), Tid,
                  Target);
  return Buf;
}
