//===- sim/Action.h - Program actions and traces ---------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The action alphabet of the paper's Appendix A: rd, wr, acq, rel, fork,
/// join, vol_rd, and vol_wr, plus a ThreadExit marker the scheduler uses to
/// implement join semantics (a thread performs no actions after another
/// thread joins it). A *trace* is the interleaved sequence of actions a
/// multithreaded execution performs; the runtime replays traces through a
/// detector exactly as compiler-inserted instrumentation would deliver them.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_ACTION_H
#define PACER_SIM_ACTION_H

#include "core/Ids.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pacer {

/// Kinds of dynamic actions.
enum class ActionKind : uint8_t {
  Read,          ///< rd(t, x): Target is a VarId; Site is the access site.
  Write,         ///< wr(t, x).
  Acquire,       ///< acq(t, m): Target is a LockId.
  Release,       ///< rel(t, m).
  Fork,          ///< fork(t, u): Target is the child ThreadId.
  Join,          ///< join(t, u): Target is the joined ThreadId.
  VolatileRead,  ///< vol_rd(t, vx): Target is a VolatileId.
  VolatileWrite, ///< vol_wr(t, vx).
  /// A condensed spin loop: vol_rd(t, vx) that the scheduler delays until
  /// vx has been written at least Site times (Site doubles as the write
  /// threshold). Detectors see an ordinary volatile read -- exactly the
  /// read that finally observes the awaited write. Models the
  /// spin-until-published idiom that makes real racy code run right after
  /// its trigger.
  AwaitVolatile,
  ThreadExit, ///< Scheduler-internal: thread t terminates.
};

/// Returns a short name like "rd" or "acq".
const char *actionKindName(ActionKind Kind);

/// True for acq/rel/fork/join/vol_rd/vol_wr (the synchronization actions).
inline bool isSyncAction(ActionKind Kind) {
  switch (Kind) {
  case ActionKind::Acquire:
  case ActionKind::Release:
  case ActionKind::Fork:
  case ActionKind::Join:
  case ActionKind::VolatileRead:
  case ActionKind::VolatileWrite:
  case ActionKind::AwaitVolatile:
    return true;
  case ActionKind::Read:
  case ActionKind::Write:
  case ActionKind::ThreadExit:
    return false;
  }
  return false;
}

/// True for data-variable reads and writes.
inline bool isAccessAction(ActionKind Kind) {
  return Kind == ActionKind::Read || Kind == ActionKind::Write;
}

/// Largest thread id an Action can carry: Tid is packed into 24 bits so
/// the whole action is 12 bytes -- the record width of the binary trace
/// format v2, whose files are (on matching hosts) a pointer cast away
/// from a span of Actions. The paper's prototype never reuses thread ids,
/// but 16M threads outlasts every workload here by orders of magnitude.
inline constexpr uint32_t MaxActionTid = (1u << 24) - 1;

/// One dynamic action, packed to 12 bytes (Kind and Tid share a word).
/// The layout doubles as the v2 trace record: see sim/TraceIO.h.
struct Action {
  ActionKind Kind : 8;
  ThreadId Tid : 24;           ///< At most MaxActionTid.
  uint32_t Target = InvalidId; ///< Var/Lock/Volatile/Thread id by Kind.
  SiteId Site = InvalidId;     ///< Program site for Read/Write.

  /// Renders "rd(t2, x17)@s4"-style text for diagnostics.
  std::string str() const;
};

static_assert(sizeof(Action) == 12, "Action must match the 12-byte v2 "
                                    "trace record");
static_assert(alignof(Action) == 4, "v2 records are 4-byte aligned");

/// An interleaved execution.
using Trace = std::vector<Action>;

/// A read-only view of an execution: the replay, indexing, and sharding
/// paths all take spans so a memory-mapped trace file (sim/TraceView.h)
/// analyses without ever materializing a Trace.
using TraceSpan = std::span<const Action>;

/// The per-thread program the scheduler interleaves.
struct ThreadScript {
  ThreadId Tid = InvalidId;
  std::vector<Action> Ops;
};

} // namespace pacer

#endif // PACER_SIM_ACTION_H
