//===- sim/ScriptBuilder.h - Per-trial thread-script generation -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the per-thread programs for one trial of a workload. The main
/// thread initializes the read-shared variables, then forks worker waves
/// (bounded by MaxLiveWorkers) and joins each wave before starting the
/// next, reproducing the paper's total-vs-max-live thread structure
/// (Table 2). Workers execute a randomized mix of lock-disciplined shared
/// accesses, thread-local accesses, read-only shared reads, volatile
/// operations, and balanced lock regions (always acquired in ascending
/// lock-id order, so schedules cannot deadlock).
///
/// Planted races pass their per-trial occurrence gate here: the builder
/// picks two distinct workers of one wave and splices the racy accesses
/// into their scripts at random positions. Whether the accesses actually
/// race then depends on the schedule.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_SCRIPTBUILDER_H
#define PACER_SIM_SCRIPTBUILDER_H

#include "sim/Action.h"
#include "sim/WorkloadSpec.h"
#include "support/Rng.h"

#include <vector>

namespace pacer {

/// Generates the thread scripts for one trial.
class ScriptBuilder {
public:
  ScriptBuilder(const CompiledWorkload &Workload, Rng TrialRng)
      : Workload(Workload), Random(TrialRng) {}

  /// Builds all scripts, indexed by thread id (main is thread 0).
  std::vector<ThreadScript> build();

private:
  /// Picks a site: a hot method with probability HotSitePickProb, then a
  /// uniform site within the method.
  SiteId pickSite();

  /// Builds the main thread's script (init, fork/join waves).
  ThreadScript buildMain();

  /// Builds one worker's base script (no racy accesses yet).
  ThreadScript buildWorker(ThreadId Tid);

  /// Appends approximately \p Budget operations of the randomized worker
  /// mix to \p Script; enters and leaves with no locks held.
  void emitTaskOps(ThreadScript &Script, uint64_t Budget);

  /// ForkJoinTasks: builds the main script (init, fork/join windows of
  /// root tasks).
  ThreadScript buildForkJoinMain();

  /// ForkJoinTasks: builds the scripts of the task tree occupying tids
  /// [\p FirstTid, FirstTid + S(\p Depth)): the root runs half its ops,
  /// forks and joins its subtrees, runs the rest, and exits.
  void buildTaskTree(std::vector<ThreadScript> &Scripts, ThreadId FirstTid,
                     uint32_t Depth);

  /// Splices this trial's gated planted races into the worker scripts.
  void plantRaces(std::vector<ThreadScript> &Scripts);

  const CompiledWorkload &Workload;
  Rng Random;
};

} // namespace pacer

#endif // PACER_SIM_SCRIPTBUILDER_H
