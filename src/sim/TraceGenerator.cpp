//===- sim/TraceGenerator.cpp ---------------------------------------------==//

#include "sim/TraceGenerator.h"

#include "sim/Scheduler.h"
#include "sim/ScriptBuilder.h"
#include "support/Rng.h"

using namespace pacer;

Trace pacer::generateTrace(const CompiledWorkload &Workload,
                           uint64_t TrialSeed) {
  Rng TrialRng(TrialSeed ^ 0x50414345u /*"PACE"*/);
  Rng BuilderRng = TrialRng.split();
  Rng SchedulerRng = TrialRng.split();
  ScriptBuilder Builder(Workload, BuilderRng);
  Scheduler Sched(Builder.build(), SchedulerRng,
                  Workload.spec().MaxSchedulerBurst);
  return Sched.run();
}

TraceProfile pacer::profileTrace(TraceSpan T) {
  TraceProfile Profile;
  Profile.Total = T.size();
  for (const Action &A : T) {
    switch (A.Kind) {
    case ActionKind::Read:
      ++Profile.Reads;
      break;
    case ActionKind::Write:
      ++Profile.Writes;
      break;
    case ActionKind::VolatileRead:
    case ActionKind::VolatileWrite:
    case ActionKind::AwaitVolatile:
      ++Profile.Volatiles;
      ++Profile.SyncOps;
      break;
    case ActionKind::Fork:
      ++Profile.Forks;
      ++Profile.SyncOps;
      break;
    case ActionKind::Acquire:
    case ActionKind::Release:
    case ActionKind::Join:
      ++Profile.SyncOps;
      break;
    case ActionKind::ThreadExit:
      break;
    }
  }
  return Profile;
}
