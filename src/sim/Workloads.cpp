//===- sim/Workloads.cpp --------------------------------------------------==//

#include "sim/Workloads.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace pacer;

/// Appends \p Count planted races with the given occurrence probability.
/// Every third race is made hot when \p SomeHot is set, and access kinds
/// rotate write-write, write-read, read-write so all metadata paths are
/// exercised.
static void addRaces(WorkloadSpec &Spec, uint32_t Count, double Occurrence,
                     uint32_t Pairs, bool SomeHot) {
  for (uint32_t I = 0; I < Count; ++I) {
    PlantedRace Race;
    Race.OccurrenceProb = Occurrence;
    Race.PairsPerTrial = Pairs;
    Race.Hot = SomeHot && (I % 3 == 0);
    switch (I % 3) {
    case 0:
      Race.FirstKind = AccessKind::Write;
      Race.SecondKind = AccessKind::Write;
      break;
    case 1:
      Race.FirstKind = AccessKind::Write;
      Race.SecondKind = AccessKind::Read;
      break;
    default:
      Race.FirstKind = AccessKind::Read;
      Race.SecondKind = AccessKind::Write;
      break;
    }
    Spec.Races.push_back(Race);
  }
}

WorkloadSpec pacer::eclipseModel() {
  WorkloadSpec Spec;
  Spec.Name = "eclipse";
  Spec.WorkerThreads = 15; // 16 total threads (Table 2).
  Spec.MaxLiveWorkers = 7; // 8 max live including main.
  Spec.LocalVarsPerThread = 96;
  Spec.SharedVars = 512;
  Spec.ReadSharedVars = 96;
  Spec.Locks = 24;
  Spec.Volatiles = 8;
  Spec.Methods = 80;
  Spec.SitesPerMethod = 12;
  Spec.HotMethodFraction = 0.2;
  Spec.HotSitePickProb = 0.9;
  Spec.OpsPerWorker = 22000;
  Spec.SyncOpFraction = 0.01;
  Spec.WriteFraction = 0.25;
  // Rarity spectrum calibrated to Table 2: ~27 common evaluation races,
  // a moderate band, and a rare tail. A third of the common races are in
  // hot code for the LiteRace comparison.
  addRaces(Spec, 28, 0.85, 4, /*SomeHot=*/true);
  addRaces(Spec, 18, 0.25, 3, /*SomeHot=*/false);
  addRaces(Spec, 34, 0.05, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::hsqldbModel() {
  WorkloadSpec Spec;
  Spec.Name = "hsqldb";
  Spec.WorkerThreads = 402; // 403 total threads.
  Spec.MaxLiveWorkers = 101; // 102 max live including main.
  Spec.LocalVarsPerThread = 24;
  Spec.SharedVars = 768;
  Spec.ReadSharedVars = 64;
  Spec.Locks = 32;
  Spec.Volatiles = 12;
  Spec.Methods = 60;
  Spec.SitesPerMethod = 10;
  Spec.HotMethodFraction = 0.2;
  Spec.HotSitePickProb = 0.85;
  Spec.OpsPerWorker = 700;
  Spec.SyncOpFraction = 0.012;
  Spec.WriteFraction = 0.3;
  // All 23 races appear in every fully sampled trial (Table 2); a few
  // extra are essentially never seen at 100% in 50 trials but do show up
  // across the >1,000 sampled trials.
  addRaces(Spec, 23, 1.0, 6, /*SomeHot=*/true);
  addRaces(Spec, 5, 0.02, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::xalanModel() {
  WorkloadSpec Spec;
  Spec.Name = "xalan";
  Spec.WorkerThreads = 8; // 9 total threads...
  Spec.MaxLiveWorkers = 8; // ...all live at once.
  Spec.LocalVarsPerThread = 96;
  Spec.SharedVars = 384;
  Spec.ReadSharedVars = 64;
  Spec.Locks = 16;
  Spec.Volatiles = 8;
  Spec.Methods = 50;
  Spec.SitesPerMethod = 10;
  Spec.HotMethodFraction = 0.2;
  Spec.HotSitePickProb = 0.9;
  Spec.OpsPerWorker = 32000;
  Spec.SyncOpFraction = 0.01;
  Spec.WriteFraction = 0.3;
  // Table 2: 70 races >= 1 of 50 trials, but only 19 in >= 25: a long
  // rare tail.
  addRaces(Spec, 20, 0.8, 4, /*SomeHot=*/true);
  addRaces(Spec, 16, 0.2, 3, /*SomeHot=*/false);
  addRaces(Spec, 39, 0.06, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::pseudojbbModel() {
  WorkloadSpec Spec;
  Spec.Name = "pseudojbb";
  Spec.WorkerThreads = 36; // 37 total threads.
  Spec.MaxLiveWorkers = 8; // 9 max live including main.
  Spec.LocalVarsPerThread = 64;
  Spec.SharedVars = 512;
  Spec.ReadSharedVars = 64;
  Spec.Locks = 24;
  Spec.Volatiles = 8;
  Spec.Methods = 50;
  Spec.SitesPerMethod = 10;
  Spec.HotMethodFraction = 0.2;
  Spec.HotSitePickProb = 0.9;
  Spec.OpsPerWorker = 9000;
  Spec.SyncOpFraction = 0.01;
  Spec.WriteFraction = 0.35;
  // Table 2: 14 races total, 11 common.
  addRaces(Spec, 11, 0.9, 4, /*SomeHot=*/true);
  addRaces(Spec, 3, 0.25, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::forkJoinModel() {
  WorkloadSpec Spec;
  Spec.Name = "forkjoin";
  Spec.Family = WorkloadFamily::ForkJoinTasks;
  Spec.TaskDepth = 2;
  Spec.TaskFanout = 4;   // Tree size 5: a root plus four leaves.
  Spec.WorkerThreads = 600; // 120 task trees over the run.
  Spec.MaxLiveWorkers = 20; // Window of 4 trees; <= 21 threads live.
  Spec.LocalVarsPerThread = 16;
  Spec.SharedVars = 192;
  Spec.ReadSharedVars = 32;
  Spec.Locks = 12;
  Spec.Volatiles = 6;
  Spec.Methods = 30;
  Spec.SitesPerMethod = 8;
  Spec.HotMethodFraction = 0.2;
  Spec.HotSitePickProb = 0.9;
  Spec.OpsPerWorker = 400; // Short-lived tasks: spawn-dominated traces.
  Spec.SyncOpFraction = 0.012;
  Spec.WriteFraction = 0.3;
  // Races between window-concurrent tasks: mostly common so on/off
  // report-identity checks exercise real reports, plus a rare tail.
  addRaces(Spec, 6, 0.9, 3, /*SomeHot=*/true);
  addRaces(Spec, 4, 0.15, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::forkJoinModelWithTasks(uint32_t Tasks) {
  WorkloadSpec Spec = forkJoinModel();
  uint32_t Tree = 1;
  for (uint32_t D = 1; D < Spec.TaskDepth; ++D)
    Tree = 1 + Spec.TaskFanout * Tree;
  Spec.WorkerThreads = std::max<uint32_t>(1, Tasks / Tree) * Tree;
  return Spec;
}

std::vector<WorkloadSpec> pacer::paperWorkloads() {
  return {eclipseModel(), hsqldbModel(), xalanModel(), pseudojbbModel()};
}

WorkloadSpec pacer::paperWorkloadByName(const std::string &Name) {
  for (WorkloadSpec &Spec : paperWorkloads())
    if (Spec.Name == Name)
      return std::move(Spec);
  if (Name == "forkjoin")
    return forkJoinModel();
  fatalError("unknown workload name (want eclipse, hsqldb, xalan, "
             "pseudojbb, or forkjoin)");
}

WorkloadSpec pacer::tinyTestWorkload() {
  WorkloadSpec Spec;
  Spec.Name = "tiny";
  Spec.WorkerThreads = 4;
  Spec.MaxLiveWorkers = 4;
  Spec.LocalVarsPerThread = 16;
  Spec.SharedVars = 48;
  Spec.ReadSharedVars = 12;
  Spec.Locks = 6;
  Spec.Volatiles = 3;
  Spec.Methods = 10;
  Spec.SitesPerMethod = 6;
  Spec.OpsPerWorker = 1500;
  Spec.SyncOpFraction = 0.015;
  addRaces(Spec, 4, 1.0, 4, /*SomeHot=*/true);
  addRaces(Spec, 2, 0.3, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::mediumTestWorkload() {
  WorkloadSpec Spec;
  Spec.Name = "medium";
  Spec.WorkerThreads = 12;
  Spec.MaxLiveWorkers = 6;
  Spec.LocalVarsPerThread = 32;
  Spec.SharedVars = 128;
  Spec.ReadSharedVars = 32;
  Spec.Locks = 12;
  Spec.Volatiles = 6;
  Spec.Methods = 20;
  Spec.SitesPerMethod = 8;
  Spec.OpsPerWorker = 5000;
  Spec.SyncOpFraction = 0.012;
  addRaces(Spec, 8, 0.9, 4, /*SomeHot=*/true);
  addRaces(Spec, 4, 0.2, 2, /*SomeHot=*/false);
  return Spec;
}

WorkloadSpec pacer::scaleWorkload(WorkloadSpec Spec, double Factor) {
  PACER_CHECK(Factor >= 0.01, "scale factor too small");
  Spec.OpsPerWorker = std::max<uint64_t>(
      100, static_cast<uint64_t>(std::llround(
               static_cast<double>(Spec.OpsPerWorker) * Factor)));
  return Spec;
}
