//===- sim/Workloads.h - Calibrated benchmark workload models --*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four workload models standing in for the paper's benchmarks
/// (Section 5.1): the multithreaded DaCapo benchmarks eclipse, hsqldb, and
/// xalan (version 2006-10-MR1) and pseudojbb (fixed-workload SPECjbb2000).
/// Each model is calibrated to the published shape: thread counts from
/// Table 2 (total vs max live), ~3% synchronization density (Section 2.2),
/// and a planted-race population whose occurrence-rate distribution
/// reproduces Table 2's race-count columns (some races in every trial, some
/// in a handful of 50 fully sampled trials, some essentially never).
///
/// Absolute event counts are scaled to simulator-friendly sizes; bench
/// binaries accept a --scale flag to grow them.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_WORKLOADS_H
#define PACER_SIM_WORKLOADS_H

#include "sim/WorkloadSpec.h"

#include <vector>

namespace pacer {

/// eclipse model: 16 total threads, 8 max live; many races with a broad
/// rarity spectrum; about a third of the common races are in hot code
/// (these are the ones LiteRace misses, Figure 6).
WorkloadSpec eclipseModel();

/// hsqldb model: 403 total threads, 102 max live; 23 races that occur in
/// every trial plus a few very rare ones.
WorkloadSpec hsqldbModel();

/// xalan model: 9 total threads, all live at once; many races, most rare.
WorkloadSpec xalanModel();

/// pseudojbb model: 37 total threads, 9 max live; few races, mostly common.
WorkloadSpec pseudojbbModel();

/// Fork/join task-graph model (WorkloadFamily::ForkJoinTasks): 600
/// short-lived tasks in depth-2 trees of five, at most ~21 threads live.
/// Not a paper benchmark -- it is the thread-churn stress family for
/// accordion slot recycling (total threads >> max live).
WorkloadSpec forkJoinModel();

/// forkJoinModel scaled to approximately \p Tasks total tasks (rounded to
/// whole task trees); the live-thread cap stays fixed, so growing Tasks
/// grows spawn churn, not concurrency.
WorkloadSpec forkJoinModelWithTasks(uint32_t Tasks);

/// All four paper workloads in presentation order.
std::vector<WorkloadSpec> paperWorkloads();

/// Returns the paper workload named \p Name (eclipse, hsqldb, xalan,
/// pseudojbb) or the extension family "forkjoin"; aborts on an unknown
/// name.
WorkloadSpec paperWorkloadByName(const std::string &Name);

/// Small, fast workload for unit and property tests: a few threads, a few
/// thousand events, a handful of certain and rare races.
WorkloadSpec tinyTestWorkload();

/// Mid-sized workload for integration tests.
WorkloadSpec mediumTestWorkload();

/// Multiplies the per-worker operation count by \p Factor (>= 0.01).
WorkloadSpec scaleWorkload(WorkloadSpec Spec, double Factor);

} // namespace pacer

#endif // PACER_SIM_WORKLOADS_H
