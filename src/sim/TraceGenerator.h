//===- sim/TraceGenerator.h - Workload-to-trace facade ---------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the script builder and scheduler together: one call turns a
/// compiled workload and a trial seed into a complete interleaved trace.
/// The trace is a pure function of (workload, seed), so the same trial can
/// be replayed through any number of detectors -- this is how the harness
/// compares PACER at rate r against the fully sampled ground truth on the
/// *same* execution.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_TRACEGENERATOR_H
#define PACER_SIM_TRACEGENERATOR_H

#include "sim/Action.h"
#include "sim/WorkloadSpec.h"

#include <cstdint>

namespace pacer {

/// Generates the trace of trial \p TrialSeed of \p Workload.
Trace generateTrace(const CompiledWorkload &Workload, uint64_t TrialSeed);

/// Summary statistics of a trace, used by tests and workload calibration.
struct TraceProfile {
  uint64_t Total = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t SyncOps = 0;
  uint64_t Volatiles = 0;
  uint64_t Forks = 0;
  double syncFraction() const {
    uint64_t Analysed = Reads + Writes + SyncOps;
    return Analysed == 0 ? 0.0
                         : static_cast<double>(SyncOps) /
                               static_cast<double>(Analysed);
  }
};

/// Profiles \p T.
TraceProfile profileTrace(TraceSpan T);

} // namespace pacer

#endif // PACER_SIM_TRACEGENERATOR_H
