//===- sim/TraceIO.cpp ----------------------------------------------------==//

#include "sim/TraceIO.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace pacer;

static const char *kindToken(ActionKind Kind) {
  switch (Kind) {
  case ActionKind::Read:
    return "rd";
  case ActionKind::Write:
    return "wr";
  case ActionKind::Acquire:
    return "acq";
  case ActionKind::Release:
    return "rel";
  case ActionKind::Fork:
    return "fork";
  case ActionKind::Join:
    return "join";
  case ActionKind::VolatileRead:
    return "vrd";
  case ActionKind::VolatileWrite:
    return "vwr";
  case ActionKind::AwaitVolatile:
    return "await";
  case ActionKind::ThreadExit:
    return "exit";
  }
  return "?";
}

static bool tokenToKind(const std::string &Token, ActionKind &Kind) {
  static const struct {
    const char *Name;
    ActionKind Kind;
  } Table[] = {
      {"rd", ActionKind::Read},          {"wr", ActionKind::Write},
      {"acq", ActionKind::Acquire},      {"rel", ActionKind::Release},
      {"fork", ActionKind::Fork},        {"join", ActionKind::Join},
      {"vrd", ActionKind::VolatileRead}, {"vwr", ActionKind::VolatileWrite},
      {"await", ActionKind::AwaitVolatile},
      {"exit", ActionKind::ThreadExit},
  };
  for (const auto &Entry : Table) {
    if (Token == Entry.Name) {
      Kind = Entry.Kind;
      return true;
    }
  }
  return false;
}

static void appendField(std::string &Out, uint32_t Value) {
  if (Value == InvalidId) {
    Out += '-';
    return;
  }
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu32, Value);
  Out += Buf;
}

const char *pacer::traceFormatName(TraceFormat Format) {
  return Format == TraceFormat::Text ? "text" : "binary";
}

bool pacer::parseTraceFormat(const std::string &Text, TraceFormat &Format) {
  if (Text == "text") {
    Format = TraceFormat::Text;
    return true;
  }
  if (Text == "binary") {
    Format = TraceFormat::Binary;
    return true;
  }
  return false;
}

std::string pacer::serializeTrace(TraceSpan T) {
  std::string Out = "pacer-trace v1 " + std::to_string(T.size()) + "\n";
  for (const Action &A : T) {
    Out += kindToken(A.Kind);
    Out += ' ';
    appendField(Out, A.Tid);
    Out += ' ';
    appendField(Out, A.Target);
    Out += ' ';
    appendField(Out, A.Site);
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Binary record packing
//===----------------------------------------------------------------------===//

static constexpr uint8_t MaxKindByte =
    static_cast<uint8_t>(ActionKind::ThreadExit);

static void putLE32(unsigned char *Out, uint32_t Value) {
  Out[0] = static_cast<unsigned char>(Value);
  Out[1] = static_cast<unsigned char>(Value >> 8);
  Out[2] = static_cast<unsigned char>(Value >> 16);
  Out[3] = static_cast<unsigned char>(Value >> 24);
}

static uint32_t getLE32(const unsigned char *In) {
  return static_cast<uint32_t>(In[0]) | (static_cast<uint32_t>(In[1]) << 8) |
         (static_cast<uint32_t>(In[2]) << 16) |
         (static_cast<uint32_t>(In[3]) << 24);
}

bool pacer::actionLayoutMatchesBinaryRecord() {
  static const bool Matches = [] {
    const Action Probe{ActionKind::ThreadExit, 0x00ABCDEFu, 0x11223344u,
                       0x55667788u};
    unsigned char Expect[BinaryTraceRecordBytes];
    putLE32(Expect, static_cast<uint32_t>(MaxKindByte) | (0x00ABCDEFu << 8));
    putLE32(Expect + 4, 0x11223344u);
    putLE32(Expect + 8, 0x55667788u);
    return std::memcmp(&Probe, Expect, BinaryTraceRecordBytes) == 0;
  }();
  return Matches;
}

void pacer::packBinaryRecord(const Action &A, unsigned char *Out) {
  putLE32(Out, static_cast<uint32_t>(static_cast<uint8_t>(A.Kind)) |
                   (static_cast<uint32_t>(A.Tid) << 8));
  putLE32(Out + 4, A.Target);
  putLE32(Out + 8, A.Site);
}

bool pacer::unpackBinaryRecord(const unsigned char *In, Action &A) {
  const uint32_t Word0 = getLE32(In);
  const uint8_t KindByte = static_cast<uint8_t>(Word0);
  if (KindByte > MaxKindByte)
    return false;
  A.Kind = static_cast<ActionKind>(KindByte);
  A.Tid = Word0 >> 8;
  A.Target = getLE32(In + 4);
  A.Site = getLE32(In + 8);
  return true;
}

const char *pacer::validateActionRecord(const Action &A) {
  if ((A.Kind == ActionKind::Fork || A.Kind == ActionKind::Join) &&
      A.Target > MaxActionTid)
    return "fork/join child thread id out of range";
  return nullptr;
}

void pacer::packBinaryHeader(uint64_t Count, unsigned char *Out) {
  std::memcpy(Out, BinaryTraceMagic, 8);
  putLE32(Out + 8, BinaryTraceVersion);
  putLE32(Out + 12, 0); // Flags, reserved.
  putLE32(Out + 16, static_cast<uint32_t>(Count));
  putLE32(Out + 20, static_cast<uint32_t>(Count >> 32));
}

namespace {

/// Validates a v2 header; returns false with \p Why set.
bool checkBinaryHeader(const unsigned char *Header, size_t Len,
                       uint64_t &Count, const char *&Why) {
  if (Len < BinaryTraceHeaderBytes) {
    Why = "truncated header";
    return false;
  }
  if (std::memcmp(Header, BinaryTraceMagic, 8) != 0) {
    Why = "bad binary trace magic";
    return false;
  }
  if (getLE32(Header + 8) != BinaryTraceVersion) {
    Why = "unsupported binary trace version";
    return false;
  }
  if (getLE32(Header + 12) != 0) {
    Why = "unsupported binary trace flags";
    return false;
  }
  Count = static_cast<uint64_t>(getLE32(Header + 16)) |
          (static_cast<uint64_t>(getLE32(Header + 20)) << 32);
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Text parsing
//===----------------------------------------------------------------------===//

namespace {

/// Minimal whitespace tokenizer over one line.
class LineLexer {
public:
  LineLexer(const char *Begin, const char *End) : Pos(Begin), End(End) {}

  bool next(std::string &Token) {
    while (Pos < End && *Pos == ' ')
      ++Pos;
    if (Pos >= End)
      return false;
    const char *Start = Pos;
    while (Pos < End && *Pos != ' ')
      ++Pos;
    Token.assign(Start, Pos - Start);
    return true;
  }

private:
  const char *Pos;
  const char *End;
};

bool parseField(const std::string &Token, uint32_t &Value) {
  if (Token == "-") {
    Value = InvalidId;
    return true;
  }
  if (Token.empty())
    return false;
  uint64_t Parsed = 0;
  for (char C : Token) {
    if (C < '0' || C > '9')
      return false;
    Parsed = Parsed * 10 + static_cast<uint64_t>(C - '0');
    if (Parsed > UINT32_MAX)
      return false;
  }
  Value = static_cast<uint32_t>(Parsed);
  return true;
}

} // namespace

bool TextTraceParser::failLine(const char *Why) {
  Failed = true;
  Error = "line " + std::to_string(LineNo) + ": " + Why;
  return false;
}

bool TextTraceParser::parseLine(const char *Begin, const char *End,
                                Trace &Out) {
  if (!SawHeader) {
    LineLexer Lexer(Begin, End);
    std::string Magic, Version, Count;
    if (!Lexer.next(Magic) || Magic != "pacer-trace")
      return failLine("missing pacer-trace magic");
    if (!Lexer.next(Version) || Version != "v1")
      return failLine("unsupported version");
    if (!Lexer.next(Count))
      return failLine("missing action count");
    SawHeader = true;
    return true;
  }
  if (Begin == End)
    return true; // Blank line.
  LineLexer Lexer(Begin, End);
  std::string KindToken, TidToken, TargetToken, SiteToken;
  if (!Lexer.next(KindToken) || !Lexer.next(TidToken) ||
      !Lexer.next(TargetToken) || !Lexer.next(SiteToken))
    return failLine("expected 4 fields");
  ActionKind Kind;
  uint32_t Tid, Target, Site;
  if (!tokenToKind(KindToken, Kind))
    return failLine("unknown action kind");
  if (!parseField(TidToken, Tid) || Tid > MaxActionTid)
    return failLine("bad thread id");
  if (!parseField(TargetToken, Target))
    return failLine("bad target");
  if (!parseField(SiteToken, Site))
    return failLine("bad site");
  std::string Extra;
  if (Lexer.next(Extra))
    return failLine("trailing tokens");
  const Action A{Kind, Tid, Target, Site};
  if (const char *Bad = validateActionRecord(A))
    return failLine(Bad);
  Out.push_back(A);
  return true;
}

void TextTraceParser::append(const char *Data, size_t Len) {
  // Compact consumed bytes before growing: the buffer never holds more
  // than the unparsed tail plus one append, so text loading is O(window).
  if (Pos > 0 && (Pos == Buf.size() || Pos >= (64u << 10))) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Data, Len);
}

bool TextTraceParser::drain(Trace &Out, size_t Max) {
  if (Failed)
    return false;
  size_t Produced = 0;
  while (Produced < Max) {
    const size_t Newline = Buf.find('\n', Pos);
    if (Newline == std::string::npos) {
      if (!Finished || Pos >= Buf.size())
        return true; // Need more input (or fully drained).
      // Final line without a trailing newline.
      ++LineNo;
      const size_t Before = Out.size();
      if (!parseLine(Buf.data() + Pos, Buf.data() + Buf.size(), Out))
        return false;
      Pos = Buf.size();
      Produced += Out.size() - Before;
      return true;
    }
    ++LineNo;
    const size_t Before = Out.size();
    if (!parseLine(Buf.data() + Pos, Buf.data() + Newline, Out))
      return false;
    Pos = Newline + 1;
    Produced += Out.size() - Before;
  }
  return true;
}

bool TextTraceParser::finish(Trace &Out, size_t Max) {
  Finished = true;
  if (!Failed && !SawHeader && Buf.size() == Pos) {
    LineNo = 1;
    return failLine("empty input");
  }
  return drain(Out, Max);
}

TraceParseResult pacer::parseTrace(const std::string &Text) {
  TraceParseResult Result;
  TextTraceParser Parser;
  Parser.append(Text.data(), Text.size());
  if (!Parser.finish(Result.T, SIZE_MAX)) {
    Result.Error = Parser.error();
    return Result;
  }
  Result.Ok = true;
  return Result;
}

//===----------------------------------------------------------------------===//
// Files
//===----------------------------------------------------------------------===//

bool pacer::writeTraceFile(const std::string &Path, TraceSpan T) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  // Serialize in slabs so writing a large trace never builds the whole
  // text image in memory.
  constexpr size_t SlabActions = 64 << 10;
  bool Ok = true;
  {
    std::string Header =
        "pacer-trace v1 " + std::to_string(T.size()) + "\n";
    Ok = std::fwrite(Header.data(), 1, Header.size(), File) == Header.size();
  }
  std::string Slab;
  for (size_t Begin = 0; Ok && Begin < T.size(); Begin += SlabActions) {
    const size_t End = std::min(T.size(), Begin + SlabActions);
    Slab.clear();
    for (size_t I = Begin; I < End; ++I) {
      const Action &A = T[I];
      Slab += kindToken(A.Kind);
      Slab += ' ';
      appendField(Slab, A.Tid);
      Slab += ' ';
      appendField(Slab, A.Target);
      Slab += ' ';
      appendField(Slab, A.Site);
      Slab += '\n';
    }
    Ok = std::fwrite(Slab.data(), 1, Slab.size(), File) == Slab.size();
  }
  Ok &= std::fclose(File) == 0;
  return Ok;
}

bool pacer::writeTraceFileBinary(const std::string &Path, TraceSpan T) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  unsigned char Header[BinaryTraceHeaderBytes];
  packBinaryHeader(T.size(), Header);
  bool Ok = std::fwrite(Header, 1, sizeof(Header), File) == sizeof(Header);
  if (Ok && !T.empty()) {
    if (actionLayoutMatchesBinaryRecord()) {
      // The records ARE the in-memory actions: one bulk write.
      const size_t Bytes = T.size() * BinaryTraceRecordBytes;
      Ok = std::fwrite(T.data(), 1, Bytes, File) == Bytes;
    } else {
      constexpr size_t SlabRecords = 16 << 10;
      unsigned char Slab[SlabRecords * BinaryTraceRecordBytes];
      size_t InSlab = 0;
      for (const Action &A : T) {
        packBinaryRecord(A, Slab + InSlab * BinaryTraceRecordBytes);
        if (++InSlab == SlabRecords) {
          Ok = std::fwrite(Slab, 1, sizeof(Slab), File) == sizeof(Slab);
          InSlab = 0;
          if (!Ok)
            break;
        }
      }
      if (Ok && InSlab > 0) {
        const size_t Bytes = InSlab * BinaryTraceRecordBytes;
        Ok = std::fwrite(Slab, 1, Bytes, File) == Bytes;
      }
    }
  }
  Ok &= std::fclose(File) == 0;
  return Ok;
}

bool pacer::writeTraceFile(const std::string &Path, TraceSpan T,
                           TraceFormat Format) {
  return Format == TraceFormat::Binary ? writeTraceFileBinary(Path, T)
                                       : writeTraceFile(Path, T);
}

bool pacer::detectTraceFileFormat(const std::string &Path,
                                  TraceFormat &Format, std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  int First = std::fgetc(File);
  std::fclose(File);
  if (First == EOF) {
    Error = Path + ": empty file";
    return false;
  }
  Format = static_cast<unsigned char>(First) == BinaryTraceMagic0
               ? TraceFormat::Binary
               : TraceFormat::Text;
  return true;
}

namespace {

TraceParseResult readBinaryTraceFile(const std::string &Path,
                                     std::FILE *File) {
  TraceParseResult Result;
  unsigned char Header[BinaryTraceHeaderBytes];
  const size_t Got = std::fread(Header, 1, sizeof(Header), File);
  uint64_t Count = 0;
  const char *Why = nullptr;
  if (!checkBinaryHeader(Header, Got, Count, Why)) {
    Result.Error = Path + ": " + Why;
    return Result;
  }

  // Check the promised count against the bytes actually present before
  // sizing anything by it: a corrupt header must produce a diagnostic,
  // not a count-sized allocation (this build has no exceptions, so an
  // absurd reserve would abort the process).
  const long DataStart = std::ftell(File);
  if (DataStart < 0 || std::fseek(File, 0, SEEK_END) != 0) {
    Result.Error = Path + ": cannot determine file size";
    return Result;
  }
  const long FileEnd = std::ftell(File);
  if (FileEnd < DataStart ||
      std::fseek(File, DataStart, SEEK_SET) != 0) {
    Result.Error = Path + ": cannot determine file size";
    return Result;
  }
  const uint64_t BodyBytes = static_cast<uint64_t>(FileEnd - DataStart);
  if (Count > BodyBytes / BinaryTraceRecordBytes) {
    Result.Error = Path + ": truncated trace (header promises " +
                   std::to_string(Count) + " records)";
    return Result;
  }

  Result.T.reserve(Count);
  const bool Bulk = actionLayoutMatchesBinaryRecord();
  constexpr size_t SlabRecords = 16 << 10;
  std::vector<unsigned char> Slab(SlabRecords * BinaryTraceRecordBytes);
  uint64_t Remaining = Count;
  while (Remaining > 0) {
    const size_t Want = static_cast<size_t>(
        std::min<uint64_t>(Remaining, SlabRecords));
    const size_t Bytes =
        std::fread(Slab.data(), 1, Want * BinaryTraceRecordBytes, File);
    const size_t Records = Bytes / BinaryTraceRecordBytes;
    if (Records == 0 || Bytes % BinaryTraceRecordBytes != 0) {
      Result.Error = Path + ": truncated trace (header promises " +
                     std::to_string(Count) + " records)";
      return Result;
    }
    if (Bulk) {
      const auto *Actions = reinterpret_cast<const Action *>(Slab.data());
      // Even on the bulk path the kind bytes are validated: a corrupt
      // record must fail loudly, not dispatch as garbage.
      for (size_t I = 0; I < Records; ++I) {
        if (static_cast<uint8_t>(Actions[I].Kind) > MaxKindByte) {
          Result.Error =
              Path + ": bad action kind in record " +
              std::to_string(Count - Remaining + I);
          return Result;
        }
        if (const char *Bad = validateActionRecord(Actions[I])) {
          Result.Error = Path + ": " + Bad + " in record " +
                         std::to_string(Count - Remaining + I);
          return Result;
        }
      }
      Result.T.insert(Result.T.end(), Actions, Actions + Records);
    } else {
      for (size_t I = 0; I < Records; ++I) {
        Action A;
        if (!unpackBinaryRecord(Slab.data() + I * BinaryTraceRecordBytes,
                                A)) {
          Result.Error =
              Path + ": bad action kind in record " +
              std::to_string(Count - Remaining + I);
          return Result;
        }
        if (const char *Bad = validateActionRecord(A)) {
          Result.Error = Path + ": " + Bad + " in record " +
                         std::to_string(Count - Remaining + I);
          return Result;
        }
        Result.T.push_back(A);
      }
    }
    Remaining -= Records;
  }
  if (std::fgetc(File) != EOF) {
    Result.Error = Path + ": trailing bytes after " +
                   std::to_string(Count) + " records";
    return Result;
  }
  Result.Ok = true;
  return Result;
}

TraceParseResult readTextTraceFile(const std::string &Path,
                                   std::FILE *File) {
  TraceParseResult Result;
  TextTraceParser Parser;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0) {
    Parser.append(Buf, Got);
    if (!Parser.drain(Result.T, SIZE_MAX)) {
      Result.Error = Parser.error();
      return Result;
    }
  }
  if (!Parser.finish(Result.T, SIZE_MAX)) {
    Result.Error = Parser.error();
    return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace

TraceParseResult pacer::readTraceFile(const std::string &Path,
                                      TraceFormat *Format) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    TraceParseResult Result;
    Result.Error = "cannot open " + Path;
    return Result;
  }
  const int First = std::fgetc(File);
  if (First == EOF) {
    std::fclose(File);
    TraceParseResult Result;
    Result.Error = "line 1: empty input";
    return Result;
  }
  std::rewind(File);
  const TraceFormat Detected =
      static_cast<unsigned char>(First) == BinaryTraceMagic0
          ? TraceFormat::Binary
          : TraceFormat::Text;
  TraceParseResult Result = Detected == TraceFormat::Binary
                                ? readBinaryTraceFile(Path, File)
                                : readTextTraceFile(Path, File);
  std::fclose(File);
  if (Result.Ok && Format)
    *Format = Detected;
  return Result;
}
