//===- sim/TraceIO.cpp ----------------------------------------------------==//

#include "sim/TraceIO.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace pacer;

static const char *kindToken(ActionKind Kind) {
  switch (Kind) {
  case ActionKind::Read:
    return "rd";
  case ActionKind::Write:
    return "wr";
  case ActionKind::Acquire:
    return "acq";
  case ActionKind::Release:
    return "rel";
  case ActionKind::Fork:
    return "fork";
  case ActionKind::Join:
    return "join";
  case ActionKind::VolatileRead:
    return "vrd";
  case ActionKind::VolatileWrite:
    return "vwr";
  case ActionKind::AwaitVolatile:
    return "await";
  case ActionKind::ThreadExit:
    return "exit";
  }
  return "?";
}

static bool tokenToKind(const std::string &Token, ActionKind &Kind) {
  static const struct {
    const char *Name;
    ActionKind Kind;
  } Table[] = {
      {"rd", ActionKind::Read},          {"wr", ActionKind::Write},
      {"acq", ActionKind::Acquire},      {"rel", ActionKind::Release},
      {"fork", ActionKind::Fork},        {"join", ActionKind::Join},
      {"vrd", ActionKind::VolatileRead}, {"vwr", ActionKind::VolatileWrite},
      {"await", ActionKind::AwaitVolatile},
      {"exit", ActionKind::ThreadExit},
  };
  for (const auto &Entry : Table) {
    if (Token == Entry.Name) {
      Kind = Entry.Kind;
      return true;
    }
  }
  return false;
}

static void appendField(std::string &Out, uint32_t Value) {
  if (Value == InvalidId) {
    Out += '-';
    return;
  }
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu32, Value);
  Out += Buf;
}

std::string pacer::serializeTrace(const Trace &T) {
  std::string Out = "pacer-trace v1 " + std::to_string(T.size()) + "\n";
  for (const Action &A : T) {
    Out += kindToken(A.Kind);
    Out += ' ';
    appendField(Out, A.Tid);
    Out += ' ';
    appendField(Out, A.Target);
    Out += ' ';
    appendField(Out, A.Site);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Minimal whitespace tokenizer over one line.
class LineLexer {
public:
  explicit LineLexer(const std::string &Text, size_t Begin, size_t End)
      : Text(Text), Pos(Begin), End(End) {}

  bool next(std::string &Token) {
    while (Pos < End && Text[Pos] == ' ')
      ++Pos;
    if (Pos >= End)
      return false;
    size_t Start = Pos;
    while (Pos < End && Text[Pos] != ' ')
      ++Pos;
    Token.assign(Text, Start, Pos - Start);
    return true;
  }

private:
  const std::string &Text;
  size_t Pos;
  size_t End;
};

bool parseField(const std::string &Token, uint32_t &Value) {
  if (Token == "-") {
    Value = InvalidId;
    return true;
  }
  if (Token.empty())
    return false;
  uint64_t Parsed = 0;
  for (char C : Token) {
    if (C < '0' || C > '9')
      return false;
    Parsed = Parsed * 10 + static_cast<uint64_t>(C - '0');
    if (Parsed > UINT32_MAX)
      return false;
  }
  Value = static_cast<uint32_t>(Parsed);
  return true;
}

TraceParseResult fail(size_t Line, const char *Why) {
  TraceParseResult Result;
  Result.Error =
      "line " + std::to_string(Line) + ": " + Why;
  return Result;
}

} // namespace

TraceParseResult pacer::parseTrace(const std::string &Text) {
  size_t Pos = 0;
  size_t LineNo = 0;

  auto NextLine = [&](size_t &Begin, size_t &End) {
    if (Pos >= Text.size())
      return false;
    Begin = Pos;
    size_t Newline = Text.find('\n', Pos);
    if (Newline == std::string::npos) {
      End = Text.size();
      Pos = Text.size();
    } else {
      End = Newline;
      Pos = Newline + 1;
    }
    ++LineNo;
    return true;
  };

  size_t Begin = 0, End = 0;
  if (!NextLine(Begin, End))
    return fail(1, "empty input");
  {
    LineLexer Lexer(Text, Begin, End);
    std::string Magic, Version, Count;
    if (!Lexer.next(Magic) || Magic != "pacer-trace")
      return fail(LineNo, "missing pacer-trace magic");
    if (!Lexer.next(Version) || Version != "v1")
      return fail(LineNo, "unsupported version");
    if (!Lexer.next(Count))
      return fail(LineNo, "missing action count");
  }

  TraceParseResult Result;
  while (NextLine(Begin, End)) {
    if (Begin == End)
      continue; // Blank line.
    LineLexer Lexer(Text, Begin, End);
    std::string KindToken, TidToken, TargetToken, SiteToken;
    if (!Lexer.next(KindToken) || !Lexer.next(TidToken) ||
        !Lexer.next(TargetToken) || !Lexer.next(SiteToken))
      return fail(LineNo, "expected 4 fields");
    Action A;
    if (!tokenToKind(KindToken, A.Kind))
      return fail(LineNo, "unknown action kind");
    if (!parseField(TidToken, A.Tid) || A.Tid == InvalidId)
      return fail(LineNo, "bad thread id");
    if (!parseField(TargetToken, A.Target))
      return fail(LineNo, "bad target");
    if (!parseField(SiteToken, A.Site))
      return fail(LineNo, "bad site");
    std::string Extra;
    if (Lexer.next(Extra))
      return fail(LineNo, "trailing tokens");
    Result.T.push_back(A);
  }
  Result.Ok = true;
  return Result;
}

bool pacer::writeTraceFile(const std::string &Path, const Trace &T) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Text = serializeTrace(T);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

TraceParseResult pacer::readTraceFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File) {
    TraceParseResult Result;
    Result.Error = "cannot open " + Path;
    return Result;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return parseTrace(Text);
}
