//===- sim/Scheduler.cpp --------------------------------------------------==//

#include "sim/Scheduler.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace pacer;

Scheduler::Scheduler(std::vector<ThreadScript> ScriptsIn, Rng SchedulerRng,
                     uint32_t MaxBurst, SchedulePolicy Policy)
    : Scripts(std::move(ScriptsIn)), Random(SchedulerRng),
      MaxBurst(std::max<uint32_t>(1, MaxBurst)), Policy(Policy) {
  Pc.assign(Scripts.size(), 0);
  States.assign(Scripts.size(), Status::NotStarted);
  PACER_CHECK(!Scripts.empty(), "no scripts to schedule");
  States[0] = Status::Ready;
  Ready.push_back(0);
}

bool Scheduler::isBlocked(ThreadId Tid) const {
  const std::vector<Action> &Ops = Scripts[Tid].Ops;
  if (Pc[Tid] >= Ops.size())
    return true; // Nothing left (defensive; ThreadExit ends scripts).
  const Action &Next = Ops[Pc[Tid]];
  switch (Next.Kind) {
  case ActionKind::Acquire:
    return Next.Target < LockOwner.size() &&
           LockOwner[Next.Target] != InvalidId &&
           LockOwner[Next.Target] != Tid;
  case ActionKind::Join:
    return States[Next.Target] != Status::Finished;
  case ActionKind::AwaitVolatile:
    // Spin-until-written: runnable once the volatile has been written at
    // least Site times.
    return Next.Target >= VolatileWrites.size() ||
           VolatileWrites[Next.Target] < Next.Site;
  default:
    return false;
  }
}

void Scheduler::step(ThreadId Tid, Trace &Out) {
  const Action &Next = Scripts[Tid].Ops[Pc[Tid]];
  switch (Next.Kind) {
  case ActionKind::Acquire:
    if (Next.Target >= LockOwner.size())
      LockOwner.resize(Next.Target + 1, InvalidId);
    assert(LockOwner[Next.Target] == InvalidId && "acquiring a held lock");
    LockOwner[Next.Target] = Tid;
    break;
  case ActionKind::Release:
    assert(Next.Target < LockOwner.size() &&
           LockOwner[Next.Target] == Tid && "releasing an unheld lock");
    LockOwner[Next.Target] = InvalidId;
    break;
  case ActionKind::Fork:
    assert(States[Next.Target] == Status::NotStarted && "double fork");
    States[Next.Target] = Status::Ready;
    Ready.push_back(Next.Target);
    break;
  case ActionKind::ThreadExit:
    States[Tid] = Status::Finished;
    ++FinishedCount;
    break;
  case ActionKind::VolatileWrite:
    if (Next.Target >= VolatileWrites.size())
      VolatileWrites.resize(Next.Target + 1, 0);
    ++VolatileWrites[Next.Target];
    break;
  default:
    break;
  }
  Out.push_back(Next);
  ++Pc[Tid];
}

Trace Scheduler::run() {
  size_t TotalOps = 0;
  for (const ThreadScript &Script : Scripts) {
    PACER_CHECK(!Script.Ops.empty() &&
                    Script.Ops.back().Kind == ActionKind::ThreadExit,
                "scripts must end with ThreadExit");
    TotalOps += Script.Ops.size();
  }

  Trace Out;
  Out.reserve(TotalOps);

  while (FinishedCount < Scripts.size()) {
    // Drop finished threads from the ready list lazily.
    std::erase_if(Ready,
                  [&](ThreadId Tid) { return States[Tid] != Status::Ready; });

    // Pick an enabled thread per policy: random probes (falling back to a
    // full scan), or the next ready thread in rotation.
    ThreadId Chosen = InvalidId;
    if (Policy == SchedulePolicy::RoundRobin) {
      for (size_t Probe = 0, E = Ready.size(); Probe != E; ++Probe) {
        ThreadId Candidate = Ready[(RoundRobinCursor + Probe) % Ready.size()];
        if (!isBlocked(Candidate)) {
          Chosen = Candidate;
          RoundRobinCursor = (RoundRobinCursor + Probe + 1) % Ready.size();
          break;
        }
      }
    } else {
      for (size_t Probe = 0, E = Ready.size(); Probe != E; ++Probe) {
        ThreadId Candidate = Ready[Random.nextBelow(Ready.size())];
        if (!isBlocked(Candidate)) {
          Chosen = Candidate;
          break;
        }
      }
    }
    if (Chosen == InvalidId) {
      for (ThreadId Candidate : Ready) {
        if (!isBlocked(Candidate)) {
          Chosen = Candidate;
          break;
        }
      }
    }
    if (Chosen == InvalidId) {
      // Every ready thread is blocked. Spin waits (AwaitVolatile) give up
      // when nothing else can run -- a real spin loop would keep the CPU
      // and eventually take its timeout/fallback path -- so force one
      // past its await. Lock or join cycles, which the generator's
      // disciplines rule out, remain fatal.
      bool Forced = false;
      for (ThreadId Candidate : Ready) {
        const Action &Next = Scripts[Candidate].Ops[Pc[Candidate]];
        if (Next.Kind == ActionKind::AwaitVolatile) {
          step(Candidate, Out);
          Forced = true;
          break;
        }
      }
      PACER_CHECK(Forced, "scheduler deadlock");
      continue;
    }

    // Run a short random burst; stop early if the thread blocks or exits.
    uint64_t Burst = 1 + Random.nextBelow(MaxBurst);
    for (uint64_t I = 0; I < Burst && States[Chosen] == Status::Ready &&
                         !isBlocked(Chosen);
         ++I)
      step(Chosen, Out);
  }
  return Out;
}
