//===- sim/TraceIO.h - Trace serialization ---------------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of execution traces: record an instrumented run once
/// and analyse it offline any number of times. This is the workflow the
/// paper attributes to LiteRace ("recording synchronization, read, and
/// write operations to a log file" with offline race checks, Section 2.3),
/// and it is also how the repository's experiments can be archived and
/// replayed bit-identically.
///
/// Format: a header line `pacer-trace v1 <count>` followed by one action
/// per line, `<kind> <tid> <target> <site>`, with InvalidId rendered
/// as `-`. Parsing is strict and reports the first offending line.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_TRACEIO_H
#define PACER_SIM_TRACEIO_H

#include "sim/Action.h"

#include <string>

namespace pacer {

/// Serializes \p T into the text format.
std::string serializeTrace(const Trace &T);

/// Result of parsing: either a trace or a diagnostic.
struct TraceParseResult {
  Trace T;
  bool Ok = false;
  std::string Error; ///< Empty when Ok.
};

/// Parses the text format produced by serializeTrace().
TraceParseResult parseTrace(const std::string &Text);

/// Writes \p T to \p Path. Returns false (and sets no state) on I/O error.
bool writeTraceFile(const std::string &Path, const Trace &T);

/// Reads a trace from \p Path; Ok is false with a diagnostic on failure.
TraceParseResult readTraceFile(const std::string &Path);

} // namespace pacer

#endif // PACER_SIM_TRACEIO_H
