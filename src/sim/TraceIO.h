//===- sim/TraceIO.h - Trace serialization ---------------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of execution traces: record an instrumented run once and
/// analyse it offline any number of times. This is the workflow the paper
/// attributes to LiteRace ("recording synchronization, read, and write
/// operations to a log file" with offline race checks, Section 2.3), and
/// it is also how the repository's experiments can be archived and
/// replayed bit-identically. Two formats share one reader:
///
///  - *Text* (`pacer-trace v1`): a header line `pacer-trace v1 <count>`
///    followed by one action per line, `<kind> <tid> <target> <site>`,
///    with InvalidId rendered as `-`. Human-readable and diffable;
///    parsing is strict and reports the first offending line.
///
///  - *Binary* (`pacer-trace v2`): a 24-byte header (8-byte magic whose
///    first byte is 0xB7 -- non-ASCII, so the two formats are told apart
///    by the first byte of the file -- then a version word, a flags word,
///    and the record count) followed by fixed-width 12-byte little-endian
///    action records: word0 = Kind | Tid << 8, word1 = Target, word2 =
///    Site. The record layout is exactly the in-memory Action on LE hosts
///    with the expected bitfield order, so loading is a bulk read (and
///    mmap -- see sim/TraceView.h -- is a pointer cast); a portable
///    pack/unpack path covers everything else.
///
/// readTraceFile() auto-detects the format and streams either one: the
/// text path parses line by line from a fixed window and the binary path
/// reads records in bounded slabs, so loading never holds file bytes and
/// the parsed trace in memory at once (only the Trace itself grows).
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_TRACEIO_H
#define PACER_SIM_TRACEIO_H

#include "sim/Action.h"

#include <cstdint>
#include <string>

namespace pacer {

/// On-disk trace encodings.
enum class TraceFormat : uint8_t {
  Text,   ///< pacer-trace v1, line-oriented.
  Binary, ///< pacer-trace v2, fixed-width 12-byte records.
};

/// Returns "text" or "binary".
const char *traceFormatName(TraceFormat Format);

/// Parses a --trace-format flag value; returns false on anything other
/// than "text" or "binary".
bool parseTraceFormat(const std::string &Text, TraceFormat &Format);

// --- Binary format v2 constants -----------------------------------------

/// First byte of a v2 file. Deliberately non-ASCII: a text trace starts
/// with 'p', so one byte classifies a file.
inline constexpr unsigned char BinaryTraceMagic0 = 0xB7;

/// Full 8-byte magic: 0xB7 'P' 'A' 'C' 'E' 'R' 'v' '2'.
inline constexpr unsigned char BinaryTraceMagic[8] = {
    BinaryTraceMagic0, 'P', 'A', 'C', 'E', 'R', 'v', '2'};

/// Header: magic[8] + u32 version + u32 flags (reserved, 0) + u64 count.
inline constexpr size_t BinaryTraceHeaderBytes = 24;
inline constexpr uint32_t BinaryTraceVersion = 2;

/// One record: Kind | Tid << 8, Target, Site -- all little-endian u32.
inline constexpr size_t BinaryTraceRecordBytes = 12;
static_assert(BinaryTraceRecordBytes == sizeof(Action),
              "v2 records mirror the in-memory Action");

/// True when the host's Action layout is byte-for-byte the v2 record
/// encoding (little-endian, Kind in the low byte of word0): bulk reads
/// and writes can then move Actions without packing, and a mapped file
/// is directly a span of Actions. Checked once at runtime; exotic ABIs
/// fall back to the portable pack/unpack path everywhere.
bool actionLayoutMatchesBinaryRecord();

/// Encodes \p A into \p Out (exactly BinaryTraceRecordBytes), portably.
void packBinaryRecord(const Action &A, unsigned char *Out);

/// Decodes one record; returns false on an out-of-range kind byte.
bool unpackBinaryRecord(const unsigned char *In, Action &A);

/// Validates a decoded record's fields beyond the kind byte: Fork and
/// Join carry a child ThreadId in Target, which must fit the 24-bit tid
/// space (MaxActionTid) like every other tid -- a larger value cannot
/// have come from the writer and would grow per-thread detector state
/// without bound. Returns nullptr for a well-formed record, else a
/// static reason string. Every trace read path (buffered, mmap view,
/// streaming, text) applies this before handing actions to analysis.
const char *validateActionRecord(const Action &A);

/// Renders the 24-byte v2 header for \p Count records into \p Out.
void packBinaryHeader(uint64_t Count, unsigned char *Out);

// --- Text format ---------------------------------------------------------

/// Serializes \p T into the text format.
std::string serializeTrace(TraceSpan T);

/// Result of parsing: either a trace or a diagnostic.
struct TraceParseResult {
  Trace T;
  bool Ok = false;
  std::string Error; ///< Empty when Ok.
};

/// Parses the text format produced by serializeTrace().
TraceParseResult parseTrace(const std::string &Text);

/// Incremental text parser: append() file bytes in any chunking, drain()
/// parsed actions in bounded batches. Backs both readTraceFile's
/// line-by-line text path and StreamingTraceReader's bounded window --
/// at no point do the whole file's bytes sit in memory.
class TextTraceParser {
public:
  /// Buffers \p Len more input bytes.
  void append(const char *Data, size_t Len);

  /// Parses buffered *complete* lines into \p Out until \p Max actions
  /// have been appended or the buffer holds no full line. Call finish()
  /// at end of input to flush a final unterminated line. Returns false
  /// on a malformed line (error() names it); the parser is then stuck.
  bool drain(Trace &Out, size_t Max);

  /// Marks end of input and parses any remaining buffered text (the
  /// final line may lack a newline). drain() afterwards returns the
  /// leftovers if \p Max truncated this call's output.
  bool finish(Trace &Out, size_t Max);

  /// True once the header line has parsed (actions may follow).
  bool headerSeen() const { return SawHeader; }

  /// Empty until a parse error; then "line N: why".
  const std::string &error() const { return Error; }

private:
  bool parseLine(const char *Begin, const char *End, Trace &Out);
  bool failLine(const char *Why);

  std::string Buf;
  size_t Pos = 0; ///< Scan position within Buf.
  size_t LineNo = 0;
  bool SawHeader = false;
  bool Finished = false;
  bool Failed = false;
  std::string Error;
};

// --- Files ---------------------------------------------------------------

/// Writes \p T to \p Path in the text format. Returns false on I/O error.
bool writeTraceFile(const std::string &Path, TraceSpan T);

/// Writes \p T to \p Path in the binary v2 format.
bool writeTraceFileBinary(const std::string &Path, TraceSpan T);

/// Writes \p T to \p Path in \p Format.
bool writeTraceFile(const std::string &Path, TraceSpan T,
                    TraceFormat Format);

/// Reads a trace from \p Path, auto-detecting text vs binary by the
/// first byte; Ok is false with a diagnostic on failure. \p Format, when
/// non-null, receives the detected format on success.
TraceParseResult readTraceFile(const std::string &Path,
                               TraceFormat *Format = nullptr);

/// Detects the on-disk format of \p Path by its first byte. Returns
/// false (cannot open / empty file) with \p Error set.
bool detectTraceFileFormat(const std::string &Path, TraceFormat &Format,
                           std::string &Error);

} // namespace pacer

#endif // PACER_SIM_TRACEIO_H
