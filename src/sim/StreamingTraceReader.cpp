//===- sim/StreamingTraceReader.cpp ---------------------------------------==//

#include "sim/StreamingTraceReader.h"

#include <algorithm>
#include <cstring>

using namespace pacer;

StreamingTraceReader::StreamingTraceReader(const std::string &Path,
                                           size_t WindowActions)
    : Path(Path), Window(std::max<size_t>(1, WindowActions)) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    fail("cannot open " + Path);
    return;
  }
  const int First = std::fgetc(File);
  if (First == EOF) {
    fail(Path + ": empty file");
    return;
  }
  std::rewind(File);
  Format = static_cast<unsigned char>(First) == BinaryTraceMagic0
               ? TraceFormat::Binary
               : TraceFormat::Text;

  if (Format == TraceFormat::Binary) {
    unsigned char Header[BinaryTraceHeaderBytes];
    if (std::fread(Header, 1, sizeof(Header), File) != sizeof(Header)) {
      fail(Path + ": truncated header");
      return;
    }
    if (std::memcmp(Header, BinaryTraceMagic, 8) != 0) {
      fail(Path + ": bad binary trace magic");
      return;
    }
    auto LE32 = [&](size_t Off) {
      return static_cast<uint32_t>(Header[Off]) |
             (static_cast<uint32_t>(Header[Off + 1]) << 8) |
             (static_cast<uint32_t>(Header[Off + 2]) << 16) |
             (static_cast<uint32_t>(Header[Off + 3]) << 24);
    };
    if (LE32(8) != BinaryTraceVersion) {
      fail(Path + ": unsupported binary trace version");
      return;
    }
    if (LE32(12) != 0) {
      fail(Path + ": unsupported binary trace flags");
      return;
    }
    RemainingRecords = static_cast<uint64_t>(LE32(16)) |
                       (static_cast<uint64_t>(LE32(20)) << 32);
    Total = RemainingRecords;
  }
  WindowBuf.reserve(Window);
}

StreamingTraceReader::~StreamingTraceReader() {
  if (File)
    std::fclose(File);
}

void StreamingTraceReader::fail(std::string Why) {
  Error = std::move(Why);
  Done = true;
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

TraceSpan StreamingTraceReader::next() {
  if (Done || !File)
    return {};
  TraceSpan Chunk =
      Format == TraceFormat::Binary ? nextBinary() : nextText();
  Delivered += Chunk.size();
  return Chunk;
}

TraceSpan StreamingTraceReader::nextBinary() {
  if (RemainingRecords == 0) {
    if (std::fgetc(File) != EOF) {
      fail(Path + ": trailing bytes after " + std::to_string(*Total) +
           " records");
      return {};
    }
    Done = true;
    std::fclose(File);
    File = nullptr;
    return {};
  }
  const size_t Want = static_cast<size_t>(
      std::min<uint64_t>(RemainingRecords, Window));
  WindowBuf.resize(Want);

  size_t Records;
  if (actionLayoutMatchesBinaryRecord()) {
    // The window buffer IS the record buffer: one fread per window.
    const size_t Bytes = std::fread(WindowBuf.data(), 1,
                                    Want * BinaryTraceRecordBytes, File);
    Records = Bytes / BinaryTraceRecordBytes;
    if (Records == 0 || Bytes % BinaryTraceRecordBytes != 0) {
      fail(Path + ": truncated trace (header promises " +
           std::to_string(*Total) + " records)");
      return {};
    }
    for (size_t I = 0; I < Records; ++I) {
      if (static_cast<uint8_t>(WindowBuf[I].Kind) >
          static_cast<uint8_t>(ActionKind::ThreadExit)) {
        fail(Path + ": bad action kind in record " +
             std::to_string(*Total - RemainingRecords + I));
        return {};
      }
      if (const char *Bad = validateActionRecord(WindowBuf[I])) {
        fail(Path + ": " + Bad + " in record " +
             std::to_string(*Total - RemainingRecords + I));
        return {};
      }
    }
  } else {
    RawBuf.resize(Want * BinaryTraceRecordBytes);
    const size_t Bytes = std::fread(RawBuf.data(), 1, RawBuf.size(), File);
    Records = Bytes / BinaryTraceRecordBytes;
    if (Records == 0 || Bytes % BinaryTraceRecordBytes != 0) {
      fail(Path + ": truncated trace (header promises " +
           std::to_string(*Total) + " records)");
      return {};
    }
    for (size_t I = 0; I < Records; ++I) {
      if (!unpackBinaryRecord(RawBuf.data() + I * BinaryTraceRecordBytes,
                              WindowBuf[I])) {
        fail(Path + ": bad action kind in record " +
             std::to_string(*Total - RemainingRecords + I));
        return {};
      }
      if (const char *Bad = validateActionRecord(WindowBuf[I])) {
        fail(Path + ": " + Bad + " in record " +
             std::to_string(*Total - RemainingRecords + I));
        return {};
      }
    }
  }
  WindowBuf.resize(Records);
  RemainingRecords -= Records;
  return TraceSpan(WindowBuf);
}

TraceSpan StreamingTraceReader::nextText() {
  WindowBuf.clear();
  char Buf[1 << 16];
  while (WindowBuf.size() < Window) {
    if (!Parser.drain(WindowBuf, Window - WindowBuf.size())) {
      fail(Parser.error());
      return {};
    }
    if (WindowBuf.size() >= Window)
      break;
    if (SourceExhausted) {
      if (!Parser.finish(WindowBuf, Window - WindowBuf.size())) {
        fail(Parser.error());
        return {};
      }
      if (WindowBuf.empty()) {
        Done = true;
        std::fclose(File);
        File = nullptr;
      }
      return TraceSpan(WindowBuf);
    }
    const size_t Got = std::fread(Buf, 1, sizeof(Buf), File);
    if (Got == 0)
      SourceExhausted = true;
    else
      Parser.append(Buf, Got);
  }
  return TraceSpan(WindowBuf);
}
