//===- sim/WorkloadSpec.h - Workload parameters and compilation -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knobs describing a synthetic multithreaded program and the
/// *compiled* (deterministically resolved) layout of its variables, locks,
/// methods, and planted races. The paper evaluates on DaCapo (eclipse,
/// hsqldb, xalan) and pseudojbb; we cannot run a JVM, so each benchmark is
/// modelled by a spec calibrated to its published shape: thread counts
/// (Table 2), synchronization density (~3% of analysed operations,
/// Section 2.2), and race counts with a rarity distribution (Table 2's
/// ">= 1 / >= 5 / >= 25 of 50 trials" columns).
///
/// Races are *planted*: each race gets a dedicated variable and two
/// dedicated program sites accessed by two same-wave worker threads without
/// a common lock. Whether a planted race occurs in a trial is governed by
/// an occurrence gate (modelling input-dependent races) and by the actual
/// schedule (modelling the observer effect): an intervening lock release /
/// acquire chain can order the two accesses, in which case no race occurs
/// that trial. Ground truth is always measured, never assumed: the
/// harness's evaluation races are those FastTrack reports in at least half
/// of the fully sampled trials, exactly as in Section 5.1.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_WORKLOADSPEC_H
#define PACER_SIM_WORKLOADSPEC_H

#include "core/Ids.h"
#include "core/RaceReport.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pacer {

/// One planted race.
struct PlantedRace {
  /// Probability the racy code paths execute at all in a given trial.
  double OccurrenceProb = 1.0;
  /// Racy accesses each involved thread performs when the gate passes
  /// (racy code typically touches its variable repeatedly). The accesses
  /// are spread over a small span of the script around a common position,
  /// so the two threads' bursts overlap in time and the schedule almost
  /// always leaves at least one pair unordered.
  uint32_t PairsPerTrial = 3;
  /// Whether the two racy sites live in hot methods (frequently executed
  /// code). LiteRace's cold-region heuristic misses hot races.
  bool Hot = false;
  /// Kinds of the two accesses; at least one must be a write.
  AccessKind FirstKind = AccessKind::Write;
  AccessKind SecondKind = AccessKind::Write;
};

/// Thread-structure family of a workload.
enum class WorkloadFamily : uint8_t {
  /// Main forks flat waves of long-lived workers and joins each wave
  /// before the next (the paper benchmarks' shape, Table 2).
  WaveWorkers,
  /// Async-finish task DAG: main forks windows of root tasks; each
  /// non-leaf task forks TaskFanout subtasks mid-body and joins them
  /// before finishing. Threads are short-lived and churn continuously,
  /// the stress shape for thread-slot recycling: total threads grow with
  /// the spawn count while live threads stay bounded by MaxLiveWorkers.
  ForkJoinTasks,
};

/// Parameters of a synthetic workload.
struct WorkloadSpec {
  std::string Name = "workload";

  /// Thread topology; see WorkloadFamily.
  WorkloadFamily Family = WorkloadFamily::WaveWorkers;
  /// ForkJoinTasks: levels per task tree (1 = leaf-only roots, 2 = roots
  /// fork one generation of leaves, ...).
  uint32_t TaskDepth = 2;
  /// ForkJoinTasks: subtasks forked by each non-leaf task.
  uint32_t TaskFanout = 4;

  /// Worker threads started over the run (total threads = workers + main).
  /// Under ForkJoinTasks this is the total task count and must be a
  /// multiple of the task-tree size (use forkJoinModelWithTasks).
  uint32_t WorkerThreads = 8;
  /// Maximum workers live at once; workers run in waves of this size.
  /// Under ForkJoinTasks the cap rounds down to whole task trees.
  uint32_t MaxLiveWorkers = 8;

  /// Data-variable population.
  uint32_t LocalVarsPerThread = 64;  ///< Thread-private; never race.
  uint32_t SharedVars = 256;         ///< Lock-protected; never race.
  uint32_t ReadSharedVars = 64;      ///< Written by main before forking,
                                     ///< then read-only; never race.
  uint32_t Locks = 16;
  uint32_t Volatiles = 8;

  /// Code model.
  uint32_t Methods = 50;
  uint32_t SitesPerMethod = 10;
  double HotMethodFraction = 0.2;  ///< Fraction of methods that are hot.
  double HotSitePickProb = 0.9;    ///< Prob. an op executes in a hot method.

  /// Dynamic operation mix per worker. Workers emit a stream of
  /// "decisions": standalone synchronization, a whole critical section
  /// (acquire, several protected accesses, release), one read of a
  /// read-shared variable, or one thread-local access. With the defaults
  /// the resulting synchronization density is ~3-4% of analysed
  /// operations, matching the paper's characterization.
  uint64_t OpsPerWorker = 20000;
  double SyncOpFraction = 0.01;       ///< Standalone sync decisions.
  double VolatileOpFraction = 0.3;    ///< Of standalone sync decisions.
  double CriticalSectionProb = 0.02;  ///< Critical-section decisions.
  uint32_t CriticalSectionAccesses = 16; ///< Mean accesses per section.
  double WriteFraction = 0.25;        ///< Of data accesses.
  double ReadSharedFraction = 0.1;    ///< Read-shared read decisions.

  /// Racy accesses of one planted pair are spliced at correlated
  /// positions in the two workers' scripts (same fraction of the script
  /// ± this jitter), so same-wave workers execute them close in time and
  /// intervening happens-before chains are rare -- matching how real
  /// races in the paper's benchmarks recur across trials.
  double RacyPositionJitter = 0.01;

  /// Lock affinity: the probability a critical section uses one of the
  /// thread's preferred locks rather than a uniformly random one. Real
  /// programs partition locks by subsystem; without affinity the
  /// happens-before web over all threads is near-complete within a few
  /// dozen events and nearly every planted race is ordered away.
  double LockAffinity = 0.9;
  /// Number of preferred locks per thread.
  uint32_t AffinityLocks = 3;

  /// Scheduler burst length (ops run before rescheduling); larger bursts
  /// mean coarser interleaving.
  uint32_t MaxSchedulerBurst = 8;

  std::vector<PlantedRace> Races;
};

/// The deterministic layout derived from a spec: id assignments for
/// variables, sites, methods, and races. Identical for every trial of a
/// workload; only the per-trial Rng varies.
class CompiledWorkload {
public:
  explicit CompiledWorkload(WorkloadSpec Spec);

  const WorkloadSpec &spec() const { return Spec; }

  // --- Variable layout: [racy | read-shared | shared | locals] ---

  /// Total number of data variables.
  uint32_t numVars() const { return TotalVars; }
  /// The dedicated variable of planted race \p Race.
  VarId racyVar(uint32_t Race) const { return Race; }
  VarId readSharedVar(uint32_t Index) const {
    return NumRaces + Index;
  }
  VarId sharedVar(uint32_t Index) const {
    return NumRaces + Spec.ReadSharedVars + Index;
  }
  VarId localVar(ThreadId Worker, uint32_t Index) const {
    return NumRaces + Spec.ReadSharedVars + Spec.SharedVars +
           localBankOf(Worker) * Spec.LocalVarsPerThread + Index;
  }

  /// Local-variable bank of \p Worker. Wave families give every thread its
  /// own bank (per-thread locals live for the whole run, like the paper's
  /// benchmark threads). The fork/join family instead models task-graph
  /// runtimes that recycle task stacks and arenas: a task reuses the bank
  /// of the same window position in the previous window. Reuse is safe --
  /// main joins a whole window before forking the next, so every access to
  /// a bank in window N happens-before every access in window N+1 -- and
  /// it keeps the variable space O(live tasks) no matter how many tasks
  /// the run spawns, which is what makes the family a pure stress of
  /// *thread-slot* growth rather than of variable-count growth.
  uint32_t localBankOf(ThreadId Worker) const {
    if (Worker == 0 || !isForkJoin())
      return Worker;
    return 1 + (Worker - 1) % waveSize();
  }
  /// Number of distinct local-variable banks (main's plus the workers').
  uint32_t numLocalBanks() const {
    if (!isForkJoin())
      return Spec.WorkerThreads + 1;
    return (Spec.WorkerThreads < waveSize() ? Spec.WorkerThreads
                                            : waveSize()) +
           1;
  }

  /// True if \p Var is a thread-local variable -- what the paper's
  /// optimizing-compiler pass proves with static escape analysis and then
  /// does not instrument (Section 4).
  bool isLocalVar(VarId Var) const { return Var >= localVar(0, 0); }

  /// The lock guarding shared variable \p Var (lock discipline). Shared
  /// variables are striped across the lock pool by index.
  LockId guardLock(VarId Var) const {
    return (Var - sharedVar(0)) % Spec.Locks;
  }

  /// Shared-variable indices guarded by \p Lock are Lock, Lock + Locks,
  /// Lock + 2*Locks, ...; this returns how many exist.
  uint32_t sharedVarsOfLock(LockId Lock) const {
    if (Lock >= Spec.SharedVars)
      return 0;
    return (Spec.SharedVars - Lock - 1) / Spec.Locks + 1;
  }

  /// The \p K-th shared variable guarded by \p Lock.
  VarId sharedVarOfLock(LockId Lock, uint32_t K) const {
    return sharedVar(Lock + K * Spec.Locks);
  }

  // --- Code layout ---

  /// Total number of program sites.
  uint32_t numSites() const { return static_cast<uint32_t>(SiteToMethod.size()); }
  /// Site-to-method map (consumed by LiteRace).
  const std::vector<uint32_t> &siteToMethod() const { return SiteToMethod; }
  /// True if \p Method is hot.
  bool isHotMethod(uint32_t Method) const { return Method < NumHotMethods; }
  /// Number of hot methods.
  uint32_t numHotMethods() const { return NumHotMethods; }
  uint32_t numMethods() const { return Spec.Methods; }
  /// First site of \p Method (methods own SitesPerMethod consecutive sites).
  SiteId methodFirstSite(uint32_t Method) const {
    return Method * Spec.SitesPerMethod;
  }

  /// The two dedicated sites of planted race \p Race.
  SiteId racySiteA(uint32_t Race) const { return RaceSites[Race].first; }
  SiteId racySiteB(uint32_t Race) const { return RaceSites[Race].second; }

  /// The dedicated rendezvous volatiles of planted race \p Race. Racy
  /// code typically runs right after a causal trigger (a task handoff, a
  /// published flag the partner spins on); the generator models this as a
  /// two-sided flag exchange -- each thread publishes its own flag,
  /// spin-waits on the partner's, and then performs the racy access. Both
  /// triggers precede both accesses, so the volatile edges order the
  /// handoff but never the accesses themselves.
  VolatileId racyVolatileA(uint32_t Race) const {
    return Spec.Volatiles + 2 * Race;
  }
  VolatileId racyVolatileB(uint32_t Race) const {
    return Spec.Volatiles + 2 * Race + 1;
  }
  /// Total volatiles including the per-race rendezvous volatiles.
  uint32_t numVolatiles() const { return Spec.Volatiles + 2 * NumRaces; }
  /// The distinct-race key a detector produces for planted race \p Race.
  RaceKey racyKey(uint32_t Race) const;
  uint32_t numRaces() const { return NumRaces; }

  // --- Thread layout ---

  /// Total threads started, including main (paper Table 2's "Total").
  uint32_t totalThreads() const { return Spec.WorkerThreads + 1; }
  /// Worker wave containing worker thread id \p Tid (1-based tids). A
  /// "wave" is the unit of schedule concurrency: main joins one wave
  /// before forking the next, so only same-wave workers can overlap.
  /// Under ForkJoinTasks a wave is one sliding window of task trees.
  uint32_t waveOf(ThreadId Tid) const { return (Tid - 1) / waveSize(); }
  uint32_t numWaves() const {
    return (Spec.WorkerThreads + waveSize() - 1) / waveSize();
  }
  uint32_t waveSize() const {
    if (isForkJoin())
      return taskWindowRoots() * taskTreeSize();
    return Spec.MaxLiveWorkers == 0 ? 1 : Spec.MaxLiveWorkers;
  }
  /// Worker tids of wave \p Wave.
  std::vector<ThreadId> waveWorkers(uint32_t Wave) const;

  // --- ForkJoinTasks layout ---

  bool isForkJoin() const {
    return Spec.Family == WorkloadFamily::ForkJoinTasks;
  }
  /// Threads in one task tree: S(1) = 1, S(d) = 1 + Fanout * S(d-1).
  /// Trees occupy contiguous tid blocks ([1 + r*S, 1 + (r+1)*S) for root
  /// r) assigned in preorder, so every subtree is itself contiguous.
  uint32_t taskTreeSize() const { return TreeSize; }
  /// Root task trees started over the run.
  uint32_t numTaskRoots() const { return Spec.WorkerThreads / TreeSize; }
  /// Root trees per window: the whole tree of every in-window root may be
  /// live at once, so the window is the live cap in units of whole trees.
  uint32_t taskWindowRoots() const {
    return Spec.MaxLiveWorkers < TreeSize
               ? 1
               : Spec.MaxLiveWorkers / TreeSize;
  }

  /// Approximate live "objects" for the space model's two-header-words
  /// charge (variables grouped as fields of objects).
  uint32_t objectCount() const { return TotalVars / FieldsPerObject + 1; }
  static constexpr uint32_t FieldsPerObject = 8;

private:
  WorkloadSpec Spec;
  uint32_t NumRaces;
  uint32_t TotalVars;
  uint32_t TreeSize = 1;
  uint32_t NumHotMethods;
  std::vector<uint32_t> SiteToMethod;
  std::vector<std::pair<SiteId, SiteId>> RaceSites;
};

} // namespace pacer

#endif // PACER_SIM_WORKLOADSPEC_H
