//===- sim/StreamingTraceReader.h - Bounded-window trace input -*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads a trace file -- text or binary, auto-detected -- through a
/// bounded window of actions: next() yields consecutive spans of at most
/// windowActions() actions, reusing one allocation, so a replay driven
/// from the reader holds O(window + detector metadata) memory regardless
/// of trace size (Runtime::replayChunk makes any chunking bit-identical
/// to an in-memory replay). The same single pass can feed a
/// TraceIndex::Builder, which is how racedetect resolves --shards=auto
/// without ever materializing the trace.
///
/// Binary windows are bulk freads (a memcpy per window on matching ABIs);
/// text windows parse line by line through TextTraceParser. A mid-stream
/// error (truncation, malformed line) ends the stream with ok() == false
/// and a diagnostic; consumers must check ok() after the last chunk.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_STREAMINGTRACEREADER_H
#define PACER_SIM_STREAMINGTRACEREADER_H

#include "sim/Action.h"
#include "sim/TraceIO.h"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace pacer {

/// Bounded-memory sequential reader over a trace file.
class StreamingTraceReader {
public:
  /// Default window: 64k actions = 768 KiB resident trace bytes.
  static constexpr size_t DefaultWindowActions = 64 << 10;

  /// Opens \p Path with a window of \p WindowActions (clamped to >= 1).
  /// Check ok() before streaming: an unopenable or malformed-header file
  /// fails here.
  explicit StreamingTraceReader(
      const std::string &Path,
      size_t WindowActions = DefaultWindowActions);

  ~StreamingTraceReader();
  StreamingTraceReader(const StreamingTraceReader &) = delete;
  StreamingTraceReader &operator=(const StreamingTraceReader &) = delete;

  /// Returns the next window of actions; empty at end of stream (or on
  /// error -- check ok()). The span aliases the reader's window buffer
  /// and is invalidated by the next call.
  TraceSpan next();

  /// False after any I/O or parse error; error() has the diagnostic.
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  /// True once the stream is exhausted (successfully or not).
  bool done() const { return Done; }

  TraceFormat format() const { return Format; }
  size_t windowActions() const { return Window; }

  /// Actions handed out so far.
  uint64_t actionsDelivered() const { return Delivered; }

  /// Total records promised by a binary header; nullopt for text (the
  /// text header's count is advisory and not trusted).
  std::optional<uint64_t> totalActions() const { return Total; }

private:
  TraceSpan nextBinary();
  TraceSpan nextText();
  void fail(std::string Why);

  std::string Path;
  std::FILE *File = nullptr;
  TraceFormat Format = TraceFormat::Text;
  size_t Window = DefaultWindowActions;
  std::string Error;
  bool Done = false;
  uint64_t Delivered = 0;

  // Binary state.
  std::optional<uint64_t> Total;
  uint64_t RemainingRecords = 0;

  // Text state.
  TextTraceParser Parser;
  bool SourceExhausted = false;

  Trace WindowBuf;
  std::vector<unsigned char> RawBuf; ///< Pack/unpack staging (rare ABIs).
};

} // namespace pacer

#endif // PACER_SIM_STREAMINGTRACEREADER_H
