//===- sim/WorkloadSpec.cpp -----------------------------------------------==//

#include "sim/WorkloadSpec.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace pacer;

CompiledWorkload::CompiledWorkload(WorkloadSpec SpecIn)
    : Spec(std::move(SpecIn)) {
  PACER_CHECK(Spec.WorkerThreads >= 1, "workload needs at least one worker");
  PACER_CHECK(Spec.Locks >= 1, "workload needs at least one lock");
  PACER_CHECK(Spec.Methods >= 2, "workload needs hot and cold methods");

  if (Spec.Family == WorkloadFamily::ForkJoinTasks) {
    PACER_CHECK(Spec.TaskDepth >= 1, "task trees need at least one level");
    PACER_CHECK(Spec.TaskDepth == 1 || Spec.TaskFanout >= 1,
                "non-leaf task trees need a fanout");
    for (uint32_t D = 1; D < Spec.TaskDepth; ++D) {
      TreeSize = 1 + Spec.TaskFanout * TreeSize;
      PACER_CHECK(TreeSize <= Spec.WorkerThreads,
                  "task tree larger than the worker population");
    }
    PACER_CHECK(Spec.WorkerThreads % TreeSize == 0,
                "worker count must be whole task trees");
  }

  NumRaces = static_cast<uint32_t>(Spec.Races.size());
  // Local banks, not total threads: the fork/join family reuses banks
  // across windows (see localBankOf), so its variable space -- and with
  // it every detector's per-variable metadata -- stays O(live tasks).
  TotalVars = NumRaces + Spec.ReadSharedVars + Spec.SharedVars +
              numLocalBanks() * Spec.LocalVarsPerThread;

  NumHotMethods = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::lround(Spec.HotMethodFraction * Spec.Methods)));
  if (NumHotMethods >= Spec.Methods)
    NumHotMethods = Spec.Methods - 1;

  // Regular sites: methods own SitesPerMethod consecutive sites; hot
  // methods are the low-numbered ones.
  SiteToMethod.resize(static_cast<size_t>(Spec.Methods) *
                      Spec.SitesPerMethod);
  for (uint32_t Method = 0; Method < Spec.Methods; ++Method)
    for (uint32_t I = 0; I < Spec.SitesPerMethod; ++I)
      SiteToMethod[static_cast<size_t>(Method) * Spec.SitesPerMethod + I] =
          Method;

  // Racy sites: two fresh sites per race, assigned round-robin into a hot
  // or cold method per the race's spec so LiteRace's per-method samplers
  // see them alongside that method's regular traffic.
  RaceSites.reserve(NumRaces);
  uint32_t HotCursor = 0;
  uint32_t ColdCursor = 0;
  for (uint32_t Race = 0; Race < NumRaces; ++Race) {
    const PlantedRace &Planted = Spec.Races[Race];
    uint32_t Method;
    if (Planted.Hot) {
      Method = HotCursor % NumHotMethods;
      ++HotCursor;
    } else {
      Method = NumHotMethods + ColdCursor % (Spec.Methods - NumHotMethods);
      ++ColdCursor;
    }
    auto SiteA = static_cast<SiteId>(SiteToMethod.size());
    SiteToMethod.push_back(Method);
    auto SiteB = static_cast<SiteId>(SiteToMethod.size());
    SiteToMethod.push_back(Method);
    RaceSites.emplace_back(SiteA, SiteB);
  }
}

RaceKey CompiledWorkload::racyKey(uint32_t Race) const {
  SiteId A = RaceSites[Race].first;
  SiteId B = RaceSites[Race].second;
  // Keys are normalized to the unordered site pair: depending on the
  // schedule either access can be the "first".
  return {std::min(A, B), std::max(A, B)};
}

std::vector<ThreadId> CompiledWorkload::waveWorkers(uint32_t Wave) const {
  std::vector<ThreadId> Workers;
  uint32_t First = 1 + Wave * waveSize();
  uint32_t Last = std::min(First + waveSize() - 1, Spec.WorkerThreads);
  for (uint32_t Tid = First; Tid <= Last; ++Tid)
    Workers.push_back(Tid);
  return Workers;
}
