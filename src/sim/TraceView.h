//===- sim/TraceView.h - Zero-copy binary trace view -----------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only view of a binary (v2) trace file that avoids materializing
/// a Trace: on POSIX hosts whose Action layout matches the on-disk record
/// (see sim/TraceIO.h) the file is memory-mapped and actions() is a
/// pointer cast over the mapping -- load cost is one header check plus a
/// kind-byte validation scan, and the kernel pages records in and out on
/// demand, so analysing a trace larger than RAM needs no trace-sized
/// allocation at all. Where mmap is unavailable (or the ABI differs) the
/// view transparently falls back to a buffered load; actions() is the
/// same span either way, so every consumer -- Runtime::replay,
/// shardedReplay, TraceIndex -- is oblivious to the difference.
///
/// Text traces are not viewable (they must be parsed); open() reports a
/// diagnostic directing callers to readTraceFile or traceconv.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_TRACEVIEW_H
#define PACER_SIM_TRACEVIEW_H

#include "sim/Action.h"
#include "sim/TraceIO.h"

#include <string>

namespace pacer {

/// Zero-copy (mmap-backed) view of a binary trace file.
class TraceView {
public:
  TraceView() = default;
  ~TraceView();

  TraceView(TraceView &&Other) noexcept;
  TraceView &operator=(TraceView &&Other) noexcept;
  TraceView(const TraceView &) = delete;
  TraceView &operator=(const TraceView &) = delete;

  /// Opens \p Path. \p ForceBuffered skips the mmap attempt (used by
  /// tests to pin the fallback path; results are identical). On failure
  /// the view is empty and ok() is false with a diagnostic.
  static TraceView open(const std::string &Path, bool ForceBuffered = false);

  bool ok() const { return Ok; }
  const std::string &error() const { return Error; }

  /// The trace. Valid until the view is destroyed or moved from.
  TraceSpan actions() const { return Span; }

  /// True when actions() aliases a memory mapping (no trace-sized
  /// allocation was made).
  bool mapped() const { return Map != nullptr; }

private:
  void reset();

  bool Ok = false;
  std::string Error;
  TraceSpan Span;
  void *Map = nullptr; ///< mmap base (page-aligned), null if buffered.
  size_t MapBytes = 0;
  Trace Buffer; ///< Fallback storage when not mapped.
};

} // namespace pacer

#endif // PACER_SIM_TRACEVIEW_H
