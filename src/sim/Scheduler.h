//===- sim/Scheduler.h - Randomized legal interleaving ---------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interleaves per-thread scripts into one sequentially consistent trace,
/// respecting synchronization semantics (Appendix A's trace restrictions):
/// a thread never acquires a lock held by another thread, never runs before
/// it is forked, and a join completes only after the joined thread's last
/// action. Scheduling decisions are uniformly random over the enabled
/// threads with short random run bursts, so every trial (seed) explores a
/// different interleaving -- the source of the paper's observer-effect
/// variance in which races occur.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_SIM_SCHEDULER_H
#define PACER_SIM_SCHEDULER_H

#include "sim/Action.h"
#include "support/Rng.h"

#include <vector>

namespace pacer {

/// How the next thread to run is chosen. Detector correctness must not
/// depend on the policy (the property tests replay both), but race
/// manifestation and timing do -- real schedulers vary the same way.
enum class SchedulePolicy : uint8_t {
  RandomUniform, ///< Uniform choice over enabled threads (default).
  RoundRobin,    ///< Cycle through ready threads in id order.
};

/// Randomized interleaver. Aborts (fatal error) on deadlock, which the
/// script builder's ascending lock discipline rules out by construction.
class Scheduler {
public:
  /// \p Scripts must be indexed by thread id; thread 0 starts runnable,
  /// all others only after their Fork action executes.
  Scheduler(std::vector<ThreadScript> Scripts, Rng SchedulerRng,
            uint32_t MaxBurst = 8,
            SchedulePolicy Policy = SchedulePolicy::RandomUniform);

  /// Produces the full interleaved trace.
  Trace run();

private:
  enum class Status : uint8_t { NotStarted, Ready, Finished };

  /// True if \p Tid's next action cannot execute yet.
  bool isBlocked(ThreadId Tid) const;

  /// Executes \p Tid's next action, appending it to \p Out.
  void step(ThreadId Tid, Trace &Out);

  std::vector<ThreadScript> Scripts;
  Rng Random;
  uint32_t MaxBurst;
  SchedulePolicy Policy;
  size_t RoundRobinCursor = 0;

  std::vector<size_t> Pc;
  std::vector<Status> States;
  std::vector<ThreadId> LockOwner;      // InvalidId = free.
  std::vector<uint32_t> VolatileWrites; // Write counts, for AwaitVolatile.
  std::vector<ThreadId> Ready;          // Tids with Status::Ready.
  size_t FinishedCount = 0;
};

} // namespace pacer

#endif // PACER_SIM_SCHEDULER_H
