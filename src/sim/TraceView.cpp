//===- sim/TraceView.cpp --------------------------------------------------==//

#include "sim/TraceView.h"

#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PACER_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PACER_HAVE_MMAP 0
#endif

using namespace pacer;

TraceView::~TraceView() { reset(); }

void TraceView::reset() {
#if PACER_HAVE_MMAP
  if (Map)
    ::munmap(Map, MapBytes);
#endif
  Map = nullptr;
  MapBytes = 0;
  Span = {};
  Buffer.clear();
  Ok = false;
}

TraceView::TraceView(TraceView &&Other) noexcept { *this = std::move(Other); }

TraceView &TraceView::operator=(TraceView &&Other) noexcept {
  if (this == &Other)
    return *this;
  reset();
  Ok = Other.Ok;
  Error = std::move(Other.Error);
  Map = std::exchange(Other.Map, nullptr);
  MapBytes = std::exchange(Other.MapBytes, 0);
  Buffer = std::move(Other.Buffer);
  // A mapped span is stable under the move; a buffered span must chase
  // the moved vector's storage.
  Span = Map != nullptr ? Other.Span : TraceSpan(Buffer);
  Other.Span = {};
  Other.Ok = false;
  Other.Buffer.clear();
  return *this;
}

namespace {

/// Validates every record (kind byte plus the fork/join tid-range rule);
/// returns the index of the first bad record or -1, with \p Why set. The
/// scan touches one byte per 12 for most records and runs at memory
/// bandwidth -- the whole "parse" cost of the zero-copy path.
int64_t firstBadRecord(TraceSpan T, const char *&Why) {
  for (size_t I = 0; I < T.size(); ++I) {
    if (static_cast<uint8_t>(T[I].Kind) >
        static_cast<uint8_t>(ActionKind::ThreadExit)) {
      Why = "bad action kind";
      return static_cast<int64_t>(I);
    }
    if (const char *Bad = validateActionRecord(T[I])) {
      Why = Bad;
      return static_cast<int64_t>(I);
    }
  }
  return -1;
}

} // namespace

TraceView TraceView::open(const std::string &Path, bool ForceBuffered) {
  TraceView View;

#if PACER_HAVE_MMAP
  if (!ForceBuffered && actionLayoutMatchesBinaryRecord()) {
    const int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0) {
      View.Error = "cannot open " + Path;
      return View;
    }
    struct stat St;
    if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
      ::close(Fd);
      View.Error = "cannot stat " + Path;
      return View;
    }
    const auto FileBytes = static_cast<size_t>(St.st_size);
    if (FileBytes == 0) {
      ::close(Fd);
      View.Error = Path + ": empty file";
      return View;
    }
    void *Base = ::mmap(nullptr, FileBytes, PROT_READ, MAP_PRIVATE, Fd, 0);
    ::close(Fd); // The mapping outlives the descriptor.
    if (Base != MAP_FAILED) {
      const auto *Bytes = static_cast<const unsigned char *>(Base);
      if (Bytes[0] != BinaryTraceMagic0) {
        ::munmap(Base, FileBytes);
        View.Error = Path + ": not a binary trace (use readTraceFile or "
                            "traceconv for text traces)";
        return View;
      }
      View.Map = Base;
      View.MapBytes = FileBytes;
      // Header validation mirrors readTraceFile's.
      if (FileBytes < BinaryTraceHeaderBytes ||
          std::memcmp(Bytes, BinaryTraceMagic, 8) != 0) {
        std::string Err = Path + ": bad binary trace magic";
        View.reset();
        View.Error = std::move(Err);
        return View;
      }
      auto LE32 = [&](size_t Off) {
        return static_cast<uint32_t>(Bytes[Off]) |
               (static_cast<uint32_t>(Bytes[Off + 1]) << 8) |
               (static_cast<uint32_t>(Bytes[Off + 2]) << 16) |
               (static_cast<uint32_t>(Bytes[Off + 3]) << 24);
      };
      if (LE32(8) != BinaryTraceVersion || LE32(12) != 0) {
        std::string Err = Path + ": unsupported binary trace version";
        View.reset();
        View.Error = std::move(Err);
        return View;
      }
      const uint64_t Count = static_cast<uint64_t>(LE32(16)) |
                             (static_cast<uint64_t>(LE32(20)) << 32);
      // Bound the count by the bytes present before multiplying: a
      // corrupt 64-bit count must not wrap the size arithmetic into a
      // check that accidentally passes.
      const uint64_t MaxRecords =
          (FileBytes - BinaryTraceHeaderBytes) / BinaryTraceRecordBytes;
      if (Count > MaxRecords ||
          FileBytes !=
              BinaryTraceHeaderBytes + Count * BinaryTraceRecordBytes) {
        std::string Err = Path + ": truncated trace (header promises " +
                          std::to_string(Count) + " records)";
        View.reset();
        View.Error = std::move(Err);
        return View;
      }
      View.Span = TraceSpan(
          reinterpret_cast<const Action *>(Bytes + BinaryTraceHeaderBytes),
          static_cast<size_t>(Count));
      const char *Why = nullptr;
      if (const int64_t Bad = firstBadRecord(View.Span, Why); Bad >= 0) {
        std::string Err =
            Path + ": " + Why + " in record " + std::to_string(Bad);
        View.reset();
        View.Error = std::move(Err);
        return View;
      }
      View.Ok = true;
      return View;
    }
    // mmap failed (unusual filesystem, resource limits): fall through to
    // the buffered load.
  }
#else
  (void)ForceBuffered;
#endif

  // Buffered fallback: a plain load through the slab reader. Also used
  // when the ABI's Action layout differs from the record encoding, which
  // the reader handles by unpacking.
  {
    TraceFormat Format;
    std::string DetectError;
    if (!detectTraceFileFormat(Path, Format, DetectError)) {
      View.Error = std::move(DetectError);
      return View;
    }
    if (Format != TraceFormat::Binary) {
      View.Error = Path + ": not a binary trace (use readTraceFile or "
                          "traceconv for text traces)";
      return View;
    }
    TraceParseResult Parsed = readTraceFile(Path);
    if (!Parsed.Ok) {
      View.Error = std::move(Parsed.Error);
      return View;
    }
    View.Buffer = std::move(Parsed.T);
    View.Span = TraceSpan(View.Buffer);
    View.Ok = true;
    return View;
  }
}
