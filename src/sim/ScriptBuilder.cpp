//===- sim/ScriptBuilder.cpp ----------------------------------------------==//

#include "sim/ScriptBuilder.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

using namespace pacer;

SiteId ScriptBuilder::pickSite() {
  const WorkloadSpec &Spec = Workload.spec();
  uint32_t Method;
  if (Random.nextBool(Spec.HotSitePickProb))
    Method = static_cast<uint32_t>(Random.nextBelow(Workload.numHotMethods()));
  else
    Method = Workload.numHotMethods() +
             static_cast<uint32_t>(Random.nextBelow(
                 Workload.numMethods() - Workload.numHotMethods()));
  return Workload.methodFirstSite(Method) +
         static_cast<SiteId>(Random.nextBelow(Spec.SitesPerMethod));
}

ThreadScript ScriptBuilder::buildMain() {
  const WorkloadSpec &Spec = Workload.spec();
  ThreadScript Script;
  Script.Tid = 0;

  // Initialize read-shared variables before any worker exists; all later
  // reads are therefore ordered after these writes by fork edges.
  for (uint32_t I = 0; I < Spec.ReadSharedVars; ++I)
    Script.Ops.push_back({ActionKind::Write, 0, Workload.readSharedVar(I),
                          pickSite()});

  // Fork/join worker waves.
  for (uint32_t Wave = 0; Wave < Workload.numWaves(); ++Wave) {
    std::vector<ThreadId> Workers = Workload.waveWorkers(Wave);
    for (ThreadId Worker : Workers)
      Script.Ops.push_back({ActionKind::Fork, 0, Worker, InvalidId});
    // A little main-thread work between fork and join: local accesses.
    for (uint32_t I = 0; I < 8 && Spec.LocalVarsPerThread > 0; ++I) {
      uint32_t Index = static_cast<uint32_t>(
          Random.nextBelow(Spec.LocalVarsPerThread));
      ActionKind Kind = Random.nextBool(Spec.WriteFraction)
                            ? ActionKind::Write
                            : ActionKind::Read;
      Script.Ops.push_back({Kind, 0, Workload.localVar(0, Index),
                            pickSite()});
    }
    for (ThreadId Worker : Workers)
      Script.Ops.push_back({ActionKind::Join, 0, Worker, InvalidId});
  }

  Script.Ops.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  return Script;
}

ThreadScript ScriptBuilder::buildWorker(ThreadId Tid) {
  ThreadScript Script;
  Script.Tid = Tid;
  Script.Ops.reserve(Workload.spec().OpsPerWorker + 16);
  emitTaskOps(Script, Workload.spec().OpsPerWorker);
  Script.Ops.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
  return Script;
}

void ScriptBuilder::emitTaskOps(ThreadScript &Script, uint64_t Budget) {
  const WorkloadSpec &Spec = Workload.spec();
  const ThreadId Tid = Script.Tid;

  std::vector<LockId> Held; // Ascending lock-id stack: deadlock free.

  auto EmitAccess = [&](ActionKind Kind, VarId Var) {
    Script.Ops.push_back({Kind, Tid, Var, pickSite()});
  };
  auto RandomKind = [&]() {
    return Random.nextBool(Spec.WriteFraction) ? ActionKind::Write
                                               : ActionKind::Read;
  };
  auto LocalAccess = [&]() {
    if (Spec.LocalVarsPerThread == 0)
      return;
    uint32_t Index =
        static_cast<uint32_t>(Random.nextBelow(Spec.LocalVarsPerThread));
    EmitAccess(RandomKind(), Workload.localVar(Tid, Index));
  };

  uint64_t Emitted = 0;
  while (Emitted < Budget) {
    double Roll = Random.nextDouble();
    ++Emitted;

    if (Roll < Spec.SyncOpFraction) {
      // Standalone synchronization: a volatile operation or an outer lock
      // region op (acquire a larger-id lock / release the newest one).
      // Both follow the thread's affinity (subsystem partitioning).
      if (Random.nextBool(Spec.VolatileOpFraction) && Spec.Volatiles > 0) {
        VolatileId Vol;
        if (Random.nextBool(Spec.LockAffinity))
          Vol = Tid % Spec.Volatiles;
        else
          Vol = static_cast<VolatileId>(Random.nextBelow(Spec.Volatiles));
        ActionKind Kind = Random.nextBool(0.5) ? ActionKind::VolatileRead
                                               : ActionKind::VolatileWrite;
        Script.Ops.push_back({Kind, Tid, Vol, InvalidId});
        continue;
      }
      bool Release = !Held.empty() && Random.nextBool(0.5);
      if (!Release) {
        LockId Floor = Held.empty() ? 0 : Held.back() + 1;
        if (Floor < Spec.Locks) {
          LockId Lock = InvalidId;
          if (Random.nextBool(Spec.LockAffinity) && Spec.AffinityLocks > 0) {
            auto Offset = static_cast<uint32_t>(
                Random.nextBelow(Spec.AffinityLocks));
            LockId Candidate =
                (Tid * Spec.AffinityLocks + Offset) % Spec.Locks;
            if (Candidate >= Floor)
              Lock = Candidate;
          }
          if (Lock == InvalidId)
            Lock = static_cast<LockId>(Floor +
                                       Random.nextBelow(Spec.Locks - Floor));
          Script.Ops.push_back({ActionKind::Acquire, Tid, Lock, InvalidId});
          Held.push_back(Lock);
          continue;
        }
        Release = !Held.empty();
      }
      if (Release) {
        Script.Ops.push_back(
            {ActionKind::Release, Tid, Held.back(), InvalidId});
        Held.pop_back();
      }
      continue;
    }

    if (Roll < Spec.SyncOpFraction + Spec.CriticalSectionProb &&
        Spec.SharedVars > 0) {
      // A whole critical section: acquire a guard lock, perform several
      // accesses to variables it protects, release. Respect the ascending
      // discipline against any outer locks held. Prefer this thread's
      // affinity locks (lock partitioning by subsystem).
      LockId Floor = Held.empty() ? 0 : Held.back() + 1;
      if (Floor >= Spec.Locks) {
        LocalAccess();
        continue;
      }
      LockId Guard = InvalidId;
      if (Random.nextBool(Spec.LockAffinity) && Spec.AffinityLocks > 0) {
        // Preferred locks are a contiguous stripe per thread; pick one
        // that satisfies the ascending constraint if any does.
        auto Offset = static_cast<uint32_t>(
            Random.nextBelow(Spec.AffinityLocks));
        LockId Candidate =
            (Tid * Spec.AffinityLocks + Offset) % Spec.Locks;
        if (Candidate >= Floor)
          Guard = Candidate;
      }
      if (Guard == InvalidId)
        Guard = static_cast<LockId>(Floor +
                                    Random.nextBelow(Spec.Locks - Floor));
      uint32_t Population = Workload.sharedVarsOfLock(Guard);
      if (Population == 0) {
        LocalAccess();
        continue;
      }
      uint32_t Mean = std::max<uint32_t>(2, Spec.CriticalSectionAccesses);
      auto Length = static_cast<uint32_t>(
          Random.nextInRange(Mean / 2, Mean + Mean / 2));
      Script.Ops.push_back({ActionKind::Acquire, Tid, Guard, InvalidId});
      for (uint32_t I = 0; I < Length; ++I) {
        auto K = static_cast<uint32_t>(Random.nextBelow(Population));
        EmitAccess(RandomKind(), Workload.sharedVarOfLock(Guard, K));
      }
      Script.Ops.push_back({ActionKind::Release, Tid, Guard, InvalidId});
      Emitted += Length;
      continue;
    }

    if (Roll < Spec.SyncOpFraction + Spec.CriticalSectionProb +
                   Spec.ReadSharedFraction &&
        Spec.ReadSharedVars > 0) {
      uint32_t Index =
          static_cast<uint32_t>(Random.nextBelow(Spec.ReadSharedVars));
      EmitAccess(ActionKind::Read, Workload.readSharedVar(Index));
      continue;
    }

    LocalAccess();
  }

  // Balanced block: release everything still held, newest first, so the
  // caller can splice fork/join structure or the final exit here.
  while (!Held.empty()) {
    Script.Ops.push_back({ActionKind::Release, Tid, Held.back(), InvalidId});
    Held.pop_back();
  }
}

ThreadScript ScriptBuilder::buildForkJoinMain() {
  const WorkloadSpec &Spec = Workload.spec();
  ThreadScript Script;
  Script.Tid = 0;

  for (uint32_t I = 0; I < Spec.ReadSharedVars; ++I)
    Script.Ops.push_back({ActionKind::Write, 0, Workload.readSharedVar(I),
                          pickSite()});

  // Slide a window of whole task trees over the roots: fork every root of
  // the window, do a little local work, join them all. Only same-window
  // trees can overlap, so live threads stay <= window * tree size.
  const uint32_t Tree = Workload.taskTreeSize();
  const uint32_t Window = Workload.taskWindowRoots();
  const uint32_t Roots = Workload.numTaskRoots();
  for (uint32_t First = 0; First < Roots; First += Window) {
    const uint32_t Last = std::min(First + Window, Roots);
    for (uint32_t Root = First; Root < Last; ++Root)
      Script.Ops.push_back(
          {ActionKind::Fork, 0, 1 + Root * Tree, InvalidId});
    for (uint32_t I = 0; I < 8 && Spec.LocalVarsPerThread > 0; ++I) {
      uint32_t Index = static_cast<uint32_t>(
          Random.nextBelow(Spec.LocalVarsPerThread));
      ActionKind Kind = Random.nextBool(Spec.WriteFraction)
                            ? ActionKind::Write
                            : ActionKind::Read;
      Script.Ops.push_back({Kind, 0, Workload.localVar(0, Index),
                            pickSite()});
    }
    for (uint32_t Root = First; Root < Last; ++Root)
      Script.Ops.push_back(
          {ActionKind::Join, 0, 1 + Root * Tree, InvalidId});
  }

  Script.Ops.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  return Script;
}

void ScriptBuilder::buildTaskTree(std::vector<ThreadScript> &Scripts,
                                  ThreadId FirstTid, uint32_t Depth) {
  const WorkloadSpec &Spec = Workload.spec();
  ThreadScript Script;
  Script.Tid = FirstTid;
  Script.Ops.reserve(Spec.OpsPerWorker + 2 * Spec.TaskFanout + 16);

  if (Depth == 1) {
    emitTaskOps(Script, Spec.OpsPerWorker);
  } else {
    // Child subtrees are the Fanout contiguous blocks after the root's
    // own slot; S(Depth) = 1 + Fanout * S(Depth - 1).
    uint32_t ChildTree = 1;
    for (uint32_t D = 1; D + 1 < Depth; ++D)
      ChildTree = 1 + Spec.TaskFanout * ChildTree;
    emitTaskOps(Script, Spec.OpsPerWorker / 2);
    for (uint32_t Child = 0; Child < Spec.TaskFanout; ++Child) {
      ThreadId ChildTid = FirstTid + 1 + Child * ChildTree;
      Script.Ops.push_back({ActionKind::Fork, FirstTid, ChildTid, InvalidId});
      buildTaskTree(Scripts, ChildTid, Depth - 1);
    }
    for (uint32_t Child = 0; Child < Spec.TaskFanout; ++Child)
      Script.Ops.push_back({ActionKind::Join, FirstTid,
                            FirstTid + 1 + Child * ChildTree, InvalidId});
    emitTaskOps(Script, Spec.OpsPerWorker - Spec.OpsPerWorker / 2);
  }

  Script.Ops.push_back(
      {ActionKind::ThreadExit, FirstTid, InvalidId, InvalidId});
  Scripts[FirstTid] = std::move(Script);
}

/// Indices of \p Ops at which the executing thread holds no lock (the
/// legal insertion points for spin-wait blocks). The trailing ThreadExit
/// position is always lock free because scripts release everything first.
static std::vector<size_t> lockFreePositions(const std::vector<Action> &Ops) {
  std::vector<size_t> Positions;
  uint32_t Depth = 0;
  for (size_t I = 0; I != Ops.size(); ++I) {
    if (Depth == 0)
      Positions.push_back(I);
    if (Ops[I].Kind == ActionKind::Acquire)
      ++Depth;
    else if (Ops[I].Kind == ActionKind::Release)
      --Depth;
  }
  return Positions;
}

/// The element of sorted \p Positions closest to \p Want.
static size_t nearestPosition(const std::vector<size_t> &Positions,
                              size_t Want) {
  assert(!Positions.empty() && "no lock-free positions");
  auto It = std::lower_bound(Positions.begin(), Positions.end(), Want);
  if (It == Positions.end())
    return Positions.back();
  if (It == Positions.begin())
    return *It;
  size_t Above = *It;
  size_t Below = *(It - 1);
  return (Above - Want) < (Want - Below) ? Above : Below;
}

void ScriptBuilder::plantRaces(std::vector<ThreadScript> &Scripts) {
  const WorkloadSpec &Spec = Workload.spec();

  // Gather all insertions first, then apply them per worker from the back
  // so earlier insertions do not shift later positions. Seq preserves the
  // intended order of entries that share a position (an insertion at P
  // lands before anything previously inserted at P, so applying in
  // descending (Pos, Seq) order yields ascending Seq in the script).
  struct Insertion {
    size_t Pos;
    uint32_t Seq;
    Action What;
  };
  std::vector<std::vector<Insertion>> PerWorker(Scripts.size());
  uint32_t NextSeq = 0;

  for (uint32_t Race = 0; Race < Workload.numRaces(); ++Race) {
    const PlantedRace &Planted = Spec.Races[Race];
    if (!Random.nextBool(Planted.OccurrenceProb))
      continue;

    // Pick a wave with at least two workers and two distinct workers in it.
    uint32_t Eligible = 0;
    for (uint32_t Wave = 0; Wave < Workload.numWaves(); ++Wave)
      if (Workload.waveWorkers(Wave).size() >= 2)
        ++Eligible;
    if (Eligible == 0)
      continue;
    auto Pick = static_cast<uint32_t>(Random.nextBelow(Eligible));
    uint32_t Wave = 0;
    for (uint32_t Candidate = 0; Candidate < Workload.numWaves();
         ++Candidate) {
      if (Workload.waveWorkers(Candidate).size() < 2)
        continue;
      if (Pick == 0) {
        Wave = Candidate;
        break;
      }
      --Pick;
    }
    std::vector<ThreadId> Workers = Workload.waveWorkers(Wave);
    size_t IndexA = Random.nextBelow(Workers.size());
    size_t IndexB = Random.nextBelow(Workers.size() - 1);
    if (IndexB >= IndexA)
      ++IndexB;
    ThreadId WorkerA = Workers[IndexA];
    ThreadId WorkerB = Workers[IndexB];

    VarId Var = Workload.racyVar(Race);
    VolatileId FlagA = Workload.racyVolatileA(Race);
    VolatileId FlagB = Workload.racyVolatileB(Race);

    // Pick the pairs' fractional positions once (shared by both sides),
    // then place each side's blocks at the nearest lock-free points and
    // number the spin thresholds in script order: thread X's i-th block
    // publishes its flag (the i-th write) before awaiting the partner's
    // i-th write, so neither side can wait on a write that will never
    // come -- rendezvous without deadlock.
    std::vector<double> Fractions(Planted.PairsPerTrial);
    for (double &Fraction : Fractions)
      Fraction = 0.05 + 0.9 * Random.nextDouble();

    auto PlaceSide = [&](ThreadId Worker, AccessKind Kind, SiteId Site,
                         VolatileId Own, VolatileId Partner) {
      const std::vector<Action> &Ops = Scripts[Worker].Ops;
      // Blocks may only sit where the worker holds no lock: a thread that
      // spin-waits while holding a lock the partner needs would deadlock.
      std::vector<size_t> LockFree = lockFreePositions(Ops);
      std::vector<size_t> Positions;
      for (double Fraction : Fractions) {
        double Jitter =
            (Random.nextDouble() * 2.0 - 1.0) * Spec.RacyPositionJitter;
        double Where = std::clamp(Fraction + Jitter, 0.0, 0.999);
        Positions.push_back(nearestPosition(
            LockFree, static_cast<size_t>(
                          Where * static_cast<double>(Ops.size() - 1))));
      }
      std::sort(Positions.begin(), Positions.end());
      ActionKind Access =
          Kind == AccessKind::Write ? ActionKind::Write : ActionKind::Read;
      for (size_t I = 0; I != Positions.size(); ++I) {
        auto Threshold = static_cast<SiteId>(I + 1);
        PerWorker[Worker].push_back(
            {Positions[I], NextSeq++,
             Action{ActionKind::VolatileWrite, Worker, Own, InvalidId}});
        PerWorker[Worker].push_back(
            {Positions[I], NextSeq++,
             Action{ActionKind::AwaitVolatile, Worker, Partner, Threshold}});
        PerWorker[Worker].push_back(
            {Positions[I], NextSeq++, Action{Access, Worker, Var, Site}});
      }
    };
    PlaceSide(WorkerA, Planted.FirstKind, Workload.racySiteA(Race), FlagA,
              FlagB);
    PlaceSide(WorkerB, Planted.SecondKind, Workload.racySiteB(Race), FlagB,
              FlagA);
  }

  for (size_t Worker = 0; Worker != Scripts.size(); ++Worker) {
    std::vector<Insertion> &Insertions = PerWorker[Worker];
    if (Insertions.empty())
      continue;
    std::sort(Insertions.begin(), Insertions.end(),
              [](const Insertion &A, const Insertion &B) {
                if (A.Pos != B.Pos)
                  return A.Pos > B.Pos;
                return A.Seq > B.Seq;
              });
    std::vector<Action> &Ops = Scripts[Worker].Ops;
    for (const Insertion &Ins : Insertions)
      Ops.insert(Ops.begin() + static_cast<ptrdiff_t>(Ins.Pos), Ins.What);
  }
}

std::vector<ThreadScript> ScriptBuilder::build() {
  std::vector<ThreadScript> Scripts(Workload.totalThreads());
  if (Workload.isForkJoin()) {
    Scripts[0] = buildForkJoinMain();
    const uint32_t Tree = Workload.taskTreeSize();
    for (uint32_t Root = 0; Root < Workload.numTaskRoots(); ++Root)
      buildTaskTree(Scripts, 1 + Root * Tree, Workload.spec().TaskDepth);
  } else {
    Scripts[0] = buildMain();
    for (ThreadId Tid = 1; Tid < Workload.totalThreads(); ++Tid)
      Scripts[Tid] = buildWorker(Tid);
  }
  plantRaces(Scripts);
  return Scripts;
}
