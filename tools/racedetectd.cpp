//===- tools/racedetectd.cpp - Fleet trace-ingest daemon ------------------==//
//
// The deployment-side collector from the paper's fleet story, as a
// long-running daemon: deployed instances (or CI jobs, or a test harness)
// submit binary/text trace files over a Unix-domain socket, loopback TCP,
// or by dropping files into a watched directory; each submission is
// replayed through an AnalysisSession with bounded memory and folded into
// a persistent FleetAggregator whose snapshot survives kill -9 (see
// runtime/IngestServer.h for the crash-safety story).
//
//   racedetectd --listen=/run/racedetectd.sock \
//               --drop-dir=/var/spool/traces \
//               --snapshot=/var/lib/racedetectd/fleet.snap \
//               --detector=pacer --rate=0.03
//
// Submit and inspect with the racedetect tool:
//
//   racedetect --submit --socket=/run/racedetectd.sock run-4711.trace
//   racedetect --daemon-stats --socket=/run/racedetectd.sock
//
// SIGINT/SIGTERM stop the daemon gracefully: drain the queue, write a
// final snapshot, print the ingest counters.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "runtime/IngestServer.h"
#include "runtime/TraceIndex.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "support/Topology.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include <unistd.h>

using namespace pacer;

namespace {

std::atomic<bool> GStopRequested{false};

void onSignal(int) { GStopRequested.store(true); }

OptionRegistry buildRegistry() {
  OptionRegistry R("racedetectd [--listen=SOCK] [--tcp-port=N] "
                   "[--drop-dir=DIR] --snapshot=FILE [options]");
  R.addString("listen", "", "Unix-domain socket path to accept on")
      .addInt("tcp-port", -1,
              "loopback TCP port to accept on (0 = ephemeral, printed)")
      .addString("drop-dir", "", "watch this directory for dropped traces")
      .addString("snapshot", "",
                 "persistent fleet snapshot file (crash-safe; loaded on "
                 "start when present)")
      .addString("spool-dir", "",
                 "in-flight submission spool (default: SNAPSHOT.spool, or "
                 "racedetectd.spool)")
      .addString("detector", "pacer", "pacer|fasttrack|generic|literace")
      .addDouble("rate", 1.0, "PACER sampling rate in [0,1]")
      .addInt("period-bytes", 256 * 1024, "simulated nursery size in bytes")
      .addInt("burst", 100, "LiteRace burst length")
      .addFlag("accordion", "accordion thread-slot recycling")
      .addInt("seed", 1, "seed for sampling decisions (fleet-wide)")
      .addString("shards", "1",
                 "shards per submission replay: a count or 'auto'")
      .addInt("stream-window",
              static_cast<int64_t>(StreamingTraceReader::DefaultWindowActions),
              "streaming window per replay, in actions")
      .addInt("max-submission-mb", 256, "per-submission size limit (MiB)")
      .addInt("queue", 64,
              "bounded submission queue depth (producers block when full)")
      .addInt("workers", 0, "analysis worker threads (0 = hardware)")
      .addInt("max-connections", 256, "simultaneous connection limit")
      .addInt("snapshot-every", 1, "snapshot after every Nth commit")
      .addInt("drop-poll-ms", 50, "drop-directory poll interval")
      .addInt("recv-timeout-ms", 10000, "per-read connection timeout");
  return R;
}

bool setupFromOptions(const OptionRegistry &R, DetectorSetup &Setup) {
  const std::string Name = R.getString("detector");
  if (Name == "pacer") {
    Setup = pacerSetup(R.getDouble("rate"));
    Setup.Sampling.PeriodBytes =
        static_cast<uint64_t>(R.getInt("period-bytes"));
  } else if (Name == "fasttrack") {
    Setup = fastTrackSetup();
  } else if (Name == "generic") {
    Setup = genericSetup();
  } else if (Name == "literace") {
    Setup = literaceSetup(static_cast<uint32_t>(R.getInt("burst")));
  } else {
    return false;
  }
  Setup.AccordionClocks = R.getBool("accordion");
  Setup.Shards = parseShardCount(R.getString("shards"));
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = buildRegistry();
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;

  IngestServer::Config Config;
  Config.UnixSocketPath = R.getString("listen");
  Config.TcpPort = static_cast<int>(R.getInt("tcp-port"));
  Config.DropDir = R.getString("drop-dir");
  Config.SnapshotPath = R.getString("snapshot");
  Config.SpoolDir = R.getString("spool-dir");
  if (Config.SpoolDir.empty())
    Config.SpoolDir = Config.SnapshotPath.empty()
                          ? "racedetectd.spool"
                          : Config.SnapshotPath + ".spool";
  if (!setupFromOptions(R, Config.Setup)) {
    std::fprintf(stderr, "error: unknown --detector=%s\n",
                 R.getString("detector").c_str());
    return 2;
  }
  Config.Seed = static_cast<uint64_t>(R.getInt("seed"));
  int64_t WindowFlag = R.getInt("stream-window");
  Config.StreamWindow = WindowFlag < 1 ? 1 : static_cast<size_t>(WindowFlag);
  Config.MaxSubmissionBytes =
      static_cast<uint64_t>(R.getInt("max-submission-mb")) << 20;
  int64_t QueueFlag = R.getInt("queue");
  Config.QueueCapacity = QueueFlag < 1 ? 1 : static_cast<size_t>(QueueFlag);
  Config.AnalysisWorkers = static_cast<unsigned>(R.getInt("workers"));
  Config.MaxConnections =
      static_cast<unsigned>(R.getInt("max-connections"));
  int64_t EveryFlag = R.getInt("snapshot-every");
  Config.SnapshotEveryN = EveryFlag < 1 ? 1 : static_cast<unsigned>(EveryFlag);
  Config.DropPollMs = static_cast<int>(R.getInt("drop-poll-ms"));
  Config.RecvTimeoutMs = static_cast<int>(R.getInt("recv-timeout-ms"));

  if (Config.UnixSocketPath.empty() && Config.TcpPort < 0 &&
      Config.DropDir.empty()) {
    std::fprintf(stderr,
                 "error: nothing to accept on -- need --listen, "
                 "--tcp-port, or --drop-dir\n");
    return 2;
  }

  IngestServer Server(Config);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // One line per surface, so scripts (and the integration test) can scrape
  // the ephemeral TCP port and know the daemon is ready.
  std::printf("racedetectd: pid %d\n", static_cast<int>(::getpid()));
  std::printf("racedetectd: hardware: kernel isa %s, %s, pinning %s\n",
              kernels::activeIsa(), topo::summary().c_str(),
              threadPinningEnabled() ? "on" : "off");
  if (!Config.UnixSocketPath.empty())
    std::printf("racedetectd: listening on %s\n",
                Config.UnixSocketPath.c_str());
  if (Config.TcpPort >= 0)
    std::printf("racedetectd: listening on tcp port %d\n", Server.tcpPort());
  if (!Config.DropDir.empty())
    std::printf("racedetectd: watching %s\n", Config.DropDir.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GStopRequested.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Server.stop();
  std::printf("racedetectd: stopped; %s\n", Server.statsText().c_str());
  return 0;
}
