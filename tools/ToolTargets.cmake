# Command-line tools, declared from the top-level CMakeLists (binaries
# land in ${CMAKE_BINARY_DIR}/tools).

add_executable(racedetect tools/racedetect.cpp)
target_link_libraries(racedetect PRIVATE pacer_harness)
set_target_properties(racedetect PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools)

add_executable(racedetectd tools/racedetectd.cpp)
target_link_libraries(racedetectd PRIVATE pacer_runtime pacer_support)
set_target_properties(racedetectd PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools)

add_executable(traceconv tools/traceconv.cpp)
target_link_libraries(traceconv PRIVATE pacer_sim pacer_support)
set_target_properties(traceconv PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools)
