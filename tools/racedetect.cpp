//===- tools/racedetect.cpp - Command-line race detection -----------------==//
//
// A small driver around the library for downstream use without writing
// C++: generate workload traces to files and analyse trace files with any
// of the detectors. Several trace files can be analysed in one run; with
// --jobs=N the files are processed concurrently (output stays in argument
// order), and --shards=K splits each replay across K detector replicas
// with bit-identical results. --shards=auto picks K per trace from its
// access count and the hardware; batch runs (more than one trace file)
// default to auto, single-file runs to 1.
//
// Traces come in two formats (see sim/TraceIO.h), auto-detected on read:
// text (v1) and binary (v2). Binary traces analyse through an mmap-backed
// zero-copy TraceView where the platform allows; --stream replays any
// trace from a bounded window (--stream-window actions) so peak memory is
// O(window + detector metadata) regardless of trace size. Results are
// bit-identical across formats and read paths.
//
//   racedetect --generate=eclipse --scale=0.2 --seed=7 --out=run.trace \
//              --trace-format=binary
//   racedetect run.trace --detector=pacer --rate=0.03 --stats
//   racedetect a.trace b.trace c.trace --jobs=3 --shards=4
//   racedetect huge.trace --stream --stream-window=65536
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "runtime/Runtime.h"
#include "runtime/ShardedReplay.h"
#include "runtime/TraceIndex.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/TraceView.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace pacer;

namespace {

OptionRegistry buildRegistry() {
  OptionRegistry R("racedetect [options] TRACE...\n"
                   "       racedetect --generate=WORKLOAD --out=FILE "
                   "[--scale=F] [--seed=N]");
  R.addString("generate", "",
              "generate a trace of eclipse|hsqldb|xalan|pseudojbb|forkjoin "
              "instead of analysing")
      .addString("out", "", "output file for --generate")
      .addDouble("scale", 1.0, "workload scale for --generate")
      .addString("trace-format", "text",
                 "--generate output format: text|binary")
      .addString("detector", "pacer", "pacer|fasttrack|generic|literace")
      .addDouble("rate", 1.0, "PACER sampling rate in [0,1]")
      .addInt("period-bytes", 256 * 1024, "simulated nursery size in bytes")
      .addInt("burst", 100, "LiteRace burst length")
      .addInt("seed", 1, "seed for trace generation / sampling decisions")
      .addFlag("accordion",
               "recycle thread-clock slots once dead threads are "
               "dominated (accordion clocks); reports are identical, "
               "metadata stays O(live threads)")
      .addInt("max-reports", 10, "race reports to print per trace")
      .addFlag("stats", "print operation statistics per trace")
      .addFlag("times", "print load/index/analysis time per trace")
      .addFlag("stream",
               "replay from a bounded window instead of loading the trace")
      .addInt("stream-window",
              static_cast<int64_t>(StreamingTraceReader::DefaultWindowActions),
              "streaming window size in actions")
      .addInt("jobs", 1, "analyse this many trace files concurrently")
      .addString("shards", "",
                 "variable shards per trace replay: a count or 'auto' "
                 "(empty = auto for multi-file batches, 1 otherwise)")
      .addFlag("pin-threads",
               "pin pool workers to CPUs (also PACER_PIN_THREADS=1); "
               "best-effort, no-op where unsupported");
  return R;
}

DetectorSetup setupFromOptions(const OptionRegistry &R, bool &Ok) {
  Ok = true;
  std::string Name = R.getString("detector");
  if (Name == "pacer") {
    DetectorSetup Setup = pacerSetup(R.getDouble("rate"));
    Setup.Sampling.PeriodBytes =
        static_cast<uint64_t>(R.getInt("period-bytes"));
    return Setup;
  }
  if (Name == "fasttrack")
    return fastTrackSetup();
  if (Name == "generic")
    return genericSetup();
  if (Name == "literace")
    return literaceSetup(static_cast<uint32_t>(R.getInt("burst")));
  Ok = false;
  return {};
}

int generateMode(const OptionRegistry &R) {
  std::string Out = R.getString("out");
  if (Out.empty()) {
    std::fprintf(stderr, "error: --generate requires --out=FILE\n");
    return 2;
  }
  TraceFormat Format;
  if (!parseTraceFormat(R.getString("trace-format"), Format)) {
    std::fprintf(stderr, "error: unknown --trace-format=%s\n",
                 R.getString("trace-format").c_str());
    return 2;
  }
  WorkloadSpec Spec = paperWorkloadByName(R.getString("generate"));
  Spec = scaleWorkload(Spec, R.getDouble("scale"));
  CompiledWorkload Workload(Spec);
  Trace T =
      generateTrace(Workload, static_cast<uint64_t>(R.getInt("seed")));
  if (!writeTraceFile(Out, T, Format)) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  TraceProfile Profile = profileTrace(T);
  std::printf("wrote %s (%s): %llu actions, %u threads, %.1f%% sync, "
              "%u planted races\n",
              Out.c_str(), traceFormatName(Format),
              static_cast<unsigned long long>(Profile.Total),
              Workload.totalThreads(), 100.0 * Profile.syncFraction(),
              Workload.numRaces());
  return 0;
}

std::string statsTable(const DetectorStats &Stats) {
  TextTable Table;
  Table.setHeader({"operation", "sampling", "non-sampling"});
  Table.addRow({"slow joins", std::to_string(Stats.SlowJoinsSampling),
                std::to_string(Stats.SlowJoinsNonSampling)});
  Table.addRow({"fast joins", std::to_string(Stats.FastJoinsSampling),
                std::to_string(Stats.FastJoinsNonSampling)});
  Table.addRow({"deep copies", std::to_string(Stats.DeepCopiesSampling),
                std::to_string(Stats.DeepCopiesNonSampling)});
  Table.addRow({"shallow copies",
                std::to_string(Stats.ShallowCopiesSampling),
                std::to_string(Stats.ShallowCopiesNonSampling)});
  Table.addRow({"slow-path reads", std::to_string(Stats.ReadSlowSampling),
                std::to_string(Stats.ReadSlowNonSampling)});
  Table.addRow({"fast-path reads", "-",
                std::to_string(Stats.ReadFastNonSampling)});
  Table.addRow({"slow-path writes", std::to_string(Stats.WriteSlowSampling),
                std::to_string(Stats.WriteSlowNonSampling)});
  Table.addRow({"fast-path writes", "-",
                std::to_string(Stats.WriteFastNonSampling)});
  return "\n" + Table.render();
}

/// Everything analyseFile measures and prints for one trace file.
struct FileOutcome {
  std::string Text;
  bool ParseFailed = false;
  uint64_t DistinctRaces = 0;
};

/// Merged detection results in a read-path-independent shape.
struct AnalysisResult {
  std::unordered_map<RaceKey, uint64_t> Races;
  uint64_t DynamicRaces = 0;
  DetectorStats Stats;
  double EffectiveAccessRate = 0.0;
  std::vector<RaceReport> SampleReports;
  uint64_t Actions = 0;
  size_t PeakSlots = 0;        ///< High-water thread-slot count.
  size_t FinalLiveBytes = 0;   ///< Live metadata bytes at end of replay.
};

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Sequential bounded-window replay: the streaming twin of
/// shardedReplay(T, ..., Shards=1). Bit-identical results; peak
/// trace-resident memory is one window.
bool streamReplay(StreamingTraceReader &Reader, const DetectorSetup &Setup,
                  const CompiledWorkload &Flat, uint64_t Seed,
                  AnalysisResult &Out, std::string &Error) {
  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Flat, Seed);
  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(Sampling, Seed);
  }
  Runtime RT(*D, Controller.get());
  RT.start();
  for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
       Chunk = Reader.next())
    RT.replayChunk(Chunk, AccessShard::all());
  if (!Reader.ok()) {
    Error = Reader.error();
    return false;
  }
  Out.Races = Log.counts();
  Out.DynamicRaces = Log.dynamicCount();
  Out.Stats = D->stats();
  if (Controller)
    Out.EffectiveAccessRate = Controller->effectiveAccessRate();
  Out.SampleReports = Log.sampleReports();
  Out.Actions = Reader.actionsDelivered();
  Out.PeakSlots = D->peakSlotCount();
  Out.FinalLiveBytes = D->liveMetadataBytes();
  return true;
}

FileOutcome analyseFile(const std::string &Path, const DetectorSetup &Setup,
                        uint64_t Seed, unsigned Shards, size_t MaxReports,
                        bool WantStats, bool WantTimes, bool Stream,
                        size_t StreamWindow) {
  FileOutcome Out;
  auto Fail = [&](const std::string &Why) {
    Out.ParseFailed = true;
    Out.Text = "error: " + Why + "\n";
    return Out;
  };

  // Trace files carry no code structure, so give LiteRace a flat
  // site-to-method map (every site its own method) via a raceless
  // placeholder workload.
  WorkloadSpec FlatSpec = tinyTestWorkload();
  FlatSpec.Races.clear();
  CompiledWorkload Flat(FlatSpec);

  DetectorFactory Factory = [&](RaceSink &Sink) {
    return makeDetector(Setup, Sink, Flat, Seed);
  };

  double LoadSeconds = 0, IndexSeconds = 0, AnalysisSeconds = 0;
  std::string Notes;
  AnalysisResult Result;
  unsigned ResolvedShards = Shards;

  auto NoteAutoShards = [&](uint64_t Accesses) {
    char Note[128];
    std::snprintf(Note, sizeof(Note),
                  "auto-sharding: K=%u (%llu accesses, %u hardware jobs)\n",
                  ResolvedShards,
                  static_cast<unsigned long long>(Accesses), hardwareJobs());
    Notes += Note;
  };

  auto RunSharded = [&](TraceSpan T, const TraceIndex *Index) {
    ShardedReplayConfig Config;
    Config.Shards = ResolvedShards;
    Config.Index = Index;
    if (Setup.Kind == DetectorKind::Pacer) {
      Config.UseController = true;
      Config.Sampling = Setup.Sampling;
      Config.Sampling.TargetRate = Setup.SamplingRate;
      Config.ControllerSeed = Seed;
    }
    auto Start = Clock::now();
    ShardedReplayResult Sharded = shardedReplay(T, Factory, Config);
    AnalysisSeconds = secondsSince(Start);
    Result.Races = std::move(Sharded.Races);
    Result.DynamicRaces = Sharded.DynamicRaces;
    Result.Stats = Sharded.Stats;
    Result.EffectiveAccessRate = Sharded.EffectiveAccessRate;
    Result.SampleReports = std::move(Sharded.SampleReports);
    Result.Actions = T.size();
    Result.PeakSlots = Sharded.PeakSlotCount;
    Result.FinalLiveBytes = Sharded.FinalMetadataBytes;
  };

  if (Stream) {
    // Bounded-window mode: the trace is never materialized. Auto-shard
    // resolution and the replay index come from extra bounded passes over
    // the same reader; sharded replicas then need random access, which an
    // mmap view provides for binary traces at zero copy. Text traces (no
    // random access without parsing) stream sequentially.
    TraceFormat Format;
    std::string DetectError;
    if (!detectTraceFileFormat(Path, Format, DetectError))
      return Fail(DetectError);

    if (ResolvedShards == 0) {
      // Counting pass for --shards=auto, O(window) resident.
      auto Start = Clock::now();
      StreamingTraceReader Counter(Path, StreamWindow);
      uint64_t Accesses = 0;
      for (TraceSpan Chunk = Counter.next(); !Chunk.empty();
           Chunk = Counter.next())
        Accesses += countTraceAccesses(Chunk);
      if (!Counter.ok())
        return Fail(Counter.error());
      IndexSeconds += secondsSince(Start);
      ResolvedShards = resolveShardCount(0, Accesses);
      NoteAutoShards(Accesses);
    }

    TraceView View; // Must outlive RunSharded's span.
    bool Sequential = ResolvedShards <= 1;
    if (!Sequential) {
      if (Format == TraceFormat::Binary) {
        auto Start = Clock::now();
        View = TraceView::open(Path);
        if (!View.ok())
          return Fail(View.error());
        LoadSeconds = secondsSince(Start);
        if (!View.mapped()) {
          // Buffered fallback materializes the trace; stay sequential to
          // honour the bounded-memory request.
          View = TraceView();
          Sequential = true;
          Notes += "streaming: mmap unavailable, replaying sequentially\n";
        }
      } else {
        Sequential = true;
        Notes += "streaming: text trace has no random access, replaying "
                 "sequentially\n";
      }
    }

    if (!Sequential) {
      // Streamed index build: one bounded pass feeds the sharded engine.
      auto Start = Clock::now();
      StreamingTraceReader Reader(Path, StreamWindow);
      TraceIndex::Builder Builder(ResolvedShards);
      for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
           Chunk = Reader.next())
        Builder.addChunk(Chunk);
      if (!Reader.ok())
        return Fail(Reader.error());
      TraceIndex Index = Builder.take();
      IndexSeconds += secondsSince(Start);
      RunSharded(View.actions(), &Index);
    } else {
      ResolvedShards = 1;
      auto Start = Clock::now();
      StreamingTraceReader Reader(Path, StreamWindow);
      if (!Reader.ok())
        return Fail(Reader.error());
      std::string StreamError;
      if (!streamReplay(Reader, Setup, Flat, Seed, Result, StreamError))
        return Fail(StreamError);
      AnalysisSeconds = secondsSince(Start); // Load is interleaved.
    }
  } else {
    // In-memory mode: binary traces analyse from an mmap view (zero-copy
    // where the platform allows); text traces parse into a Trace.
    TraceFormat Format;
    std::string DetectError;
    if (!detectTraceFileFormat(Path, Format, DetectError))
      return Fail(DetectError);

    TraceView View;
    TraceParseResult Parsed;
    TraceSpan T;
    auto LoadStart = Clock::now();
    if (Format == TraceFormat::Binary) {
      View = TraceView::open(Path);
      if (!View.ok())
        return Fail(View.error());
      T = View.actions();
    } else {
      Parsed = readTraceFile(Path);
      if (!Parsed.Ok)
        return Fail(Parsed.Error);
      T = Parsed.T;
    }
    LoadSeconds = secondsSince(LoadStart);

    TraceIndex Index;
    const TraceIndex *IndexPtr = nullptr;
    auto IndexStart = Clock::now();
    if (ResolvedShards == 0) {
      TraceIndex::Builder Builder(1);
      Builder.addChunk(T);
      const uint64_t Accesses = Builder.accessCount();
      ResolvedShards = resolveShardCount(0, Accesses);
      NoteAutoShards(Accesses);
    }
    if (ResolvedShards > 1) {
      Index = TraceIndex::build(T, ResolvedShards);
      IndexPtr = &Index;
    }
    IndexSeconds = secondsSince(IndexStart);

    RunSharded(T, IndexPtr);
  }

  char Buf[256];
  Out.Text += Notes;
  std::snprintf(Buf, sizeof(Buf), "%s: analysed %llu actions", Path.c_str(),
                static_cast<unsigned long long>(Result.Actions));
  Out.Text += Buf;
  if (ResolvedShards > 1) {
    std::snprintf(Buf, sizeof(Buf), " across %u shards", ResolvedShards);
    Out.Text += Buf;
  }
  if (Stream && ResolvedShards <= 1) {
    std::snprintf(Buf, sizeof(Buf), " (streamed, window %zu actions)",
                  StreamWindow);
    Out.Text += Buf;
  }
  if (Setup.Kind == DetectorKind::Pacer) {
    std::snprintf(Buf, sizeof(Buf), " (specified rate %.3g, effective %.3g)",
                  Setup.SamplingRate, Result.EffectiveAccessRate);
    Out.Text += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "\n%zu distinct race(s), %llu dynamic report(s)\n",
                Result.Races.size(),
                static_cast<unsigned long long>(Result.DynamicRaces));
  Out.Text += Buf;
  if (WantTimes) {
    // I/O cost split out from detection cost, so format/read-path wins
    // are visible per file. Streamed sequential replay overlaps load
    // with analysis, so its load column is folded into analysis.
    std::snprintf(Buf, sizeof(Buf),
                  "  load %.3f ms, index %.3f ms, analysis %.3f ms\n",
                  LoadSeconds * 1e3, IndexSeconds * 1e3,
                  AnalysisSeconds * 1e3);
    Out.Text += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  peak thread slots %zu, live metadata %.1f KB%s\n",
                  Result.PeakSlots,
                  static_cast<double>(Result.FinalLiveBytes) / 1024.0,
                  Setup.AccordionClocks ? " (accordion)" : "");
    Out.Text += Buf;
  }

  // Sharded replay merges sample reports replica by replica, so their
  // discovery order depends on the shard count; print them sorted so the
  // output is identical for every --shards value and read path.
  std::vector<std::string> Reports;
  Reports.reserve(Result.SampleReports.size());
  for (const RaceReport &Report : Result.SampleReports)
    Reports.push_back(Report.str());
  std::sort(Reports.begin(), Reports.end());
  size_t Shown = 0;
  for (const std::string &Report : Reports) {
    if (Shown++ >= MaxReports)
      break;
    Out.Text += "  " + Report + "\n";
  }
  if (Result.DynamicRaces > Shown) {
    std::snprintf(Buf, sizeof(Buf), "  ... (%llu more dynamic reports)\n",
                  static_cast<unsigned long long>(Result.DynamicRaces -
                                                  Shown));
    Out.Text += Buf;
  }

  if (WantStats)
    Out.Text += statsTable(Result.Stats);
  Out.DistinctRaces = Result.Races.size();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = buildRegistry();
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;

  if (R.has("generate"))
    return generateMode(R);

  const std::vector<std::string> &Files = R.positional();
  if (Files.empty()) {
    R.printHelp(stderr);
    return 2;
  }

  bool SetupOk = false;
  DetectorSetup Setup = setupFromOptions(R, SetupOk);
  Setup.AccordionClocks = R.getBool("accordion");
  if (!SetupOk) {
    std::fprintf(stderr, "error: unknown --detector=%s\n",
                 R.getString("detector").c_str());
    return 2;
  }

  auto Seed = static_cast<uint64_t>(R.getInt("seed"));
  auto MaxReports = static_cast<size_t>(R.getInt("max-reports"));
  bool WantStats = R.getBool("stats");
  bool WantTimes = R.getBool("times");
  bool Stream = R.getBool("stream");
  int64_t WindowFlag = R.getInt("stream-window");
  size_t StreamWindow =
      WindowFlag < 1 ? 1 : static_cast<size_t>(WindowFlag);
  int64_t JobsFlag = R.getInt("jobs");
  unsigned Jobs = JobsFlag < 1 ? 1u : static_cast<unsigned>(JobsFlag);
  // Empty --shards defaults to auto-tuning for multi-file batches (where
  // per-trace tuning pays off) and plain sequential replay for one file.
  const std::string ShardsText = R.getString("shards");
  const unsigned Shards = ShardsText.empty()
                              ? (Files.size() > 1 ? 0u : 1u)
                              : parseShardCount(ShardsText);
  if (R.getBool("pin-threads"))
    setThreadPinning(true);
  if (threadPinningEnabled())
    std::fprintf(stderr, "[pin] worker CPU affinity on (%u cpus)\n",
                 hardwareJobs());

  // Analyse the files concurrently, but print outcomes in argument order
  // so batch output is stable for any --jobs value.
  std::vector<FileOutcome> Outcomes =
      parallelMap(Jobs, Files.size(), [&](size_t I) {
        return analyseFile(Files[I], Setup, Seed, Shards, MaxReports,
                           WantStats, WantTimes, Stream, StreamWindow);
      });

  bool AnyParseFailed = false;
  uint64_t TotalDistinct = 0;
  for (const FileOutcome &Outcome : Outcomes) {
    std::fputs(Outcome.Text.c_str(),
               Outcome.ParseFailed ? stderr : stdout);
    AnyParseFailed |= Outcome.ParseFailed;
    TotalDistinct += Outcome.DistinctRaces;
  }
  if (AnyParseFailed)
    return 1;
  return TotalDistinct == 0 ? 0 : 3;
}
