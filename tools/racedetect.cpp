//===- tools/racedetect.cpp - Command-line race detection -----------------==//
//
// A small driver around the library for downstream use without writing
// C++: generate workload traces to files and analyse trace files with any
// of the detectors.
//
//   racedetect --generate=eclipse --scale=0.2 --seed=7 --out=run.trace
//   racedetect run.trace --detector=pacer --rate=0.03 --stats
//   racedetect run.trace --detector=fasttrack --max-reports=5
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>
#include <memory>

using namespace pacer;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  racedetect --generate=WORKLOAD --out=FILE [--scale=F] [--seed=N]\n"
      "      generate a trace of eclipse|hsqldb|xalan|pseudojbb\n"
      "  racedetect FILE [options]\n"
      "      analyse a trace file\n"
      "options:\n"
      "  --detector=pacer|fasttrack|generic|literace   (default pacer)\n"
      "  --rate=R           PACER sampling rate in [0,1] (default 1.0)\n"
      "  --period-bytes=N   simulated nursery size (default 262144)\n"
      "  --burst=N          LiteRace burst length (default 100)\n"
      "  --seed=N           seed for sampling decisions (default 1)\n"
      "  --max-reports=N    race reports to print (default 10)\n"
      "  --stats            print operation statistics\n");
  return 2;
}

DetectorSetup setupFromFlags(const FlagSet &Flags, bool &Ok) {
  Ok = true;
  std::string Name = Flags.getString("detector", "pacer");
  if (Name == "pacer") {
    DetectorSetup Setup = pacerSetup(Flags.getDouble("rate", 1.0));
    Setup.Sampling.PeriodBytes =
        static_cast<uint64_t>(Flags.getInt("period-bytes", 256 * 1024));
    return Setup;
  }
  if (Name == "fasttrack")
    return fastTrackSetup();
  if (Name == "generic")
    return genericSetup();
  if (Name == "literace")
    return literaceSetup(static_cast<uint32_t>(Flags.getInt("burst", 100)));
  Ok = false;
  return {};
}

int generateMode(const FlagSet &Flags) {
  std::string Out = Flags.getString("out", "");
  if (Out.empty()) {
    std::fprintf(stderr, "error: --generate requires --out=FILE\n");
    return 2;
  }
  WorkloadSpec Spec = paperWorkloadByName(Flags.getString("generate", ""));
  Spec = scaleWorkload(Spec, Flags.getDouble("scale", 1.0));
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload,
                          static_cast<uint64_t>(Flags.getInt("seed", 1)));
  if (!writeTraceFile(Out, T)) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  TraceProfile Profile = profileTrace(T);
  std::printf("wrote %s: %llu actions, %u threads, %.1f%% sync, %u planted "
              "races\n",
              Out.c_str(), static_cast<unsigned long long>(Profile.Total),
              Workload.totalThreads(), 100.0 * Profile.syncFraction(),
              Workload.numRaces());
  return 0;
}

void printStats(const DetectorStats &Stats) {
  TextTable Table;
  Table.setHeader({"operation", "sampling", "non-sampling"});
  Table.addRow({"slow joins", std::to_string(Stats.SlowJoinsSampling),
                std::to_string(Stats.SlowJoinsNonSampling)});
  Table.addRow({"fast joins", std::to_string(Stats.FastJoinsSampling),
                std::to_string(Stats.FastJoinsNonSampling)});
  Table.addRow({"deep copies", std::to_string(Stats.DeepCopiesSampling),
                std::to_string(Stats.DeepCopiesNonSampling)});
  Table.addRow({"shallow copies",
                std::to_string(Stats.ShallowCopiesSampling),
                std::to_string(Stats.ShallowCopiesNonSampling)});
  Table.addRow({"slow-path reads", std::to_string(Stats.ReadSlowSampling),
                std::to_string(Stats.ReadSlowNonSampling)});
  Table.addRow({"fast-path reads", "-",
                std::to_string(Stats.ReadFastNonSampling)});
  Table.addRow({"slow-path writes", std::to_string(Stats.WriteSlowSampling),
                std::to_string(Stats.WriteSlowNonSampling)});
  Table.addRow({"fast-path writes", "-",
                std::to_string(Stats.WriteFastNonSampling)});
  std::printf("\n%s", Table.render().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags(Argc, Argv);

  if (Flags.has("generate"))
    return generateMode(Flags);

  if (Flags.positional().size() != 1 || Flags.has("help"))
    return usage();

  TraceParseResult Parsed = readTraceFile(Flags.positional()[0]);
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s\n", Parsed.Error.c_str());
    return 1;
  }

  bool SetupOk = false;
  DetectorSetup Setup = setupFromFlags(Flags, SetupOk);
  if (!SetupOk)
    return usage();
  auto Seed = static_cast<uint64_t>(Flags.getInt("seed", 1));

  // The detector factory needs a site-to-method map for LiteRace; derive a
  // flat one from the trace (every site its own method) since trace files
  // carry no code structure.
  SiteId MaxSite = 0;
  for (const Action &A : Parsed.T)
    if (isAccessAction(A.Kind) && A.Site != InvalidId && A.Site > MaxSite)
      MaxSite = A.Site;
  WorkloadSpec FlatSpec = tinyTestWorkload();
  FlatSpec.Races.clear();
  CompiledWorkload Flat(FlatSpec);

  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Flat, Seed);
  std::unique_ptr<SamplingController> Controller;
  if (Setup.Kind == DetectorKind::Pacer) {
    SamplingConfig Sampling = Setup.Sampling;
    Sampling.TargetRate = Setup.SamplingRate;
    Controller = std::make_unique<SamplingController>(Sampling, Seed);
  }
  Runtime RT(*D, Controller.get());
  RT.replay(Parsed.T);

  TraceProfile Profile = profileTrace(Parsed.T);
  std::printf("%s: analysed %llu actions with %s", Flags.positional()[0].c_str(),
              static_cast<unsigned long long>(Profile.Total), D->name());
  if (Setup.Kind == DetectorKind::Pacer && Controller)
    std::printf(" (specified rate %.3g, effective %.3g)",
                Setup.SamplingRate, Controller->effectiveAccessRate());
  std::printf("\n%zu distinct race(s), %llu dynamic report(s)\n",
              Log.distinctCount(),
              static_cast<unsigned long long>(Log.dynamicCount()));

  auto MaxReports = static_cast<size_t>(Flags.getInt("max-reports", 10));
  size_t Shown = 0;
  for (const RaceReport &Report : Log.sampleReports()) {
    if (Shown++ >= MaxReports)
      break;
    std::printf("  %s\n", Report.str().c_str());
  }
  if (Log.dynamicCount() > Shown)
    std::printf("  ... (%llu more dynamic reports)\n",
                static_cast<unsigned long long>(Log.dynamicCount() - Shown));

  if (Flags.getBool("stats", false))
    printStats(D->stats());
  return Log.distinctCount() == 0 ? 0 : 3;
}
