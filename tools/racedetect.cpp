//===- tools/racedetect.cpp - Command-line race detection -----------------==//
//
// A small driver around the library for downstream use without writing
// C++: generate workload traces to files and analyse trace files with any
// of the detectors. Several trace files can be analysed in one run; with
// --jobs=N the files are processed concurrently (output stays in argument
// order), and --shards=K splits each replay across K detector replicas
// with bit-identical results. --shards=auto picks K per trace from its
// access count and the hardware; batch runs (more than one trace file)
// default to auto, single-file runs to 1.
//
//   racedetect --generate=eclipse --scale=0.2 --seed=7 --out=run.trace
//   racedetect run.trace --detector=pacer --rate=0.03 --stats
//   racedetect a.trace b.trace c.trace --jobs=3 --shards=4
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "runtime/ShardedReplay.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace pacer;

namespace {

OptionRegistry buildRegistry() {
  OptionRegistry R("racedetect [options] TRACE...\n"
                   "       racedetect --generate=WORKLOAD --out=FILE "
                   "[--scale=F] [--seed=N]");
  R.addString("generate", "",
              "generate a trace of eclipse|hsqldb|xalan|pseudojbb "
              "instead of analysing")
      .addString("out", "", "output file for --generate")
      .addDouble("scale", 1.0, "workload scale for --generate")
      .addString("detector", "pacer", "pacer|fasttrack|generic|literace")
      .addDouble("rate", 1.0, "PACER sampling rate in [0,1]")
      .addInt("period-bytes", 256 * 1024, "simulated nursery size in bytes")
      .addInt("burst", 100, "LiteRace burst length")
      .addInt("seed", 1, "seed for trace generation / sampling decisions")
      .addInt("max-reports", 10, "race reports to print per trace")
      .addFlag("stats", "print operation statistics per trace")
      .addInt("jobs", 1, "analyse this many trace files concurrently")
      .addString("shards", "",
                 "variable shards per trace replay: a count or 'auto' "
                 "(empty = auto for multi-file batches, 1 otherwise)");
  return R;
}

DetectorSetup setupFromOptions(const OptionRegistry &R, bool &Ok) {
  Ok = true;
  std::string Name = R.getString("detector");
  if (Name == "pacer") {
    DetectorSetup Setup = pacerSetup(R.getDouble("rate"));
    Setup.Sampling.PeriodBytes =
        static_cast<uint64_t>(R.getInt("period-bytes"));
    return Setup;
  }
  if (Name == "fasttrack")
    return fastTrackSetup();
  if (Name == "generic")
    return genericSetup();
  if (Name == "literace")
    return literaceSetup(static_cast<uint32_t>(R.getInt("burst")));
  Ok = false;
  return {};
}

int generateMode(const OptionRegistry &R) {
  std::string Out = R.getString("out");
  if (Out.empty()) {
    std::fprintf(stderr, "error: --generate requires --out=FILE\n");
    return 2;
  }
  WorkloadSpec Spec = paperWorkloadByName(R.getString("generate"));
  Spec = scaleWorkload(Spec, R.getDouble("scale"));
  CompiledWorkload Workload(Spec);
  Trace T =
      generateTrace(Workload, static_cast<uint64_t>(R.getInt("seed")));
  if (!writeTraceFile(Out, T)) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  TraceProfile Profile = profileTrace(T);
  std::printf("wrote %s: %llu actions, %u threads, %.1f%% sync, %u planted "
              "races\n",
              Out.c_str(), static_cast<unsigned long long>(Profile.Total),
              Workload.totalThreads(), 100.0 * Profile.syncFraction(),
              Workload.numRaces());
  return 0;
}

std::string statsTable(const DetectorStats &Stats) {
  TextTable Table;
  Table.setHeader({"operation", "sampling", "non-sampling"});
  Table.addRow({"slow joins", std::to_string(Stats.SlowJoinsSampling),
                std::to_string(Stats.SlowJoinsNonSampling)});
  Table.addRow({"fast joins", std::to_string(Stats.FastJoinsSampling),
                std::to_string(Stats.FastJoinsNonSampling)});
  Table.addRow({"deep copies", std::to_string(Stats.DeepCopiesSampling),
                std::to_string(Stats.DeepCopiesNonSampling)});
  Table.addRow({"shallow copies",
                std::to_string(Stats.ShallowCopiesSampling),
                std::to_string(Stats.ShallowCopiesNonSampling)});
  Table.addRow({"slow-path reads", std::to_string(Stats.ReadSlowSampling),
                std::to_string(Stats.ReadSlowNonSampling)});
  Table.addRow({"fast-path reads", "-",
                std::to_string(Stats.ReadFastNonSampling)});
  Table.addRow({"slow-path writes", std::to_string(Stats.WriteSlowSampling),
                std::to_string(Stats.WriteSlowNonSampling)});
  Table.addRow({"fast-path writes", "-",
                std::to_string(Stats.WriteFastNonSampling)});
  return "\n" + Table.render();
}

/// One trace file's fully formatted report, assembled off the main thread
/// so batch output can print in argument order.
struct FileOutcome {
  std::string Text;
  bool ParseFailed = false;
  uint64_t DistinctRaces = 0;
};

FileOutcome analyseFile(const std::string &Path, const DetectorSetup &Setup,
                        uint64_t Seed, unsigned Shards, size_t MaxReports,
                        bool WantStats) {
  FileOutcome Out;
  TraceParseResult Parsed = readTraceFile(Path);
  if (!Parsed.Ok) {
    Out.ParseFailed = true;
    Out.Text = "error: " + Parsed.Error + "\n";
    return Out;
  }

  // Trace files carry no code structure, so give LiteRace a flat
  // site-to-method map (every site its own method) via a raceless
  // placeholder workload.
  WorkloadSpec FlatSpec = tinyTestWorkload();
  FlatSpec.Races.clear();
  CompiledWorkload Flat(FlatSpec);

  // Shards == 0 is the auto sentinel: tune K to this trace.
  std::string AutoNote;
  unsigned ResolvedShards = Shards;
  if (ResolvedShards == 0) {
    const uint64_t Accesses = countTraceAccesses(Parsed.T);
    ResolvedShards = resolveShardCount(0, Accesses);
    char Note[128];
    std::snprintf(Note, sizeof(Note),
                  "auto-sharding: K=%u (%llu accesses, %u hardware jobs)\n",
                  ResolvedShards,
                  static_cast<unsigned long long>(Accesses), hardwareJobs());
    AutoNote = Note;
  }

  ShardedReplayConfig Config;
  Config.Shards = ResolvedShards;
  if (Setup.Kind == DetectorKind::Pacer) {
    Config.UseController = true;
    Config.Sampling = Setup.Sampling;
    Config.Sampling.TargetRate = Setup.SamplingRate;
    Config.ControllerSeed = Seed;
  }
  ShardedReplayResult Result = shardedReplay(
      Parsed.T,
      [&](RaceSink &Sink) { return makeDetector(Setup, Sink, Flat, Seed); },
      Config);

  TraceProfile Profile = profileTrace(Parsed.T);
  char Buf[256];
  Out.Text += AutoNote;
  std::snprintf(Buf, sizeof(Buf), "%s: analysed %llu actions",
                Path.c_str(),
                static_cast<unsigned long long>(Profile.Total));
  Out.Text += Buf;
  if (Config.Shards > 1) {
    std::snprintf(Buf, sizeof(Buf), " across %u shards", Config.Shards);
    Out.Text += Buf;
  }
  if (Config.UseController) {
    std::snprintf(Buf, sizeof(Buf), " (specified rate %.3g, effective %.3g)",
                  Setup.SamplingRate, Result.EffectiveAccessRate);
    Out.Text += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "\n%zu distinct race(s), %llu dynamic report(s)\n",
                Result.Races.size(),
                static_cast<unsigned long long>(Result.DynamicRaces));
  Out.Text += Buf;

  // Sharded replay merges sample reports replica by replica, so their
  // discovery order depends on the shard count; print them sorted so the
  // output is identical for every --shards value.
  std::vector<std::string> Reports;
  Reports.reserve(Result.SampleReports.size());
  for (const RaceReport &Report : Result.SampleReports)
    Reports.push_back(Report.str());
  std::sort(Reports.begin(), Reports.end());
  size_t Shown = 0;
  for (const std::string &Report : Reports) {
    if (Shown++ >= MaxReports)
      break;
    Out.Text += "  " + Report + "\n";
  }
  if (Result.DynamicRaces > Shown) {
    std::snprintf(Buf, sizeof(Buf), "  ... (%llu more dynamic reports)\n",
                  static_cast<unsigned long long>(Result.DynamicRaces -
                                                  Shown));
    Out.Text += Buf;
  }

  if (WantStats)
    Out.Text += statsTable(Result.Stats);
  Out.DistinctRaces = Result.Races.size();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = buildRegistry();
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;

  if (R.has("generate"))
    return generateMode(R);

  const std::vector<std::string> &Files = R.positional();
  if (Files.empty()) {
    R.printHelp(stderr);
    return 2;
  }

  bool SetupOk = false;
  DetectorSetup Setup = setupFromOptions(R, SetupOk);
  if (!SetupOk) {
    std::fprintf(stderr, "error: unknown --detector=%s\n",
                 R.getString("detector").c_str());
    return 2;
  }

  auto Seed = static_cast<uint64_t>(R.getInt("seed"));
  auto MaxReports = static_cast<size_t>(R.getInt("max-reports"));
  bool WantStats = R.getBool("stats");
  int64_t JobsFlag = R.getInt("jobs");
  unsigned Jobs = JobsFlag < 1 ? 1u : static_cast<unsigned>(JobsFlag);
  // Empty --shards defaults to auto-tuning for multi-file batches (where
  // per-trace tuning pays off) and plain sequential replay for one file.
  const std::string ShardsText = R.getString("shards");
  const unsigned Shards = ShardsText.empty()
                              ? (Files.size() > 1 ? 0u : 1u)
                              : parseShardCount(ShardsText);

  // Analyse the files concurrently, but print outcomes in argument order
  // so batch output is stable for any --jobs value.
  std::vector<FileOutcome> Outcomes =
      parallelMap(Jobs, Files.size(), [&](size_t I) {
        return analyseFile(Files[I], Setup, Seed, Shards, MaxReports,
                           WantStats);
      });

  bool AnyParseFailed = false;
  uint64_t TotalDistinct = 0;
  for (const FileOutcome &Outcome : Outcomes) {
    std::fputs(Outcome.Text.c_str(),
               Outcome.ParseFailed ? stderr : stdout);
    AnyParseFailed |= Outcome.ParseFailed;
    TotalDistinct += Outcome.DistinctRaces;
  }
  if (AnyParseFailed)
    return 1;
  return TotalDistinct == 0 ? 0 : 3;
}
