//===- tools/racedetect.cpp - Command-line race detection -----------------==//
//
// A small driver around the library for downstream use without writing
// C++: generate workload traces to files, analyse trace files with any of
// the detectors, or submit trace files to a running racedetectd fleet
// daemon. Several trace files can be analysed in one run; with --jobs=N
// the files are processed concurrently (output stays in argument order),
// and --shards=K splits each replay across K detector replicas with
// bit-identical results. --shards=auto picks K per trace from its access
// count and the hardware; batch runs (more than one trace file) default
// to auto, single-file runs to 1.
//
// All analysis goes through runtime/AnalysisSession.h -- this tool is a
// thin printer over AnalysisResult. Traces come in two formats (see
// sim/TraceIO.h), auto-detected on read: text (v1) and binary (v2).
// Binary traces analyse through an mmap-backed zero-copy TraceView where
// the platform allows; --stream replays any trace from a bounded window
// (--stream-window actions) so peak memory is O(window + detector
// metadata) regardless of trace size. Results are bit-identical across
// formats and read paths.
//
//   racedetect --generate=eclipse --scale=0.2 --seed=7 --out=run.trace \
//              --trace-format=binary
//   racedetect run.trace --detector=pacer --rate=0.03 --stats
//   racedetect a.trace b.trace c.trace --jobs=3 --shards=4
//   racedetect huge.trace --stream --stream-window=65536
//   racedetect --submit --socket=/run/racedetectd.sock a.trace b.trace
//   racedetect --daemon-stats --socket=/run/racedetectd.sock
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "runtime/AnalysisSession.h"
#include "runtime/IngestServer.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Socket.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Topology.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace pacer;

namespace {

OptionRegistry buildRegistry() {
  OptionRegistry R("racedetect [options] TRACE...\n"
                   "       racedetect --generate=WORKLOAD --out=FILE "
                   "[--scale=F] [--seed=N]\n"
                   "       racedetect --submit [--socket=PATH|--tcp-port=N] "
                   "TRACE...");
  R.addString("generate", "",
              "generate a trace of eclipse|hsqldb|xalan|pseudojbb|forkjoin "
              "instead of analysing")
      .addString("out", "", "output file for --generate")
      .addDouble("scale", 1.0, "workload scale for --generate")
      .addString("trace-format", "text",
                 "--generate output format: text|binary")
      .addString("detector", "pacer", "pacer|fasttrack|generic|literace")
      .addDouble("rate", 1.0, "PACER sampling rate in [0,1]")
      .addInt("period-bytes", 256 * 1024, "simulated nursery size in bytes")
      .addInt("burst", 100, "LiteRace burst length")
      .addInt("seed", 1, "seed for trace generation / sampling decisions")
      .addFlag("accordion",
               "recycle thread-clock slots once dead threads are "
               "dominated (accordion clocks); reports are identical, "
               "metadata stays O(live threads)")
      .addFlag("no-cold-kernels",
               "route non-sampling runs through the generic per-access "
               "loop instead of the phase-specialized cold batch "
               "kernels; results are identical either way")
      .addFlag("no-hot-kernels",
               "route sampling-phase runs through the per-access loop "
               "instead of the vectorized multi-key probe engine; "
               "results are identical either way")
      .addFlag("no-sync-batching",
               "deliver every acquire/release individually instead of "
               "coalescing same-thread sync runs into one syncBatch; "
               "results are identical either way")
      .addInt("max-reports", 10, "race reports to print per trace")
      .addFlag("stats", "print operation statistics per trace")
      .addFlag("times", "print load/index/analysis time per trace")
      .addFlag("stream",
               "replay from a bounded window instead of loading the trace")
      .addInt("stream-window",
              static_cast<int64_t>(StreamingTraceReader::DefaultWindowActions),
              "streaming window size in actions")
      .addInt("jobs", 1, "analyse this many trace files concurrently")
      .addString("shards", "",
                 "variable shards per trace replay: a count or 'auto' "
                 "(empty = auto for multi-file batches, 1 otherwise)")
      .addFlag("pin-threads",
               "pin pool workers to CPUs (also PACER_PIN_THREADS=1); "
               "best-effort, no-op where unsupported")
      .addFlag("cpu-info",
               "print resolved kernel ISA, CPU/NUMA topology, and the "
               "worker pin plan, then exit")
      .addFlag("submit",
               "send the trace files to a racedetectd daemon instead of "
               "analysing locally")
      .addFlag("daemon-stats",
               "query a racedetectd daemon's ingest counters (JSON)")
      .addString("socket", "", "racedetectd Unix-domain socket path")
      .addInt("tcp-port", -1, "racedetectd loopback TCP port")
      .addString("submit-id", "",
                 "idempotency id for --submit (default: the file's "
                 "basename; retries of a committed id answer 'duplicate')");
  return R;
}

DetectorSetup setupFromOptions(const OptionRegistry &R, bool &Ok) {
  Ok = true;
  std::string Name = R.getString("detector");
  if (Name == "pacer") {
    DetectorSetup Setup = pacerSetup(R.getDouble("rate"));
    Setup.Sampling.PeriodBytes =
        static_cast<uint64_t>(R.getInt("period-bytes"));
    return Setup;
  }
  if (Name == "fasttrack")
    return fastTrackSetup();
  if (Name == "generic")
    return genericSetup();
  if (Name == "literace")
    return literaceSetup(static_cast<uint32_t>(R.getInt("burst")));
  Ok = false;
  return {};
}

int generateMode(const OptionRegistry &R) {
  std::string Out = R.getString("out");
  if (Out.empty()) {
    std::fprintf(stderr, "error: --generate requires --out=FILE\n");
    return 2;
  }
  TraceFormat Format;
  if (!parseTraceFormat(R.getString("trace-format"), Format)) {
    std::fprintf(stderr, "error: unknown --trace-format=%s\n",
                 R.getString("trace-format").c_str());
    return 2;
  }
  WorkloadSpec Spec = paperWorkloadByName(R.getString("generate"));
  Spec = scaleWorkload(Spec, R.getDouble("scale"));
  CompiledWorkload Workload(Spec);
  Trace T =
      generateTrace(Workload, static_cast<uint64_t>(R.getInt("seed")));
  if (!writeTraceFile(Out, T, Format)) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  TraceProfile Profile = profileTrace(T);
  std::printf("wrote %s (%s): %llu actions, %u threads, %.1f%% sync, "
              "%u planted races\n",
              Out.c_str(), traceFormatName(Format),
              static_cast<unsigned long long>(Profile.Total),
              Workload.totalThreads(), 100.0 * Profile.syncFraction(),
              Workload.numRaces());
  return 0;
}

std::string statsTable(const DetectorStats &Stats) {
  TextTable Table;
  Table.setHeader({"operation", "sampling", "non-sampling"});
  Table.addRow({"slow joins", std::to_string(Stats.SlowJoinsSampling),
                std::to_string(Stats.SlowJoinsNonSampling)});
  Table.addRow({"fast joins", std::to_string(Stats.FastJoinsSampling),
                std::to_string(Stats.FastJoinsNonSampling)});
  Table.addRow({"deep copies", std::to_string(Stats.DeepCopiesSampling),
                std::to_string(Stats.DeepCopiesNonSampling)});
  Table.addRow({"shallow copies",
                std::to_string(Stats.ShallowCopiesSampling),
                std::to_string(Stats.ShallowCopiesNonSampling)});
  Table.addRow({"slow-path reads", std::to_string(Stats.ReadSlowSampling),
                std::to_string(Stats.ReadSlowNonSampling)});
  Table.addRow({"fast-path reads", "-",
                std::to_string(Stats.ReadFastNonSampling)});
  Table.addRow({"slow-path writes", std::to_string(Stats.WriteSlowSampling),
                std::to_string(Stats.WriteSlowNonSampling)});
  Table.addRow({"fast-path writes", "-",
                std::to_string(Stats.WriteFastNonSampling)});
  return "\n" + Table.render();
}

/// Everything analyseFile prints for one trace file.
struct FileOutcome {
  std::string Text;
  bool ParseFailed = false;
  uint64_t DistinctRaces = 0;
};

FileOutcome analyseFile(const std::string &Path,
                        const AnalysisRequest &Request, size_t MaxReports,
                        bool WantStats, bool WantTimes) {
  FileOutcome Out;
  AnalysisSession Session(flatSiteWorkload(), Request);
  AnalysisResult Result = Session.analyzeFile(Path);
  if (!Result.Ok) {
    Out.ParseFailed = true;
    Out.Text = "error: " + Result.Error + "\n";
    return Out;
  }

  char Buf[256];
  Out.Text += Result.Notes;
  std::snprintf(Buf, sizeof(Buf), "%s: analysed %llu actions", Path.c_str(),
                static_cast<unsigned long long>(Result.TraceEvents));
  Out.Text += Buf;
  if (Result.ResolvedShards > 1) {
    std::snprintf(Buf, sizeof(Buf), " across %u shards",
                  Result.ResolvedShards);
    Out.Text += Buf;
  }
  if (Request.Stream && Result.ResolvedShards <= 1) {
    std::snprintf(Buf, sizeof(Buf), " (streamed, window %zu actions)",
                  Request.StreamWindow);
    Out.Text += Buf;
  }
  if (Request.Setup.Kind == DetectorKind::Pacer) {
    std::snprintf(Buf, sizeof(Buf), " (specified rate %.3g, effective %.3g)",
                  Request.Setup.SamplingRate, Result.EffectiveAccessRate);
    Out.Text += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "\n%zu distinct race(s), %llu dynamic report(s)\n",
                Result.Races.size(),
                static_cast<unsigned long long>(Result.DynamicRaces));
  Out.Text += Buf;
  if (WantTimes) {
    // I/O cost split out from detection cost, so format/read-path wins
    // are visible per file. Streamed sequential replay overlaps load
    // with analysis, so its load column is folded into analysis.
    std::snprintf(Buf, sizeof(Buf),
                  "  load %.3f ms, index %.3f ms, analysis %.3f ms "
                  "(kernel isa %s)\n",
                  Result.LoadSeconds * 1e3, Result.IndexSeconds * 1e3,
                  Result.ReplaySeconds * 1e3, Result.Isa);
    Out.Text += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  peak thread slots %zu, live metadata %.1f KB%s\n",
                  Result.PeakSlotCount,
                  static_cast<double>(Result.FinalMetadataBytes) / 1024.0,
                  Request.Setup.AccordionClocks ? " (accordion)" : "");
    Out.Text += Buf;
    // Phase attribution for the fig7-style overhead breakdown: hot accesses
    // paid full analysis, cold ones took the non-sampling fast path.
    const uint64_t PhaseTotal = Result.HotAccesses + Result.ColdAccesses;
    std::snprintf(Buf, sizeof(Buf),
                  "  hot accesses %llu (%.1f%%), cold accesses %llu\n",
                  static_cast<unsigned long long>(Result.HotAccesses),
                  PhaseTotal != 0 ? 100.0 *
                                        static_cast<double>(
                                            Result.HotAccesses) /
                                        static_cast<double>(PhaseTotal)
                                  : 0.0,
                  static_cast<unsigned long long>(Result.ColdAccesses));
    Out.Text += Buf;
    // Gather-probe effectiveness: keys the vectorized var-table probe
    // resolved in-block vs. keys that fell back to a scalar walk
    // (collisions, rehash mid-block). Zero/zero when hot kernels are off
    // or the detector has no vectorized path.
    std::snprintf(Buf, sizeof(Buf),
                  "  probe keys %llu vector-resolved, %llu scalar-fallback\n",
                  static_cast<unsigned long long>(Result.ProbeVectorResolved),
                  static_cast<unsigned long long>(Result.ProbeScalarFallback));
    Out.Text += Buf;
  }

  // Sharded replay merges sample reports replica by replica, so their
  // discovery order depends on the shard count; print them sorted so the
  // output is identical for every --shards value and read path.
  std::vector<std::string> Reports;
  Reports.reserve(Result.SampleReports.size());
  for (const RaceReport &Report : Result.SampleReports)
    Reports.push_back(Report.str());
  std::sort(Reports.begin(), Reports.end());
  size_t Shown = 0;
  for (const std::string &Report : Reports) {
    if (Shown++ >= MaxReports)
      break;
    Out.Text += "  " + Report + "\n";
  }
  if (Result.DynamicRaces > Shown) {
    std::snprintf(Buf, sizeof(Buf), "  ... (%llu more dynamic reports)\n",
                  static_cast<unsigned long long>(Result.DynamicRaces -
                                                  Shown));
    Out.Text += Buf;
  }

  if (WantStats)
    Out.Text += statsTable(Result.Stats);
  Out.DistinctRaces = Result.Races.size();
  return Out;
}

/// Connects to the daemon named by --socket / --tcp-port.
Socket connectDaemon(const OptionRegistry &R, std::string &Error) {
  const std::string SocketPath = R.getString("socket");
  const int TcpPort = static_cast<int>(R.getInt("tcp-port"));
  if (!SocketPath.empty())
    return Socket::connectUnix(SocketPath, Error);
  if (TcpPort >= 0)
    return Socket::connectTcp(TcpPort, Error);
  Error = "need --socket=PATH or --tcp-port=N to reach racedetectd";
  return Socket();
}

int submitMode(const OptionRegistry &R) {
  const std::vector<std::string> &Files = R.positional();
  if (Files.empty()) {
    std::fprintf(stderr, "error: --submit requires trace files\n");
    return 2;
  }
  const std::string IdOverride = R.getString("submit-id");
  if (!IdOverride.empty() && Files.size() > 1) {
    std::fprintf(stderr,
                 "error: --submit-id only makes sense for one file\n");
    return 2;
  }
  std::string Error;
  Socket S = connectDaemon(R, Error);
  if (!S.valid()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  int Failures = 0;
  for (const std::string &Path : Files) {
    // The basename is a natural idempotency id: resubmitting the same
    // file (e.g. after a crash mid-ack) answers "duplicate" instead of
    // double counting it in the fleet estimates.
    std::string Id = IdOverride;
    if (Id.empty()) {
      const size_t Slash = Path.find_last_of('/');
      Id = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
      if (Id.size() > ingest::MaxClientIdBytes)
        Id.resize(ingest::MaxClientIdBytes);
    }
    ingest::SubmitResult Result = ingest::submitFile(S, Path, Id);
    if (!Result.Ok) {
      std::fprintf(stderr, "%s: error: %s\n", Path.c_str(),
                   Result.Message.c_str());
      ++Failures;
      continue;
    }
    std::printf("%s: %s%s%s\n", Path.c_str(),
                ingest::statusName(Result.Code),
                Result.Message.empty() ? "" : " - ",
                Result.Message.c_str());
    if (Result.Code != ingest::Status::Committed &&
        Result.Code != ingest::Status::Duplicate)
      ++Failures;
  }
  if (R.getBool("daemon-stats")) {
    std::string Json;
    if (ingest::requestStats(S, Json, Error))
      std::printf("%s\n", Json.c_str());
    else
      std::fprintf(stderr, "error: stats request failed: %s\n",
                   Error.c_str());
  }
  return Failures == 0 ? 0 : 1;
}

int daemonStatsMode(const OptionRegistry &R) {
  std::string Error;
  Socket S = connectDaemon(R, Error);
  if (!S.valid()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::string Json;
  if (!ingest::requestStats(S, Json, Error)) {
    std::fprintf(stderr, "error: stats request failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s\n", Json.c_str());
  return 0;
}

/// The one-stop hardware diagnostic: what the dispatcher resolved, what
/// it could have picked, and where workers/slabs would land with pinning
/// on.
int cpuInfoMode(const OptionRegistry &R) {
  using kernels::Isa;
  if (R.getBool("pin-threads"))
    setThreadPinning(true);
  std::string Compiled;
  for (Isa Kind :
       {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (!kernels::opsFor(Kind))
      continue;
    if (!Compiled.empty())
      Compiled += "+";
    Compiled += kernels::isaName(Kind);
  }
  std::printf("kernel isa: %s (detected %s, compiled %s)\n",
              kernels::activeIsa(),
              kernels::isaName(kernels::detectedIsa()), Compiled.c_str());
  std::printf("topology: %s\n", topo::summary().c_str());
  std::printf("pinning: %s (--pin-threads / PACER_PIN_THREADS=1)\n",
              threadPinningEnabled() ? "on" : "off");
  std::printf("pin plan: %s\n", topo::planSummary(16).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = buildRegistry();
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;

  if (R.getBool("cpu-info"))
    return cpuInfoMode(R);
  if (R.has("generate"))
    return generateMode(R);
  if (R.getBool("submit"))
    return submitMode(R);
  if (R.getBool("daemon-stats"))
    return daemonStatsMode(R);

  const std::vector<std::string> &Files = R.positional();
  if (Files.empty()) {
    R.printHelp(stderr);
    return 2;
  }

  bool SetupOk = false;
  DetectorSetup Setup = setupFromOptions(R, SetupOk);
  Setup.AccordionClocks = R.getBool("accordion");
  Setup.ColdKernels = !R.getBool("no-cold-kernels");
  Setup.HotKernels = !R.getBool("no-hot-kernels");
  Setup.SyncBatching = !R.getBool("no-sync-batching");
  if (!SetupOk) {
    std::fprintf(stderr, "error: unknown --detector=%s\n",
                 R.getString("detector").c_str());
    return 2;
  }

  auto MaxReports = static_cast<size_t>(R.getInt("max-reports"));
  bool WantStats = R.getBool("stats");
  bool WantTimes = R.getBool("times");
  int64_t WindowFlag = R.getInt("stream-window");
  int64_t JobsFlag = R.getInt("jobs");
  unsigned Jobs = JobsFlag < 1 ? 1u : static_cast<unsigned>(JobsFlag);
  // Empty --shards defaults to auto-tuning for multi-file batches (where
  // per-trace tuning pays off) and plain sequential replay for one file.
  const std::string ShardsText = R.getString("shards");
  Setup.Shards = ShardsText.empty() ? (Files.size() > 1 ? 0u : 1u)
                                    : parseShardCount(ShardsText);
  if (R.getBool("pin-threads"))
    setThreadPinning(true);
  if (threadPinningEnabled())
    std::fprintf(stderr, "[pin] worker CPU affinity on (%u cpus)\n",
                 hardwareJobs());

  AnalysisRequest Request;
  Request.Setup = Setup;
  Request.Seed = static_cast<uint64_t>(R.getInt("seed"));
  Request.Stream = R.getBool("stream");
  Request.StreamWindow =
      WindowFlag < 1 ? 1 : static_cast<size_t>(WindowFlag);

  // Analyse the files concurrently, but print outcomes in argument order
  // so batch output is stable for any --jobs value.
  std::vector<FileOutcome> Outcomes =
      parallelMap(Jobs, Files.size(), [&](size_t I) {
        return analyseFile(Files[I], Request, MaxReports, WantStats,
                           WantTimes);
      });

  bool AnyParseFailed = false;
  uint64_t TotalDistinct = 0;
  for (const FileOutcome &Outcome : Outcomes) {
    std::fputs(Outcome.Text.c_str(),
               Outcome.ParseFailed ? stderr : stdout);
    AnyParseFailed |= Outcome.ParseFailed;
    TotalDistinct += Outcome.DistinctRaces;
  }
  if (AnyParseFailed)
    return 1;
  return TotalDistinct == 0 ? 0 : 3;
}
