//===- tools/traceconv.cpp - Trace format transcoder ----------------------==//
//
// Converts trace files between the text (v1) and binary (v2) encodings in
// either direction. The input format is auto-detected by its first byte;
// the output format defaults to "whichever the input is not", so the
// common invocation is just:
//
//   traceconv run.trace run.btrace          # text -> binary (or back)
//   traceconv --to=text run.btrace run.trace
//
// Conversion is exact: text -> binary -> text reproduces the original
// file byte for byte (the text writer is canonical), and analysing either
// file yields bit-identical results.
//
//===----------------------------------------------------------------------===//

#include "sim/TraceIO.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>

using namespace pacer;

int main(int Argc, char **Argv) {
  OptionRegistry R("traceconv [--to=text|binary] INPUT OUTPUT");
  R.addString("to", "",
              "output format (default: the opposite of the input's)");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;

  const std::vector<std::string> &Files = R.positional();
  if (Files.size() != 2) {
    R.printHelp(stderr);
    return 2;
  }
  const std::string &Input = Files[0];
  const std::string &Output = Files[1];

  TraceFormat From;
  TraceParseResult Parsed = readTraceFile(Input, &From);
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s\n", Parsed.Error.c_str());
    return 1;
  }

  TraceFormat To = From == TraceFormat::Text ? TraceFormat::Binary
                                             : TraceFormat::Text;
  if (!R.getString("to").empty() && !parseTraceFormat(R.getString("to"), To)) {
    std::fprintf(stderr, "error: unknown --to=%s\n",
                 R.getString("to").c_str());
    return 2;
  }

  if (!writeTraceFile(Output, Parsed.T, To)) {
    std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
    return 1;
  }
  std::printf("%s (%s) -> %s (%s): %zu actions\n", Input.c_str(),
              traceFormatName(From), Output.c_str(), traceFormatName(To),
              Parsed.T.size());
  return 0;
}
