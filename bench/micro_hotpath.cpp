//===- bench/micro_hotpath.cpp - Vectorized hot-path engine bench ---------==//
//
// Measures the two halves of the vectorized hot-path engine:
//
//  - gather probe: for the detectors with a sampled fast path (PACER at
//    r in {50%, 100%}, fasttrack, generic), times replay with
//    DetectorSetup::HotKernels on (SIMD multi-key var-table probe through
//    FlatVarTable::findBlock) against the per-access scalar probe, and
//    reports hot-phase access throughput plus the vector-resolved share
//    of probed keys. r = 100% keeps every access inside a sampling
//    period, so that row is the pure gather-probe win.
//
//  - sync skeleton: on a pair-run-heavy workload, times sharded replay
//    (every replica replays the full sync skeleton, so the win compounds
//    with --shards) with DetectorSetup::SyncBatching coalescing
//    acquire/release runs into Detector::syncBatch against the per-event
//    skeleton walk.
//
// Writes BENCH_hotpath.json; diffing it across commits tracks the perf
// trajectory. Exits non-zero if the engines ever disagree on any stat
// counter or the dynamic race count, so the smoke-benchmark CI job
// doubles as an equivalence check.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "runtime/AnalysisSession.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pacer;

namespace {

struct Row {
  std::string Name;
  double Rate = 0.0;
  unsigned Shards = 1;
  double OnMs = 0.0;  // Optimized engine (hot kernels / sync batching).
  double OffMs = 0.0; // Reference engine.
  uint64_t HotAccesses = 0;
  uint64_t ColdAccesses = 0;
  uint64_t ProbeVector = 0;
  uint64_t ProbeScalar = 0;
  double speedup() const { return OnMs > 0.0 ? OffMs / OnMs : 0.0; }
  /// Hot-phase (sampled) accesses per second through the optimized engine.
  double hotEventsPerSec() const {
    return OnMs > 0.0 ? static_cast<double>(HotAccesses) / (OnMs / 1e3)
                      : 0.0;
  }
  double vectorShare() const {
    const uint64_t Probed = ProbeVector + ProbeScalar;
    return Probed != 0
               ? static_cast<double>(ProbeVector) /
                     static_cast<double>(Probed)
               : 0.0;
  }
};

AnalysisRequest requestFor(const DetectorSetup &Setup, unsigned Shards,
                           bool HotKernels, bool SyncBatching,
                           uint64_t Seed) {
  AnalysisRequest Request;
  Request.Setup = Setup;
  Request.Setup.Shards = Shards;
  Request.Setup.HotKernels = HotKernels;
  Request.Setup.SyncBatching = SyncBatching;
  Request.Seed = Seed;
  Request.CollectReports = false;
  return Request;
}

bool sameStats(const DetectorStats &A, const DetectorStats &B) {
  return std::memcmp(&A, &B, sizeof(DetectorStats)) == 0;
}

/// Hand-built hot-phase trace with the access shape sampling periods
/// actually see: each thread's round is one critical section that (a)
/// rewrites a small per-thread hot set several times -- the repeated
/// same-epoch writes FastTrack's Rule 5 fast path exists for, which the
/// engine screens inline against the gather-resolved entry -- and (b)
/// strides reads across a large per-thread slice of the heap, so the var
/// table spans several MB and per-access scalar probes stall on cache
/// misses (the paper's benchmarks track millions of heap variables).
/// Thread data is disjoint, so the trace is race-free and the timed work
/// is purely the analysis engine. The default mix is write-dominant with
/// ~80% same-epoch accesses, matching the rates the FastTrack paper
/// reports across its benchmark suite.
Trace buildHotPhaseTrace(uint32_t Threads, uint32_t Rounds,
                         uint32_t HotVarsPerThread, uint32_t HotWritesPerRound,
                         uint32_t ReadsPerRound, uint32_t ReadSlicePerThread) {
  Trace T;
  T.reserve(static_cast<size_t>(Threads) * Rounds *
            (2 + HotWritesPerRound + ReadsPerRound));
  const VarId ReadBase = Threads * HotVarsPerThread;
  // Warmup prologue: touch every read-slice var once, so the timed rounds
  // probe a populated multi-MB table (the steady state of a long-running
  // program) instead of first-touch inserting on nearly every read --
  // insertion costs the same with the engine on or off and only dilutes
  // the probe comparison.
  for (uint32_t Tid = 0; Tid != Threads; ++Tid) {
    T.push_back({ActionKind::Acquire, Tid, Tid, InvalidId});
    for (uint32_t I = 0; I != ReadSlicePerThread; ++I) {
      const VarId Var = ReadBase + Tid * ReadSlicePerThread + I;
      T.push_back({ActionKind::Read, Tid, Var, /*Site=*/Tid + Threads});
    }
    T.push_back({ActionKind::Release, Tid, Tid, InvalidId});
  }
  for (uint32_t Round = 0; Round != Rounds; ++Round) {
    for (uint32_t Tid = 0; Tid != Threads; ++Tid) {
      const LockId Lock = Tid;
      T.push_back({ActionKind::Acquire, Tid, Lock, InvalidId});
      for (uint32_t W = 0; W != HotWritesPerRound; ++W) {
        const VarId Var = Tid * HotVarsPerThread + W % HotVarsPerThread;
        T.push_back({ActionKind::Write, Tid, Var, /*Site=*/Tid});
      }
      for (uint32_t I = 0; I != ReadsPerRound; ++I) {
        // LCG-mixed index: touches the slice in a hash-independent
        // pseudo-random order with reuse after ~Slice/ReadsPerRound
        // rounds, so steady state is probe misses into a DRAM/L3 table
        // rather than first-touch inserts.
        const uint32_t Step = Round * ReadsPerRound + I;
        const uint32_t Mixed =
            (Step * 2654435761u + Tid * 40503u) % ReadSlicePerThread;
        const VarId Var = ReadBase + Tid * ReadSlicePerThread + Mixed;
        T.push_back({ActionKind::Read, Tid, Var, /*Site=*/Tid + Threads});
      }
      T.push_back({ActionKind::Release, Tid, Lock, InvalidId});
    }
  }
  return T;
}

/// Hand-built sync-skeleton trace: each thread repeatedly locks and
/// unlocks its own hot mutex in long uncontended runs (the canonical
/// fine-grained-locking shape), with a slab of data accesses between
/// runs. Every replica of a sharded replay replays the full skeleton, so
/// the coalescer's win compounds with the shard count.
Trace buildPairRunTrace(uint32_t Threads, uint32_t Rounds,
                        uint32_t PairsPerRound, uint32_t AccessesPerRound) {
  Trace T;
  T.reserve(static_cast<size_t>(Threads) * Rounds *
            (2 * PairsPerRound + AccessesPerRound));
  for (uint32_t Round = 0; Round != Rounds; ++Round) {
    for (uint32_t Tid = 0; Tid != Threads; ++Tid) {
      const LockId Lock = Tid;
      for (uint32_t P = 0; P != PairsPerRound; ++P) {
        T.push_back({ActionKind::Acquire, Tid, Lock, InvalidId});
        T.push_back({ActionKind::Release, Tid, Lock, InvalidId});
      }
      for (uint32_t A = 0; A != AccessesPerRound; ++A) {
        const VarId Var = Tid * AccessesPerRound + A;
        T.push_back({ActionKind::Write, Tid, Var, /*Site=*/Tid});
      }
    }
  }
  return T;
}

/// Times On vs Off over Reps repetitions and flags any stat or race-count
/// divergence (the equivalence contract). The two engines interleave
/// within each repetition and the minimum per side is reported: on a
/// shared machine the run-to-run spread is dominated by external load,
/// which only ever adds time, so min-of-interleaved-reps is the estimator
/// least biased by whichever side the noise happened to land on.
bool measure(AnalysisSession &On, AnalysisSession &Off, const Trace &T,
             uint32_t Reps, Row &Out) {
  bool Mismatch = false;
  std::vector<double> OnMs, OffMs;
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    Timer OnTimer;
    AnalysisResult OnResult = On.analyzeTrace(T);
    OnMs.push_back(OnTimer.seconds() * 1e3);

    Timer OffTimer;
    AnalysisResult OffResult = Off.analyzeTrace(T);
    OffMs.push_back(OffTimer.seconds() * 1e3);

    Out.HotAccesses = OnResult.HotAccesses;
    Out.ColdAccesses = OnResult.ColdAccesses;
    Out.ProbeVector = OnResult.ProbeVectorResolved;
    Out.ProbeScalar = OnResult.ProbeScalarFallback;
    if (OnResult.DynamicRaces != OffResult.DynamicRaces ||
        !sameStats(OnResult.trial().Stats, OffResult.trial().Stats)) {
      std::fprintf(stderr,
                   "ENGINE MISMATCH: %s on %llu races vs off %llu (or "
                   "stat divergence)\n",
                   Out.Name.c_str(),
                   static_cast<unsigned long long>(OnResult.DynamicRaces),
                   static_cast<unsigned long long>(OffResult.DynamicRaces));
      Mismatch = true;
    }
  }
  Out.OnMs = *std::min_element(OnMs.begin(), OnMs.end());
  Out.OffMs = *std::min_element(OffMs.begin(), OffMs.end());
  return Mismatch;
}

void printRow(const char *Tag, const Row &Out) {
  std::printf("%-8s %-12s K=%u  on %8.2f ms  off %8.2f ms  speedup "
              "%5.2fx  hot-events/s %10.0f  vector-share %4.1f%%\n",
              Tag, Out.Name.c_str(), Out.Shards, Out.OnMs, Out.OffMs,
              Out.speedup(), Out.hotEventsPerSec(),
              Out.vectorShare() * 100.0);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R("micro_hotpath [options]");
  R.addDouble("scale", 1.0, "workload scale factor")
      .addInt("seed", 12345, "trace seed")
      .addInt("reps", 7, "timed repetitions per point (minimum reported)")
      .addInt("shards", 8, "shard count for the sync-skeleton points")
      .addString("json-out", "BENCH_hotpath.json", "JSON output path");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;
  const double Scale = R.getDouble("scale");
  const uint64_t Seed = static_cast<uint64_t>(R.getInt("seed"));
  const auto Reps = static_cast<uint32_t>(R.getInt("reps"));
  const auto SyncShards =
      static_cast<unsigned>(std::max<long long>(1, R.getInt("shards")));
  const std::string OutPath = R.getString("json-out");
  Timer Wall;
  bool Mismatch = false;

  // --- Gather-probe points: hot kernels on vs off, sequential replay. ---
  // The session workload only supplies report metadata; the trace itself
  // is the hand-built hot-phase shape.
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = buildHotPhaseTrace(
      /*Threads=*/8, /*Rounds=*/static_cast<uint32_t>(600 * Scale),
      /*HotVarsPerThread=*/12, /*HotWritesPerRound=*/96,
      /*ReadsPerRound=*/12, /*ReadSlicePerThread=*/1 << 14);
  std::printf("probe trace: %zu events, %llu accesses (scale %g, isa %s)\n",
              T.size(),
              static_cast<unsigned long long>(countTraceAccesses(T)), Scale,
              kernels::activeIsa());

  std::vector<std::pair<std::string, DetectorSetup>> ProbePoints;
  for (double Rate : {0.5, 1.0}) {
    DetectorSetup Setup = pacerSetup(Rate);
    Setup.Sampling.PeriodBytes = 24 * 1024;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "pacer_r%g", Rate * 100.0);
    ProbePoints.emplace_back(Name, Setup);
  }
  ProbePoints.emplace_back("fasttrack", fastTrackSetup());
  ProbePoints.emplace_back("generic", genericSetup());

  std::vector<Row> ProbeRows;
  for (const auto &[Name, Setup] : ProbePoints) {
    Row Out;
    Out.Name = Name;
    Out.Rate = Setup.Sampling.TargetRate;
    // Sync batching held identical on both sides so the delta is the
    // probe alone.
    AnalysisSession On(Workload, requestFor(Setup, 1, true, true, Seed));
    AnalysisSession Off(Workload, requestFor(Setup, 1, false, true, Seed));
    Mismatch |= measure(On, Off, T, Reps, Out);
    ProbeRows.push_back(Out);
    printRow("probe", ProbeRows.back());
  }

  // --- Sync-skeleton points: batching on vs off, sharded replay. ---
  // The session workload only supplies report metadata; the trace itself
  // is the hand-built pair-run skeleton.
  CompiledWorkload SyncWorkload(mediumTestWorkload());
  Trace SyncT = buildPairRunTrace(
      /*Threads=*/8, /*Rounds=*/static_cast<uint32_t>(1000 * Scale),
      /*PairsPerRound=*/16, /*AccessesPerRound=*/16);
  std::printf("sync trace: %zu events, %llu accesses\n", SyncT.size(),
              static_cast<unsigned long long>(countTraceAccesses(SyncT)));

  std::vector<std::pair<std::string, DetectorSetup>> SyncPoints;
  {
    DetectorSetup Pacer = pacerSetup(0.03);
    Pacer.Sampling.PeriodBytes = 24 * 1024;
    SyncPoints.emplace_back("pacer_r3", Pacer);
    SyncPoints.emplace_back("fasttrack", fastTrackSetup());
  }

  std::vector<Row> SyncRows;
  for (const auto &[Name, Setup] : SyncPoints) {
    for (unsigned Shards : {1u, SyncShards}) {
      Row Out;
      Out.Name = Name;
      Out.Rate = Setup.Sampling.TargetRate;
      Out.Shards = Shards;
      AnalysisSession On(SyncWorkload,
                         requestFor(Setup, Shards, true, true, Seed));
      AnalysisSession Off(SyncWorkload,
                          requestFor(Setup, Shards, true, false, Seed));
      Mismatch |= measure(On, Off, SyncT, Reps, Out);
      SyncRows.push_back(Out);
      printRow("sync", SyncRows.back());
      if (Shards == SyncShards)
        break; // Covers SyncShards == 1 without a duplicate row.
    }
  }

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  auto WriteRows = [&](const std::vector<Row> &Rows, const char *OnKey,
                       const char *OffKey) {
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &Row = Rows[I];
      std::fprintf(Out,
                   "    {\"detector\": \"%s\", \"rate\": %.4f, "
                   "\"shards\": %u, \"%s\": %.3f, \"%s\": %.3f, "
                   "\"speedup\": %.3f, \"hot_events_per_sec\": %.0f, "
                   "\"probe_vector\": %llu, \"probe_scalar\": %llu}%s\n",
                   Row.Name.c_str(), Row.Rate, Row.Shards, OnKey, Row.OnMs,
                   OffKey, Row.OffMs, Row.speedup(), Row.hotEventsPerSec(),
                   static_cast<unsigned long long>(Row.ProbeVector),
                   static_cast<unsigned long long>(Row.ProbeScalar),
                   I + 1 == Rows.size() ? "" : ",");
    }
  };
  std::fprintf(Out,
               "{\n  \"workload\": \"hot_phase\",\n  \"events\": %zu,\n"
               "  \"sync_events\": %zu,\n  \"reps\": %u,\n"
               "  \"isa\": \"%s\",\n  \"probe_points\": [\n",
               T.size(), SyncT.size(), Reps, kernels::activeIsa());
  WriteRows(ProbeRows, "hot_ms", "scalar_ms");
  std::fprintf(Out, "  ],\n  \"sync_points\": [\n");
  WriteRows(SyncRows, "batched_ms", "per_event_ms");
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n[timing] wall-clock %.2fs\n", OutPath.c_str(),
              Wall.seconds());
  return Mismatch ? 1 : 0;
}
