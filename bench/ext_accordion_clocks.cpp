//===- bench/ext_accordion_clocks.cpp -------------------------------------==//
//
// Extension study: accordion clocks (the paper's Section 5.1: "A
// production implementation could use accordion clocks to reuse thread
// identifiers soundly"). On the hsqldb model -- 403 threads started, at
// most 102 live -- plain PACER's vector clocks grow with the total thread
// count, while accordion PACER recycles joined threads' slots once every
// live thread dominates them, bounding clocks by the live count. The
// races reported are identical.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"
#include "support/Timer.h"

using namespace pacer;
using namespace pacer::bench;

namespace {

struct AccordionResult {
  size_t Slots = 0;
  size_t MetadataKB = 0;
  uint64_t DistinctRaces = 0;
  double Seconds = 0.0;
};

AccordionResult runOne(const CompiledWorkload &Workload, const Trace &T,
                       bool Accordion, uint64_t RecycleEvery) {
  PacerConfig Config;
  Config.UseAccordionClocks = Accordion;
  RaceLog Log;
  PacerDetector D(Log, Config);
  D.beginSamplingPeriod(); // Full tracking stresses clocks the most.
  Runtime RT(D);
  Timer Clock;
  size_t Events = 0;
  for (const Action &A : T) {
    RT.dispatch(A);
    if (Accordion && ++Events % RecycleEvery == 0)
      D.recycleDeadThreads();
  }
  AccordionResult Result;
  Result.Slots = D.threadCountForTest();
  Result.MetadataKB = D.liveMetadataBytes() / 1024;
  Result.DistinctRaces = Log.distinctCount();
  Result.Seconds = Clock.seconds();
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("ext_accordion_clocks [options]",
                                         /*DefaultScale=*/0.5);
  R.addInt("recycle-every", 5000,
           "events between dead-slot recycling sweeps");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Extension: accordion clocks (thread-slot recycling)",
              "Clock slots track live threads instead of total threads; "
              "reported races are unchanged.");

  auto RecycleEvery = static_cast<uint64_t>(R.getInt("recycle-every"));

  TextTable Table;
  Table.setHeader({"Program", "threads", "slots plain", "slots accordion",
                   "KB plain", "KB accordion", "races plain",
                   "races accordion", "time ratio"});
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    Trace T = generateTrace(Workload, Options.Seed);
    AccordionResult Plain = runOne(Workload, T, false, RecycleEvery);
    AccordionResult Accordion = runOne(Workload, T, true, RecycleEvery);
    Table.addRow({Spec.Name, std::to_string(Workload.totalThreads()),
                  std::to_string(Plain.Slots),
                  std::to_string(Accordion.Slots),
                  std::to_string(Plain.MetadataKB),
                  std::to_string(Accordion.MetadataKB),
                  std::to_string(Plain.DistinctRaces),
                  std::to_string(Accordion.DistinctRaces),
                  formatDouble(Plain.Seconds > 0
                                   ? Accordion.Seconds / Plain.Seconds
                                   : 1.0,
                               2)});
  }
  std::printf("%s\n(one fully sampled trial per workload; recycling every "
              "%llu events)\n",
              Table.render().c_str(),
              static_cast<unsigned long long>(RecycleEvery));
  return 0;
}
