//===- bench/ext_accordion_clocks.cpp -------------------------------------==//
//
// Extension study: accordion clocks (the paper's Section 5.1: "A
// production implementation could use accordion clocks to reuse thread
// identifiers soundly"). Thread-slot recycling now lives in the core
// (core/SlotRecycler.h) and is available to every detector: a joined or
// exited thread's slot is reclaimed once every live thread's clock
// dominates its final epoch, and the survivors are periodically compacted
// to a dense prefix. Clocks and per-variable metadata then track the live
// thread count instead of the total started, while the races reported are
// byte-identical with recycling on or off -- both claims measured here.
//
// Two sections:
//  * the paper workloads (total threads >> max live on hsqldb): end/peak
//    slot counts, peak live metadata, per-event time, and the
//    report-identity check, per detector;
//  * the fork/join task-graph spawn-scaling study: with live threads held
//    constant, growing total spawned tasks 100x must keep ns/event and
//    peak live metadata within 1.5x for every detector with recycling on,
//    against unbounded slot growth with it off.
//
// --json additionally writes every row to BENCH_accordion.json for
// cross-commit diffing (archived by release CI).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"
#include "support/Timer.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace pacer;
using namespace pacer::bench;

namespace {

/// Everything one (detector, recycling) replay produces.
struct AccordionResult {
  size_t EndSlots = 0;
  size_t PeakSlots = 0;
  size_t PeakLiveKB = 0; ///< Max liveMetadataBytes over the replay.
  uint64_t DistinctRaces = 0;
  uint64_t DynamicRaces = 0;
  double NsPerEvent = 0.0;
  std::string RaceSig; ///< Canonical race log for identity checks.
};

/// Canonical serialization of a race log: sorted distinct keys with
/// dynamic counts. Byte-equal signatures mean identical reports.
std::string raceSignature(const RaceLog &Log) {
  std::vector<RaceKey> Keys = Log.distinctKeys();
  std::string Sig;
  for (RaceKey Key : Keys) {
    Sig += std::to_string(Key.FirstSite);
    Sig += ':';
    Sig += std::to_string(Key.SecondSite);
    Sig += 'x';
    Sig += std::to_string(Log.dynamicCount(Key));
    Sig += ';';
  }
  return Sig;
}

AccordionResult runOne(const CompiledWorkload &Workload, const Trace &T,
                       DetectorKind Kind, bool Accordion, uint64_t Seed) {
  DetectorSetup Setup;
  Setup.Kind = Kind;
  Setup.AccordionClocks = Accordion;
  RaceLog Log;
  std::unique_ptr<Detector> D = makeDetector(Setup, Log, Workload, Seed);
  if (Kind == DetectorKind::Pacer)
    D->beginSamplingPeriod(); // Full tracking stresses clocks the most.

  // Sample live metadata during the replay: with recycling on, the final
  // join sweeps reclaim everything, so only a mid-replay high-water mark
  // shows the working-set difference. The interval is a fixed fraction of
  // the trace so short and long runs measure comparable high-water marks
  // (a fixed count would never fire on a small baseline trace, turning
  // its "peak" into the post-final-join end state).
  const uint64_t SampleEvery = std::max<uint64_t>(64, T.size() / 256);
  Runtime RT(*D);
  RT.start();
  Timer Clock;
  size_t PeakLiveBytes = 0;
  uint64_t Events = 0;
  for (const Action &A : T) {
    RT.dispatch(A);
    if (++Events % SampleEvery == 0)
      PeakLiveBytes = std::max(PeakLiveBytes, D->liveMetadataBytes());
  }
  double Seconds = Clock.seconds();
  PeakLiveBytes = std::max(PeakLiveBytes, D->liveMetadataBytes());

  AccordionResult Result;
  Result.EndSlots = D->slotCount();
  Result.PeakSlots = D->peakSlotCount();
  Result.PeakLiveKB = PeakLiveBytes / 1024;
  Result.DistinctRaces = Log.distinctCount();
  Result.DynamicRaces = Log.dynamicCount();
  Result.NsPerEvent =
      T.empty() ? 0.0 : Seconds * 1e9 / static_cast<double>(T.size());
  Result.RaceSig = raceSignature(Log);
  return Result;
}

constexpr DetectorKind Kinds[] = {DetectorKind::Generic,
                                  DetectorKind::FastTrack,
                                  DetectorKind::Pacer, DetectorKind::LiteRace};

/// One JSON row; Section is "paper" or "scaling".
struct JsonRow {
  std::string Section;
  std::string Workload;
  uint32_t Tasks = 0; ///< Scaling rows only.
  std::string Detector;
  bool Recycling = false;
  AccordionResult R;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("ext_accordion_clocks [options]",
                                         /*DefaultScale=*/0.5);
  R.addFlag("json", "also write BENCH_accordion.json")
      .addString("json-out", "BENCH_accordion.json", "JSON output path")
      .addInt("scaling-tasks", 4000,
              "large spawn count for the fork/join scaling study (the "
              "small baseline is 1/100 of it)");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Extension: accordion clocks (thread-slot recycling + "
              "compaction, all detectors)",
              "Clock slots track live threads instead of total threads; "
              "reported races are byte-identical with recycling on/off.");

  std::vector<JsonRow> Json;
  bool ReportsIdentical = true;

  TextTable Table;
  Table.setHeader({"Program", "detector", "threads", "slots off/on",
                   "peak on", "peak KB off/on", "ns/ev off/on", "races",
                   "reports"});
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    Trace T = generateTrace(Workload, Options.Seed);
    for (DetectorKind Kind : Kinds) {
      AccordionResult Off = runOne(Workload, T, Kind, false, Options.Seed);
      AccordionResult On = runOne(Workload, T, Kind, true, Options.Seed);
      bool Same = Off.RaceSig == On.RaceSig;
      ReportsIdentical = ReportsIdentical && Same;
      Table.addRow(
          {Spec.Name, detectorKindName(Kind),
           std::to_string(Workload.totalThreads()),
           std::to_string(Off.EndSlots) + "/" + std::to_string(On.EndSlots),
           std::to_string(On.PeakSlots),
           std::to_string(Off.PeakLiveKB) + "/" +
               std::to_string(On.PeakLiveKB),
           formatDouble(Off.NsPerEvent, 0) + "/" +
               formatDouble(On.NsPerEvent, 0),
           std::to_string(On.DistinctRaces), Same ? "identical" : "DIFFER"});
      Json.push_back({"paper", Spec.Name, 0, detectorKindName(Kind), false,
                      Off});
      Json.push_back({"paper", Spec.Name, 0, detectorKindName(Kind), true,
                      On});
    }
  }
  std::printf("%s\n(one fully sampled trial per workload; recycling sweeps "
              "run automatically after joins and thread exits)\n\n",
              Table.render().c_str());

  // Spawn-scaling study: same live-thread cap, 100x the spawned tasks.
  auto BigTasks = static_cast<uint32_t>(R.getInt("scaling-tasks"));
  uint32_t SmallTasks = std::max<uint32_t>(1, BigTasks / 100);
  TextTable Scaling;
  Scaling.setHeader({"detector", "tasks", "recycling", "peak slots",
                     "peak KB", "ns/ev", "KB ratio", "ns ratio"});
  std::printf("fork/join spawn scaling (live cap fixed, %u -> %u tasks):\n",
              SmallTasks, BigTasks);
  for (DetectorKind Kind : Kinds) {
    AccordionResult Small, Big, BigOff;
    for (bool BigRun : {false, true}) {
      WorkloadSpec Spec = scaleWorkload(
          forkJoinModelWithTasks(BigRun ? BigTasks : SmallTasks),
          Options.Scale);
      CompiledWorkload Workload(Spec);
      Trace T = generateTrace(Workload, Options.Seed);
      AccordionResult On = runOne(Workload, T, Kind, true, Options.Seed);
      AccordionResult Off = runOne(Workload, T, Kind, false, Options.Seed);
      ReportsIdentical = ReportsIdentical && On.RaceSig == Off.RaceSig;
      uint32_t Tasks = Workload.spec().WorkerThreads;
      Json.push_back({"scaling", Spec.Name, Tasks, detectorKindName(Kind),
                      true, On});
      Json.push_back({"scaling", Spec.Name, Tasks, detectorKindName(Kind),
                      false, Off});
      if (BigRun) {
        Big = On;
        BigOff = Off;
      } else {
        Small = On;
      }
    }
    auto Ratio = [](double A, double B) { return B > 0.0 ? A / B : 0.0; };
    auto AddRow = [&](uint32_t Tasks, const char *Recycling,
                      const AccordionResult &Res, double KBRatio,
                      double NsRatio) {
      Scaling.addRow({detectorKindName(Kind), std::to_string(Tasks),
                      Recycling, std::to_string(Res.PeakSlots),
                      std::to_string(Res.PeakLiveKB),
                      formatDouble(Res.NsPerEvent, 0),
                      KBRatio > 0.0 ? formatDouble(KBRatio, 2) : "-",
                      NsRatio > 0.0 ? formatDouble(NsRatio, 2) : "-"});
    };
    AddRow(SmallTasks, "on", Small, 0.0, 0.0);
    AddRow(BigTasks, "on", Big,
           Ratio(static_cast<double>(Big.PeakLiveKB),
                 static_cast<double>(Small.PeakLiveKB)),
           Ratio(Big.NsPerEvent, Small.NsPerEvent));
    AddRow(BigTasks, "off", BigOff, 0.0, 0.0);
  }
  std::printf("%s\n(ratio columns compare the large spawn count against "
              "the small one, recycling on: bounded-metadata claim holds "
              "when both stay near 1)\n",
              Scaling.render().c_str());
  if (!ReportsIdentical)
    std::printf("\nWARNING: some detector reported different races with "
                "recycling on vs off\n");

  if (R.getBool("json")) {
    std::string OutPath = R.getString("json-out");
    std::FILE *Out = std::fopen(OutPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
      return 1;
    }
    std::fprintf(Out, "{\n  \"reports_identical\": %s,\n  \"rows\": [\n",
                 ReportsIdentical ? "true" : "false");
    for (size_t I = 0; I != Json.size(); ++I) {
      const JsonRow &Row = Json[I];
      std::fprintf(
          Out,
          "    {\"section\": \"%s\", \"workload\": \"%s\", \"tasks\": %u, "
          "\"detector\": \"%s\", \"recycling\": %s, \"end_slots\": %zu, "
          "\"peak_slots\": %zu, \"peak_live_kb\": %zu, "
          "\"ns_per_event\": %.1f, \"distinct_races\": %llu, "
          "\"dynamic_races\": %llu}%s\n",
          Row.Section.c_str(), Row.Workload.c_str(), Row.Tasks,
          Row.Detector.c_str(), Row.Recycling ? "true" : "false",
          Row.R.EndSlots, Row.R.PeakSlots, Row.R.PeakLiveKB,
          Row.R.NsPerEvent,
          static_cast<unsigned long long>(Row.R.DistinctRaces),
          static_cast<unsigned long long>(Row.R.DynamicRaces),
          I + 1 == Json.size() ? "" : ",");
    }
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
    std::printf("wrote %s\n", OutPath.c_str());
  }
  return ReportsIdentical ? 0 : 1;
}
