//===- bench/fig6_literace_eclipse.cpp ------------------------------------==//
//
// Regenerates Figure 6 (plus the Section 5.3 comparison): LiteRace's
// per-distinct-race detection rate on the eclipse model. LiteRace finds
// cold-code races in many runs but, because a race needs *both* accesses
// sampled and hot code bottoms out at a 0.1% rate, it consistently misses
// races between hot accesses (~0.0001% detection). PACER at a comparable
// effective rate misses none systematically.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("fig6_literace_eclipse [options]",
                                         /*DefaultScale=*/1.0);
  // The paper uses burst length 1000 against billions of accesses; the
  // simulator-scaled default keeps the same bursts-per-hot-method ratio.
  R.addInt("burst", 10, "LiteRace sampled-burst length");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Figure 6: LiteRace per-race detection on eclipse",
              "The cold-region hypothesis fails for hot races: LiteRace "
              "never reports some evaluation races; PACER's statistical "
              "guarantee covers every race equally.");

  auto BurstLength = static_cast<uint32_t>(R.getInt("burst"));

  // Figure 6 is eclipse only, but honor --workload.
  Timer Wall;
  for (const WorkloadSpec &Spec : Options.Workloads) {
    if (Options.Workloads.size() == 4 && Spec.Name != "eclipse")
      continue;
    CompiledWorkload Workload(Spec);
    GroundTruth Truth = computeGroundTruth(Workload, Options.FullTrials,
                                           Options.Seed, Options.Jobs);
    uint32_t Trials =
        Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 60;

    DetectionPoint LiteRace =
        measureDetection(Workload, Truth, literaceSetup(BurstLength), Trials,
                         Options.Seed + 17, Options.Jobs);
    DetectionPoint Pacer =
        measureDetection(Workload, Truth,
                         pacerSetup(std::max(0.01, LiteRace.EffectiveRateMean)),
                         Trials, Options.Seed + 18, Options.Jobs);

    std::printf("--- %s: per-race detection over %u trials ---\n",
                Spec.Name.c_str(), Trials);
    auto PrintLine = [](const char *Label, const DetectionPoint &Point) {
      std::vector<double> Sorted = Point.PerRaceDistinctRate;
      std::sort(Sorted.begin(), Sorted.end(), std::greater<double>());
      std::string Line(Label);
      Line += ":";
      for (double Rate : Sorted)
        Line += " " + formatPercent(Rate, 0);
      std::printf("%s\n", Line.c_str());
    };
    PrintLine("LiteRace", LiteRace);
    PrintLine("PACER   ", Pacer);
    std::printf("LiteRace effective rate: %s; races never reported: "
                "LiteRace %u vs PACER %u (of %zu evaluation races)\n\n",
                formatPercent(LiteRace.EffectiveRateMean, 2).c_str(),
                LiteRace.EvaluationRacesMissed, Pacer.EvaluationRacesMissed,
                Truth.EvaluationRaces.size());
  }
  printWallClock(Wall, Options);
  return 0;
}
