//===- bench/table3_operation_counts.cpp ----------------------------------==//
//
// Regenerates Table 3: counts of vector-clock joins (slow vs fast) and
// copies (deep vs shallow), and of read/write instrumentation (slow path
// vs fast path), split by sampling vs non-sampling periods, for PACER at
// a 3% sampling rate.
//
// The paper's claim: O(n)-time vector-clock operations are almost
// entirely confined to sampling periods (e.g. eclipse: 2K slow vs
// 149,376K fast non-sampling joins), and non-sampling reads/writes almost
// always take the fast path.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("table3_operation_counts [options]",
                                         /*DefaultScale=*/2.0);
  // Long periods amortize the post-sbegin re-convergence cost, mirroring
  // the paper's 32 MB nurseries against billions of events. Every entry
  // into a sampling period bumps all thread clocks, so the first few
  // joins afterwards are slow until versions converge again.
  R.addInt("period-bytes", 4 * 1024 * 1024,
           "simulated nursery size in bytes");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Table 3: operation counts at r = 3%",
              "Versions and shallow copies avoid nearly all O(n) analysis "
              "in non-sampling periods.");

  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 5;
  auto PeriodBytes = static_cast<uint64_t>(R.getInt("period-bytes"));

  auto Averaged = [&](const WorkloadSpec &Spec) {
    CompiledWorkload Workload(Spec);
    DetectorStats Sum;
    DetectorSetup Setup = pacerSetup(0.03);
    Setup.Sampling.PeriodBytes = PeriodBytes;
    for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
      DetectorStats Stats =
          runTrial(Workload, Setup, deriveTrialSeed(Options.Seed, Trial)).Stats;
      Sum.SlowJoinsSampling += Stats.SlowJoinsSampling;
      Sum.FastJoinsSampling += Stats.FastJoinsSampling;
      Sum.SlowJoinsNonSampling += Stats.SlowJoinsNonSampling;
      Sum.FastJoinsNonSampling += Stats.FastJoinsNonSampling;
      Sum.DeepCopiesSampling += Stats.DeepCopiesSampling;
      Sum.ShallowCopiesSampling += Stats.ShallowCopiesSampling;
      Sum.DeepCopiesNonSampling += Stats.DeepCopiesNonSampling;
      Sum.ShallowCopiesNonSampling += Stats.ShallowCopiesNonSampling;
      Sum.ReadSlowSampling += Stats.ReadSlowSampling;
      Sum.ReadSlowNonSampling += Stats.ReadSlowNonSampling;
      Sum.ReadFastNonSampling += Stats.ReadFastNonSampling;
      Sum.WriteSlowSampling += Stats.WriteSlowSampling;
      Sum.WriteSlowNonSampling += Stats.WriteSlowNonSampling;
      Sum.WriteFastNonSampling += Stats.WriteFastNonSampling;
    }
    auto Avg = [&](uint64_t Total) { return Total / Trials; };
    DetectorStats Mean;
    Mean.SlowJoinsSampling = Avg(Sum.SlowJoinsSampling);
    Mean.FastJoinsSampling = Avg(Sum.FastJoinsSampling);
    Mean.SlowJoinsNonSampling = Avg(Sum.SlowJoinsNonSampling);
    Mean.FastJoinsNonSampling = Avg(Sum.FastJoinsNonSampling);
    Mean.DeepCopiesSampling = Avg(Sum.DeepCopiesSampling);
    Mean.ShallowCopiesSampling = Avg(Sum.ShallowCopiesSampling);
    Mean.DeepCopiesNonSampling = Avg(Sum.DeepCopiesNonSampling);
    Mean.ShallowCopiesNonSampling = Avg(Sum.ShallowCopiesNonSampling);
    Mean.ReadSlowSampling = Avg(Sum.ReadSlowSampling);
    Mean.ReadSlowNonSampling = Avg(Sum.ReadSlowNonSampling);
    Mean.ReadFastNonSampling = Avg(Sum.ReadFastNonSampling);
    Mean.WriteSlowSampling = Avg(Sum.WriteSlowSampling);
    Mean.WriteSlowNonSampling = Avg(Sum.WriteSlowNonSampling);
    Mean.WriteFastNonSampling = Avg(Sum.WriteFastNonSampling);
    return Mean;
  };

  std::vector<std::pair<std::string, DetectorStats>> Results;
  for (const WorkloadSpec &Spec : Options.Workloads)
    Results.emplace_back(Spec.Name, Averaged(Spec));

  TextTable Joins;
  Joins.setHeader({"Program", "Samp slow", "Samp fast", "NonSamp slow",
                   "NonSamp fast"});
  for (const auto &[Name, Stats] : Results)
    Joins.addRow({Name, formatThousands(Stats.SlowJoinsSampling),
                  formatThousands(Stats.FastJoinsSampling),
                  formatThousands(Stats.SlowJoinsNonSampling),
                  formatThousands(Stats.FastJoinsNonSampling)});
  std::printf("VC joins\n%s\n", Joins.render().c_str());

  TextTable Copies;
  Copies.setHeader({"Program", "Samp deep", "Samp shallow", "NonSamp deep",
                    "NonSamp shallow"});
  for (const auto &[Name, Stats] : Results)
    Copies.addRow({Name, formatThousands(Stats.DeepCopiesSampling),
                   formatThousands(Stats.ShallowCopiesSampling),
                   formatThousands(Stats.DeepCopiesNonSampling),
                   formatThousands(Stats.ShallowCopiesNonSampling)});
  std::printf("VC copies\n%s\n", Copies.render().c_str());

  TextTable Reads;
  Reads.setHeader({"Program", "Samp slow", "NonSamp slow", "NonSamp fast"});
  for (const auto &[Name, Stats] : Results)
    Reads.addRow({Name, formatThousands(Stats.ReadSlowSampling),
                  formatThousands(Stats.ReadSlowNonSampling),
                  formatThousands(Stats.ReadFastNonSampling)});
  std::printf("Reads\n%s\n", Reads.render().c_str());

  TextTable Writes;
  Writes.setHeader({"Program", "Samp slow", "NonSamp slow", "NonSamp fast"});
  for (const auto &[Name, Stats] : Results)
    Writes.addRow({Name, formatThousands(Stats.WriteSlowSampling),
                   formatThousands(Stats.WriteSlowNonSampling),
                   formatThousands(Stats.WriteFastNonSampling)});
  std::printf("Writes\n%s\n(averages over %u trials at r = 3%%)\n",
              Writes.render().c_str(), Trials);
  return 0;
}
