//===- bench/fig4_distinct_detection.cpp ----------------------------------==//
//
// Regenerates Figure 4: PACER's detection rate on *distinct* evaluation
// races versus the specified sampling rate. A race counts once per trial;
// the per-race rate is (fraction of trials reporting it at r) / (fraction
// at 100%). Distinct rates run somewhat above the diagonal because a race
// occurring several times per run gives PACER several chances.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("fig4_distinct_detection [options]",
                                         /*DefaultScale=*/0.3);
  R.addFlag("csv", "also emit workload,rate,detection rows as CSV");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Figure 4: detection rate vs sampling rate (distinct races)",
              "Distinct-race detection is at or above the diagonal: "
              "multiple dynamic occurrences give several chances per "
              "trial.");

  bool Csv = R.getBool("csv");
  if (Csv)
    std::printf("workload,rate,detection\n");

  Timer Wall;
  TextTable Table;
  std::vector<std::string> Header{"Program"};
  for (double Rate : accuracyRates())
    Header.push_back("r=" + formatPercent(Rate, 0));
  Table.setHeader(Header);

  for (const WorkloadSpec &Spec : Options.Workloads) {
    DetectionStudy Study = runDetectionStudy(Spec, accuracyRates(), Options);
    std::vector<std::string> Row{Spec.Name};
    for (const DetectionPoint &Point : Study.Points) {
      Row.push_back(formatPercent(Point.DistinctDetectionRate, 1));
      if (Csv)
        std::printf("%s,%g,%g\n", Spec.Name.c_str(), Point.SpecifiedRate,
                    Point.DistinctDetectionRate);
    }
    Table.addRow(Row);
  }
  std::printf("%s\n(each cell: mean distinct detection rate; the diagonal "
              "is the proportionality guarantee, above it is a bonus)\n",
              Table.render().c_str());
  printWallClock(Wall, Options);
  return 0;
}
