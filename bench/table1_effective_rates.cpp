//===- bench/table1_effective_rates.cpp -----------------------------------==//
//
// Regenerates Table 1: effective sampling rates (mean ± one standard
// deviation over trials) for specified PACER sampling rates of 1, 3, 5,
// 10, and 25 percent on each workload model.
//
// Paper values (Table 1), effective % for specified {1, 3, 5, 10, 25}:
//   eclipse   1.0±0.2  3.0±0.4  4.8±0.6   9.5±0.7  24.1±1.0
//   hsqldb    0.5±0.6  2.8±1.3  5.1±1.4  10.8±1.1  26.5±1.8
//   xalan     1.0±0.0  3.0±0.1  5.0±0.2  10.1±0.4  24.9±0.7
//   pseudojbb 0.8±0.4  3.0±0.4  5.0±0.5  10.1±0.7  25.5±1.4
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/TraceGenerator.h"
#include "support/Rng.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("table1_effective_rates [options]",
                                         /*DefaultScale=*/1.0);
  // Small simulated nurseries give each trial many sampling-period
  // decisions, standing in for the paper's long executions.
  R.addInt("period-bytes", 12 * 1024, "simulated nursery size in bytes");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Table 1: effective vs specified sampling rates",
              "The GC-boundary sampling mechanism with sync-op bias "
              "correction achieves effective rates close to the specified "
              "rates; low rates show more variance (less opportunity to "
              "correct).");

  const std::vector<double> Rates{0.01, 0.03, 0.05, 0.10, 0.25};
  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 10;
  auto PeriodBytes = static_cast<uint64_t>(R.getInt("period-bytes"));

  Timer Wall;
  TextTable Table;
  Table.setHeader({"Program", "r=1%", "r=3%", "r=5%", "r=10%", "r=25%"});
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    // Trials are independent; per-trial effective rates land in
    // trial-indexed slots, and the Welford accumulation below walks them
    // in seed order so every --jobs value prints identical cells.
    std::vector<std::vector<double>> PerTrial =
        parallelMap(Options.Jobs, Trials, [&](size_t Trial) {
          uint64_t Seed = deriveTrialSeed(Options.Seed, Trial);
          Trace T = generateTrace(Workload, Seed);
          std::vector<double> Row;
          Row.reserve(Rates.size());
          for (double Rate : Rates) {
            DetectorSetup Setup = pacerSetup(Rate);
            Setup.Sampling.PeriodBytes = PeriodBytes;
            TrialResult Result =
                runTrialOnTrace(T, Workload, Setup, Seed);
            Row.push_back(Result.EffectiveAccessRate * 100.0);
          }
          return Row;
        });
    std::vector<RunningStat> Effective(Rates.size());
    for (const std::vector<double> &TrialRow : PerTrial)
      for (size_t I = 0; I != Rates.size(); ++I)
        Effective[I].add(TrialRow[I]);
    std::vector<std::string> Row{Spec.Name};
    for (const RunningStat &Stat : Effective)
      Row.push_back(formatPlusMinus(Stat.mean(), Stat.stddev(), 1));
    Table.addRow(Row);
  }
  std::printf("%s\n(effective sampling rate %%, mean ± stddev over %u "
              "trials per cell)\n",
              Table.render().c_str(), Trials);
  printWallClock(Wall, Options);
  return 0;
}
