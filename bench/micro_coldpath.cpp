//===- bench/micro_coldpath.cpp - Phase-specialized batch engine bench ----==//
//
// Measures what the non-sampling cold batch kernels buy proportional
// replay: for PACER at r in {0%, 1%, 3%, 25%, 100%} (plus fasttrack's
// same-epoch pre-scan and literace's unsampled-run kernel), times replay
// with DetectorSetup::ColdKernels on against the generic per-access batch
// loop, and reports unsampled-access throughput and the cold-vs-generic
// speedup. At r = 0 every access takes the cold path, so that row is the
// pure cold-kernel cost -- the proportionality floor the paper's fig8/9
// overhead curves stand on.
//
// Writes BENCH_coldpath.json; diffing it across commits tracks the perf
// trajectory. Exits non-zero if the two engines ever disagree on any stat
// counter or the dynamic race count, so the smoke-benchmark CI job
// doubles as an equivalence check.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "runtime/AnalysisSession.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pacer;

namespace {

struct Row {
  std::string Name;
  double Rate = 0.0; // Specified sampling rate (pacer rows).
  double ColdMs = 0.0;
  double GenericMs = 0.0;
  uint64_t ColdAccesses = 0;
  uint64_t HotAccesses = 0;
  double speedup() const {
    return ColdMs > 0.0 ? GenericMs / ColdMs : 0.0;
  }
  /// Cold-path (unsampled) accesses per second through the cold engine.
  double coldEventsPerSec() const {
    return ColdMs > 0.0 ? static_cast<double>(ColdAccesses) /
                              (ColdMs / 1e3)
                        : 0.0;
  }
};

AnalysisRequest requestFor(const DetectorSetup &Setup, bool ColdKernels,
                           uint64_t Seed) {
  AnalysisRequest Request;
  Request.Setup = Setup;
  Request.Setup.Shards = 1;
  Request.Setup.ShardJobs = 1;
  Request.Setup.ColdKernels = ColdKernels;
  Request.Seed = Seed;
  Request.CollectReports = false;
  return Request;
}

bool sameStats(const DetectorStats &A, const DetectorStats &B) {
  return std::memcmp(&A, &B, sizeof(DetectorStats)) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R("micro_coldpath [options]");
  R.addDouble("scale", 1.0, "workload scale factor")
      .addInt("seed", 12345, "trace seed")
      .addInt("reps", 7, "timed repetitions per point (median reported)")
      .addString("json-out", "BENCH_coldpath.json", "JSON output path");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;
  const double Scale = R.getDouble("scale");
  const uint64_t Seed = static_cast<uint64_t>(R.getInt("seed"));
  const auto Reps = static_cast<uint32_t>(R.getInt("reps"));
  const std::string OutPath = R.getString("json-out");

  CompiledWorkload Workload(scaleWorkload(mediumTestWorkload(), Scale));
  Trace T = generateTrace(Workload, Seed);
  const uint64_t Accesses = countTraceAccesses(T);
  std::printf("trace: %zu events, %llu accesses (scale %g, isa %s)\n",
              T.size(), static_cast<unsigned long long>(Accesses), Scale,
              kernels::activeIsa());

  // The pacer rate sweep plus the two other sampling detectors' kernels.
  // Small simulated nursery so sampled rows cross many period boundaries
  // and the run segmenter's phase routing is on the timed path.
  std::vector<std::pair<std::string, DetectorSetup>> Points;
  for (double Rate : {0.0, 0.01, 0.03, 0.25, 1.0}) {
    DetectorSetup Setup = pacerSetup(Rate);
    Setup.Sampling.PeriodBytes = 24 * 1024;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "pacer_r%g", Rate * 100.0);
    Points.emplace_back(Name, Setup);
  }
  Points.emplace_back("fasttrack", fastTrackSetup());
  Points.emplace_back("literace", literaceSetup(100));

  Timer Wall;
  std::vector<Row> Rows;
  bool Mismatch = false;
  for (const auto &[Name, Setup] : Points) {
    Row Out;
    Out.Name = Name;
    Out.Rate = Setup.Sampling.TargetRate;
    AnalysisSession ColdSession(Workload, requestFor(Setup, true, Seed));
    AnalysisSession GenericSession(Workload,
                                   requestFor(Setup, false, Seed));
    std::vector<double> ColdMs, GenericMs;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      Timer Cold;
      AnalysisResult ColdResult = ColdSession.analyzeTrace(T);
      ColdMs.push_back(Cold.seconds() * 1e3);

      Timer Generic;
      AnalysisResult GenericResult = GenericSession.analyzeTrace(T);
      GenericMs.push_back(Generic.seconds() * 1e3);

      Out.ColdAccesses = ColdResult.ColdAccesses;
      Out.HotAccesses = ColdResult.HotAccesses;
      if (ColdResult.DynamicRaces != GenericResult.DynamicRaces ||
          !sameStats(ColdResult.trial().Stats,
                     GenericResult.trial().Stats)) {
        std::fprintf(stderr,
                     "ENGINE MISMATCH: %s cold %llu races vs generic "
                     "%llu (or stat divergence)\n",
                     Name.c_str(),
                     static_cast<unsigned long long>(
                         ColdResult.DynamicRaces),
                     static_cast<unsigned long long>(
                         GenericResult.DynamicRaces));
        Mismatch = true;
      }
    }
    Out.ColdMs = median(ColdMs);
    Out.GenericMs = median(GenericMs);
    Rows.push_back(Out);
    std::printf("%-12s cold %8.2f ms  generic %8.2f ms  speedup %5.2fx  "
                "cold-events/s %10.0f  hot/cold %llu/%llu\n",
                Out.Name.c_str(), Out.ColdMs, Out.GenericMs, Out.speedup(),
                Out.coldEventsPerSec(),
                static_cast<unsigned long long>(Out.HotAccesses),
                static_cast<unsigned long long>(Out.ColdAccesses));
  }

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"workload\": \"%s\",\n  \"events\": %zu,\n"
               "  \"accesses\": %llu,\n  \"reps\": %u,\n"
               "  \"isa\": \"%s\",\n  \"points\": [\n",
               Workload.spec().Name.c_str(), T.size(),
               static_cast<unsigned long long>(Accesses), Reps,
               kernels::activeIsa());
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &Row = Rows[I];
    std::fprintf(Out,
                 "    {\"detector\": \"%s\", \"rate\": %.4f, "
                 "\"cold_ms\": %.3f, \"generic_ms\": %.3f, "
                 "\"speedup\": %.3f, \"cold_events_per_sec\": %.0f, "
                 "\"hot_accesses\": %llu, \"cold_accesses\": %llu}%s\n",
                 Row.Name.c_str(), Row.Rate, Row.ColdMs, Row.GenericMs,
                 Row.speedup(), Row.coldEventsPerSec(),
                 static_cast<unsigned long long>(Row.HotAccesses),
                 static_cast<unsigned long long>(Row.ColdAccesses),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n[timing] wall-clock %.2fs\n", OutPath.c_str(),
              Wall.seconds());
  return Mismatch ? 1 : 0;
}
