//===- bench/fig5_per_race_detection.cpp ----------------------------------==//
//
// Regenerates Figure 5: per-distinct-race detection rate for each
// workload, one line per sampling rate, races sorted by detection rate
// (independently per rate, as in the paper). The paper's observation:
// PACER detects all but one evaluation race at least once at every rate,
// and the level of each line corresponds to its sampling rate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/0.3);
  printBanner("Figure 5: per-distinct-race detection rates",
              "Each line: one sampling rate; columns: evaluation races "
              "sorted by rate. Lines should sit near their sampling "
              "rate, with few or no zero entries.");

  Timer Wall;
  const std::vector<double> Rates{0.01, 0.03, 0.05, 0.10, 0.25};
  for (const WorkloadSpec &Spec : Options.Workloads) {
    DetectionStudy Study = runDetectionStudy(Spec, Rates, Options);
    std::printf("--- %s (%zu evaluation races) ---\n", Spec.Name.c_str(),
                Study.Truth.EvaluationRaces.size());
    for (const DetectionPoint &Point : Study.Points) {
      std::vector<double> Sorted = Point.PerRaceDistinctRate;
      std::sort(Sorted.begin(), Sorted.end(), std::greater<double>());
      std::string Line = "r=" + formatPercent(Point.SpecifiedRate, 0) + ":";
      for (double Rate : Sorted)
        Line += " " + formatPercent(Rate, 0);
      std::printf("%s   (missed: %u)\n", Line.c_str(),
                  Point.EvaluationRacesMissed);
    }
    std::printf("\n");
  }
  printWallClock(Wall, Options);
  return 0;
}
