//===- bench/micro_trace_io.cpp - Trace I/O path benchmark ----------------==//
//
// Measures what the binary (v2) trace format and its read paths buy over
// the text format: for one generated medium-workload trace, times the
// load and a fasttrack replay through each of
//
//   text       readTraceFile on the v1 text file (line-by-line parse)
//   binary     readTraceFile on the v2 binary file (bulk slab reads)
//   mmap       TraceView::open (zero-copy; load = header + kind scan)
//   stream     StreamingTraceReader with a bounded window
//
// and reports each path's trace-resident bytes -- the memory the loaded
// trace itself pins, which is what distinguishes the paths (process peak
// RSS is monotonic and cannot be attributed per mode in one process):
// N * 12 for the materializing loaders, 0 for mmap (the kernel pages
// records in and out), window * 12 for streaming.
//
// Writes BENCH_trace_io.json; diffing it across commits tracks the perf
// trajectory. Exits non-zero if any path's dynamic race count disagrees
// with the text baseline, so the smoke-benchmark CI job doubles as a
// read-path equivalence check.
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/TraceView.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace pacer;

namespace {

struct Row {
  const char *Mode;
  double LoadMs = 0.0;
  double ReplayMs = 0.0;
  size_t TraceResidentBytes = 0;
  uint64_t DynamicRaces = 0;
};

long peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) == 0)
    return Usage.ru_maxrss;
#endif
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R("micro_trace_io [options]");
  R.addDouble("scale", 1.0, "workload scale factor")
      .addInt("seed", 12345, "trace seed")
      .addInt("reps", 5, "timed repetitions per point (median reported)")
      // Smaller than the default reader window so the bench's medium
      // trace genuinely streams through several windows.
      .addInt("stream-window", 8192, "streaming window size in actions")
      .addString("json-out", "BENCH_trace_io.json", "JSON output path");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;
  const double Scale = R.getDouble("scale");
  const uint64_t Seed = static_cast<uint64_t>(R.getInt("seed"));
  const auto Reps = static_cast<uint32_t>(R.getInt("reps"));
  const auto Window = static_cast<size_t>(R.getInt("stream-window"));
  const std::string OutPath = R.getString("json-out");

  CompiledWorkload Workload(scaleWorkload(mediumTestWorkload(), Scale));
  Trace T = generateTrace(Workload, Seed);
  std::printf("trace: %zu events (scale %g), window %zu actions\n", T.size(),
              Scale, Window);

  const std::string TextPath = OutPath + ".tmp.trace";
  const std::string BinPath = OutPath + ".tmp.btrace";
  if (!writeTraceFile(TextPath, T, TraceFormat::Text) ||
      !writeTraceFile(BinPath, T, TraceFormat::Binary)) {
    std::fprintf(stderr, "cannot write temp traces next to %s\n",
                 OutPath.c_str());
    return 1;
  }

  DetectorSetup Setup = fastTrackSetup();
  const size_t TraceBytes = T.size() * sizeof(Action);

  Timer Wall;
  std::vector<Row> Rows;

  // Replays a loaded span; returns the trial's dynamic race count.
  auto TimeReplay = [&](TraceSpan Span, std::vector<double> &Ms) {
    Timer Replay;
    TrialResult Result = runTrialOnTrace(Span, Workload, Setup, Seed);
    Ms.push_back(Replay.seconds() * 1e3);
    return Result.DynamicRaces;
  };

  {
    Row Out{"text"};
    Out.TraceResidentBytes = TraceBytes;
    std::vector<double> LoadMs, ReplayMs;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      Timer Load;
      TraceParseResult Parsed = readTraceFile(TextPath);
      LoadMs.push_back(Load.seconds() * 1e3);
      if (!Parsed.Ok) {
        std::fprintf(stderr, "text load failed: %s\n", Parsed.Error.c_str());
        return 1;
      }
      Out.DynamicRaces = TimeReplay(Parsed.T, ReplayMs);
    }
    Out.LoadMs = median(LoadMs);
    Out.ReplayMs = median(ReplayMs);
    Rows.push_back(Out);
  }

  {
    Row Out{"binary"};
    Out.TraceResidentBytes = TraceBytes;
    std::vector<double> LoadMs, ReplayMs;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      Timer Load;
      TraceParseResult Parsed = readTraceFile(BinPath);
      LoadMs.push_back(Load.seconds() * 1e3);
      if (!Parsed.Ok) {
        std::fprintf(stderr, "binary load failed: %s\n",
                     Parsed.Error.c_str());
        return 1;
      }
      Out.DynamicRaces = TimeReplay(Parsed.T, ReplayMs);
    }
    Out.LoadMs = median(LoadMs);
    Out.ReplayMs = median(ReplayMs);
    Rows.push_back(Out);
  }

  {
    Row Out{"mmap"};
    Out.TraceResidentBytes = 0; // The kernel pages records in and out.
    std::vector<double> LoadMs, ReplayMs;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      Timer Load;
      TraceView View = TraceView::open(BinPath);
      LoadMs.push_back(Load.seconds() * 1e3);
      if (!View.ok()) {
        std::fprintf(stderr, "mmap load failed: %s\n", View.error().c_str());
        return 1;
      }
      if (!View.mapped())
        Out.TraceResidentBytes = TraceBytes; // Buffered fallback engaged.
      Out.DynamicRaces = TimeReplay(View.actions(), ReplayMs);
    }
    Out.LoadMs = median(LoadMs);
    Out.ReplayMs = median(ReplayMs);
    Rows.push_back(Out);
  }

  {
    Row Out{"stream"};
    Out.TraceResidentBytes = Window * sizeof(Action);
    std::vector<double> LoadMs, ReplayMs;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      // Streaming interleaves I/O with analysis; a pure drain pass stands
      // in for "load" so the columns stay comparable.
      Timer Load;
      {
        StreamingTraceReader Drain(BinPath, Window);
        while (!Drain.next().empty())
          ;
        if (!Drain.ok()) {
          std::fprintf(stderr, "stream drain failed: %s\n",
                       Drain.error().c_str());
          return 1;
        }
      }
      LoadMs.push_back(Load.seconds() * 1e3);

      StreamingTraceReader Reader(BinPath, Window);
      std::string Error;
      Timer Replay;
      TrialResult Result =
          runTrialOnStream(Reader, Workload, Setup, Seed, &Error);
      ReplayMs.push_back(Replay.seconds() * 1e3);
      if (!Error.empty()) {
        std::fprintf(stderr, "stream replay failed: %s\n", Error.c_str());
        return 1;
      }
      Out.DynamicRaces = Result.DynamicRaces;
    }
    Out.LoadMs = median(LoadMs);
    Out.ReplayMs = median(ReplayMs);
    Rows.push_back(Out);
  }

  bool Mismatch = false;
  const double TextLoadMs = Rows.front().LoadMs;
  for (const Row &Out : Rows) {
    if (Out.DynamicRaces != Rows.front().DynamicRaces) {
      std::fprintf(stderr,
                   "READ-PATH MISMATCH: %s found %llu dynamic races vs "
                   "text %llu\n",
                   Out.Mode,
                   static_cast<unsigned long long>(Out.DynamicRaces),
                   static_cast<unsigned long long>(
                       Rows.front().DynamicRaces));
      Mismatch = true;
    }
    std::printf("%-7s load %8.3f ms (%5.2fx vs text)  replay %8.2f ms  "
                "trace-resident %10zu B  races %llu\n",
                Out.Mode, Out.LoadMs,
                Out.LoadMs > 0.0 ? TextLoadMs / Out.LoadMs : 0.0,
                Out.ReplayMs, Out.TraceResidentBytes,
                static_cast<unsigned long long>(Out.DynamicRaces));
  }

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"workload\": \"%s\",\n  \"events\": %zu,\n"
               "  \"reps\": %u,\n  \"stream_window_actions\": %zu,\n"
               "  \"process_peak_rss_kb\": %ld,\n  \"points\": [\n",
               Workload.spec().Name.c_str(), T.size(), Reps, Window,
               peakRssKb());
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &Row = Rows[I];
    std::fprintf(Out,
                 "    {\"mode\": \"%s\", \"load_ms\": %.3f, "
                 "\"load_speedup_vs_text\": %.3f, \"replay_ms\": %.3f, "
                 "\"trace_resident_bytes\": %zu, \"dynamic_races\": %llu}%s\n",
                 Row.Mode, Row.LoadMs,
                 Row.LoadMs > 0.0 ? TextLoadMs / Row.LoadMs : 0.0,
                 Row.ReplayMs, Row.TraceResidentBytes,
                 static_cast<unsigned long long>(Row.DynamicRaces),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
  std::printf("wrote %s\n[timing] wall-clock %.2fs\n", OutPath.c_str(),
              Wall.seconds());
  return Mismatch ? 1 : 0;
}
