//===- bench/fig3_dynamic_detection.cpp -----------------------------------==//
//
// Regenerates Figure 3: PACER's detection rate on *dynamic* evaluation
// races versus the specified sampling rate. Each point is the unweighted
// average over evaluation races of (average dynamic reports per run at
// rate r) / (average dynamic reports per run at 100%).
//
// The paper's claim: the detection rate tracks the sampling rate (the
// y = x diagonal), slightly under for eclipse, slightly over elsewhere.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  OptionRegistry R = benchOptionRegistry("fig3_dynamic_detection [options]",
                                         /*DefaultScale=*/0.3);
  R.addFlag("csv", "also emit workload,rate,detection rows as CSV");
  BenchOptions Options = parseBenchOptionsFrom(R, Argc, Argv);
  printBanner("Figure 3: detection rate vs sampling rate (dynamic races)",
              "PACER reports roughly a proportion r of dynamic races: the "
              "series below should hug the diagonal.");

  bool Csv = R.getBool("csv");
  if (Csv)
    std::printf("workload,rate,detection\n");

  Timer Wall;
  TextTable Table;
  std::vector<std::string> Header{"Program"};
  for (double Rate : accuracyRates())
    Header.push_back("r=" + formatPercent(Rate, 0));
  Table.setHeader(Header);

  for (const WorkloadSpec &Spec : Options.Workloads) {
    DetectionStudy Study = runDetectionStudy(Spec, accuracyRates(), Options);
    std::vector<std::string> Row{Spec.Name};
    for (const DetectionPoint &Point : Study.Points) {
      Row.push_back(formatPercent(Point.DynamicDetectionRate, 1));
      if (Csv)
        std::printf("%s,%g,%g\n", Spec.Name.c_str(), Point.SpecifiedRate,
                    Point.DynamicDetectionRate);
    }
    Table.addRow(Row);
    std::printf("%s: %zu evaluation races (of %zu observed)\n",
                Spec.Name.c_str(), Study.Truth.EvaluationRaces.size(),
                Study.Truth.AllRaces.size());
  }
  std::printf("\n%s\n(each cell: mean dynamic detection rate; ideal equals "
              "the column's sampling rate)\n",
              Table.render().c_str());
  printWallClock(Wall, Options);
  return 0;
}
