//===- bench/fig7_overhead_breakdown.cpp ----------------------------------==//
//
// Regenerates Figure 7: the overhead breakdown for r = 0-3%. The paper's
// ladder (averages over its benchmarks): "OM + sync ops, r=0%" ~15%,
// "Pacer, r=0%" ~33%, "Pacer, r=1%" ~52%, "Pacer, r=3%" ~86% over
// unmodified Jikes RVM. Our baseline is the no-analysis replay; sub-bars
// are medians over trials as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/OverheadExperiment.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/1.5);
  printBanner("Figure 7: PACER overhead breakdown, r = 0-3%",
              "Overhead grows through the instrumentation ladder and with "
              "the sampling rate; r <= 3% stays deployment-friendly.");

  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 9;
  std::vector<OverheadConfig> Configs = figure7Configs({0.01, 0.03});

  TextTable Table;
  std::vector<std::string> Header{"Program"};
  for (const OverheadConfig &Config : Configs)
    Header.push_back(Config.Label);
  Table.setHeader(Header);

  Timer Wall;
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    std::vector<OverheadResult> Results =
        measureOverheads(Workload, Configs, Trials, Options.Seed,
                         Options.Jobs);
    std::vector<std::string> Row{Spec.Name};
    for (const OverheadResult &Result : Results) {
      std::string Cell = formatDouble(Result.Slowdown, 2) + "x";
      // Attribute each bar to its phases: the hot share is the fraction
      // of analysed accesses that paid full sampling-period detection.
      // Zero analysed accesses (e.g. the no-analysis baseline column or a
      // sync-only workload) reads as a 0.0% hot share, never NaN.
      const uint64_t Phased = Result.HotAccesses + Result.ColdAccesses;
      const double HotShare =
          Phased != 0 ? 100.0 * static_cast<double>(Result.HotAccesses) /
                            static_cast<double>(Phased)
                      : 0.0;
      Cell += " (hot " + formatDouble(HotShare, 1) + "%)";
      Row.push_back(Cell);
    }
    Table.addRow(Row);
  }
  std::printf("%s\n(median of %u trials; slowdown normalized to the "
              "no-analysis baseline; hot %% = share of accesses analysed "
              "inside a sampling period; paper averages: OM+sync 1.15x, "
              "r=0%% 1.33x, r=1%% 1.52x, r=3%% 1.86x)\n",
              Table.render().c_str(), Trials);
  printWallClock(Wall, Options);
  return 0;
}
