//===- bench/fig9_slowdown_zoom.cpp ---------------------------------------==//
//
// Regenerates Figure 9: the zoomed view of slowdown versus sampling rate
// for r = 0-10%, where the deployment-relevant operating points live.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/OverheadExperiment.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/1.5);
  printBanner("Figure 9: slowdown vs sampling rate, r = 0-10% (zoom)",
              "The low-rate regime: small, roughly linear overhead "
              "increases per point of sampling rate.");

  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 5;
  const std::vector<double> Rates{0.0,  0.01, 0.02, 0.03, 0.05,
                                  0.07, 0.10};

  std::vector<OverheadConfig> Configs{{"base", nullSetup()}};
  for (double Rate : Rates)
    Configs.push_back({"r=" + formatPercent(Rate, 0), pacerSetup(Rate)});
  // Intra-trial parallel replay: every configuration (including the
  // baseline) shards identically so the slowdown ratios stay comparable.
  // --shards=auto flows through as 0; measureOverheads resolves it once
  // per workload from a probe trace and logs the chosen K.
  for (OverheadConfig &Config : Configs)
    Config.Setup.Shards = Options.Shards;

  TextTable Table;
  std::vector<std::string> Header{"Program"};
  for (size_t I = 1; I < Configs.size(); ++I)
    Header.push_back(Configs[I].Label);
  Table.setHeader(Header);

  Timer Wall;
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    std::vector<OverheadResult> Results =
        measureOverheads(Workload, Configs, Trials, Options.Seed,
                         Options.Jobs);
    std::vector<std::string> Row{Spec.Name};
    for (size_t I = 1; I < Results.size(); ++I)
      Row.push_back(formatDouble(Results[I].Slowdown, 2) + "x");
    Table.addRow(Row);
  }
  std::printf("%s\n(median of %u trials, normalized to the no-analysis "
              "baseline)\n",
              Table.render().c_str(), Trials);
  printWallClock(Wall, Options);
  return 0;
}
