//===- bench/fig8_slowdown_full_range.cpp ---------------------------------==//
//
// Regenerates Figure 8: slowdown versus sampling rate over the full range
// r = 0-100%. The paper: overhead grows roughly linearly with the
// sampling rate, reaching ~12x at 100% in their implementation (8x in the
// FastTrack paper's).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/OverheadExperiment.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/1.5);
  printBanner("Figure 8: slowdown vs sampling rate, r = 0-100%",
              "Slowdown scales roughly linearly with the sampling rate.");

  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 5;
  const std::vector<double> Rates{0.0,  0.01, 0.03, 0.05, 0.10,
                                  0.25, 0.50, 0.75, 1.00};

  std::vector<OverheadConfig> Configs{{"base", nullSetup()}};
  for (double Rate : Rates)
    Configs.push_back({"r=" + formatPercent(Rate, 0), pacerSetup(Rate)});
  // Intra-trial parallel replay: every configuration (including the
  // baseline) shards identically so the slowdown ratios stay comparable.
  // --shards=auto flows through as 0; measureOverheads resolves it once
  // per workload from a probe trace and logs the chosen K.
  for (OverheadConfig &Config : Configs)
    Config.Setup.Shards = Options.Shards;

  TextTable Table;
  std::vector<std::string> Header{"Program"};
  for (size_t I = 1; I < Configs.size(); ++I)
    Header.push_back(Configs[I].Label);
  Table.setHeader(Header);

  Timer Wall;
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    std::vector<OverheadResult> Results =
        measureOverheads(Workload, Configs, Trials, Options.Seed,
                         Options.Jobs);
    std::vector<std::string> Row{Spec.Name};
    for (size_t I = 1; I < Results.size(); ++I)
      Row.push_back(formatDouble(Results[I].Slowdown, 2) + "x");
    Table.addRow(Row);
  }
  std::printf("%s\n(median of %u trials, normalized to the no-analysis "
              "baseline)\n",
              Table.render().c_str(), Trials);
  printWallClock(Wall, Options);
  return 0;
}
