# Bench binaries are declared from the top-level CMakeLists (via include)
# rather than add_subdirectory so that ${CMAKE_BINARY_DIR}/bench contains
# ONLY the executables: `for b in build/bench/*; do $b; done` then runs the
# whole suite with no CMake bookkeeping files in the way.

set(PACER_BENCH_BINARIES
  table1_effective_rates
  table2_thread_race_counts
  table3_operation_counts
  fig3_dynamic_detection
  fig4_distinct_detection
  fig5_per_race_detection
  fig6_literace_eclipse
  fig7_overhead_breakdown
  fig8_slowdown_full_range
  fig9_slowdown_zoom
  fig10_space_over_time
  ablation_design_choices
  ext_accordion_clocks
  micro_sharded
  micro_trace_io
  micro_coldpath
  micro_hotpath
)

foreach(bin ${PACER_BENCH_BINARIES})
  add_executable(${bin} bench/${bin}.cpp)
  target_link_libraries(${bin} PRIVATE pacer_harness)
  set_target_properties(${bin} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

add_executable(micro_ops bench/micro_ops.cpp)
target_link_libraries(micro_ops PRIVATE pacer_harness benchmark::benchmark)
set_target_properties(micro_ops PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
