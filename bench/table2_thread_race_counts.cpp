//===- bench/table2_thread_race_counts.cpp --------------------------------==//
//
// Regenerates Table 2: thread counts (total and max live) and distinct
// race counts per workload -- races observed in >= 1 and >= 5 of all
// trials, and in >= 1 / >= 5 / >= 25 of the fully sampled (r = 100%)
// trials, scaled to the --full-trials count.
//
// Paper values (Table 2, 50 full trials):
//   program    total  maxlive  >=1   >=5   >=25
//   eclipse      16      8      55    44    27
//   hsqldb      403    102      23    23    23
//   xalan         9      9      70    34    19
//   pseudojbb    37      9      14    14    11
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/TraceGenerator.h"

#include "../tests/TestUtil.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/0.4);
  printBanner("Table 2: thread counts and race counts",
              "Workload models reproduce the paper's thread structure; "
              "race-count columns show each model's rarity spectrum "
              "(some races occur every trial, some rarely).");

  uint32_t FullTrials = Options.FullTrials;
  // Thresholds proportional to the paper's 1/5/25 out of 50.
  uint32_t T5 = std::max(1u, FullTrials / 10);
  uint32_t T25 = std::max(1u, FullTrials / 2);

  Timer Wall;
  TextTable Table;
  Table.setHeader({"Program", "Threads", "Max live", ">=1 trial",
                   ">=" + std::to_string(T5), ">=" + std::to_string(T25)});
  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    GroundTruth Truth =
        computeGroundTruth(Workload, FullTrials, Options.Seed, Options.Jobs);
    Trace T = generateTrace(Workload, Options.Seed);
    uint32_t MaxLive = test::maxLiveThreads(T, Workload.totalThreads());
    Table.addRow({Spec.Name, std::to_string(Workload.totalThreads()),
                  std::to_string(MaxLive),
                  std::to_string(Truth.racesSeenAtLeast(1)),
                  std::to_string(Truth.racesSeenAtLeast(T5)),
                  std::to_string(Truth.racesSeenAtLeast(T25))});
  }
  std::printf("%s\n(distinct races over %u fully sampled trials; planted "
              "populations: eclipse 80, hsqldb 28, xalan 75, pseudojbb "
              "14)\n",
              Table.render().c_str(), FullTrials);
  printWallClock(Wall, Options);
  return 0;
}
