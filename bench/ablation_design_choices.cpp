//===- bench/ablation_design_choices.cpp ----------------------------------==//
//
// Ablations of PACER's design choices (DESIGN.md §6):
//
//  1. Version fast joins off: every join pays the O(n) comparison.
//  2. Clock sharing off: every release deep-copies; space and copy counts
//     rise.
//  3. Sampling-bias correction off: effective rate undershoots the
//     specified rate (Section 4's motivation for the correction).
//  4. Metadata discard off: non-sampling periods keep stale (ordered)
//     metadata; space stops scaling with the sampling rate.
//  5. FastTrack read-map clearing off (original FastTrack): extra stale
//     read reports.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/0.4);
  printBanner("Ablation: PACER design choices",
              "Each row removes one mechanism and shows what it bought.");

  uint32_t Trials =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 5;

  for (const WorkloadSpec &Spec : Options.Workloads) {
    CompiledWorkload Workload(Spec);
    std::printf("--- %s ---\n", Spec.Name.c_str());

    // 1 & 2: operation counts and space at r = 3%.
    DetectorSetup Full = pacerSetup(0.03);
    Full.Sampling.PeriodBytes = 12 * 1024;
    DetectorSetup NoVersions = Full;
    NoVersions.Pacer.UseVersionFastJoins = false;
    DetectorSetup NoSharing = Full;
    NoSharing.Pacer.UseClockSharing = false;
    DetectorSetup NoDiscard = Full;
    NoDiscard.Pacer.DiscardMetadata = false;

    TextTable Table;
    Table.setHeader({"Config", "slow joins (non-samp)",
                     "deep copies (non-samp)", "final metadata KB",
                     "races"});
    struct Case {
      const char *Label;
      DetectorSetup Setup;
    };
    for (const Case &C :
         {Case{"full PACER", Full}, Case{"no version fast joins", NoVersions},
          Case{"no clock sharing", NoSharing},
          Case{"no metadata discard", NoDiscard}}) {
      uint64_t SlowJoins = 0, DeepCopies = 0, Races = 0;
      size_t Bytes = 0;
      for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
        TrialResult Result =
            runTrial(Workload, C.Setup, deriveTrialSeed(Options.Seed, Trial));
        SlowJoins += Result.Stats.SlowJoinsNonSampling;
        DeepCopies += Result.Stats.DeepCopiesNonSampling;
        Races += Result.DynamicRaces;
        Bytes += Result.FinalMetadataBytes;
      }
      Table.addRow({C.Label, formatThousands(SlowJoins / Trials),
                    formatThousands(DeepCopies / Trials),
                    std::to_string(Bytes / Trials / 1024),
                    std::to_string(Races / Trials)});
    }
    std::printf("%s", Table.render().c_str());

    // 3: bias correction.
    DetectorSetup Corrected = pacerSetup(0.10);
    Corrected.Sampling.PeriodBytes = 12 * 1024; // Many periods per trial.
    DetectorSetup Uncorrected = Corrected;
    Uncorrected.Sampling.BiasCorrection = false;
    RunningStat WithFix, WithoutFix;
    for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
      WithFix.add(runTrial(Workload, Corrected, deriveTrialSeed(Options.Seed, Trial))
                      .EffectiveAccessRate);
      WithoutFix.add(runTrial(Workload, Uncorrected, deriveTrialSeed(Options.Seed, Trial))
                         .EffectiveAccessRate);
    }
    std::printf("bias correction at r=10%%: corrected %s vs uncorrected "
                "%s\n",
                formatPercent(WithFix.mean(), 2).c_str(),
                formatPercent(WithoutFix.mean(), 2).c_str());

    // 4: escape analysis (Section 4's compiler pass): eliding provably
    // local accesses removes instrumentation without losing races.
    DetectorSetup WithEscape = Full;
    WithEscape.ElideLocalAccesses = true;
    uint64_t AccessesPlain = 0, AccessesElided = 0;
    double SecondsPlain = 0, SecondsElided = 0;
    for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
      TrialResult P = runTrial(Workload, Full, deriveTrialSeed(Options.Seed, Trial));
      TrialResult E = runTrial(Workload, WithEscape, deriveTrialSeed(Options.Seed, Trial));
      AccessesPlain += P.Stats.totalReads() + P.Stats.totalWrites();
      AccessesElided += E.Stats.totalReads() + E.Stats.totalWrites();
      SecondsPlain += P.ReplaySeconds;
      SecondsElided += E.ReplaySeconds;
    }
    std::printf("escape analysis: instrumented accesses %lluK -> %lluK, "
                "analysis time x%.2f\n",
                static_cast<unsigned long long>(AccessesPlain / Trials /
                                                1000),
                static_cast<unsigned long long>(AccessesElided / Trials /
                                                1000),
                SecondsPlain > 0 ? SecondsElided / SecondsPlain : 1.0);

    // 5: FastTrack read-map clearing.
    DetectorSetup Modified = fastTrackSetup();
    DetectorSetup Original = fastTrackSetup();
    Original.FastTrack.ClearReadMapAtWrite = false;
    uint64_t ModifiedRaces = 0, OriginalRaces = 0;
    for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
      ModifiedRaces +=
          runTrial(Workload, Modified, deriveTrialSeed(Options.Seed, Trial)).DynamicRaces;
      OriginalRaces +=
          runTrial(Workload, Original, deriveTrialSeed(Options.Seed, Trial)).DynamicRaces;
    }
    std::printf("FastTrack dynamic reports: paper-modified %llu vs "
                "original %llu (original keeps stale read epochs)\n\n",
                static_cast<unsigned long long>(ModifiedRaces / Trials),
                static_cast<unsigned long long>(OriginalRaces / Trials));
  }
  return 0;
}
