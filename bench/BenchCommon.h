//===- bench/BenchCommon.h - Shared bench-binary plumbing ------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common flag handling and the detection-study driver shared by the
/// table/figure reproduction binaries. Every binary accepts:
///
///   --workload=NAME   one of eclipse|hsqldb|xalan|pseudojbb (default all)
///   --scale=F         multiply per-worker operation counts (default per
///                     binary; 1.0 approximates the calibrated size)
///   --trials=N        override the per-point trial count
///   --seed=S          base seed (default 12345)
///   --full-trials=N   fully sampled calibration trials (default 30)
///   --jobs=N          worker threads for trial-level parallelism
///   --shards=K        variable shards per trial (intra-trial parallel
///                     replay; results are bit-identical across K);
///                     --shards=auto picks K per workload from trace
///                     size and hardware
///
/// The shared flags live in an OptionRegistry (benchOptionRegistry);
/// binaries with extra flags declare them on that registry before parsing,
/// so every bench driver gets generated --help and unknown-flag rejection.
/// Binaries print the reproduced rows plus the paper's published values
/// for side-by-side comparison; see EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_BENCH_BENCHCOMMON_H
#define PACER_BENCH_BENCHCOMMON_H

#include "harness/DetectionExperiment.h"
#include "harness/TrialRunner.h"
#include "runtime/TraceIndex.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pacer::bench {

/// Options shared by all bench binaries.
struct BenchOptions {
  std::vector<WorkloadSpec> Workloads;
  double Scale = 1.0;
  int64_t Trials = -1; ///< -1 = per-binary default / formula.
  uint64_t Seed = 12345;
  uint32_t FullTrials = 30;
  /// Trial-level parallelism (--jobs / PACER_JOBS). Results are
  /// bit-identical across jobs values; 1 is the serial loop.
  unsigned Jobs = 1;
  /// Variable shards per trial replay (--shards). Each trial's accesses
  /// are partitioned across K detector replicas analysed concurrently;
  /// results are bit-identical across shard counts, 1 is sequential and
  /// 0 ("auto") picks K from the trace size and the hardware.
  unsigned Shards = 1;
};

/// Returns a registry pre-declared with the flags every bench binary
/// shares. Binaries with extra flags chain their own add*() calls on the
/// result before handing it to parseBenchOptionsFrom.
inline OptionRegistry benchOptionRegistry(const std::string &Usage,
                                          double DefaultScale) {
  OptionRegistry R(Usage);
  R.addString("workload", "",
              "one of eclipse|hsqldb|xalan|pseudojbb|forkjoin; empty = "
              "the four paper workloads")
      .addDouble("scale", DefaultScale,
                 "multiply per-worker operation counts")
      .addInt("trials", -1, "override the per-point trial count; -1 = "
                            "paper formula")
      .addInt("seed", 12345, "base seed")
      .addInt("full-trials", 30, "fully sampled calibration trials")
      .addInt("jobs", static_cast<int64_t>(defaultJobs()),
              "worker threads for trial-level parallelism")
      .addString("shards", "1",
                 "variable shards per trial replay (intra-trial "
                 "parallelism): a count, or 'auto' to pick from trace "
                 "size and hardware")
      .addFlag("pin-threads",
               "pin pool workers to CPUs (also PACER_PIN_THREADS=1); "
               "best-effort, no-op where unsupported");
  return R;
}

/// Extracts the shared options from a registry that has parsed argv.
inline BenchOptions benchOptionsFrom(const OptionRegistry &R) {
  BenchOptions Options;
  Options.Scale = R.getDouble("scale");
  Options.Trials = R.getInt("trials");
  Options.Seed = static_cast<uint64_t>(R.getInt("seed"));
  Options.FullTrials = static_cast<uint32_t>(R.getInt("full-trials"));
  int64_t Jobs = R.getInt("jobs");
  Options.Jobs = Jobs < 1 ? 1u : static_cast<unsigned>(Jobs);
  Options.Shards = parseShardCount(R.getString("shards"));
  if (R.getBool("pin-threads"))
    setThreadPinning(true);
  if (threadPinningEnabled())
    std::fprintf(stderr, "[pin] worker CPU affinity on (%u cpus)\n",
                 hardwareJobs());
  std::string Name = R.getString("workload");
  std::vector<WorkloadSpec> All = paperWorkloads();
  for (WorkloadSpec &Spec : All)
    if (Name.empty() || Spec.Name == Name)
      Options.Workloads.push_back(scaleWorkload(Spec, Options.Scale));
  // The fork/join stress family is opt-in by name: it is not a paper
  // benchmark, so the empty default sweeps only the paper four.
  if (Options.Workloads.empty() && Name == "forkjoin")
    Options.Workloads.push_back(scaleWorkload(forkJoinModel(), Options.Scale));
  if (Options.Workloads.empty()) {
    std::fprintf(stderr,
                 "unknown --workload=%s (want eclipse, hsqldb, xalan, "
                 "pseudojbb, or forkjoin)\n",
                 Name.c_str());
    std::exit(1);
  }
  return Options;
}

/// Parses argv against \p R, exiting on --help (status 0) or an unknown
/// flag (status 2), then extracts the shared options.
inline BenchOptions parseBenchOptionsFrom(OptionRegistry &R, int Argc,
                                          const char *const *Argv) {
  if (!R.parse(Argc, Argv))
    std::exit(R.helpRequested() ? 0 : 2);
  return benchOptionsFrom(R);
}

/// Convenience for binaries with no extra flags.
inline BenchOptions parseBenchOptions(int Argc, const char *const *Argv,
                                      double DefaultScale) {
  OptionRegistry R = benchOptionRegistry(
      std::string(Argc > 0 ? Argv[0] : "bench") + " [options]",
      DefaultScale);
  return parseBenchOptionsFrom(R, Argc, Argv);
}

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
inline void printBanner(const char *Artifact, const char *Claim) {
  std::printf("=== %s ===\n%s\n\n", Artifact, Claim);
}

/// Prints the experiment-level wall-clock line every bench driver emits,
/// so speedups from --jobs are measurable run to run.
inline void printWallClock(const Timer &T, const BenchOptions &Options) {
  std::printf("[timing] wall-clock %.2fs (jobs=%u)\n", T.seconds(),
              Options.Jobs);
}

/// One workload's detection study: ground truth plus one DetectionPoint
/// per requested rate.
struct DetectionStudy {
  WorkloadSpec Spec;
  GroundTruth Truth;
  std::vector<DetectionPoint> Points;
};

/// Runs the Figures 3-5 pipeline for one workload. \p TrialsOverride < 0
/// applies the paper's numTrials formula (simulator-scaled).
inline DetectionStudy runDetectionStudy(const WorkloadSpec &Spec,
                                        const std::vector<double> &Rates,
                                        const BenchOptions &Options) {
  DetectionStudy Study;
  Study.Spec = Spec;
  CompiledWorkload Workload(Spec);
  Study.Truth = computeGroundTruth(Workload, Options.FullTrials,
                                   Options.Seed, Options.Jobs);
  for (double Rate : Rates) {
    uint32_t Trials = Options.Trials > 0
                          ? static_cast<uint32_t>(Options.Trials)
                          : numTrialsForRate(Rate, /*Scale=*/0.5,
                                             /*MinTrials=*/10,
                                             /*MaxTrials=*/60);
    DetectorSetup Setup = pacerSetup(Rate);
    // Small simulated nurseries give each trial enough period-entry
    // decisions for the bias correction to work at simulator trace sizes
    // (the paper's executions see hundreds of 32 MB periods).
    Setup.Sampling.PeriodBytes = 12 * 1024;
    Study.Points.push_back(measureDetection(
        Workload, Study.Truth, Setup, Trials,
        Options.Seed + static_cast<uint64_t>(Rate * 100000.0),
        Options.Jobs));
  }
  return Study;
}

/// The sampling rates the paper's accuracy figures sweep.
inline std::vector<double> accuracyRates() {
  return {0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.00};
}

} // namespace pacer::bench

#endif // PACER_BENCH_BENCHCOMMON_H
