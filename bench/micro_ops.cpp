//===- bench/micro_ops.cpp - Core-operation microbenchmarks ---------------==//
//
// google-benchmark microbenchmarks for the primitive operations whose
// costs drive the paper's performance claims: O(n) vector-clock joins and
// copies vs O(1) epoch checks, version-epoch fast joins vs slow joins,
// shallow vs deep clock copies, and the read/write fast-path check.
//
//===----------------------------------------------------------------------===//

#include "core/Epoch.h"
#include "core/ReadMap.h"
#include "core/SyncClock.h"
#include "core/VersionEpoch.h"
#include "detectors/PacerDetector.h"
#include "detectors/FastTrackDetector.h"
#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include <benchmark/benchmark.h>

using namespace pacer;

namespace {

VectorClock makeClock(size_t Threads, uint32_t Base) {
  VectorClock Clock;
  for (size_t I = 0; I < Threads; ++I)
    Clock.set(static_cast<ThreadId>(I), Base + static_cast<uint32_t>(I));
  return Clock;
}

void BM_VectorClockJoin(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  VectorClock A = makeClock(Threads, 1);
  VectorClock B = makeClock(Threads, 2);
  for (auto _ : State) {
    VectorClock C = A;
    benchmark::DoNotOptimize(C.joinWith(B));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_VectorClockJoin)->Range(8, 1024)->Complexity();

void BM_VectorClockLeq(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  VectorClock A = makeClock(Threads, 1);
  VectorClock B = makeClock(Threads, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.leq(B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_VectorClockLeq)->Range(8, 1024)->Complexity();

void BM_EpochPrecedes(benchmark::State &State) {
  // The O(1) replacement for the O(n) comparison.
  VectorClock C = makeClock(1024, 5);
  Epoch E = Epoch::make(17, 512);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.precedes(C));
}
BENCHMARK(BM_EpochPrecedes);

void BM_VersionEpochFastJoinCheck(benchmark::State &State) {
  // PACER's redundant-join detection: one array read and compare.
  VersionVector Ver = makeClock(1024, 3);
  VersionEpoch VEpoch = VersionEpoch::make(900, 700);
  for (auto _ : State)
    benchmark::DoNotOptimize(VEpoch.precedes(Ver));
}
BENCHMARK(BM_VersionEpochFastJoinCheck);

void BM_DeepCopy(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  SyncClock Thread;
  Thread.mutableClock().copyFrom(makeClock(Threads, 1));
  SyncClock Lock;
  for (auto _ : State)
    Lock.deepCopyFrom(Thread, nullptr);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DeepCopy)->Range(8, 1024)->Complexity();

void BM_ShallowCopy(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  SyncClock Thread;
  Thread.mutableClock().copyFrom(makeClock(Threads, 1));
  Thread.setShared();
  SyncClock Lock;
  for (auto _ : State)
    Lock.shallowCopyFrom(Thread); // O(1) regardless of clock width.
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ShallowCopy)->Range(8, 1024)->Complexity();

void BM_ReadMapEpochUpdate(benchmark::State &State) {
  ReadMap R;
  VectorClock C = makeClock(8, 3);
  for (auto _ : State) {
    R.setEpoch(Epoch::make(3, 1), 9);
    benchmark::DoNotOptimize(R.leqClock(C));
  }
}
BENCHMARK(BM_ReadMapEpochUpdate);

void BM_ReadMapSharedUpdate(benchmark::State &State) {
  auto Readers = static_cast<uint32_t>(State.range(0));
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 1);
  R.inflateToMap();
  for (uint32_t I = 1; I < Readers; ++I)
    R.setEntry(I, I, I);
  uint32_t Tid = 0;
  for (auto _ : State) {
    R.setEntry(Tid % Readers, 5, 5);
    ++Tid;
  }
}
BENCHMARK(BM_ReadMapSharedUpdate)->Range(2, 128);

void BM_PacerFastPathRead(benchmark::State &State) {
  // The inlined non-sampling check: flag test plus hash lookup miss.
  NullRaceSink Sink;
  PacerDetector D(Sink);
  VarId Var = 0;
  for (auto _ : State) {
    D.read(0, Var, 1);
    Var = (Var + 1) & 0xffff;
  }
}
BENCHMARK(BM_PacerFastPathRead);

void BM_FastTrackSameEpochRead(benchmark::State &State) {
  NullRaceSink Sink;
  FastTrackDetector D(Sink);
  D.read(0, 5, 1);
  for (auto _ : State)
    D.read(0, 5, 1); // Same-epoch fast path.
}
BENCHMARK(BM_FastTrackSameEpochRead);

void BM_ReplayTinyWorkload(benchmark::State &State) {
  // End-to-end per-event cost at the given sampling rate (x1000).
  double Rate = static_cast<double>(State.range(0)) / 1000.0;
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 1);
  for (auto _ : State) {
    NullRaceSink Sink;
    PacerDetector D(Sink);
    SamplingConfig Config;
    Config.TargetRate = Rate;
    SamplingController Controller(Config, 7);
    Runtime RT(D, &Controller);
    RT.replay(T);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_ReplayTinyWorkload)->Arg(0)->Arg(10)->Arg(30)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
