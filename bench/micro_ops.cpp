//===- bench/micro_ops.cpp - Core-operation microbenchmarks ---------------==//
//
// google-benchmark microbenchmarks for the primitive operations whose
// costs drive the paper's performance claims: O(n) vector-clock joins and
// copies vs O(1) epoch checks, version-epoch fast joins vs slow joins,
// shallow vs deep clock copies, and the read/write fast-path check.
//
// `micro_ops --json` skips google-benchmark and instead replays a fixed
// trace under every detector, writing machine-readable per-detector
// events/sec, p50/p95 per-event latency, and the dynamic race count to
// BENCH_micro_ops.json (override with --json-out=PATH). Diffing that file
// across commits shows per-event speedups and catches any change in the
// races a detector reports.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "core/Epoch.h"
#include "core/ReadMap.h"
#include "core/SyncClock.h"
#include "core/VersionEpoch.h"
#include "detectors/PacerDetector.h"
#include "detectors/FastTrackDetector.h"
#include "harness/TrialRunner.h"
#include "runtime/Runtime.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

using namespace pacer;

namespace {

//===----------------------------------------------------------------------===//
// Clock-kernel rows: SIMD vs genuinely scalar baselines
//===----------------------------------------------------------------------===//
//
// The baselines below must stay scalar even at -O3, where the compiler
// would otherwise auto-vectorize them and erase the margin the rows are
// supposed to show. GCC takes a per-function optimize attribute; clang
// takes a per-loop pragma.

#if defined(__clang__)
#define PACER_NOVEC_FN
#define PACER_NOVEC_LOOP                                                     \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define PACER_NOVEC_FN __attribute__((optimize("no-tree-vectorize")))
#define PACER_NOVEC_LOOP
#else
#define PACER_NOVEC_FN
#define PACER_NOVEC_LOOP
#endif

PACER_NOVEC_FN bool naiveJoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  bool Changed = false;
  PACER_NOVEC_LOOP
  for (size_t I = 0; I < N; ++I) {
    if (B[I] > A[I]) {
      A[I] = B[I];
      Changed = true;
    }
  }
  return Changed;
}

PACER_NOVEC_FN bool naiveAllLeq(const uint32_t *A, const uint32_t *B,
                                size_t N) {
  PACER_NOVEC_LOOP
  for (size_t I = 0; I < N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

PACER_NOVEC_FN void naiveCopy(uint32_t *Dst, const uint32_t *Src, size_t N) {
  PACER_NOVEC_LOOP
  for (size_t I = 0; I < N; ++I)
    Dst[I] = Src[I];
}

PACER_NOVEC_FN void naiveRemapGather(uint32_t *Dst, const uint32_t *Src,
                                     const uint32_t *Idx, size_t N) {
  PACER_NOVEC_LOOP
  for (size_t I = 0; I < N; ++I)
    Dst[I] = Src[Idx[I]];
}

PACER_NOVEC_FN size_t naiveTrimTrailingZeros(const uint32_t *A, size_t N) {
  PACER_NOVEC_LOOP
  while (N > 0 && A[N - 1] == 0)
    --N;
  return N;
}

std::vector<uint32_t> kernelWords(size_t N, uint32_t Base) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = Base + static_cast<uint32_t>(I * 2654435761u % 1000);
  return Out;
}

void BM_KernelJoinSimd(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> A = kernelWords(N, 1), B = kernelWords(N, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(kernels::joinMax(A.data(), B.data(), N));
}
BENCHMARK(BM_KernelJoinSimd)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelJoinScalar(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> A = kernelWords(N, 1), B = kernelWords(N, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(naiveJoinMax(A.data(), B.data(), N));
}
BENCHMARK(BM_KernelJoinScalar)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelLeqSimd(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> A = kernelWords(N, 1), B = A; // Full-length scan.
  for (auto _ : State)
    benchmark::DoNotOptimize(kernels::allLeq(A.data(), B.data(), N));
}
BENCHMARK(BM_KernelLeqSimd)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelLeqScalar(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> A = kernelWords(N, 1), B = A;
  for (auto _ : State)
    benchmark::DoNotOptimize(naiveAllLeq(A.data(), B.data(), N));
}
BENCHMARK(BM_KernelLeqScalar)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelCopySimd(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Src = kernelWords(N, 3), Dst(N);
  for (auto _ : State) {
    kernels::copyWords(Dst.data(), Src.data(), N);
    benchmark::DoNotOptimize(Dst.data());
  }
}
BENCHMARK(BM_KernelCopySimd)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_KernelCopyScalar(benchmark::State &State) {
  auto N = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Src = kernelWords(N, 3), Dst(N);
  for (auto _ : State) {
    naiveCopy(Dst.data(), Src.data(), N);
    benchmark::DoNotOptimize(Dst.data());
  }
}
BENCHMARK(BM_KernelCopyScalar)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

/// The half-density accordion pack: every second slot survives, so the
/// remap gathers N/2 of N components (NewToOld[i] = 2i).
std::vector<uint32_t> halfDensityIndex(size_t Width) {
  std::vector<uint32_t> Idx(Width / 2);
  for (size_t I = 0; I < Idx.size(); ++I)
    Idx[I] = static_cast<uint32_t>(2 * I);
  return Idx;
}

/// Trim input: a live prefix of Width/2 nonzero components followed by
/// Width/2 explicit zeros (what a compaction just vacated).
std::vector<uint32_t> halfTrimmedWords(size_t Width) {
  std::vector<uint32_t> Words = kernelWords(Width, 1);
  for (size_t I = Width / 2; I < Width; ++I)
    Words[I] = 0;
  return Words;
}

void BM_KernelRemapSimd(benchmark::State &State) {
  auto Width = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Src = kernelWords(Width, 3), Dst(Width / 2);
  std::vector<uint32_t> Idx = halfDensityIndex(Width);
  for (auto _ : State) {
    kernels::remapGather(Dst.data(), Src.data(), Idx.data(), Idx.size());
    benchmark::DoNotOptimize(Dst.data());
  }
}
BENCHMARK(BM_KernelRemapSimd)->Arg(64)->Arg(512)->Arg(4096);

void BM_KernelRemapScalar(benchmark::State &State) {
  auto Width = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Src = kernelWords(Width, 3), Dst(Width / 2);
  std::vector<uint32_t> Idx = halfDensityIndex(Width);
  for (auto _ : State) {
    naiveRemapGather(Dst.data(), Src.data(), Idx.data(), Idx.size());
    benchmark::DoNotOptimize(Dst.data());
  }
}
BENCHMARK(BM_KernelRemapScalar)->Arg(64)->Arg(512)->Arg(4096);

void BM_KernelTrimSimd(benchmark::State &State) {
  auto Width = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Words = halfTrimmedWords(Width);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        kernels::trimTrailingZeros(Words.data(), Width));
}
BENCHMARK(BM_KernelTrimSimd)->Arg(64)->Arg(512)->Arg(4096);

void BM_KernelTrimScalar(benchmark::State &State) {
  auto Width = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Words = halfTrimmedWords(Width);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        naiveTrimTrailingZeros(Words.data(), Width));
}
BENCHMARK(BM_KernelTrimScalar)->Arg(64)->Arg(512)->Arg(4096);

VectorClock makeClock(size_t Threads, uint32_t Base) {
  VectorClock Clock;
  for (size_t I = 0; I < Threads; ++I)
    Clock.set(static_cast<ThreadId>(I), Base + static_cast<uint32_t>(I));
  return Clock;
}

void BM_VectorClockJoin(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  VectorClock A = makeClock(Threads, 1);
  VectorClock B = makeClock(Threads, 2);
  for (auto _ : State) {
    VectorClock C = A;
    benchmark::DoNotOptimize(C.joinWith(B));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_VectorClockJoin)->Range(8, 1024)->Complexity();

void BM_VectorClockLeq(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  VectorClock A = makeClock(Threads, 1);
  VectorClock B = makeClock(Threads, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.leq(B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_VectorClockLeq)->Range(8, 1024)->Complexity();

void BM_EpochPrecedes(benchmark::State &State) {
  // The O(1) replacement for the O(n) comparison.
  VectorClock C = makeClock(1024, 5);
  Epoch E = Epoch::make(17, 512);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.precedes(C));
}
BENCHMARK(BM_EpochPrecedes);

void BM_VersionEpochFastJoinCheck(benchmark::State &State) {
  // PACER's redundant-join detection: one array read and compare.
  VersionVector Ver = makeClock(1024, 3);
  VersionEpoch VEpoch = VersionEpoch::make(900, 700);
  for (auto _ : State)
    benchmark::DoNotOptimize(VEpoch.precedes(Ver));
}
BENCHMARK(BM_VersionEpochFastJoinCheck);

void BM_DeepCopy(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  SyncClock Thread;
  Thread.mutableClock().copyFrom(makeClock(Threads, 1));
  SyncClock Lock;
  for (auto _ : State)
    Lock.deepCopyFrom(Thread, nullptr);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DeepCopy)->Range(8, 1024)->Complexity();

void BM_ShallowCopy(benchmark::State &State) {
  auto Threads = static_cast<size_t>(State.range(0));
  SyncClock Thread;
  Thread.mutableClock().copyFrom(makeClock(Threads, 1));
  Thread.setShared();
  SyncClock Lock;
  for (auto _ : State)
    Lock.shallowCopyFrom(Thread); // O(1) regardless of clock width.
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ShallowCopy)->Range(8, 1024)->Complexity();

void BM_ReadMapEpochUpdate(benchmark::State &State) {
  ReadMap R;
  VectorClock C = makeClock(8, 3);
  for (auto _ : State) {
    R.setEpoch(Epoch::make(3, 1), 9);
    benchmark::DoNotOptimize(R.leqClock(C));
  }
}
BENCHMARK(BM_ReadMapEpochUpdate);

void BM_ReadMapSharedUpdate(benchmark::State &State) {
  auto Readers = static_cast<uint32_t>(State.range(0));
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 1);
  R.inflateToMap();
  for (uint32_t I = 1; I < Readers; ++I)
    R.setEntry(I, I, I);
  uint32_t Tid = 0;
  for (auto _ : State) {
    R.setEntry(Tid % Readers, 5, 5);
    ++Tid;
  }
}
BENCHMARK(BM_ReadMapSharedUpdate)->Range(2, 128);

void BM_PacerFastPathRead(benchmark::State &State) {
  // The inlined non-sampling check: flag test plus hash lookup miss.
  NullRaceSink Sink;
  PacerDetector D(Sink);
  VarId Var = 0;
  for (auto _ : State) {
    D.read(0, Var, 1);
    Var = (Var + 1) & 0xffff;
  }
}
BENCHMARK(BM_PacerFastPathRead);

void BM_FastTrackSameEpochRead(benchmark::State &State) {
  NullRaceSink Sink;
  FastTrackDetector D(Sink);
  D.read(0, 5, 1);
  for (auto _ : State)
    D.read(0, 5, 1); // Same-epoch fast path.
}
BENCHMARK(BM_FastTrackSameEpochRead);

void BM_ReplayTinyWorkload(benchmark::State &State) {
  // End-to-end per-event cost at the given sampling rate (x1000).
  double Rate = static_cast<double>(State.range(0)) / 1000.0;
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 1);
  for (auto _ : State) {
    NullRaceSink Sink;
    PacerDetector D(Sink);
    SamplingConfig Config;
    Config.TargetRate = Rate;
    SamplingController Controller(Config, 7);
    Runtime RT(D, &Controller);
    RT.replay(T);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_ReplayTinyWorkload)->Arg(0)->Arg(10)->Arg(30)->Arg(1000);

//===----------------------------------------------------------------------===//
// --json mode
//===----------------------------------------------------------------------===//

/// One kernel operation at one clock width: the active-ISA kernel against
/// the pinned-scalar baseline.
struct KernelRow {
  const char *Op;
  size_t Width;
  double SimdNs = 0.0;
  double ScalarNs = 0.0;
  double speedup() const { return SimdNs > 0.0 ? ScalarNs / SimdNs : 0.0; }
};

/// Median ns per call of \p Fn over \p Reps timed repetitions; the inner
/// iteration count scales inversely with \p Width so every repetition is
/// tens of microseconds regardless of clock size.
template <typename FnT>
double timeKernelNs(FnT Fn, size_t Width, uint32_t Reps) {
  const size_t Iters = std::max<size_t>(1024, 262144 / std::max<size_t>(
                                                           Width, 1));
  std::vector<double> Ns;
  Ns.reserve(Reps);
  for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Iters; ++I)
      Fn();
    auto End = std::chrono::steady_clock::now();
    Ns.push_back(std::chrono::duration<double, std::nano>(End - Start)
                     .count() /
                 static_cast<double>(Iters));
  }
  return median(Ns);
}

std::vector<KernelRow> measureKernels(uint32_t Reps) {
  std::vector<KernelRow> Rows;
  for (size_t Width : {size_t{2}, size_t{8}, size_t{64}, size_t{512}}) {
    std::vector<uint32_t> A = kernelWords(Width, 1);
    std::vector<uint32_t> B = kernelWords(Width, 7);
    std::vector<uint32_t> Dst(Width);

    KernelRow Join{"join", Width, 0.0, 0.0};
    Join.SimdNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(
              kernels::joinMax(A.data(), B.data(), Width));
        },
        Width, Reps);
    Join.ScalarNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(naiveJoinMax(A.data(), B.data(), Width));
        },
        Width, Reps);
    Rows.push_back(Join);

    std::vector<uint32_t> Eq = A; // A <= Eq everywhere: full-length scan.
    KernelRow Leq{"leq", Width, 0.0, 0.0};
    Leq.SimdNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(
              kernels::allLeq(A.data(), Eq.data(), Width));
        },
        Width, Reps);
    Leq.ScalarNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(naiveAllLeq(A.data(), Eq.data(), Width));
        },
        Width, Reps);
    Rows.push_back(Leq);

    KernelRow Copy{"copy", Width, 0.0, 0.0};
    Copy.SimdNs = timeKernelNs(
        [&] {
          kernels::copyWords(Dst.data(), B.data(), Width);
          benchmark::DoNotOptimize(Dst.data());
        },
        Width, Reps);
    Copy.ScalarNs = timeKernelNs(
        [&] {
          naiveCopy(Dst.data(), B.data(), Width);
          benchmark::DoNotOptimize(Dst.data());
        },
        Width, Reps);
    Rows.push_back(Copy);
  }

  // Accordion-compaction kernels at compaction-relevant widths: the
  // half-density pack (every second slot survives) and the trailing-zero
  // trim over the vacated upper half.
  for (size_t Width : {size_t{64}, size_t{512}, size_t{4096}}) {
    std::vector<uint32_t> Src = kernelWords(Width, 3);
    std::vector<uint32_t> Dst(Width / 2);
    std::vector<uint32_t> Idx = halfDensityIndex(Width);
    KernelRow Remap{"remap", Width, 0.0, 0.0};
    Remap.SimdNs = timeKernelNs(
        [&] {
          kernels::remapGather(Dst.data(), Src.data(), Idx.data(),
                               Idx.size());
          benchmark::DoNotOptimize(Dst.data());
        },
        Width, Reps);
    Remap.ScalarNs = timeKernelNs(
        [&] {
          naiveRemapGather(Dst.data(), Src.data(), Idx.data(), Idx.size());
          benchmark::DoNotOptimize(Dst.data());
        },
        Width, Reps);
    Rows.push_back(Remap);

    std::vector<uint32_t> Trimmed = halfTrimmedWords(Width);
    KernelRow Trim{"trim", Width, 0.0, 0.0};
    Trim.SimdNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(
              kernels::trimTrailingZeros(Trimmed.data(), Width));
        },
        Width, Reps);
    Trim.ScalarNs = timeKernelNs(
        [&] {
          benchmark::DoNotOptimize(
              naiveTrimTrailingZeros(Trimmed.data(), Width));
        },
        Width, Reps);
    Rows.push_back(Trim);
  }
  return Rows;
}

/// Kernel rows for one forced ISA path, plus the cost of the dispatch
/// indirection itself on that path.
struct IsaSweep {
  kernels::Isa Kind = kernels::Isa::Scalar;
  const char *Name = "scalar";
  /// Median ns/call of the dispatched kernels::joinMax minus the direct
  /// table-pointer call, at width 8 (a typical clock). The amortized cost
  /// of runtime dispatch; target <= 1 ns.
  double DispatchNs = 0.0;
  std::vector<KernelRow> Rows;
};

/// Dispatched-vs-direct joinMax at width 8: what the function-pointer
/// indirection costs per call on the currently forced path.
double measureDispatchOverheadNs(kernels::Isa Kind, uint32_t Reps) {
  const size_t Width = 8;
  std::vector<uint32_t> A = kernelWords(Width, 1);
  std::vector<uint32_t> B = kernelWords(Width, 7);
  const kernels::KernelOps *Ops = kernels::opsFor(Kind);
  double DispatchedNs = timeKernelNs(
      [&] {
        benchmark::DoNotOptimize(kernels::joinMax(A.data(), B.data(), Width));
      },
      Width, Reps);
  double DirectNs = timeKernelNs(
      [&] {
        benchmark::DoNotOptimize(Ops->JoinMax(A.data(), B.data(), Width));
      },
      Width, Reps);
  return DispatchedNs - DirectNs;
}

/// Runs measureKernels under every ISA available on this build/host (the
/// resolved path first), restoring the dispatcher afterwards.
std::vector<IsaSweep> measureIsaSweeps(uint32_t Reps) {
  using kernels::Isa;
  const Isa Resolved = kernels::activeIsaKind();
  std::vector<Isa> Order{Resolved};
  for (Isa Kind : {Isa::Avx2, Isa::Neon, Isa::Sse2, Isa::Scalar})
    if (Kind != Resolved && kernels::isaAvailable(Kind))
      Order.push_back(Kind);
  std::vector<IsaSweep> Sweeps;
  for (Isa Kind : Order) {
    kernels::setForceIsa(Kind);
    IsaSweep Sweep;
    Sweep.Kind = Kind;
    Sweep.Name = kernels::isaName(Kind);
    Sweep.Rows = measureKernels(Reps);
    Sweep.DispatchNs = measureDispatchOverheadNs(Kind, Reps);
    Sweeps.push_back(std::move(Sweep));
  }
  kernels::clearForceIsa();
  return Sweeps;
}

/// One detector's replay measurements over the repetitions.
struct JsonRow {
  std::string Name;
  double EventsPerSecond = 0.0; ///< From the median repetition.
  double P50NsPerEvent = 0.0;
  double P95NsPerEvent = 0.0;
  uint64_t DynamicRaces = 0; ///< Identical across repetitions (same seed).
};

int runJsonMode(int Argc, const char *const *Argv) {
  OptionRegistry R("micro_ops --json [options]");
  R.addFlag("json", "run the JSON summary mode instead of google-benchmark")
      .addString("json-out", "BENCH_micro_ops.json", "JSON output path")
      .addInt("reps", 15, "timed repetitions per detector")
      .addDouble("scale", 1.0, "workload scale factor")
      .addInt("seed", 12345, "trace seed")
      .addString("shards", "1",
                 "variable shards per trial replay: a count or 'auto'")
      .addFlag("pin-threads",
               "pin pool workers to CPUs (also PACER_PIN_THREADS=1); "
               "best-effort, no-op where unsupported");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;
  std::string OutPath = R.getString("json-out");
  auto Reps = static_cast<uint32_t>(R.getInt("reps"));
  double Scale = R.getDouble("scale");
  uint64_t Seed = static_cast<uint64_t>(R.getInt("seed"));
  unsigned Shards = parseShardCount(R.getString("shards"));
  if (R.getBool("pin-threads"))
    setThreadPinning(true);
  if (threadPinningEnabled())
    std::fprintf(stderr, "[pin] worker CPU affinity on (%u cpus)\n",
                 hardwareJobs());

  // Kernel rows first: the primitive the detector rows are built on. Every
  // ISA path compiled in and supported by this host is swept via the force
  // override -- the resolved path first -- so one invocation captures both
  // the per-ISA margins and the dispatch indirection cost.
  std::vector<IsaSweep> Sweeps = measureIsaSweeps(Reps);
  for (const IsaSweep &Sweep : Sweeps) {
    std::printf("clock kernels (%s%s):\n", Sweep.Name,
                Sweep.Kind == kernels::activeIsaKind() ? ", resolved" : "");
    for (const KernelRow &Row : Sweep.Rows)
      std::printf("  %-5s w=%-4zu %8.2f ns simd  %8.2f ns scalar  "
                  "x%.2f\n",
                  Row.Op, Row.Width, Row.SimdNs, Row.ScalarNs,
                  Row.speedup());
    std::printf("  dispatch overhead %+.2f ns/call (joinMax w=8, "
                "dispatched vs direct)\n",
                Sweep.DispatchNs);
  }
  const std::vector<KernelRow> &Kernels = Sweeps.front().Rows;

  CompiledWorkload Workload(
      scaleWorkload(mediumTestWorkload(), Scale));
  Trace T = generateTrace(Workload, Seed);
  if (Shards == 0) {
    Shards = resolveShardCount(0, countTraceAccesses(T));
    std::printf("auto-sharding: K=%u\n", Shards);
  }
  // One index for the whole run: every detector and repetition shards the
  // same trace the same way, so the build cost amortizes to zero and the
  // timed loops measure pure replay.
  std::optional<TraceIndex> Index;
  if (Shards > 1)
    Index.emplace(TraceIndex::build(T, Shards));

  struct NamedSetup {
    const char *Name;
    DetectorSetup Setup;
  };
  const NamedSetup Setups[] = {
      {"null", nullSetup()},
      {"fasttrack", fastTrackSetup()},
      {"pacer_r0", pacerSetup(0.0)},
      {"pacer_r3", pacerSetup(0.03)},
      {"pacer_r100", pacerSetup(1.0)},
      {"literace", literaceSetup()},
  };

  std::vector<JsonRow> Rows;
  for (const NamedSetup &NS : Setups) {
    std::vector<double> NsPerEvent;
    NsPerEvent.reserve(Reps);
    uint64_t Races = 0;
    DetectorSetup Setup = NS.Setup;
    Setup.Shards = Shards;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      TrialResult Result = runTrialOnTrace(T, Workload, Setup, Seed,
                                           Index ? &*Index : nullptr);
      Races = Result.DynamicRaces;
      double Seconds = Result.ReplaySeconds;
      NsPerEvent.push_back(T.empty() ? 0.0
                                     : Seconds * 1e9 /
                                           static_cast<double>(T.size()));
    }
    JsonRow Row;
    Row.Name = NS.Name;
    Row.P50NsPerEvent = median(NsPerEvent);
    Row.P95NsPerEvent = quantile(NsPerEvent, 0.95);
    Row.EventsPerSecond =
        Row.P50NsPerEvent > 0.0 ? 1e9 / Row.P50NsPerEvent : 0.0;
    Row.DynamicRaces = Races;
    Rows.push_back(Row);
    std::printf("%-10s %12.0f events/sec  p50 %7.1f ns  p95 %7.1f ns  "
                "races %llu\n",
                Row.Name.c_str(), Row.EventsPerSecond, Row.P50NsPerEvent,
                Row.P95NsPerEvent,
                static_cast<unsigned long long>(Row.DynamicRaces));
  }

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  // "isa"/"kernels" keep their PR-5 shape (the resolved path) so existing
  // diffs keep working; "isa_sweep" adds every forced path plus the
  // dispatch indirection cost.
  std::fprintf(Out, "{\n  \"workload\": \"%s\",\n  \"events\": %llu,\n"
                    "  \"reps\": %u,\n  \"isa\": \"%s\",\n"
                    "  \"isa_detected\": \"%s\",\n"
                    "  \"kernels\": [\n",
               Workload.spec().Name.c_str(),
               static_cast<unsigned long long>(T.size()), Reps,
               kernels::activeIsa(),
               kernels::isaName(kernels::detectedIsa()));
  auto emitKernelRows = [&](const std::vector<KernelRow> &Rows,
                            const char *Indent) {
    for (size_t I = 0; I != Rows.size(); ++I) {
      const KernelRow &Row = Rows[I];
      std::fprintf(Out,
                   "%s{\"op\": \"%s\", \"width\": %zu, "
                   "\"simd_ns_per_call\": %.2f, \"scalar_ns_per_call\": "
                   "%.2f, \"speedup\": %.2f}%s\n",
                   Indent, Row.Op, Row.Width, Row.SimdNs, Row.ScalarNs,
                   Row.speedup(), I + 1 == Rows.size() ? "" : ",");
    }
  };
  emitKernelRows(Kernels, "    ");
  std::fprintf(Out, "  ],\n  \"isa_sweep\": [\n");
  for (size_t S = 0; S != Sweeps.size(); ++S) {
    const IsaSweep &Sweep = Sweeps[S];
    std::fprintf(Out,
                 "    {\"isa\": \"%s\", \"dispatch_ns_per_call\": %.2f, "
                 "\"kernels\": [\n",
                 Sweep.Name, Sweep.DispatchNs);
    emitKernelRows(Sweep.Rows, "      ");
    std::fprintf(Out, "    ]}%s\n", S + 1 == Sweeps.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n  \"detectors\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const JsonRow &Row = Rows[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"events_per_sec\": %.1f, "
                 "\"p50_ns_per_event\": %.2f, \"p95_ns_per_event\": %.2f, "
                 "\"dynamic_races\": %llu}%s\n",
                 Row.Name.c_str(), Row.EventsPerSecond, Row.P50NsPerEvent,
                 Row.P95NsPerEvent,
                 static_cast<unsigned long long>(Row.DynamicRaces),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--json" ||
        std::string(Argv[I]).rfind("--json=", 0) == 0 ||
        std::string(Argv[I]).rfind("--json-out", 0) == 0)
      return runJsonMode(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
