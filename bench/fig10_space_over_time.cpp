//===- bench/fig10_space_over_time.cpp ------------------------------------==//
//
// Regenerates Figure 10: live (reachable) memory over normalized
// execution time for the eclipse model under Base (unmodified VM),
// "OM only" (two header words per object), PACER at several sampling
// rates, full tracking (FastTrack = 100%), and online LiteRace.
//
// The paper's claims: PACER's space overhead scales with the sampling
// rate (low rates sit just above OM-only), while LiteRace -- which
// samples code, not data, and never discards metadata -- uses nearly the
// space of 100% sampling even at a ~1% effective rate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/SpaceExperiment.h"

using namespace pacer;
using namespace pacer::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv, /*DefaultScale=*/0.5);
  printBanner("Figure 10: total live space over normalized time (eclipse)",
              "PACER's space scales with the sampling rate; LiteRace's "
              "does not.");

  uint32_t Probes =
      Options.Trials > 0 ? static_cast<uint32_t>(Options.Trials) : 12;

  for (const WorkloadSpec &Spec : Options.Workloads) {
    if (Options.Workloads.size() == 4 && Spec.Name != "eclipse")
      continue;
    CompiledWorkload Workload(Spec);

    struct SeriesConfig {
      std::string Label;
      DetectorSetup Setup;
      bool HeaderWords;
    };
    std::vector<SeriesConfig> Configs{
        {"Base", nullSetup(), false},
        {"OM only", nullSetup(), true},
        {"Pacer r=1%", pacerSetup(0.01), true},
        {"Pacer r=3%", pacerSetup(0.03), true},
        {"Pacer r=10%", pacerSetup(0.10), true},
        {"Pacer r=25%", pacerSetup(0.25), true},
        {"Pacer r=100%", pacerSetup(1.00), true},
        {"FastTrack (100%)", fastTrackSetup(), true},
        {"LiteRace", literaceSetup(1000), true},
    };

    std::vector<SpaceSeries> AllSeries;
    for (const SeriesConfig &Config : Configs)
      AllSeries.push_back(measureSpace(Workload, Config.Setup, Config.Label,
                                       Probes, Options.Seed,
                                       Config.HeaderWords));

    std::printf("--- %s: live KB at each normalized-time probe ---\n",
                Spec.Name.c_str());
    TextTable Table;
    std::vector<std::string> Header{"Config"};
    for (double T : AllSeries[0].NormalizedTime)
      Header.push_back("t=" + formatDouble(T, 2));
    Table.setHeader(Header);
    for (const SpaceSeries &Series : AllSeries) {
      std::vector<std::string> Row{Series.Label};
      for (size_t Bytes : Series.Bytes)
        Row.push_back(std::to_string(Bytes / 1024));
      Table.addRow(Row);
    }
    std::printf("%s\n", Table.render().c_str());

    std::printf("Mean live KB: ");
    for (const SpaceSeries &Series : AllSeries)
      std::printf("%s=%.0f  ", Series.Label.c_str(),
                  Series.meanBytes() / 1024.0);
    std::printf("\n\n");
  }
  return 0;
}
