//===- bench/micro_sharded.cpp - Indexed sharded-replay benchmark ---------==//
//
// Measures what the TraceIndex buys sharded replay: for K in {1, 2, 4, 8}
// and a sampling (pacer r=3%) and non-sampling (fasttrack) detector, times
// the index build, the full-scan engine (every replica re-scans the whole
// trace: O(K * trace) total work), and the indexed engine (each replica
// walks the sync skeleton plus its owned runs: O(K * sync + accesses)).
//
// Replicas run serially (Jobs = 1) on purpose: the quantity under test is
// *total work*, which serial execution exposes directly as wall-clock and
// which stays meaningful on single-core CI runners. On K cores the indexed
// engine's advantage compounds -- the full-scan engine's critical path is
// a whole-trace scan regardless of K.
//
// Writes BENCH_sharded_replay.json; diffing it across commits tracks the
// perf trajectory. Exits non-zero if the two engines ever disagree on the
// dynamic race count, so the smoke-benchmark CI job doubles as an
// equivalence check.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "runtime/AnalysisSession.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "support/Topology.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

using namespace pacer;

namespace {

struct Row {
  const char *Detector;
  unsigned Shards;
  double IndexBuildMs = 0.0;
  double FullScanMs = 0.0;
  double IndexedMs = 0.0;
  uint64_t DynamicRaces = 0;
  double speedup() const {
    return IndexedMs > 0.0 ? FullScanMs / IndexedMs : 0.0;
  }
};

/// Both engines run through AnalysisSession; only the index policy
/// differs. Serial (ShardJobs = 1) on purpose: measure total work, not
/// scheduling luck.
AnalysisRequest requestFor(const DetectorSetup &Setup, unsigned Shards,
                           bool UseIndex, uint64_t Seed) {
  AnalysisRequest Request;
  Request.Setup = Setup;
  Request.Setup.Shards = Shards;
  Request.Setup.ShardJobs = 1;
  Request.Setup.ShardUseIndex = UseIndex;
  Request.Seed = Seed;
  Request.CollectReports = false;
  return Request;
}

/// One NUMA placement measurement: indexed pacer replay with every arena
/// slab forced onto \p Node while the (serial) replay thread stays pinned
/// on the first node's first CPU. "local" vs "remote" is the cross-node
/// clock-traffic cost the node-local placement avoids.
struct NumaRow {
  unsigned Node = 0;
  const char *Placement = "local";
  double IndexedMs = 0.0;
};

/// Runs the comparison when the host has more than one node; on single
/// node hosts returns no rows (nothing to compare). Serial replay means
/// the pinned main thread does all the work, so the allocation-node
/// override alone controls locality.
std::vector<NumaRow> measureNumaPlacement(const CompiledWorkload &Workload,
                                          const Trace &T,
                                          const DetectorSetup &Setup,
                                          uint64_t Seed, uint32_t Reps) {
  std::vector<NumaRow> Rows;
  const topo::Topology &Topo = topo::systemTopology();
  if (!Topo.multiNode())
    return Rows;
  const unsigned NearNode = Topo.Nodes.front().Id;
  const unsigned FarNode = Topo.Nodes.back().Id;
  if (!topo::pinCurrentThreadToCpu(Topo.Nodes.front().Cpus.front())) {
    std::fprintf(stderr, "numa: pin failed, skipping comparison\n");
    return Rows;
  }
  const unsigned K = 4;
  TraceIndex Index = TraceIndex::build(T, K);
  for (unsigned Node : {NearNode, FarNode}) {
    topo::setAllocationNodeOverride(static_cast<int>(Node));
    AnalysisSession Session(Workload, requestFor(Setup, K, true, Seed));
    std::vector<double> Ms;
    for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
      Timer Run;
      AnalysisResult Result = Session.analyzeTrace(T, &Index);
      (void)Result;
      Ms.push_back(Run.seconds() * 1e3);
    }
    Rows.push_back({Node, Node == NearNode ? "local" : "remote",
                    median(Ms)});
  }
  topo::setAllocationNodeOverride(-1);
  return Rows;
}

/// Node spread of the first \p Workers slots of the worker-count-aware
/// pin plan: "node0:2 node1:2". The leading slots are what a K-replica
/// sharded replay actually occupies, so this is the placement the plan
/// gives those replicas.
std::string planSpread(const topo::Topology &T, unsigned Workers) {
  topo::PinPlan Plan = topo::buildPinPlan(T, Workers);
  std::string Out;
  size_t Taken = 0;
  for (const topo::NodeInfo &Node : T.Nodes) {
    size_t OnNode = 0;
    for (size_t I = 0; I != std::min<size_t>(Workers, Plan.size()); ++I)
      OnNode += Plan[I].Node == Node.Id;
    if (OnNode == 0)
      continue;
    if (!Out.empty())
      Out += " ";
    Out += "node" + std::to_string(Node.Id) + ":" + std::to_string(OnNode);
    Taken += OnNode;
  }
  (void)Taken;
  return Out;
}

struct PlanRow {
  const char *Topo;
  unsigned Workers;
  std::string Spread;
};

/// Plan-shape column: the real topology for every shard count, plus a
/// synthetic 2x4-CPU shape so the K > per-node-CPUs balancing case is
/// exercised (and diffable) even on the single-node hosts CI runs on.
std::vector<PlanRow> planShapeRows(const unsigned *ShardCounts, size_t N) {
  std::vector<PlanRow> Rows;
  const topo::Topology &Real = topo::systemTopology();
  topo::Topology Synthetic = topo::topologyFromCpuLists({"0-3", "4-7"}, 8);
  for (size_t I = 0; I != N; ++I) {
    Rows.push_back({"system", ShardCounts[I],
                    planSpread(Real, ShardCounts[I])});
    Rows.push_back({"synthetic_2x4", ShardCounts[I],
                    planSpread(Synthetic, ShardCounts[I])});
  }
  return Rows;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry R("micro_sharded [options]");
  R.addDouble("scale", 1.0, "workload scale factor")
      .addInt("seed", 12345, "trace seed")
      .addInt("reps", 7, "timed repetitions per point (median reported)")
      .addString("json-out", "BENCH_sharded_replay.json", "JSON output path");
  if (!R.parse(Argc, Argv))
    return R.helpRequested() ? 0 : 2;
  const double Scale = R.getDouble("scale");
  const uint64_t Seed = static_cast<uint64_t>(R.getInt("seed"));
  const auto Reps = static_cast<uint32_t>(R.getInt("reps"));
  const std::string OutPath = R.getString("json-out");

  CompiledWorkload Workload(scaleWorkload(mediumTestWorkload(), Scale));
  Trace T = generateTrace(Workload, Seed);
  const uint64_t Accesses = countTraceAccesses(T);
  std::printf("trace: %zu events, %llu accesses (scale %g)\n", T.size(),
              static_cast<unsigned long long>(Accesses), Scale);

  DetectorSetup Pacer = pacerSetup(0.03);
  // Small simulated nursery so the trace spans many sampling periods and
  // the bulk controller advance is exercised, as in the detection studies.
  Pacer.Sampling.PeriodBytes = 12 * 1024;
  const struct {
    const char *Name;
    DetectorSetup Setup;
  } Detectors[] = {
      {"pacer_r3", Pacer},
      {"fasttrack", fastTrackSetup()},
  };
  const unsigned ShardCounts[] = {1, 2, 4, 8};

  Timer Wall;
  std::vector<Row> Rows;
  bool Mismatch = false;
  for (const auto &D : Detectors) {
    for (unsigned K : ShardCounts) {
      Row Out{D.Name, K};

      AnalysisSession FullSession(Workload,
                                  requestFor(D.Setup, K, false, Seed));
      AnalysisSession IndexedSession(Workload,
                                     requestFor(D.Setup, K, true, Seed));
      std::vector<double> BuildMs, FullMs, IndexedMs;
      TraceIndex Index = TraceIndex::build(T, K);
      for (uint32_t Rep = 0; Rep < Reps; ++Rep) {
        Timer Build;
        TraceIndex Rebuilt = TraceIndex::build(T, K);
        BuildMs.push_back(Build.seconds() * 1e3);

        Timer FullScan;
        AnalysisResult FullResult = FullSession.analyzeTrace(T);
        FullMs.push_back(FullScan.seconds() * 1e3);

        Timer Indexed;
        AnalysisResult IndexedResult = IndexedSession.analyzeTrace(T, &Index);
        IndexedMs.push_back(Indexed.seconds() * 1e3);

        Out.DynamicRaces = IndexedResult.DynamicRaces;
        if (FullResult.DynamicRaces != IndexedResult.DynamicRaces) {
          std::fprintf(stderr,
                       "ENGINE MISMATCH: %s K=%u full-scan %llu races vs "
                       "indexed %llu\n",
                       D.Name, K,
                       static_cast<unsigned long long>(
                           FullResult.DynamicRaces),
                       static_cast<unsigned long long>(
                           IndexedResult.DynamicRaces));
          Mismatch = true;
        }
      }
      Out.IndexBuildMs = median(BuildMs);
      Out.FullScanMs = median(FullMs);
      Out.IndexedMs = median(IndexedMs);
      Rows.push_back(Out);
      std::printf("%-10s K=%u  build %7.2f ms  full-scan %8.2f ms  "
                  "indexed %8.2f ms  speedup %5.2fx  races %llu\n",
                  Out.Detector, Out.Shards, Out.IndexBuildMs, Out.FullScanMs,
                  Out.IndexedMs, Out.speedup(),
                  static_cast<unsigned long long>(Out.DynamicRaces));
    }
  }

  // NUMA column: local-vs-remote arena placement for the indexed pacer
  // point, meaningful only on multi-node hosts (single-node emits the
  // topology and an empty comparison).
  const topo::Topology &Topo = topo::systemTopology();
  std::printf("numa: %s\n", topo::summary().c_str());
  std::vector<NumaRow> NumaRows =
      measureNumaPlacement(Workload, T, Pacer, Seed, Reps);
  for (const NumaRow &NR : NumaRows)
    std::printf("numa: pacer_r3 K=4 indexed, slabs on node%u (%s): "
                "%8.2f ms\n",
                NR.Node, NR.Placement, NR.IndexedMs);
  std::vector<PlanRow> PlanRows =
      planShapeRows(ShardCounts, std::size(ShardCounts));
  for (const PlanRow &PR : PlanRows)
    std::printf("numa: pin plan [%s] K=%u -> %s\n", PR.Topo, PR.Workers,
                PR.Spread.c_str());

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"workload\": \"%s\",\n  \"events\": %zu,\n"
               "  \"accesses\": %llu,\n  \"reps\": %u,\n  \"jobs\": 1,\n"
               "  \"isa\": \"%s\",\n  \"numa_nodes\": %zu,\n"
               "  \"numa\": [\n",
               Workload.spec().Name.c_str(), T.size(),
               static_cast<unsigned long long>(Accesses), Reps,
               kernels::activeIsa(), Topo.Nodes.size());
  for (size_t I = 0; I != NumaRows.size(); ++I) {
    const NumaRow &NR = NumaRows[I];
    std::fprintf(Out,
                 "    {\"node\": %u, \"placement\": \"%s\", "
                 "\"indexed_ms\": %.3f}%s\n",
                 NR.Node, NR.Placement, NR.IndexedMs,
                 I + 1 == NumaRows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n  \"numa_plan\": [\n");
  for (size_t I = 0; I != PlanRows.size(); ++I) {
    const PlanRow &PR = PlanRows[I];
    std::fprintf(Out,
                 "    {\"topology\": \"%s\", \"workers\": %u, "
                 "\"spread\": \"%s\"}%s\n",
                 PR.Topo, PR.Workers, PR.Spread.c_str(),
                 I + 1 == PlanRows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n  \"points\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &Row = Rows[I];
    std::fprintf(Out,
                 "    {\"detector\": \"%s\", \"shards\": %u, "
                 "\"index_build_ms\": %.3f, \"full_scan_ms\": %.3f, "
                 "\"indexed_ms\": %.3f, \"speedup\": %.3f, "
                 "\"dynamic_races\": %llu}%s\n",
                 Row.Detector, Row.Shards, Row.IndexBuildMs, Row.FullScanMs,
                 Row.IndexedMs, Row.speedup(),
                 static_cast<unsigned long long>(Row.DynamicRaces),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n[timing] wall-clock %.2fs\n", OutPath.c_str(),
              Wall.seconds());
  return Mismatch ? 1 : 0;
}
