//===- tests/harness/ColdPathEquivalenceTest.cpp --------------------------==//
//
// The phase-specialized cold batch kernels are pure strength reductions:
// with DetectorSetup::ColdKernels flipped off, every detector routes
// batches through its generic per-access loop, and the results must be
// bit-identical -- every stat counter, race key and count, effective
// rate, and boundary tally. The matrix crosses all four detectors, shard
// counts {1, 4}, both sharded engines (full-scan and indexed), and both
// input paths (in-memory trace and a streamed file whose small window
// splits access runs across chunk edges). PACER runs with a small
// simulated nursery so period boundaries toggle sampling mid-run and the
// boundary-firing access lands in a post-toggle batch -- the exact
// routing the run-level segmenter (Runtime::deliverRun) must get right.
//
//===----------------------------------------------------------------------===//

#include "runtime/AnalysisSession.h"

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pacer;

namespace {

bool sameStats(const DetectorStats &A, const DetectorStats &B) {
  return std::memcmp(&A, &B, sizeof(DetectorStats)) == 0;
}

std::vector<RaceKey> reportKeys(const std::vector<RaceReport> &Reports) {
  std::vector<RaceKey> Keys;
  for (const RaceReport &Report : Reports)
    Keys.push_back({std::min(Report.FirstSite, Report.SecondSite),
                    std::max(Report.FirstSite, Report.SecondSite)});
  std::sort(Keys.begin(), Keys.end(), [](RaceKey A, RaceKey B) {
    return A.FirstSite != B.FirstSite ? A.FirstSite < B.FirstSite
                                      : A.SecondSite < B.SecondSite;
  });
  return Keys;
}

void expectSameAnalysis(const AnalysisResult &Cold,
                        const AnalysisResult &Generic,
                        const std::string &What) {
  ASSERT_TRUE(Cold.Ok) << What << ": " << Cold.Error;
  ASSERT_TRUE(Generic.Ok) << What << ": " << Generic.Error;
  const TrialResult &A = Cold.trial();
  const TrialResult &B = Generic.trial();
  EXPECT_EQ(A.Races, B.Races) << What;
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << What;
  EXPECT_TRUE(sameStats(A.Stats, B.Stats)) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate) << What;
  EXPECT_DOUBLE_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate)
      << What;
  EXPECT_EQ(A.Boundaries, B.Boundaries) << What;
  EXPECT_EQ(A.TraceEvents, B.TraceEvents) << What;
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes) << What;
  EXPECT_EQ(reportKeys(Cold.SampleReports), reportKeys(Generic.SampleReports))
      << What;
  // The phase split is derived from the same counters on both sides, so
  // it must agree too -- and partition every analysed access.
  EXPECT_EQ(Cold.HotAccesses, Generic.HotAccesses) << What;
  EXPECT_EQ(Cold.ColdAccesses, Generic.ColdAccesses) << What;
}

/// All four detectors; PACER with a small simulated nursery so the trace
/// crosses many period boundaries (mid-run toggles), at two rates so both
/// mostly-cold and mostly-hot phase mixes are exercised.
std::vector<std::pair<std::string, DetectorSetup>> detectorMatrix() {
  DetectorSetup PacerLow = pacerSetup(0.03);
  PacerLow.Sampling.PeriodBytes = 12 * 1024;
  DetectorSetup PacerHigh = pacerSetup(0.5);
  PacerHigh.Sampling.PeriodBytes = 12 * 1024;
  return {{"generic", genericSetup()},
          {"fasttrack", fastTrackSetup()},
          {"pacer_r3", PacerLow},
          {"pacer_r50", PacerHigh},
          {"literace", literaceSetup(100)}};
}

AnalysisRequest requestFor(DetectorSetup Setup, unsigned Shards,
                           bool UseIndex, bool ColdKernels, uint64_t Seed) {
  AnalysisRequest Request;
  Request.Setup = std::move(Setup);
  Request.Setup.Shards = Shards;
  Request.Setup.ShardJobs = 1; // Deterministic and CI-friendly.
  Request.Setup.ShardUseIndex = UseIndex;
  Request.Setup.ColdKernels = ColdKernels;
  Request.Seed = Seed;
  Request.CollectReports = true;
  return Request;
}

TEST(ColdPathEquivalenceTest, ColdKernelsBitIdenticalOnTraces) {
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 23;
  Trace T = generateTrace(Workload, Seed);

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      for (bool UseIndex : {false, true}) {
        const std::string What = Name + " K=" + std::to_string(Shards) +
                                 (UseIndex ? " indexed" : " full-scan");
        AnalysisResult Cold =
            AnalysisSession(Workload,
                            requestFor(Setup, Shards, UseIndex, true, Seed))
                .analyzeTrace(T);
        AnalysisResult Generic =
            AnalysisSession(Workload,
                            requestFor(Setup, Shards, UseIndex, false, Seed))
                .analyzeTrace(T);
        expectSameAnalysis(Cold, Generic, What);
      }
    }
  }
}

TEST(ColdPathEquivalenceTest, ColdKernelsBitIdenticalOnStreamedFiles) {
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 29;
  Trace T = generateTrace(Workload, Seed);
  std::string Path = ::testing::TempDir() + "/pacer_coldpath.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      const std::string What =
          Name + " K=" + std::to_string(Shards) + " streamed";
      // A small window forces many chunks, so access runs straddle chunk
      // edges and batches split at positions unrelated to phase
      // boundaries -- the cold kernels must not care.
      AnalysisRequest ColdReq =
          requestFor(Setup, Shards, /*UseIndex=*/false, true, Seed);
      ColdReq.Stream = true;
      ColdReq.StreamWindow = 700;
      AnalysisRequest GenericReq =
          requestFor(Setup, Shards, false, false, Seed);
      GenericReq.Stream = true;
      GenericReq.StreamWindow = 700;
      AnalysisResult Cold =
          AnalysisSession(Workload, ColdReq).analyzeFile(Path);
      AnalysisResult Generic =
          AnalysisSession(Workload, GenericReq).analyzeFile(Path);
      expectSameAnalysis(Cold, Generic, What);

      // The streamed cold run must also match the in-memory cold run:
      // chunking is invisible, not merely consistently wrong.
      AnalysisResult Whole =
          AnalysisSession(Workload,
                          requestFor(Setup, Shards, false, true, Seed))
              .analyzeTrace(T);
      expectSameAnalysis(Cold, Whole, What + " vs whole-trace");
    }
  }
  std::remove(Path.c_str());
}

TEST(ColdPathEquivalenceTest, PhaseSplitPartitionsAnalysedAccesses) {
  // fig7 attribution sanity: hot + cold equals the detector's analysed
  // access total, and at a low rate the cold side dominates
  // (proportionality's >97% claim, loosened for the small trace).
  CompiledWorkload Workload(mediumTestWorkload());
  DetectorSetup Pacer = pacerSetup(0.03);
  Pacer.Sampling.PeriodBytes = 12 * 1024;
  AnalysisResult Result =
      AnalysisSession(Workload, requestFor(Pacer, 1, false, true, 31))
          .analyzeGenerated();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  const DetectorStats &S = Result.trial().Stats;
  const uint64_t Analysed =
      S.ReadSlowSampling + S.WriteSlowSampling + S.ReadSlowNonSampling +
      S.WriteSlowNonSampling + S.ReadFastNonSampling +
      S.WriteFastNonSampling;
  EXPECT_EQ(Result.HotAccesses + Result.ColdAccesses, Analysed);
  EXPECT_GT(Result.ColdAccesses, Result.HotAccesses);
}

} // namespace
