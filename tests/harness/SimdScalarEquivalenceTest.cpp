//===- tests/harness/SimdScalarEquivalenceTest.cpp ------------------------==//
//
// End-to-end SIMD/scalar equivalence: a full trial run with the SIMD
// clock kernels must produce a TrialResult *bit-identical* to the same
// trial with the kernels forced onto the always-correct scalar path --
// for every detector, sequentially and sharded. This is the in-process
// half of the guarantee; CI's PACER_DISABLE_SIMD build leg re-runs the
// whole suite with the SIMD paths compiled out entirely.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "harness/TrialRunner.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pacer;

namespace {

void expectSameStats(const DetectorStats &A, const DetectorStats &B) {
  EXPECT_EQ(A.SlowJoinsSampling, B.SlowJoinsSampling);
  EXPECT_EQ(A.FastJoinsSampling, B.FastJoinsSampling);
  EXPECT_EQ(A.SlowJoinsNonSampling, B.SlowJoinsNonSampling);
  EXPECT_EQ(A.FastJoinsNonSampling, B.FastJoinsNonSampling);
  EXPECT_EQ(A.DeepCopiesSampling, B.DeepCopiesSampling);
  EXPECT_EQ(A.ShallowCopiesSampling, B.ShallowCopiesSampling);
  EXPECT_EQ(A.DeepCopiesNonSampling, B.DeepCopiesNonSampling);
  EXPECT_EQ(A.ShallowCopiesNonSampling, B.ShallowCopiesNonSampling);
  EXPECT_EQ(A.ReadSlowSampling, B.ReadSlowSampling);
  EXPECT_EQ(A.ReadSlowNonSampling, B.ReadSlowNonSampling);
  EXPECT_EQ(A.ReadFastNonSampling, B.ReadFastNonSampling);
  EXPECT_EQ(A.WriteSlowSampling, B.WriteSlowSampling);
  EXPECT_EQ(A.WriteSlowNonSampling, B.WriteSlowNonSampling);
  EXPECT_EQ(A.WriteFastNonSampling, B.WriteFastNonSampling);
  EXPECT_EQ(A.RacesReported, B.RacesReported);
  EXPECT_EQ(A.SyncOps, B.SyncOps);
  EXPECT_EQ(A.ClockClones, B.ClockClones);
}

void expectSameResult(const TrialResult &A, const TrialResult &B) {
  ASSERT_EQ(A.Races.size(), B.Races.size());
  for (const auto &[Key, Count] : A.Races) {
    auto It = B.Races.find(Key);
    ASSERT_TRUE(It != B.Races.end()) << "race key missing in scalar run";
    EXPECT_EQ(Count, It->second);
  }
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
  EXPECT_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate);
  EXPECT_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate);
  EXPECT_EQ(A.Boundaries, B.Boundaries);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes);
}

struct NamedSetup {
  const char *Name;
  DetectorSetup Setup;
};

std::vector<NamedSetup> allSetups() {
  DetectorSetup PacerSampled = pacerSetup(0.03);
  PacerSampled.Sampling.PeriodBytes = 12 * 1024; // Many period boundaries.
  return {{"pacer_r3", PacerSampled},
          {"pacer_r100", pacerSetup(1.0)},
          {"fasttrack", fastTrackSetup()},
          {"generic", genericSetup()},
          {"literace", literaceSetup()}};
}

class SimdScalarEquivalenceTest : public ::testing::Test {
protected:
  void TearDown() override { kernels::setForceScalarForTest(false); }
};

void expectSimdScalarInvariant(const WorkloadSpec &Spec, uint64_t Seed) {
  CompiledWorkload Workload(Spec);
  for (const NamedSetup &NS : allSetups()) {
    for (unsigned Shards : {1u, 4u}) {
      DetectorSetup Setup = NS.Setup;
      Setup.Shards = Shards;
      kernels::setForceScalarForTest(false);
      TrialResult Simd = runTrial(Workload, Setup, Seed);
      kernels::setForceScalarForTest(true);
      TrialResult Scalar = runTrial(Workload, Setup, Seed);
      kernels::setForceScalarForTest(false);
      SCOPED_TRACE(std::string(NS.Name) + " shards=" +
                   std::to_string(Shards));
      expectSameResult(Simd, Scalar);
    }
  }
}

TEST_F(SimdScalarEquivalenceTest, TinyWorkloadBitIdentical) {
  expectSimdScalarInvariant(tinyTestWorkload(), /*Seed=*/11);
}

TEST_F(SimdScalarEquivalenceTest, MediumWorkloadBitIdentical) {
  expectSimdScalarInvariant(mediumTestWorkload(), /*Seed=*/23);
}

} // namespace
