//===- tests/harness/HotPathEquivalenceTest.cpp ---------------------------==//
//
// The vectorized hot-path engine is a pure strength reduction twice over:
// the gather-based multi-key var-table probe (DetectorSetup::HotKernels)
// and the coalesced sync-skeleton delivery (DetectorSetup::SyncBatching)
// must both leave every TrialResult bit-identical -- every stat counter,
// race key and count, effective rate, boundary tally, and metadata byte.
// The matrix crosses all detectors, shard counts {1, 4}, both sharded
// engines (full-scan and indexed), and both input paths (in-memory trace
// and a streamed file with a small window). A sync-heavy workload whose
// script is dominated by same-thread acquire/release pair runs pins the
// skeleton coalescer against the per-event reference, including runs cut
// by sampling-period boundaries mid-pair. Randomized differential tests
// pin FlatVarTable::findBlock against scalar find() on collision- and
// tombstone-heavy tables.
//
//===----------------------------------------------------------------------===//

#include "core/FlatVarTable.h"
#include "runtime/AnalysisSession.h"

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace pacer;

namespace {

bool sameStats(const DetectorStats &A, const DetectorStats &B) {
  return std::memcmp(&A, &B, sizeof(DetectorStats)) == 0;
}

std::vector<RaceKey> reportKeys(const std::vector<RaceReport> &Reports) {
  std::vector<RaceKey> Keys;
  for (const RaceReport &Report : Reports)
    Keys.push_back({std::min(Report.FirstSite, Report.SecondSite),
                    std::max(Report.FirstSite, Report.SecondSite)});
  std::sort(Keys.begin(), Keys.end(), [](RaceKey A, RaceKey B) {
    return A.FirstSite != B.FirstSite ? A.FirstSite < B.FirstSite
                                      : A.SecondSite < B.SecondSite;
  });
  return Keys;
}

// Probe counters are diagnostics outside DetectorStats and legitimately
// differ between the two sides (the reference side never probes), so they
// are deliberately absent here.
void expectSameAnalysis(const AnalysisResult &Hot,
                        const AnalysisResult &Reference,
                        const std::string &What) {
  ASSERT_TRUE(Hot.Ok) << What << ": " << Hot.Error;
  ASSERT_TRUE(Reference.Ok) << What << ": " << Reference.Error;
  const TrialResult &A = Hot.trial();
  const TrialResult &B = Reference.trial();
  EXPECT_EQ(A.Races, B.Races) << What;
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << What;
  EXPECT_TRUE(sameStats(A.Stats, B.Stats)) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate) << What;
  EXPECT_DOUBLE_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate)
      << What;
  EXPECT_EQ(A.Boundaries, B.Boundaries) << What;
  EXPECT_EQ(A.TraceEvents, B.TraceEvents) << What;
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes) << What;
  EXPECT_EQ(reportKeys(Hot.SampleReports), reportKeys(Reference.SampleReports))
      << What;
  EXPECT_EQ(Hot.HotAccesses, Reference.HotAccesses) << What;
  EXPECT_EQ(Hot.ColdAccesses, Reference.ColdAccesses) << What;
}

/// All detectors; PACER with a small simulated nursery so period
/// boundaries toggle sampling mid-run (and mid pair-run), at two rates so
/// both mostly-cold and mostly-hot phase mixes are exercised.
std::vector<std::pair<std::string, DetectorSetup>> detectorMatrix() {
  DetectorSetup PacerLow = pacerSetup(0.03);
  PacerLow.Sampling.PeriodBytes = 12 * 1024;
  DetectorSetup PacerHigh = pacerSetup(0.5);
  PacerHigh.Sampling.PeriodBytes = 12 * 1024;
  return {{"generic", genericSetup()},
          {"fasttrack", fastTrackSetup()},
          {"pacer_r3", PacerLow},
          {"pacer_r50", PacerHigh},
          {"literace", literaceSetup(100)}};
}

AnalysisRequest requestFor(DetectorSetup Setup, unsigned Shards,
                           bool UseIndex, bool HotKernels,
                           bool SyncBatching, uint64_t Seed) {
  AnalysisRequest Request;
  Request.Setup = std::move(Setup);
  Request.Setup.Shards = Shards;
  Request.Setup.ShardJobs = 1; // Deterministic and CI-friendly.
  Request.Setup.ShardUseIndex = UseIndex;
  Request.Setup.HotKernels = HotKernels;
  Request.Setup.SyncBatching = SyncBatching;
  Request.Seed = Seed;
  Request.CollectReports = true;
  return Request;
}

/// A workload whose per-thread scripts are dominated by standalone
/// acquire/release toggling on one preferred lock, emitted in long
/// scheduler bursts: maximal same-thread pair runs for the skeleton
/// coalescer, with enough data accesses left to keep both engines busy.
WorkloadSpec syncHeavyWorkload() {
  WorkloadSpec Spec = mediumTestWorkload();
  Spec.Name = "sync_heavy";
  Spec.SyncOpFraction = 0.6;
  Spec.VolatileOpFraction = 0.0;
  Spec.LockAffinity = 1.0;
  Spec.AffinityLocks = 1;
  Spec.MaxSchedulerBurst = 48;
  return Spec;
}

/// Longest run of adjacent same-thread acquire/release pairs on one lock
/// -- what Runtime/TraceIndex coalesce into syncBatch calls.
size_t longestPairRun(const Trace &T) {
  size_t Best = 0;
  for (size_t I = 0; I + 1 < T.size();) {
    size_t J = I;
    while (J + 1 < T.size() && T[J].Kind == ActionKind::Acquire &&
           T[J + 1].Kind == ActionKind::Release && T[J].Tid == T[I].Tid &&
           T[J + 1].Tid == T[I].Tid && T[J].Target == T[I].Target &&
           T[J + 1].Target == T[I].Target)
      J += 2;
    Best = std::max(Best, (J - I) / 2);
    I = J == I ? I + 1 : J;
  }
  return Best;
}

TEST(HotPathEquivalenceTest, HotEngineBitIdenticalOnTraces) {
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 41;
  Trace T = generateTrace(Workload, Seed);

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      for (bool UseIndex : {false, true}) {
        const std::string What = Name + " K=" + std::to_string(Shards) +
                                 (UseIndex ? " indexed" : " full-scan");
        AnalysisResult Hot =
            AnalysisSession(
                Workload, requestFor(Setup, Shards, UseIndex, true, true, Seed))
                .analyzeTrace(T);
        AnalysisResult Reference =
            AnalysisSession(Workload, requestFor(Setup, Shards, UseIndex,
                                                 false, false, Seed))
                .analyzeTrace(T);
        expectSameAnalysis(Hot, Reference, What);
      }
    }
  }
}

TEST(HotPathEquivalenceTest, EachToggleIndependentlyBitIdentical) {
  // Flip one engine at a time so a regression names its culprit.
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 43;
  Trace T = generateTrace(Workload, Seed);

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      AnalysisResult Reference =
          AnalysisSession(Workload,
                          requestFor(Setup, Shards, true, false, false, Seed))
              .analyzeTrace(T);
      AnalysisResult HotOnly =
          AnalysisSession(Workload,
                          requestFor(Setup, Shards, true, true, false, Seed))
              .analyzeTrace(T);
      AnalysisResult BatchOnly =
          AnalysisSession(Workload,
                          requestFor(Setup, Shards, true, false, true, Seed))
              .analyzeTrace(T);
      expectSameAnalysis(HotOnly, Reference,
                         Name + " K=" + std::to_string(Shards) +
                             " hot-kernels only");
      expectSameAnalysis(BatchOnly, Reference,
                         Name + " K=" + std::to_string(Shards) +
                             " sync-batching only");
    }
  }
}

TEST(HotPathEquivalenceTest, SyncBatchingBitIdenticalOnPairRunTraces) {
  CompiledWorkload Workload(syncHeavyWorkload());
  const uint64_t Seed = 47;
  Trace T = generateTrace(Workload, Seed);
  // The workload must actually produce coalescible runs, or this test
  // silently degenerates to the per-event path.
  ASSERT_GE(longestPairRun(T), 4u);

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      for (bool UseIndex : {false, true}) {
        const std::string What = Name + " K=" + std::to_string(Shards) +
                                 (UseIndex ? " indexed" : " full-scan") +
                                 " sync-heavy";
        AnalysisResult Batched =
            AnalysisSession(
                Workload, requestFor(Setup, Shards, UseIndex, true, true, Seed))
                .analyzeTrace(T);
        AnalysisResult Reference =
            AnalysisSession(Workload, requestFor(Setup, Shards, UseIndex,
                                                 true, false, Seed))
                .analyzeTrace(T);
        expectSameAnalysis(Batched, Reference, What);
      }
    }
  }
}

TEST(HotPathEquivalenceTest, HotEngineBitIdenticalOnStreamedFiles) {
  CompiledWorkload Workload(syncHeavyWorkload());
  const uint64_t Seed = 53;
  Trace T = generateTrace(Workload, Seed);
  std::string Path = ::testing::TempDir() + "/pacer_hotpath.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      const std::string What =
          Name + " K=" + std::to_string(Shards) + " streamed";
      // A small window forces many chunks, so access runs and sync pair
      // runs straddle chunk edges and coalescing restarts mid-run -- the
      // hot engine must not care.
      AnalysisRequest HotReq =
          requestFor(Setup, Shards, /*UseIndex=*/false, true, true, Seed);
      HotReq.Stream = true;
      HotReq.StreamWindow = 700;
      AnalysisRequest RefReq =
          requestFor(Setup, Shards, false, false, false, Seed);
      RefReq.Stream = true;
      RefReq.StreamWindow = 700;
      AnalysisResult Hot =
          AnalysisSession(Workload, HotReq).analyzeFile(Path);
      AnalysisResult Reference =
          AnalysisSession(Workload, RefReq).analyzeFile(Path);
      expectSameAnalysis(Hot, Reference, What);

      // The streamed hot run must also match the in-memory hot run:
      // chunking is invisible, not merely consistently wrong.
      AnalysisResult Whole =
          AnalysisSession(Workload,
                          requestFor(Setup, Shards, false, true, true, Seed))
              .analyzeTrace(T);
      expectSameAnalysis(Hot, Whole, What + " vs whole-trace");
    }
  }
  std::remove(Path.c_str());
}

TEST(HotPathEquivalenceTest, ProbeTallyPartitionsStagedAccesses) {
  // The gather probe is diagnostics-visible: a mostly-sampling detector
  // with hot kernels on must report probes, the reference run none, and
  // the per-key tally (vector-resolved + scalar-fallback) is the same
  // total no matter how the shards slice the staging blocks.
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 59;
  Trace T = generateTrace(Workload, Seed);
  DetectorSetup Setup = fastTrackSetup();

  AnalysisResult Sequential =
      AnalysisSession(Workload, requestFor(Setup, 1, false, true, true, Seed))
          .analyzeTrace(T);
  ASSERT_TRUE(Sequential.Ok) << Sequential.Error;
  EXPECT_GT(Sequential.ProbeVectorResolved + Sequential.ProbeScalarFallback,
            0u);

  AnalysisResult Sharded =
      AnalysisSession(Workload, requestFor(Setup, 4, true, true, true, Seed))
          .analyzeTrace(T);
  ASSERT_TRUE(Sharded.Ok) << Sharded.Error;
  EXPECT_EQ(Sharded.ProbeVectorResolved + Sharded.ProbeScalarFallback,
            Sequential.ProbeVectorResolved + Sequential.ProbeScalarFallback);

  AnalysisResult Reference =
      AnalysisSession(Workload, requestFor(Setup, 1, false, false, false, Seed))
          .analyzeTrace(T);
  ASSERT_TRUE(Reference.Ok) << Reference.Error;
  EXPECT_EQ(Reference.ProbeVectorResolved, 0u);
  EXPECT_EQ(Reference.ProbeScalarFallback, 0u);
}

// --- Randomized differential tests: findBlock vs scalar find ----------

/// Drives a FlatVarTable through a random insert/erase schedule and
/// cross-checks findBlock against per-key find() after every mutation
/// burst. Small key universes produce dense tables rich in collision
/// chains; heavy erasure produces tombstone chains the gather's
/// first-slot screen cannot resolve (forcing the scalar fallback).
void differentialProbeCheck(uint32_t KeyUniverse, double EraseProb,
                            uint64_t Seed) {
  FlatVarTable<uint64_t> Table;
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<uint32_t> KeyDist(0, KeyUniverse - 1);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);

  for (int Round = 0; Round < 200; ++Round) {
    for (int Op = 0; Op < 32; ++Op) {
      const uint32_t Key = KeyDist(Rng);
      if (Coin(Rng) < EraseProb)
        Table.erase(Key);
      else
        Table.getOrInsert(Key) = (static_cast<uint64_t>(Key) << 16) | Round;
    }

    uint32_t Keys[64];
    uint64_t *Got[64];
    std::uniform_int_distribution<size_t> WidthDist(1, 64);
    const size_t N = WidthDist(Rng);
    for (size_t I = 0; I != N; ++I)
      Keys[I] = KeyDist(Rng); // Duplicates and absent keys included.

    const size_t Resolved = Table.findBlock(Keys, N, Got);
    EXPECT_LE(Resolved, N);
    for (size_t I = 0; I != N; ++I) {
      uint64_t *Want = Table.find(Keys[I]);
      EXPECT_EQ(Got[I], Want)
          << "universe " << KeyUniverse << " round " << Round << " key "
          << Keys[I];
      if (Want) {
        EXPECT_EQ(*Got[I], *Want);
      }
    }
  }
}

TEST(HotPathEquivalenceTest, GatherProbeMatchesScalarFindSparse) {
  // Large universe: mostly misses, resolved by the empty-lane screen.
  differentialProbeCheck(/*KeyUniverse=*/1 << 20, /*EraseProb=*/0.2, 61);
}

TEST(HotPathEquivalenceTest, GatherProbeMatchesScalarFindCollisionHeavy) {
  // Tiny universe under churn: dense table, long collision and tombstone
  // chains, repeated shrink/grow rehashes.
  differentialProbeCheck(/*KeyUniverse=*/96, /*EraseProb=*/0.45, 67);
  differentialProbeCheck(/*KeyUniverse=*/40, /*EraseProb=*/0.6, 71);
}

} // namespace
