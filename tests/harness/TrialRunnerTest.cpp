//===- tests/harness/TrialRunnerTest.cpp ----------------------------------==//

#include "harness/TrialRunner.h"

#include "sim/Workloads.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(TrialRunnerTest, FastTrackFindsCertainRacesInTinyWorkload) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult Result = runTrial(Workload, fastTrackSetup(), 1);
  EXPECT_GT(Result.TraceEvents, 1000u);
  EXPECT_GT(Result.DynamicRaces, 0u);
  EXPECT_FALSE(Result.Races.empty());
  EXPECT_GT(Result.ReplaySeconds, 0.0);
  EXPECT_GT(Result.FinalMetadataBytes, 0u);
}

TEST(TrialRunnerTest, ReportedKeysAreRacyPairs) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult Result = runTrial(Workload, fastTrackSetup(), 2);
  std::set<RaceKey> Planted;
  for (uint32_t Race = 0; Race < Workload.numRaces(); ++Race)
    Planted.insert(Workload.racyKey(Race));
  for (const auto &[Key, Count] : Result.Races) {
    EXPECT_TRUE(Planted.count(Key))
        << "every detected race must be a planted one (" << Key.FirstSite
        << "," << Key.SecondSite << ")";
    EXPECT_GT(Count, 0u);
  }
}

TEST(TrialRunnerTest, PacerAtZeroFindsNothing) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult Result = runTrial(Workload, pacerSetup(0.0), 1);
  EXPECT_EQ(Result.DynamicRaces, 0u);
  EXPECT_DOUBLE_EQ(Result.EffectiveAccessRate, 0.0);
}

TEST(TrialRunnerTest, PacerAtFullRateMatchesFastTrackKeys) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult FastTrack = runTrial(Workload, fastTrackSetup(), 3);
  TrialResult Pacer = runTrial(Workload, pacerSetup(1.0), 3);
  EXPECT_EQ(FastTrack.Races.size(), Pacer.Races.size());
  for (const auto &[Key, Count] : FastTrack.Races)
    EXPECT_EQ(Pacer.dynamicCount(Key), Count);
  EXPECT_NEAR(Pacer.EffectiveAccessRate, 1.0, 1e-9);
}

TEST(TrialRunnerTest, DeterministicAcrossRuns) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult A = runTrial(Workload, pacerSetup(0.3), 5);
  TrialResult B = runTrial(Workload, pacerSetup(0.3), 5);
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  EXPECT_EQ(A.Races, B.Races);
  EXPECT_DOUBLE_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
}

TEST(TrialRunnerTest, PacerPopulatesSamplingFields) {
  CompiledWorkload Workload(tinyTestWorkload());
  DetectorSetup Setup = pacerSetup(0.5);
  Setup.Sampling.PeriodBytes = 16 * 1024;
  TrialResult Result = runTrial(Workload, Setup, 7);
  EXPECT_GT(Result.Boundaries, 0u);
  EXPECT_GT(Result.EffectiveAccessRate, 0.0);
  EXPECT_GT(Result.EffectiveSyncRate, 0.0);
}

TEST(TrialRunnerTest, LiteRacePopulatesEffectiveRate) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult Result = runTrial(Workload, literaceSetup(100), 1);
  EXPECT_GT(Result.LiteRaceEffectiveRate, 0.0);
  EXPECT_LE(Result.LiteRaceEffectiveRate, 1.0);
}

TEST(TrialRunnerTest, MakeDetectorProducesEveryKind) {
  CompiledWorkload Workload(tinyTestWorkload());
  NullRaceSink Sink;
  for (DetectorSetup Setup :
       {nullSetup(), genericSetup(), fastTrackSetup(), pacerSetup(0.1),
        literaceSetup()}) {
    std::unique_ptr<Detector> D = makeDetector(Setup, Sink, Workload, 1);
    ASSERT_NE(D, nullptr);
    EXPECT_STREQ(D->name(), detectorKindName(Setup.Kind));
  }
}

TEST(TrialRunnerTest, NullDetectorBaselineIsCheapest) {
  CompiledWorkload Workload(tinyTestWorkload());
  TrialResult Null = runTrial(Workload, nullSetup(), 1);
  EXPECT_EQ(Null.DynamicRaces, 0u);
  EXPECT_EQ(Null.FinalMetadataBytes, 0u);
}

TEST(TrialRunnerTest, EscapeAnalysisElisionKeepsRacesDropsLocals) {
  // Section 4: the compiler pass does not instrument provably local
  // accesses. Eliding them must not change the races found (locals never
  // race) but removes their instrumentation entirely.
  CompiledWorkload Workload(tinyTestWorkload());
  DetectorSetup Plain = fastTrackSetup();
  DetectorSetup Elided = fastTrackSetup();
  Elided.ElideLocalAccesses = true;
  TrialResult WithLocals = runTrial(Workload, Plain, 4);
  TrialResult WithoutLocals = runTrial(Workload, Elided, 4);
  EXPECT_EQ(WithLocals.Races, WithoutLocals.Races);
  EXPECT_LT(WithoutLocals.Stats.totalReads() +
                WithoutLocals.Stats.totalWrites(),
            (WithLocals.Stats.totalReads() + WithLocals.Stats.totalWrites()) /
                2)
      << "local accesses dominate the tiny workload's traffic";
}

TEST(TrialRunnerTest, GenericAndFastTrackAgreeOnRaceExistence) {
  CompiledWorkload Workload(tinyTestWorkload());
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    TrialResult Generic = runTrial(Workload, genericSetup(), Seed);
    TrialResult FastTrack = runTrial(Workload, fastTrackSetup(), Seed);
    EXPECT_EQ(Generic.Races.empty(), FastTrack.Races.empty());
  }
}

} // namespace
