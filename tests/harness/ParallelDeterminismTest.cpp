//===- tests/harness/ParallelDeterminismTest.cpp --------------------------==//
//
// The parallel trial engine's core guarantee: every experiment output is
// bit-identical whatever --jobs is, because trials are pure functions of
// their seed and aggregation happens in seed order. These tests run the
// same experiment at jobs=1 and jobs=4 and require exact equality -- not
// approximate: EXPECT_EQ / exact double comparison throughout.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"
#include "harness/OverheadExperiment.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

void expectSameTruth(const GroundTruth &A, const GroundTruth &B) {
  EXPECT_EQ(A.FullTrials, B.FullTrials);
  ASSERT_EQ(A.AllRaces.size(), B.AllRaces.size());
  for (size_t I = 0; I != A.AllRaces.size(); ++I) {
    EXPECT_TRUE(A.AllRaces[I].Key == B.AllRaces[I].Key);
    EXPECT_EQ(A.AllRaces[I].TrialsSeen, B.AllRaces[I].TrialsSeen);
    EXPECT_EQ(A.AllRaces[I].AvgDynamicPerTrial,
              B.AllRaces[I].AvgDynamicPerTrial);
  }
  ASSERT_EQ(A.EvaluationRaces.size(), B.EvaluationRaces.size());
  for (size_t I = 0; I != A.EvaluationRaces.size(); ++I) {
    EXPECT_TRUE(A.EvaluationRaces[I].Key == B.EvaluationRaces[I].Key);
    EXPECT_EQ(A.EvaluationRaces[I].TrialsSeen,
              B.EvaluationRaces[I].TrialsSeen);
    EXPECT_EQ(A.EvaluationRaces[I].AvgDynamicPerTrial,
              B.EvaluationRaces[I].AvgDynamicPerTrial);
  }
}

} // namespace

TEST(ParallelDeterminismTest, GroundTruthIdenticalAcrossJobs) {
  CompiledWorkload Workload(mediumTestWorkload());
  GroundTruth Serial =
      computeGroundTruth(Workload, /*FullTrials=*/8, /*BaseSeed=*/99,
                         /*Jobs=*/1);
  GroundTruth Parallel =
      computeGroundTruth(Workload, /*FullTrials=*/8, /*BaseSeed=*/99,
                         /*Jobs=*/4);
  expectSameTruth(Serial, Parallel);
}

TEST(ParallelDeterminismTest, DetectionPointIdenticalAcrossJobs) {
  CompiledWorkload Workload(mediumTestWorkload());
  GroundTruth Truth =
      computeGroundTruth(Workload, /*FullTrials=*/6, /*BaseSeed=*/42);

  DetectorSetup Setup = pacerSetup(0.1);
  Setup.Sampling.PeriodBytes = 12 * 1024;
  DetectionPoint Serial = measureDetection(Workload, Truth, Setup,
                                           /*Trials=*/10, /*BaseSeed=*/7,
                                           /*Jobs=*/1);
  DetectionPoint Parallel = measureDetection(Workload, Truth, Setup,
                                             /*Trials=*/10, /*BaseSeed=*/7,
                                             /*Jobs=*/4);

  EXPECT_EQ(Serial.Trials, Parallel.Trials);
  // Exact equality: the Welford accumulator and every per-race sum must
  // have been fed in the same order regardless of jobs.
  EXPECT_EQ(Serial.DynamicDetectionRate, Parallel.DynamicDetectionRate);
  EXPECT_EQ(Serial.DistinctDetectionRate, Parallel.DistinctDetectionRate);
  EXPECT_EQ(Serial.EffectiveRateMean, Parallel.EffectiveRateMean);
  EXPECT_EQ(Serial.EffectiveRateStddev, Parallel.EffectiveRateStddev);
  EXPECT_EQ(Serial.EvaluationRacesMissed, Parallel.EvaluationRacesMissed);
  ASSERT_EQ(Serial.PerRaceDistinctRate.size(),
            Parallel.PerRaceDistinctRate.size());
  for (size_t I = 0; I != Serial.PerRaceDistinctRate.size(); ++I)
    EXPECT_EQ(Serial.PerRaceDistinctRate[I],
              Parallel.PerRaceDistinctRate[I]);
}

TEST(ParallelDeterminismTest, JobsBeyondTrialCountStillIdentical) {
  CompiledWorkload Workload(tinyTestWorkload());
  GroundTruth Serial =
      computeGroundTruth(Workload, /*FullTrials=*/3, /*BaseSeed=*/5,
                         /*Jobs=*/1);
  GroundTruth Parallel =
      computeGroundTruth(Workload, /*FullTrials=*/3, /*BaseSeed=*/5,
                         /*Jobs=*/16);
  expectSameTruth(Serial, Parallel);
}

TEST(ParallelDeterminismTest, OverheadStructureIdenticalAcrossJobs) {
  // Wall-clock seconds differ run to run by nature; what must be
  // jobs-invariant is the structure: config labels, order, and the trace
  // replayed (events/sec denominators come from the same traces).
  CompiledWorkload Workload(tinyTestWorkload());
  std::vector<OverheadConfig> Configs{{"base", nullSetup()},
                                      {"pacer", pacerSetup(0.05)}};
  std::vector<OverheadResult> Serial =
      measureOverheads(Workload, Configs, /*Trials=*/3, /*BaseSeed=*/11,
                       /*Jobs=*/1);
  std::vector<OverheadResult> Parallel =
      measureOverheads(Workload, Configs, /*Trials=*/3, /*BaseSeed=*/11,
                       /*Jobs=*/4);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Label, Parallel[I].Label);
    EXPECT_GT(Parallel[I].MedianSeconds, 0.0);
  }
}
