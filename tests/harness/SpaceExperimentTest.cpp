//===- tests/harness/SpaceExperimentTest.cpp ------------------------------==//

#include "harness/SpaceExperiment.h"

#include "sim/Workloads.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(SpaceExperimentTest, SeriesShapeAndNormalizedTime) {
  CompiledWorkload Workload(tinyTestWorkload());
  SpaceSeries Series = measureSpace(Workload, pacerSetup(0.1), "pacer-10",
                                    /*Probes=*/16, /*Seed=*/1,
                                    /*IncludeHeaderWords=*/true);
  EXPECT_EQ(Series.Label, "pacer-10");
  ASSERT_GE(Series.NormalizedTime.size(), 16u);
  EXPECT_GE(Series.NormalizedTime.front(), 0.0);
  EXPECT_LE(Series.NormalizedTime.back(), 1.0);
  for (size_t I = 1; I < Series.NormalizedTime.size(); ++I)
    EXPECT_GT(Series.NormalizedTime[I], Series.NormalizedTime[I - 1]);
  EXPECT_GT(Series.peakBytes(), 0u);
  EXPECT_GT(Series.meanBytes(), 0.0);
}

TEST(SpaceExperimentTest, HeaderWordsChargeOnlyWhenEnabled) {
  CompiledWorkload Workload(tinyTestWorkload());
  SpaceSeries Without = measureSpace(Workload, nullSetup(), "base", 4, 1,
                                     /*IncludeHeaderWords=*/false);
  SpaceSeries With = measureSpace(Workload, nullSetup(), "om", 4, 1,
                                  /*IncludeHeaderWords=*/true);
  ASSERT_EQ(Without.Bytes.size(), With.Bytes.size());
  size_t Expected = Workload.objectCount() * 2 * sizeof(void *);
  for (size_t I = 0; I != With.Bytes.size(); ++I)
    EXPECT_EQ(With.Bytes[I] - Without.Bytes[I], Expected);
}

TEST(SpaceExperimentTest, SamplingRateOrdersSpace) {
  // More sampling -> more retained metadata. Compare r=0 against r=100%.
  CompiledWorkload Workload(mediumTestWorkload());
  SpaceSeries R0 = measureSpace(Workload, pacerSetup(0.0), "r0", 8, 3, true);
  SpaceSeries R100 =
      measureSpace(Workload, pacerSetup(1.0), "r100", 8, 3, true);
  EXPECT_LT(R0.peakBytes(), R100.peakBytes());
  EXPECT_LT(R0.meanBytes(), R100.meanBytes());
}

TEST(SpaceExperimentTest, LiteRaceSpaceComparableToFullTracking) {
  // Figure 10's point: LiteRace at ~1% effective rate uses nearly the
  // space of 100% tracking, whereas PACER at a low rate stays near the
  // OM-only floor.
  CompiledWorkload Workload(mediumTestWorkload());
  SpaceSeries LiteRace =
      measureSpace(Workload, literaceSetup(), "literace", 8, 3, true);
  SpaceSeries Full =
      measureSpace(Workload, fastTrackSetup(), "fasttrack", 8, 3, true);
  SpaceSeries PacerLow =
      measureSpace(Workload, pacerSetup(0.05), "pacer-5", 8, 3, true);
  EXPECT_GT(LiteRace.meanBytes(), 0.6 * Full.meanBytes());
  EXPECT_LT(PacerLow.meanBytes(), 0.7 * LiteRace.meanBytes());
}

} // namespace
