//===- tests/harness/OverheadExperimentTest.cpp ---------------------------==//

#include "harness/OverheadExperiment.h"

#include "sim/Workloads.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(OverheadExperimentTest, Figure7ConfigLadder) {
  std::vector<OverheadConfig> Configs = figure7Configs({0.01, 0.03});
  ASSERT_EQ(Configs.size(), 5u);
  EXPECT_EQ(Configs[0].Label, "base");
  EXPECT_EQ(Configs[0].Setup.Kind, DetectorKind::Null);
  EXPECT_EQ(Configs[1].Label, "OM + sync ops, r=0%");
  EXPECT_FALSE(Configs[1].Setup.Pacer.InstrumentReadsWrites);
  EXPECT_EQ(Configs[2].Label, "Pacer, r=0%");
  EXPECT_TRUE(Configs[2].Setup.Pacer.InstrumentReadsWrites);
  EXPECT_EQ(Configs[3].Label, "Pacer, r=1%");
  EXPECT_DOUBLE_EQ(Configs[3].Setup.SamplingRate, 0.01);
  EXPECT_EQ(Configs[4].Label, "Pacer, r=3%");
}

TEST(OverheadExperimentTest, MeasuresAllConfigs) {
  CompiledWorkload Workload(tinyTestWorkload());
  std::vector<OverheadResult> Results = measureOverheads(
      Workload, figure7Configs({0.05}), /*Trials=*/3, /*BaseSeed=*/1);
  ASSERT_EQ(Results.size(), 4u);
  EXPECT_DOUBLE_EQ(Results[0].Slowdown, 1.0) << "baseline normalizes to 1";
  for (const OverheadResult &Result : Results) {
    EXPECT_GT(Result.MedianSeconds, 0.0) << Result.Label;
    EXPECT_GT(Result.EventsPerSecond, 0.0);
    EXPECT_GT(Result.Slowdown, 0.0);
  }
  // Phase attribution: the null baseline analyses nothing, PACER at r=0
  // routes every access down the cold path, and a sampling rate moves a
  // share of the accesses hot.
  EXPECT_EQ(Results[0].HotAccesses + Results[0].ColdAccesses, 0u);
  EXPECT_EQ(Results[2].HotAccesses, 0u) << "r=0 never samples";
  EXPECT_GT(Results[2].ColdAccesses, 0u);
  // Same traces, same instrumentation: the r=5% split partitions the same
  // access total the r=0 configuration saw, with cold still dominating.
  EXPECT_EQ(Results[3].HotAccesses + Results[3].ColdAccesses,
            Results[2].HotAccesses + Results[2].ColdAccesses);
  EXPECT_GE(Results[3].ColdAccesses, Results[3].HotAccesses)
      << "proportionality: cold dominates at low rates";
}

TEST(OverheadExperimentTest, FullSamplingCostsMoreThanNone) {
  // Timing is noisy; use a medium workload and compare the extremes,
  // which differ by an order of magnitude.
  CompiledWorkload Workload(mediumTestWorkload());
  std::vector<OverheadConfig> Configs{{"r0", pacerSetup(0.0)},
                                      {"r100", pacerSetup(1.0)}};
  std::vector<OverheadResult> Results =
      measureOverheads(Workload, Configs, 3, 7);
  EXPECT_GT(Results[1].MedianSeconds, Results[0].MedianSeconds);
}

} // namespace
