//===- tests/harness/DetectionExperimentTest.cpp --------------------------==//

#include "harness/DetectionExperiment.h"

#include "sim/Workloads.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(NumTrialsTest, PaperFormulaShape) {
  // min(max(ceil(S/r), Lo), Hi): the paper's formula with S=10, Lo=50,
  // Hi=500 gives 500 at 1%, 334 at 3%, 50 at 100%.
  EXPECT_EQ(numTrialsForRate(0.01, 10.0, 50, 500), 500u);
  EXPECT_EQ(numTrialsForRate(0.03, 10.0, 50, 500), 334u);
  EXPECT_EQ(numTrialsForRate(1.0, 10.0, 50, 500), 50u);
  // The simulator defaults.
  EXPECT_EQ(numTrialsForRate(0.01), 100u);
  EXPECT_EQ(numTrialsForRate(1.0), 20u);
  EXPECT_EQ(numTrialsForRate(0.0), 20u);
}

class DetectionExperimentTest : public ::testing::Test {
protected:
  static const GroundTruth &truth() {
    static CompiledWorkload Workload(tinyTestWorkload());
    static GroundTruth Truth = computeGroundTruth(Workload, 20, 1000);
    return Truth;
  }
  static const CompiledWorkload &workload() {
    static CompiledWorkload Workload(tinyTestWorkload());
    return Workload;
  }
};

TEST_F(DetectionExperimentTest, GroundTruthFindsCertainRaces) {
  const GroundTruth &Truth = truth();
  EXPECT_EQ(Truth.FullTrials, 20u);
  // The tiny workload plants 4 certain races; they must be evaluation
  // races (seen in at least half the trials).
  EXPECT_GE(Truth.EvaluationRaces.size(), 3u);
  EXPECT_GE(Truth.AllRaces.size(), Truth.EvaluationRaces.size());
  for (const RaceOccurrence &Race : Truth.EvaluationRaces) {
    EXPECT_GE(Race.TrialsSeen * 2, Truth.FullTrials);
    EXPECT_GT(Race.AvgDynamicPerTrial, 0.0);
  }
}

TEST_F(DetectionExperimentTest, RacesSeenAtLeastIsMonotone) {
  const GroundTruth &Truth = truth();
  EXPECT_GE(Truth.racesSeenAtLeast(1), Truth.racesSeenAtLeast(5));
  EXPECT_GE(Truth.racesSeenAtLeast(5), Truth.racesSeenAtLeast(10));
  EXPECT_EQ(Truth.racesSeenAtLeast(1), Truth.AllRaces.size());
}

TEST_F(DetectionExperimentTest, FullRateDetectionNearOne) {
  DetectionPoint Point =
      measureDetection(workload(), truth(), pacerSetup(1.0), 10, 2000);
  EXPECT_GT(Point.DistinctDetectionRate, 0.8);
  EXPECT_GT(Point.DynamicDetectionRate, 0.6);
  EXPECT_EQ(Point.PerRaceDistinctRate.size(),
            truth().EvaluationRaces.size());
  EXPECT_NEAR(Point.EffectiveRateMean, 1.0, 1e-9);
}

TEST_F(DetectionExperimentTest, ZeroRateDetectsNothing) {
  DetectionPoint Point =
      measureDetection(workload(), truth(), pacerSetup(0.0), 5, 3000);
  EXPECT_DOUBLE_EQ(Point.DistinctDetectionRate, 0.0);
  EXPECT_DOUBLE_EQ(Point.DynamicDetectionRate, 0.0);
  EXPECT_EQ(Point.EvaluationRacesMissed,
            static_cast<uint32_t>(truth().EvaluationRaces.size()));
}

TEST_F(DetectionExperimentTest, MidRateDetectsSomeRaces) {
  DetectionPoint Point =
      measureDetection(workload(), truth(), pacerSetup(0.5), 20, 4000);
  EXPECT_GT(Point.DistinctDetectionRate, 0.15);
  EXPECT_LT(Point.DistinctDetectionRate, 1.1);
}

} // namespace
