//===- tests/harness/IsaDispatchEquivalenceTest.cpp -----------------------==//
//
// Runtime-dispatch equivalence: every ISA path the dispatcher can select
// on this build/host must be bit-identical to the scalar reference -- at
// the kernel level (randomized differential tests per forced path) and
// end to end (exact TrialResult equality for all four detectors, shards
// {1, 4}, under each forced path). Plus the force/override API semantics
// the PACER_FORCE_ISA machinery is built on.
//
// On an AVX2 host this exercises avx2, sse2, and scalar through ONE
// binary; on a scalar-only build (PACER_DISABLE_SIMD) the available set
// collapses to {scalar} and the suite degenerates to self-comparison,
// which keeps the CI leg green by construction.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "harness/TrialRunner.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace pacer;
using kernels::Isa;

namespace {

/// Every ISA setForceIsa can succeed for here, scalar always included.
std::vector<Isa> availableIsas() {
  std::vector<Isa> Out;
  for (Isa Kind :
       {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512})
    if (kernels::isaAvailable(Kind))
      Out.push_back(Kind);
  return Out;
}

class IsaDispatchEquivalenceTest : public ::testing::Test {
protected:
  void TearDown() override { kernels::clearForceIsa(); }
};

//===----------------------------------------------------------------------===//
// Force/override API semantics
//===----------------------------------------------------------------------===//

TEST_F(IsaDispatchEquivalenceTest, ForcedPathIsReportedAsResolved) {
  for (Isa Kind : availableIsas()) {
    ASSERT_TRUE(kernels::setForceIsa(Kind));
    EXPECT_EQ(kernels::activeIsaKind(), Kind);
    EXPECT_STREQ(kernels::activeIsa(), kernels::isaName(Kind));
  }
  kernels::clearForceIsa();
  // clearForceIsa restores the env-or-best default, which must itself be
  // an available path.
  EXPECT_TRUE(kernels::isaAvailable(kernels::activeIsaKind()));
}

TEST_F(IsaDispatchEquivalenceTest, UnavailableIsaIsRefusedUnchanged) {
  // NEON and AVX2 never coexist, so at least one of them is unavailable
  // on every host; scalar-only builds refuse both.
  Isa Unavailable =
      kernels::isaAvailable(Isa::Neon) ? Isa::Avx2 : Isa::Neon;
  ASSERT_FALSE(kernels::isaAvailable(Unavailable));
  Isa Before = kernels::activeIsaKind();
  EXPECT_FALSE(kernels::setForceIsa(Unavailable));
  EXPECT_EQ(kernels::activeIsaKind(), Before);
}

TEST_F(IsaDispatchEquivalenceTest, ScalarForceWrapperStillWorks) {
  kernels::setForceScalarForTest(true);
  EXPECT_STREQ(kernels::activeIsa(), "scalar");
  kernels::setForceScalarForTest(false);
  EXPECT_TRUE(kernels::isaAvailable(kernels::activeIsaKind()));
}

TEST_F(IsaDispatchEquivalenceTest, IsaNamesRoundTrip) {
  for (Isa Kind :
       {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    Isa Parsed = Isa::Scalar;
    ASSERT_TRUE(kernels::parseIsaName(kernels::isaName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  Isa Sink = Isa::Scalar;
  EXPECT_FALSE(kernels::parseIsaName("avx-512", Sink));
  EXPECT_FALSE(kernels::parseIsaName("", Sink));
  EXPECT_FALSE(kernels::parseIsaName("AVX2", Sink)); // Lowercase only.
}

TEST_F(IsaDispatchEquivalenceTest, OpsTableMatchesAvailability) {
  // Scalar ops are always compiled in; every available ISA has a table
  // whose identity matches.
  ASSERT_NE(kernels::opsFor(Isa::Scalar), nullptr);
  for (Isa Kind : availableIsas()) {
    const kernels::KernelOps *Ops = kernels::opsFor(Kind);
    ASSERT_NE(Ops, nullptr);
    EXPECT_EQ(Ops->Kind, Kind);
    EXPECT_STREQ(Ops->Name, kernels::isaName(Kind));
  }
}

//===----------------------------------------------------------------------===//
// Randomized differential kernel tests per forced path
//===----------------------------------------------------------------------===//

TEST_F(IsaDispatchEquivalenceTest, KernelsMatchScalarReferencePerPath) {
  std::mt19937 Rng(0x15a0d15u);
  // Zero-heavy values exercise the trim/allZero boundaries; lengths
  // straddle every vector width and tail shape.
  std::uniform_int_distribution<uint32_t> Value(0, 12);
  std::uniform_int_distribution<size_t> Length(0, 67);
  for (Isa Kind : availableIsas()) {
    ASSERT_TRUE(kernels::setForceIsa(Kind));
    SCOPED_TRACE(std::string("forced isa ") + kernels::isaName(Kind));
    for (int Round = 0; Round != 200; ++Round) {
      const size_t N = Length(Rng);
      std::vector<uint32_t> A(N), B(N);
      for (size_t I = 0; I != N; ++I) {
        A[I] = Value(Rng);
        B[I] = Value(Rng);
      }

      std::vector<uint32_t> JoinDispatched = A, JoinRef = A;
      bool ChangedDispatched =
          kernels::joinMax(JoinDispatched.data(), B.data(), N);
      bool ChangedRef = kernels::scalarJoinMax(JoinRef.data(), B.data(), N);
      EXPECT_EQ(JoinDispatched, JoinRef);
      EXPECT_EQ(ChangedDispatched, ChangedRef);

      EXPECT_EQ(kernels::allLeq(A.data(), B.data(), N),
                kernels::scalarAllLeq(A.data(), B.data(), N));
      EXPECT_EQ(kernels::allZero(A.data(), N),
                kernels::scalarAllZero(A.data(), N));
      EXPECT_EQ(kernels::trimTrailingZeros(A.data(), N),
                kernels::scalarTrimTrailingZeros(A.data(), N));

      // Strictly ascending Idx with Idx[i] >= i: the legal in-place pack.
      std::vector<uint32_t> Idx;
      for (size_t I = 0; I != N; ++I)
        if (Rng() % 2)
          Idx.push_back(static_cast<uint32_t>(I));
      std::vector<uint32_t> GatherDispatched(Idx.size()),
          GatherRef(Idx.size());
      kernels::remapGather(GatherDispatched.data(), A.data(), Idx.data(),
                           Idx.size());
      kernels::scalarRemapGather(GatherRef.data(), A.data(), Idx.data(),
                                 Idx.size());
      EXPECT_EQ(GatherDispatched, GatherRef);

      std::vector<uint32_t> InPlace = A;
      kernels::remapGather(InPlace.data(), InPlace.data(), Idx.data(),
                           Idx.size());
      InPlace.resize(Idx.size());
      EXPECT_EQ(InPlace, GatherRef);
    }
  }
}

//===----------------------------------------------------------------------===//
// End-to-end TrialResult equality per forced path
//===----------------------------------------------------------------------===//

void expectSameStats(const DetectorStats &A, const DetectorStats &B) {
  EXPECT_EQ(A.SlowJoinsSampling, B.SlowJoinsSampling);
  EXPECT_EQ(A.FastJoinsSampling, B.FastJoinsSampling);
  EXPECT_EQ(A.SlowJoinsNonSampling, B.SlowJoinsNonSampling);
  EXPECT_EQ(A.FastJoinsNonSampling, B.FastJoinsNonSampling);
  EXPECT_EQ(A.DeepCopiesSampling, B.DeepCopiesSampling);
  EXPECT_EQ(A.ShallowCopiesSampling, B.ShallowCopiesSampling);
  EXPECT_EQ(A.DeepCopiesNonSampling, B.DeepCopiesNonSampling);
  EXPECT_EQ(A.ShallowCopiesNonSampling, B.ShallowCopiesNonSampling);
  EXPECT_EQ(A.ReadSlowSampling, B.ReadSlowSampling);
  EXPECT_EQ(A.ReadSlowNonSampling, B.ReadSlowNonSampling);
  EXPECT_EQ(A.ReadFastNonSampling, B.ReadFastNonSampling);
  EXPECT_EQ(A.WriteSlowSampling, B.WriteSlowSampling);
  EXPECT_EQ(A.WriteSlowNonSampling, B.WriteSlowNonSampling);
  EXPECT_EQ(A.WriteFastNonSampling, B.WriteFastNonSampling);
  EXPECT_EQ(A.RacesReported, B.RacesReported);
  EXPECT_EQ(A.SyncOps, B.SyncOps);
  EXPECT_EQ(A.ClockClones, B.ClockClones);
}

void expectSameResult(const TrialResult &A, const TrialResult &B) {
  ASSERT_EQ(A.Races.size(), B.Races.size());
  for (const auto &[Key, Count] : A.Races) {
    auto It = B.Races.find(Key);
    ASSERT_TRUE(It != B.Races.end()) << "race key missing in scalar run";
    EXPECT_EQ(Count, It->second);
  }
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
  EXPECT_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate);
  EXPECT_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate);
  EXPECT_EQ(A.Boundaries, B.Boundaries);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes);
}

TEST_F(IsaDispatchEquivalenceTest, TrialResultsBitIdenticalAcrossPaths) {
  DetectorSetup PacerSampled = pacerSetup(0.03);
  PacerSampled.Sampling.PeriodBytes = 12 * 1024; // Many period boundaries.
  const struct {
    const char *Name;
    DetectorSetup Setup;
  } Setups[] = {{"pacer_r3", PacerSampled},
                {"fasttrack", fastTrackSetup()},
                {"generic", genericSetup()},
                {"literace", literaceSetup()}};

  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 31;
  for (const auto &NS : Setups) {
    for (unsigned Shards : {1u, 4u}) {
      DetectorSetup Setup = NS.Setup;
      Setup.Shards = Shards;
      ASSERT_TRUE(kernels::setForceIsa(Isa::Scalar));
      TrialResult Reference = runTrial(Workload, Setup, Seed);
      for (Isa Kind : availableIsas()) {
        if (Kind == Isa::Scalar)
          continue;
        ASSERT_TRUE(kernels::setForceIsa(Kind));
        TrialResult Forced = runTrial(Workload, Setup, Seed);
        kernels::clearForceIsa();
        SCOPED_TRACE(std::string(NS.Name) + " shards=" +
                     std::to_string(Shards) + " isa=" +
                     kernels::isaName(Kind));
        expectSameResult(Forced, Reference);
      }
    }
  }
}

} // namespace
