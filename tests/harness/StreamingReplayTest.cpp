//===- tests/harness/StreamingReplayTest.cpp ------------------------------==//
//
// The bit-identity matrix for the trace read paths: one generated trace,
// replayed as {in-memory text parse, in-memory binary read, mmap view,
// bounded-window stream} x {1 shard, 4 shards}, must produce exactly the
// same TrialResult for every detector. Also pins the pieces that make
// that hold: Runtime::replayChunk is chunking-invariant, and
// TraceIndex::Builder is chunking-invariant and equal to the one-shot
// build.
//
//===----------------------------------------------------------------------==//

#include "harness/TrialRunner.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "runtime/TraceIndex.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/TraceView.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace pacer;
using namespace pacer::test;

namespace {

void expectSameStats(const DetectorStats &A, const DetectorStats &B) {
  EXPECT_EQ(A.SlowJoinsSampling, B.SlowJoinsSampling);
  EXPECT_EQ(A.FastJoinsSampling, B.FastJoinsSampling);
  EXPECT_EQ(A.SlowJoinsNonSampling, B.SlowJoinsNonSampling);
  EXPECT_EQ(A.FastJoinsNonSampling, B.FastJoinsNonSampling);
  EXPECT_EQ(A.DeepCopiesSampling, B.DeepCopiesSampling);
  EXPECT_EQ(A.ShallowCopiesSampling, B.ShallowCopiesSampling);
  EXPECT_EQ(A.DeepCopiesNonSampling, B.DeepCopiesNonSampling);
  EXPECT_EQ(A.ShallowCopiesNonSampling, B.ShallowCopiesNonSampling);
  EXPECT_EQ(A.ReadSlowSampling, B.ReadSlowSampling);
  EXPECT_EQ(A.ReadSlowNonSampling, B.ReadSlowNonSampling);
  EXPECT_EQ(A.ReadFastNonSampling, B.ReadFastNonSampling);
  EXPECT_EQ(A.WriteSlowSampling, B.WriteSlowSampling);
  EXPECT_EQ(A.WriteSlowNonSampling, B.WriteSlowNonSampling);
  EXPECT_EQ(A.WriteFastNonSampling, B.WriteFastNonSampling);
  EXPECT_EQ(A.RacesReported, B.RacesReported);
  EXPECT_EQ(A.SyncOps, B.SyncOps);
  EXPECT_EQ(A.ClockClones, B.ClockClones);
}

void expectSameResult(const TrialResult &A, const TrialResult &B) {
  ASSERT_EQ(A.Races.size(), B.Races.size());
  for (const auto &[Key, Count] : A.Races) {
    auto It = B.Races.find(Key);
    ASSERT_TRUE(It != B.Races.end()) << "race key missing";
    EXPECT_EQ(Count, It->second);
  }
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
  EXPECT_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate);
  EXPECT_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate);
  EXPECT_EQ(A.Boundaries, B.Boundaries);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes);
}

struct NamedSetup {
  const char *Name;
  DetectorSetup Setup;
};

std::vector<NamedSetup> allSetups() {
  DetectorSetup PacerSampled = pacerSetup(0.03);
  PacerSampled.Sampling.PeriodBytes = 12 * 1024;
  return {{"pacer_r3", PacerSampled},
          {"pacer_r100", pacerSetup(1.0)},
          {"fasttrack", fastTrackSetup()},
          {"generic", genericSetup()},
          {"literace", literaceSetup()}};
}

TEST(StreamingReplayTest, AllReadPathsMatchForAllDetectors) {
  CompiledWorkload Workload(mediumTestWorkload());
  const uint64_t Seed = 7;
  Trace T = generateTrace(Workload, Seed);

  std::string TextPath = ::testing::TempDir() + "/pacer_paths.trace";
  std::string BinPath = ::testing::TempDir() + "/pacer_paths.btrace";
  ASSERT_TRUE(writeTraceFile(TextPath, T, TraceFormat::Text));
  ASSERT_TRUE(writeTraceFile(BinPath, T, TraceFormat::Binary));

  TraceParseResult FromText = readTraceFile(TextPath);
  ASSERT_TRUE(FromText.Ok) << FromText.Error;
  TraceParseResult FromBinary = readTraceFile(BinPath);
  ASSERT_TRUE(FromBinary.Ok) << FromBinary.Error;
  TraceView View = TraceView::open(BinPath);
  ASSERT_TRUE(View.ok()) << View.error();

  for (const NamedSetup &NS : allSetups()) {
    SCOPED_TRACE(NS.Name);
    for (unsigned Shards : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(Shards));
      DetectorSetup Setup = NS.Setup;
      Setup.Shards = Shards;

      TrialResult Baseline = runTrialOnTrace(T, Workload, Setup, Seed);
      expectSameResult(
          Baseline, runTrialOnTrace(FromText.T, Workload, Setup, Seed));
      expectSameResult(
          Baseline, runTrialOnTrace(FromBinary.T, Workload, Setup, Seed));
      expectSameResult(
          Baseline, runTrialOnTrace(View.actions(), Workload, Setup, Seed));

      // The streaming path is sequential; its result must match the
      // sharded in-memory runs too (sharding is bit-identical).
      for (size_t Window : {size_t(97), size_t(1 << 20)}) {
        for (const std::string &Path : {TextPath, BinPath}) {
          StreamingTraceReader Reader(Path, Window);
          ASSERT_TRUE(Reader.ok()) << Reader.error();
          std::string Error;
          TrialResult Streamed =
              runTrialOnStream(Reader, Workload, Setup, Seed, &Error);
          ASSERT_TRUE(Error.empty()) << Error;
          expectSameResult(Baseline, Streamed);
        }
      }
    }
  }

  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
}

TEST(StreamingReplayTest, ReplayChunkIsChunkingInvariant) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 3);

  for (const NamedSetup &NS : allSetups()) {
    SCOPED_TRACE(NS.Name);
    TrialResult Baseline = runTrialOnTrace(T, Workload, NS.Setup, 3);
    for (size_t Chunk : {size_t(1), size_t(13), size_t(257)}) {
      RaceLog Log;
      std::unique_ptr<Detector> D =
          makeDetector(NS.Setup, Log, Workload, 3);
      std::unique_ptr<SamplingController> Controller;
      if (NS.Setup.Kind == DetectorKind::Pacer) {
        SamplingConfig Sampling = NS.Setup.Sampling;
        Sampling.TargetRate = NS.Setup.SamplingRate;
        Controller = std::make_unique<SamplingController>(
            Sampling, 3 ^ 0x47432121u);
      }
      Runtime RT(*D, Controller.get());
      RT.start();
      for (size_t I = 0; I < T.size(); I += Chunk)
        RT.replayChunk(
            TraceSpan(T.data() + I, std::min(Chunk, T.size() - I)),
            AccessShard::all());
      EXPECT_EQ(Baseline.Races, Log.counts()) << "chunk " << Chunk;
      EXPECT_EQ(Baseline.DynamicRaces, Log.dynamicCount());
      expectSameStats(Baseline.Stats, D->stats());
    }
  }
}

TEST(StreamingReplayTest, StreamedIndexBuildMatchesOneShot) {
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, 11);
  const unsigned Shards = 4;
  TraceIndex OneShot = TraceIndex::build(T, Shards);

  for (size_t Chunk : {size_t(1), size_t(7), size_t(4096)}) {
    TraceIndex::Builder Builder(Shards);
    for (size_t I = 0; I < T.size(); I += Chunk)
      Builder.addChunk(
          TraceSpan(T.data() + I, std::min(Chunk, T.size() - I)));
    EXPECT_EQ(Builder.accessCount(), OneShot.accessCount());
    TraceIndex Streamed = Builder.take();

    ASSERT_EQ(Streamed.events().size(), OneShot.events().size());
    for (size_t I = 0; I != OneShot.events().size(); ++I) {
      EXPECT_EQ(Streamed.events()[I].Pos, OneShot.events()[I].Pos);
      EXPECT_EQ(Streamed.events()[I].BeginTid, OneShot.events()[I].BeginTid);
    }
    ASSERT_EQ(Streamed.epochs().size(), OneShot.epochs().size());
    for (size_t I = 0; I != OneShot.epochs().size(); ++I) {
      EXPECT_EQ(Streamed.epochs()[I].Begin, OneShot.epochs()[I].Begin);
      EXPECT_EQ(Streamed.epochs()[I].End, OneShot.epochs()[I].End);
    }
    for (unsigned S = 0; S < Shards; ++S) {
      EXPECT_EQ(Streamed.ownedAccessCount(S), OneShot.ownedAccessCount(S));
      ASSERT_EQ(Streamed.runs(S).size(), OneShot.runs(S).size());
      for (size_t I = 0; I != OneShot.runs(S).size(); ++I) {
        EXPECT_EQ(Streamed.runs(S)[I].Begin, OneShot.runs(S)[I].Begin);
        EXPECT_EQ(Streamed.runs(S)[I].End, OneShot.runs(S)[I].End);
        EXPECT_EQ(Streamed.runs(S)[I].Epoch, OneShot.runs(S)[I].Epoch);
      }
    }
  }
}

TEST(StreamingReplayTest, StreamHonoursElideLocalAccesses) {
  CompiledWorkload Workload(tinyTestWorkload());
  const uint64_t Seed = 5;
  Trace T = generateTrace(Workload, Seed);
  std::string Path = ::testing::TempDir() + "/pacer_elide.btrace";
  ASSERT_TRUE(writeTraceFile(Path, T, TraceFormat::Binary));

  DetectorSetup Setup = fastTrackSetup();
  Setup.ElideLocalAccesses = true;
  TrialResult Baseline = runTrialOnTrace(T, Workload, Setup, Seed);

  StreamingTraceReader Reader(Path, 61);
  ASSERT_TRUE(Reader.ok()) << Reader.error();
  std::string Error;
  TrialResult Streamed =
      runTrialOnStream(Reader, Workload, Setup, Seed, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  expectSameResult(Baseline, Streamed);
  std::remove(Path.c_str());
}

TEST(StreamingReplayTest, StreamErrorSurfacesThroughTrialRunner) {
  CompiledWorkload Workload(tinyTestWorkload());
  StreamingTraceReader Reader("/nonexistent/path/x.trace");
  std::string Error;
  TrialResult Result =
      runTrialOnStream(Reader, Workload, fastTrackSetup(), 1, &Error);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Result.TraceEvents, 0u);
}

} // namespace
