//===- tests/integration/StressTest.cpp -----------------------------------==//
//
// Robustness at the edges: many threads (vector-clock growth), sparse id
// spaces, empty and single-thread traces, deep lock nesting, long
// fast-path-only runs, and repeated sampling-period churn.
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/GenericDetector.h"
#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

TEST(StressTest, EmptyTraceIsHarmless) {
  CollectingSink Sink;
  PacerDetector Pacer(Sink);
  replayInto(Pacer, Trace{});
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(Pacer.liveMetadataBytes(), 0u);
}

TEST(StressTest, SingleThreadNeverRaces) {
  Trace T;
  for (VarId Var = 0; Var < 50; ++Var) {
    T.push_back({ActionKind::Write, 0, Var, 1});
    T.push_back({ActionKind::Read, 0, Var, 2});
    T.push_back({ActionKind::Write, 0, Var, 3});
  }
  CollectingSink GenericSink, PacerSink;
  GenericDetector Generic(GenericSink);
  PacerDetector Pacer(PacerSink);
  Pacer.beginSamplingPeriod();
  replayInto(Generic, T);
  replayInto(Pacer, T);
  EXPECT_TRUE(GenericSink.empty());
  EXPECT_TRUE(PacerSink.empty());
}

TEST(StressTest, FiveHundredThreadsChainedForkJoin) {
  // A fork chain: each thread forks the next; clocks grow to 500 wide.
  constexpr ThreadId N = 500;
  Trace T;
  for (ThreadId Tid = 0; Tid + 1 < N; ++Tid) {
    T.push_back({ActionKind::Write, Tid, /*Var=*/7, 1});
    T.push_back({ActionKind::Fork, Tid, Tid + 1, InvalidId});
  }
  T.push_back({ActionKind::Write, N - 1, 7, 2});
  CollectingSink Sink;
  FastTrackDetector D(Sink);
  replayInto(D, T);
  EXPECT_TRUE(Sink.empty()) << "fork chain orders every write";
  EXPECT_GT(D.liveMetadataBytes(), N * sizeof(uint32_t));
}

TEST(StressTest, WideForkFanOutAllRace) {
  // One parent forks 200 children; every child writes the same variable:
  // each child's first write races with the most recent prior write.
  constexpr ThreadId N = 200;
  Trace T;
  for (ThreadId Child = 1; Child <= N; ++Child)
    T.push_back({ActionKind::Fork, 0, Child, InvalidId});
  for (ThreadId Child = 1; Child <= N; ++Child)
    T.push_back({ActionKind::Write, Child, 7, 100 + Child});
  CollectingSink Sink;
  FastTrackDetector D(Sink);
  replayInto(D, T);
  EXPECT_EQ(Sink.size(), N - 1) << "each write races with its predecessor";
}

TEST(StressTest, SparseIdsAreHandled) {
  // Large, gappy variable / lock / volatile / site ids must not confuse
  // dense tables.
  CollectingSink Sink;
  PacerDetector D(Sink);
  D.beginSamplingPeriod();
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .acq(0, 1000)
                    .write(0, 5000000, 77770)
                    .rel(0, 1000)
                    .volWrite(0, 900)
                    .acq(1, 1000)
                    .write(1, 5000000, 77771)
                    .rel(1, 1000)
                    .take());
  EXPECT_TRUE(Sink.empty()) << "lock-ordered";
  EXPECT_EQ(D.trackedVariableCount(), 1u);
}

TEST(StressTest, DeepLockNesting) {
  // 64 nested locks, ascending: balanced and race free.
  Trace T = TraceBuilder().fork(0, 1).take();
  for (LockId Lock = 0; Lock < 64; ++Lock)
    T.push_back({ActionKind::Acquire, 1, Lock, InvalidId});
  T.push_back({ActionKind::Write, 1, 7, 1});
  for (LockId Lock = 64; Lock-- > 0;)
    T.push_back({ActionKind::Release, 1, Lock, InvalidId});
  for (LockId Lock = 0; Lock < 64; ++Lock)
    T.push_back({ActionKind::Acquire, 0, Lock, InvalidId});
  T.push_back({ActionKind::Write, 0, 7, 2});
  for (LockId Lock = 64; Lock-- > 0;)
    T.push_back({ActionKind::Release, 0, Lock, InvalidId});
  CollectingSink Sink;
  GenericDetector D(Sink);
  replayInto(D, T);
  EXPECT_TRUE(Sink.empty());
}

TEST(StressTest, LongFastPathRunStaysEmpty) {
  // A million non-sampled accesses allocate nothing and report nothing.
  CollectingSink Sink;
  PacerDetector D(Sink);
  Action Read{ActionKind::Read, 0, 42, 1};
  Action Write{ActionKind::Write, 0, 43, 2};
  Runtime RT(D);
  for (int I = 0; I < 500000; ++I) {
    RT.dispatch(Read);
    RT.dispatch(Write);
  }
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  EXPECT_EQ(D.stats().ReadFastNonSampling, 500000u);
  EXPECT_EQ(D.stats().WriteFastNonSampling, 500000u);
}

TEST(StressTest, SamplingPeriodChurn) {
  // Thousands of begin/end cycles with sparse work in between: clock
  // increments accumulate but invariants and reports stay sane.
  CollectingSink Sink;
  PacerDetector D(Sink);
  Runtime RT(D);
  RT.dispatch({ActionKind::Fork, 0, 1, InvalidId});
  for (int I = 0; I < 2000; ++I) {
    D.beginSamplingPeriod();
    RT.dispatch({ActionKind::Write, 0, 7, 1});
    D.endSamplingPeriod();
    RT.dispatch({ActionKind::Read, 1, 7, 2});
  }
  // Every sampled write races with the following non-sampled read; the
  // read discards nothing (it races, W stays). Reports accumulate.
  EXPECT_GT(Sink.size(), 1500u);
  EXPECT_EQ(D.threadClockForTest(0).get(0), 1u + 2000u)
      << "one increment per sbegin";
}

TEST(StressTest, HsqldbFullScaleTraceGeneratesAndAnalyses) {
  // The big one: 403 threads at full calibrated scale.
  CompiledWorkload Workload(hsqldbModel());
  Trace T = generateTrace(Workload, 1);
  EXPECT_EQ(validateTrace(T, Workload.totalThreads()), "");
  RaceLog Log;
  PacerDetector D(Log);
  D.beginSamplingPeriod();
  replayInto(D, T);
  EXPECT_GE(Log.distinctCount(), 20u);
}

TEST(StressTest, GenericManyThreadsMatchesFastTrackOnRaceFreedom) {
  WorkloadSpec Spec = scaleWorkload(hsqldbModel(), 0.05);
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, 5);
  CollectingSink GenericSink, FastTrackSink;
  GenericDetector Generic(GenericSink);
  FastTrackDetector FastTrack(FastTrackSink);
  replayInto(Generic, T);
  replayInto(FastTrack, T);
  EXPECT_EQ(GenericSink.empty(), FastTrackSink.empty());
  for (RaceKey Key : FastTrackSink.keys())
    EXPECT_TRUE(GenericSink.keys().count(Key));
}

} // namespace
