//===- tests/integration/ProportionalityTest.cpp --------------------------==//
//
// The headline statistical claim (Theorem 2 plus the sampling design):
// PACER detects each race at a rate equal to the sampling rate. We verify
// with binomial confidence intervals wide enough (z = 4.5) that flake
// probability is negligible while real proportionality violations (e.g. a
// detector bug that halves or squares the detection rate) still fail.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"
#include "harness/TrialRunner.h"
#include "sim/Workloads.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

/// A small workload with one certain, always-manifesting race so the
/// per-trial detection probability is exactly the sampling rate.
WorkloadSpec proportionalityWorkload() {
  WorkloadSpec Spec = tinyTestWorkload();
  Spec.OpsPerWorker = 800;
  // No lock or volatile traffic: nothing can order the racy pair, so the
  // race occurs in (essentially) every trial and the per-trial detection
  // probability is exactly P(first access sampled) = r.
  Spec.SyncOpFraction = 0.0;
  Spec.CriticalSectionProb = 0.0;
  Spec.Races.clear();
  PlantedRace Race;
  Race.OccurrenceProb = 1.0;
  // Exactly ONE dynamic access pair per trial: multiple pairs would give
  // PACER several chances per trial, which is why the paper's
  // distinct-race rates in Figure 4 sit above the diagonal.
  Race.PairsPerTrial = 1;
  Spec.Races.push_back(Race);
  return Spec;
}

struct RateCount {
  uint64_t Detected = 0;
  uint64_t Occurred = 0;
};

RateCount measure(const CompiledWorkload &Workload, RaceKey Key, double Rate,
                  uint32_t Trials, uint64_t BaseSeed) {
  RateCount Count;
  DetectorSetup Pacer = pacerSetup(Rate);
  Pacer.Sampling.PeriodBytes = 8 * 1024; // Many periods per short trial.
  // Isolate the guarantee from the allocation bias (no sync ops exist
  // here for the correction to measure; SamplingControllerTest covers
  // the bias mechanism itself).
  Pacer.Sampling.MetadataBytesPerSampledAccess = 0;
  DetectorSetup Truth = fastTrackSetup();
  for (uint32_t Trial = 0; Trial < Trials; ++Trial) {
    uint64_t Seed = BaseSeed + Trial;
    TrialResult Full = runTrial(Workload, Truth, Seed);
    if (!Full.sawRace(Key))
      continue; // The race did not occur this trial (observer effect).
    ++Count.Occurred;
    TrialResult Sampled = runTrial(Workload, Pacer, Seed);
    if (Sampled.sawRace(Key))
      ++Count.Detected;
  }
  return Count;
}

TEST(ProportionalityTest, DetectionFrequencyMatchesSamplingRate) {
  CompiledWorkload Workload(proportionalityWorkload());
  RaceKey Key = Workload.racyKey(0);
  // z = 4.5: two-sided flake probability < 1e-5 per check.
  constexpr double Z = 4.5;
  struct Case {
    double Rate;
    uint32_t Trials;
  };
  for (Case C : {Case{0.25, 400}, Case{0.5, 300}}) {
    RateCount Count = measure(Workload, Key, C.Rate, C.Trials, 77000);
    ASSERT_GT(Count.Occurred, C.Trials / 2)
        << "the certain race must occur in most trials";
    EXPECT_TRUE(proportionConsistent(Count.Detected, Count.Occurred, C.Rate,
                                     Z))
        << "rate " << C.Rate << ": detected " << Count.Detected << "/"
        << Count.Occurred;
  }
}

TEST(ProportionalityTest, NotQuadraticInRate) {
  // LiteRace-style both-accesses sampling would give r^2; PACER must be
  // clearly above r^2 at a low rate. At r = 0.2, r^2 = 0.04 while r = 0.2:
  // with 300 occurrences the intervals are disjoint.
  CompiledWorkload Workload(proportionalityWorkload());
  RaceKey Key = Workload.racyKey(0);
  RateCount Count = measure(Workload, Key, 0.2, 350, 88000);
  ASSERT_GT(Count.Occurred, 100u);
  double Observed = static_cast<double>(Count.Detected) /
                    static_cast<double>(Count.Occurred);
  EXPECT_GT(Observed, 0.1) << "far above the r^2 = 0.04 regime";
}

TEST(ProportionalityTest, DynamicCountsScaleWithRate) {
  // Average dynamic race reports per run should also scale like r.
  CompiledWorkload Workload(proportionalityWorkload());
  RaceKey Key = Workload.racyKey(0);
  auto AvgDynamic = [&](const DetectorSetup &Setup, uint32_t Trials,
                        uint64_t BaseSeed) {
    uint64_t Total = 0;
    for (uint32_t Trial = 0; Trial < Trials; ++Trial)
      Total += runTrial(Workload, Setup, BaseSeed + Trial).dynamicCount(Key);
    return static_cast<double>(Total) / Trials;
  };
  DetectorSetup Half = pacerSetup(0.5);
  Half.Sampling.PeriodBytes = 8 * 1024;
  Half.Sampling.MetadataBytesPerSampledAccess = 0;
  double AtFull = AvgDynamic(fastTrackSetup(), 150, 99000);
  double AtHalf = AvgDynamic(Half, 150, 99000);
  ASSERT_GT(AtFull, 0.0);
  double Ratio = AtHalf / AtFull;
  EXPECT_GT(Ratio, 0.3);
  EXPECT_LT(Ratio, 0.75);
}

} // namespace
